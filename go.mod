module porcupine

go 1.24
