package porcupine_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"porcupine"
)

func apiOpts() porcupine.Options {
	return porcupine.Options{Seed: 1, Timeout: 5 * time.Minute}
}

func TestPublicKernelList(t *testing.T) {
	names := porcupine.Kernels()
	if len(names) != 11 {
		t.Fatalf("Kernels() = %d entries, want 11", len(names))
	}
	for _, n := range names {
		if n == "sobel" || n == "harris" {
			continue
		}
		if porcupine.KernelSpec(n) == nil {
			t.Errorf("KernelSpec(%q) = nil", n)
		}
		if _, err := porcupine.DefaultSketch(n); err != nil {
			t.Errorf("DefaultSketch(%q): %v", n, err)
		}
		if _, err := porcupine.Baseline(n); err != nil {
			t.Errorf("Baseline(%q): %v", n, err)
		}
	}
}

func TestPublicCompileAndRun(t *testing.T) {
	c, err := porcupine.CompileKernel("hamming-distance", apiOpts())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := porcupine.NewRuntime("PN2048", c.Lowered)
	if err != nil {
		t.Fatal(err)
	}
	a := porcupine.Vec{1, 0, 1, 1}
	b := porcupine.Vec{1, 1, 0, 1}
	cta, err := rt.EncryptVec(a)
	if err != nil {
		t.Fatal(err)
	}
	ctb, err := rt.EncryptVec(b)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rt.Run(c.Lowered, []*porcupine.Ciphertext{cta, ctb}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.DecryptVec(out, 4)[0]; got != 2 {
		t.Errorf("hamming([1011],[1101]) = %d, want 2", got)
	}
}

func TestPublicCustomSketch(t *testing.T) {
	// A user-built sketch through the public API only.
	spec := porcupine.KernelSpec("box-blur")
	sk := &porcupine.Sketch{
		Components: []porcupine.Component{{
			Op: porcupine.OpAddCtCt,
			A:  porcupine.KindCtRot,
			B:  porcupine.KindCtRot,
		}},
		Rotations: []int{1, 5, 6},
		MinL:      2, MaxL: 3,
	}
	res, err := porcupine.Compile(spec, sk, apiOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Lowered.InstructionCount() != 4 {
		t.Errorf("custom sketch result = %d instructions", res.Lowered.InstructionCount())
	}
}

func TestPublicInferSketch(t *testing.T) {
	spec := porcupine.KernelSpec("dot-product")
	sk, err := porcupine.InferSketch(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := porcupine.Compile(spec, sk, apiOpts())
	if err != nil {
		t.Fatal(err)
	}
	ok, err := spec.CheckProgram(res.Program)
	if err != nil || !ok {
		t.Errorf("inferred-sketch program invalid: %v", err)
	}
}

func TestPublicOptimizeLowered(t *testing.T) {
	base, err := porcupine.Baseline("gx")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := porcupine.OptimizeLowered(base)
	if err != nil {
		t.Fatal(err)
	}
	if opt.InstructionCount() > base.InstructionCount() {
		t.Error("optimization grew the program")
	}
}

func TestPublicEmitSEALAndParse(t *testing.T) {
	base, err := porcupine.Baseline("gx")
	if err != nil {
		t.Fatal(err)
	}
	src, err := porcupine.EmitSEAL(base, "gx_base")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "gx_base") {
		t.Error("function name missing in generated SEAL code")
	}
	parsed, err := porcupine.ParseLowered(base.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.InstructionCount() != base.InstructionCount() {
		t.Error("parse round trip changed instruction count")
	}
}

func TestPublicErrUnsat(t *testing.T) {
	spec := porcupine.KernelSpec("hamming-distance")
	sk := &porcupine.Sketch{
		Components: []porcupine.Component{{Op: 0 /* add-ct-ct */, A: 1, B: 1}},
		Rotations:  []int{1, 2},
		MinL:       1, MaxL: 2,
	}
	if _, err := porcupine.Compile(spec, sk, apiOpts()); err != porcupine.ErrUnsat {
		t.Errorf("want ErrUnsat, got %v", err)
	}
}

// ExampleCompileKernel demonstrates the one-call compile path.
func ExampleCompileKernel() {
	c, err := porcupine.CompileKernel("box-blur", porcupine.Options{Seed: 1, Timeout: time.Minute})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("instructions:", c.Lowered.InstructionCount())
	fmt.Println("multiplicative depth:", c.Lowered.MultDepth())
	// Output:
	// instructions: 4
	// multiplicative depth: 0
}
