// Package porcupine is a synthesizing compiler for vectorized
// homomorphic encryption — a complete Go reproduction of "Porcupine: A
// Synthesizing Compiler for Vectorized Homomorphic Encryption" (Cowan
// et al., PLDI 2021).
//
// Given a kernel specification (a plaintext reference implementation
// plus a data layout) and a sketch (an instruction-template with
// holes), Porcupine synthesizes a verified BFV kernel in the Quill
// DSL, optimizes it under the latency × (1 + multiplicative-depth)
// cost model, and either executes it on the bundled pure-Go BFV
// implementation or emits SEAL C++ for it.
//
// Quick start:
//
//	res, err := porcupine.CompileKernel("box-blur", porcupine.Options{
//		Timeout: time.Minute,
//	})
//	// res.Lowered is the optimized HE kernel:
//	fmt.Print(res.Lowered)
//
// Run it on real ciphertexts:
//
//	rt, _ := porcupine.NewRuntime("PN4096", res.Lowered)
//	ct, _ := rt.EncryptVec(input)
//	out, _ := rt.Run(res.Lowered, []*porcupine.Ciphertext{ct}, nil)
//	fmt.Println(rt.DecryptVec(out, 32))
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package porcupine

import (
	"porcupine/internal/backend"
	"porcupine/internal/baseline"
	"porcupine/internal/bfv"
	"porcupine/internal/codegen"
	"porcupine/internal/compose"
	"porcupine/internal/core"
	"porcupine/internal/kernels"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
	"porcupine/internal/serve"
	"porcupine/internal/synth"
	"porcupine/internal/wire"
)

// Core program representations (Quill DSL).
type (
	// Program is a Quill program in local-rotate form (rotations as
	// operands of arithmetic instructions).
	Program = quill.Program
	// Lowered is a Quill program in explicit instruction form (the
	// SEAL instruction stream).
	Lowered = quill.Lowered
	// Instr is a local-rotate instruction.
	Instr = quill.Instr
	// CtRef is a (value, rotation) operand reference.
	CtRef = quill.CtRef
	// PtRef is a plaintext operand reference.
	PtRef = quill.PtRef
	// CostModel maps instructions to latencies for the §5.2 objective.
	CostModel = quill.CostModel
	// Vec is a concrete slot vector over Z_t.
	Vec = quill.Vec
)

// Specification and synthesis types.
type (
	// Spec is a kernel specification: reference semantics + layout.
	Spec = kernels.Spec
	// Example is one concrete input-output pair of a kernel spec.
	Example = kernels.Example
	// Layout assigns logical elements to vector slots.
	Layout = kernels.Layout
	// Sketch guides the synthesis engine (components + rotations + L).
	Sketch = synth.Sketch
	// Component is one instruction template in a sketch.
	Component = synth.Component
	// Options configures a synthesis run.
	Options = synth.Options
	// Result reports a synthesis run (Table 3 shape).
	Result = synth.Result
	// Compiled is a fully compiled kernel (program + metadata).
	Compiled = core.Compiled
)

// Batch compilation types.
type (
	// Cache is the persistent, content-addressed synthesis cache.
	Cache = synth.Cache
	// BuildOptions configures a batch suite compilation.
	BuildOptions = core.BuildOptions
	// BuildReport is the outcome of a batch suite compilation.
	BuildReport = core.BuildReport
	// BuildEntry is one kernel's outcome in a batch compilation.
	BuildEntry = core.BuildEntry
	// BatchEvent is one progress notification from a batch run.
	BatchEvent = synth.Event
)

// Batch progress event kinds.
const (
	JobStarted  = synth.JobStarted
	JobFinished = synth.JobFinished
)

// BFV runtime types.
type (
	// Runtime executes lowered programs on the pure-Go BFV backend.
	Runtime = backend.Runtime
	// Context is the immutable shared serving state: parameters, keys,
	// encoder, evaluator. One Context serves any number of goroutines.
	Context = backend.Context
	// Session is the cheap per-goroutine execution state (register
	// file, scratch) plans run in; create one per worker.
	Session = backend.Session
	// ExecutionPlan is a lowered program compiled into a fixed,
	// allocation-free, concurrently servable schedule.
	ExecutionPlan = plan.ExecutionPlan
	// Ciphertext is a BFV ciphertext.
	Ciphertext = bfv.Ciphertext
	// Parameters is a BFV parameter set.
	Parameters = bfv.Parameters
)

// Quill opcodes, re-exported for sketch construction.
const (
	OpAddCtCt = quill.OpAddCtCt
	OpSubCtCt = quill.OpSubCtCt
	OpMulCtCt = quill.OpMulCtCt
	OpAddCtPt = quill.OpAddCtPt
	OpSubCtPt = quill.OpSubCtPt
	OpMulCtPt = quill.OpMulCtPt
	OpRotCt   = quill.OpRotCt
	OpRelin   = quill.OpRelin
)

// Operand-hole kinds for sketch components.
const (
	KindCt    = synth.KindCt
	KindCtRot = synth.KindCtRot
)

// ErrUnsat is returned when the sketch contains no implementation of
// the specification.
var ErrUnsat = synth.ErrUnsat

// InferSketch derives a sketch automatically from a specification
// (component extraction + rotation restriction inference), an
// extension of the paper's manual sketch-writing workflow.
func InferSketch(spec *Spec) (*Sketch, error) { return synth.InferSketch(spec) }

// OptimizeLowered applies global CSE, dead-code elimination and
// rotation folding to a lowered program (useful after multi-step
// composition).
func OptimizeLowered(l *Lowered) (*Lowered, error) { return quill.OptimizeLowered(l) }

// Kernels returns the names of every workload in the paper's
// evaluation: nine directly synthesized kernels plus the multi-step
// sobel and harris.
func Kernels() []string { return core.AllKernels() }

// KernelSpec returns the specification of a named kernel, or nil.
func KernelSpec(name string) *Spec { return kernels.ByName(name) }

// DefaultSketch returns the sketch a Porcupine user would write for a
// directly synthesized kernel.
func DefaultSketch(name string) (*Sketch, error) { return synth.DefaultSketch(name) }

// Compile synthesizes a verified, optimized HE kernel from a
// specification and sketch (the paper's Figure 3 pipeline).
func Compile(spec *Spec, sk *Sketch, opts Options) (*Result, error) {
	return synth.Synthesize(spec, sk, opts)
}

// CompileKernel compiles a named kernel with its default sketch and
// verifies the lowered result.
func CompileKernel(name string, opts Options) (*Compiled, error) {
	return core.CompileKernel(name, opts)
}

// BuildSuite batch-compiles the named kernels (nil = the full
// 11-kernel suite) through a shared work-stealing scheduler with a
// global worker budget, serving and recording results through the
// synthesis cache when one is configured.
func BuildSuite(names []string, bo BuildOptions) (*BuildReport, error) {
	return core.BuildSuite(names, bo)
}

// OpenCache opens (creating if needed) a disk-backed synthesis cache;
// the empty dir returns a memory-only cache.
func OpenCache(dir string) (*Cache, error) { return synth.OpenCache(dir) }

// CacheLimits bounds a synthesis cache (max entries / max bytes, LRU
// eviction); zero fields mean unlimited.
type CacheLimits = synth.Limits

// OpenCacheWithLimits is OpenCache with an LRU eviction bound.
func OpenCacheWithLimits(dir string, lim CacheLimits) (*Cache, error) {
	return synth.OpenCacheWithLimits(dir, lim)
}

// DefaultCacheDir returns the per-user default synthesis-cache
// location.
func DefaultCacheDir() string { return synth.DefaultCacheDir() }

// Baseline returns the hand-written depth-minimized baseline for a
// kernel (the paper's comparison target).
func Baseline(name string) (*Lowered, error) { return baseline.Lowered(name) }

// ComposeSobel stitches a Sobel pipeline (Gx² + Gy²) from two gradient
// programs via multi-step synthesis (§6.3).
func ComposeSobel(gx, gy *Program) (*Lowered, error) { return compose.Sobel(gx, gy) }

// ComposeHarris stitches the integerized Harris corner response from
// gradient and blur programs.
func ComposeHarris(gx, gy, blur *Program) (*Lowered, error) {
	return compose.Harris(gx, gy, blur)
}

// EmitSEAL generates SEAL v3.5 C++ source for a lowered program.
func EmitSEAL(l *Lowered, funcName string) (string, error) {
	return codegen.EmitSEAL(l, codegen.Options{FuncName: funcName})
}

// NewRuntime builds a BFV runtime for one of the parameter presets
// ("PN2048" test-only, "PN4096" and "PN8192" 128-bit secure), with
// Galois keys covering the rotations of the given programs.
func NewRuntime(preset string, programs ...*Lowered) (*Runtime, error) {
	return backend.NewRuntime(preset, programs...)
}

// NewServingContext compiles execution plans for the given programs
// and builds a shared Context holding exactly the Galois keys those
// plans need. Workers then execute the plans concurrently, each
// through its own Context.NewSession().
func NewServingContext(preset string, programs ...*Lowered) (*Context, []*ExecutionPlan, error) {
	return backend.NewServingContext(preset, programs...)
}

// Multi-process serving types: the wire artifact (Bundle), the batched
// request scheduler (Scheduler), and the HTTP front-end (Front). See
// internal/wire and internal/serve.
type (
	// Bundle is the exported serving artifact: one execution plan, its
	// parameters, the public evaluation keys it declares, and an
	// embedded self-test sample. Encode/Decode are versioned,
	// checksummed and fingerprint-pinned.
	Bundle = wire.Bundle
	// WireRequest is one serving request (encrypted inputs + plaintext
	// vectors) in its wire form.
	WireRequest = wire.Request
	// Scheduler is the batched request scheduler: a bounded session
	// pool over one shared Context with request coalescing and stats.
	Scheduler = serve.Scheduler
	// ServeConfig sizes a Scheduler (sessions, queue depth, batching).
	ServeConfig = serve.Config
	// ServeRequest is one scheduled plan execution.
	ServeRequest = serve.Request
	// ServeResult is the outcome of one scheduled request.
	ServeResult = serve.Result
	// ServeStats is a snapshot of scheduler counters.
	ServeStats = serve.Stats
	// Front is the HTTP front-end over a loaded bundle.
	Front = serve.Front
)

// NewScheduler starts a batched request scheduler over a context.
func NewScheduler(ctx *Context, cfg ServeConfig) *Scheduler { return serve.New(ctx, cfg) }

// ExportBundle packages a compiled plan, the context's public
// evaluation keys, and an optional self-test sample into a wire
// bundle. The secret key never leaves the exporting process.
func ExportBundle(ctx *Context, name string, p *ExecutionPlan, sample *WireRequest) (*Bundle, error) {
	return serve.Export(ctx, name, p, sample)
}

// ReadBundleFile reads, checksums and validates an exported bundle.
func ReadBundleFile(path string) (*Bundle, error) { return wire.ReadBundleFile(path) }

// LoadBundle builds the serving half from a bundle: a sealed
// execute-only context (no secret key) and a scheduler over it.
func LoadBundle(b *Bundle, cfg ServeConfig) (*Context, *Scheduler, error) {
	return serve.Load(b, cfg)
}

// BundleSelfTest executes the bundle's embedded sample and reports
// whether the output is bit-identical to the exporter's expectation.
func BundleSelfTest(s *Scheduler, b *Bundle) (bool, error) { return serve.SelfTest(s, b) }

// NewHTTPFront builds the HTTP front-end (healthz/plan/stats/selftest/
// run endpoints) over a scheduler and its bundle.
func NewHTTPFront(s *Scheduler, b *Bundle) *Front { return serve.NewFront(s, b) }

// Multi-kernel serving types: the wire-v5 registry artifact (one
// manifest of named plans sharing a parameter set and one key-material
// section), the catalog serving it from a single context, and its
// HTTP front-end. See internal/wire and internal/serve.
type (
	// Registry is the exported multi-kernel serving artifact.
	Registry = wire.Registry
	// RegistryEntry is one named kernel of a registry manifest.
	RegistryEntry = wire.RegistryEntry
	// Catalog is the serving half of a loaded registry: one shared
	// context and one scheduler hosting every kernel, with
	// slot-multiplexed batching for the eligible ones.
	Catalog = serve.Catalog
	// RegistryFront is the HTTP front-end over a catalog
	// (/kernels, /run/{kernel}, /selftest/{kernel}, /stats, /healthz).
	RegistryFront = serve.RegistryFront
	// PlanMux is a plan's slot-multiplexing capability: lane geometry
	// plus the lane-replicated execution clone.
	PlanMux = plan.Mux
)

// NewMuxServingContext compiles execution plans for the given programs
// and builds a shared Context whose Galois keys also cover each
// mux-eligible plan's lane pack/demux rotations (maxLanes ≤ 0 uses the
// default lane cap).
func NewMuxServingContext(preset string, maxLanes int, programs ...*Lowered) (*Context, []*ExecutionPlan, error) {
	return backend.NewMuxServingContext(preset, maxLanes, programs...)
}

// ExportRegistry packages named plans compiled under one context into
// a wire registry, deriving and stamping each plan's mux lane geometry
// when legal. The secret key never leaves the exporting process.
func ExportRegistry(ctx *Context, names []string, plans []*ExecutionPlan, samples []*WireRequest) (*Registry, error) {
	return serve.ExportRegistry(ctx, names, plans, samples)
}

// ReadRegistryFile reads, checksums and fully validates an exported
// registry (manifest sanity, per-plan validation, mux legality, key
// coverage).
func ReadRegistryFile(path string) (*Registry, error) { return wire.ReadRegistryFile(path) }

// LoadRegistry builds the serving half from a registry: a sealed
// execute-only context (no secret key) and a catalog over it.
func LoadRegistry(reg *Registry, cfg ServeConfig) (*Catalog, error) {
	return serve.LoadRegistry(reg, cfg)
}

// NewRegistryFront builds the multi-kernel HTTP front-end over a
// catalog.
func NewRegistryFront(cat *Catalog, preset string) *RegistryFront {
	return serve.NewRegistryFront(cat, preset)
}

// EncodeWireRequest serializes a request for POSTing to a serving
// process, pinned to the parameter fingerprint.
func EncodeWireRequest(params *Parameters, req *WireRequest) ([]byte, error) {
	return wire.EncodeRequest(params, req)
}

// DecodeWireResponse decodes a serving process's response ciphertext.
func DecodeWireResponse(params *Parameters, data []byte) (*Ciphertext, error) {
	return wire.DecodeResponse(params, data)
}

// ParseLowered parses the textual lowered-program format (see
// Lowered.String).
func ParseLowered(src string) (*Lowered, error) { return quill.ParseLowered(src) }

// DefaultCostModel returns the statically profiled instruction-latency
// model used by the synthesis objective.
func DefaultCostModel() *CostModel { return quill.DefaultCostModel() }
