package kernels

import (
	"testing"

	"porcupine/internal/quill"
)

// TestFigure7Walkthrough replays the paper's Figure 7: the packed 5×5
// image, the synthesized Gx schedule, and the tracked value in the
// target slot after every instruction.
func TestFigure7Walkthrough(t *testing.T) {
	img := func(r, c int) uint64 { return uint64(10*r + c + 1) }
	c0 := make(quill.Vec, ImgVecLen)
	for r := 0; r < ImgH; r++ {
		for c := 0; c < ImgW; c++ {
			c0[imgIdx(r, c)] = img(r, c)
		}
	}
	sem := quill.ConcreteSem{}
	// C1 = rot(C0, -5); C2 = C0 + C1: vertical pair sums.
	c2 := sem.Add(c0, sem.Rot(c0, -5))
	slot := imgIdx(2, 2) // the figure's tracked center pixel
	if want := img(1, 2) + img(2, 2); c2[slot] != want {
		t.Fatalf("C2 tracked value = %d, want %d (x[r-1,c] + x[r,c])", c2[slot], want)
	}
	// C3 = rot(C2, 5); C4 = C2 + C3: full [1 2 1] vertical smoothing.
	c4 := sem.Add(c2, sem.Rot(c2, 5))
	if want := img(1, 2) + 2*img(2, 2) + img(3, 2); c4[slot] != want {
		t.Fatalf("C4 tracked value = %d, want %d (vertical [1 2 1])", c4[slot], want)
	}
	// C5 = rot(C4, 1); C6 = rot(C4, -1); Gx = C5 - C6.
	gx := sem.Sub(sem.Rot(c4, 1), sem.Rot(c4, -1))
	var want int64
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			want += GxFilter[dr+1][dc+1] * int64(img(2+dr, 2+dc))
		}
	}
	wantU := uint64((want%65537 + 65537) % 65537)
	if gx[slot] != wantU {
		t.Fatalf("Gx tracked value = %d, want %d", gx[slot], wantU)
	}
	// And the whole vector agrees with the Gx spec on all cared slots.
	spec := Gx()
	assign := make([]uint64, spec.NumVars)
	copy(assign, c0[:ImgH*ImgW])
	ex := spec.NewExample(assign)
	if !spec.Matches(gx, ex) {
		t.Error("figure-7 schedule does not implement the Gx spec")
	}
}
