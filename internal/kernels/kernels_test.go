package kernels

import (
	"math/rand"
	"testing"

	"porcupine/internal/quill"
	"porcupine/internal/symbolic"
)

func TestAllSpecsWellFormed(t *testing.T) {
	specs := All()
	if len(specs) != 9 {
		t.Fatalf("expected 9 directly synthesized kernels, got %d", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate kernel name %s", s.Name)
		}
		seen[s.Name] = true
		if len(s.Out) != len(s.OutSlots) {
			t.Errorf("%s: %d outputs for %d slots", s.Name, len(s.Out), len(s.OutSlots))
		}
		if s.NumVars == 0 {
			t.Errorf("%s: no input variables", s.Name)
		}
		for _, p := range s.Out {
			if p.MaxVar() >= s.NumVars {
				t.Errorf("%s: output references variable beyond NumVars", s.Name)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"box-blur", "gx", "sobel", "harris"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("nope") != nil {
		t.Error("unknown name should return nil")
	}
}

func TestLayoutHelpers(t *testing.T) {
	p := Packed(4)
	if p.NumElems() != 4 || p.SlotOf[3] != 3 {
		t.Error("Packed wrong")
	}
	s := Strided(3, 2, 1)
	if s.SlotOf[0] != 1 || s.SlotOf[2] != 5 {
		t.Error("Strided wrong")
	}
}

func TestBuildErrors(t *testing.T) {
	ref := func(ct, pt [][]*symbolic.Poly) []*symbolic.Poly {
		return []*symbolic.Poly{symbolic.Zero()}
	}
	if _, err := Build("x", 7, []Layout{Packed(1)}, nil, []int{0}, ref); err == nil {
		t.Error("bad vec length should fail")
	}
	if _, err := Build("x", 8, []Layout{Packed(9)}, nil, []int{0}, ref); err == nil {
		t.Error("slot out of range should fail")
	}
	if _, err := Build("x", 8, []Layout{Packed(1)}, nil, []int{9}, ref); err == nil {
		t.Error("output slot out of range should fail")
	}
	if _, err := Build("x", 8, []Layout{Packed(1)}, nil, []int{0, 1}, ref); err == nil {
		t.Error("output arity mismatch should fail")
	}
	if _, err := Build("x", 8, nil, []Layout{Packed(9)}, []int{0}, ref); err == nil {
		t.Error("pt slot out of range should fail")
	}
}

func TestDotProductSpecSemantics(t *testing.T) {
	s := DotProduct()
	rng := rand.New(rand.NewSource(1))
	ex := s.RandomExample(rng)
	// The expected output is the inner product of the materialized
	// vectors.
	var want uint64
	for i := 0; i < DotN; i++ {
		want = (want + ex.CtIn[0][i]*ex.PtIn[0][i]) % symbolic.Modulus
	}
	if ex.Want[0] != want {
		t.Errorf("dot product expectation %d, want %d", ex.Want[0], want)
	}
}

func TestHammingSpecOnBinaryInputs(t *testing.T) {
	s := HammingDistance()
	assign := []uint64{1, 0, 1, 1 /* a */, 1, 1, 0, 1 /* b */}
	ex := s.NewExample(assign)
	if ex.Want[0] != 2 {
		t.Errorf("hamming([1011],[1101]) = %d, want 2", ex.Want[0])
	}
}

func TestMatchesChecksOnlyCaredSlots(t *testing.T) {
	s := DotProduct()
	rng := rand.New(rand.NewSource(2))
	ex := s.RandomExample(rng)
	out := make(quill.Vec, s.VecLen)
	out[0] = ex.Want[0]
	for i := 1; i < s.VecLen; i++ {
		out[i] = 12345 // garbage in don't-care slots
	}
	if !s.Matches(out, ex) {
		t.Error("garbage in don't-care slots should be accepted")
	}
	out[0]++
	if s.Matches(out, ex) {
		t.Error("wrong cared slot should be rejected")
	}
}

func TestVerifySymbolicCounterexample(t *testing.T) {
	s := BoxBlur()
	// The identity program is not a box blur; the verifier must return
	// a nonzero difference polynomial usable as a counterexample.
	out := s.SymCtInput(0)
	ok, diff := s.VerifySymbolic(out)
	if ok {
		t.Fatal("identity accepted as box blur")
	}
	if diff == nil || diff.IsZero() {
		t.Fatal("no difference polynomial")
	}
	rng := rand.New(rand.NewSource(3))
	w := diff.FindWitness(s.NumVars, rng, 50)
	if w == nil {
		t.Fatal("no witness for nonzero difference")
	}
	ex := s.NewExample(w)
	// The witness must distinguish: identity output != expected.
	idOut := ex.CtIn[0]
	if s.Matches(idOut, ex) {
		t.Error("counterexample does not distinguish identity from box blur")
	}
}

func TestSpecExampleConsistentWithSymbolic(t *testing.T) {
	// For every kernel: evaluating the symbolic outputs at a random
	// example's assignment reproduces Example.Want.
	rng := rand.New(rand.NewSource(4))
	specs := append(All(), Sobel(), Harris())
	for _, s := range specs {
		ex := s.RandomExample(rng)
		for i, p := range s.Out {
			if got := p.Eval(ex.Assign); got != ex.Want[i] {
				t.Errorf("%s: output %d inconsistent", s.Name, i)
			}
		}
	}
}

func TestImageSpecsHaveInteriorOutputs(t *testing.T) {
	for _, s := range []*Spec{Gx(), Gy()} {
		if len(s.OutSlots) != 9 {
			t.Errorf("%s: %d cared outputs, want 9 interior pixels", s.Name, len(s.OutSlots))
		}
	}
	if n := len(BoxBlur().OutSlots); n != 16 {
		t.Errorf("box blur cared outputs = %d, want 16", n)
	}
	if n := len(Harris().OutSlots); n != 4 {
		t.Errorf("harris cared outputs = %d, want 4", n)
	}
}

func TestGxSpecValue(t *testing.T) {
	s := Gx()
	// Deterministic small image.
	assign := make([]uint64, s.NumVars)
	img := [5][5]int64{
		{1, 2, 3, 4, 5},
		{6, 7, 8, 9, 10},
		{11, 12, 13, 14, 15},
		{16, 17, 18, 19, 20},
		{21, 22, 23, 24, 25},
	}
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			assign[r*5+c] = uint64(img[r][c])
		}
	}
	ex := s.NewExample(assign)
	// At (1,1): Σ img[r+dr][c+dc]*gx = standard Sobel-x response = 8.
	var want int64
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			want += img[1+dr][1+dc] * GxFilter[dr+1][dc+1]
		}
	}
	wantU := uint64((want%65537 + 65537) % 65537)
	if ex.Want[0] != wantU {
		t.Errorf("Gx(1,1) = %d, want %d", ex.Want[0], wantU)
	}
}
