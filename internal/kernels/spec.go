// Package kernels defines the kernel specifications evaluated in the
// Porcupine paper (§7.1, Table 3): a reference implementation plus a
// data layout for each workload. Reference implementations are plain
// Go functions over symbolic values; executing them once "lifts" the
// kernel to a symbolic input-output specification, exactly as Rosette
// lifts the paper's Racket references (§4.3). Data layouts assign
// logical elements to ciphertext/plaintext vector slots and mark which
// output slots are cared about (all other slots are don't-care).
package kernels

import (
	"fmt"
	"math/rand"

	"porcupine/internal/quill"
	"porcupine/internal/symbolic"
)

// Layout places the logical elements of one input into vector slots:
// element e lives in slot SlotOf[e]; all other slots are zero padding.
type Layout struct {
	SlotOf []int
}

// NumElems returns the number of logical elements.
func (l Layout) NumElems() int { return len(l.SlotOf) }

// Packed returns the dense layout: element e in slot e.
func Packed(n int) Layout {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return Layout{SlotOf: s}
}

// Strided returns element e in slot e*stride+offset.
func Strided(n, stride, offset int) Layout {
	s := make([]int, n)
	for i := range s {
		s[i] = i*stride + offset
	}
	return Layout{SlotOf: s}
}

// Spec is a complete kernel specification: layouts plus the lifted
// symbolic input-output relation.
type Spec struct {
	Name   string
	VecLen int

	Ct []Layout // ciphertext input layouts
	Pt []Layout // plaintext input layouts

	// OutSlots lists the cared output slots; Out[i] is the polynomial
	// the synthesized kernel must compute in slot OutSlots[i]. All
	// other slots are unconstrained (garbage), per the paper's data
	// layout semantics.
	OutSlots []int
	Out      []*symbolic.Poly

	// NumVars is the total number of symbolic input variables
	// (ciphertext elements first, then plaintext elements).
	NumVars int

	// varBase[i] is the first variable index of input i, ciphertext
	// inputs followed by plaintext inputs.
	varBase []int
}

// RefFunc is a reference implementation: it receives the logical
// elements of each ciphertext and plaintext input and returns the
// logical output elements. It must be straight-line polynomial code
// (no data-dependent control flow), mirroring the paper's restriction.
type RefFunc func(ct, pt [][]*symbolic.Poly) []*symbolic.Poly

// Build lifts a reference implementation into a Spec.
func Build(name string, vecLen int, ct, pt []Layout, outSlots []int, ref RefFunc) (*Spec, error) {
	if vecLen <= 0 || vecLen&(vecLen-1) != 0 {
		return nil, fmt.Errorf("kernels: %s: vector length %d not a power of two", name, vecLen)
	}
	s := &Spec{Name: name, VecLen: vecLen, Ct: ct, Pt: pt, OutSlots: outSlots}
	var ctElems, ptElems [][]*symbolic.Poly
	v := 0
	for _, l := range ct {
		s.varBase = append(s.varBase, v)
		elems := make([]*symbolic.Poly, l.NumElems())
		for e := range elems {
			if l.SlotOf[e] < 0 || l.SlotOf[e] >= vecLen {
				return nil, fmt.Errorf("kernels: %s: slot %d out of range", name, l.SlotOf[e])
			}
			elems[e] = symbolic.Var(v)
			v++
		}
		ctElems = append(ctElems, elems)
	}
	for _, l := range pt {
		s.varBase = append(s.varBase, v)
		elems := make([]*symbolic.Poly, l.NumElems())
		for e := range elems {
			if l.SlotOf[e] < 0 || l.SlotOf[e] >= vecLen {
				return nil, fmt.Errorf("kernels: %s: slot %d out of range", name, l.SlotOf[e])
			}
			elems[e] = symbolic.Var(v)
			v++
		}
		ptElems = append(ptElems, elems)
	}
	s.NumVars = v
	s.Out = ref(ctElems, ptElems)
	if len(s.Out) != len(outSlots) {
		return nil, fmt.Errorf("kernels: %s: reference produced %d outputs for %d cared slots", name, len(s.Out), len(outSlots))
	}
	for _, slot := range outSlots {
		if slot < 0 || slot >= vecLen {
			return nil, fmt.Errorf("kernels: %s: output slot %d out of range", name, slot)
		}
	}
	return s, nil
}

// MustBuild is Build, panicking on error (all layouts here are static).
func MustBuild(name string, vecLen int, ct, pt []Layout, outSlots []int, ref RefFunc) *Spec {
	s, err := Build(name, vecLen, ct, pt, outSlots, ref)
	if err != nil {
		panic(err)
	}
	return s
}

// SymCtInput returns ciphertext input i as a symbolic slot vector
// (padding slots are the zero polynomial).
func (s *Spec) SymCtInput(i int) quill.SymVec {
	return s.symInput(s.Ct[i], s.varBase[i])
}

// SymPtInput returns plaintext input i as a symbolic slot vector.
func (s *Spec) SymPtInput(i int) quill.SymVec {
	return s.symInput(s.Pt[i], s.varBase[len(s.Ct)+i])
}

func (s *Spec) symInput(l Layout, base int) quill.SymVec {
	vec := quill.ZeroSymVec(s.VecLen)
	for e, slot := range l.SlotOf {
		vec[slot] = symbolic.Var(base + e)
	}
	return vec
}

// Example is one concrete input-output pair for CEGIS.
type Example struct {
	Assign []uint64    // variable assignment
	CtIn   []quill.Vec // ciphertext input vectors
	PtIn   []quill.Vec // plaintext input vectors
	Want   []uint64    // expected value per cared output slot
}

// NewExample materializes the example for a given variable assignment.
func (s *Spec) NewExample(assign []uint64) *Example {
	ex := &Example{Assign: assign}
	for i, l := range s.Ct {
		vec := make(quill.Vec, s.VecLen)
		for e, slot := range l.SlotOf {
			vec[slot] = assign[s.varBase[i]+e] % symbolic.Modulus
		}
		ex.CtIn = append(ex.CtIn, vec)
	}
	for i, l := range s.Pt {
		vec := make(quill.Vec, s.VecLen)
		base := s.varBase[len(s.Ct)+i]
		for e, slot := range l.SlotOf {
			vec[slot] = assign[base+e] % symbolic.Modulus
		}
		ex.PtIn = append(ex.PtIn, vec)
	}
	ex.Want = make([]uint64, len(s.Out))
	for i, p := range s.Out {
		ex.Want[i] = p.Eval(assign)
	}
	return ex
}

// RandomExample draws a uniform example (paper Algorithm 1 line 6).
func (s *Spec) RandomExample(rng *rand.Rand) *Example {
	assign := make([]uint64, s.NumVars)
	for i := range assign {
		assign[i] = rng.Uint64() % symbolic.Modulus
	}
	return s.NewExample(assign)
}

// Matches reports whether a program output vector satisfies the
// example on the cared slots.
func (s *Spec) Matches(out quill.Vec, ex *Example) bool {
	for i, slot := range s.OutSlots {
		if out[slot] != ex.Want[i] {
			return false
		}
	}
	return true
}

// VerifySymbolic checks a symbolic output vector against the spec on
// the cared slots. On mismatch it returns the (nonzero) difference
// polynomial of the first differing slot for counterexample
// generation.
func (s *Spec) VerifySymbolic(out quill.SymVec) (bool, *symbolic.Poly) {
	for i, slot := range s.OutSlots {
		if !out[slot].Equal(s.Out[i]) {
			return false, out[slot].Sub(s.Out[i])
		}
	}
	return true, nil
}

// CheckProgram runs a local-rotate program symbolically against the
// spec and reports whether it implements the kernel for all inputs.
func (s *Spec) CheckProgram(p *quill.Program) (bool, error) {
	if p.NumCtInputs != len(s.Ct) || p.NumPtInputs != len(s.Pt) || p.VecLen != s.VecLen {
		return false, fmt.Errorf("kernels: %s: program shape mismatch", s.Name)
	}
	ctIn := make([]quill.SymVec, len(s.Ct))
	for i := range ctIn {
		ctIn[i] = s.SymCtInput(i)
	}
	ptIn := make([]quill.SymVec, len(s.Pt))
	for i := range ptIn {
		ptIn[i] = s.SymPtInput(i)
	}
	out, err := quill.Run(p, quill.SymbolicSem{}, ctIn, ptIn)
	if err != nil {
		return false, err
	}
	ok, _ := s.VerifySymbolic(out)
	return ok, nil
}

// CheckLowered is CheckProgram for lowered programs.
func (s *Spec) CheckLowered(l *quill.Lowered) (bool, error) {
	if l.NumCtInputs != len(s.Ct) || l.NumPtInputs != len(s.Pt) || l.VecLen != s.VecLen {
		return false, fmt.Errorf("kernels: %s: program shape mismatch", s.Name)
	}
	ctIn := make([]quill.SymVec, len(s.Ct))
	for i := range ctIn {
		ctIn[i] = s.SymCtInput(i)
	}
	ptIn := make([]quill.SymVec, len(s.Pt))
	for i := range ptIn {
		ptIn[i] = s.SymPtInput(i)
	}
	out, err := quill.RunLowered(l, quill.SymbolicSem{}, ctIn, ptIn)
	if err != nil {
		return false, err
	}
	ok, _ := s.VerifySymbolic(out)
	return ok, nil
}
