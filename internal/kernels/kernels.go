package kernels

import "porcupine/internal/symbolic"

// Image kernels use a 5×5 gray-scale image packed row-major into a
// 32-slot vector (slot r*ImgW+c), with the image border acting as zero
// padding for the 3×3 stencils, as in the paper's Gx walkthrough
// (Figure 7 packs the whole image into one ciphertext).
const (
	ImgH = 5
	ImgW = 5
	// ImgVecLen is the abstract vector length for image kernels: large
	// enough that stencil rotations (±1, ±5, ±6) never wrap cared
	// values around the vector boundary.
	ImgVecLen = 32
)

// imageLayout packs the H×W image row-major at slots 0..H*W-1.
func imageLayout() Layout { return Packed(ImgH * ImgW) }

// imgIdx returns the logical element index of pixel (r, c).
func imgIdx(r, c int) int { return r*ImgW + c }

// interiorSlots returns the cared output slots for centered 3×3
// stencils: the interior pixels.
func interiorSlots() []int {
	var slots []int
	for r := 1; r < ImgH-1; r++ {
		for c := 1; c < ImgW-1; c++ {
			slots = append(slots, imgIdx(r, c))
		}
	}
	return slots
}

// stencil3x3 lifts a centered 3×3 filter into a RefFunc over the image
// interior.
func stencil3x3(filter [3][3]int64) RefFunc {
	return func(ct, pt [][]*symbolic.Poly) []*symbolic.Poly {
		img := ct[0]
		var out []*symbolic.Poly
		for r := 1; r < ImgH-1; r++ {
			for c := 1; c < ImgW-1; c++ {
				acc := symbolic.Zero()
				for dr := -1; dr <= 1; dr++ {
					for dc := -1; dc <= 1; dc++ {
						w := filter[dr+1][dc+1]
						if w == 0 {
							continue
						}
						acc = acc.Add(img[imgIdx(r+dr, c+dc)].ScalarMul(w))
					}
				}
				out = append(out, acc)
			}
		}
		return out
	}
}

// BoxBlur is the paper's box blur (Figure 5): a 2×2 window sum,
// out[r,c] = Σ_{dr,dc ∈ {0,1}} img[r+dr][c+dc], over the 4×4 valid
// region of a 5×5 image.
func BoxBlur() *Spec {
	var outSlots []int
	for r := 0; r < ImgH-1; r++ {
		for c := 0; c < ImgW-1; c++ {
			outSlots = append(outSlots, imgIdx(r, c))
		}
	}
	return MustBuild("box-blur", ImgVecLen,
		[]Layout{imageLayout()}, nil, outSlots,
		func(ct, pt [][]*symbolic.Poly) []*symbolic.Poly {
			img := ct[0]
			var out []*symbolic.Poly
			for r := 0; r < ImgH-1; r++ {
				for c := 0; c < ImgW-1; c++ {
					acc := img[imgIdx(r, c)]
					acc = acc.Add(img[imgIdx(r, c+1)])
					acc = acc.Add(img[imgIdx(r+1, c)])
					acc = acc.Add(img[imgIdx(r+1, c+1)])
					out = append(out, acc)
				}
			}
			return out
		})
}

// GxFilter is the standard Sobel x-gradient filter.
var GxFilter = [3][3]int64{{-1, 0, 1}, {-2, 0, 2}, {-1, 0, 1}}

// GyFilter is the standard Sobel y-gradient filter.
var GyFilter = [3][3]int64{{-1, -2, -1}, {0, 0, 0}, {1, 2, 1}}

// Gx is the x-gradient image kernel (paper §4.3 running example).
func Gx() *Spec {
	return MustBuild("gx", ImgVecLen, []Layout{imageLayout()}, nil,
		interiorSlots(), stencil3x3(GxFilter))
}

// Gy is the y-gradient image kernel.
func Gy() *Spec {
	return MustBuild("gy", ImgVecLen, []Layout{imageLayout()}, nil,
		interiorSlots(), stencil3x3(GyFilter))
}

// RobertsCross computes the Roberts cross edge detector (squared):
// out[r,c] = (img[r,c] - img[r+1,c+1])² + (img[r+1,c] - img[r,c+1])².
func RobertsCross() *Spec {
	var outSlots []int
	for r := 0; r < ImgH-1; r++ {
		for c := 0; c < ImgW-1; c++ {
			outSlots = append(outSlots, imgIdx(r, c))
		}
	}
	return MustBuild("roberts-cross", ImgVecLen,
		[]Layout{imageLayout()}, nil, outSlots,
		func(ct, pt [][]*symbolic.Poly) []*symbolic.Poly {
			img := ct[0]
			var out []*symbolic.Poly
			for r := 0; r < ImgH-1; r++ {
				for c := 0; c < ImgW-1; c++ {
					d1 := img[imgIdx(r, c)].Sub(img[imgIdx(r+1, c+1)])
					d2 := img[imgIdx(r+1, c)].Sub(img[imgIdx(r, c+1)])
					out = append(out, d1.Mul(d1).Add(d2.Mul(d2)))
				}
			}
			return out
		})
}

// DotN is the vector length of the dot-product kernel.
const DotN = 8

// DotProduct computes the inner product of an encrypted 8-vector with
// a server-side plaintext 8-vector, result in slot 0 (Figure 2's
// walkthrough generalized to n=8).
func DotProduct() *Spec {
	return MustBuild("dot-product", DotN,
		[]Layout{Packed(DotN)}, []Layout{Packed(DotN)}, []int{0},
		func(ct, pt [][]*symbolic.Poly) []*symbolic.Poly {
			acc := symbolic.Zero()
			for i := 0; i < DotN; i++ {
				acc = acc.Add(ct[0][i].Mul(pt[0][i]))
			}
			return []*symbolic.Poly{acc}
		})
}

// HammingN is the vector length of the Hamming-distance kernel.
const HammingN = 4

// HammingDistance computes Σ (a_i - b_i)² over two encrypted
// 4-vectors, result in slot 0. For binary inputs this is the Hamming
// distance; the polynomial spec is exact for all inputs.
func HammingDistance() *Spec {
	return MustBuild("hamming-distance", HammingN,
		[]Layout{Packed(HammingN), Packed(HammingN)}, nil, []int{0},
		func(ct, pt [][]*symbolic.Poly) []*symbolic.Poly {
			acc := symbolic.Zero()
			for i := 0; i < HammingN; i++ {
				d := ct[0][i].Sub(ct[1][i])
				acc = acc.Add(d.Mul(d))
			}
			return []*symbolic.Poly{acc}
		})
}

// L2N is the vector length of the L2-distance kernel.
const L2N = 8

// L2Distance computes the squared Euclidean distance between two
// encrypted 8-vectors, result in slot 0 (the paper drops the square
// root, §7.1).
func L2Distance() *Spec {
	return MustBuild("l2-distance", L2N,
		[]Layout{Packed(L2N), Packed(L2N)}, nil, []int{0},
		func(ct, pt [][]*symbolic.Poly) []*symbolic.Poly {
			acc := symbolic.Zero()
			for i := 0; i < L2N; i++ {
				d := ct[0][i].Sub(ct[1][i])
				acc = acc.Add(d.Mul(d))
			}
			return []*symbolic.Poly{acc}
		})
}

// LinRegSamples is the number of packed samples in the linear
// regression kernel.
const LinRegSamples = 4

// LinearRegression evaluates y = w0·x0 + w1·x1 + b for a batch of
// two-feature samples packed [x0 x1 x0 x1 ...] in one ciphertext, with
// plaintext weights (packed [w0 w1 ...]) and bias. Outputs land at the
// even slots.
func LinearRegression() *Spec {
	n := 2 * LinRegSamples
	var outSlots []int
	for s := 0; s < LinRegSamples; s++ {
		outSlots = append(outSlots, 2*s)
	}
	// Weights replicated per sample, bias replicated at even slots.
	return MustBuild("linear-regression", n,
		[]Layout{Packed(n)},
		[]Layout{Packed(n), Strided(LinRegSamples, 2, 0)},
		outSlots,
		func(ct, pt [][]*symbolic.Poly) []*symbolic.Poly {
			x, w, b := ct[0], pt[0], pt[1]
			var out []*symbolic.Poly
			for s := 0; s < LinRegSamples; s++ {
				y := x[2*s].Mul(w[2*s]).Add(x[2*s+1].Mul(w[2*s+1])).Add(b[s])
				out = append(out, y)
			}
			return out
		})
}

// PolyRegN is the number of packed samples in the polynomial
// regression kernel.
const PolyRegN = 8

// PolynomialRegression evaluates y = a·x² + b·x + c element-wise over
// an encrypted feature vector with encrypted coefficient vectors
// (model privacy): three ciphertext inputs x, a-vector, b-vector and a
// plaintext c-vector.
func PolynomialRegression() *Spec {
	return MustBuild("polynomial-regression", PolyRegN,
		[]Layout{Packed(PolyRegN), Packed(PolyRegN), Packed(PolyRegN)},
		[]Layout{Packed(PolyRegN)},
		seqSlots(PolyRegN),
		func(ct, pt [][]*symbolic.Poly) []*symbolic.Poly {
			x, a, b := ct[0], ct[1], ct[2]
			c := pt[0]
			var out []*symbolic.Poly
			for i := 0; i < PolyRegN; i++ {
				y := a[i].Mul(x[i]).Mul(x[i]).Add(b[i].Mul(x[i])).Add(c[i])
				out = append(out, y)
			}
			return out
		})
}

func seqSlots(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// Sobel computes the squared gradient magnitude Gx² + Gy² over the
// image interior. It is compiled with multi-step synthesis (§6.3) from
// the Gx and Gy kernels.
func Sobel() *Spec {
	return MustBuild("sobel", ImgVecLen, []Layout{imageLayout()}, nil,
		interiorSlots(),
		func(ct, pt [][]*symbolic.Poly) []*symbolic.Poly {
			img := ct[0]
			gx := applyStencil(img, GxFilter)
			gy := applyStencil(img, GyFilter)
			var out []*symbolic.Poly
			for i := range gx {
				out = append(out, gx[i].Mul(gx[i]).Add(gy[i].Mul(gy[i])))
			}
			return out
		})
}

// applyStencil evaluates a centered 3×3 stencil over the interior,
// returning one polynomial per interior pixel (row-major).
func applyStencil(img []*symbolic.Poly, filter [3][3]int64) []*symbolic.Poly {
	var out []*symbolic.Poly
	for r := 1; r < ImgH-1; r++ {
		for c := 1; c < ImgW-1; c++ {
			acc := symbolic.Zero()
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					w := filter[dr+1][dc+1]
					if w != 0 {
						acc = acc.Add(img[imgIdx(r+dr, c+dc)].ScalarMul(w))
					}
				}
			}
			out = append(out, acc)
		}
	}
	return out
}

// HarrisK16 documents the integerized Harris response used here:
// R = 16·det(M) − trace(M)², i.e. k = 1/16 (DESIGN.md substitution 5).
const HarrisK16 = 16

// Harris computes the integerized Harris corner response over the
// image interior: with Ixx = Gx², Iyy = Gy², Ixy = Gx·Gy summed over a
// 2×2 window (the paper's box blur), R = 16·(Sxx·Syy − Sxy²) −
// (Sxx+Syy)². Compiled with multi-step synthesis from Gx, Gy and box
// blur. Cared outputs are the pixels where the full 2×2 window of
// interior gradients exists.
func Harris() *Spec {
	var outSlots []int
	for r := 1; r < ImgH-2; r++ {
		for c := 1; c < ImgW-2; c++ {
			outSlots = append(outSlots, imgIdx(r, c))
		}
	}
	return MustBuild("harris", ImgVecLen, []Layout{imageLayout()}, nil,
		outSlots,
		func(ct, pt [][]*symbolic.Poly) []*symbolic.Poly {
			img := ct[0]
			// Gradients at every pixel where the stencil fits (zero
			// padding elsewhere, matching the HE data layout).
			gx := fullStencil(img, GxFilter)
			gy := fullStencil(img, GyFilter)
			var out []*symbolic.Poly
			for r := 1; r < ImgH-2; r++ {
				for c := 1; c < ImgW-2; c++ {
					sxx, syy, sxy := symbolic.Zero(), symbolic.Zero(), symbolic.Zero()
					for dr := 0; dr <= 1; dr++ {
						for dc := 0; dc <= 1; dc++ {
							i := imgIdx(r+dr, c+dc)
							sxx = sxx.Add(gx[i].Mul(gx[i]))
							syy = syy.Add(gy[i].Mul(gy[i]))
							sxy = sxy.Add(gx[i].Mul(gy[i]))
						}
					}
					det := sxx.Mul(syy).Sub(sxy.Mul(sxy))
					tr := sxx.Add(syy)
					out = append(out, det.ScalarMul(HarrisK16).Sub(tr.Mul(tr)))
				}
			}
			return out
		})
}

// fullStencil evaluates the stencil at every pixel, treating
// out-of-image accesses as zero (the padding semantics of the packed
// layout). Indexed by imgIdx.
func fullStencil(img []*symbolic.Poly, filter [3][3]int64) []*symbolic.Poly {
	out := make([]*symbolic.Poly, ImgH*ImgW)
	for r := 0; r < ImgH; r++ {
		for c := 0; c < ImgW; c++ {
			acc := symbolic.Zero()
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					rr, cc := r+dr, c+dc
					if rr < 0 || rr >= ImgH || cc < 0 || cc >= ImgW {
						continue
					}
					w := filter[dr+1][dc+1]
					if w != 0 {
						acc = acc.Add(img[imgIdx(rr, cc)].ScalarMul(w))
					}
				}
			}
			out[imgIdx(r, c)] = acc
		}
	}
	return out
}

// All returns the nine directly synthesized kernels in the paper's
// Table 3 order.
func All() []*Spec {
	return []*Spec{
		BoxBlur(),
		DotProduct(),
		HammingDistance(),
		L2Distance(),
		LinearRegression(),
		PolynomialRegression(),
		Gx(),
		Gy(),
		RobertsCross(),
	}
}

// ByName returns the named kernel spec (including the multi-step
// sobel and harris), or nil.
func ByName(name string) *Spec {
	for _, s := range All() {
		if s.Name == name {
			return s
		}
	}
	switch name {
	case "sobel":
		return Sobel()
	case "harris":
		return Harris()
	}
	return nil
}
