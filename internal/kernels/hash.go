package kernels

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Fingerprint returns a stable content hash of the specification: the
// vector length, every input layout, the cared output slots, and the
// canonical per-slot output polynomials. Two specs with the same
// fingerprint demand semantically identical kernels, so synthesis
// results are interchangeable between them — this is the spec half of
// the persistent synthesis-cache key.
func (s *Spec) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "spec/v1\nvec=%d\n", s.VecLen)
	for _, l := range s.Ct {
		fmt.Fprintf(h, "ct=%v\n", l.SlotOf)
	}
	for _, l := range s.Pt {
		fmt.Fprintf(h, "pt=%v\n", l.SlotOf)
	}
	fmt.Fprintf(h, "outslots=%v\n", s.OutSlots)
	for _, p := range s.Out {
		// Poly.String renders terms in sorted order, so it is canonical.
		fmt.Fprintf(h, "out=%s\n", p)
	}
	return hex.EncodeToString(h.Sum(nil))
}
