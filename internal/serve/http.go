package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"porcupine/internal/wire"
)

// maxRequestBody bounds POST /run bodies. The largest legitimate
// request (PN8192, several degree-1 ciphertext inputs) is a few MiB;
// 64 MiB leaves an order of magnitude of headroom.
const maxRequestBody = 64 << 20

// Front is the HTTP front-end over one loaded bundle and its
// scheduler — the network face of a serving process.
//
// Endpoints:
//
//	GET  /healthz  liveness + kernel identity
//	GET  /plan     plan shape, rotation set, parameter fingerprint
//	GET  /stats    scheduler statistics (latency, queue depth, batches)
//	GET  /selftest runs the bundle's embedded sample and reports
//	               whether the output is bit-identical to the
//	               exporter's (the cross-process differential check)
//	POST /run      one wire-encoded Request; responds with the
//	               wire-encoded output ciphertext
type Front struct {
	sched  *Scheduler
	bundle *wire.Bundle
	mux    *http.ServeMux
}

// NewFront builds the HTTP front-end for a bundle served by sched.
func NewFront(sched *Scheduler, bundle *wire.Bundle) *Front {
	f := &Front{sched: sched, bundle: bundle, mux: http.NewServeMux()}
	f.mux.HandleFunc("GET /healthz", f.healthz)
	f.mux.HandleFunc("GET /plan", f.plan)
	f.mux.HandleFunc("GET /stats", f.stats)
	f.mux.HandleFunc("GET /selftest", f.selftest)
	f.mux.HandleFunc("POST /run", f.run)
	return f
}

func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) { f.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (f *Front) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":     true,
		"kernel": f.bundle.Name,
		"preset": f.bundle.Preset,
	})
}

func (f *Front) plan(w http.ResponseWriter, r *http.Request) {
	p := f.bundle.Plan
	writeJSON(w, http.StatusOK, map[string]any{
		"kernel":      f.bundle.Name,
		"preset":      f.bundle.Preset,
		"fingerprint": f.bundle.Params.FingerprintHex(),
		"n":           p.N,
		"vec_len":     p.VecLen,
		"ct_inputs":   p.NumCtInputs,
		"pt_inputs":   p.NumPtInputs,
		"steps":       p.InstructionCount(),
		"registers":   p.NumRegs,
		"constants":   len(p.Consts),
		"rotations":   p.Rotations,
	})
}

func (f *Front) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.sched.Stats())
}

func (f *Front) selftest(w http.ResponseWriter, r *http.Request) {
	if f.bundle.Sample == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"ok": false, "error": "bundle carries no self-test sample",
		})
		return
	}
	start := time.Now()
	res := f.sched.Do(Request{
		Plan: f.bundle.Plan,
		CtIn: f.bundle.Sample.CtIn,
		PtIn: f.bundle.Sample.PtIn,
	})
	if res.Err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"ok": false, "error": res.Err.Error(),
		})
		return
	}
	identical := f.bundle.Params.CiphertextEqual(res.Out, f.bundle.Expected)
	status := http.StatusOK
	if !identical {
		// A non-bit-identical output means the artifact does not
		// reproduce the exporter's execution — a serving-breaking
		// condition, not a soft warning.
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, map[string]any{
		"ok":            identical,
		"bit_identical": identical,
		"latency_ms":    float64(time.Since(start).Microseconds()) / 1000.0,
	})
}

func (f *Front) run(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxRequestBody {
		http.Error(w, fmt.Sprintf("request exceeds %d bytes", maxRequestBody), http.StatusRequestEntityTooLarge)
		return
	}
	req, err := wire.DecodeRequest(f.bundle.Params, body)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, wire.ErrFingerprint) {
			// The client encrypted under different parameters; its
			// request can never run here.
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	res := f.sched.Do(Request{Plan: f.bundle.Plan, CtIn: req.CtIn, PtIn: req.PtIn})
	if res.Err != nil {
		status := http.StatusInternalServerError
		if errors.Is(res.Err, ErrClosed) {
			status = http.StatusServiceUnavailable
		} else {
			// Shape errors (wrong input counts) are the client's fault.
			status = http.StatusBadRequest
		}
		http.Error(w, res.Err.Error(), status)
		return
	}
	out, err := wire.EncodeResponse(f.bundle.Params, res.Out)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Porcupine-Latency", res.Latency.String())
	w.Write(out)
}
