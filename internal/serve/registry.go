package serve

import (
	"fmt"
	"sync"

	"porcupine/internal/backend"
	"porcupine/internal/bfv"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
	"porcupine/internal/wire"
)

// CatalogEntry is one kernel a serving process hosts: the plan, its
// proven mux lane geometry (nil when per-request only), and the
// exporter's embedded differential sample.
type CatalogEntry struct {
	Name     string
	Plan     *plan.ExecutionPlan
	Mux      *plan.Mux // nil for mux-ineligible kernels
	Sample   *wire.Request
	Expected *bfv.Ciphertext
}

// Catalog is the serving half of a registry: one shared backend
// context and one scheduler hosting every kernel of the manifest.
// Mux-eligible kernels are registered with the scheduler so that
// coalesced batches of the same kernel run lane-packed.
type Catalog struct {
	Ctx   *backend.Context
	Sched *Scheduler

	entries map[string]*CatalogEntry
	order   []string

	// Self-tests run on a private session: the expectation is exact
	// ciphertext bit-identity with the exporter, which only per-request
	// execution reproduces (a lane-packed run yields a different —
	// though equally correct — ciphertext).
	stMu   sync.Mutex
	stSess *backend.Session
}

// ExportRegistry packages the context's kernels into a wire registry.
// names, plans and samples are parallel; samples[i] may be nil to skip
// that kernel's embedded differential check, or samples itself may be
// nil. Each plan's mux lane geometry is derived here (plan.MuxParams)
// and stamped into the manifest — but only when the context's Galois
// keys cover the pack/demux rotations, so the artifact always passes
// its own decode-time coverage validation, and only when the geometry
// survives an end-to-end decrypted proof (backend.ProveMux): static
// legality cannot see the preset's noise budget, and a kernel whose
// lane-packed evaluation decrypts wrong is silently demoted to
// per-request serving rather than shipped as a wrong-answer machine.
// Only public material crosses: evaluation keys, pre-encoded
// constants, and (in samples) ciphertexts.
func ExportRegistry(ctx *backend.Context, names []string, plans []*plan.ExecutionPlan, samples []*wire.Request) (*wire.Registry, error) {
	if len(names) != len(plans) {
		return nil, fmt.Errorf("serve: %d names for %d plans", len(names), len(plans))
	}
	if samples != nil && len(samples) != len(plans) {
		return nil, fmt.Errorf("serve: %d samples for %d plans", len(samples), len(plans))
	}
	rlk, gks := ctx.EvalKeys()
	if rlk == nil || gks == nil {
		return nil, fmt.Errorf("serve: context holds no evaluation keys to export")
	}
	reg := &wire.Registry{
		Preset: ctx.Params.Name(),
		Params: ctx.Params,
		Relin:  rlk,
		Galois: gks,
	}
	slots := ctx.Params.SlotCount()
	var sess *backend.Session
	for i, p := range plans {
		e := wire.RegistryEntry{Name: names[i], Plan: p}
		if stride, lanes, _ := plan.MuxParams(p, slots, plan.DefaultMaxLanes); lanes >= 2 {
			covered := true
			for _, rot := range plan.MuxRotations(stride, lanes) {
				if g := ctx.Params.GaloisElement(rot); g != 1 && !gks.HasElement(g) {
					covered = false
					break
				}
			}
			if covered {
				m, err := plan.BuildMuxWith(ctx.Params, ctx.Encoder, p, stride, lanes)
				if err != nil {
					return nil, fmt.Errorf("serve: kernel %q mux: %w", names[i], err)
				}
				// Noise-budget proof: two trials with independent
				// encryption randomness; a failure demotes the kernel, it
				// does not fail the export.
				if ctx.CanDecrypt() {
					if err := ctx.ProveMux(m, 41+int64(i), 2); err == nil {
						e.MuxStride, e.MuxLanes = stride, lanes
					}
				} else {
					e.MuxStride, e.MuxLanes = stride, lanes
				}
			}
		}
		if samples != nil && samples[i] != nil {
			if sess == nil {
				sess = ctx.NewSession()
			}
			out, err := sess.Run(p, samples[i].CtIn, samples[i].PtIn)
			if err != nil {
				return nil, fmt.Errorf("serve: running %q export self-test sample: %w", names[i], err)
			}
			e.Sample = samples[i]
			e.Expected = ctx.Params.CopyCiphertext(out)
		}
		reg.Entries = append(reg.Entries, e)
	}
	return reg, nil
}

// NewCatalog builds a catalog over an existing context. The context
// must hold every plan's rotations plus each mux geometry's pack/demux
// rotations (registry decode already proved coverage for contexts
// sealed from the same registry).
func NewCatalog(ctx *backend.Context, reg *wire.Registry, cfg Config) (*Catalog, error) {
	c := &Catalog{
		Ctx:     ctx,
		Sched:   New(ctx, cfg),
		entries: make(map[string]*CatalogEntry, len(reg.Entries)),
	}
	for i := range reg.Entries {
		re := &reg.Entries[i]
		e := &CatalogEntry{Name: re.Name, Plan: re.Plan, Sample: re.Sample, Expected: re.Expected}
		if re.MuxLanes >= 2 {
			m, err := plan.BuildMuxWith(ctx.Params, ctx.Encoder, re.Plan, re.MuxStride, re.MuxLanes)
			if err != nil {
				c.Sched.Close()
				return nil, fmt.Errorf("serve: kernel %q mux: %w", re.Name, err)
			}
			e.Mux = m
			c.Sched.EnableMux(m)
		}
		c.entries[e.Name] = e
		c.order = append(c.order, e.Name)
	}
	return c, nil
}

// LoadRegistry builds the serving half from a decoded registry: a
// sealed execute-only context (no secret key) and a catalog over it.
// The registry must already be validated (wire.DecodeRegistry always
// is).
func LoadRegistry(reg *wire.Registry, cfg Config) (*Catalog, error) {
	ctx, err := backend.NewSealedContext(reg.Params, reg.Relin, reg.Galois)
	if err != nil {
		return nil, err
	}
	return NewCatalog(ctx, reg, cfg)
}

// Kernels returns the hosted kernel names in manifest order.
func (c *Catalog) Kernels() []string { return c.order }

// Entry returns the named kernel, or nil.
func (c *Catalog) Entry(name string) *CatalogEntry { return c.entries[name] }

// Do submits one request against the named kernel and blocks for its
// result.
func (c *Catalog) Do(name string, ctIn []*bfv.Ciphertext, ptIn []quill.Vec) Result {
	e := c.entries[name]
	if e == nil {
		return Result{Err: fmt.Errorf("serve: unknown kernel %q", name)}
	}
	return c.Sched.Do(Request{Plan: e.Plan, Kernel: e.Name, CtIn: ctIn, PtIn: ptIn})
}

// SelfTest executes the named kernel's embedded sample and reports
// whether the output is bit-identical to the exporter's expectation —
// the cross-process differential check. Runs per-request on a private
// session (never lane-packed) so the comparison is exact.
func (c *Catalog) SelfTest(name string) (bool, error) {
	e := c.entries[name]
	if e == nil {
		return false, fmt.Errorf("serve: unknown kernel %q", name)
	}
	if e.Sample == nil {
		return false, fmt.Errorf("serve: kernel %q carries no self-test sample", name)
	}
	c.stMu.Lock()
	defer c.stMu.Unlock()
	if c.stSess == nil {
		c.stSess = c.Ctx.NewSession()
	}
	out, err := c.stSess.Run(e.Plan, e.Sample.CtIn, e.Sample.PtIn)
	if err != nil {
		return false, err
	}
	return c.Ctx.Params.CiphertextEqual(out, e.Expected), nil
}

// Close drains and shuts down the catalog's scheduler.
func (c *Catalog) Close() { c.Sched.Close() }
