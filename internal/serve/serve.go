// Package serve is the multi-request serving core: a batched request
// scheduler that owns a bounded pool of execution sessions over one
// shared backend.Context, admits requests from any number of
// producers, coalesces them into per-plan batches, and reports
// per-request latency plus queue-depth and throughput statistics.
//
// The scheduler replaces the flat one-goroutine-per-worker loop of the
// original `-run` mode: producers submit requests; a dispatcher groups
// them into batches (same plan, bounded size and wait window); session
// workers execute batches back-to-back on goroutine-local sessions.
// Grouping same-plan requests onto one session keeps its register file
// and plaintext scratch at steady-state shape, so every request after
// a session's first run of a plan executes allocation-free.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"porcupine/internal/backend"
	"porcupine/internal/bfv"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
)

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("serve: scheduler closed")

// Config sizes the scheduler. Zero fields take defaults.
type Config struct {
	// Sessions is the number of concurrent execution sessions (and
	// worker goroutines) over the shared context. Default 1, or the
	// batch-level share of Workers when a total budget is set.
	Sessions int
	// QueueDepth bounds the admission queue; producers block (Do) once
	// the queue is full — backpressure instead of unbounded buffering.
	// Default 64.
	QueueDepth int
	// MaxBatch is the largest number of requests coalesced into one
	// batch. Default 8.
	MaxBatch int
	// BatchWindow is how long the dispatcher waits to grow a batch
	// beyond the first request before dispatching what it has. Default
	// 200µs: long enough to coalesce a concurrent burst, far below a
	// single HE instruction latency. The window (and deep batching)
	// applies only while every session is busy — when sessions sit
	// idle, queued requests are spread across them immediately, so
	// coalescing never serializes work the pool could run in parallel.
	BatchWindow time.Duration

	// RingWorkers is the intra-operation parallelism of the HE
	// primitives (NTT rows, pointwise loops, lazy inner products —
	// Parameters.SetWorkers). Applied to the served context by New.
	// 0/1 = serial loops.
	RingWorkers int
	// PlanWorkers is the per-session step-level parallelism: with
	// PlanWorkers > 1 the independent steps of each dependency level of
	// a plan execute concurrently (Session.SetParallelism). Defaults to
	// RingWorkers — both layers draw from the same ring worker pool,
	// which is work-conserving, so sharing the budget degrades
	// gracefully rather than oversubscribing.
	PlanWorkers int
	// Workers is the total core budget to partition between batch-level
	// concurrency (Sessions) and intra-request parallelism
	// (RingWorkers/PlanWorkers) when those fields are unset. The static
	// split favors batch-level concurrency — independent requests scale
	// with no serial fraction, while ring parallelism pays per-chunk
	// overhead — so Sessions defaults to the whole budget; TuneConfig
	// refines the split with startup measurements when a self-test
	// sample is available. 0 = no budget, fields take their own
	// defaults.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Workers > 0 {
		if c.Sessions < 1 {
			if c.RingWorkers > 1 {
				c.Sessions = c.Workers / c.RingWorkers
			} else {
				c.Sessions = c.Workers
			}
		} else if c.RingWorkers == 0 {
			c.RingWorkers = c.Workers / c.Sessions
		}
	}
	if c.PlanWorkers == 0 {
		c.PlanWorkers = c.RingWorkers
	}
	if c.Sessions < 1 {
		c.Sessions = 1
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 8
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	return c
}

// Request is one plan execution: the plan plus its inputs. CtIn and
// PtIn must match the plan's declared input counts.
type Request struct {
	Plan *plan.ExecutionPlan
	CtIn []*bfv.Ciphertext
	PtIn []quill.Vec
	// Kernel is an optional name for per-kernel stats attribution (set
	// by the registry router; empty requests aggregate only into the
	// scheduler-wide counters).
	Kernel string
}

// Result is the outcome of one request.
type Result struct {
	// Out is the output ciphertext, a fresh copy owned by the caller
	// (nil when Err is set).
	Out *bfv.Ciphertext
	// Latency is admission-to-completion wall time; Wait is the part
	// of it spent queued before a session picked the request up.
	Latency time.Duration
	Wait    time.Duration
	// Batch is the size of the batch the request executed in.
	Batch int
	// Lanes is the size of the slot-multiplexed group the request
	// executed in: ≥ 2 when it shared one lane-packed ciphertext
	// evaluation with other requests, 0 for per-request execution.
	Lanes int
	Err   error
}

// Stats is a point-in-time snapshot of scheduler counters.
type Stats struct {
	Submitted uint64 `json:"submitted"`
	Served    uint64 `json:"served"` // completed OK
	Failed    uint64 `json:"failed"` // completed with error
	Rejected  uint64 `json:"rejected"`

	Batches       uint64  `json:"batches"`
	MaxBatchSeen  int     `json:"max_batch"`
	AvgBatch      float64 `json:"avg_batch"`
	QueueDepth    int     `json:"queue_depth"`     // instantaneous
	MaxQueueDepth int     `json:"max_queue_depth"` // high-water mark

	AvgLatency time.Duration `json:"avg_latency_ns"`
	MaxLatency time.Duration `json:"max_latency_ns"`
	AvgWait    time.Duration `json:"avg_wait_ns"`

	// Throughput is completed requests per second over the scheduler's
	// lifetime so far.
	Throughput float64 `json:"throughput_rps"`

	// MuxGroups counts lane-packed ciphertext evaluations; MuxedRequests
	// counts the requests they carried (≥ 2 per group).
	MuxGroups     uint64 `json:"mux_groups"`
	MuxedRequests uint64 `json:"muxed_requests"`

	// Kernels breaks completions down by Request.Kernel (absent for
	// unnamed requests).
	Kernels map[string]KernelStats `json:"kernels,omitempty"`
}

// KernelStats is the per-kernel slice of the scheduler counters.
type KernelStats struct {
	Served uint64 `json:"served"`
	Failed uint64 `json:"failed"`
	// Muxed counts the served requests that rode a lane-packed group.
	Muxed uint64 `json:"muxed"`
}

type job struct {
	req   Request
	enq   time.Time
	start time.Time
	batch int
	done  chan Result
}

// Scheduler coalesces and executes requests against one shared
// context. All methods are safe for concurrent use.
type Scheduler struct {
	ctx *backend.Context
	cfg Config

	queue   chan *job
	batches chan []*job

	mu     sync.Mutex // guards closed + stats + muxes
	idle   *sync.Cond // signaled when depth reaches 0 (Close waits on it)
	closed bool
	st     stats

	// muxes maps plans to their registered slot-multiplexing
	// capability (EnableMux). Workers execute multi-request batches of
	// a registered plan as lane-packed groups; everything else runs
	// per-request.
	muxes map[*plan.ExecutionPlan]*plan.Mux

	// busy counts batches handed to (or executing on) workers; the
	// dispatcher uses Sessions - busy to decide between coalescing
	// (all sessions occupied: batching is free) and spreading (idle
	// sessions: dispatch immediately, smallest batches possible).
	busy atomic.Int64

	dispatcherDone chan struct{}
	workersDone    sync.WaitGroup
	started        time.Time
}

type stats struct {
	submitted, served, failed, rejected uint64
	batches                             uint64
	batchedJobs                         uint64
	maxBatch                            int
	depth, maxDepth                     int
	totalLatency, maxLatency            time.Duration
	totalWait                           time.Duration
	muxGroups, muxedJobs                uint64
	kernels                             map[string]*KernelStats
}

// New builds and starts a scheduler over ctx. A non-zero RingWorkers
// is applied to the context's parameters, routing every session's ring
// hot loops through the persistent worker pool.
func New(ctx *backend.Context, cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	if cfg.RingWorkers > 0 {
		ctx.Params.SetWorkers(cfg.RingWorkers)
	}
	s := &Scheduler{
		ctx:            ctx,
		cfg:            cfg,
		queue:          make(chan *job, cfg.QueueDepth),
		batches:        make(chan []*job),
		dispatcherDone: make(chan struct{}),
		started:        time.Now(),
	}
	s.idle = sync.NewCond(&s.mu)
	go s.dispatch()
	for i := 0; i < cfg.Sessions; i++ {
		s.workersDone.Add(1)
		go s.worker()
	}
	return s
}

// Do submits a request and blocks until its result. It applies
// backpressure: when the admission queue is full, Do blocks until a
// slot frees up.
func (s *Scheduler) Do(req Request) Result {
	return <-s.Submit(req)
}

// Submit enqueues a request and returns a channel that will receive
// exactly one Result. Submission after Close resolves immediately with
// ErrClosed.
func (s *Scheduler) Submit(req Request) <-chan Result {
	j := &job{req: req, enq: time.Now(), done: make(chan Result, 1)}
	s.mu.Lock()
	if s.closed {
		s.st.rejected++
		s.mu.Unlock()
		j.done <- Result{Err: ErrClosed}
		return j.done
	}
	s.st.submitted++
	s.st.depth++
	if s.st.depth > s.st.maxDepth {
		s.st.maxDepth = s.st.depth
	}
	s.mu.Unlock()
	// Safe even racing Close: a producer that passed the closed check
	// has already incremented depth, and Close only closes the queue
	// channel after depth drains back to zero.
	s.queue <- j
	return j.done
}

// dispatch groups queued jobs into batches: same plan, at most
// MaxBatch jobs, waiting at most BatchWindow after the first job to
// grow the batch. Coalescing deeper than necessary would serialize
// onto one session work that idle sessions could run concurrently, so
// the window and the full batch bound apply only when every session
// is busy; with idle sessions the dispatcher drains without waiting
// and caps the batch so the rest of the queue spreads across them.
func (s *Scheduler) dispatch() {
	defer close(s.dispatcherDone)
	var held *job // job that ended the previous batch (different plan)
	for {
		first := held
		held = nil
		if first == nil {
			var ok bool
			if first, ok = <-s.queue; !ok {
				close(s.batches)
				return
			}
		}
		maxBatch := s.cfg.MaxBatch
		wait := true
		if idle := s.cfg.Sessions - int(s.busy.Load()); idle > 1 {
			wait = false
			if spread := 1 + len(s.queue)/idle; spread < maxBatch {
				maxBatch = spread
			}
		}
		batch := []*job{first}
		var deadline *time.Timer
		if wait {
			deadline = time.NewTimer(s.cfg.BatchWindow)
		}
	fill:
		for len(batch) < maxBatch {
			var j *job
			var ok bool
			if wait {
				select {
				case j, ok = <-s.queue:
				case <-deadline.C:
					break fill
				}
			} else {
				select {
				case j, ok = <-s.queue:
				default:
					break fill
				}
			}
			if !ok {
				break fill
			}
			if j.req.Plan != first.req.Plan {
				held = j
				break fill
			}
			batch = append(batch, j)
		}
		if deadline != nil {
			deadline.Stop()
		}
		s.mu.Lock()
		s.st.batches++
		s.st.batchedJobs += uint64(len(batch))
		if len(batch) > s.st.maxBatch {
			s.st.maxBatch = len(batch)
		}
		s.mu.Unlock()
		for _, j := range batch {
			j.batch = len(batch)
		}
		s.busy.Add(1) // decremented by the worker when the batch completes
		s.batches <- batch
	}
}

// EnableMux registers a plan's slot-multiplexing capability: workers
// then execute multi-request batches of mux.Base as lane-packed groups
// (up to mux.Lanes requests per ciphertext evaluation), demuxing one
// result per request. The context must hold the mux's pack/demux
// Galois keys. Safe to call concurrently with serving; requests
// already dispatched keep their execution mode.
func (s *Scheduler) EnableMux(m *plan.Mux) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.muxes == nil {
		s.muxes = make(map[*plan.ExecutionPlan]*plan.Mux)
	}
	s.muxes[m.Base] = m
}

func (s *Scheduler) muxFor(p *plan.ExecutionPlan) *plan.Mux {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.muxes[p]
}

// worker owns one session and executes batches back-to-back. Batches
// of a mux-registered plan run lane-packed (one ciphertext evaluation
// carrying every member); anything else — unregistered plans,
// single-request batches, or a packed run that fails validation —
// runs per-request on the worker's session.
func (s *Scheduler) worker() {
	defer s.workersDone.Done()
	sess := s.ctx.NewSession()
	sess.SetParallelism(s.cfg.PlanWorkers)
	// Lazily-built mux runners, one per plan per worker: each owns its
	// own session and packed-input scratch, reused across batches so
	// steady-state muxed execution allocates nothing.
	var runners map[*plan.ExecutionPlan]*backend.MuxRunner
	var ctIns [][]*bfv.Ciphertext
	var ptIns [][]quill.Vec
	for batch := range s.batches {
		m := s.muxFor(batch[0].req.Plan)
		if m == nil || len(batch) < 2 {
			for _, j := range batch {
				s.runOne(sess, j)
			}
			s.busy.Add(-1)
			continue
		}
		if runners == nil {
			runners = make(map[*plan.ExecutionPlan]*backend.MuxRunner)
		}
		runner := runners[batch[0].req.Plan]
		if runner == nil {
			runner = s.ctx.NewMuxRunner(m)
			runner.SetParallelism(s.cfg.PlanWorkers)
			runners[batch[0].req.Plan] = runner
		}
		for start := 0; start < len(batch); start += m.Lanes {
			end := start + m.Lanes
			if end > len(batch) {
				end = len(batch)
			}
			group := batch[start:end]
			if len(group) < 2 {
				s.runOne(sess, group[0])
				continue
			}
			ctIns, ptIns = ctIns[:0], ptIns[:0]
			now := time.Now()
			for _, j := range group {
				j.start = now
				ctIns = append(ctIns, j.req.CtIn)
				ptIns = append(ptIns, j.req.PtIn)
			}
			outs, err := runner.Run(ctIns, ptIns)
			if err != nil {
				// A packed run fails as a unit (one malformed member is
				// enough); per-request execution gives every member its
				// own precise verdict.
				for _, j := range group {
					s.runOne(sess, j)
				}
				continue
			}
			s.mu.Lock()
			s.st.muxGroups++
			s.st.muxedJobs += uint64(len(group))
			s.mu.Unlock()
			for i, j := range group {
				res := Result{
					Batch: j.batch,
					Lanes: len(group),
					Wait:  j.start.Sub(j.enq),
					Out:   s.ctx.Params.CopyCiphertext(outs[i]),
				}
				res.Latency = time.Since(j.enq)
				s.finish(j.req.Kernel, res)
				j.done <- res
			}
		}
		s.busy.Add(-1)
	}
}

// runOne executes one job per-request on the worker's session.
func (s *Scheduler) runOne(sess *backend.Session, j *job) {
	j.start = time.Now()
	res := Result{Batch: j.batch, Wait: j.start.Sub(j.enq)}
	out, err := sess.Run(j.req.Plan, j.req.CtIn, j.req.PtIn)
	if err != nil {
		res.Err = fmt.Errorf("serve: %w", err)
	} else {
		// Copy out of the session's register file so the result
		// survives the session's next run.
		res.Out = s.ctx.Params.CopyCiphertext(out)
	}
	res.Latency = time.Since(j.enq)
	s.finish(j.req.Kernel, res)
	j.done <- res
}

func (s *Scheduler) finish(kernel string, res Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.depth--
	if s.st.depth == 0 {
		s.idle.Broadcast()
	}
	if res.Err != nil {
		s.st.failed++
	} else {
		s.st.served++
	}
	if kernel != "" {
		if s.st.kernels == nil {
			s.st.kernels = make(map[string]*KernelStats)
		}
		ks := s.st.kernels[kernel]
		if ks == nil {
			ks = &KernelStats{}
			s.st.kernels[kernel] = ks
		}
		if res.Err != nil {
			ks.Failed++
		} else {
			ks.Served++
			if res.Lanes >= 2 {
				ks.Muxed++
			}
		}
	}
	s.st.totalLatency += res.Latency
	if res.Latency > s.st.maxLatency {
		s.st.maxLatency = res.Latency
	}
	s.st.totalWait += res.Wait
}

// Config returns the scheduler's resolved configuration — defaults
// and worker-budget partitioning applied — so callers can report the
// session/ring split actually in effect.
func (s *Scheduler) Config() Config { return s.cfg }

// Stats returns a snapshot of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Submitted:     s.st.submitted,
		Served:        s.st.served,
		Failed:        s.st.failed,
		Rejected:      s.st.rejected,
		Batches:       s.st.batches,
		MaxBatchSeen:  s.st.maxBatch,
		QueueDepth:    s.st.depth,
		MaxQueueDepth: s.st.maxDepth,
		MuxGroups:     s.st.muxGroups,
		MuxedRequests: s.st.muxedJobs,
	}
	if len(s.st.kernels) > 0 {
		st.Kernels = make(map[string]KernelStats, len(s.st.kernels))
		for name, ks := range s.st.kernels {
			st.Kernels[name] = *ks
		}
	}
	if s.st.batches > 0 {
		st.AvgBatch = float64(s.st.batchedJobs) / float64(s.st.batches)
	}
	if done := s.st.served + s.st.failed; done > 0 {
		st.AvgLatency = s.st.totalLatency / time.Duration(done)
		st.AvgWait = s.st.totalWait / time.Duration(done)
		st.Throughput = float64(done) / time.Since(s.started).Seconds()
	}
	st.MaxLatency = s.st.maxLatency
	return st
}

// Close stops admission, drains every in-flight request (each still
// receives its Result), and waits for the workers to exit. Safe to
// call concurrently with Submit and more than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	first := !s.closed
	s.closed = true
	// Wait for every admitted request to complete. Producers that
	// passed the closed check have already incremented depth, so once
	// it reaches zero nobody is about to send on the queue and closing
	// it is safe.
	for s.st.depth > 0 {
		s.idle.Wait()
	}
	s.mu.Unlock()
	if first {
		close(s.queue)
	}
	<-s.dispatcherDone
	s.workersDone.Wait()
}
