package serve

import (
	"fmt"
	"time"

	"porcupine/internal/backend"
	"porcupine/internal/plan"
	"porcupine/internal/wire"
)

// Export packages a compiled plan and the exporting context's public
// evaluation keys into a wire bundle. When sample is non-nil, the plan
// is executed once in-process on it and the output ciphertext is
// embedded as the bundle's self-test expectation — the reference every
// loading process must reproduce bit for bit.
//
// Only public material crosses: the relinearization key, the Galois
// keys, pre-encoded plaintext constants, and (in the sample)
// ciphertexts. The secret key stays in this process.
func Export(ctx *backend.Context, name string, p *plan.ExecutionPlan, sample *wire.Request) (*wire.Bundle, error) {
	rlk, gks := ctx.EvalKeys()
	if rlk == nil || gks == nil {
		return nil, fmt.Errorf("serve: context holds no evaluation keys to export")
	}
	b := &wire.Bundle{
		Name:   name,
		Preset: ctx.Params.Name(),
		Params: ctx.Params,
		Plan:   p,
		Relin:  rlk,
		Galois: gks,
	}
	if sample != nil {
		out, err := ctx.NewSession().Run(p, sample.CtIn, sample.PtIn)
		if err != nil {
			return nil, fmt.Errorf("serve: running export self-test sample: %w", err)
		}
		b.Sample = sample
		b.Expected = ctx.Params.CopyCiphertext(out)
	}
	return b, nil
}

// Load builds the serving half from a decoded bundle: a sealed
// execute-only context (no secret key) and a scheduler over it. The
// bundle must already be validated (wire.DecodeBundle always is).
//
// When cfg.Workers sets a total core budget without pinning Sessions
// or RingWorkers, Load partitions the budget between batch-level and
// intra-request parallelism — measured on the bundle's self-test
// sample (TuneConfig) when one is embedded, statically otherwise.
func Load(b *wire.Bundle, cfg Config) (*backend.Context, *Scheduler, error) {
	ctx, err := backend.NewSealedContext(b.Params, b.Relin, b.Galois)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Workers > 0 && cfg.Sessions == 0 && cfg.RingWorkers == 0 {
		cfg = TuneConfig(ctx, b, cfg)
	}
	return ctx, New(ctx, cfg), nil
}

// TuneConfig partitions cfg.Workers between batch-level concurrency
// and intra-request (ring + step) parallelism by measuring the
// bundle's self-test sample at startup: for every candidate
// intra-request share r ∈ {1, 2, 4, … ≤ budget} it times the sample at
// RingWorkers = PlanWorkers = r and scores the partition by the
// steady-load throughput model (budget/r sessions, each completing a
// request every L(r)) — i.e. it maximizes (budget/r)/L(r). Ties break
// toward smaller r (more sessions): batch-level concurrency has no
// serial fraction, so it only loses when intra-request speedup is
// superlinear per core, which never happens.
//
// Bundles without a sample (or a budget of one) fall back to the
// static split of Config.withDefaults. The context's worker setting is
// left at the chosen share.
func TuneConfig(ctx *backend.Context, b *wire.Bundle, cfg Config) Config {
	budget := cfg.Workers
	if budget <= 1 || b.Sample == nil {
		return cfg
	}
	sess := ctx.NewSession()
	measure := func(r int) (time.Duration, error) {
		ctx.Params.SetWorkers(r)
		sess.SetParallelism(r)
		// One warm-up sizes the register file; the timed runs then
		// measure steady-state execution. Min of 3 is robust against
		// scheduling noise at startup.
		if _, err := sess.Run(b.Plan, b.Sample.CtIn, b.Sample.PtIn); err != nil {
			return 0, err
		}
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := sess.Run(b.Plan, b.Sample.CtIn, b.Sample.PtIn); err != nil {
				return 0, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	bestR, bestScore := 1, 0.0
	for r := 1; r <= budget; r *= 2 {
		lat, err := measure(r)
		if err != nil || lat <= 0 {
			break
		}
		score := float64(budget/r) / lat.Seconds()
		if score > bestScore {
			bestR, bestScore = r, score
		}
	}
	ctx.Params.SetWorkers(bestR)
	cfg.RingWorkers = bestR
	cfg.PlanWorkers = bestR
	cfg.Sessions = budget / bestR
	return cfg
}

// SelfTest executes the bundle's embedded sample through sched and
// reports whether the output is bit-identical to the exporter's
// expectation — the cross-process differential check.
func SelfTest(sched *Scheduler, b *wire.Bundle) (bool, error) {
	if b.Sample == nil {
		return false, fmt.Errorf("serve: bundle carries no self-test sample")
	}
	res := sched.Do(Request{Plan: b.Plan, CtIn: b.Sample.CtIn, PtIn: b.Sample.PtIn})
	if res.Err != nil {
		return false, res.Err
	}
	return b.Params.CiphertextEqual(res.Out, b.Expected), nil
}
