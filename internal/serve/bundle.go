package serve

import (
	"fmt"

	"porcupine/internal/backend"
	"porcupine/internal/plan"
	"porcupine/internal/wire"
)

// Export packages a compiled plan and the exporting context's public
// evaluation keys into a wire bundle. When sample is non-nil, the plan
// is executed once in-process on it and the output ciphertext is
// embedded as the bundle's self-test expectation — the reference every
// loading process must reproduce bit for bit.
//
// Only public material crosses: the relinearization key, the Galois
// keys, pre-encoded plaintext constants, and (in the sample)
// ciphertexts. The secret key stays in this process.
func Export(ctx *backend.Context, name string, p *plan.ExecutionPlan, sample *wire.Request) (*wire.Bundle, error) {
	rlk, gks := ctx.EvalKeys()
	if rlk == nil || gks == nil {
		return nil, fmt.Errorf("serve: context holds no evaluation keys to export")
	}
	b := &wire.Bundle{
		Name:   name,
		Preset: ctx.Params.Name(),
		Params: ctx.Params,
		Plan:   p,
		Relin:  rlk,
		Galois: gks,
	}
	if sample != nil {
		out, err := ctx.NewSession().Run(p, sample.CtIn, sample.PtIn)
		if err != nil {
			return nil, fmt.Errorf("serve: running export self-test sample: %w", err)
		}
		b.Sample = sample
		b.Expected = ctx.Params.CopyCiphertext(out)
	}
	return b, nil
}

// Load builds the serving half from a decoded bundle: a sealed
// execute-only context (no secret key) and a scheduler over it. The
// bundle must already be validated (wire.DecodeBundle always is).
func Load(b *wire.Bundle, cfg Config) (*backend.Context, *Scheduler, error) {
	ctx, err := backend.NewSealedContext(b.Params, b.Relin, b.Galois)
	if err != nil {
		return nil, nil, err
	}
	return ctx, New(ctx, cfg), nil
}

// SelfTest executes the bundle's embedded sample through sched and
// reports whether the output is bit-identical to the exporter's
// expectation — the cross-process differential check.
func SelfTest(sched *Scheduler, b *wire.Bundle) (bool, error) {
	if b.Sample == nil {
		return false, fmt.Errorf("serve: bundle carries no self-test sample")
	}
	res := sched.Do(Request{Plan: b.Plan, CtIn: b.Sample.CtIn, PtIn: b.Sample.PtIn})
	if res.Err != nil {
		return false, res.Err
	}
	return b.Params.CiphertextEqual(res.Out, b.Expected), nil
}
