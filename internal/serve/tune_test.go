package serve

import (
	"math/rand"
	"testing"

	"porcupine/internal/backend"
	"porcupine/internal/bfv"
	"porcupine/internal/quill"
	"porcupine/internal/wire"
)

func TestConfigPartitioning(t *testing.T) {
	for _, tc := range []struct {
		in                       Config
		sessions, ring, planWork int
	}{
		// No budget: serial defaults.
		{Config{}, 1, 0, 0},
		// Budget with nothing pinned: batch-level gets it all.
		{Config{Workers: 4}, 4, 0, 0},
		// Budget with ring share pinned: sessions get the rest.
		{Config{Workers: 8, RingWorkers: 2}, 4, 2, 2},
		// Budget with sessions pinned: ring gets the rest.
		{Config{Workers: 8, Sessions: 2}, 2, 4, 4},
		// Everything pinned: budget is ignored.
		{Config{Workers: 8, Sessions: 3, RingWorkers: 2}, 3, 2, 2},
		// PlanWorkers defaults to RingWorkers, but can diverge.
		{Config{RingWorkers: 4, PlanWorkers: 2}, 1, 4, 2},
	} {
		got := tc.in.withDefaults()
		if got.Sessions != tc.sessions || got.RingWorkers != tc.ring || got.PlanWorkers != tc.planWork {
			t.Errorf("%+v: partitioned to Sessions=%d RingWorkers=%d PlanWorkers=%d, want %d/%d/%d",
				tc.in, got.Sessions, got.RingWorkers, got.PlanWorkers, tc.sessions, tc.ring, tc.planWork)
		}
	}
}

// TestTunedLoadServesIdentically loads a bundle under a total worker
// budget — exercising TuneConfig's startup measurement on the
// self-test sample — and checks the tuned scheduler still reproduces
// the exporter's expectation bit for bit.
func TestTunedLoadServesIdentically(t *testing.T) {
	l := &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 2},
			{Op: quill.OpAddCtCt, Dst: 3, A: 1, B: 2},
			{Op: quill.OpMulCtCt, Dst: 4, A: 3, B: 0},
			{Op: quill.OpRelin, Dst: 5, A: 4},
		},
		Output: 5,
	}
	ctx, plans, err := backend.NewTestServingContext("PN2048", 21, l)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	v := make(quill.Vec, l.VecLen)
	for j := range v {
		v[j] = rng.Uint64() % 64
	}
	ct, err := ctx.EncryptVec(v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Export(ctx, "tune-test", plans[0], &wire.Request{CtIn: []*bfv.Ciphertext{ct}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := wire.DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	lctx, sched, err := Load(loaded, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	got := sched.Config()
	if got.RingWorkers < 1 || got.Sessions < 1 || got.Sessions*got.RingWorkers > 4 {
		t.Fatalf("tuned partition Sessions=%d RingWorkers=%d exceeds budget 4", got.Sessions, got.RingWorkers)
	}
	if lctx.Params.Workers() != got.RingWorkers {
		t.Fatalf("context workers %d, want tuned %d", lctx.Params.Workers(), got.RingWorkers)
	}
	ok, err := SelfTest(sched, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("tuned scheduler not bit-identical to exporter expectation")
	}
}
