package serve

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"porcupine/internal/backend"
	"porcupine/internal/bfv"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
)

// fixture builds a deterministic PN2048 context with two plans and a
// concrete reference output per plan.
type fixture struct {
	ctx      *backend.Context
	plans    []*planWithIO
	programs []*quill.Lowered
}

type planWithIO struct {
	plan *plan.ExecutionPlan
	ctIn []*bfv.Ciphertext
	ptIn []quill.Vec
	ref  *bfv.Ciphertext
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	mk := func(rot int) *quill.Lowered {
		return &quill.Lowered{
			VecLen: 1024, NumCtInputs: 2, NumPtInputs: 1,
			Instrs: []quill.LInstr{
				{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: rot},
				{Op: quill.OpAddCtCt, Dst: 3, A: 2, B: 1},
				{Op: quill.OpMulCtCt, Dst: 4, A: 3, B: 0},
				{Op: quill.OpRelin, Dst: 5, A: 4},
				{Op: quill.OpMulCtPt, Dst: 6, A: 5, P: quill.PtRef{Input: 0}},
			},
			Output: 6,
		}
	}
	programs := []*quill.Lowered{mk(1), mk(5)}
	ctx, plans, err := backend.NewTestServingContext("PN2048", 5, programs...)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{ctx: ctx, programs: programs}
	rng := rand.New(rand.NewSource(8))
	vec := func() quill.Vec {
		v := make(quill.Vec, 1024)
		for j := range v {
			v[j] = rng.Uint64() % 64
		}
		return v
	}
	for i, p := range plans {
		io := &planWithIO{plan: p, ptIn: []quill.Vec{vec()}}
		for k := 0; k < 2; k++ {
			ct, err := ctx.EncryptVec(vec())
			if err != nil {
				t.Fatal(err)
			}
			io.ctIn = append(io.ctIn, ct)
		}
		ref, err := backend.RuntimeOver(ctx).RunInterpreter(programs[i], io.ctIn, io.ptIn)
		if err != nil {
			t.Fatal(err)
		}
		io.ref = ref
		f.plans = append(f.plans, io)
	}
	return f
}

// TestBackpressureAndDrainHoisted drives the scheduler with
// shared-rotation requests (the session path that keeps decomposition
// scratch in per-session slots) through a deliberately tiny
// admission queue, and checks the two bounded-queue contracts:
//
//   - backpressure: producers block in Do once the queue fills, so
//     the admitted-but-incomplete count stays near the configured
//     bound instead of growing with the number of producers;
//   - graceful drain: Close called while requests are in flight lets
//     every admitted request finish with a bit-identical result, and
//     everything after Close is rejected with ErrClosed.
//
// Runs under -race in CI (the internal/serve race job).
func TestBackpressureAndDrainHoisted(t *testing.T) {
	l := &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 2},
			{Op: quill.OpRotCt, Dst: 3, A: 0, Rot: -5},
			{Op: quill.OpRotCt, Dst: 4, A: 0, Rot: 9},
			{Op: quill.OpAddCtCt, Dst: 5, A: 1, B: 2},
			{Op: quill.OpAddCtCt, Dst: 6, A: 5, B: 3},
			{Op: quill.OpAddCtCt, Dst: 7, A: 6, B: 4},
		},
		Output: 7,
	}
	ctx, plans, err := backend.NewTestServingContext("PN2048", 9, l)
	if err != nil {
		t.Fatal(err)
	}
	p := plans[0]
	if g, _, _ := p.SharedGroups(); g == 0 {
		t.Fatalf("expected a plan with shared rotation groups, got %d", g)
	}
	rng := rand.New(rand.NewSource(6))
	v := make(quill.Vec, l.VecLen)
	for j := range v {
		v[j] = rng.Uint64() % 64
	}
	ct, err := ctx.EncryptVec(v)
	if err != nil {
		t.Fatal(err)
	}
	ctIn := []*bfv.Ciphertext{ct}
	ref, err := backend.RuntimeOver(ctx).RunInterpreter(l, ctIn, nil)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{Sessions: 1, QueueDepth: 1, MaxBatch: 2, BatchWindow: 100 * time.Microsecond}
	s := New(ctx, cfg)

	// Backpressure, proven causally (no timing): one goroutine submits
	// `total` requests back-to-back. The pipeline can absorb at most
	// `absorb` admitted-but-unfinished requests (queue buffer + the
	// dispatcher's held job + one batch in handoff + one executing
	// batch), so the admission queue being full must block Submit until
	// completions free capacity: by the time the last Submit returns,
	// at least total-absorb requests have already completed. Without
	// blocking admission (the regression this guards) the submitter
	// could race through all `total` sends with zero completions.
	const total = 20
	// queue buffer + dispatcher's popped job + held job + one batch in
	// handoff + one executing batch
	absorb := cfg.QueueDepth + 2 + 2*cfg.MaxBatch
	var completed atomic.Int64
	var collectors sync.WaitGroup
	for i := 0; i < total; i++ {
		ch := s.Submit(Request{Plan: p, CtIn: ctIn})
		collectors.Add(1)
		go func() {
			defer collectors.Done()
			res := <-ch
			if res.Err == nil {
				completed.Add(1)
			}
		}()
	}
	// The worker bumps Served (under the stats lock) before delivering
	// each result, so this snapshot does not depend on collector
	// goroutine scheduling — only on the causal chain above.
	flushed := s.Stats().Served
	collectors.Wait()
	if min := uint64(total - absorb); flushed < min {
		t.Errorf("after %d blocking submits only %d requests had completed, want ≥ %d (admission not applying backpressure)", total, flushed, min)
	}
	if got := completed.Load(); got != total {
		t.Fatalf("%d of %d backpressure-phase requests completed", got, total)
	}

	const producers, perProducer = 6, 3
	var wg sync.WaitGroup
	var served, rejected int64
	errs := make(chan error, producers*perProducer)
	firstDone := make(chan struct{})
	var firstOnce sync.Once
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				res := s.Do(Request{Plan: p, CtIn: ctIn})
				switch {
				case errors.Is(res.Err, ErrClosed):
					atomic.AddInt64(&rejected, 1)
				case res.Err != nil:
					errs <- res.Err
					return
				case !ctx.Params.CiphertextEqual(res.Out, ref):
					errs <- errors.New("hoisted response not bit-identical to reference")
					return
				default:
					atomic.AddInt64(&served, 1)
					firstOnce.Do(func() { close(firstDone) })
				}
			}
		}()
	}
	// Close mid-flight: requests are queued and executing when the
	// drain starts. Close must block until every admitted request has
	// its result, and must not deadlock against blocked producers.
	<-firstDone
	s.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if got := atomic.LoadInt64(&served) + total; st.Served != uint64(got) {
		t.Errorf("stats served = %d, test saw %d", st.Served, got)
	}
	if got := atomic.LoadInt64(&rejected); st.Rejected != uint64(got) {
		t.Errorf("stats rejected = %d, producers saw %d", st.Rejected, got)
	}
	if st.Served+st.Rejected != producers*perProducer+total {
		t.Errorf("served %d + rejected %d != %d submitted", st.Served, st.Rejected, producers*perProducer+total)
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue depth %d after Close, want 0 (drained)", st.QueueDepth)
	}
	if st.Failed != 0 {
		t.Errorf("%d failed requests", st.Failed)
	}

	// Everything after the drain is rejected, immediately.
	if res := s.Do(Request{Plan: p, CtIn: ctIn}); !errors.Is(res.Err, ErrClosed) {
		t.Errorf("post-Close Do: err = %v, want ErrClosed", res.Err)
	}
	// Close is idempotent.
	s.Close()
}

// TestConcurrentProducers floods the scheduler from many producers
// over two distinct plans and requires every single response to be a
// bit-identical copy of that plan's reference output — the serving
// correctness contract under -race.
func TestConcurrentProducers(t *testing.T) {
	f := newFixture(t)
	s := New(f.ctx, Config{Sessions: 3, QueueDepth: 8, MaxBatch: 4})
	defer s.Close()

	const producers, perProducer = 6, 8
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for w := 0; w < producers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			io := f.plans[w%len(f.plans)]
			for i := 0; i < perProducer; i++ {
				res := s.Do(Request{Plan: io.plan, CtIn: io.ctIn, PtIn: io.ptIn})
				if res.Err != nil {
					errs <- res.Err
					return
				}
				if !f.ctx.Params.CiphertextEqual(res.Out, io.ref) {
					errs <- errors.New("response not bit-identical to reference")
					return
				}
				if res.Batch < 1 || res.Batch > 4 {
					errs <- errors.New("batch size out of configured bounds")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if want := uint64(producers * perProducer); st.Submitted != want || st.Served != want {
		t.Errorf("stats: submitted=%d served=%d, want %d", st.Submitted, st.Served, want)
	}
	if st.Failed != 0 {
		t.Errorf("stats: %d failures", st.Failed)
	}
	if st.Batches == 0 || st.MaxBatchSeen > 4 {
		t.Errorf("stats: batches=%d maxBatch=%d", st.Batches, st.MaxBatchSeen)
	}
	if st.QueueDepth != 0 {
		t.Errorf("stats: queue depth %d after drain, want 0", st.QueueDepth)
	}
	if st.AvgLatency <= 0 || st.MaxLatency < st.AvgLatency {
		t.Errorf("stats: implausible latencies avg=%v max=%v", st.AvgLatency, st.MaxLatency)
	}
}

// TestErrorPropagation submits malformed requests interleaved with
// good ones: every bad request gets its own error result, good
// requests keep succeeding, and the failure counter reflects exactly
// the bad ones.
func TestErrorPropagation(t *testing.T) {
	f := newFixture(t)
	s := New(f.ctx, Config{Sessions: 2})
	defer s.Close()
	io := f.plans[0]

	for i := 0; i < 3; i++ {
		// Wrong ciphertext input count.
		res := s.Do(Request{Plan: io.plan, CtIn: io.ctIn[:1], PtIn: io.ptIn})
		if res.Err == nil {
			t.Fatal("truncated input accepted")
		}
		// A good request right after must still work.
		res = s.Do(Request{Plan: io.plan, CtIn: io.ctIn, PtIn: io.ptIn})
		if res.Err != nil {
			t.Fatalf("good request after failure: %v", res.Err)
		}
		if !f.ctx.Params.CiphertextEqual(res.Out, io.ref) {
			t.Fatal("good response corrupted by preceding failure")
		}
	}
	st := s.Stats()
	if st.Failed != 3 || st.Served != 3 {
		t.Errorf("stats: served=%d failed=%d, want 3/3", st.Served, st.Failed)
	}
}

// TestCloseDrainsAndRejects: Close waits for in-flight requests, later
// submissions resolve with ErrClosed.
func TestCloseDrains(t *testing.T) {
	f := newFixture(t)
	s := New(f.ctx, Config{Sessions: 1, QueueDepth: 16})
	io := f.plans[0]

	var results []<-chan Result
	for i := 0; i < 5; i++ {
		results = append(results, s.Submit(Request{Plan: io.plan, CtIn: io.ctIn, PtIn: io.ptIn}))
	}
	s.Close()
	for i, ch := range results {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("queued request %d dropped at close: %v", i, res.Err)
		}
		if !f.ctx.Params.CiphertextEqual(res.Out, io.ref) {
			t.Fatalf("queued request %d returned wrong output", i)
		}
	}
	if res := s.Do(Request{Plan: io.plan, CtIn: io.ctIn, PtIn: io.ptIn}); !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("post-close submit: got %v, want ErrClosed", res.Err)
	}
	if st := s.Stats(); st.Rejected != 1 || st.Served != 5 {
		t.Errorf("stats: served=%d rejected=%d, want 5/1", st.Served, st.Rejected)
	}
}

// TestBatchCoalescing checks that a burst submitted faster than the
// (slowed) dispatcher drains coalesces into multi-request batches and
// that per-request wait/latency are recorded.
func TestBatchCoalescing(t *testing.T) {
	f := newFixture(t)
	s := New(f.ctx, Config{Sessions: 1, QueueDepth: 16, MaxBatch: 4, BatchWindow: 20 * time.Millisecond})
	defer s.Close()
	io := f.plans[0]

	const n = 8
	var chans []<-chan Result
	for i := 0; i < n; i++ {
		chans = append(chans, s.Submit(Request{Plan: io.plan, CtIn: io.ctIn, PtIn: io.ptIn}))
	}
	sawMulti := false
	for _, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Batch > 1 {
			sawMulti = true
		}
		if res.Latency < res.Wait {
			t.Errorf("latency %v below queue wait %v", res.Latency, res.Wait)
		}
	}
	if !sawMulti {
		t.Error("a burst of 8 requests into a 20ms window never coalesced into one batch")
	}
	if st := s.Stats(); st.AvgBatch <= 1 {
		t.Errorf("average batch %0.2f, want > 1 for a burst", st.AvgBatch)
	}
}
