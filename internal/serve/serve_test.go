package serve

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"porcupine/internal/backend"
	"porcupine/internal/bfv"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
)

// fixture builds a deterministic PN2048 context with two plans and a
// concrete reference output per plan.
type fixture struct {
	ctx      *backend.Context
	plans    []*planWithIO
	programs []*quill.Lowered
}

type planWithIO struct {
	plan *plan.ExecutionPlan
	ctIn []*bfv.Ciphertext
	ptIn []quill.Vec
	ref  *bfv.Ciphertext
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	mk := func(rot int) *quill.Lowered {
		return &quill.Lowered{
			VecLen: 1024, NumCtInputs: 2, NumPtInputs: 1,
			Instrs: []quill.LInstr{
				{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: rot},
				{Op: quill.OpAddCtCt, Dst: 3, A: 2, B: 1},
				{Op: quill.OpMulCtCt, Dst: 4, A: 3, B: 0},
				{Op: quill.OpRelin, Dst: 5, A: 4},
				{Op: quill.OpMulCtPt, Dst: 6, A: 5, P: quill.PtRef{Input: 0}},
			},
			Output: 6,
		}
	}
	programs := []*quill.Lowered{mk(1), mk(5)}
	ctx, plans, err := backend.NewTestServingContext("PN2048", 5, programs...)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{ctx: ctx, programs: programs}
	rng := rand.New(rand.NewSource(8))
	vec := func() quill.Vec {
		v := make(quill.Vec, 1024)
		for j := range v {
			v[j] = rng.Uint64() % 64
		}
		return v
	}
	for i, p := range plans {
		io := &planWithIO{plan: p, ptIn: []quill.Vec{vec()}}
		for k := 0; k < 2; k++ {
			ct, err := ctx.EncryptVec(vec())
			if err != nil {
				t.Fatal(err)
			}
			io.ctIn = append(io.ctIn, ct)
		}
		ref, err := backend.RuntimeOver(ctx).RunInterpreter(programs[i], io.ctIn, io.ptIn)
		if err != nil {
			t.Fatal(err)
		}
		io.ref = ref
		f.plans = append(f.plans, io)
	}
	return f
}

// TestConcurrentProducers floods the scheduler from many producers
// over two distinct plans and requires every single response to be a
// bit-identical copy of that plan's reference output — the serving
// correctness contract under -race.
func TestConcurrentProducers(t *testing.T) {
	f := newFixture(t)
	s := New(f.ctx, Config{Sessions: 3, QueueDepth: 8, MaxBatch: 4})
	defer s.Close()

	const producers, perProducer = 6, 8
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for w := 0; w < producers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			io := f.plans[w%len(f.plans)]
			for i := 0; i < perProducer; i++ {
				res := s.Do(Request{Plan: io.plan, CtIn: io.ctIn, PtIn: io.ptIn})
				if res.Err != nil {
					errs <- res.Err
					return
				}
				if !f.ctx.Params.CiphertextEqual(res.Out, io.ref) {
					errs <- errors.New("response not bit-identical to reference")
					return
				}
				if res.Batch < 1 || res.Batch > 4 {
					errs <- errors.New("batch size out of configured bounds")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if want := uint64(producers * perProducer); st.Submitted != want || st.Served != want {
		t.Errorf("stats: submitted=%d served=%d, want %d", st.Submitted, st.Served, want)
	}
	if st.Failed != 0 {
		t.Errorf("stats: %d failures", st.Failed)
	}
	if st.Batches == 0 || st.MaxBatchSeen > 4 {
		t.Errorf("stats: batches=%d maxBatch=%d", st.Batches, st.MaxBatchSeen)
	}
	if st.QueueDepth != 0 {
		t.Errorf("stats: queue depth %d after drain, want 0", st.QueueDepth)
	}
	if st.AvgLatency <= 0 || st.MaxLatency < st.AvgLatency {
		t.Errorf("stats: implausible latencies avg=%v max=%v", st.AvgLatency, st.MaxLatency)
	}
}

// TestErrorPropagation submits malformed requests interleaved with
// good ones: every bad request gets its own error result, good
// requests keep succeeding, and the failure counter reflects exactly
// the bad ones.
func TestErrorPropagation(t *testing.T) {
	f := newFixture(t)
	s := New(f.ctx, Config{Sessions: 2})
	defer s.Close()
	io := f.plans[0]

	for i := 0; i < 3; i++ {
		// Wrong ciphertext input count.
		res := s.Do(Request{Plan: io.plan, CtIn: io.ctIn[:1], PtIn: io.ptIn})
		if res.Err == nil {
			t.Fatal("truncated input accepted")
		}
		// A good request right after must still work.
		res = s.Do(Request{Plan: io.plan, CtIn: io.ctIn, PtIn: io.ptIn})
		if res.Err != nil {
			t.Fatalf("good request after failure: %v", res.Err)
		}
		if !f.ctx.Params.CiphertextEqual(res.Out, io.ref) {
			t.Fatal("good response corrupted by preceding failure")
		}
	}
	st := s.Stats()
	if st.Failed != 3 || st.Served != 3 {
		t.Errorf("stats: served=%d failed=%d, want 3/3", st.Served, st.Failed)
	}
}

// TestCloseDrainsAndRejects: Close waits for in-flight requests, later
// submissions resolve with ErrClosed.
func TestCloseDrains(t *testing.T) {
	f := newFixture(t)
	s := New(f.ctx, Config{Sessions: 1, QueueDepth: 16})
	io := f.plans[0]

	var results []<-chan Result
	for i := 0; i < 5; i++ {
		results = append(results, s.Submit(Request{Plan: io.plan, CtIn: io.ctIn, PtIn: io.ptIn}))
	}
	s.Close()
	for i, ch := range results {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("queued request %d dropped at close: %v", i, res.Err)
		}
		if !f.ctx.Params.CiphertextEqual(res.Out, io.ref) {
			t.Fatalf("queued request %d returned wrong output", i)
		}
	}
	if res := s.Do(Request{Plan: io.plan, CtIn: io.ctIn, PtIn: io.ptIn}); !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("post-close submit: got %v, want ErrClosed", res.Err)
	}
	if st := s.Stats(); st.Rejected != 1 || st.Served != 5 {
		t.Errorf("stats: served=%d rejected=%d, want 5/1", st.Served, st.Rejected)
	}
}

// TestBatchCoalescing checks that a burst submitted faster than the
// (slowed) dispatcher drains coalesces into multi-request batches and
// that per-request wait/latency are recorded.
func TestBatchCoalescing(t *testing.T) {
	f := newFixture(t)
	s := New(f.ctx, Config{Sessions: 1, QueueDepth: 16, MaxBatch: 4, BatchWindow: 20 * time.Millisecond})
	defer s.Close()
	io := f.plans[0]

	const n = 8
	var chans []<-chan Result
	for i := 0; i < n; i++ {
		chans = append(chans, s.Submit(Request{Plan: io.plan, CtIn: io.ctIn, PtIn: io.ptIn}))
	}
	sawMulti := false
	for _, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Batch > 1 {
			sawMulti = true
		}
		if res.Latency < res.Wait {
			t.Errorf("latency %v below queue wait %v", res.Latency, res.Wait)
		}
	}
	if !sawMulti {
		t.Error("a burst of 8 requests into a 20ms window never coalesced into one batch")
	}
	if st := s.Stats(); st.AvgBatch <= 1 {
		t.Errorf("average batch %0.2f, want > 1 for a burst", st.AvgBatch)
	}
}
