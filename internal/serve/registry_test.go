package serve

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"porcupine/internal/backend"
	"porcupine/internal/bfv"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
	"porcupine/internal/wire"
)

// registryPrograms builds a mixed kernel suite: two mux-eligible
// small-vector kernels (a stencil and a dot-style reduction), one
// full-width kernel, and one whose rotation reach wraps across any
// affordable lane boundary — the two refusal classes a registry must
// serve per-request.
func registryPrograms() (names []string, programs []*quill.Lowered) {
	stencil := &quill.Lowered{
		VecLen: 32, NumCtInputs: 1, NumPtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 2},
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: -2},
			{Op: quill.OpAddCtCt, Dst: 3, A: 1, B: 2},
			{Op: quill.OpMulCtPt, Dst: 4, A: 3, P: quill.PtRef{Input: -1, Const: []int64{3}}},
			{Op: quill.OpAddCtPt, Dst: 5, A: 4, P: quill.PtRef{Input: 0}},
		},
		Output: 5,
	}
	dot := &quill.Lowered{
		VecLen: 8, NumCtInputs: 2,
		Instrs: []quill.LInstr{
			{Op: quill.OpMulCtCt, Dst: 2, A: 0, B: 1},
			{Op: quill.OpRelin, Dst: 3, A: 2},
			{Op: quill.OpRotCt, Dst: 4, A: 3, Rot: 4},
			{Op: quill.OpAddCtCt, Dst: 5, A: 3, B: 4},
			{Op: quill.OpRotCt, Dst: 6, A: 5, Rot: 2},
			{Op: quill.OpAddCtCt, Dst: 7, A: 5, B: 6},
			{Op: quill.OpRotCt, Dst: 8, A: 7, Rot: 1},
			{Op: quill.OpAddCtCt, Dst: 9, A: 7, B: 8},
		},
		Output: 9,
	}
	fullWidth := &quill.Lowered{
		VecLen: 1024, NumCtInputs: 2,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 1},
			{Op: quill.OpAddCtCt, Dst: 3, A: 2, B: 1},
		},
		Output: 3,
	}
	wraparound := &quill.Lowered{
		VecLen: 512, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 250},
			{Op: quill.OpAddCtCt, Dst: 2, A: 1, B: 0},
		},
		Output: 2,
	}
	return []string{"stencil", "dot", "full-width", "wraparound"},
		[]*quill.Lowered{stencil, dot, fullWidth, wraparound}
}

type regFixture struct {
	ctx      *backend.Context
	reg      *wire.Registry
	names    []string
	programs []*quill.Lowered
	rng      *rand.Rand
}

func newRegFixture(t *testing.T) *regFixture {
	t.Helper()
	names, programs := registryPrograms()
	ctx, plans, err := backend.NewTestMuxServingContext("PN2048", 17, 0, programs...)
	if err != nil {
		t.Fatal(err)
	}
	f := &regFixture{ctx: ctx, names: names, programs: programs, rng: rand.New(rand.NewSource(3))}
	samples := make([]*wire.Request, len(plans))
	for i, p := range plans {
		ctIn, ptIn := f.inputs(t, i)
		samples[i] = &wire.Request{CtIn: ctIn, PtIn: ptIn}
		_ = p
	}
	reg, err := ExportRegistry(ctx, names, plans, samples)
	if err != nil {
		t.Fatal(err)
	}
	f.reg = reg
	return f
}

// inputs draws fresh random inputs shaped for kernel i.
func (f *regFixture) inputs(t *testing.T, i int) ([]*bfv.Ciphertext, []quill.Vec) {
	t.Helper()
	l := f.programs[i]
	vec := func() quill.Vec {
		v := make(quill.Vec, l.VecLen)
		for j := range v {
			v[j] = f.rng.Uint64() % 64
		}
		return v
	}
	var cts []*bfv.Ciphertext
	for k := 0; k < l.NumCtInputs; k++ {
		ct, err := f.ctx.EncryptVec(vec())
		if err != nil {
			t.Fatal(err)
		}
		cts = append(cts, ct)
	}
	var pts []quill.Vec
	for k := 0; k < l.NumPtInputs; k++ {
		pts = append(pts, vec())
	}
	return cts, pts
}

// TestRegistryRoundTripServing is the in-package version of the CI
// cross-process smoke: export a mixed-kernel registry, decode it from
// bytes, load it into a sealed (execute-only) catalog, and require
// every kernel's embedded sample to reproduce the exporter's output
// bit for bit. Mux geometry must survive the round trip: present on
// the eligible kernels, absent on the full-width and wraparound ones.
func TestRegistryRoundTripServing(t *testing.T) {
	f := newRegFixture(t)
	data, err := f.reg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	reg, err := wire.DecodeRegistry(data)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := LoadRegistry(reg, Config{Sessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if cat.Ctx.CanDecrypt() {
		t.Fatal("loaded catalog can decrypt: secret material crossed the wire")
	}
	if got := cat.Kernels(); len(got) != len(f.names) {
		t.Fatalf("catalog hosts %v, want %v", got, f.names)
	}
	wantMux := map[string]bool{"stencil": true, "dot": true, "full-width": false, "wraparound": false}
	for _, name := range f.names {
		e := cat.Entry(name)
		if e == nil {
			t.Fatalf("kernel %q missing from catalog", name)
		}
		if (e.Mux != nil) != wantMux[name] {
			t.Errorf("kernel %q mux = %v, want %v", name, e.Mux != nil, wantMux[name])
		}
		ok, err := cat.SelfTest(name)
		if err != nil {
			t.Fatalf("kernel %q self-test: %v", name, err)
		}
		if !ok {
			t.Errorf("kernel %q output not bit-identical to the exporter's", name)
		}
	}
}

// TestMuxedServingDifferential is the end-to-end mux correctness
// check through the scheduler: N users' requests across mixed kernels,
// submitted concurrently into one session so same-kernel bursts
// coalesce and lane-pack, must each decrypt to exactly what that
// user's individual run produces — and at least one response must
// actually have been lane-packed (Lanes ≥ 2), or the test would pass
// vacuously.
func TestMuxedServingDifferential(t *testing.T) {
	f := newRegFixture(t)
	cat, err := NewCatalog(f.ctx, f.reg, Config{Sessions: 1, QueueDepth: 64, MaxBatch: 8, BatchWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	type userReq struct {
		kernel string
		prog   *quill.Lowered
		ctIn   []*bfv.Ciphertext
		ptIn   []quill.Vec
		want   quill.Vec
	}
	// 8 stencil users + 8 dot users (mux-eligible bursts), interleaved
	// with full-width users (never packed).
	var users []*userReq
	for i, name := range f.names {
		n := 8
		if name == "full-width" || name == "wraparound" {
			n = 3
		}
		for u := 0; u < n; u++ {
			ctIn, ptIn := f.inputs(t, i)
			ref, err := backend.RuntimeOver(f.ctx).RunInterpreter(f.programs[i], ctIn, ptIn)
			if err != nil {
				t.Fatal(err)
			}
			users = append(users, &userReq{
				kernel: name, prog: f.programs[i], ctIn: ctIn, ptIn: ptIn,
				want: f.ctx.DecryptVec(ref, f.programs[i].VecLen),
			})
		}
	}

	results := make([]Result, len(users))
	var wg sync.WaitGroup
	for i, u := range users {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = cat.Do(u.kernel, u.ctIn, u.ptIn)
		}()
	}
	wg.Wait()

	sawMux := false
	for i, u := range users {
		res := results[i]
		if res.Err != nil {
			t.Fatalf("user %d (%s): %v", i, u.kernel, res.Err)
		}
		if res.Lanes >= 2 {
			sawMux = true
			if u.kernel == "full-width" || u.kernel == "wraparound" {
				t.Fatalf("mux-ineligible kernel %q was lane-packed", u.kernel)
			}
		}
		got := f.ctx.DecryptVec(res.Out, u.prog.VecLen)
		for s := range u.want {
			if got[s] != u.want[s] {
				t.Fatalf("user %d (%s, lanes %d) slot %d: served %d, individual %d",
					i, u.kernel, res.Lanes, s, got[s], u.want[s])
			}
		}
	}
	if !sawMux {
		t.Fatal("no response was lane-packed: concurrent same-kernel bursts never muxed")
	}

	st := cat.Sched.Stats()
	if st.MuxGroups == 0 || st.MuxedRequests < 2 {
		t.Errorf("stats: mux groups %d, muxed requests %d", st.MuxGroups, st.MuxedRequests)
	}
	for _, name := range f.names {
		ks, ok := st.Kernels[name]
		if !ok || ks.Served == 0 {
			t.Errorf("stats: kernel %q served %d", name, ks.Served)
		}
		if (name == "full-width" || name == "wraparound") && ks.Muxed != 0 {
			t.Errorf("stats: ineligible kernel %q reports %d muxed", name, ks.Muxed)
		}
	}
}

// TestRegistryConcurrentKernels hammers one catalog from many
// producers across every kernel at once — the multi-kernel analogue of
// TestConcurrentProducers, run under -race in CI. Every response must
// decrypt to its user's individual reference regardless of how the
// scheduler grouped, batched, or lane-packed it.
func TestRegistryConcurrentKernels(t *testing.T) {
	f := newRegFixture(t)
	cat, err := NewCatalog(f.ctx, f.reg, Config{Sessions: 2, QueueDepth: 16, MaxBatch: 8, BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	type job struct {
		kernel string
		vecLen int
		ctIn   []*bfv.Ciphertext
		ptIn   []quill.Vec
		want   quill.Vec
	}
	const perKernel = 6
	var jobs []*job
	for i, name := range f.names {
		for u := 0; u < perKernel; u++ {
			ctIn, ptIn := f.inputs(t, i)
			ref, err := backend.RuntimeOver(f.ctx).RunInterpreter(f.programs[i], ctIn, ptIn)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, &job{
				kernel: name, vecLen: f.programs[i].VecLen, ctIn: ctIn, ptIn: ptIn,
				want: f.ctx.DecryptVec(ref, f.programs[i].VecLen),
			})
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := cat.Do(j.kernel, j.ctIn, j.ptIn)
			if res.Err != nil {
				errs <- res.Err
				return
			}
			got := f.ctx.DecryptVec(res.Out, j.vecLen)
			for s := range j.want {
				if got[s] != j.want[s] {
					errs <- errors.New(j.kernel + ": served output differs from individual run")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := cat.Sched.Stats()
	if want := uint64(len(jobs)); st.Served != want || st.Failed != 0 {
		t.Errorf("stats: served %d failed %d, want %d/0", st.Served, st.Failed, want)
	}
	// Unknown kernels are refused without touching the scheduler.
	if res := cat.Do("no-such-kernel", nil, nil); res.Err == nil {
		t.Error("unknown kernel accepted")
	}
}

// TestRegistryExportDemotesNoisyMux: a depth-3 repeated-squaring
// kernel is statically lane-packable, but its muxed evaluation blows
// the toy preset's noise budget — ExportRegistry must run the
// decrypted proof and demote it to per-request instead of stamping a
// wrong-answer geometry into the manifest.
func TestRegistryExportDemotesNoisyMux(t *testing.T) {
	deep := &quill.Lowered{VecLen: 32, NumCtInputs: 1}
	acc, next := 0, 1
	for d := 0; d < 3; d++ {
		deep.Instrs = append(deep.Instrs,
			quill.LInstr{Op: quill.OpMulCtCt, Dst: next, A: acc, B: acc},
			quill.LInstr{Op: quill.OpRelin, Dst: next + 1, A: next})
		acc = next + 1
		next += 2
	}
	deep.Instrs = append(deep.Instrs,
		quill.LInstr{Op: quill.OpRotCt, Dst: next, A: acc, Rot: 1},
		quill.LInstr{Op: quill.OpAddCtCt, Dst: next + 1, A: next, B: acc})
	deep.Output = next + 1

	names, programs := registryPrograms()
	names = append(names, "deep")
	programs = append(programs, deep)
	ctx, plans, err := backend.NewTestMuxServingContext("PN2048", 17, 0, programs...)
	if err != nil {
		t.Fatal(err)
	}
	if _, lanes, _ := plan.MuxParams(plans[len(plans)-1], ctx.Params.SlotCount(), 0); lanes < 2 {
		t.Fatal("deep kernel not statically eligible: the demotion test is vacuous")
	}
	reg, err := ExportRegistry(ctx, names, plans, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e := reg.Entry("deep"); e == nil || e.MuxLanes != 0 || e.MuxStride != 0 {
		t.Fatalf("noisy kernel kept mux geometry (%d lanes x %d stride)", e.MuxLanes, e.MuxStride)
	}
	// The proof must not over-demote: the shallow kernels keep theirs.
	for _, name := range []string{"stencil", "dot"} {
		if e := reg.Entry(name); e == nil || e.MuxLanes < 2 {
			t.Errorf("kernel %q lost its mux geometry to the noise proof", name)
		}
	}
}
