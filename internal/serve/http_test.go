package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"porcupine/internal/backend"
	"porcupine/internal/bfv"
	"porcupine/internal/quill"
	"porcupine/internal/wire"
)

func newFrontFixture(t *testing.T) (*wire.Bundle, *Scheduler, *httptest.Server) {
	t.Helper()
	l := &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1, NumPtInputs: 0,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 2},
			{Op: quill.OpAddCtCt, Dst: 2, A: 1, B: 0},
			{Op: quill.OpMulCtCt, Dst: 3, A: 2, B: 0},
			{Op: quill.OpRelin, Dst: 4, A: 3},
		},
		Output: 4,
	}
	ctx, plans, err := backend.NewTestServingContext("PN2048", 9, l)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	v := make(quill.Vec, l.VecLen)
	for j := range v {
		v[j] = rng.Uint64() % 64
	}
	ct, err := ctx.EncryptVec(v)
	if err != nil {
		t.Fatal(err)
	}
	sample := &wire.Request{CtIn: []*bfv.Ciphertext{ct}}
	b, err := Export(ctx, "http-test", plans[0], sample)
	if err != nil {
		t.Fatal(err)
	}
	// Serve from a real decode round trip, like a fresh process would.
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := wire.DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	_, sched, err := Load(loaded, Config{Sessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewFront(sched, loaded))
	t.Cleanup(func() { srv.Close(); sched.Close() })
	return loaded, sched, srv
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFrontEndpoints(t *testing.T) {
	b, _, srv := newFrontFixture(t)

	if m := getJSON(t, srv.URL+"/healthz", http.StatusOK); m["ok"] != true || m["kernel"] != "http-test" {
		t.Errorf("healthz: %v", m)
	}
	if m := getJSON(t, srv.URL+"/plan", http.StatusOK); m["fingerprint"] != b.Params.FingerprintHex() {
		t.Errorf("plan: fingerprint %v, want %v", m["fingerprint"], b.Params.FingerprintHex())
	}
	if m := getJSON(t, srv.URL+"/selftest", http.StatusOK); m["bit_identical"] != true {
		t.Fatalf("selftest: %v", m)
	}

	// POST /run round trip: wire-encode the sample, expect the
	// exporter's exact ciphertext back.
	reqData, err := wire.EncodeRequest(b.Params, b.Sample)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/run", "application/octet-stream", bytes.NewReader(reqData))
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /run: status %d: %s", resp.StatusCode, body)
	}
	out, err := wire.DecodeResponse(b.Params, body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !b.Params.CiphertextEqual(out, b.Expected) {
		t.Fatal("served output is not bit-identical to the exporter's")
	}

	if m := getJSON(t, srv.URL+"/stats", http.StatusOK); m["served"].(float64) < 2 {
		t.Errorf("stats after selftest+run: %v", m)
	}

	// Garbage body → 400, never a panic or a 200.
	resp, err = http.Post(srv.URL+"/run", "application/octet-stream", bytes.NewReader([]byte("not a wire object")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage POST /run: status %d, want 400", resp.StatusCode)
	}
}
