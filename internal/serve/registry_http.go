package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"porcupine/internal/wire"
)

// RegistryFront is the HTTP front-end over one loaded registry — a
// single serving process exposing every kernel of the manifest.
//
// Endpoints:
//
//	GET  /healthz            liveness + manifest summary
//	GET  /kernels            per-kernel shape, rotations, mux geometry
//	GET  /stats              scheduler statistics incl. per-kernel and
//	                         mux counters
//	GET  /selftest/{kernel}  runs that kernel's embedded sample and
//	                         reports bit-identity with the exporter's
//	                         output (the cross-process differential
//	                         check)
//	POST /run/{kernel}       one wire-encoded Request routed to that
//	                         kernel; responds with the wire-encoded
//	                         output ciphertext
type RegistryFront struct {
	cat    *Catalog
	preset string
	mux    *http.ServeMux
}

// NewRegistryFront builds the multi-kernel HTTP front-end.
func NewRegistryFront(cat *Catalog, preset string) *RegistryFront {
	f := &RegistryFront{cat: cat, preset: preset, mux: http.NewServeMux()}
	f.mux.HandleFunc("GET /healthz", f.healthz)
	f.mux.HandleFunc("GET /kernels", f.kernels)
	f.mux.HandleFunc("GET /stats", f.stats)
	f.mux.HandleFunc("GET /selftest/{kernel}", f.selftest)
	f.mux.HandleFunc("POST /run/{kernel}", f.run)
	return f
}

func (f *RegistryFront) ServeHTTP(w http.ResponseWriter, r *http.Request) { f.mux.ServeHTTP(w, r) }

func (f *RegistryFront) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":      true,
		"preset":  f.preset,
		"kernels": f.cat.Kernels(),
	})
}

func (f *RegistryFront) kernels(w http.ResponseWriter, r *http.Request) {
	list := make([]map[string]any, 0, len(f.cat.Kernels()))
	for _, name := range f.cat.Kernels() {
		e := f.cat.Entry(name)
		p := e.Plan
		k := map[string]any{
			"kernel":    name,
			"n":         p.N,
			"vec_len":   p.VecLen,
			"ct_inputs": p.NumCtInputs,
			"pt_inputs": p.NumPtInputs,
			"steps":     p.InstructionCount(),
			"rotations": p.Rotations,
			"self_test": e.Sample != nil,
			"muxable":   e.Mux != nil,
		}
		if e.Mux != nil {
			k["mux_stride"] = e.Mux.Stride
			k["mux_lanes"] = e.Mux.Lanes
		}
		list = append(list, k)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"preset":      f.preset,
		"fingerprint": f.cat.Ctx.Params.FingerprintHex(),
		"kernels":     list,
	})
}

func (f *RegistryFront) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.cat.Sched.Stats())
}

func (f *RegistryFront) selftest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("kernel")
	start := time.Now()
	identical, err := f.cat.SelfTest(name)
	if err != nil {
		status := http.StatusInternalServerError
		if f.cat.Entry(name) == nil {
			status = http.StatusNotFound
		}
		writeJSON(w, status, map[string]any{"ok": false, "kernel": name, "error": err.Error()})
		return
	}
	status := http.StatusOK
	if !identical {
		// Non-bit-identical output means the artifact does not
		// reproduce the exporter's execution — serving-breaking.
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, map[string]any{
		"ok":            identical,
		"kernel":        name,
		"bit_identical": identical,
		"latency_ms":    float64(time.Since(start).Microseconds()) / 1000.0,
	})
}

func (f *RegistryFront) run(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("kernel")
	e := f.cat.Entry(name)
	if e == nil {
		http.Error(w, fmt.Sprintf("unknown kernel %q", name), http.StatusNotFound)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxRequestBody {
		http.Error(w, fmt.Sprintf("request exceeds %d bytes", maxRequestBody), http.StatusRequestEntityTooLarge)
		return
	}
	req, err := wire.DecodeRequest(f.cat.Ctx.Params, body)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, wire.ErrFingerprint) {
			// The client encrypted under different parameters; its
			// request can never run here.
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	res := f.cat.Do(name, req.CtIn, req.PtIn)
	if res.Err != nil {
		status := http.StatusInternalServerError
		if errors.Is(res.Err, ErrClosed) {
			status = http.StatusServiceUnavailable
		} else {
			// Shape errors (wrong input counts) are the client's fault.
			status = http.StatusBadRequest
		}
		http.Error(w, res.Err.Error(), status)
		return
	}
	out, err := wire.EncodeResponse(f.cat.Ctx.Params, res.Out)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Porcupine-Latency", res.Latency.String())
	if res.Lanes >= 2 {
		w.Header().Set("X-Porcupine-Lanes", fmt.Sprint(res.Lanes))
	}
	w.Write(out)
}
