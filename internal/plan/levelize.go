package plan

import "porcupine/internal/quill"

// This file derives the dependency-levelized schedule of a plan: a
// partition of the step list into levels such that the steps of one
// level touch pairwise-disjoint registers and depend only on levels
// before them. A session may execute the steps of a level in any
// order — or concurrently — and obtain ciphertexts bit-identical to
// the serial schedule, which remains the differential reference.
//
// Because the register allocator reuses buffers based on the serial
// order, true dataflow (RAW) edges are not enough: a step overwriting
// a register must also wait for the register's earlier readers (WAR)
// and its earlier writer (WAW), or a parallel run would clobber a
// value another in-flight step still reads. Levelize therefore tracks,
// per register, the last writing step and the readers since that
// write, and places every step strictly after all of its hazards.

// stepReads appends the register indices step st reads to buf.
// Caller-input operands are read-only for the plan's whole lifetime
// and never create hazards. Shared rotation members additionally read
// the decomposition-slot pseudo-registers (NumRegs+Slot) they replay,
// so a replaying step orders after the step whose Fresh member filled
// the slot — a dependency invisible to the register file alone.
func (p *ExecutionPlan) stepReads(st *Step, buf []int) []int {
	read := func(code int) {
		if !p.IsInput(code) {
			buf = append(buf, p.Reg(code))
		}
	}
	switch st.Op {
	case OpBatchedRot:
		for i := range st.Batch {
			read(st.Batch[i].Src)
		}
		return buf
	case OpSharedRot:
		for i := range st.Shared {
			read(st.Shared[i].Src)
			if !st.Shared[i].Fresh {
				buf = append(buf, p.NumRegs+st.Shared[i].Slot)
			}
		}
		return buf
	}
	read(st.A)
	switch st.Op {
	case quill.OpAddCtCt, quill.OpSubCtCt, quill.OpMulCtCt:
		read(st.B)
	}
	return buf
}

// stepWrites appends the register indices step st writes to buf. For
// hoisted, batched and shared groups that is every member destination,
// not just the mirror Dst; a shared Fresh member also writes its slot's
// pseudo-register (NumRegs+Slot), creating the WAR/WAW hazards that
// keep a slot refill strictly after the previous fill's replays.
func (p *ExecutionPlan) stepWrites(st *Step, buf []int) []int {
	switch st.Op {
	case OpHoistedRot:
		for i := range st.Fan {
			buf = append(buf, st.Fan[i].Dst)
		}
	case OpBatchedRot:
		for i := range st.Batch {
			buf = append(buf, st.Batch[i].Dst)
		}
	case OpSharedRot:
		for i := range st.Shared {
			buf = append(buf, st.Shared[i].Dst)
			if st.Shared[i].Fresh {
				buf = append(buf, p.NumRegs+st.Shared[i].Slot)
			}
		}
	default:
		buf = append(buf, st.Dst)
	}
	return buf
}

// Levelize computes Levels, the dependency-levelized step schedule:
// Levels[l] lists the indices of the steps of level l in program
// order; a step's level is one past the deepest of its RAW, WAR and
// WAW hazards. Derived state — never serialized; wire decode and
// Compile both recompute it. Idempotent.
func (p *ExecutionPlan) Levelize() {
	if p.Levels != nil {
		return
	}
	type regState struct {
		lastWriter int
		readers    []int
	}
	// Slot pseudo-registers live past the real register file.
	regs := make([]regState, p.NumRegs+p.NumDecomps)
	for r := range regs {
		regs[r].lastWriter = -1
	}
	level := make([]int, len(p.Steps))
	depth := 0
	var rbuf, wbuf [8]int
	for i := range p.Steps {
		st := &p.Steps[i]
		reads := p.stepReads(st, rbuf[:0])
		writes := p.stepWrites(st, wbuf[:0])
		lv := 0
		for _, r := range reads {
			if w := regs[r].lastWriter; w >= 0 && level[w] >= lv {
				lv = level[w] + 1 // RAW
			}
		}
		for _, r := range writes {
			if w := regs[r].lastWriter; w >= 0 && level[w] >= lv {
				lv = level[w] + 1 // WAW
			}
			for _, rd := range regs[r].readers {
				if level[rd] >= lv {
					lv = level[rd] + 1 // WAR
				}
			}
		}
		level[i] = lv
		if lv >= depth {
			depth = lv + 1
		}
		for _, r := range reads {
			regs[r].readers = append(regs[r].readers, i)
		}
		for _, r := range writes {
			regs[r].lastWriter = i
			regs[r].readers = regs[r].readers[:0]
		}
	}
	p.Levels = make([][]int, depth)
	for i, lv := range level {
		p.Levels[lv] = append(p.Levels[lv], i)
	}
}

// LevelStats reports the levelized schedule's shape: the number of
// levels (the schedule's critical path in steps) and the widest level
// (the plan's maximum step-level parallelism).
func (p *ExecutionPlan) LevelStats() (depth, maxWidth int) {
	for _, lv := range p.Levels {
		if len(lv) > maxWidth {
			maxWidth = len(lv)
		}
	}
	return len(p.Levels), maxWidth
}
