package plan

import (
	"sort"

	"porcupine/internal/quill"
)

// shareRotations is Pass 4c of CompileWithOptions: double-hoisted
// rotation grouping, the default that replaces Pass 4b's legacy
// batching. It dissolves Pass 3's fan-out groups and collects every
// surviving rotation into per-amount OpSharedRot groups, so the
// executor resolves the shared Galois state once per group (like
// batching) AND decomposes every source at most once per plan (like
// hoisting, but across amounts, sources, and schedule distance
// simultaneously).
//
// The unit of grouping is one rotation: (source, amount) pairs are
// unique after Pass 1's rotation CSE, so a group's members always
// carry distinct sources. Rotations of a source that is rotated ≥2
// times anywhere in the schedule always leave the plain-step pool —
// even as a singleton group — because every rotation after the
// source's first replays the decomposition its Fresh member left in a
// session slot. A source rotated exactly once gains nothing from a
// slot; its rotation joins a group only when ≥2 rotations share the
// amount (the batching win), and otherwise stays a plain serial step,
// which keeps it eligible for level-parallel execution instead of the
// caller-serial scratch path shared groups run on.
//
// Fusing moves member rotations up to the leader's position, which is
// legal exactly when each member's source is defined before the leader
// (a pure rotation has no other operand, and its consumers all sit at
// or after the member's original position). The window bounds how far
// a member may move: every member source stays live until the group
// executes — and until its LAST shared rotation when slots replay it —
// so the window caps the register- and slot-pressure cost of fusion.
func shareRotations(l *quill.Lowered, canon []int, sched []schedEntry, nIn int, norm func(int) int, window int) []schedEntry {
	if window <= 0 {
		window = defaultBatchWindow
	}

	// defPos[v] is the schedule position defining canonical value v
	// (-1 for inputs: defined before everything).
	defPos := make([]int, l.NumValues())
	for v := range defPos {
		defPos[v] = -1
	}
	for s, e := range sched {
		if e.members != nil {
			for _, m := range e.members {
				defPos[nIn+m] = s
			}
			continue
		}
		defPos[nIn+e.idx] = s
	}

	// Rotation units: every surviving rotation, whether Pass 3 fused it
	// into a fan or left it plain, at the schedule position it would
	// execute. srcRots counts rotations per canonical source — the
	// sharing pass's own fan detector, since fan groups dissolve here.
	type unit struct {
		pos int // schedule position of the defining entry
		idx int // instruction index
		src int // canonical source value
		amt int // canonical rotation amount
	}
	var units []unit
	srcRots := map[int]int{}
	fromFan := map[int]bool{} // schedule positions holding dissolved fans
	for s, e := range sched {
		if e.members != nil {
			fromFan[s] = true
			for _, m := range e.members {
				in := l.Instrs[m]
				u := unit{pos: s, idx: m, src: canon[in.A], amt: norm(in.Rot)}
				units = append(units, u)
				srcRots[u.src]++
			}
			continue
		}
		if in := l.Instrs[e.idx]; in.Op == quill.OpRotCt {
			u := unit{pos: s, idx: e.idx, src: canon[in.A], amt: norm(in.Rot)}
			units = append(units, u)
			srcRots[u.src]++
		}
	}
	if len(units) == 0 {
		return sched
	}

	// Bucket units by canonical amount in schedule order (units is
	// already position-sorted: fans dissolve at their group position).
	byAmt := map[int][]int{}
	var amts []int
	for i, u := range units {
		if len(byAmt[u.amt]) == 0 {
			amts = append(amts, u.amt)
		}
		byAmt[u.amt] = append(byAmt[u.amt], i)
	}

	// Greedy window fusion per amount, mirroring batchRotations: the
	// earliest unconsumed unit leads, later units within the window
	// join when their source is defined before the leader. A group
	// survives as OpSharedRot when it has ≥2 members (shared Galois
	// state) or its members include a multi-rotation source (resident
	// decomposition); a singleton of a once-rotated source returns to
	// the plain-step pool.
	type group struct {
		pos     int   // leader schedule position
		idx     int   // leader instruction index
		members []int // member instruction indices
	}
	var groups []group
	grouped := map[int]bool{} // instruction index → emitted in a group
	for _, r := range amts {
		us := byAmt[r]
		used := make([]bool, len(us))
		for i := range us {
			if used[i] {
				continue
			}
			lead := units[us[i]]
			members := []int{lead.idx}
			for j := i + 1; j < len(us) && units[us[j]].pos-lead.pos <= window; j++ {
				if used[j] {
					continue
				}
				if defPos[units[us[j]].src] >= lead.pos {
					continue // source not yet defined at the leader
				}
				used[j] = true
				members = append(members, units[us[j]].idx)
			}
			if len(members) < 2 && srcRots[lead.src] < 2 {
				continue // a lone rotation of a once-rotated source
			}
			used[i] = true
			groups = append(groups, group{pos: lead.pos, idx: lead.idx, members: members})
			for _, m := range members {
				grouped[m] = true
			}
		}
	}
	if len(groups) == 0 && len(fromFan) == 0 {
		return sched
	}

	// Rebuild the schedule: groups emit at their leader's position (in
	// leader instruction order when several share one position — i.e.
	// several amounts of one dissolved fan), fused plain entries drop,
	// and dissolved-fan units that stayed ungrouped return as plain
	// entries at their fan's position.
	groupsAt := map[int][]int{} // schedule position → indices into groups
	for g := range groups {
		groupsAt[groups[g].pos] = append(groupsAt[groups[g].pos], g)
	}
	for _, gs := range groupsAt {
		sort.Slice(gs, func(a, b int) bool { return groups[gs[a]].idx < groups[gs[b]].idx })
	}
	out := make([]schedEntry, 0, len(sched))
	emitAt := func(s int) {
		for _, g := range groupsAt[s] {
			out = append(out, schedEntry{idx: groups[g].idx, members: groups[g].members, shared: true})
		}
	}
	for s, e := range sched {
		if fromFan[s] {
			emitAt(s)
			for _, m := range e.members {
				if !grouped[m] { // defensive: fan units always group
					out = append(out, schedEntry{idx: m})
				}
			}
			continue
		}
		if in := l.Instrs[e.idx]; in.Op == quill.OpRotCt && grouped[e.idx] {
			emitAt(s) // emits iff this entry's unit leads its group
			continue
		}
		out = append(out, e)
	}
	return out
}
