package plan

import (
	"strings"
	"testing"

	"porcupine/internal/quill"
)

// stencilProgram is a mux-friendly shape: a small vector with short
// symmetric rotations (a 1-D stencil). VecLen 32, reach ±2.
func stencilProgram() *quill.Lowered {
	return &quill.Lowered{
		VecLen: 32, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 2},
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: -2},
			{Op: quill.OpAddCtCt, Dst: 3, A: 1, B: 2},
			{Op: quill.OpAddCtCt, Dst: 4, A: 3, B: 0},
		},
		Output: 4,
	}
}

// TestMuxParamsEligible pins the canonical geometry for the stencil on
// a 1024-slot row: reach 2 over a 32-slot vector needs 34 slots, the
// next power of two is 64, and 1024/64 = 16 lanes caps at
// DefaultMaxLanes.
func TestMuxParamsEligible(t *testing.T) {
	p := compile(t, stencilProgram())
	stride, lanes, reason := MuxParams(p, 1024, 0)
	if reason != "" || stride != 64 || lanes != 8 {
		t.Fatalf("MuxParams = (%d, %d, %q), want (64, 8, \"\")", stride, lanes, reason)
	}
	// A tighter lane cap wins over the row capacity.
	if _, lanes, _ = MuxParams(p, 1024, 4); lanes != 4 {
		t.Fatalf("maxLanes 4 gave %d lanes", lanes)
	}
}

// TestMuxParamsRefusals covers every refusal class: full-width
// vectors, rotation reach that would wrap across lane boundaries, and
// degree-2 outputs.
func TestMuxParamsRefusals(t *testing.T) {
	// Full-width: VecLen == slot count leaves no spare slots.
	full := compile(t, &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1}},
		Output: 1,
	})
	if _, lanes, reason := MuxParams(full, 1024, 0); lanes != 0 || !strings.Contains(reason, "full-width") {
		t.Fatalf("full-width vector accepted: lanes=%d reason=%q", lanes, reason)
	}

	// Wraparound: a 512-slot vector with any rotation needs a 1024-slot
	// lane, leaving no room for a second lane in a 1024-slot row.
	wrap := compile(t, &quill.Lowered{
		VecLen: 512, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1},
			{Op: quill.OpAddCtCt, Dst: 2, A: 1, B: 0},
		},
		Output: 2,
	})
	if _, lanes, reason := MuxParams(wrap, 1024, 0); lanes != 0 || !strings.Contains(reason, "wraps") {
		t.Fatalf("wraparound reach accepted: lanes=%d reason=%q", lanes, reason)
	}

	// Degree-2 output: an unrelinearized product cannot be
	// demux-rotated.
	deg2 := compile(t, &quill.Lowered{
		VecLen: 32, NumCtInputs: 2,
		Instrs: []quill.LInstr{{Op: quill.OpMulCtCt, Dst: 2, A: 0, B: 1}},
		Output: 2,
	})
	if _, lanes, reason := MuxParams(deg2, 1024, 0); lanes != 0 || !strings.Contains(reason, "degree") {
		t.Fatalf("degree-2 output accepted: lanes=%d reason=%q", lanes, reason)
	}

	// The same product followed by relinearization is eligible again.
	relin := compile(t, &quill.Lowered{
		VecLen: 32, NumCtInputs: 2,
		Instrs: []quill.LInstr{
			{Op: quill.OpMulCtCt, Dst: 2, A: 0, B: 1},
			{Op: quill.OpRelin, Dst: 3, A: 2},
		},
		Output: 3,
	})
	if _, lanes, reason := MuxParams(relin, 1024, 0); lanes < 2 {
		t.Fatalf("relinearized product refused: %q", reason)
	}
}

// TestValidateMuxGeometries checks that explicit manifest geometries
// are re-validated against the reach bound: any legal (stride, lanes)
// passes — not only the canonical MuxParams choice — and every illegal
// one is refused.
func TestValidateMuxGeometries(t *testing.T) {
	p := compile(t, stencilProgram()) // bound: stride ≥ 34
	legal := [][2]int{{64, 8}, {64, 2}, {64, 16}, {128, 4}, {512, 2}}
	for _, g := range legal {
		if err := ValidateMux(p, 1024, g[0], g[1]); err != nil {
			t.Errorf("legal geometry (%d, %d) refused: %v", g[0], g[1], err)
		}
	}
	illegal := [][2]int{
		{96, 4},   // stride not a power of two
		{32, 8},   // stride below the reach bound 34
		{64, 1},   // fewer than two lanes
		{64, 17},  // more lanes than the row holds
		{1024, 2}, // stride leaves no second lane
		{0, 0},    // the explicit-geometry path never sees 0/0
	}
	for _, g := range illegal {
		if err := ValidateMux(p, 1024, g[0], g[1]); err == nil {
			t.Errorf("illegal geometry (%d, %d) accepted", g[0], g[1])
		}
	}
}

// TestMuxRotations pins the pack/demux key budget: ±j·stride for every
// non-zero lane.
func TestMuxRotations(t *testing.T) {
	got := MuxRotations(64, 4)
	want := []int{64, -64, 128, -128, 192, -192}
	if len(got) != len(want) {
		t.Fatalf("MuxRotations = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MuxRotations = %v, want %v", got, want)
		}
	}
}

// TestMuxRotationSet checks the registry key-set union: plan rotations
// always contribute; mux rotations only for eligible plans.
func TestMuxRotationSet(t *testing.T) {
	eligible := compile(t, stencilProgram())
	full := compile(t, &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 7}},
		Output: 1,
	})
	rots := MuxRotationSet(1024, 0, eligible, full)
	seen := map[int]bool{}
	for _, r := range rots {
		if seen[r] {
			t.Fatalf("duplicate rotation %d in %v", r, rots)
		}
		seen[r] = true
	}
	// Plan rotations from both plans.
	for _, r := range append(eligible.Rotations, full.Rotations...) {
		if r != 0 && !seen[r] {
			t.Errorf("plan rotation %d missing from %v", r, rots)
		}
	}
	// Pack/demux rotations for the eligible plan's (64, 8) geometry.
	for _, r := range MuxRotations(64, 8) {
		if !seen[r] {
			t.Errorf("mux rotation %d missing from %v", r, rots)
		}
	}
	// The full-width plan must not have dragged in mux keys of its own:
	// its only rotation is 7, and every other entry is a stencil or
	// mux rotation.
	for r := range seen {
		if r%2 != 0 && r != 7 && r != -7 {
			t.Errorf("unexpected odd rotation %d (only plan rotations and ±j·64 expected)", r)
		}
	}
}

// TestBuildMuxConstReplication checks the lane-replicated clone: each
// constant's first VecLen slot values appear at every lane offset,
// slots between lanes are zero, and the base plan's constants are left
// untouched.
func TestBuildMuxConstReplication(t *testing.T) {
	params, enc := testEnv(t)
	l := &quill.Lowered{
		VecLen: 32, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpMulCtPt, Dst: 1, A: 0, P: quill.PtRef{Input: -1, Const: []int64{3}}},
			{Op: quill.OpRotCt, Dst: 2, A: 1, Rot: 1},
		},
		Output: 2,
	}
	p := compile(t, l)
	if len(p.Consts) == 0 {
		t.Fatal("program with an inline constant compiled to no plan constants")
	}
	m, err := BuildMux(params, enc, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Base != p || m.Plan == p {
		t.Fatal("mux must clone the plan, keeping the base")
	}
	if m.Plan.Prepared != p.Prepared {
		t.Fatalf("clone prepared = %v, base = %v", m.Plan.Prepared, p.Prepared)
	}
	baseRow := enc.Decode(p.Consts[0])
	cloneRow := enc.Decode(m.Plan.Consts[0])
	for j := 0; j < m.Lanes; j++ {
		for i := 0; i < p.VecLen; i++ {
			if cloneRow[j*m.Stride+i] != baseRow[i] {
				t.Fatalf("lane %d slot %d: clone %d, base %d", j, i, cloneRow[j*m.Stride+i], baseRow[i])
			}
		}
		for i := p.VecLen; i < m.Stride; i++ {
			if cloneRow[j*m.Stride+i] != 0 {
				t.Fatalf("lane %d padding slot %d holds %d, want 0", j, i, cloneRow[j*m.Stride+i])
			}
		}
	}
}
