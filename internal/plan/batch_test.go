package plan

import (
	"reflect"
	"testing"

	"porcupine/internal/baseline"
	"porcupine/internal/quill"
)

// crossSourceProgram rotates two different sources by the same amount
// (fan-out 1 per source, so hoisting leaves both serial): the minimal
// shape Pass 4b fuses into one cross-source batched group.
func crossSourceProgram() *quill.Lowered {
	return &quill.Lowered{
		VecLen: 8, NumCtInputs: 2,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 3, A: 1, Rot: 1},
			{Op: quill.OpAddCtCt, Dst: 4, A: 2, B: 0},
			{Op: quill.OpAddCtCt, Dst: 5, A: 3, B: 1},
			{Op: quill.OpAddCtCt, Dst: 6, A: 4, B: 5},
		},
		Output: 6,
	}
}

// interleavedTrees builds two log-depth reduction trees over separate
// inputs with their levels interleaved — the schedule shape of two
// SIMD-parallel slot reductions. Every level rotates a DIFFERENT
// source (the previous accumulator) by the SAME amount as its sibling
// tree, so each level is one cross-source batch group.
func interleavedTrees(m int) *quill.Lowered {
	l := &quill.Lowered{VecLen: 16, NumCtInputs: 2}
	next := 2
	emit := func(in quill.LInstr) int {
		in.Dst = next
		l.Instrs = append(l.Instrs, in)
		next++
		return in.Dst
	}
	accs := []int{0, 1}
	for k := m / 2; k >= 1; k /= 2 {
		var rots [2]int
		for s := range accs {
			rots[s] = emit(quill.LInstr{Op: quill.OpRotCt, A: accs[s], Rot: k})
		}
		for s := range accs {
			accs[s] = emit(quill.LInstr{Op: quill.OpAddCtCt, A: accs[s], B: rots[s]})
		}
	}
	l.Output = emit(quill.LInstr{Op: quill.OpAddCtCt, A: accs[0], B: accs[1]})
	return l
}

func TestBatchDetectionCrossSource(t *testing.T) {
	p := compileLegacy(t, crossSourceProgram())
	if g, r := p.BatchedGroups(); g != 1 || r != 2 {
		t.Fatalf("batched groups = %d (%d rotations), want 1 (2)", g, r)
	}
	if p.NumDecomps != 1 {
		t.Errorf("NumDecomps = %d, want 1", p.NumDecomps)
	}
	for i := range p.Steps {
		st := &p.Steps[i]
		if st.Op != OpBatchedRot {
			continue
		}
		if st.Rot != 1 {
			t.Errorf("batched group rotation %d, want 1", st.Rot)
		}
		if st.A != st.Batch[0].Src || st.Dst != st.Batch[0].Dst {
			t.Error("batched step head disagrees with its first member")
		}
		if st.Batch[0].Src == st.Batch[1].Src {
			t.Error("batched members share a source")
		}
	}
	if err := p.Validate(testParams); err != nil {
		t.Errorf("compiled batched plan fails validation: %v", err)
	}
}

func TestBatchDetectionParallelTrees(t *testing.T) {
	l := interleavedTrees(8)
	p := compileLegacy(t, l)
	// Three levels (rot 4, 2, 1), each one group of the two trees'
	// sibling rotations.
	if g, r := p.BatchedGroups(); g != 3 || r != 6 {
		t.Fatalf("batched groups = %d (%d rotations), want 3 (6)", g, r)
	}
	if err := p.Validate(testParams); err != nil {
		t.Errorf("compiled batched plan fails validation: %v", err)
	}
}

func TestBatchDisabled(t *testing.T) {
	params, enc := testEnv(t)
	for _, opts := range []Options{
		{DisableBatching: true},
		{DisableHoisting: true}, // flat plans are fully serial references
	} {
		p, err := CompileWithOptions(params, enc, crossSourceProgram(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if g, _ := p.BatchedGroups(); g != 0 {
			t.Errorf("options %+v: plan still has %d batched groups", opts, g)
		}
		if err := p.Validate(params); err != nil {
			t.Errorf("options %+v: %v", opts, err)
		}
	}
}

// TestBatchWindowBound: rotations farther apart than the window stay
// serial — the window caps how long member sources are kept live.
func TestBatchWindowBound(t *testing.T) {
	params, enc := testEnv(t)
	l := crossSourceProgram() // sibling rotations 1 schedule slot apart
	wide, err := CompileWithOptions(params, enc, l, Options{DisableSharing: true, BatchWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	if g, _ := wide.BatchedGroups(); g != 1 {
		t.Errorf("window 4: %d groups, want 1", g)
	}
	// A program where the second same-amount rotation sits 3 schedule
	// entries after the first: window 2 must refuse the fusion.
	far := &quill.Lowered{
		VecLen: 8, NumCtInputs: 2,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 1},
			{Op: quill.OpAddCtCt, Dst: 3, A: 2, B: 0},
			{Op: quill.OpAddCtCt, Dst: 4, A: 3, B: 0},
			{Op: quill.OpRotCt, Dst: 5, A: 1, Rot: 1},
			{Op: quill.OpAddCtCt, Dst: 6, A: 4, B: 5},
		},
		Output: 6,
	}
	narrow, err := CompileWithOptions(params, enc, far, Options{DisableSharing: true, BatchWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g, _ := narrow.BatchedGroups(); g != 0 {
		t.Errorf("window 2: %d groups, want 0", g)
	}
	def, err := CompileWithOptions(params, enc, far, Options{DisableSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	if g, _ := def.BatchedGroups(); g != 1 {
		t.Errorf("default window: %d groups, want 1", g)
	}
}

// TestBatchSourceDefinedBeforeLeader: a member whose source is defined
// AFTER the would-be leader cannot move up to the leader's position,
// so it stays serial.
func TestBatchSourceDefinedBeforeLeader(t *testing.T) {
	l := &quill.Lowered{
		VecLen: 8, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1}, // leader candidate
			{Op: quill.OpAddCtCt, Dst: 2, A: 1, B: 0}, // v2 defined after the leader
			{Op: quill.OpRotCt, Dst: 3, A: 2, Rot: 1}, // same amount, source v2
			{Op: quill.OpAddCtCt, Dst: 4, A: 3, B: 2},
		},
		Output: 4,
	}
	p := compileLegacy(t, l)
	if g, _ := p.BatchedGroups(); g != 0 {
		t.Errorf("fused a member whose source postdates the leader (%d groups)", g)
	}
}

// TestValidateRejectsMalformedBatched exercises the Validate rules
// specific to batched steps directly at the plan layer (the wire
// corruption matrix re-runs them through an encode/decode round trip).
func TestValidateRejectsMalformedBatched(t *testing.T) {
	params, _ := testEnv(t)
	base := compileLegacy(t, crossSourceProgram())
	batchIdx := -1
	for i := range base.Steps {
		if base.Steps[i].Op == OpBatchedRot {
			batchIdx = i
		}
	}
	if batchIdx < 0 {
		t.Fatal("no batched step")
	}
	cases := []struct {
		name   string
		mutate func(p *ExecutionPlan)
	}{
		{"singleton", func(p *ExecutionPlan) { p.Steps[batchIdx].Batch = p.Steps[batchIdx].Batch[:1] }},
		{"dup-src", func(p *ExecutionPlan) { p.Steps[batchIdx].Batch[1].Src = p.Steps[batchIdx].Batch[0].Src }},
		{"dup-dst", func(p *ExecutionPlan) { p.Steps[batchIdx].Batch[1].Dst = p.Steps[batchIdx].Batch[0].Dst }},
		{"src-range", func(p *ExecutionPlan) {
			p.Steps[batchIdx].Batch[1].Src = p.NumCtInputs + p.NumRegs
		}},
		{"dst-range", func(p *ExecutionPlan) { p.Steps[batchIdx].Batch[1].Dst = p.NumRegs }},
		{"head-mismatch", func(p *ExecutionPlan) { p.Steps[batchIdx].Dst = p.Steps[batchIdx].Batch[1].Dst }},
		{"rot-undeclared", func(p *ExecutionPlan) { p.Steps[batchIdx].Rot = 777 }},
		{"dst-aliases-src", func(p *ExecutionPlan) {
			p.Steps[batchIdx].Batch[1].Src = p.NumCtInputs + p.Steps[batchIdx].Batch[0].Dst
		}},
		{"batch-on-plain", func(p *ExecutionPlan) {
			for i := range p.Steps {
				if p.Steps[i].Op != OpBatchedRot {
					p.Steps[i].Batch = []BatchedSrc{{Src: 0, Dst: 0}}
					return
				}
			}
		}},
		{"numdecomps", func(p *ExecutionPlan) { p.NumDecomps = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p2 := *base
			p2.Steps = append([]Step(nil), base.Steps...)
			for i := range p2.Steps {
				p2.Steps[i].Batch = append([]BatchedSrc(nil), base.Steps[i].Batch...)
			}
			p2.Rotations = append([]int(nil), base.Rotations...)
			c.mutate(&p2)
			if err := p2.Validate(params); err == nil {
				t.Error("malformed batched plan validated")
			}
		})
	}
}

// TestAssignedEqualsHoistedWhenNoNTTRegs is the regression guard for
// the PR6 bench anomaly: when domain assignment leaves a kernel
// all-coefficient (ntt_regs == 0, conversions == 0), the assigned
// compile must be a strict pass-through — byte-for-byte the schedule
// the hoisted (assignment-disabled) compile produces. Any real slowdown
// of "assigned" vs "hoisted" on such a kernel is therefore measurement
// noise, not a schedule difference.
func TestAssignedEqualsHoistedWhenNoNTTRegs(t *testing.T) {
	params, enc := testEnv(t)
	names := []string{
		"box-blur", "dot-product", "hamming-distance", "l2-distance",
		"linear-regression", "polynomial-regression", "gx", "gy",
		"roberts-cross", "sobel", "harris",
	}
	passThrough := 0
	for _, name := range names {
		l, err := baseline.Lowered(name)
		if err != nil {
			t.Fatal(err)
		}
		if l.VecLen > params.SlotCount() {
			continue
		}
		assigned, err := Compile(params, enc, l)
		if err != nil {
			t.Fatal(err)
		}
		hoisted, err := CompileWithOptions(params, enc, l, Options{DisableDomainAssignment: true})
		if err != nil {
			t.Fatal(err)
		}
		nttRegs, convs := assigned.DomainStats()
		if nttRegs != 0 || convs != 0 {
			continue
		}
		passThrough++
		if !reflect.DeepEqual(assigned.Steps, hoisted.Steps) {
			t.Errorf("%s: all-coefficient assigned plan's steps differ from hoisted plan's", name)
		}
		if assigned.NumRegs != hoisted.NumRegs ||
			!reflect.DeepEqual(assigned.RegDeg, hoisted.RegDeg) ||
			!reflect.DeepEqual(assigned.RegDomain, hoisted.RegDomain) ||
			assigned.Out != hoisted.Out ||
			!reflect.DeepEqual(assigned.Rotations, hoisted.Rotations) {
			t.Errorf("%s: all-coefficient assigned plan's registers/output differ from hoisted plan's", name)
		}
	}
	if passThrough == 0 {
		t.Skip("no all-coefficient kernel under these parameters")
	}
}
