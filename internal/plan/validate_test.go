package plan

import (
	"testing"

	"porcupine/internal/bfv"
	"porcupine/internal/quill"
)

// validatePlan compiles a known-good plan for corruption tests.
func validatePlan(t *testing.T) *ExecutionPlan {
	t.Helper()
	return compile(t, &quill.Lowered{
		VecLen: 1024, NumCtInputs: 2, NumPtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 3},
			{Op: quill.OpAddCtCt, Dst: 3, A: 2, B: 1},
			{Op: quill.OpMulCtCt, Dst: 4, A: 3, B: 0},
			{Op: quill.OpRelin, Dst: 5, A: 4},
			{Op: quill.OpMulCtPt, Dst: 6, A: 5, P: quill.PtRef{Input: 0}},
			{Op: quill.OpAddCtPt, Dst: 7, A: 6, P: quill.PtRef{Input: -1, Const: []int64{5}}},
		},
		Output: 7,
	})
}

// TestValidateAcceptsCompiled: every plan out of Compile must pass its
// own decode-time validation.
func TestValidateAcceptsCompiled(t *testing.T) {
	params, _ := testEnv(t)
	p := validatePlan(t)
	if err := p.Validate(params); err != nil {
		t.Fatalf("compiled plan fails Validate: %v", err)
	}
}

// TestValidateRejectsMalformed corrupts one structural invariant at a
// time — the conditions a hostile or bit-rotted wire plan could carry —
// and requires Validate to refuse each.
func TestValidateRejectsMalformed(t *testing.T) {
	params, _ := testEnv(t)
	cases := map[string]func(p *ExecutionPlan){
		"wrong-N":            func(p *ExecutionPlan) { p.N = 4096 },
		"vec-too-long":       func(p *ExecutionPlan) { p.VecLen = params.SlotCount() + 1 },
		"negative-inputs":    func(p *ExecutionPlan) { p.NumCtInputs = -1 },
		"regdeg-shape":       func(p *ExecutionPlan) { p.RegDeg = p.RegDeg[:len(p.RegDeg)-1] },
		"regdeg-range":       func(p *ExecutionPlan) { p.RegDeg[0] = 3 },
		"nil-const":          func(p *ExecutionPlan) { p.Consts[0] = nil },
		"dst-out-of-range":   func(p *ExecutionPlan) { p.Steps[0].Dst = p.NumRegs },
		"a-out-of-range":     func(p *ExecutionPlan) { p.Steps[0].A = p.NumCtInputs + p.NumRegs },
		"b-out-of-range":     func(p *ExecutionPlan) { p.Steps[1].B = -7 },
		"undeclared-rot":     func(p *ExecutionPlan) { p.Steps[0].Rot = 999 },
		"identity-rot":       func(p *ExecutionPlan) { p.Rotations = []int{0}; p.Steps[0].Rot = 0 },
		"unsorted-rots":      func(p *ExecutionPlan) { p.Rotations = []int{5, 3} },
		"unused-declared":    func(p *ExecutionPlan) { p.Rotations = append(p.Rotations, 17) },
		"const-out-of-range": func(p *ExecutionPlan) { p.Steps[5].Con = len(p.Consts) },
		"pt-out-of-range":    func(p *ExecutionPlan) { p.Steps[4].Pt = p.NumPtInputs },
		"pt-and-const":       func(p *ExecutionPlan) { p.Steps[4].Con = 0 },
		"neither-pt":         func(p *ExecutionPlan) { p.Steps[4].Pt = -1 },
		"bad-opcode":         func(p *ExecutionPlan) { p.Steps[0].Op = quill.Op(99) },
		"out-of-range-out":   func(p *ExecutionPlan) { p.Out = p.NumCtInputs + p.NumRegs },
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			p := validatePlan(t)
			// Shallow-copy mutable slices so corruptions don't leak
			// between subtests (compile caches nothing, but be safe).
			p2 := *p
			p2.RegDeg = append([]int(nil), p.RegDeg...)
			p2.Steps = append([]Step(nil), p.Steps...)
			p2.Rotations = append([]int(nil), p.Rotations...)
			p2.Consts = append([]*bfv.Plaintext(nil), p.Consts...)
			corrupt(&p2)
			if err := p2.Validate(params); err == nil {
				t.Fatalf("corruption %q passed validation", name)
			}
		})
	}
}

// hoistedPlan compiles a plan containing one hoisted fan-out group
// whose source is a register (so source-alias corruption is
// expressible).
func hoistedPlan(t *testing.T) *ExecutionPlan {
	t.Helper()
	p := compileLegacy(t, &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpAddCtCt, Dst: 1, A: 0, B: 0},
			{Op: quill.OpRotCt, Dst: 2, A: 1, Rot: 1},
			{Op: quill.OpRotCt, Dst: 3, A: 1, Rot: 5},
			{Op: quill.OpRotCt, Dst: 4, A: 1, Rot: -2},
			{Op: quill.OpAddCtCt, Dst: 5, A: 2, B: 3},
			{Op: quill.OpAddCtCt, Dst: 6, A: 5, B: 4},
		},
		Output: 6,
	})
	if g, r := p.HoistedGroups(); g != 1 || r != 3 {
		t.Fatalf("hoisted groups = %d (%d rotations), want 1 (3)", g, r)
	}
	return p
}

// TestValidateRejectsMalformedHoisted corrupts the hoisted-step
// invariants — the step kind wire decode v2 introduced — one at a
// time.
func TestValidateRejectsMalformedHoisted(t *testing.T) {
	params, _ := testEnv(t)
	hoistIdx := func(p *ExecutionPlan) int {
		for i := range p.Steps {
			if p.Steps[i].Op == OpHoistedRot {
				return i
			}
		}
		t.Fatal("no hoisted step")
		return -1
	}
	cases := map[string]func(p *ExecutionPlan, h int){
		"fan-too-small": func(p *ExecutionPlan, h int) {
			p.Steps[h].Fan = p.Steps[h].Fan[:1]
		},
		"fan-dst-out-of-range": func(p *ExecutionPlan, h int) {
			p.Steps[h].Fan[1].Dst = p.NumRegs
		},
		"fan-dst-duplicate": func(p *ExecutionPlan, h int) {
			p.Steps[h].Fan[1].Dst = p.Steps[h].Fan[0].Dst
		},
		"fan-dst-aliases-source": func(p *ExecutionPlan, h int) {
			p.Steps[h].Fan[1].Dst = p.Reg(p.Steps[h].A)
		},
		"fan-rot-zero": func(p *ExecutionPlan, h int) {
			p.Steps[h].Fan[0].Rot = 0
		},
		"fan-rot-undeclared": func(p *ExecutionPlan, h int) {
			p.Steps[h].Fan[0].Rot = 999
		},
		"fan-rot-duplicate": func(p *ExecutionPlan, h int) {
			p.Steps[h].Fan[1].Rot = p.Steps[h].Fan[0].Rot
		},
		"dst-fan-mismatch": func(p *ExecutionPlan, h int) {
			p.Steps[h].Dst = p.Steps[h].Fan[1].Dst
		},
		"fan-on-plain-step": func(p *ExecutionPlan, h int) {
			p.Steps[0].Fan = []FanOut{{Dst: 0, Rot: 1}}
		},
		"numdecomps-mismatch": func(p *ExecutionPlan, h int) {
			p.NumDecomps = 0
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			p := hoistedPlan(t)
			p2 := *p
			p2.Steps = append([]Step(nil), p.Steps...)
			for i := range p2.Steps {
				p2.Steps[i].Fan = append([]FanOut(nil), p2.Steps[i].Fan...)
			}
			p2.Rotations = append([]int(nil), p.Rotations...)
			corrupt(&p2, hoistIdx(&p2))
			if err := p2.Validate(params); err == nil {
				t.Fatalf("corruption %q passed validation", name)
			}
		})
	}
	// And the uncorrupted hoisted plan must pass.
	if err := hoistedPlan(t).Validate(params); err != nil {
		t.Fatalf("compiled hoisted plan fails Validate: %v", err)
	}
}
