package plan

import "porcupine/internal/quill"

// Domain assignment: a dataflow pass over the scheduled program that
// tags every value with the representation its defining step writes —
// coefficient or evaluation (NTT) domain — choosing the assignment
// that minimizes the static count of key-switch-external NTT/INTT
// transforms the plan executes.
//
// The lever: additions and subtractions are pointwise in either
// domain, plaintext products are pointwise in the NTT domain, and the
// key-switching inner products of a rotation are already NTT-resident
// — so a rotation that feeds a pointwise chain can skip its two
// output INTTs entirely (its destination stays in the evaluation
// domain), at the price of one forward NTT of the source's c0 that a
// hoisted fan shares across all of its NTT-destined members. True
// domain boundaries remain: tensor products and relinearization read
// coefficient operands, and the program output leaves in the
// coefficient domain; the compiler materializes explicit OpNTT/OpINTT
// conversion steps ("twins") exactly there.
//
// The transform-cost model (one unit = one forward or inverse NTT of
// a full R_Q polynomial, counting only transforms OUTSIDE the fixed
// key-switching inner products):
//
//	rotation, coeff src → coeff dst: 2   (INTT f0, INTT f1)
//	rotation, coeff src → NTT dst:   1   (NTT c0; shared per hoisted fan)
//	rotation, NTT src → NTT dst:     1   (INTT of c1 for digit extraction)
//	rotation, NTT src → coeff dst:   —   (forbidden; no such variant)
//	relinearization:                 2   (INTT f0, INTT f1; operands pinned coeff)
//	mul-plain (prepared operand):    2·[src coeff] + 2·[dst coeff]
//	add/sub (ct-ct and ct-pt):       0   (pointwise in the dst's domain)
//	conversion twin (OpNTT/OpINTT):  2   (both rows of a degree-1 value)
//	add/sub-plain w/ runtime pt, NTT dst: 1 per distinct input per run
//
// Tensor-product extended-basis transforms are excluded: they are
// internal to MulInto and unchanged by any assignment (as are the
// transforms inside key-switching itself).
//
// The solver is deterministic local search from the all-coefficient
// assignment, with three move classes evaluated against the exact
// model above: whole connected components of flexible values (joined
// by producer-consumer edges), components minus their rotation
// sources (the "fan outputs go NTT, fan source stays coeff" split a
// whole-component flip cannot see), and single values. Only strictly
// improving moves are accepted, to a fixpoint. Kernels are small
// (tens of values), so this converges in a handful of passes; any
// assignment it returns is correct by construction — optimality only
// affects how many transforms are saved.

// Domain tags the representation a plan register (or value) holds:
// coefficient domain or evaluation (NTT) domain. NTT-resident
// registers always hold degree-1 ciphertexts.
type Domain uint8

const (
	// DomCoeff is the coefficient domain — the form the encryptor,
	// decryptor, tensor product and relinearization consume.
	DomCoeff Domain = 0
	// DomNTT is the evaluation domain: both polynomials of the
	// ciphertext are forward-NTT'd. Pointwise ops execute natively.
	DomNTT Domain = 1
)

func (d Domain) String() string {
	if d == DomNTT {
		return "ntt"
	}
	return "coeff"
}

// domainForbidden prices an assignment with no implemented execution
// path (an NTT-resident source rotated into a coefficient
// destination) out of the search.
const domainForbidden = 1 << 20

// domainCost evaluates the static transform count of an assignment
// under the model in the package comment. It is the single source of
// truth the solver optimizes; ExecutionPlan.ExternalTransforms
// reports the same model over the emitted step list.
func domainCost(l *quill.Lowered, canon, deg []int, sched []schedEntry, nIn, output int, dom []Domain) int {
	n := len(canon)
	needC := make([]bool, n) // home-NTT values read in coefficient form
	needN := make([]bool, n) // home-coeff values read in NTT form
	ptAdd := make([]bool, l.NumPtInputs)
	total := 0
	twin := func(v int, d Domain) {
		if dom[v] == d {
			return
		}
		if d == DomNTT {
			needN[v] = true
		} else {
			needC[v] = true
		}
	}
	for _, e := range sched {
		in := l.Instrs[e.idx]
		a := canon[in.A]
		if e.members != nil {
			if dom[a] == DomNTT {
				total++ // INTT of c1 to extract the shared digits
				for _, m := range e.members {
					if dom[nIn+m] == DomCoeff {
						total += domainForbidden
					}
				}
			} else {
				anyN := false
				for _, m := range e.members {
					if dom[nIn+m] == DomNTT {
						anyN = true
					} else {
						total += 2
					}
				}
				if anyN {
					total++ // NTT of c0, shared by every NTT member
				}
			}
			continue
		}
		dstv := nIn + e.idx
		d := dom[dstv]
		switch in.Op {
		case quill.OpRotCt:
			switch {
			case dom[a] == DomNTT && d == DomNTT:
				total++
			case dom[a] == DomNTT:
				total += domainForbidden
			case d == DomNTT:
				total++
			default:
				total += 2
			}
		case quill.OpRelin:
			total += 2
		case quill.OpMulCtCt:
			twin(a, DomCoeff)
			twin(canon[in.B], DomCoeff)
		case quill.OpAddCtCt, quill.OpSubCtCt:
			twin(a, d)
			twin(canon[in.B], d)
		case quill.OpAddCtPt, quill.OpSubCtPt:
			twin(a, d)
			if d == DomNTT && in.P.Input >= 0 {
				ptAdd[in.P.Input] = true // NTT(Δ·m) once per run
			}
		case quill.OpMulCtPt:
			if dom[a] == DomCoeff {
				total += 2
			}
			if d == DomCoeff {
				total += 2
			}
		}
	}
	twin(output, DomCoeff)
	for v := 0; v < n; v++ {
		if needC[v] {
			total += 2
		}
		if needN[v] {
			total += 2
		}
	}
	for _, b := range ptAdd {
		if b {
			total++
		}
	}
	return total
}

// assignDomains picks the home domain of every canonical value.
// Inputs, degree-2 values, and relinearization / tensor-product
// results are pinned to the coefficient domain; everything else is
// flexible.
func assignDomains(l *quill.Lowered, canon, deg []int, sched []schedEntry, nIn, output int) []Domain {
	n := len(canon)
	dom := make([]Domain, n) // all DomCoeff

	flexible := make([]bool, n)
	for _, e := range sched {
		if e.members != nil {
			for _, m := range e.members {
				flexible[nIn+m] = true
			}
			continue
		}
		in := l.Instrs[e.idx]
		dstv := nIn + e.idx
		if in.Op == quill.OpRelin || in.Op == quill.OpMulCtCt || deg[dstv] != 1 {
			continue
		}
		flexible[dstv] = true
	}

	// Connected components of flexible values over producer-consumer
	// edges: values that feed each other pointwise (or through a
	// rotation) want to agree on a domain, so they flip together.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		if !flexible[a] || !flexible[b] {
			return
		}
		if ra, rb := find(a), find(b); ra != rb {
			parent[rb] = ra
		}
	}
	rotSrc := make([]bool, n)
	for _, e := range sched {
		in := l.Instrs[e.idx]
		a := canon[in.A]
		if e.members != nil {
			if flexible[a] {
				rotSrc[a] = true
			}
			prev := -1
			for _, m := range e.members {
				union(a, nIn+m)
				if prev >= 0 {
					union(prev, nIn+m)
				}
				prev = nIn + m
			}
			continue
		}
		dstv := nIn + e.idx
		switch in.Op {
		case quill.OpRotCt:
			if flexible[a] {
				rotSrc[a] = true
			}
			union(a, dstv)
		case quill.OpAddCtCt, quill.OpSubCtCt:
			union(a, dstv)
			union(canon[in.B], dstv)
		case quill.OpAddCtPt, quill.OpSubCtPt, quill.OpMulCtPt:
			union(a, dstv)
		}
	}
	compIdx := make(map[int]int)
	var comps [][]int
	for v := 0; v < n; v++ {
		if !flexible[v] {
			continue
		}
		r := find(v)
		ci, ok := compIdx[r]
		if !ok {
			ci = len(comps)
			comps = append(comps, nil)
			compIdx[r] = ci
		}
		comps[ci] = append(comps[ci], v)
	}

	best := domainCost(l, canon, deg, sched, nIn, output, dom)
	try := func(vals []int) bool {
		if len(vals) == 0 {
			return false
		}
		for _, v := range vals {
			dom[v] ^= 1
		}
		if c := domainCost(l, canon, deg, sched, nIn, output, dom); c < best {
			best = c
			return true
		}
		for _, v := range vals {
			dom[v] ^= 1
		}
		return false
	}
	single := make([]int, 1)
	for pass := 0; pass < 32; pass++ {
		improved := false
		for _, comp := range comps {
			if try(comp) {
				improved = true
			}
			var sub []int
			for _, v := range comp {
				if !rotSrc[v] {
					sub = append(sub, v)
				}
			}
			if len(sub) < len(comp) && try(sub) {
				improved = true
			}
		}
		for v := 0; v < n; v++ {
			if flexible[v] {
				single[0] = v
				if try(single) {
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return dom
}
