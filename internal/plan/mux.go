package plan

import (
	"fmt"

	"porcupine/internal/bfv"
	"porcupine/internal/quill"
)

// Slot multiplexing turns SIMD width into request throughput: when a
// plan's vector occupies a small prefix of the HE row, k independent
// requests can ride disjoint slot lanes of ONE ciphertext evaluation.
// Lane j owns slots [j·Stride, j·Stride+VecLen); the stride is chosen
// so no rotation in the program ever reads across a lane boundary, so
// the single muxed run computes every user's answer exactly as k
// separate runs would (BFV slot arithmetic is pointwise and rotations
// shift the whole row uniformly).
//
// Legality is decided by a reach-interval analysis over the source
// program: for every SSA value, the interval [lo, hi] of input-slot
// offsets its slot s may depend on (inputs are [0,0]; rot by r shifts
// by +r; ct-ct ops take the hull; ct-pt ops include offset 0 for the
// operand read). Output slots [0, VecLen) then read input slots
// [lo, VecLen-1+hi], so a lane stride L keeps lanes independent iff
//
//	L ≥ VecLen + max(hi, −lo, 0)
//
// given that inputs are zero outside [0, VecLen) — the packing
// contract EncryptVec already establishes. L is rounded to the next
// power of two so it divides the row and lane windows tile it exactly
// (the cyclic wrap of RotateRows then lands in another lane's zero
// padding, never its data).

// DefaultMaxLanes caps how many requests share one ciphertext. The cap
// bounds the pack/demux Galois key budget (2·(lanes−1) extra keys per
// stride) and matches the scheduler's default batch size.
const DefaultMaxLanes = 8

// Mux is a plan's slot-multiplexing capability: the lane geometry plus
// a clone of the plan whose constants are replicated into every lane
// (runtime ct/pt inputs are lane-packed per request; constants must be
// baked in once).
type Mux struct {
	// Base is the single-request plan the mux was derived from.
	Base *ExecutionPlan
	// Plan is the lane-replicated clone the muxed batch executes. Same
	// steps, registers and rotations as Base; only Consts (and their
	// prepared forms) differ.
	Plan *ExecutionPlan
	// Stride is the lane spacing in slots (power of two, divides the
	// row size).
	Stride int
	// Lanes is the maximum number of requests one muxed run carries:
	// min(DefaultMaxLanes, rowSize/Stride), always ≥ 2.
	Lanes int
}

// PackRotation returns the rotation amount that moves lane j's request
// from slots [0, VecLen) into its lane window (applied at pack time).
func (m *Mux) PackRotation(lane int) int { return -lane * m.Stride }

// DemuxRotation returns the rotation amount that moves lane j's result
// back to slots [0, VecLen) (applied at demux time).
func (m *Mux) DemuxRotation(lane int) int { return lane * m.Stride }

// reachInterval runs the dependency-offset analysis over a lowered
// program and returns the output value's interval [lo, hi]: slot s of
// the output depends only on input slots (and per-slot plaintext
// operand reads) in [s+lo, s+hi].
func reachInterval(l *quill.Lowered) (lo, hi int) {
	los := make([]int, l.NumValues())
	his := make([]int, l.NumValues())
	for _, in := range l.Instrs {
		switch {
		case in.Op == quill.OpRotCt:
			los[in.Dst] = los[in.A] + in.Rot
			his[in.Dst] = his[in.A] + in.Rot
		case in.Op == quill.OpRelin:
			los[in.Dst] = los[in.A]
			his[in.Dst] = his[in.A]
		case in.Op.IsCtCt():
			los[in.Dst] = min(los[in.A], los[in.B])
			his[in.Dst] = max(his[in.A], his[in.B])
		default: // ct-pt: the plaintext operand is read at offset 0
			los[in.Dst] = min(los[in.A], 0)
			his[in.Dst] = max(his[in.A], 0)
		}
	}
	return los[l.Output], his[l.Output]
}

// outputDegree returns the ciphertext degree of the program's output
// value (2 for an unrelinearized product).
func outputDegree(l *quill.Lowered) int {
	deg := make([]int, l.NumValues())
	for i := 0; i < l.NumCtInputs; i++ {
		deg[i] = 1
	}
	for _, in := range l.Instrs {
		switch {
		case in.Op == quill.OpMulCtCt:
			deg[in.Dst] = 2
		case in.Op == quill.OpRelin, in.Op == quill.OpRotCt:
			deg[in.Dst] = 1
		case in.Op.IsCtCt():
			deg[in.Dst] = max(deg[in.A], deg[in.B])
		default:
			deg[in.Dst] = deg[in.A]
		}
	}
	return deg[l.Output]
}

// MuxParams decides lane-packing eligibility for a plan against a row
// of `slots` slots. It returns the chosen stride and lane count, or
// lanes == 0 with a human-readable refusal reason: full-width vectors
// have no spare slots, rotation reach beyond the stride would cross
// lane boundaries (wraparound), and a degree-2 output cannot be
// demux-rotated. maxLanes ≤ 0 means DefaultMaxLanes.
func MuxParams(p *ExecutionPlan, slots, maxLanes int) (stride, lanes int, reason string) {
	if maxLanes <= 0 {
		maxLanes = DefaultMaxLanes
	}
	if p.Source == nil {
		return 0, 0, "plan carries no source program for reach analysis"
	}
	if p.VecLen >= slots {
		return 0, 0, fmt.Sprintf("full-width vector (%d of %d slots)", p.VecLen, slots)
	}
	if d := outputDegree(p.Source); d != 1 {
		return 0, 0, fmt.Sprintf("output degree %d cannot be demux-rotated", d)
	}
	lo, hi := reachInterval(p.Source)
	reach := max(hi, -lo, 0)
	need := p.VecLen + reach
	stride = 1
	for stride < need {
		stride <<= 1
	}
	if stride > slots/2 {
		return 0, 0, fmt.Sprintf("rotation reach %d over %d-slot vectors needs a %d-slot lane — wraps across lane boundaries in a %d-slot row", reach, p.VecLen, stride, slots)
	}
	lanes = slots / stride
	if lanes > maxLanes {
		lanes = maxLanes
	}
	return stride, lanes, ""
}

// ValidateMux checks that an explicit (stride, lanes) pair — e.g. one
// read from a wire manifest — is a legal lane geometry for the plan:
// the same bound MuxParams derives, without requiring the exact policy
// choice (a wider stride or fewer lanes than MuxParams would pick is
// still sound).
func ValidateMux(p *ExecutionPlan, slots, stride, lanes int) error {
	if stride <= 0 || stride&(stride-1) != 0 {
		return fmt.Errorf("mux stride %d is not a power of two", stride)
	}
	if stride > slots/2 {
		return fmt.Errorf("mux stride %d leaves no room for a second lane in a %d-slot row", stride, slots)
	}
	if lanes < 2 || lanes > slots/stride {
		return fmt.Errorf("mux lane count %d outside [2, %d]", lanes, slots/stride)
	}
	if p.Source == nil {
		return fmt.Errorf("muxed plan carries no source program for reach analysis")
	}
	if p.VecLen >= slots {
		return fmt.Errorf("mux on a full-width vector (%d of %d slots)", p.VecLen, slots)
	}
	if d := outputDegree(p.Source); d != 1 {
		return fmt.Errorf("mux output degree %d, want 1", d)
	}
	lo, hi := reachInterval(p.Source)
	if need := p.VecLen + max(hi, -lo, 0); stride < need {
		return fmt.Errorf("mux stride %d below rotation-reach bound %d: lanes would interfere", stride, need)
	}
	return nil
}

// MuxRotations returns the extra Galois rotation amounts a (stride,
// lanes) geometry needs beyond the plan's own: ±j·stride for
// j ∈ [1, lanes) — pack on the way in, demux on the way out.
func MuxRotations(stride, lanes int) []int {
	rots := make([]int, 0, 2*(lanes-1))
	for j := 1; j < lanes; j++ {
		rots = append(rots, j*stride, -j*stride)
	}
	return rots
}

// MuxRotationSet returns the union of plan rotations and mux pack/
// demux rotations over a set of plans — the Galois key set a registry
// export generates. Ineligible plans contribute their plan rotations
// only.
func MuxRotationSet(slots, maxLanes int, plans ...*ExecutionPlan) []int {
	seen := map[int]bool{}
	var rots []int
	add := func(r int) {
		if r != 0 && !seen[r] {
			seen[r] = true
			rots = append(rots, r)
		}
	}
	for _, p := range plans {
		if p == nil {
			continue
		}
		for _, r := range p.Rotations {
			add(r)
		}
		if stride, lanes, _ := MuxParams(p, slots, maxLanes); lanes >= 2 {
			for _, r := range MuxRotations(stride, lanes) {
				add(r)
			}
		}
	}
	return rots
}

// BuildMux derives the plan's mux capability: MuxParams for the
// geometry, then a lane-replicated clone for execution. Returns an
// error naming the refusal reason when the plan is ineligible.
func BuildMux(params *bfv.Parameters, enc *bfv.Encoder, p *ExecutionPlan, maxLanes int) (*Mux, error) {
	stride, lanes, reason := MuxParams(p, params.SlotCount(), maxLanes)
	if lanes < 2 {
		return nil, fmt.Errorf("plan: not mux-eligible: %s", reason)
	}
	return BuildMuxWith(params, enc, p, stride, lanes)
}

// BuildMuxWith builds the mux capability for an explicit, validated
// lane geometry (the wire-decode path, where the manifest fixes stride
// and lanes). The clone shares the base plan's immutable schedule and
// replaces only the constants: each constant's first VecLen slot
// values are replicated at every lane offset (slots between lanes stay
// zero, exactly like the zero padding of a single-request row), then
// re-encoded and re-prepared.
func BuildMuxWith(params *bfv.Parameters, enc *bfv.Encoder, p *ExecutionPlan, stride, lanes int) (*Mux, error) {
	if err := ValidateMux(p, params.SlotCount(), stride, lanes); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	clone := *p
	if len(p.Consts) > 0 {
		clone.Consts = make([]*bfv.Plaintext, len(p.Consts))
		for c, pt := range p.Consts {
			row := enc.Decode(pt)
			vals := make([]uint64, (lanes-1)*stride+p.VecLen)
			for j := 0; j < lanes; j++ {
				copy(vals[j*stride:j*stride+p.VecLen], row[:p.VecLen])
			}
			npt, err := enc.EncodeNew(vals)
			if err != nil {
				return nil, fmt.Errorf("plan: lane-replicating constant %d: %w", c, err)
			}
			clone.Consts[c] = npt
		}
	}
	// The shallow copy carries prepared forms derived from the BASE
	// constants; reset and re-derive against the replicated ones.
	clone.MulNTTConsts, clone.AddNTTConsts = nil, nil
	clone.PtNeedMulNTT, clone.PtNeedAddNTT = nil, nil
	prepared := clone.Prepared
	clone.Prepared = false
	if prepared {
		clone.Prepare(params)
	}
	return &Mux{Base: p, Plan: &clone, Stride: stride, Lanes: lanes}, nil
}
