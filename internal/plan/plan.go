// Package plan compiles lowered Quill programs into execution plans:
// fixed, allocation-free schedules that any number of goroutines can
// run concurrently against a shared key set.
//
// The interpreter in internal/backend walks a lowered program one
// instruction at a time, allocating a fresh ciphertext per instruction
// and re-encoding plaintext constants on every call. A plan does all
// of that analysis once, at compile time:
//
//   - liveness analysis and register allocation map the program's SSA
//     values onto a minimal pool of reusable ciphertext buffers
//     ("registers"), so a program with hundreds of instructions runs
//     in a handful of buffers;
//   - instruction selection targets the evaluator's alias-safe
//     in-place forms (AddInto, MulInto, ...), with no-op instructions
//     (identity rotations, relinearization of degree-1 values)
//     resolved to aliases and dead instructions dropped;
//   - plaintext constants are encoded once, at plan time;
//   - the exact Galois-key set the program needs is computed per
//     plan, so a serving context generates precisely the keys its
//     plans use.
//
// Plans are immutable after Compile and safe to share between
// goroutines; the mutable state (the register file) lives in the
// executing session (backend.Session).
package plan

import (
	"fmt"
	"math"
	"sort"

	"porcupine/internal/bfv"
	"porcupine/internal/quill"
)

// OpHoistedRot is the plan-only opcode of a fused rotation fan-out:
// the key-switching digit decomposition of the source operand is
// computed once and shared by every rotation in the step's Fan list.
// It never appears in lowered programs — the planner synthesizes it
// when ≥2 distinct rotations read one source — so its value lives
// outside the quill instruction set's range.
const OpHoistedRot quill.Op = 0x40

// FanOut is one rotation of a hoisted fan-out group.
type FanOut struct {
	Dst int // register receiving this rotation
	Rot int // canonical rotation amount (never 0)
}

// Step is one scheduled instruction of a plan. Operand fields A and B
// hold operand codes: code < NumCtInputs refers to the caller's input
// ciphertext with that index, any other code refers to register
// code-NumCtInputs. Dst is always a register index (plans never write
// to caller inputs).
type Step struct {
	Op  quill.Op
	Dst int // register index (Fan[0].Dst for hoisted steps)
	A   int // operand code
	B   int // operand code (ct-ct ops)
	Rot int // canonical rotation amount (OpRotCt)
	Pt  int // plaintext input index (ct-pt ops), -1 for constants
	Con int // pre-encoded constant index (ct-pt ops), -1 for inputs

	// Fan lists the rotations of a hoisted group (OpHoistedRot only;
	// nil for every other op). The source A is decomposed once, then
	// each entry costs a digit permutation instead of a fresh
	// decomposition. Entries are in program order; no entry's register
	// may alias the source (every entry reads it).
	Fan []FanOut
}

// ExecutionPlan is a compiled, immutable execution schedule for one
// lowered program against one BFV parameter set.
type ExecutionPlan struct {
	// N is the ring degree of the parameter set the plan (and its
	// pre-encoded constants) was compiled for; executing it under
	// different parameters is rejected.
	N int

	VecLen      int
	NumCtInputs int
	NumPtInputs int

	// NumRegs is the size of the ciphertext buffer pool a session needs
	// to run the plan — the register-allocation result.
	NumRegs int
	// RegDeg[r] is the maximum ciphertext degree register r ever holds,
	// so sessions can pre-size buffers.
	RegDeg []int
	// NumDecomps is the number of key-switching decomposition scratch
	// buffers a session needs: 1 when the plan contains hoisted
	// rotation groups (they never nest, so one buffer serves all of
	// them), 0 otherwise. Sized by the register allocator; not
	// serialized — decode recomputes it from the step list.
	NumDecomps int

	Steps []Step

	// Consts holds the plaintext constants of the program, encoded once
	// at plan time (shared, read-only).
	Consts []*bfv.Plaintext

	// Rotations is the exact set of nonzero rotation amounts the plan
	// executes — the Galois keys it needs. Amounts are canonical
	// (quill.NormRot) when the program vector fills the HE row and
	// literal otherwise (see Compile).
	Rotations []int

	// Out is the operand code of the program output: an input code when
	// the program returns an input unchanged, a register code otherwise.
	Out int

	// Source is the lowered program the plan was compiled from (for
	// differential reference runs and reporting).
	Source *quill.Lowered
}

// IsInput reports whether an operand code refers to a caller input.
func (p *ExecutionPlan) IsInput(code int) bool { return code < p.NumCtInputs }

// Reg returns the register index of a non-input operand code.
func (p *ExecutionPlan) Reg(code int) int { return code - p.NumCtInputs }

// InstructionCount returns the number of scheduled steps (after no-op
// aliasing and dead-code elimination).
func (p *ExecutionPlan) InstructionCount() int { return len(p.Steps) }

// HoistedGroups returns the number of fused rotation fan-out steps
// and the total rotations they cover. A plan with groups decomposes
// once per group instead of once per rotation: forward NTT passes in
// rotation key-switching drop from K·rotations to K·(groups + plain
// rotations).
func (p *ExecutionPlan) HoistedGroups() (groups, rotations int) {
	for i := range p.Steps {
		if p.Steps[i].Op == OpHoistedRot {
			groups++
			rotations += len(p.Steps[i].Fan)
		}
	}
	return groups, rotations
}

// Options tunes compilation.
type Options struct {
	// DisableHoisting turns off rotation fan-out fusion, producing a
	// plan of plain serial steps only. The unhoisted plan computes
	// bit-identical ciphertexts (the serial rotation path runs on the
	// same decompose-permute-accumulate primitives); it exists as the
	// differential reference for the hoisted schedule and for
	// measuring the hoisting win.
	DisableHoisting bool
}

// Compile analyzes a lowered program and produces its execution plan
// for the given parameter set. The encoder is used once, to pre-encode
// plaintext constants; it must belong to params.
func Compile(params *bfv.Parameters, enc *bfv.Encoder, l *quill.Lowered) (*ExecutionPlan, error) {
	return CompileWithOptions(params, enc, l, Options{})
}

// CompileWithOptions is Compile with explicit Options.
func CompileWithOptions(params *bfv.Parameters, enc *bfv.Encoder, l *quill.Lowered, opts Options) (*ExecutionPlan, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if l.VecLen > params.SlotCount() {
		return nil, fmt.Errorf("plan: program vector of %d slots exceeds row size %d", l.VecLen, params.SlotCount())
	}
	n := l.NumValues()
	nIn := l.NumCtInputs

	// Rotation amounts may be canonicalized modulo the vector size
	// only when the program vector fills the whole HE row: then row
	// rotation IS circular rotation mod VecLen and abstractly equal
	// amounts are interchangeable. For shorter vectors the row shifts
	// zero padding into the window, which slots depends on the literal
	// amount — so the plan keeps amounts literal (only a literal 0 is
	// the identity).
	norm := func(r int) int {
		if l.VecLen == params.SlotCount() {
			return quill.NormRot(r, l.VecLen)
		}
		return r
	}

	// Pass 1: canonical values and static ciphertext degrees. canon[v]
	// resolves no-op instructions (rot ≡ 0, relin of a degree-1 value)
	// to the value they forward; deg[v] is the ciphertext degree of the
	// canonical value.
	canon := make([]int, n)
	deg := make([]int, n)
	for i := 0; i < nIn; i++ {
		canon[i] = i
		deg[i] = 1
	}
	// real[idx] marks instructions that survive aliasing (indexed like
	// l.Instrs). Rotations are additionally value-numbered: a second
	// rotation of the same canonical source by the same canonical
	// amount is the same ciphertext bit for bit, so it aliases the
	// first — which also keeps hoisted fan-outs free of duplicate
	// amounts.
	real := make([]bool, len(l.Instrs))
	type rotKey struct{ src, rot int }
	rotCSE := map[rotKey]int{}
	for idx, in := range l.Instrs {
		dst := nIn + idx
		a := canon[in.A]
		switch in.Op {
		case quill.OpRotCt:
			if deg[a] > 1 {
				return nil, fmt.Errorf("plan: %s: rotation of degree-%d ciphertext", in, deg[a])
			}
			r := norm(in.Rot)
			if r == 0 {
				canon[dst] = a
				deg[dst] = deg[a]
				continue
			}
			if prev, ok := rotCSE[rotKey{a, r}]; ok {
				canon[dst] = prev
				deg[dst] = 1
				continue
			}
			rotCSE[rotKey{a, r}] = dst
			canon[dst], deg[dst], real[idx] = dst, 1, true
		case quill.OpRelin:
			if deg[a] == 1 {
				canon[dst] = a
				deg[dst] = 1
				continue
			}
			if deg[a] != 2 {
				return nil, fmt.Errorf("plan: %s: relinearization of degree-%d ciphertext", in, deg[a])
			}
			canon[dst], deg[dst], real[idx] = dst, 1, true
		case quill.OpMulCtCt:
			if deg[a] > 1 || deg[canon[in.B]] > 1 {
				return nil, fmt.Errorf("plan: %s: multiplication of degree-%d×%d ciphertexts (relinearize first)",
					in, deg[a], deg[canon[in.B]])
			}
			canon[dst], deg[dst], real[idx] = dst, 2, true
		case quill.OpAddCtCt, quill.OpSubCtCt:
			d := deg[a]
			if b := deg[canon[in.B]]; b > d {
				d = b
			}
			canon[dst], deg[dst], real[idx] = dst, d, true
		case quill.OpAddCtPt, quill.OpSubCtPt, quill.OpMulCtPt:
			canon[dst], deg[dst], real[idx] = dst, deg[a], true
		default:
			return nil, fmt.Errorf("plan: unknown opcode %v", in.Op)
		}
	}
	output := canon[l.Output]

	// Pass 2: dead-code elimination by backwards reachability from the
	// output over canonical values.
	live := make([]bool, n)
	live[output] = true
	for idx := len(l.Instrs) - 1; idx >= 0; idx-- {
		dst := nIn + idx
		if !real[idx] || !live[dst] {
			real[idx] = false
			continue
		}
		in := l.Instrs[idx]
		live[canon[in.A]] = true
		if in.Op.IsCtCt() {
			live[canon[in.B]] = true
		}
	}

	// Pass 3: rotation fan-out detection. A source read by ≥2 distinct
	// surviving rotations has its digit decomposition hoisted: the
	// group's rotations fuse into one OpHoistedRot step scheduled at
	// the first member's position (moving a pure rotation earlier is
	// always legal — its only operand is already defined there). The
	// schedule below is the step list the liveness and register passes
	// run over: one entry per plain step or fused group.
	type schedEntry struct {
		idx     int   // instruction index (first member for groups)
		members []int // nil → plain step; else the group's rotation instrs
	}
	groupOf := map[int][]int{} // first-member idx → member idxs
	inGroup := map[int]bool{}  // member idx → fused away
	if !opts.DisableHoisting {
		bySrc := map[int][]int{}
		var srcs []int
		for idx, in := range l.Instrs {
			if real[idx] && in.Op == quill.OpRotCt {
				src := canon[in.A]
				if len(bySrc[src]) == 0 {
					srcs = append(srcs, src)
				}
				bySrc[src] = append(bySrc[src], idx)
			}
		}
		for _, src := range srcs {
			members := bySrc[src]
			if len(members) < 2 {
				continue
			}
			groupOf[members[0]] = members
			for _, m := range members {
				inGroup[m] = true
			}
		}
	}
	var sched []schedEntry
	for idx := range l.Instrs {
		if !real[idx] {
			continue
		}
		if members, ok := groupOf[idx]; ok {
			sched = append(sched, schedEntry{idx: idx, members: members})
			continue
		}
		if inGroup[idx] {
			continue // emitted with its group's first member
		}
		sched = append(sched, schedEntry{idx: idx})
	}

	// Pass 4: liveness — the last step index reading each canonical
	// value. The output lives past the end of the program.
	last := make([]int, n)
	for i := range last {
		last[i] = -1
	}
	for step, e := range sched {
		in := l.Instrs[e.idx]
		last[canon[in.A]] = step
		if e.members == nil && in.Op.IsCtCt() {
			last[canon[in.B]] = step
		}
	}
	last[output] = math.MaxInt

	// Pass 5: linear-scan register allocation with in-place reuse. A
	// register freed by an operand's last use is immediately available
	// as the destination of the same step — every evaluator *Into form
	// is alias-safe, so dst may share a buffer with a dying operand.
	// Hoisted groups are the exception: every fan entry reads the
	// source (its c0 and its hoisted digits), so the source's register
	// is freed only after the whole fan is allocated, and fan
	// destinations are pairwise distinct by construction. This is also
	// where per-session decomposition scratch is sized: any hoisted
	// step sets NumDecomps to 1 (groups never nest, one buffer serves
	// the whole plan).
	p := &ExecutionPlan{
		N:           params.N,
		VecLen:      l.VecLen,
		NumCtInputs: nIn,
		NumPtInputs: l.NumPtInputs,
		Source:      l,
	}
	regOf := make([]int, n)
	for i := range regOf {
		regOf[i] = -1
	}
	var free []int
	code := func(v int) int {
		if v < nIn {
			return v
		}
		return nIn + regOf[v]
	}
	alloc := func(d int) int {
		if k := len(free); k > 0 {
			r := free[k-1]
			free = free[:k-1]
			if d > p.RegDeg[r] {
				p.RegDeg[r] = d
			}
			return r
		}
		p.RegDeg = append(p.RegDeg, d)
		p.NumRegs++
		return p.NumRegs - 1
	}
	constIdx := map[string]int{}
	rotSet := map[int]bool{}
	for step, e := range sched {
		idx, in := e.idx, l.Instrs[e.idx]
		a := canon[in.A]

		if e.members != nil {
			st := Step{Op: OpHoistedRot, A: code(a), Pt: -1, Con: -1}
			for _, m := range e.members {
				r := norm(l.Instrs[m].Rot)
				reg := alloc(1)
				regOf[nIn+m] = reg
				st.Fan = append(st.Fan, FanOut{Dst: reg, Rot: r})
				rotSet[r] = true
			}
			st.Dst = st.Fan[0].Dst
			// The source is read by every fan entry; free its register
			// only now that no fan destination can have claimed it.
			if a >= nIn && last[a] == step && regOf[a] >= 0 {
				free = append(free, regOf[a])
				regOf[a] = -1
			}
			p.NumDecomps = 1
			p.Steps = append(p.Steps, st)
			continue
		}

		dst := nIn + idx
		b := -1
		st := Step{Op: in.Op, A: code(a), Pt: -1, Con: -1}
		if in.Op.IsCtCt() {
			b = canon[in.B]
			st.B = code(b)
		}
		switch {
		case in.Op == quill.OpRotCt:
			st.Rot = norm(in.Rot)
			rotSet[st.Rot] = true
		case in.Op.IsCtPt():
			if in.P.Input >= 0 {
				st.Pt = in.P.Input
			} else {
				key := fmt.Sprint(in.P.Const)
				ci, ok := constIdx[key]
				if !ok {
					pt := params.NewPlaintext()
					vec := quill.ConcreteSem{}.FromConst(in.P.Const, l.VecLen)
					if err := enc.Encode(vec, pt); err != nil {
						return nil, fmt.Errorf("plan: encoding constant of %s: %w", in, err)
					}
					ci = len(p.Consts)
					p.Consts = append(p.Consts, pt)
					constIdx[key] = ci
				}
				st.Con = ci
			}
		}
		// Free dying operand registers before allocating dst so the
		// destination can reuse an operand's buffer in place.
		for _, v := range [2]int{a, b} {
			if v >= nIn && v != -1 && last[v] == step && regOf[v] >= 0 {
				free = append(free, regOf[v])
				regOf[v] = -1
			}
			if b == a {
				break // same value twice: free once
			}
		}
		regOf[dst] = alloc(deg[dst])
		st.Dst = regOf[dst]
		p.Steps = append(p.Steps, st)
	}
	p.Out = code(output)

	p.Rotations = make([]int, 0, len(rotSet))
	for r := range rotSet {
		p.Rotations = append(p.Rotations, r)
	}
	sort.Ints(p.Rotations)
	return p, nil
}

// Validate checks the structural invariants Compile guarantees, for
// plans that did NOT come from Compile in this process — plans decoded
// from the wire (internal/wire). A malformed plan (out-of-range
// register or constant index, unknown opcode, undeclared rotation)
// would index out of bounds inside a session's execution loop;
// Validate turns that into an error at load time. params must be the
// parameter set the plan will execute under.
func (p *ExecutionPlan) Validate(params *bfv.Parameters) error {
	if p.N != params.N {
		return fmt.Errorf("plan: compiled for N=%d, parameters have N=%d", p.N, params.N)
	}
	if p.VecLen < 1 || p.VecLen > params.SlotCount() {
		return fmt.Errorf("plan: vector length %d outside [1, %d]", p.VecLen, params.SlotCount())
	}
	if p.NumCtInputs < 0 || p.NumPtInputs < 0 {
		return fmt.Errorf("plan: negative input count")
	}
	if p.NumRegs != len(p.RegDeg) {
		return fmt.Errorf("plan: NumRegs=%d but %d register degrees", p.NumRegs, len(p.RegDeg))
	}
	for r, d := range p.RegDeg {
		if d < 1 || d > 2 {
			return fmt.Errorf("plan: register %d has degree %d, want 1 or 2", r, d)
		}
	}
	for i, pt := range p.Consts {
		if pt == nil || len(pt.Coeffs) != params.N {
			return fmt.Errorf("plan: constant %d has wrong shape", i)
		}
	}
	rotDeclared := map[int]bool{}
	for i, r := range p.Rotations {
		if r == 0 {
			return fmt.Errorf("plan: declared rotation 0 (identity needs no key)")
		}
		if rotDeclared[r] {
			return fmt.Errorf("plan: duplicate declared rotation %d", r)
		}
		if i > 0 && r <= p.Rotations[i-1] {
			return fmt.Errorf("plan: rotations not sorted")
		}
		rotDeclared[r] = true
	}
	codes := p.NumCtInputs + p.NumRegs
	rotUsed := map[int]bool{}
	for i := range p.Steps {
		st := &p.Steps[i]
		bad := func(what string) error {
			return fmt.Errorf("plan: step %d (%v): %s", i, st.Op, what)
		}
		if st.Dst < 0 || st.Dst >= p.NumRegs {
			return bad(fmt.Sprintf("destination register %d out of range", st.Dst))
		}
		if st.A < 0 || st.A >= codes {
			return bad(fmt.Sprintf("operand code %d out of range", st.A))
		}
		if st.Op != OpHoistedRot && len(st.Fan) != 0 {
			return bad("fan-out list on a non-hoisted step")
		}
		switch {
		case st.Op == OpHoistedRot:
			if len(st.Fan) < 2 {
				return bad(fmt.Sprintf("hoisted group with fan-out %d, want ≥ 2", len(st.Fan)))
			}
			if st.Dst != st.Fan[0].Dst {
				return bad("hoisted step destination disagrees with its first fan entry")
			}
			fanRots := map[int]bool{}
			fanDsts := map[int]bool{}
			for _, f := range st.Fan {
				if f.Dst < 0 || f.Dst >= p.NumRegs {
					return bad(fmt.Sprintf("fan destination register %d out of range", f.Dst))
				}
				if fanDsts[f.Dst] {
					return bad(fmt.Sprintf("duplicate fan destination register %d", f.Dst))
				}
				fanDsts[f.Dst] = true
				// Every fan entry reads the source after earlier entries
				// wrote their destinations, so no entry may alias it (or
				// another entry).
				if !p.IsInput(st.A) && f.Dst == p.Reg(st.A) {
					return bad(fmt.Sprintf("fan destination register %d aliases the hoisted source", f.Dst))
				}
				if f.Rot == 0 || !rotDeclared[f.Rot] {
					return bad(fmt.Sprintf("fan rotation %d not in declared set %v", f.Rot, p.Rotations))
				}
				if fanRots[f.Rot] {
					return bad(fmt.Sprintf("duplicate rotation %d in fan-out", f.Rot))
				}
				fanRots[f.Rot] = true
				rotUsed[f.Rot] = true
			}
		case st.Op == quill.OpRotCt:
			if st.Rot == 0 || !rotDeclared[st.Rot] {
				return bad(fmt.Sprintf("rotation %d not in declared set %v", st.Rot, p.Rotations))
			}
			rotUsed[st.Rot] = true
		case st.Op == quill.OpRelin:
			// unary, no extra operands
		case st.Op.IsCtCt():
			if st.B < 0 || st.B >= codes {
				return bad(fmt.Sprintf("operand code %d out of range", st.B))
			}
		case st.Op.IsCtPt():
			switch {
			case st.Pt >= 0 && st.Con >= 0:
				return bad("both plaintext input and constant set")
			case st.Pt >= 0:
				if st.Pt >= p.NumPtInputs {
					return bad(fmt.Sprintf("plaintext input %d out of range", st.Pt))
				}
			case st.Con >= 0:
				if st.Con >= len(p.Consts) {
					return bad(fmt.Sprintf("constant index %d out of range", st.Con))
				}
			default:
				return bad("neither plaintext input nor constant set")
			}
		default:
			return bad("unknown opcode")
		}
	}
	for r := range rotDeclared {
		if !rotUsed[r] {
			return fmt.Errorf("plan: declared rotation %d never executed", r)
		}
	}
	groups, _ := p.HoistedGroups()
	if want := min(groups, 1); p.NumDecomps != want {
		return fmt.Errorf("plan: %d decomposition buffers declared, %d hoisted groups need %d", p.NumDecomps, groups, want)
	}
	if p.Out < 0 || p.Out >= codes {
		return fmt.Errorf("plan: output code %d out of range", p.Out)
	}
	return nil
}

// RotationSet returns the canonical rotation amounts required by a set
// of plans, merged and sorted — the Galois keys a context serving all
// of them must hold.
func RotationSet(plans ...*ExecutionPlan) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range plans {
		if p == nil {
			continue
		}
		for _, r := range p.Rotations {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sort.Ints(out)
	return out
}
