// Package plan compiles lowered Quill programs into execution plans:
// fixed, allocation-free schedules that any number of goroutines can
// run concurrently against a shared key set.
//
// The interpreter in internal/backend walks a lowered program one
// instruction at a time, allocating a fresh ciphertext per instruction
// and re-encoding plaintext constants on every call. A plan does all
// of that analysis once, at compile time:
//
//   - liveness analysis and register allocation map the program's SSA
//     values onto a minimal pool of reusable ciphertext buffers
//     ("registers"), so a program with hundreds of instructions runs
//     in a handful of buffers;
//   - instruction selection targets the evaluator's alias-safe
//     in-place forms (AddInto, MulInto, ...), with no-op instructions
//     (identity rotations, relinearization of degree-1 values)
//     resolved to aliases and dead instructions dropped;
//   - plaintext constants are encoded once, at plan time;
//   - the exact Galois-key set the program needs is computed per
//     plan, so a serving context generates precisely the keys its
//     plans use.
//
// Plans are immutable after Compile and safe to share between
// goroutines; the mutable state (the register file) lives in the
// executing session (backend.Session).
package plan

import (
	"fmt"
	"math"
	"sort"

	"porcupine/internal/bfv"
	"porcupine/internal/quill"
)

// OpHoistedRot is the plan-only opcode of a fused rotation fan-out:
// the key-switching digit decomposition of the source operand is
// computed once and shared by every rotation in the step's Fan list.
// It never appears in lowered programs — the planner synthesizes it
// when ≥2 distinct rotations read one source — so its value lives
// outside the quill instruction set's range.
const OpHoistedRot quill.Op = 0x40

// OpNTT and OpINTT are the plan-only domain-conversion opcodes the
// domain-assignment pass inserts at true domain boundaries: OpNTT
// materializes the evaluation-domain twin of a coefficient-domain
// register, OpINTT the reverse. Both are unary (operand A, register
// destination) and cost two transforms (a degree-1 ciphertext's two
// rows); like OpHoistedRot they never appear in lowered programs.
const (
	OpNTT  quill.Op = 0x41
	OpINTT quill.Op = 0x42
)

// OpBatchedRot is the plan-only opcode of a cross-source batched
// rotation group: rotations of DIFFERENT source ciphertexts by the
// SAME amount, executed through one batched key switch. The Galois
// element, switching key, and automorphism tables are resolved once
// per group; each member then pays its own digit decomposition (the
// dual of OpHoistedRot, which shares one source's decomposition across
// amounts). Synthesized by the planner when ≥2 plain rotations share a
// canonical amount within a step window; never appears in lowered
// programs.
const OpBatchedRot quill.Op = 0x43

// OpSharedRot is the plan-only opcode of the double-hoisted rotation
// step family that subsumes both OpHoistedRot and OpBatchedRot: a
// group of rotations by ONE amount (sharing the Galois element, key
// and tables like a batched group) whose members each consume a
// session decomposition SLOT. A member with Fresh set lifts and
// forward-NTTs its source's digits into the slot; a member with Fresh
// clear replays a decomposition an EARLIER step left resident — so one
// decomposition per source serves every rotation of that source, at
// any amount, anywhere in the schedule (hoisting across amounts AND
// batching across sources simultaneously). Synthesized by the sharing
// pass (share.go); never appears in lowered programs, and never mixes
// with OpHoistedRot/OpBatchedRot in one plan.
const OpSharedRot quill.Op = 0x44

// FanOut is one rotation of a hoisted fan-out group.
type FanOut struct {
	Dst int // register receiving this rotation
	Rot int // canonical rotation amount (never 0)
}

// BatchedSrc is one member of a cross-source batched rotation group:
// one source operand rotated by the group's shared amount into its own
// destination register.
type BatchedSrc struct {
	Src int // operand code of this member's source
	Dst int // register receiving this member's rotation
}

// SharedSrc is one member of a double-hoisted rotation group: one
// source operand rotated by the step's shared amount into its own
// destination register, through the session decomposition slot the
// liveness pass assigned to the source. Fresh marks the member that
// fills the slot (the source's first rotation in schedule order);
// every later member of the same source, in this step or a later one,
// replays the resident digits.
type SharedSrc struct {
	Src   int  // operand code of this member's source
	Dst   int  // register receiving this member's rotation
	Slot  int  // session decomposition slot holding the source's digits
	Fresh bool // this member decomposes the source into the slot
}

// Step is one scheduled instruction of a plan. Operand fields A and B
// hold operand codes: code < NumCtInputs refers to the caller's input
// ciphertext with that index, any other code refers to register
// code-NumCtInputs. Dst is always a register index (plans never write
// to caller inputs).
type Step struct {
	Op  quill.Op
	Dst int // register index (Fan[0].Dst for hoisted steps)
	A   int // operand code
	B   int // operand code (ct-ct ops)
	Rot int // canonical rotation amount (OpRotCt)
	Pt  int // plaintext input index (ct-pt ops), -1 for constants
	Con int // pre-encoded constant index (ct-pt ops), -1 for inputs

	// Fan lists the rotations of a hoisted group (OpHoistedRot only;
	// nil for every other op). The source A is decomposed once, then
	// each entry costs a digit permutation instead of a fresh
	// decomposition. Entries are in program order; no entry's register
	// may alias the source (every entry reads it).
	Fan []FanOut

	// Batch lists the members of a cross-source batched group
	// (OpBatchedRot only; nil for every other op). Every member rotates
	// its own source by the step's shared Rot amount; A and Dst mirror
	// the first member. Entries are in program order; no member's
	// destination may alias any member's source (the group reads all
	// sources before the last write).
	Batch []BatchedSrc

	// Shared lists the members of a double-hoisted group (OpSharedRot
	// only; nil for every other op). Every member rotates its own
	// source by the step's shared Rot amount out of its decomposition
	// slot; A and Dst mirror the first member. Entries are in program
	// order; no member's destination may alias any member's source, and
	// a source's register must survive untouched from its Fresh member
	// to its last shared rotation (its c0 is read per rotation).
	Shared []SharedSrc
}

// ExecutionPlan is a compiled, immutable execution schedule for one
// lowered program against one BFV parameter set.
type ExecutionPlan struct {
	// N is the ring degree of the parameter set the plan (and its
	// pre-encoded constants) was compiled for; executing it under
	// different parameters is rejected.
	N int

	VecLen      int
	NumCtInputs int
	NumPtInputs int

	// NumRegs is the size of the ciphertext buffer pool a session needs
	// to run the plan — the register-allocation result.
	NumRegs int
	// RegDeg[r] is the maximum ciphertext degree register r ever holds,
	// so sessions can pre-size buffers.
	RegDeg []int
	// RegDomain[r] is the representation register r holds for the
	// plan's whole lifetime — registers never change domain, and the
	// allocator never reuses a buffer across domains. NTT-resident
	// registers always hold degree-1 ciphertexts. All-coefficient for
	// plans compiled with DisableDomainAssignment and plans decoded
	// from pre-v3 wire artifacts.
	RegDomain []Domain
	// NumDecomps is the number of key-switching decomposition scratch
	// slots a session needs. For double-hoisted plans it is the peak
	// number of simultaneously-live shared decompositions (the
	// slot-liveness result: a slot is live from its Fresh member to the
	// source's last shared rotation, then reused); for legacy plans it
	// is 1 when any hoisted or batched group exists (they never nest,
	// one buffer serves all of them), 0 otherwise. Sized by the
	// register allocator; serialized from wire v6 on (earlier versions
	// recompute it from the step list).
	NumDecomps int

	Steps []Step

	// Consts holds the plaintext constants of the program, encoded once
	// at plan time (shared, read-only).
	Consts []*bfv.Plaintext

	// Rotations is the exact set of nonzero rotation amounts the plan
	// executes — the Galois keys it needs. Amounts are canonical
	// (quill.NormRot) when the program vector fills the HE row and
	// literal otherwise (see Compile).
	Rotations []int

	// Out is the operand code of the program output: an input code when
	// the program returns an input unchanged, a register code otherwise.
	Out int

	// Source is the lowered program the plan was compiled from (for
	// differential reference runs and reporting).
	Source *quill.Lowered

	// Prepared operand state, derived — never serialized — by Prepare:
	// evaluation-domain plaintext operands hoisted out of the step
	// loop. MulNTTConsts[c] is NTT(lift(Consts[c])) for constants some
	// mul-plain step reads (nil otherwise); AddNTTConsts[c] is
	// NTT(Δ·Consts[c]) for constants an NTT-destination add/sub-plain
	// step reads. PtNeedMulNTT/PtNeedAddNTT flag the runtime plaintext
	// inputs whose prepared forms a session must compute once per run.
	MulNTTConsts []*bfv.NTTPlaintext
	AddNTTConsts []*bfv.NTTPlaintext
	PtNeedMulNTT []bool
	PtNeedAddNTT []bool
	// Prepared reports whether Prepare ran: sessions then execute
	// mul-plain through the prepared-operand variants (bit-identical,
	// minus the per-call operand NTT). Set by Compile unless domain
	// assignment is disabled, and by wire decode always.
	Prepared bool

	// Levels is the dependency-levelized step schedule (see Levelize):
	// Levels[l] lists the indices of the steps of level l, which touch
	// pairwise-disjoint registers and depend only on earlier levels, so
	// a session may run them concurrently. Derived — never serialized.
	Levels [][]int
}

// IsInput reports whether an operand code refers to a caller input.
func (p *ExecutionPlan) IsInput(code int) bool { return code < p.NumCtInputs }

// Reg returns the register index of a non-input operand code.
func (p *ExecutionPlan) Reg(code int) int { return code - p.NumCtInputs }

// InstructionCount returns the number of scheduled steps (after no-op
// aliasing and dead-code elimination).
func (p *ExecutionPlan) InstructionCount() int { return len(p.Steps) }

// HoistedGroups returns the number of fused rotation fan-out steps
// and the total rotations they cover. A plan with groups decomposes
// once per group instead of once per rotation: forward NTT passes in
// rotation key-switching drop from K·rotations to K·(groups + plain
// rotations).
func (p *ExecutionPlan) HoistedGroups() (groups, rotations int) {
	for i := range p.Steps {
		if p.Steps[i].Op == OpHoistedRot {
			groups++
			rotations += len(p.Steps[i].Fan)
		}
	}
	return groups, rotations
}

// BatchedGroups returns the number of cross-source batched rotation
// steps and the total rotations they cover. Each group fetches its
// Galois key and automorphism tables once; every member still pays its
// own digit decomposition (sources differ), so the win is the shared
// per-element state, not shared digits.
func (p *ExecutionPlan) BatchedGroups() (groups, rotations int) {
	for i := range p.Steps {
		if p.Steps[i].Op == OpBatchedRot {
			groups++
			rotations += len(p.Steps[i].Batch)
		}
	}
	return groups, rotations
}

// SharedGroups returns the number of double-hoisted rotation steps,
// the total rotations they cover, and how many of those rotations
// replay an already-resident decomposition (Fresh clear) — the static
// measure of decompose work the sharing pass eliminated.
func (p *ExecutionPlan) SharedGroups() (groups, rotations, replayed int) {
	for i := range p.Steps {
		if p.Steps[i].Op == OpSharedRot {
			groups++
			for _, m := range p.Steps[i].Shared {
				rotations++
				if !m.Fresh {
					replayed++
				}
			}
		}
	}
	return groups, rotations, replayed
}

// DigitDecompositions is the plan's static count of rotation
// key-switch digit decompositions per run — the expensive shared
// prefix (K digit lifts + K forward NTTs) double-hoisting exists to
// minimize. Each plain rotation and each batched member decomposes its
// own source; each hoisted group and each Fresh shared member
// decomposes once; replayed shared members cost nothing.
// Relinearization decompositions are excluded: they are identical
// across plan forms and would only blur the comparison.
func (p *ExecutionPlan) DigitDecompositions() int {
	c := 0
	for i := range p.Steps {
		st := &p.Steps[i]
		switch st.Op {
		case quill.OpRotCt, OpHoistedRot:
			c++
		case OpBatchedRot:
			c += len(st.Batch)
		case OpSharedRot:
			for _, m := range st.Shared {
				if m.Fresh {
					c++
				}
			}
		}
	}
	return c
}

// Options tunes compilation.
type Options struct {
	// DisableHoisting turns off rotation fan-out fusion, producing a
	// plan of plain serial steps only. The unhoisted plan computes
	// bit-identical ciphertexts (the serial rotation path runs on the
	// same decompose-permute-accumulate primitives); it exists as the
	// differential reference for the hoisted schedule and for
	// measuring the hoisting win.
	DisableHoisting bool

	// DisableDomainAssignment turns off the NTT-domain dataflow pass:
	// every register stays in the coefficient domain, no conversion
	// steps are inserted, and execution uses the exact legacy paths
	// (per-call operand NTT in mul-plain included). The unassigned
	// plan computes bit-identical ciphertexts — it is the differential
	// reference for the domain-assigned schedule and the baseline for
	// measuring the transform win.
	DisableDomainAssignment bool

	// DisableBatching turns off cross-source batched key switching:
	// rotations of different sources by a shared amount stay plain
	// serial steps. Implied by DisableHoisting (a "flat" plan is the
	// fully serial reference). Disabling batching also disables
	// sharing (double-hoisting groups by amount the same way).
	// Bit-identity is unaffected either way.
	DisableBatching bool

	// DisableSharing turns off double-hoisted key switching: rotation
	// fans stay fused OpHoistedRot steps and same-amount cross-source
	// groups stay OpBatchedRot — the PR 7 plan shape, kept as the
	// differential reference for the shared schedule, the baseline for
	// measuring the sharing win, and the compile target for wire
	// versions < 6 (which cannot carry decomposition-slot fields).
	// Bit-identity is unaffected either way.
	DisableSharing bool

	// BatchWindow bounds how far apart (in schedule positions) two
	// rotations may sit and still fuse into one batched group; batching
	// extends every member source's live range to the group step, so
	// the window caps the register-pressure cost. 0 means the default.
	BatchWindow int
}

// defaultBatchWindow is the BatchWindow used when Options leaves it 0:
// wide enough to fuse the corresponding levels of two back-to-back
// log-depth reduction trees over 16-slot windows (8 schedule entries
// apart), small enough to keep at most a handful of sources live.
const defaultBatchWindow = 8

// schedEntry is one scheduled unit of the compile pipeline: a plain
// instruction, a fused rotation fan-out group (one source, many
// amounts), or a cross-source batched group (many sources, one
// amount), either group scheduled at its first member's position.
type schedEntry struct {
	idx     int   // instruction index (first member for groups)
	members []int // nil → plain step; else the group's rotation instrs
	batch   bool  // members share an amount (OpBatchedRot), not a source
	shared  bool  // members share an amount through decomposition slots (OpSharedRot)
}

// Compile analyzes a lowered program and produces its execution plan
// for the given parameter set. The encoder is used once, to pre-encode
// plaintext constants; it must belong to params.
func Compile(params *bfv.Parameters, enc *bfv.Encoder, l *quill.Lowered) (*ExecutionPlan, error) {
	return CompileWithOptions(params, enc, l, Options{})
}

// CompileWithOptions is Compile with explicit Options.
func CompileWithOptions(params *bfv.Parameters, enc *bfv.Encoder, l *quill.Lowered, opts Options) (*ExecutionPlan, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if l.VecLen > params.SlotCount() {
		return nil, fmt.Errorf("plan: program vector of %d slots exceeds row size %d", l.VecLen, params.SlotCount())
	}
	n := l.NumValues()
	nIn := l.NumCtInputs

	// Rotation amounts may be canonicalized modulo the vector size
	// only when the program vector fills the whole HE row: then row
	// rotation IS circular rotation mod VecLen and abstractly equal
	// amounts are interchangeable. For shorter vectors the row shifts
	// zero padding into the window, which slots depends on the literal
	// amount — so the plan keeps amounts literal (only a literal 0 is
	// the identity).
	norm := func(r int) int {
		if l.VecLen == params.SlotCount() {
			return quill.NormRot(r, l.VecLen)
		}
		return r
	}

	// Pass 1: canonical values and static ciphertext degrees. canon[v]
	// resolves no-op instructions (rot ≡ 0, relin of a degree-1 value)
	// to the value they forward; deg[v] is the ciphertext degree of the
	// canonical value.
	canon := make([]int, n)
	deg := make([]int, n)
	for i := 0; i < nIn; i++ {
		canon[i] = i
		deg[i] = 1
	}
	// real[idx] marks instructions that survive aliasing (indexed like
	// l.Instrs). Rotations are additionally value-numbered: a second
	// rotation of the same canonical source by the same canonical
	// amount is the same ciphertext bit for bit, so it aliases the
	// first — which also keeps hoisted fan-outs free of duplicate
	// amounts.
	real := make([]bool, len(l.Instrs))
	type rotKey struct{ src, rot int }
	rotCSE := map[rotKey]int{}
	for idx, in := range l.Instrs {
		dst := nIn + idx
		a := canon[in.A]
		switch in.Op {
		case quill.OpRotCt:
			if deg[a] > 1 {
				return nil, fmt.Errorf("plan: %s: rotation of degree-%d ciphertext", in, deg[a])
			}
			r := norm(in.Rot)
			if r == 0 {
				canon[dst] = a
				deg[dst] = deg[a]
				continue
			}
			if prev, ok := rotCSE[rotKey{a, r}]; ok {
				canon[dst] = prev
				deg[dst] = 1
				continue
			}
			rotCSE[rotKey{a, r}] = dst
			canon[dst], deg[dst], real[idx] = dst, 1, true
		case quill.OpRelin:
			if deg[a] == 1 {
				canon[dst] = a
				deg[dst] = 1
				continue
			}
			if deg[a] != 2 {
				return nil, fmt.Errorf("plan: %s: relinearization of degree-%d ciphertext", in, deg[a])
			}
			canon[dst], deg[dst], real[idx] = dst, 1, true
		case quill.OpMulCtCt:
			if deg[a] > 1 || deg[canon[in.B]] > 1 {
				return nil, fmt.Errorf("plan: %s: multiplication of degree-%d×%d ciphertexts (relinearize first)",
					in, deg[a], deg[canon[in.B]])
			}
			canon[dst], deg[dst], real[idx] = dst, 2, true
		case quill.OpAddCtCt, quill.OpSubCtCt:
			d := deg[a]
			if b := deg[canon[in.B]]; b > d {
				d = b
			}
			canon[dst], deg[dst], real[idx] = dst, d, true
		case quill.OpAddCtPt, quill.OpSubCtPt, quill.OpMulCtPt:
			canon[dst], deg[dst], real[idx] = dst, deg[a], true
		default:
			return nil, fmt.Errorf("plan: unknown opcode %v", in.Op)
		}
	}
	output := canon[l.Output]

	// Pass 2: dead-code elimination by backwards reachability from the
	// output over canonical values.
	live := make([]bool, n)
	live[output] = true
	for idx := len(l.Instrs) - 1; idx >= 0; idx-- {
		dst := nIn + idx
		if !real[idx] || !live[dst] {
			real[idx] = false
			continue
		}
		in := l.Instrs[idx]
		live[canon[in.A]] = true
		if in.Op.IsCtCt() {
			live[canon[in.B]] = true
		}
	}

	// Pass 3: rotation fan-out detection. A source read by ≥2 distinct
	// surviving rotations has its digit decomposition hoisted: the
	// group's rotations fuse into one OpHoistedRot step scheduled at
	// the first member's position (moving a pure rotation earlier is
	// always legal — its only operand is already defined there). The
	// schedule below is the step list the domain, liveness and register
	// passes run over: one entry per plain step or fused group.
	groupOf := map[int][]int{} // first-member idx → member idxs
	inGroup := map[int]bool{}  // member idx → fused away
	if !opts.DisableHoisting {
		bySrc := map[int][]int{}
		var srcs []int
		for idx, in := range l.Instrs {
			if real[idx] && in.Op == quill.OpRotCt {
				src := canon[in.A]
				if len(bySrc[src]) == 0 {
					srcs = append(srcs, src)
				}
				bySrc[src] = append(bySrc[src], idx)
			}
		}
		for _, src := range srcs {
			members := bySrc[src]
			if len(members) < 2 {
				continue
			}
			groupOf[members[0]] = members
			for _, m := range members {
				inGroup[m] = true
			}
		}
	}
	var sched []schedEntry
	for idx := range l.Instrs {
		if !real[idx] {
			continue
		}
		if members, ok := groupOf[idx]; ok {
			sched = append(sched, schedEntry{idx: idx, members: members})
			continue
		}
		if inGroup[idx] {
			continue // emitted with its group's first member
		}
		sched = append(sched, schedEntry{idx: idx})
	}

	// Pass 4: domain assignment (see domain.go) — the home domain of
	// every canonical value. All-coefficient when disabled; inputs,
	// degree-2 values, and relin/tensor results are always coefficient.
	dom := make([]Domain, n)
	if !opts.DisableDomainAssignment {
		dom = assignDomains(l, canon, deg, sched, nIn, output)
	}

	// Pass 4b/4c: rotation grouping across sources. Both passes run
	// after domain assignment (each preserves every member's source and
	// destination domain, so the assignment stays optimal for the same
	// cost model) and are skipped for flat reference plans. The default
	// is the sharing pass (share.go): fan groups dissolve and every
	// rotation becomes a member of a per-amount OpSharedRot group that
	// consumes a session decomposition slot — one decomposition per
	// source for the whole plan. With DisableSharing the legacy
	// batching pass (batch.go) runs instead, keeping the PR 7
	// OpHoistedRot/OpBatchedRot shape.
	if !opts.DisableHoisting && !opts.DisableBatching {
		if opts.DisableSharing {
			sched = batchRotations(l, canon, sched, nIn, norm, opts.BatchWindow)
		} else {
			sched = shareRotations(l, canon, sched, nIn, norm, opts.BatchWindow)
		}
	}

	// Pass 5: work-item construction. A value's home form carries the
	// domain its defining step writes; a consumer needing the other
	// domain reads a conversion twin, materialized once per value by an
	// explicit OpNTT/OpINTT item placed right before its first
	// mismatched consumer. Form ids 0..n-1 are home forms (id = value);
	// twins get fresh ids ≥ n. Rotations and mul-plain read their
	// source's home form (the evaluator variants consume either
	// domain natively); ct-ct and ct-pt add/sub read both operands in
	// the destination's domain; tensor products, relinearization and
	// the program output read coefficient forms.
	formDom := make([]Domain, n, n+4)
	copy(formDom, dom)
	formDeg := make([]int, n, n+4)
	copy(formDeg, deg)
	twinOf := make([]int, n)
	for i := range twinOf {
		twinOf[i] = -1
	}
	type workItem struct {
		conv     bool // OpNTT/OpINTT twin materialization
		toNTT    bool
		e        schedEntry // instruction item (unused for conv)
		aForm    int        // operand form (conv: the source home form)
		bForm    int        // second operand form, -1 if none
		dstForm  int        // form defined (twin id for conv; -1 for groups)
		srcForms []int      // per-member source forms (batched groups only)
	}
	var items []workItem
	form := func(v int, d Domain) int {
		if dom[v] == d {
			return v
		}
		if twinOf[v] < 0 {
			id := len(formDom)
			formDom = append(formDom, d)
			formDeg = append(formDeg, 1)
			twinOf[v] = id
			items = append(items, workItem{conv: true, toNTT: d == DomNTT, aForm: v, bForm: -1, dstForm: id})
		}
		return twinOf[v]
	}
	for _, e := range sched {
		in := l.Instrs[e.idx]
		a := canon[in.A]
		if e.batch || e.shared {
			it := workItem{e: e, aForm: a, bForm: -1, dstForm: -1}
			for _, m := range e.members {
				it.srcForms = append(it.srcForms, canon[l.Instrs[m].A])
			}
			items = append(items, it)
			continue
		}
		if e.members != nil {
			items = append(items, workItem{e: e, aForm: a, bForm: -1, dstForm: -1})
			continue
		}
		dstv := nIn + e.idx
		d := dom[dstv]
		it := workItem{e: e, aForm: a, bForm: -1, dstForm: dstv}
		switch in.Op {
		case quill.OpMulCtCt:
			it.aForm = form(a, DomCoeff)
			it.bForm = form(canon[in.B], DomCoeff)
		case quill.OpAddCtCt, quill.OpSubCtCt:
			it.aForm = form(a, d)
			it.bForm = form(canon[in.B], d)
		case quill.OpAddCtPt, quill.OpSubCtPt:
			it.aForm = form(a, d)
		}
		items = append(items, it)
	}
	outForm := form(output, DomCoeff)

	// Pass 6: liveness — the last item index reading each form. The
	// output form lives past the end of the program. A twin's source
	// is read by the conversion item itself, so a home form consumed
	// only through its twin stays live exactly until the conversion.
	last := make([]int, len(formDom))
	for i := range last {
		last[i] = -1
	}
	for t, it := range items {
		last[it.aForm] = t
		if it.bForm >= 0 {
			last[it.bForm] = t
		}
		for _, f := range it.srcForms {
			last[f] = t
		}
	}
	last[outForm] = math.MaxInt

	// Pass 6b: decomposition-slot liveness for shared groups. A source's
	// slot is live from its Fresh member (first shared rotation in
	// schedule order) to its last shared rotation, then returns to the
	// free pool for a later source — the interval structure mirrors
	// register liveness, keyed by source form (rotation members always
	// read home forms).
	lastShared := map[int]int{}
	for t, it := range items {
		if it.e.shared {
			for _, f := range it.srcForms {
				lastShared[f] = t
			}
		}
	}

	// Pass 7: linear-scan register allocation with in-place reuse. A
	// register freed by an operand's last use is immediately available
	// as the destination of the same step — every evaluator *Into form
	// is alias-safe, so dst may share a buffer with a dying operand.
	// Free lists are per-domain: a register holds one representation
	// for the plan's whole lifetime, so a buffer never crosses domains
	// (which also means a conversion never aliases its source).
	// Hoisted groups are the exception to in-place reuse: every fan
	// entry reads the source (its c0 and its hoisted digits), so the
	// source's register is freed only after the whole fan is
	// allocated, and fan destinations are pairwise distinct by
	// construction. This is also where per-session decomposition
	// scratch is sized: any hoisted step sets NumDecomps to 1 (groups
	// never nest, one buffer serves the whole plan).
	p := &ExecutionPlan{
		N:           params.N,
		VecLen:      l.VecLen,
		NumCtInputs: nIn,
		NumPtInputs: l.NumPtInputs,
		Source:      l,
	}
	regOf := make([]int, len(formDom))
	for i := range regOf {
		regOf[i] = -1
	}
	var freeC, freeN []int
	code := func(f int) int {
		if f < nIn {
			return f
		}
		return nIn + regOf[f]
	}
	alloc := func(d int, dm Domain) int {
		list := &freeC
		if dm == DomNTT {
			list = &freeN
		}
		if k := len(*list); k > 0 {
			r := (*list)[k-1]
			*list = (*list)[:k-1]
			if d > p.RegDeg[r] {
				p.RegDeg[r] = d
			}
			return r
		}
		p.RegDeg = append(p.RegDeg, d)
		p.RegDomain = append(p.RegDomain, dm)
		p.NumRegs++
		return p.NumRegs - 1
	}
	release := func(f, t int) {
		if f >= nIn && f < len(last) && last[f] == t && regOf[f] >= 0 {
			if formDom[f] == DomNTT {
				freeN = append(freeN, regOf[f])
			} else {
				freeC = append(freeC, regOf[f])
			}
			regOf[f] = -1
		}
	}
	constIdx := map[string]int{}
	rotSet := map[int]bool{}
	slotOf := map[int]int{} // source form → live decomposition slot
	var freeSlots []int
	for t, it := range items {
		if it.conv {
			op := OpINTT
			if it.toNTT {
				op = OpNTT
			}
			st := Step{Op: op, A: code(it.aForm), Pt: -1, Con: -1}
			release(it.aForm, t)
			regOf[it.dstForm] = alloc(1, formDom[it.dstForm])
			st.Dst = regOf[it.dstForm]
			p.Steps = append(p.Steps, st)
			continue
		}
		in := l.Instrs[it.e.idx]
		if it.e.shared {
			st := Step{Op: OpSharedRot, Pt: -1, Con: -1, Rot: norm(in.Rot)}
			rotSet[st.Rot] = true
			for i, m := range it.e.members {
				f := it.srcForms[i]
				slot, live := slotOf[f]
				if !live { // first shared rotation of this source: fill a slot
					if k := len(freeSlots); k > 0 {
						slot = freeSlots[k-1]
						freeSlots = freeSlots[:k-1]
					} else {
						slot = p.NumDecomps // NumDecomps ends at the peak
						p.NumDecomps++
					}
					slotOf[f] = slot
				}
				reg := alloc(1, dom[nIn+m])
				regOf[nIn+m] = reg
				st.Shared = append(st.Shared, SharedSrc{Src: code(f), Dst: reg, Slot: slot, Fresh: !live})
			}
			st.A, st.Dst = st.Shared[0].Src, st.Shared[0].Dst
			// Every member's source is read by the group (replays still
			// read its c0); free source registers — and slots whose
			// source just had its last shared rotation — only now that
			// no member destination can have claimed one.
			for _, f := range it.srcForms {
				if lastShared[f] == t {
					if s, live := slotOf[f]; live {
						freeSlots = append(freeSlots, s)
						delete(slotOf, f)
					}
				}
				release(f, t)
			}
			p.Steps = append(p.Steps, st)
			continue
		}
		if it.e.batch {
			st := Step{Op: OpBatchedRot, Pt: -1, Con: -1, Rot: norm(in.Rot)}
			rotSet[st.Rot] = true
			for i, m := range it.e.members {
				reg := alloc(1, dom[nIn+m])
				regOf[nIn+m] = reg
				st.Batch = append(st.Batch, BatchedSrc{Src: code(it.srcForms[i]), Dst: reg})
			}
			st.A, st.Dst = st.Batch[0].Src, st.Batch[0].Dst
			// Every member's source is read by the group; free their
			// registers only now that no member destination can have
			// claimed one.
			for _, f := range it.srcForms {
				release(f, t)
			}
			p.NumDecomps = 1
			p.Steps = append(p.Steps, st)
			continue
		}
		if it.e.members != nil {
			st := Step{Op: OpHoistedRot, A: code(it.aForm), Pt: -1, Con: -1}
			for _, m := range it.e.members {
				r := norm(l.Instrs[m].Rot)
				reg := alloc(1, dom[nIn+m])
				regOf[nIn+m] = reg
				st.Fan = append(st.Fan, FanOut{Dst: reg, Rot: r})
				rotSet[r] = true
			}
			st.Dst = st.Fan[0].Dst
			// The source is read by every fan entry; free its register
			// only now that no fan destination can have claimed it.
			release(it.aForm, t)
			p.NumDecomps = 1
			p.Steps = append(p.Steps, st)
			continue
		}

		dstv := it.dstForm
		st := Step{Op: in.Op, A: code(it.aForm), Pt: -1, Con: -1}
		if in.Op.IsCtCt() {
			st.B = code(it.bForm)
		}
		switch {
		case in.Op == quill.OpRotCt:
			st.Rot = norm(in.Rot)
			rotSet[st.Rot] = true
		case in.Op.IsCtPt():
			if in.P.Input >= 0 {
				st.Pt = in.P.Input
			} else {
				key := fmt.Sprint(in.P.Const)
				ci, ok := constIdx[key]
				if !ok {
					pt := params.NewPlaintext()
					vec := quill.ConcreteSem{}.FromConst(in.P.Const, l.VecLen)
					if err := enc.Encode(vec, pt); err != nil {
						return nil, fmt.Errorf("plan: encoding constant of %s: %w", in, err)
					}
					ci = len(p.Consts)
					p.Consts = append(p.Consts, pt)
					constIdx[key] = ci
				}
				st.Con = ci
			}
		}
		// Free dying operand registers before allocating dst so the
		// destination can reuse an operand's buffer in place (release
		// is idempotent, so reading the same form twice is fine).
		release(it.aForm, t)
		release(it.bForm, t)
		regOf[dstv] = alloc(deg[dstv], dom[dstv])
		st.Dst = regOf[dstv]
		p.Steps = append(p.Steps, st)
	}
	p.Out = code(outForm)

	p.Rotations = make([]int, 0, len(rotSet))
	for r := range rotSet {
		p.Rotations = append(p.Rotations, r)
	}
	sort.Ints(p.Rotations)
	if p.RegDomain == nil {
		p.RegDomain = []Domain{}
	}
	p.Levelize()
	if !opts.DisableDomainAssignment {
		p.Prepare(params)
	}
	return p, nil
}

// Prepare derives the evaluation-domain plaintext operands the plan's
// prepared execution paths consume: NTT(lift(m)) for every constant a
// mul-plain step reads, NTT(Δ·m) for every constant an
// NTT-destination add/sub-plain step reads, and the need-flags for
// runtime plaintext inputs (whose prepared forms a session computes
// once per run). Load-time only — Compile calls it unless domain
// assignment is disabled, wire decode calls it always — so the plan
// stays immutable once published. Idempotent.
func (p *ExecutionPlan) Prepare(params *bfv.Parameters) {
	p.Levelize() // wire decode reaches here without a Compile pass
	if p.Prepared {
		return
	}
	p.MulNTTConsts = make([]*bfv.NTTPlaintext, len(p.Consts))
	p.AddNTTConsts = make([]*bfv.NTTPlaintext, len(p.Consts))
	p.PtNeedMulNTT = make([]bool, p.NumPtInputs)
	p.PtNeedAddNTT = make([]bool, p.NumPtInputs)
	for i := range p.Steps {
		st := &p.Steps[i]
		switch st.Op {
		case quill.OpMulCtPt:
			if st.Con >= 0 {
				if p.MulNTTConsts[st.Con] == nil {
					p.MulNTTConsts[st.Con] = params.NewMulPlainNTT(p.Consts[st.Con])
				}
			} else {
				p.PtNeedMulNTT[st.Pt] = true
			}
		case quill.OpAddCtPt, quill.OpSubCtPt:
			if p.RegDomain[st.Dst] != DomNTT {
				continue
			}
			if st.Con >= 0 {
				if p.AddNTTConsts[st.Con] == nil {
					p.AddNTTConsts[st.Con] = params.NewAddPlainNTT(p.Consts[st.Con])
				}
			} else {
				p.PtNeedAddNTT[st.Pt] = true
			}
		}
	}
	p.Prepared = true
}

// regDomain is RegDomain with an all-coefficient default for legacy
// in-memory plans that predate the field.
func (p *ExecutionPlan) regDomain(r int) Domain {
	if r < len(p.RegDomain) {
		return p.RegDomain[r]
	}
	return DomCoeff
}

// codeDomain returns the domain of an operand code (inputs are always
// coefficient-domain).
func (p *ExecutionPlan) codeDomain(code int) Domain {
	if p.IsInput(code) {
		return DomCoeff
	}
	return p.regDomain(p.Reg(code))
}

// CodeDomain reports the domain of an operand code: coefficient for
// ciphertext inputs, the register's declared domain otherwise. The
// backend dispatches rotation and plaintext-product variants on it.
func (p *ExecutionPlan) CodeDomain(code int) Domain { return p.codeDomain(code) }

// RegDomainOf reports the declared domain of a register, defaulting to
// coefficient for legacy plans without domain tags.
func (p *ExecutionPlan) RegDomainOf(r int) Domain { return p.regDomain(r) }

// ExternalTransforms is the plan's static count of
// key-switch-external forward+inverse NTT passes per run — the model
// the domain-assignment pass minimizes (see domain.go for the
// per-step costs). Excluded, because no assignment changes them: the
// transforms inside key-switching inner products (digit NTTs and the
// relinearization data path) and the tensor product's extended-basis
// transforms. Per-run plaintext-input preparations (one forward NTT
// per flagged input) are included for prepared plans; unprepared
// mul-plain pays its operand transform per call instead.
func (p *ExecutionPlan) ExternalTransforms() int {
	c := 0
	// c0Charged[s] tracks whether slot s's current fill already paid the
	// forward transform of its source's c0 (cached on the slot by the
	// first NTT-destined rotation, shared by every later one; reset when
	// a Fresh member refills the slot).
	c0Charged := make([]bool, p.NumDecomps)
	for i := range p.Steps {
		st := &p.Steps[i]
		switch st.Op {
		case OpSharedRot:
			for _, m := range st.Shared {
				srcNTT := p.codeDomain(m.Src) == DomNTT
				if m.Fresh {
					if srcNTT {
						c++ // c1 leaves the evaluation domain for digit lifting
					}
					c0Charged[m.Slot] = false
				}
				switch {
				case srcNTT:
					// c0 already evaluation-domain; rotation is pure
					// permuted inner products, output stays NTT.
				case p.regDomain(m.Dst) == DomNTT:
					if !c0Charged[m.Slot] {
						c++ // the slot's cached c0 forward transform
						c0Charged[m.Slot] = true
					}
				default:
					c += 2 // the two accumulator inverse transforms
				}
			}
		case OpHoistedRot:
			if p.codeDomain(st.A) == DomNTT {
				c++
			} else {
				anyN := false
				for _, f := range st.Fan {
					if p.regDomain(f.Dst) == DomNTT {
						anyN = true
					} else {
						c += 2
					}
				}
				if anyN {
					c++
				}
			}
		case OpBatchedRot:
			// Each member runs the serial rotation pipeline of its own
			// domain pair (the batch shares per-element state, not
			// transforms), so the counts mirror quill.OpRotCt below.
			for _, m := range st.Batch {
				switch {
				case p.codeDomain(m.Src) == DomNTT:
					c++
				case p.regDomain(m.Dst) == DomNTT:
					c++
				default:
					c += 2
				}
			}
		case OpNTT, OpINTT:
			c += 2
		case quill.OpRotCt:
			switch {
			case p.codeDomain(st.A) == DomNTT:
				c++
			case p.regDomain(st.Dst) == DomNTT:
				c++
			default:
				c += 2
			}
		case quill.OpRelin:
			c += 2
		case quill.OpMulCtPt:
			if p.Prepared {
				if p.codeDomain(st.A) == DomCoeff {
					c += 2
				}
				if p.regDomain(st.Dst) == DomCoeff {
					c += 2
				}
			} else {
				c += 5 // 4 row transforms + the per-call operand NTT
			}
		}
	}
	for _, need := range p.PtNeedMulNTT {
		if need {
			c++
		}
	}
	for _, need := range p.PtNeedAddNTT {
		if need {
			c++
		}
	}
	return c
}

// DomainStats summarizes the domain assignment: how many registers
// are NTT-resident and how many explicit conversion steps the plan
// executes.
func (p *ExecutionPlan) DomainStats() (nttRegs, convSteps int) {
	for _, d := range p.RegDomain {
		if d == DomNTT {
			nttRegs++
		}
	}
	for i := range p.Steps {
		if p.Steps[i].Op == OpNTT || p.Steps[i].Op == OpINTT {
			convSteps++
		}
	}
	return nttRegs, convSteps
}

// Validate checks the structural invariants Compile guarantees, for
// plans that did NOT come from Compile in this process — plans decoded
// from the wire (internal/wire). A malformed plan (out-of-range
// register or constant index, unknown opcode, undeclared rotation)
// would index out of bounds inside a session's execution loop;
// Validate turns that into an error at load time. params must be the
// parameter set the plan will execute under.
func (p *ExecutionPlan) Validate(params *bfv.Parameters) error {
	if p.N != params.N {
		return fmt.Errorf("plan: compiled for N=%d, parameters have N=%d", p.N, params.N)
	}
	if p.VecLen < 1 || p.VecLen > params.SlotCount() {
		return fmt.Errorf("plan: vector length %d outside [1, %d]", p.VecLen, params.SlotCount())
	}
	if p.NumCtInputs < 0 || p.NumPtInputs < 0 {
		return fmt.Errorf("plan: negative input count")
	}
	if p.NumRegs != len(p.RegDeg) {
		return fmt.Errorf("plan: NumRegs=%d but %d register degrees", p.NumRegs, len(p.RegDeg))
	}
	for r, d := range p.RegDeg {
		if d < 1 || d > 2 {
			return fmt.Errorf("plan: register %d has degree %d, want 1 or 2", r, d)
		}
	}
	if len(p.RegDomain) != p.NumRegs {
		return fmt.Errorf("plan: NumRegs=%d but %d register domains", p.NumRegs, len(p.RegDomain))
	}
	for r, d := range p.RegDomain {
		if d != DomCoeff && d != DomNTT {
			return fmt.Errorf("plan: register %d has unknown domain %d", r, d)
		}
		if d == DomNTT && p.RegDeg[r] != 1 {
			return fmt.Errorf("plan: register %d is NTT-resident with degree %d, want 1", r, p.RegDeg[r])
		}
	}
	for i, pt := range p.Consts {
		if pt == nil || len(pt.Coeffs) != params.N {
			return fmt.Errorf("plan: constant %d has wrong shape", i)
		}
	}
	rotDeclared := map[int]bool{}
	for i, r := range p.Rotations {
		if r == 0 {
			return fmt.Errorf("plan: declared rotation 0 (identity needs no key)")
		}
		if rotDeclared[r] {
			return fmt.Errorf("plan: duplicate declared rotation %d", r)
		}
		if i > 0 && r <= p.Rotations[i-1] {
			return fmt.Errorf("plan: rotations not sorted")
		}
		rotDeclared[r] = true
	}
	codes := p.NumCtInputs + p.NumRegs
	rotUsed := map[int]bool{}
	for i := range p.Steps {
		st := &p.Steps[i]
		bad := func(what string) error {
			return fmt.Errorf("plan: step %d (%v): %s", i, st.Op, what)
		}
		if st.Dst < 0 || st.Dst >= p.NumRegs {
			return bad(fmt.Sprintf("destination register %d out of range", st.Dst))
		}
		if st.A < 0 || st.A >= codes {
			return bad(fmt.Sprintf("operand code %d out of range", st.A))
		}
		if st.Op != OpHoistedRot && len(st.Fan) != 0 {
			return bad("fan-out list on a non-hoisted step")
		}
		if st.Op != OpBatchedRot && len(st.Batch) != 0 {
			return bad("batch list on a non-batched step")
		}
		if st.Op != OpSharedRot && len(st.Shared) != 0 {
			return bad("shared list on a non-shared step")
		}
		switch {
		case st.Op == OpSharedRot:
			// Singleton groups are legal: a multi-rotation source's
			// amounts may each land in their own group, and every one
			// past the first still replays the shared decomposition.
			if len(st.Shared) < 1 {
				return bad("shared group with no members")
			}
			if st.Rot == 0 || !rotDeclared[st.Rot] {
				return bad(fmt.Sprintf("rotation %d not in declared set %v", st.Rot, p.Rotations))
			}
			rotUsed[st.Rot] = true
			if st.A != st.Shared[0].Src || st.Dst != st.Shared[0].Dst {
				return bad("shared step operands disagree with its first member")
			}
			srcSeen := map[int]bool{}
			dstSeen := map[int]bool{}
			for _, m := range st.Shared {
				if m.Src < 0 || m.Src >= codes {
					return bad(fmt.Sprintf("shared source code %d out of range", m.Src))
				}
				if m.Dst < 0 || m.Dst >= p.NumRegs {
					return bad(fmt.Sprintf("shared destination register %d out of range", m.Dst))
				}
				if m.Slot < 0 || m.Slot >= p.NumDecomps {
					return bad(fmt.Sprintf("decomposition slot %d outside the session's %d", m.Slot, p.NumDecomps))
				}
				if srcSeen[m.Src] {
					return bad(fmt.Sprintf("duplicate shared source %d (same source and amount belong in one rotation)", m.Src))
				}
				srcSeen[m.Src] = true
				if dstSeen[m.Dst] {
					return bad(fmt.Sprintf("duplicate shared destination register %d", m.Dst))
				}
				dstSeen[m.Dst] = true
				if p.codeDomain(m.Src) == DomNTT && p.regDomain(m.Dst) != DomNTT {
					return bad(fmt.Sprintf("shared member rotates an NTT-resident source into coefficient register %d", m.Dst))
				}
			}
			// The group reads every member's source; no member may write
			// over any source.
			for _, m := range st.Shared {
				if p.IsInput(m.Src) {
					continue
				}
				if dstSeen[p.Reg(m.Src)] {
					return bad(fmt.Sprintf("shared destination register %d aliases a member source", p.Reg(m.Src)))
				}
			}
		case st.Op == OpBatchedRot:
			if len(st.Batch) < 2 {
				return bad(fmt.Sprintf("batched group with %d members, want ≥ 2", len(st.Batch)))
			}
			if st.Rot == 0 || !rotDeclared[st.Rot] {
				return bad(fmt.Sprintf("rotation %d not in declared set %v", st.Rot, p.Rotations))
			}
			rotUsed[st.Rot] = true
			if st.A != st.Batch[0].Src || st.Dst != st.Batch[0].Dst {
				return bad("batched step operands disagree with its first member")
			}
			srcSeen := map[int]bool{}
			dstSeen := map[int]bool{}
			for _, m := range st.Batch {
				if m.Src < 0 || m.Src >= codes {
					return bad(fmt.Sprintf("batch source code %d out of range", m.Src))
				}
				if m.Dst < 0 || m.Dst >= p.NumRegs {
					return bad(fmt.Sprintf("batch destination register %d out of range", m.Dst))
				}
				if srcSeen[m.Src] {
					return bad(fmt.Sprintf("duplicate batch source %d (same source and amount belong in one rotation)", m.Src))
				}
				srcSeen[m.Src] = true
				if dstSeen[m.Dst] {
					return bad(fmt.Sprintf("duplicate batch destination register %d", m.Dst))
				}
				dstSeen[m.Dst] = true
				if p.codeDomain(m.Src) == DomNTT && p.regDomain(m.Dst) != DomNTT {
					return bad(fmt.Sprintf("batch member rotates an NTT-resident source into coefficient register %d", m.Dst))
				}
			}
			// The group reads every member's source; no member may write
			// over any source.
			for _, m := range st.Batch {
				if p.IsInput(m.Src) {
					continue
				}
				if dstSeen[p.Reg(m.Src)] {
					return bad(fmt.Sprintf("batch destination register %d aliases a member source", p.Reg(m.Src)))
				}
			}
		case st.Op == OpHoistedRot:
			if len(st.Fan) < 2 {
				return bad(fmt.Sprintf("hoisted group with fan-out %d, want ≥ 2", len(st.Fan)))
			}
			if st.Dst != st.Fan[0].Dst {
				return bad("hoisted step destination disagrees with its first fan entry")
			}
			fanRots := map[int]bool{}
			fanDsts := map[int]bool{}
			for _, f := range st.Fan {
				if f.Dst < 0 || f.Dst >= p.NumRegs {
					return bad(fmt.Sprintf("fan destination register %d out of range", f.Dst))
				}
				if fanDsts[f.Dst] {
					return bad(fmt.Sprintf("duplicate fan destination register %d", f.Dst))
				}
				fanDsts[f.Dst] = true
				// Every fan entry reads the source after earlier entries
				// wrote their destinations, so no entry may alias it (or
				// another entry).
				if !p.IsInput(st.A) && f.Dst == p.Reg(st.A) {
					return bad(fmt.Sprintf("fan destination register %d aliases the hoisted source", f.Dst))
				}
				if f.Rot == 0 || !rotDeclared[f.Rot] {
					return bad(fmt.Sprintf("fan rotation %d not in declared set %v", f.Rot, p.Rotations))
				}
				if fanRots[f.Rot] {
					return bad(fmt.Sprintf("duplicate rotation %d in fan-out", f.Rot))
				}
				fanRots[f.Rot] = true
				rotUsed[f.Rot] = true
				// No NTT-source → coefficient-destination rotation
				// path exists: an NTT-resident source pins the whole
				// fan to the evaluation domain.
				if p.codeDomain(st.A) == DomNTT && p.regDomain(f.Dst) != DomNTT {
					return bad(fmt.Sprintf("fan destination register %d is coefficient-domain but the hoisted source is NTT-resident", f.Dst))
				}
			}
		case st.Op == OpNTT || st.Op == OpINTT:
			from, to := DomCoeff, DomNTT
			if st.Op == OpINTT {
				from, to = DomNTT, DomCoeff
			}
			if p.codeDomain(st.A) != from {
				return bad(fmt.Sprintf("conversion source is %v, want %v", p.codeDomain(st.A), from))
			}
			if p.regDomain(st.Dst) != to {
				return bad(fmt.Sprintf("conversion destination is %v, want %v", p.regDomain(st.Dst), to))
			}
			// The degree-1 shape of the conversion is pinned by the
			// NTT side: one of the two registers is NTT-resident, and
			// NTT-resident registers are degree 1 by the register
			// check above. The coefficient side may be a reused
			// register whose declared capacity is 2 — the value in
			// flight is still degree 1.
		case st.Op == quill.OpRotCt:
			if st.Rot == 0 || !rotDeclared[st.Rot] {
				return bad(fmt.Sprintf("rotation %d not in declared set %v", st.Rot, p.Rotations))
			}
			rotUsed[st.Rot] = true
			if p.codeDomain(st.A) == DomNTT && p.regDomain(st.Dst) != DomNTT {
				return bad("rotation of an NTT-resident source into a coefficient destination")
			}
		case st.Op == quill.OpRelin:
			// unary; key switching emits coefficient-domain output
			if p.regDomain(st.Dst) != DomCoeff {
				return bad("relinearization into an NTT-resident register")
			}
		case st.Op == quill.OpMulCtCt:
			if st.B < 0 || st.B >= codes {
				return bad(fmt.Sprintf("operand code %d out of range", st.B))
			}
			// The tensor product lifts coefficient operands into the
			// extended basis (and its destination is degree 2, hence
			// coefficient by the register rule above).
			if p.codeDomain(st.A) != DomCoeff || p.codeDomain(st.B) != DomCoeff {
				return bad("tensor product of NTT-resident operands")
			}
		case st.Op.IsCtCt():
			if st.B < 0 || st.B >= codes {
				return bad(fmt.Sprintf("operand code %d out of range", st.B))
			}
			// Pointwise add/sub executes in the destination's domain;
			// the compiler converts mismatched operands beforehand.
			if d := p.regDomain(st.Dst); p.codeDomain(st.A) != d || p.codeDomain(st.B) != d {
				return bad("add/sub operand domain disagrees with destination")
			}
		case st.Op.IsCtPt():
			switch {
			case st.Pt >= 0 && st.Con >= 0:
				return bad("both plaintext input and constant set")
			case st.Pt >= 0:
				if st.Pt >= p.NumPtInputs {
					return bad(fmt.Sprintf("plaintext input %d out of range", st.Pt))
				}
			case st.Con >= 0:
				if st.Con >= len(p.Consts) {
					return bad(fmt.Sprintf("constant index %d out of range", st.Con))
				}
			default:
				return bad("neither plaintext input nor constant set")
			}
			// Plaintext add/sub executes in the destination's domain
			// (mul-plain has a variant for every combination).
			if st.Op != quill.OpMulCtPt && p.codeDomain(st.A) != p.regDomain(st.Dst) {
				return bad("add/sub-plain operand domain disagrees with destination")
			}
		default:
			return bad("unknown opcode")
		}
	}
	for r := range rotDeclared {
		if !rotUsed[r] {
			return fmt.Errorf("plan: declared rotation %d never executed", r)
		}
	}
	hoisted, _ := p.HoistedGroups()
	batched, _ := p.BatchedGroups()
	shared, _, _ := p.SharedGroups()
	if shared > 0 && hoisted+batched > 0 {
		return fmt.Errorf("plan: shared rotation groups mixed with %d hoisted+batched groups (one sharing discipline per plan)", hoisted+batched)
	}
	if shared > 0 {
		// Every slot below the declared peak must be used, and the peak
		// must cover every slot: NumDecomps is exactly maxSlot+1.
		maxSlot := -1
		slotUsed := make([]bool, p.NumDecomps)
		for i := range p.Steps {
			for _, m := range p.Steps[i].Shared {
				if m.Slot > maxSlot {
					maxSlot = m.Slot
				}
				slotUsed[m.Slot] = true
			}
		}
		if p.NumDecomps != maxSlot+1 {
			return fmt.Errorf("plan: %d decomposition slots declared, shared groups use %d", p.NumDecomps, maxSlot+1)
		}
		for s, used := range slotUsed {
			if !used {
				return fmt.Errorf("plan: decomposition slot %d declared but never used", s)
			}
		}
		// Fill-state simulation: a replay member must find its source's
		// digits resident — the slot filled by an earlier Fresh member
		// of the SAME source, with the source's register untouched since
		// (replays still read its c0 rows).
		slotSrc := make([]int, p.NumDecomps)
		for s := range slotSrc {
			slotSrc[s] = -1
		}
		var wbuf [8]int
		for i := range p.Steps {
			st := &p.Steps[i]
			if st.Op == OpSharedRot {
				for _, m := range st.Shared {
					if m.Fresh {
						slotSrc[m.Slot] = m.Src
					} else if slotSrc[m.Slot] != m.Src {
						return fmt.Errorf("plan: step %d: shared member replays slot %d for source %d, but the slot holds %d",
							i, m.Slot, m.Src, slotSrc[m.Slot])
					}
				}
			}
			// Any write to a resident source's register invalidates its
			// slot: the digits no longer match the register's c0.
			for _, r := range p.stepWrites(st, wbuf[:0]) {
				for s := range slotSrc {
					if slotSrc[s] == p.NumCtInputs+r {
						slotSrc[s] = -1
					}
				}
			}
		}
	} else if want := min(hoisted+batched, 1); p.NumDecomps != want {
		return fmt.Errorf("plan: %d decomposition buffers declared, %d hoisted+batched groups need %d", p.NumDecomps, hoisted+batched, want)
	}
	if p.Out < 0 || p.Out >= codes {
		return fmt.Errorf("plan: output code %d out of range", p.Out)
	}
	if p.codeDomain(p.Out) != DomCoeff {
		return fmt.Errorf("plan: output register is NTT-resident (outputs leave in the coefficient domain)")
	}
	return nil
}

// RotationSet returns the canonical rotation amounts required by a set
// of plans, merged and sorted — the Galois keys a context serving all
// of them must hold.
func RotationSet(plans ...*ExecutionPlan) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range plans {
		if p == nil {
			continue
		}
		for _, r := range p.Rotations {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sort.Ints(out)
	return out
}
