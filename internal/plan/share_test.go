package plan

import (
	"testing"

	"porcupine/internal/baseline"
	"porcupine/internal/quill"
)

// fanAcrossAmounts rotates one source by four distinct amounts — the
// shape Pass 3 fuses into one hoisted group and the sharing pass
// re-expresses as four per-amount groups replaying one decomposition.
func fanAcrossAmounts() *quill.Lowered {
	return &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 2},
			{Op: quill.OpRotCt, Dst: 3, A: 0, Rot: 5},
			{Op: quill.OpRotCt, Dst: 4, A: 0, Rot: -3},
			{Op: quill.OpAddCtCt, Dst: 5, A: 1, B: 2},
			{Op: quill.OpAddCtCt, Dst: 6, A: 5, B: 3},
			{Op: quill.OpAddCtCt, Dst: 7, A: 6, B: 4},
		},
		Output: 7,
	}
}

// meetProgram rotates two sources by the same two amounts, interleaved
// — the shape where double-hoisting strictly beats both predecessors:
// hoisting shares each source's decomposition across its two amounts
// but resolves Galois state per rotation; batching shares Galois state
// per amount but decomposes every member. Sharing does both: two
// decompositions, two groups.
func meetProgram() *quill.Lowered {
	return &quill.Lowered{
		VecLen: 1024, NumCtInputs: 2,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 3, A: 1, Rot: 1},
			{Op: quill.OpRotCt, Dst: 4, A: 0, Rot: 2},
			{Op: quill.OpRotCt, Dst: 5, A: 1, Rot: 2},
			{Op: quill.OpAddCtCt, Dst: 6, A: 2, B: 3},
			{Op: quill.OpAddCtCt, Dst: 7, A: 4, B: 5},
			{Op: quill.OpAddCtCt, Dst: 8, A: 6, B: 7},
		},
		Output: 8,
	}
}

// TestSharedDetectionFanAcrossAmounts: a four-way fan becomes four
// per-amount shared groups over ONE decomposition slot — the first
// member fills it, the other three replay.
func TestSharedDetectionFanAcrossAmounts(t *testing.T) {
	p := compile(t, fanAcrossAmounts())
	if g, r, rep := p.SharedGroups(); g != 4 || r != 4 || rep != 3 {
		t.Fatalf("shared groups = %d (%d rotations, %d replayed), want 4 (4, 3)", g, r, rep)
	}
	if p.NumDecomps != 1 {
		t.Errorf("NumDecomps = %d, want 1", p.NumDecomps)
	}
	if g, _ := p.HoistedGroups(); g != 0 {
		t.Errorf("default compile still has %d hoisted groups", g)
	}
	fresh := 0
	for i := range p.Steps {
		st := &p.Steps[i]
		if st.Op != OpSharedRot {
			continue
		}
		if len(st.Shared) != 1 {
			t.Fatalf("fan group has %d members, want 1 per amount", len(st.Shared))
		}
		m := st.Shared[0]
		if m.Slot != 0 {
			t.Errorf("member uses slot %d, want 0", m.Slot)
		}
		if st.A != m.Src || st.Dst != m.Dst {
			t.Error("shared step head disagrees with its only member")
		}
		if m.Fresh {
			fresh++
		}
	}
	if fresh != 1 {
		t.Errorf("%d fresh fills, want exactly 1 (the schedule-first amount)", fresh)
	}
	if err := p.Validate(testParams); err != nil {
		t.Errorf("compiled shared plan fails validation: %v", err)
	}
}

// TestSharedDetectionCrossSource: two once-rotated sources sharing an
// amount fuse into one group — the batching win carried over. Each
// member fills its own slot (nothing to replay).
func TestSharedDetectionCrossSource(t *testing.T) {
	p := compile(t, crossSourceProgram())
	if g, r, rep := p.SharedGroups(); g != 1 || r != 2 || rep != 0 {
		t.Fatalf("shared groups = %d (%d rotations, %d replayed), want 1 (2, 0)", g, r, rep)
	}
	if p.NumDecomps != 2 {
		t.Errorf("NumDecomps = %d, want 2 (both members fill within one step)", p.NumDecomps)
	}
	for i := range p.Steps {
		st := &p.Steps[i]
		if st.Op != OpSharedRot {
			continue
		}
		if st.Shared[0].Src == st.Shared[1].Src {
			t.Error("shared members duplicate a source")
		}
		for _, m := range st.Shared {
			if !m.Fresh {
				t.Error("once-rotated member marked as a replay")
			}
		}
	}
	if err := p.Validate(testParams); err != nil {
		t.Errorf("compiled shared plan fails validation: %v", err)
	}
}

// TestSharedMeetOfHoistingAndBatching: two sources × two amounts give
// two groups of two members over two slots — four rotations, two
// decompositions, two Galois resolves. Neither hoisting (4 resolves)
// nor batching (4 decompositions) reaches that count.
func TestSharedMeetOfHoistingAndBatching(t *testing.T) {
	p := compile(t, meetProgram())
	if g, r, rep := p.SharedGroups(); g != 2 || r != 4 || rep != 2 {
		t.Fatalf("shared groups = %d (%d rotations, %d replayed), want 2 (4, 2)", g, r, rep)
	}
	if p.NumDecomps != 2 {
		t.Errorf("NumDecomps = %d, want 2", p.NumDecomps)
	}
	if d := p.DigitDecompositions(); d != 2 {
		t.Errorf("DigitDecompositions = %d, want 2", d)
	}
	// The legacy compile fans each source (2 hoisted groups, also 2
	// decompositions) but resolves Galois state once per rotation — 4
	// resolves where sharing needs 2 (one per amount).
	legacy := compileLegacy(t, meetProgram())
	if hg, hr := legacy.HoistedGroups(); hg != 2 || hr != 4 {
		t.Fatalf("legacy hoisted groups = %d (%d rotations), want 2 (4)", hg, hr)
	}
	if d := legacy.DigitDecompositions(); d != 2 {
		t.Errorf("legacy compile decomposes %d times, want 2", d)
	}
	// The second group's members replay the slots the first filled, per
	// source.
	slotOf := map[int]int{}
	for i := range p.Steps {
		st := &p.Steps[i]
		if st.Op != OpSharedRot {
			continue
		}
		for _, m := range st.Shared {
			if m.Fresh {
				slotOf[m.Src] = m.Slot
			} else if s, ok := slotOf[m.Src]; !ok || s != m.Slot {
				t.Errorf("source %d replays slot %d, filled slot %d", m.Src, m.Slot, s)
			}
		}
	}
	if err := p.Validate(testParams); err != nil {
		t.Errorf("compiled shared plan fails validation: %v", err)
	}
}

// TestSharedSlotReuseAcrossLiveRanges: when a twice-rotated source
// dies, its decomposition slot frees for the next twice-rotated
// source — peak NumDecomps stays 1 across both live ranges.
func TestSharedSlotReuseAcrossLiveRanges(t *testing.T) {
	l := &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 2},
			{Op: quill.OpAddCtCt, Dst: 3, A: 1, B: 2},
			{Op: quill.OpRotCt, Dst: 4, A: 3, Rot: 1},
			{Op: quill.OpRotCt, Dst: 5, A: 3, Rot: 2},
			{Op: quill.OpAddCtCt, Dst: 6, A: 4, B: 5},
		},
		Output: 6,
	}
	p := compile(t, l)
	if g, r, rep := p.SharedGroups(); g != 4 || r != 4 || rep != 2 {
		t.Fatalf("shared groups = %d (%d rotations, %d replayed), want 4 (4, 2)", g, r, rep)
	}
	if p.NumDecomps != 1 {
		t.Errorf("NumDecomps = %d, want 1 (disjoint live ranges share the slot)", p.NumDecomps)
	}
	if err := p.Validate(testParams); err != nil {
		t.Errorf("compiled shared plan fails validation: %v", err)
	}
}

// TestSharedOnceRotatedStaysPlain: a lone rotation of a once-rotated
// source gains nothing from a slot and stays a plain serial step —
// eligible for level-parallel execution.
func TestSharedOnceRotatedStaysPlain(t *testing.T) {
	l := &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 3},
			{Op: quill.OpAddCtCt, Dst: 2, A: 1, B: 0},
		},
		Output: 2,
	}
	p := compile(t, l)
	if g, _, _ := p.SharedGroups(); g != 0 {
		t.Fatalf("lone rotation fused into %d shared groups", g)
	}
	if p.NumDecomps != 0 {
		t.Errorf("NumDecomps = %d, want 0", p.NumDecomps)
	}
	plain := 0
	for i := range p.Steps {
		if p.Steps[i].Op == quill.OpRotCt {
			plain++
		}
	}
	if plain != 1 {
		t.Errorf("%d plain rotation steps, want 1", plain)
	}
	if err := p.Validate(testParams); err != nil {
		t.Errorf("compiled plan fails validation: %v", err)
	}
}

// TestSharedKernelDecompositionsPinned pins the static digit-
// decomposition counts on the eleven Porcupine kernels: the shared
// compile strictly decreases the count on every multi-rotation kernel
// and never exceeds the legacy (PR 7) compile anywhere. The identity
// shared = flat − replayed ties the savings to the replay mechanism.
func TestSharedKernelDecompositionsPinned(t *testing.T) {
	params, enc := testEnv(t)
	// flat → shared counts; equal entries are the reduction kernels
	// whose rotations all read distinct once-rotated accumulators.
	want := map[string][2]int{
		"box-blur":              {3, 1},
		"dot-product":           {3, 3},
		"hamming-distance":      {2, 2},
		"l2-distance":           {3, 3},
		"linear-regression":     {1, 1},
		"polynomial-regression": {0, 0},
		"gx":                    {6, 1},
		"gy":                    {6, 1},
		"roberts-cross":         {3, 1},
		"sobel":                 {8, 1},
		"harris":                {17, 4},
	}
	for name, w := range want {
		l, err := baseline.Lowered(name)
		if err != nil {
			t.Fatal(err)
		}
		shared, err := Compile(params, enc, l)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := CompileWithOptions(params, enc, l,
			Options{DisableHoisting: true, DisableDomainAssignment: true})
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := CompileWithOptions(params, enc, l, Options{DisableSharing: true})
		if err != nil {
			t.Fatal(err)
		}
		fd, sd := flat.DigitDecompositions(), shared.DigitDecompositions()
		if fd != w[0] || sd != w[1] {
			t.Errorf("%s: flat=%d shared=%d decompositions, want %d and %d", name, fd, sd, w[0], w[1])
		}
		if w[0] != w[1] && sd >= fd {
			t.Errorf("%s: shared count %d does not strictly decrease from flat %d", name, sd, fd)
		}
		if ld := legacy.DigitDecompositions(); sd > ld {
			t.Errorf("%s: shared count %d exceeds legacy %d", name, sd, ld)
		}
		if _, _, rep := shared.SharedGroups(); fd-rep != sd {
			t.Errorf("%s: shared ≠ flat − replayed (%d ≠ %d − %d)", name, sd, fd, rep)
		}
	}
}

// TestValidateRejectsMalformedShared corrupts the shared-step
// invariants — member lists, slot bookkeeping and the fill-state
// replay contract — one at a time. The wire corruption matrix re-runs
// the same rules through an encode/decode round trip.
func TestValidateRejectsMalformedShared(t *testing.T) {
	params, _ := testEnv(t)
	sharedIdx := func(p *ExecutionPlan) int {
		for i := range p.Steps {
			if p.Steps[i].Op == OpSharedRot {
				return i
			}
		}
		t.Fatal("no shared step")
		return -1
	}
	// meetProgram: two groups of two members, slots 0 and 1, the second
	// group all replays — every invariant is expressible.
	base := compile(t, meetProgram())
	cases := []struct {
		name   string
		mutate func(p *ExecutionPlan)
	}{
		{"no-members", func(p *ExecutionPlan) { p.Steps[sharedIdx(p)].Shared = nil }},
		{"dup-src", func(p *ExecutionPlan) {
			st := &p.Steps[sharedIdx(p)]
			st.Shared[1].Src = st.Shared[0].Src
		}},
		{"dup-dst", func(p *ExecutionPlan) {
			st := &p.Steps[sharedIdx(p)]
			st.Shared[1].Dst = st.Shared[0].Dst
		}},
		{"src-range", func(p *ExecutionPlan) {
			p.Steps[sharedIdx(p)].Shared[1].Src = p.NumCtInputs + p.NumRegs
		}},
		{"dst-range", func(p *ExecutionPlan) { p.Steps[sharedIdx(p)].Shared[1].Dst = p.NumRegs }},
		{"slot-range", func(p *ExecutionPlan) { p.Steps[sharedIdx(p)].Shared[1].Slot = p.NumDecomps }},
		{"head-mismatch", func(p *ExecutionPlan) {
			st := &p.Steps[sharedIdx(p)]
			st.Dst = st.Shared[1].Dst
		}},
		{"rot-undeclared", func(p *ExecutionPlan) { p.Steps[sharedIdx(p)].Rot = 777 }},
		{"dst-aliases-src", func(p *ExecutionPlan) {
			st := &p.Steps[sharedIdx(p)]
			st.Shared[1].Src = p.NumCtInputs + st.Shared[0].Dst
		}},
		{"shared-on-plain", func(p *ExecutionPlan) {
			for i := range p.Steps {
				if p.Steps[i].Op != OpSharedRot {
					p.Steps[i].Shared = []SharedSrc{{Src: 0, Dst: 0, Slot: 0, Fresh: true}}
					return
				}
			}
		}},
		{"mixed-with-batched", func(p *ExecutionPlan) {
			// Rewriting one group as a legacy batched step leaves the
			// plan carrying both forms, which no executor generation
			// understands together.
			st := &p.Steps[sharedIdx(p)]
			st.Op = OpBatchedRot
			for _, m := range st.Shared {
				st.Batch = append(st.Batch, BatchedSrc{Src: m.Src, Dst: m.Dst})
			}
			st.Shared = nil
		}},
		{"replay-before-fill", func(p *ExecutionPlan) {
			p.Steps[sharedIdx(p)].Shared[0].Fresh = false
		}},
		{"replay-wrong-slot", func(p *ExecutionPlan) {
			// Swap the replaying group's slots: each member now replays
			// the OTHER source's digits.
			last := -1
			for i := range p.Steps {
				if p.Steps[i].Op == OpSharedRot {
					last = i
				}
			}
			st := &p.Steps[last]
			st.Shared[0].Slot, st.Shared[1].Slot = st.Shared[1].Slot, st.Shared[0].Slot
		}},
		{"numdecomps-zero", func(p *ExecutionPlan) { p.NumDecomps = 0 }},
		{"numdecomps-inflated", func(p *ExecutionPlan) { p.NumDecomps++ }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p2 := *base
			p2.Steps = append([]Step(nil), base.Steps...)
			for i := range p2.Steps {
				p2.Steps[i].Shared = append([]SharedSrc(nil), base.Steps[i].Shared...)
				p2.Steps[i].Batch = append([]BatchedSrc(nil), base.Steps[i].Batch...)
			}
			p2.Rotations = append([]int(nil), base.Rotations...)
			c.mutate(&p2)
			if err := p2.Validate(params); err == nil {
				t.Error("malformed shared plan validated")
			}
		})
	}
}

// TestSharedDisabledMatchesLegacy: DisableSharing reproduces the PR 7
// pipeline exactly — hoisted and batched steps, one decomposition
// buffer, no shared lists anywhere.
func TestSharedDisabledMatchesLegacy(t *testing.T) {
	for _, l := range []*quill.Lowered{fanAcrossAmounts(), crossSourceProgram(), meetProgram()} {
		p := compileLegacy(t, l)
		if g, _, _ := p.SharedGroups(); g != 0 {
			t.Errorf("legacy compile has %d shared groups", g)
		}
		hg, _ := p.HoistedGroups()
		bg, _ := p.BatchedGroups()
		if hg+bg == 0 {
			t.Errorf("legacy compile of a fusable program has no hoisted or batched groups")
		}
		if err := p.Validate(testParams); err != nil {
			t.Errorf("legacy plan fails validation: %v", err)
		}
	}
}
