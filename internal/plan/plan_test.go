package plan

import (
	"testing"

	"porcupine/internal/bfv"
	"porcupine/internal/quill"
)

var (
	testParams  *bfv.Parameters
	testEncoder *bfv.Encoder
)

func testEnv(t *testing.T) (*bfv.Parameters, *bfv.Encoder) {
	t.Helper()
	if testParams == nil {
		p, err := bfv.NewParametersFromPreset("PN2048")
		if err != nil {
			t.Fatal(err)
		}
		e, err := bfv.NewEncoder(p)
		if err != nil {
			t.Fatal(err)
		}
		testParams, testEncoder = p, e
	}
	return testParams, testEncoder
}

func compile(t *testing.T, l *quill.Lowered) *ExecutionPlan {
	t.Helper()
	params, enc := testEnv(t)
	p, err := Compile(params, enc, l)
	if err != nil {
		t.Fatalf("Compile: %v\n%s", err, l)
	}
	return p
}

// compileLegacy compiles in the PR 7 shape (OpHoistedRot/OpBatchedRot
// instead of double-hoisted OpSharedRot groups) for the tests that pin
// the legacy step forms.
func compileLegacy(t *testing.T, l *quill.Lowered) *ExecutionPlan {
	t.Helper()
	params, enc := testEnv(t)
	p, err := CompileWithOptions(params, enc, l, Options{DisableSharing: true})
	if err != nil {
		t.Fatalf("CompileWithOptions: %v\n%s", err, l)
	}
	return p
}

// TestRegisterReuseChain checks that a long dependency chain runs in a
// constant number of registers: each value dies feeding the next, so
// in-place reuse needs just one buffer.
func TestRegisterReuseChain(t *testing.T) {
	l := &quill.Lowered{VecLen: 8, NumCtInputs: 1}
	next := 1
	for i := 0; i < 20; i++ {
		l.Instrs = append(l.Instrs, quill.LInstr{Op: quill.OpAddCtCt, Dst: next, A: next - 1, B: 0})
		next++
	}
	l.Output = next - 1
	p := compile(t, l)
	if p.NumRegs != 1 {
		t.Errorf("chain of 20 adds allocated %d registers, want 1", p.NumRegs)
	}
	if len(p.Steps) != 20 {
		t.Errorf("steps = %d, want 20", len(p.Steps))
	}
}

// TestRegisterReuseDiamond checks diamond-shaped sharing: a value used
// by two consumers stays live until its second use, then its buffer is
// reused.
func TestRegisterReuseDiamond(t *testing.T) {
	l := &quill.Lowered{
		VecLen: 8, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpAddCtCt, Dst: 1, A: 0, B: 0},  // d = x+x
			{Op: quill.OpRotCt, Dst: 2, A: 1, Rot: 1},  // l = rot(d)
			{Op: quill.OpRotCt, Dst: 3, A: 1, Rot: -1}, // r = rot(d): d dies here
			{Op: quill.OpAddCtCt, Dst: 4, A: 2, B: 3},  // l+r
		},
		Output: 4,
	}
	p := compileLegacy(t, l)
	// The two rotations of d fuse into one hoisted group. Every fan
	// entry reads d (its c0 and hoisted digits), so neither may write
	// over it: the fused form trades one register (d, l, r live
	// together) for a shared digit decomposition.
	if p.NumRegs != 3 {
		t.Errorf("hoisted diamond allocated %d registers, want 3", p.NumRegs)
	}
	if g, r := p.HoistedGroups(); g != 1 || r != 2 {
		t.Errorf("hoisted groups = %d (%d rotations), want 1 (2)", g, r)
	}
	if p.NumDecomps != 1 {
		t.Errorf("NumDecomps = %d, want 1", p.NumDecomps)
	}

	// Without hoisting, d and l are live when r is computed, but r's
	// rotation writes in place over the dying d (alias-safe), so two
	// buffers suffice.
	params, enc := testEnv(t)
	flat, err := CompileWithOptions(params, enc, l, Options{DisableHoisting: true})
	if err != nil {
		t.Fatal(err)
	}
	if flat.NumRegs != 2 {
		t.Errorf("flat diamond allocated %d registers, want 2", flat.NumRegs)
	}
	if g, _ := flat.HoistedGroups(); g != 0 || flat.NumDecomps != 0 {
		t.Errorf("flat plan has hoisted groups (%d) or decomp buffers (%d)", g, flat.NumDecomps)
	}
}

// TestDeadCodeElimination checks that values that cannot reach the
// output consume neither steps nor registers.
func TestDeadCodeElimination(t *testing.T) {
	l := &quill.Lowered{
		VecLen: 8, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpAddCtCt, Dst: 1, A: 0, B: 0},
			{Op: quill.OpRotCt, Dst: 2, A: 1, Rot: 2},  // dead
			{Op: quill.OpRotCt, Dst: 3, A: 2, Rot: -2}, // dead (uses dead)
			{Op: quill.OpSubCtCt, Dst: 4, A: 1, B: 0},
		},
		Output: 4,
	}
	p := compile(t, l)
	if len(p.Steps) != 2 {
		t.Errorf("dead instructions kept: %d steps, want 2", len(p.Steps))
	}
	if p.NumRegs != 1 {
		t.Errorf("dead values allocated registers: %d, want 1", p.NumRegs)
	}
	if len(p.Rotations) != 0 {
		t.Errorf("dead rotations demand Galois keys: %v", p.Rotations)
	}
}

// TestNoOpAliasing checks that identity rotations and
// relinearizations of degree-1 values vanish into aliases. For a
// vector shorter than the HE row only a literal rot 0 is the
// identity; rot 8 on an 8-vector is ≡ 0 abstractly but shifts the
// padded row, so it must survive.
func TestNoOpAliasing(t *testing.T) {
	l := &quill.Lowered{
		VecLen: 8, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 0}, // identity
			{Op: quill.OpRelin, Dst: 2, A: 1},         // relin of degree-1
			{Op: quill.OpAddCtCt, Dst: 3, A: 2, B: 0}, // = x+x
			{Op: quill.OpRotCt, Dst: 4, A: 3, Rot: 8}, // NOT identity on the padded row
		},
		Output: 4,
	}
	p := compile(t, l)
	if len(p.Steps) != 2 {
		t.Errorf("no-op aliasing wrong: %d steps, want 2 (add + literal rot 8)\n%+v", len(p.Steps), p.Steps)
	}
	if p.Steps[0].Op != quill.OpAddCtCt || p.Steps[1].Op != quill.OpRotCt || p.Steps[1].Rot != 8 {
		t.Errorf("surviving steps wrong: %+v", p.Steps)
	}
}

// TestNoOpAliasingFullRow checks that when the program vector fills
// the whole HE row, abstract equivalence is sound and rot ≡ 0 mod n
// does alias away.
func TestNoOpAliasingFullRow(t *testing.T) {
	params, enc := testEnv(t)
	n := params.SlotCount()
	l := &quill.Lowered{
		VecLen: n, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpAddCtCt, Dst: 1, A: 0, B: 0},
			{Op: quill.OpRotCt, Dst: 2, A: 1, Rot: n}, // full cycle: identity
		},
		Output: 2,
	}
	p, err := Compile(params, enc, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 1 || p.Steps[0].Op != quill.OpAddCtCt {
		t.Errorf("full-row rot n not aliased: %+v", p.Steps)
	}
}

// TestOutputIsInput checks the degenerate plan whose output is a
// caller input.
func TestOutputIsInput(t *testing.T) {
	l := &quill.Lowered{
		VecLen: 8, NumCtInputs: 2,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 2, A: 1, Rot: 0}, // alias of input 1
		},
		Output: 2,
	}
	p := compile(t, l)
	if !p.IsInput(p.Out) || p.Out != 1 {
		t.Errorf("output operand = %d, want input 1", p.Out)
	}
	if len(p.Steps) != 0 || p.NumRegs != 0 {
		t.Errorf("identity program scheduled %d steps over %d registers", len(p.Steps), p.NumRegs)
	}
}

// TestConstPreEncodingDedupe checks that identical constants are
// encoded once and distinct constants separately.
func TestConstPreEncodingDedupe(t *testing.T) {
	l := &quill.Lowered{
		VecLen: 8, NumCtInputs: 1, NumPtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpAddCtPt, Dst: 1, A: 0, P: quill.PtRef{Input: -1, Const: []int64{3}}},
			{Op: quill.OpMulCtPt, Dst: 2, A: 1, P: quill.PtRef{Input: -1, Const: []int64{3}}},
			{Op: quill.OpSubCtPt, Dst: 3, A: 2, P: quill.PtRef{Input: -1, Const: []int64{-2}}},
			{Op: quill.OpAddCtPt, Dst: 4, A: 3, P: quill.PtRef{Input: 0}},
		},
		Output: 4,
	}
	p := compile(t, l)
	if len(p.Consts) != 2 {
		t.Errorf("constants encoded %d times, want 2 (3 deduped, -2 separate)", len(p.Consts))
	}
	if p.Steps[0].Con != p.Steps[1].Con {
		t.Error("identical constants not shared")
	}
	if p.Steps[3].Pt != 0 || p.Steps[3].Con != -1 {
		t.Errorf("plaintext input step misencoded: %+v", p.Steps[3])
	}
}

// TestRotationSetLiteral checks that the plan's Galois-key demand for
// a short vector is the exact literal amounts it executes (dead and
// identity rotations excluded), and that RotationSet merges plans.
func TestRotationSetLiteral(t *testing.T) {
	l := &quill.Lowered{
		VecLen: 8, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 7},
			{Op: quill.OpRotCt, Dst: 2, A: 1, Rot: -7},
			{Op: quill.OpRotCt, Dst: 3, A: 2, Rot: -4},
			{Op: quill.OpAddCtCt, Dst: 4, A: 3, B: 0},
		},
		Output: 4,
	}
	p := compile(t, l)
	want := []int{-7, -4, 7}
	if len(p.Rotations) != len(want) {
		t.Fatalf("rotations = %v, want %v", p.Rotations, want)
	}
	for i, r := range want {
		if p.Rotations[i] != r {
			t.Fatalf("rotations = %v, want %v", p.Rotations, want)
		}
	}
	merged := RotationSet(p, p)
	if len(merged) != len(want) {
		t.Errorf("RotationSet dedupe failed: %v", merged)
	}
}

// TestRotationSetCanonicalFullRow checks that with the vector filling
// the HE row, abstractly equivalent amounts collapse to one canonical
// Galois key.
func TestRotationSetCanonicalFullRow(t *testing.T) {
	params, enc := testEnv(t)
	n := params.SlotCount()
	l := &quill.Lowered{
		VecLen: n, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 1 - n}, // ≡ 1 on the row
			{Op: quill.OpAddCtCt, Dst: 3, A: 1, B: 2},
		},
		Output: 3,
	}
	p, err := Compile(params, enc, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rotations) != 1 || p.Rotations[0] != 1 {
		t.Errorf("full-row rotations = %v, want [1]", p.Rotations)
	}
}

// TestDegreeTracking checks that registers holding tensor products are
// sized degree 2 and relinearization brings values back to degree 1.
func TestDegreeTracking(t *testing.T) {
	l := &quill.Lowered{
		VecLen: 8, NumCtInputs: 2,
		Instrs: []quill.LInstr{
			{Op: quill.OpMulCtCt, Dst: 2, A: 0, B: 1},
			{Op: quill.OpRelin, Dst: 3, A: 2},
			{Op: quill.OpAddCtCt, Dst: 4, A: 3, B: 0},
		},
		Output: 4,
	}
	p := compile(t, l)
	mul := p.Steps[0]
	if p.RegDeg[mul.Dst] != 2 {
		t.Errorf("multiply register degree = %d, want 2", p.RegDeg[mul.Dst])
	}
	// Multiplying an unrelinearized product must fail at plan time.
	bad := &quill.Lowered{
		VecLen: 8, NumCtInputs: 2,
		Instrs: []quill.LInstr{
			{Op: quill.OpMulCtCt, Dst: 2, A: 0, B: 1},
			{Op: quill.OpMulCtCt, Dst: 3, A: 2, B: 0},
		},
		Output: 3,
	}
	params, enc := testEnv(t)
	if _, err := Compile(params, enc, bad); err == nil {
		t.Error("degree-2 multiply operand not rejected")
	}
}

// TestPlanMatchesInterpreterAbstract cross-checks the plan schedule
// against the abstract interpreter by replaying plan steps over
// concrete vectors: register reuse must never clobber a live value.
func TestPlanMatchesInterpreterAbstract(t *testing.T) {
	// A program with diamond sharing, dead code, constants, pt input,
	// aliasable no-ops, and rotation wraparound.
	l := &quill.Lowered{
		VecLen: 8, NumCtInputs: 2, NumPtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 3},
			{Op: quill.OpAddCtCt, Dst: 3, A: 2, B: 1},
			{Op: quill.OpRotCt, Dst: 4, A: 3, Rot: 7}, // ≡ -1
			{Op: quill.OpSubCtCt, Dst: 5, A: 3, B: 4}, // diamond on c3
			{Op: quill.OpMulCtPt, Dst: 6, A: 5, P: quill.PtRef{Input: -1, Const: []int64{2}}},
			{Op: quill.OpRotCt, Dst: 7, A: 6, Rot: 2}, // dead
			{Op: quill.OpAddCtPt, Dst: 8, A: 6, P: quill.PtRef{Input: 0}},
			{Op: quill.OpRelin, Dst: 9, A: 8}, // no-op (deg 1)
		},
		Output: 9,
	}
	p := compile(t, l)

	sem := quill.ConcreteSem{}
	ctIn := []quill.Vec{{1, 2, 3, 4, 5, 6, 7, 8}, {3, 1, 4, 1, 5, 9, 2, 6}}
	ptIn := []quill.Vec{{2, 7, 1, 8, 2, 8, 1, 8}}
	want, err := quill.RunLowered(l, sem, ctIn, ptIn)
	if err != nil {
		t.Fatal(err)
	}

	// Replay the plan over abstract vectors.
	regs := make([]quill.Vec, p.NumRegs)
	operand := func(code int) quill.Vec {
		if p.IsInput(code) {
			return ctIn[code]
		}
		return regs[p.Reg(code)]
	}
	for _, st := range p.Steps {
		a := operand(st.A)
		var out quill.Vec
		switch st.Op {
		case quill.OpRotCt:
			out = sem.Rot(a, st.Rot)
		case quill.OpRelin, OpNTT, OpINTT:
			// Relinearization and domain conversions change the
			// representation, not the encrypted vector.
			out = a
		case quill.OpAddCtCt:
			out = sem.Add(a, operand(st.B))
		case quill.OpSubCtCt:
			out = sem.Sub(a, operand(st.B))
		case quill.OpMulCtCt:
			out = sem.Mul(a, operand(st.B))
		case quill.OpAddCtPt, quill.OpSubCtPt, quill.OpMulCtPt:
			var b quill.Vec
			if st.Pt >= 0 {
				b = ptIn[st.Pt]
			} else {
				// Recover the constant from the plan source is not
				// possible without decode; use the matching source
				// instruction's constant instead.
				b = sem.FromConst([]int64{2}, l.VecLen)
			}
			switch st.Op {
			case quill.OpAddCtPt:
				out = sem.Add(a, b)
			case quill.OpSubCtPt:
				out = sem.Sub(a, b)
			default:
				out = sem.Mul(a, b)
			}
		}
		regs[st.Dst] = out
	}
	got := operand(p.Out)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: plan replay %d != interpreter %d\nplan: %+v", i, got[i], want[i], p.Steps)
		}
	}
}
