package plan

import (
	"testing"

	"porcupine/internal/baseline"
	"porcupine/internal/quill"
)

// compileUnassigned compiles with domain assignment disabled — the
// all-coefficient reference form every assigned plan is differentially
// checked against.
func compileUnassigned(t *testing.T, l *quill.Lowered) *ExecutionPlan {
	t.Helper()
	params, enc := testEnv(t)
	p, err := CompileWithOptions(params, enc, l, Options{DisableDomainAssignment: true})
	if err != nil {
		t.Fatalf("CompileWithOptions: %v\n%s", err, l)
	}
	return p
}

// TestDomainAssignedKernelTransformCounts pins the static
// key-switch-external transform counts of every baseline kernel, both
// as compiled all-coefficient and with domain assignment. The pass
// must never increase the count, and must strictly decrease it on the
// pointwise-heavy kernels — the paper's Gx/Gy/Sobel/Harris family plus
// the reduction kernels whose rotation trees stay in the evaluation
// domain.
func TestDomainAssignedKernelTransformCounts(t *testing.T) {
	// name -> {unassigned, assigned} external transforms. The
	// unassigned column counts legacy (unprepared) plaintext
	// multiplication at 5 transforms per step; the assigned column
	// counts prepared operands under the model in domain.go.
	want := map[string][2]int{
		"box-blur":              {6, 5},
		"dot-product":           {11, 8},
		"hamming-distance":      {6, 6},
		"l2-distance":           {8, 8},
		"linear-regression":     {7, 7},
		"polynomial-regression": {6, 6},
		"gx":                    {12, 3},
		"gy":                    {12, 3},
		"roberts-cross":         {10, 10},
		"sobel":                 {20, 9},
		"harris":                {51, 38},
	}
	params, _ := testEnv(t)
	strict := 0
	for _, name := range baseline.Names() {
		w, ok := want[name]
		if !ok {
			t.Errorf("kernel %q has no pinned transform counts; add it", name)
			continue
		}
		l, err := baseline.Lowered(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		un := compileUnassigned(t, l)
		as := compile(t, l)
		gotUn, gotAs := un.ExternalTransforms(), as.ExternalTransforms()
		if gotUn != w[0] || gotAs != w[1] {
			t.Errorf("%s: transforms unassigned=%d assigned=%d, want %d and %d",
				name, gotUn, gotAs, w[0], w[1])
		}
		if gotAs > gotUn {
			t.Errorf("%s: domain assignment increased transforms %d -> %d", name, gotUn, gotAs)
		}
		if gotAs < gotUn {
			strict++
		}
		// Both forms must satisfy decode-time validation, and the
		// assigned plan must leave its output in coefficient form.
		if err := un.Validate(params); err != nil {
			t.Errorf("%s: unassigned plan fails Validate: %v", name, err)
		}
		if err := as.Validate(params); err != nil {
			t.Errorf("%s: assigned plan fails Validate: %v", name, err)
		}
		if as.codeDomain(as.Out) != DomCoeff {
			t.Errorf("%s: assigned plan output register is NTT-resident", name)
		}
	}
	if strict < 6 {
		t.Errorf("domain assignment strictly improved only %d kernels, want >= 6", strict)
	}
}

// TestDomainAssignmentStructure inspects one winning kernel (sobel) in
// detail: NTT-resident registers exist, they are all degree 1,
// explicit conversion steps were materialized, and prepared plaintext
// operands were derived.
func TestDomainAssignmentStructure(t *testing.T) {
	l, err := baseline.Lowered("sobel")
	if err != nil {
		t.Fatal(err)
	}
	p := compile(t, l)
	nttRegs, convs := p.DomainStats()
	if nttRegs == 0 {
		t.Fatal("sobel plan has no NTT-resident registers")
	}
	if convs == 0 {
		t.Fatal("sobel plan has no OpNTT/OpINTT conversion steps")
	}
	if len(p.RegDomain) != p.NumRegs {
		t.Fatalf("RegDomain length %d != NumRegs %d", len(p.RegDomain), p.NumRegs)
	}
	for r, d := range p.RegDomain {
		if d == DomNTT && p.RegDeg[r] != 1 {
			t.Errorf("NTT register %d has degree %d, want 1", r, p.RegDeg[r])
		}
	}
	if !p.Prepared {
		t.Fatal("assigned plan was not prepared")
	}
	if len(p.MulNTTConsts) != len(p.Consts) {
		t.Errorf("MulNTTConsts length %d != Consts length %d", len(p.MulNTTConsts), len(p.Consts))
	}
	for i, m := range p.MulNTTConsts {
		if m == nil {
			t.Errorf("MulNTTConsts[%d] is nil after Prepare", i)
		}
	}
}

// TestDisableDomainAssignment: the differential-reference escape hatch
// must produce a pure coefficient-domain plan — no NTT registers, no
// conversion steps, no prepared operands.
func TestDisableDomainAssignment(t *testing.T) {
	for _, name := range baseline.Names() {
		l, err := baseline.Lowered(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := compileUnassigned(t, l)
		if nttRegs, convs := p.DomainStats(); nttRegs != 0 || convs != 0 {
			t.Errorf("%s: unassigned plan has %d NTT regs, %d conversions", name, nttRegs, convs)
		}
		if p.Prepared {
			t.Errorf("%s: unassigned plan is marked Prepared", name)
		}
	}
}

// pointDomainPlan compiles a hoisted fan feeding a pointwise chain —
// the canonical shape the pass accelerates. The fan source is a
// ciphertext input (coefficient domain), so both fan destinations, the
// add, and the plaintext product all go NTT-resident, with one OpINTT
// before output.
func pointDomainPlan(t *testing.T) *ExecutionPlan {
	t.Helper()
	p := compile(t, &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 2},
			{Op: quill.OpAddCtCt, Dst: 3, A: 1, B: 2},
			{Op: quill.OpMulCtPt, Dst: 4, A: 3, P: quill.PtRef{Input: -1, Const: []int64{3}}},
		},
		Output: 4,
	})
	if nttRegs, convs := p.DomainStats(); nttRegs == 0 || convs == 0 {
		t.Fatalf("fan+pointwise chain not NTT-resident: %d NTT regs, %d conversions", nttRegs, convs)
	}
	return p
}

// serialDomainPlan compiles a serial rotation chain whose second
// rotation reads an NTT-resident source — the N->N rotation variant.
func serialDomainPlan(t *testing.T) *ExecutionPlan {
	t.Helper()
	p := compile(t, &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 2, A: 1, Rot: 2},
			{Op: quill.OpAddCtCt, Dst: 3, A: 1, B: 2},
			{Op: quill.OpMulCtPt, Dst: 4, A: 3, P: quill.PtRef{Input: -1, Const: []int64{3}}},
		},
		Output: 4,
	})
	// Both rotations are serial (different sources) and NTT-destined.
	serialN := 0
	for _, st := range p.Steps {
		if st.Op == quill.OpRotCt && p.regDomain(st.Dst) == DomNTT {
			serialN++
		}
	}
	if serialN != 2 {
		t.Fatalf("serial chain has %d NTT-destined rotations, want 2", serialN)
	}
	return p
}

// nttSrcFanPlan compiles a fan whose shared source is itself a
// rotation result the solver keeps NTT-resident — exercising the
// "NTT source implies NTT fan destinations" invariant.
func nttSrcFanPlan(t *testing.T) *ExecutionPlan {
	t.Helper()
	p := compileLegacy(t, &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 2, A: 1, Rot: 2},
			{Op: quill.OpRotCt, Dst: 3, A: 1, Rot: 3},
			{Op: quill.OpAddCtCt, Dst: 4, A: 2, B: 3},
			{Op: quill.OpMulCtPt, Dst: 5, A: 4, P: quill.PtRef{Input: -1, Const: []int64{3}}},
		},
		Output: 5,
	})
	if g, _ := p.HoistedGroups(); g != 1 {
		t.Fatalf("hoisted groups = %d, want 1", g)
	}
	for _, st := range p.Steps {
		if st.Op == OpHoistedRot && p.codeDomain(st.A) != DomNTT {
			t.Fatal("fan source is not NTT-resident")
		}
	}
	return p
}

// TestValidateRejectsMalformedDomains corrupts the domain invariants
// decode-time validation must enforce on a wire plan, one at a time.
func TestValidateRejectsMalformedDomains(t *testing.T) {
	params, _ := testEnv(t)
	type tc struct {
		build   func(t *testing.T) *ExecutionPlan
		corrupt func(p *ExecutionPlan)
	}
	findStep := func(p *ExecutionPlan, op quill.Op) int {
		for i := range p.Steps {
			if p.Steps[i].Op == op {
				return i
			}
		}
		return -1
	}
	cases := map[string]tc{
		"regdomain-shape": {validatePlan, func(p *ExecutionPlan) {
			p.RegDomain = p.RegDomain[:len(p.RegDomain)-1]
		}},
		"regdomain-range": {validatePlan, func(p *ExecutionPlan) {
			p.RegDomain[0] = 7
		}},
		"ntt-on-degree2-reg": {validatePlan, func(p *ExecutionPlan) {
			for r, d := range p.RegDeg {
				if d == 2 {
					p.RegDomain[r] = DomNTT
					return
				}
			}
			panic("no degree-2 register")
		}},
		"relin-dst-ntt": {validatePlan, func(p *ExecutionPlan) {
			p.RegDomain[p.Steps[findStep(p, quill.OpRelin)].Dst] = DomNTT
		}},
		"mulctct-operand-ntt": {validatePlan, func(p *ExecutionPlan) {
			st := p.Steps[findStep(p, quill.OpMulCtCt)]
			p.RegDomain[p.Reg(st.A)] = DomNTT
		}},
		"add-operand-domain-mismatch": {pointDomainPlan, func(p *ExecutionPlan) {
			st := p.Steps[findStep(p, quill.OpAddCtCt)]
			p.RegDomain[p.Reg(st.A)] = DomCoeff
		}},
		"intt-src-coeff": {pointDomainPlan, func(p *ExecutionPlan) {
			st := p.Steps[findStep(p, OpINTT)]
			p.RegDomain[p.Reg(st.A)] = DomCoeff
		}},
		"intt-dst-ntt": {pointDomainPlan, func(p *ExecutionPlan) {
			p.RegDomain[p.Steps[findStep(p, OpINTT)].Dst] = DomNTT
		}},
		"output-reg-ntt": {pointDomainPlan, func(p *ExecutionPlan) {
			p.RegDomain[p.Reg(p.Out)] = DomNTT
		}},
		"rot-ntt-to-coeff": {serialDomainPlan, func(p *ExecutionPlan) {
			// Second serial rotation reads an NTT source; forcing its
			// destination to coefficient form has no execution path.
			for i := range p.Steps {
				st := p.Steps[i]
				if st.Op == quill.OpRotCt && p.codeDomain(st.A) == DomNTT {
					p.RegDomain[st.Dst] = DomCoeff
					return
				}
			}
			panic("no NTT-source rotation")
		}},
		"fan-member-coeff-with-ntt-src": {nttSrcFanPlan, func(p *ExecutionPlan) {
			st := p.Steps[findStep(p, OpHoistedRot)]
			p.RegDomain[st.Fan[0].Dst] = DomCoeff
		}},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			p := c.build(t)
			p2 := *p
			p2.RegDomain = append([]Domain(nil), p.RegDomain...)
			p2.Steps = append([]Step(nil), p.Steps...)
			c.corrupt(&p2)
			if err := p2.Validate(params); err == nil {
				t.Fatalf("corruption %q passed validation", name)
			}
		})
	}
	// The uncorrupted domain plans must pass.
	for name, build := range map[string]func(*testing.T) *ExecutionPlan{
		"point": pointDomainPlan, "serial": serialDomainPlan, "ntt-src-fan": nttSrcFanPlan,
	} {
		if err := build(t).Validate(params); err != nil {
			t.Fatalf("compiled %s domain plan fails Validate: %v", name, err)
		}
	}
}
