package plan

import "porcupine/internal/quill"

// batchRotations is Pass 4b of CompileWithOptions: cross-source batch
// detection. Plain rotation entries whose canonical amounts agree fuse
// into one OpBatchedRot group scheduled at the earliest member's
// position, so the executor resolves the shared Galois element, key,
// and automorphism tables once per group instead of once per rotation.
//
// Rotation-of-same-source duplicates cannot occur here — Pass 1's
// rotation CSE merged them — so members always carry distinct sources
// (cross-source by construction), and hoisted fan-out groups (≥2
// amounts of one source) were claimed by Pass 3 first; batching only
// sees what hoisting left serial.
//
// Fusing moves member rotations up to the leader's position, which is
// legal exactly when each member's source is defined before the leader
// (a pure rotation has no other operand, and its consumers all sit at
// or after the member's original position). The window bounds how far
// a member may move: every member source stays live until the group
// executes, so the window caps the register-pressure cost of fusion.
func batchRotations(l *quill.Lowered, canon []int, sched []schedEntry, nIn int, norm func(int) int, window int) []schedEntry {
	if window <= 0 {
		window = defaultBatchWindow
	}

	// defPos[v] is the schedule position defining canonical value v
	// (-1 for inputs: defined before everything).
	defPos := make([]int, l.NumValues())
	for v := range defPos {
		defPos[v] = -1
	}
	for s, e := range sched {
		if e.members != nil {
			for _, m := range e.members {
				defPos[nIn+m] = s
			}
			continue
		}
		defPos[nIn+e.idx] = s
	}

	// Plain rotation entries, bucketed by canonical amount in schedule
	// order.
	byAmt := map[int][]int{}
	var amts []int
	for s, e := range sched {
		if e.members != nil {
			continue
		}
		if in := l.Instrs[e.idx]; in.Op == quill.OpRotCt {
			r := norm(in.Rot)
			if len(byAmt[r]) == 0 {
				amts = append(amts, r)
			}
			byAmt[r] = append(byAmt[r], s)
		}
	}

	leadMembers := map[int][]int{} // leader sched pos → member instr idxs
	fused := map[int]bool{}        // non-leader positions consumed by a group
	for _, r := range amts {
		poss := byAmt[r]
		used := make([]bool, len(poss))
		for i := range poss {
			if used[i] {
				continue
			}
			si := poss[i]
			members := []int{sched[si].idx}
			var tail []int
			for j := i + 1; j < len(poss) && poss[j]-si <= window; j++ {
				if used[j] {
					continue
				}
				if src := canon[l.Instrs[sched[poss[j]].idx].A]; defPos[src] >= si {
					continue // source not yet defined at the leader
				}
				used[j] = true
				members = append(members, sched[poss[j]].idx)
				tail = append(tail, poss[j])
			}
			if len(members) < 2 {
				continue
			}
			used[i] = true
			leadMembers[si] = members
			for _, s := range tail {
				fused[s] = true
			}
		}
	}
	if len(leadMembers) == 0 {
		return sched
	}

	out := make([]schedEntry, 0, len(sched))
	for s, e := range sched {
		if fused[s] {
			continue
		}
		if members, ok := leadMembers[s]; ok {
			out = append(out, schedEntry{idx: e.idx, members: members, batch: true})
			continue
		}
		out = append(out, e)
	}
	return out
}
