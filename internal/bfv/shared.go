package bfv

// This file implements double-hoisted key switching: the rotation
// paths that consume a decomposition ALREADY resident in a
// SharedDecomposition slot, at any rotation amount, with the
// per-amount Galois state (element, switching key, permutation and
// automorphism tables) prefetched by BeginBatchedRotation. It is the
// meet of the two earlier sharing axes:
//
//   - hoisting (evaluator.go/nttops.go) shares one source's digit
//     decomposition across AMOUNTS, but re-resolves Galois state per
//     rotation and is driven as one fused fan;
//   - batching (batched.go) shares Galois state across SOURCES at one
//     amount, but re-derives each member's decomposition per group.
//
// A shared rotation does neither redundant half: the plan layer keeps
// each multiply-rotated source's decomposition alive in a slot
// (DecomposeForKeySwitch / DecomposeForKeySwitchNTT fills it exactly
// once, on the source's first rotation) and every later rotation of
// that source — whatever its amount, wherever it sits in the schedule
// — pays only a permuted lazy inner product against the resident
// digits. The batched paths in batched.go are thin wrappers that
// decompose and then delegate here, so shared ≡ batched ≡ hoisted ≡
// serial bit for bit: all four run the same
// decompose-permute-accumulate primitives in the same order.

// SharedDecomposition is the session-pooled double-hoisted
// key-switching state of one source register: the RNS digits of its
// c1, lifted and forward-NTT'd once, plus the lazily-cached forward
// transform of its c0 for NTT-destined rotations. It is Decomposition
// under its slot-resident name — the backend sizes a slice of these at
// plan time (ExecutionPlan.NumDecomps) and indexes it by the
// decomposition slot the plan's liveness pass assigned to each source.
type SharedDecomposition = Decomposition

// RotateRowsSharedInto rotates a coefficient-domain source into a
// coefficient-domain destination using the decomposition resident in
// dec (filled earlier by DecomposeForKeySwitch — possibly many steps
// ago) and the Galois state prefetched in br. Bit-identical to
// RotateRowsInto with the group's amount. dst may alias ct.
func (ev *Evaluator) RotateRowsSharedInto(dst, ct *Ciphertext, dec *SharedDecomposition, br *BatchedRotation) error {
	if err := ev.checkDegree("RotateRowsShared", ct, 1); err != nil {
		return err
	}
	if br.g == 1 {
		ev.copyCiphertextInto(dst, ct)
		return nil
	}
	ev.galoisFromDecompTables(dst, ct, dec.d, br.key, br.perm, br.autoTab)
	return nil
}

// RotateRowsSharedIntoNTT rotates a coefficient-domain source into an
// NTT-resident destination from the resident decomposition. The
// source's c0 forward transform is cached on dec by the first
// NTT-destined rotation and shared by every later one, across fan and
// batch boundaries alike. Bit-identical to RotateRowsIntoNTT. dst may
// alias ct.
func (ev *Evaluator) RotateRowsSharedIntoNTT(dst, ct *Ciphertext, dec *SharedDecomposition, br *BatchedRotation) error {
	if err := ev.checkDegree("RotateRowsSharedIntoNTT", ct, 1); err != nil {
		return err
	}
	if br.g == 1 {
		ev.NTTInto(dst, ct)
		return nil
	}
	r := ev.params.ringQ
	if !dec.c0Set {
		r.CopyInto(dec.c0NTT, ct.Value[0])
		r.NTT(dec.c0NTT)
		dec.c0Set = true
	}
	ev.galoisFromDecompToNTTPerm(dst, dec.c0NTT, dec.d, br.key, br.perm)
	return nil
}

// RotateRowsSharedNTTIntoNTT rotates an NTT-resident source into an
// NTT-resident destination from the resident decomposition (filled by
// DecomposeForKeySwitchNTT): the source's c0 is already in the
// evaluation domain, so the rotation performs no transforms at all.
// Bit-identical to RotateRowsNTTIntoNTT. dst may alias ct.
func (ev *Evaluator) RotateRowsSharedNTTIntoNTT(dst, ct *Ciphertext, dec *SharedDecomposition, br *BatchedRotation) error {
	if err := ev.checkDegree("RotateRowsSharedNTTIntoNTT", ct, 1); err != nil {
		return err
	}
	if br.g == 1 {
		ev.copyCiphertextInto(dst, ct)
		return nil
	}
	ev.galoisFromDecompToNTTPerm(dst, ct.Value[0], dec.d, br.key, br.perm)
	return nil
}
