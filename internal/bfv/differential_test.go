package bfv

import (
	"math/rand"
	"testing"
)

// diffFixture builds a deterministic full key set plus two fresh
// ciphertexts for differential tests.
func diffFixture(t *testing.T, seed int64) (*Parameters, *Evaluator, *Evaluator, *Ciphertext, *Ciphertext, *Encoder, *Decryptor) {
	t.Helper()
	params, err := NewParametersFromPreset("PN2048")
	if err != nil {
		t.Fatal(err)
	}
	kg := NewTestKeyGenerator(params, seed)
	sk, err := kg.GenSecretKey()
	if err != nil {
		t.Fatal(err)
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	rlk, err := kg.GenRelinearizationKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	gks, err := kg.GenGaloisKeys(sk, []int{1, 2, 5, -3})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	encryptor := NewTestEncryptor(params, pk, seed+1)
	rng := rand.New(rand.NewSource(seed + 2))
	fresh := func() *Ciphertext {
		vals := make([]uint64, enc.SlotCount())
		for i := range vals {
			vals[i] = rng.Uint64() % params.T
		}
		pt, err := enc.EncodeNew(vals)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := encryptor.Encrypt(pt)
		if err != nil {
			t.Fatal(err)
		}
		return ct
	}
	rns := NewEvaluator(params, rlk, gks)
	ref := NewEvaluator(params, rlk, gks)
	ref.SetBigIntReference(true)
	return params, rns, ref, fresh(), fresh(), enc, NewDecryptor(params, sk)
}

func ciphertextsEqual(params *Parameters, a, b *Ciphertext) bool {
	if len(a.Value) != len(b.Value) {
		return false
	}
	r := params.RingQ()
	for i := range a.Value {
		if !r.Equal(a.Value[i], b.Value[i]) {
			return false
		}
	}
	return true
}

// TestMulDifferentialBitIdentical proves the pure-RNS multiplication
// pipeline produces bit-identical ciphertexts to the retained big.Int
// CRT reference across random inputs.
func TestMulDifferentialBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		params, rns, ref, a, b, _, _ := diffFixture(t, seed)
		got, err := rns.Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ciphertextsEqual(params, got, want) {
			t.Fatalf("seed %d: pure-RNS Mul differs from big.Int reference", seed)
		}
	}
}

// TestMulRelinRotateDifferential runs the full hot-path chain
// (Mul → Relinearize → RotateRows) under both implementations and
// requires bit-identical ciphertexts at every stage.
func TestMulRelinRotateDifferential(t *testing.T) {
	for seed := int64(10); seed <= 12; seed++ {
		params, rns, ref, a, b, _, _ := diffFixture(t, seed)

		mGot, err := rns.Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		mWant, err := ref.Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ciphertextsEqual(params, mGot, mWant) {
			t.Fatalf("seed %d: Mul differs", seed)
		}

		rGot, err := rns.Relinearize(mGot)
		if err != nil {
			t.Fatal(err)
		}
		rWant, err := ref.Relinearize(mWant)
		if err != nil {
			t.Fatal(err)
		}
		if !ciphertextsEqual(params, rGot, rWant) {
			t.Fatalf("seed %d: Relinearize differs", seed)
		}

		for _, k := range []int{1, 2, 5, -3} {
			rotGot, err := rns.RotateRows(rGot, k)
			if err != nil {
				t.Fatal(err)
			}
			rotWant, err := ref.RotateRows(rWant, k)
			if err != nil {
				t.Fatal(err)
			}
			if !ciphertextsEqual(params, rotGot, rotWant) {
				t.Fatalf("seed %d: RotateRows(%d) differs", seed, k)
			}
		}
	}
}

// TestMulDecryptsCorrectly sanity-checks the pure-RNS product against
// the plaintext slot product (not just the reference implementation).
func TestMulDecryptsCorrectly(t *testing.T) {
	params, rns, _, _, _, enc, dec := diffFixture(t, 42)
	rng := rand.New(rand.NewSource(99))
	va := make([]uint64, enc.SlotCount())
	vb := make([]uint64, enc.SlotCount())
	for i := range va {
		va[i] = rng.Uint64() % 256
		vb[i] = rng.Uint64() % 256
	}
	kg := NewTestKeyGenerator(params, 42)
	sk, err := kg.GenSecretKey()
	if err != nil {
		t.Fatal(err)
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	encryptor := NewTestEncryptor(params, pk, 43)
	dec = NewDecryptor(params, sk)

	pa, err := enc.EncodeNew(va)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := enc.EncodeNew(vb)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := encryptor.Encrypt(pa)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := encryptor.Encrypt(pb)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := rns.MulRelin(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(dec.Decrypt(prod))
	for i := range va {
		want := va[i] * vb[i] % params.T
		if got[i] != want {
			t.Fatalf("slot %d: decrypted %d, want %d", i, got[i], want)
		}
	}
}

// TestInPlaceVariantsAliasSafety checks every Into variant with dst
// aliasing an operand against the allocating form.
func TestInPlaceVariantsAliasSafety(t *testing.T) {
	params, ev, _, a, b, enc, _ := diffFixture(t, 77)
	pt, err := enc.EncodeNew([]uint64{3, 1, 4, 1, 5, 9, 2, 6})
	if err != nil {
		t.Fatal(err)
	}

	clone := func(ct *Ciphertext) *Ciphertext { return params.CopyCiphertext(ct) }

	t.Run("AddInto dst=a", func(t *testing.T) {
		want := ev.Add(a, b)
		dst := clone(a)
		ev.AddInto(dst, dst, b)
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("AddInto(dst=a) differs from Add")
		}
	})
	t.Run("AddInto dst=b", func(t *testing.T) {
		want := ev.Add(a, b)
		dst := clone(b)
		ev.AddInto(dst, a, dst)
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("AddInto(dst=b) differs from Add")
		}
	})
	t.Run("AddInto mixed degree", func(t *testing.T) {
		deg2, err := ev.Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := ev.Add(deg2, a)
		dst := clone(a) // degree 1, must grow to 2 while aliased
		ev.AddInto(dst, deg2, dst)
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("AddInto with degree growth differs from Add")
		}
	})
	t.Run("SubInto dst=a", func(t *testing.T) {
		want := ev.Sub(a, b)
		dst := clone(a)
		ev.SubInto(dst, dst, b)
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("SubInto(dst=a) differs from Sub")
		}
	})
	t.Run("SubInto dst=b", func(t *testing.T) {
		want := ev.Sub(a, b)
		dst := clone(b)
		ev.SubInto(dst, a, dst)
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("SubInto(dst=b) differs from Sub")
		}
	})
	t.Run("NegInto dst=a", func(t *testing.T) {
		want := ev.Neg(a)
		dst := clone(a)
		ev.NegInto(dst, dst)
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("NegInto(dst=a) differs from Neg")
		}
	})
	t.Run("AddPlainInto dst=ct", func(t *testing.T) {
		want := ev.AddPlain(a, pt)
		dst := clone(a)
		ev.AddPlainInto(dst, dst, pt)
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("AddPlainInto(dst=ct) differs from AddPlain")
		}
	})
	t.Run("SubPlainInto dst=ct", func(t *testing.T) {
		want := ev.SubPlain(a, pt)
		dst := clone(a)
		ev.SubPlainInto(dst, dst, pt)
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("SubPlainInto(dst=ct) differs from SubPlain")
		}
	})
	t.Run("MulPlainInto dst=ct", func(t *testing.T) {
		want := ev.MulPlain(a, pt)
		dst := clone(a)
		ev.MulPlainInto(dst, dst, pt)
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("MulPlainInto(dst=ct) differs from MulPlain")
		}
	})
	t.Run("MulInto dst=a", func(t *testing.T) {
		want, err := ev.Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		dst := clone(a)
		if err := ev.MulInto(dst, dst, b); err != nil {
			t.Fatal(err)
		}
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("MulInto(dst=a) differs from Mul")
		}
	})
	t.Run("MulInto dst=b", func(t *testing.T) {
		want, err := ev.Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		dst := clone(b)
		if err := ev.MulInto(dst, a, dst); err != nil {
			t.Fatal(err)
		}
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("MulInto(dst=b) differs from Mul")
		}
	})
	t.Run("MulInto squaring dst=a=b", func(t *testing.T) {
		want, err := ev.Mul(a, a)
		if err != nil {
			t.Fatal(err)
		}
		dst := clone(a)
		if err := ev.MulInto(dst, dst, dst); err != nil {
			t.Fatal(err)
		}
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("MulInto(dst=a=b) differs from Mul(a, a)")
		}
	})
	t.Run("RelinearizeInto dst=ct", func(t *testing.T) {
		deg2, err := ev.Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ev.Relinearize(deg2)
		if err != nil {
			t.Fatal(err)
		}
		dst := clone(deg2)
		if err := ev.RelinearizeInto(dst, dst); err != nil {
			t.Fatal(err)
		}
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("RelinearizeInto(dst=ct) differs from Relinearize")
		}
	})
	t.Run("RotateRowsInto dst=ct", func(t *testing.T) {
		want, err := ev.RotateRows(a, 2)
		if err != nil {
			t.Fatal(err)
		}
		dst := clone(a)
		if err := ev.RotateRowsInto(dst, dst, 2); err != nil {
			t.Fatal(err)
		}
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("RotateRowsInto(dst=ct) differs from RotateRows")
		}
	})
	t.Run("RotateRowsInto zero rotation dst=ct", func(t *testing.T) {
		want, err := ev.RotateRows(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		dst := clone(a)
		if err := ev.RotateRowsInto(dst, dst, 0); err != nil {
			t.Fatal(err)
		}
		if !ciphertextsEqual(params, dst, want) {
			t.Fatal("RotateRowsInto(dst=ct, 0) differs from RotateRows")
		}
	})
}

// TestParallelEvaluatorMatchesSerial runs Mul/Relinearize with ring
// parallelism enabled and requires bit-identical results to the serial
// configuration.
func TestParallelEvaluatorMatchesSerial(t *testing.T) {
	params, ev, _, a, b, _, _ := diffFixture(t, 123)
	serial, err := ev.MulRelin(a, b)
	if err != nil {
		t.Fatal(err)
	}
	params.SetWorkers(4)
	defer params.SetWorkers(0)
	parallel, err := ev.MulRelin(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ciphertextsEqual(params, serial, parallel) {
		t.Fatal("parallel MulRelin differs from serial")
	}
}
