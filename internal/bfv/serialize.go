package bfv

import (
	"encoding/binary"
	"fmt"

	"porcupine/internal/ring"
)

// Binary serialization for the BFV objects a client and server
// exchange: parameters, plaintexts, ciphertexts, and the public
// evaluation keys. The format is versioned little-endian:
//
//	magic "PBFV" | version u8 | tag u8 | payload
//
// Secret keys are deliberately not serializable here: in the
// deployment model of the paper (Figure 1) the secret key never leaves
// the client process.

const (
	serialMagic   = "PBFV"
	serialVersion = 2 // v2: bulk poly layout with decode-time residue-range checks (internal/ring)
)

const (
	tagParams byte = iota + 1
	tagPlaintext
	tagCiphertext
	tagPublicKey
	tagRelinKey
	tagGaloisKeys
)

type writer struct{ buf []byte }

func (w *writer) u8(v byte)    { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) u64s(v []uint64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.u64(x)
	}
}

func (w *writer) poly(p *ring.Poly) {
	w.buf = p.AppendBinary(w.buf)
}

func newWriter(tag byte) *writer {
	w := &writer{}
	w.buf = append(w.buf, serialMagic...)
	w.u8(serialVersion)
	w.u8(tag)
	return w
}

type reader struct {
	buf []byte
	off int
	err error
}

func newReader(data []byte, wantTag byte) *reader {
	r := &reader{buf: data}
	if len(data) < 6 || string(data[:4]) != serialMagic {
		r.err = fmt.Errorf("bfv: bad magic")
		return r
	}
	if data[4] != serialVersion {
		r.err = fmt.Errorf("bfv: unsupported serialization version %d", data[4])
		return r
	}
	if data[5] != wantTag {
		r.err = fmt.Errorf("bfv: wrong object tag %d (want %d)", data[5], wantTag)
		return r
	}
	r.off = 6
	return r
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) u64s() []uint64 {
	n := r.u32()
	if r.err != nil || r.off+8*int(n) > len(r.buf) {
		r.fail()
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.u64()
	}
	return out
}

func (r *reader) poly(ringQ *ring.Ring) *ring.Poly {
	if r.err != nil {
		return nil
	}
	p, n, err := ringQ.ReadPoly(r.buf[r.off:])
	if err != nil {
		r.err = fmt.Errorf("bfv: %w", err)
		return nil
	}
	r.off += n
	return p
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("bfv: truncated serialization")
	}
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("bfv: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// MarshalBinary encodes the parameter set (degree and RNS basis; the
// plaintext modulus is the package constant).
func (p *Parameters) MarshalBinary() ([]byte, error) {
	w := newWriter(tagParams)
	w.u32(uint32(p.N))
	w.u64s(p.QPrimes)
	return w.buf, nil
}

// UnmarshalParameters reconstructs a parameter set (with all derived
// tables) from MarshalBinary output.
func UnmarshalParameters(data []byte) (*Parameters, error) {
	r := newReader(data, tagParams)
	n := r.u32()
	primes := r.u64s()
	if err := r.done(); err != nil {
		return nil, err
	}
	return newParameters(int(n), primes)
}

// MarshalBinary encodes a plaintext.
func (pt *Plaintext) MarshalBinary() ([]byte, error) {
	w := newWriter(tagPlaintext)
	w.u64s(pt.Coeffs)
	return w.buf, nil
}

// UnmarshalPlaintext decodes a plaintext for this parameter set.
func (p *Parameters) UnmarshalPlaintext(data []byte) (*Plaintext, error) {
	r := newReader(data, tagPlaintext)
	coeffs := r.u64s()
	if err := r.done(); err != nil {
		return nil, err
	}
	if len(coeffs) != p.N {
		return nil, fmt.Errorf("bfv: plaintext has %d coefficients, want %d", len(coeffs), p.N)
	}
	return &Plaintext{Coeffs: coeffs}, nil
}

// MarshalBinary encodes a ciphertext of any degree.
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	w := newWriter(tagCiphertext)
	w.u32(uint32(len(ct.Value)))
	for _, v := range ct.Value {
		w.poly(v)
	}
	return w.buf, nil
}

// UnmarshalCiphertext decodes a ciphertext for this parameter set.
func (p *Parameters) UnmarshalCiphertext(data []byte) (*Ciphertext, error) {
	r := newReader(data, tagCiphertext)
	n := r.u32()
	if r.err == nil && (n < 1 || n > 8) {
		return nil, fmt.Errorf("bfv: implausible ciphertext size %d", n)
	}
	ct := &Ciphertext{}
	for i := 0; i < int(n); i++ {
		ct.Value = append(ct.Value, r.poly(p.ringQ))
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return ct, nil
}

// MarshalBinary encodes a public key.
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	w := newWriter(tagPublicKey)
	w.poly(pk.P0Ntt)
	w.poly(pk.P1Ntt)
	return w.buf, nil
}

// UnmarshalPublicKey decodes a public key for this parameter set.
func (p *Parameters) UnmarshalPublicKey(data []byte) (*PublicKey, error) {
	r := newReader(data, tagPublicKey)
	pk := &PublicKey{P0Ntt: r.poly(p.ringQ), P1Ntt: r.poly(p.ringQ)}
	if err := r.done(); err != nil {
		return nil, err
	}
	return pk, nil
}

func marshalSwitchingKey(w *writer, k *switchingKey) {
	w.u32(uint32(len(k.B)))
	for i := range k.B {
		w.poly(k.B[i])
		w.poly(k.A[i])
	}
}

func (r *reader) switchingKey(ringQ *ring.Ring) *switchingKey {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if int(n) != len(ringQ.Primes) {
		r.err = fmt.Errorf("bfv: switching key has %d digits, want %d", n, len(ringQ.Primes))
		return nil
	}
	k := &switchingKey{}
	for i := 0; i < int(n); i++ {
		k.B = append(k.B, r.poly(ringQ))
		k.A = append(k.A, r.poly(ringQ))
	}
	return k
}

// MarshalBinary encodes a relinearization key.
func (rk *RelinearizationKey) MarshalBinary() ([]byte, error) {
	w := newWriter(tagRelinKey)
	marshalSwitchingKey(w, rk.key)
	return w.buf, nil
}

// UnmarshalRelinearizationKey decodes a relinearization key.
func (p *Parameters) UnmarshalRelinearizationKey(data []byte) (*RelinearizationKey, error) {
	r := newReader(data, tagRelinKey)
	k := r.switchingKey(p.ringQ)
	if err := r.done(); err != nil {
		return nil, err
	}
	return &RelinearizationKey{key: k}, nil
}

// MarshalBinary encodes a Galois key set.
func (gk *GaloisKeys) MarshalBinary() ([]byte, error) {
	w := newWriter(tagGaloisKeys)
	w.u32(uint32(len(gk.keys)))
	// Deterministic order.
	var elems []uint64
	for g := range gk.keys {
		elems = append(elems, g)
	}
	sortU64(elems)
	for _, g := range elems {
		w.u64(g)
		marshalSwitchingKey(w, gk.keys[g])
	}
	return w.buf, nil
}

// UnmarshalGaloisKeys decodes a Galois key set.
func (p *Parameters) UnmarshalGaloisKeys(data []byte) (*GaloisKeys, error) {
	r := newReader(data, tagGaloisKeys)
	n := r.u32()
	gk := &GaloisKeys{keys: map[uint64]*switchingKey{}}
	for i := 0; i < int(n); i++ {
		g := r.u64()
		k := r.switchingKey(p.ringQ)
		if r.err != nil {
			break
		}
		gk.keys[g] = k
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return gk, nil
}

func sortU64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
