package bfv

import (
	"math"
	"math/big"

	"porcupine/internal/mathutil"
	"porcupine/internal/ring"
)

// Encryptor encrypts plaintexts under a public key.
type Encryptor struct {
	params  *Parameters
	pk      *PublicKey
	sampler *ring.Sampler
}

// NewEncryptor returns an encryptor using secure randomness.
func NewEncryptor(params *Parameters, pk *PublicKey) *Encryptor {
	return &Encryptor{params: params, pk: pk, sampler: ring.NewSampler(params.ringQ)}
}

// NewTestEncryptor returns a deterministic encryptor for tests.
func NewTestEncryptor(params *Parameters, pk *PublicKey, seed int64) *Encryptor {
	return &Encryptor{params: params, pk: pk, sampler: ring.NewTestSampler(params.ringQ, seed)}
}

// deltaTimesPlaintext writes Δ·m (lifted to R_Q) into dst. The
// multiplicand Δ mod p_i is fixed per prime, so a Shoup constant
// (which accepts an arbitrary 64-bit cofactor) replaces the
// division-based MulMod.
func deltaTimesPlaintext(params *Parameters, dst *ring.Poly, pt *Plaintext) {
	r := params.ringQ
	for i, p := range r.Primes {
		d := params.deltaQi[i]
		dS := mathutil.ShoupPrecomp(d, p)
		di := dst.Coeffs[i]
		for j, m := range pt.Coeffs {
			di[j] = mathutil.ShoupMul(m, d, dS, p)
		}
	}
}

// Encrypt encrypts pt into a fresh degree-1 ciphertext:
// (c0, c1) = (p0·u + e0 + Δ·m, p1·u + e1).
func (enc *Encryptor) Encrypt(pt *Plaintext) (*Ciphertext, error) {
	r := enc.params.ringQ
	u := r.GetPolyNoZero()
	defer r.PutPoly(u)
	if err := enc.sampler.Ternary(u); err != nil {
		return nil, err
	}
	e0 := r.GetPolyNoZero()
	defer r.PutPoly(e0)
	if err := enc.sampler.Error(e0); err != nil {
		return nil, err
	}
	e1 := r.GetPolyNoZero()
	defer r.PutPoly(e1)
	if err := enc.sampler.Error(e1); err != nil {
		return nil, err
	}
	r.NTT(u)
	c0 := r.GetPolyNoZero()
	c1 := r.GetPolyNoZero()
	r.MulCoeffs(c0, enc.pk.P0Ntt, u)
	r.MulCoeffs(c1, enc.pk.P1Ntt, u)
	r.INTT(c0)
	r.INTT(c1)
	r.Add(c0, c0, e0)
	r.Add(c1, c1, e1)
	dm := r.GetPolyNoZero()
	defer r.PutPoly(dm)
	deltaTimesPlaintext(enc.params, dm, pt)
	r.Add(c0, c0, dm)
	return &Ciphertext{Value: []*ring.Poly{c0, c1}}, nil
}

// Decryptor decrypts ciphertexts with the secret key and measures
// their remaining noise budget.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor returns a decryptor for sk.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// phase computes c0 + c1·s + c2·s² + ... in the coefficient domain.
func (dec *Decryptor) phase(ct *Ciphertext) *ring.Poly {
	r := dec.params.ringQ
	acc := r.Copy(ct.Value[0])
	if len(ct.Value) == 1 {
		return acc
	}
	sPow := r.Copy(dec.sk.SNtt)
	tmp := r.NewPoly()
	for d := 1; d < len(ct.Value); d++ {
		r.CopyInto(tmp, ct.Value[d])
		r.NTT(tmp)
		r.MulCoeffs(tmp, tmp, sPow)
		r.INTT(tmp)
		r.Add(acc, acc, tmp)
		if d+1 < len(ct.Value) {
			r.MulCoeffs(sPow, sPow, dec.sk.SNtt)
		}
	}
	return acc
}

// Decrypt recovers the plaintext: m_j = round(t·v_j / Q) mod t where
// v = c0 + c1·s (+ higher powers for unrelinearized ciphertexts).
func (dec *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	r := dec.params.ringQ
	v := dec.phase(ct)
	pt := dec.params.NewPlaintext()
	t := new(big.Int).SetUint64(dec.params.T)
	q := dec.params.q
	halfQ := new(big.Int).Rsh(q, 1)
	var x, num big.Int
	for j := 0; j < dec.params.N; j++ {
		r.CoeffBigCentered(&x, v, j)
		// round(t·x/Q) with round-half-up for positive, symmetric for
		// negative (rounding direction at exact .5 is irrelevant since
		// noise < Δ/2 guarantees a unique nearest integer).
		num.Mul(t, &x)
		if num.Sign() >= 0 {
			num.Add(&num, halfQ)
		} else {
			num.Sub(&num, halfQ)
		}
		num.Quo(&num, q)
		num.Mod(&num, t)
		pt.Coeffs[j] = num.Uint64()
	}
	return pt
}

// NoiseBudget returns the invariant noise budget of ct in bits:
// log2(Q / (2·max_j |t·v_j mod Q|_centered)). Decryption is correct
// while the budget is positive. Returns 0 when the budget is
// exhausted.
func (dec *Decryptor) NoiseBudget(ct *Ciphertext) float64 {
	r := dec.params.ringQ
	v := dec.phase(ct)
	t := new(big.Int).SetUint64(dec.params.T)
	q := dec.params.q
	halfQ := new(big.Int).Rsh(q, 1)
	var x, num, rem big.Int
	maxNorm := new(big.Int)
	for j := 0; j < dec.params.N; j++ {
		r.CoeffBigCentered(&x, v, j)
		num.Mul(t, &x)
		// Centered remainder of t·x modulo Q.
		rem.Mod(&num, q)
		if rem.Cmp(halfQ) > 0 {
			rem.Sub(&rem, q)
		}
		rem.Abs(&rem)
		if rem.Cmp(maxNorm) > 0 {
			maxNorm.Set(&rem)
		}
	}
	if maxNorm.Sign() == 0 {
		maxNorm.SetInt64(1)
	}
	budget := bigLog2(q) - bigLog2(maxNorm) - 1
	if budget < 0 {
		return 0
	}
	return budget
}

// bigLog2 returns log2(x) for positive x.
func bigLog2(x *big.Int) float64 {
	f := new(big.Float).SetInt(x)
	mant := new(big.Float)
	exp := f.MantExp(mant)
	m, _ := mant.Float64()
	return float64(exp) + math.Log2(m)
}
