package bfv

import (
	"math/rand"
	"testing"
)

// TestHoistedRotationBitIdentity proves the decompose-once fan-out
// path produces exactly the ciphertext of the serial path, rotation
// by rotation — including negative (wraparound) amounts — and that
// both decrypt to the expected slot rotation.
func TestHoistedRotationBitIdentity(t *testing.T) {
	steps := []int{1, 2, 5, -3, -700, 511}
	tc := newTestContext(t, steps)
	rng := rand.New(rand.NewSource(3))
	slots := tc.params.SlotCount()
	v := randVec(rng, slots, tc.params.T)
	pt, err := tc.enc.EncodeNew(v)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tc.encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}

	dec := tc.params.NewDecomposition()
	if err := tc.ev.DecomposeForKeySwitch(dec, ct); err != nil {
		t.Fatal(err)
	}
	for _, k := range steps {
		serial, err := tc.ev.RotateRows(ct, k)
		if err != nil {
			t.Fatalf("rot %d serial: %v", k, err)
		}
		hoisted := tc.params.NewCiphertextUninit(1)
		if err := tc.ev.RotateRowsHoistedInto(hoisted, ct, dec, k); err != nil {
			t.Fatalf("rot %d hoisted: %v", k, err)
		}
		if !tc.params.CiphertextEqual(serial, hoisted) {
			t.Fatalf("rot %d: hoisted ciphertext differs from serial path", k)
		}
		got := tc.enc.Decode(tc.dec.Decrypt(hoisted))
		kk := ((k % slots) + slots) % slots
		for i := 0; i < slots; i++ {
			if got[i] != v[(i+kk)%slots] {
				t.Fatalf("rot %d: slot %d = %d, want %d", k, i, got[i], v[(i+kk)%slots])
			}
		}
	}

	// Rotation by 0 is the identity with or without hoisting.
	id := tc.params.NewCiphertextUninit(1)
	if err := tc.ev.RotateRowsHoistedInto(id, ct, dec, 0); err != nil {
		t.Fatal(err)
	}
	if !tc.params.CiphertextEqual(ct, id) {
		t.Fatal("hoisted rotation by 0 is not the identity")
	}
}

// TestHoistedRotationErrors covers the failure modes: rotation
// without a key, and decomposing a non-degree-1 ciphertext.
func TestHoistedRotationErrors(t *testing.T) {
	tc := newTestContext(t, []int{1})
	rng := rand.New(rand.NewSource(4))
	pt, _ := tc.enc.EncodeNew(randVec(rng, tc.params.SlotCount(), tc.params.T))
	ct, err := tc.encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	dec := tc.params.NewDecomposition()
	if err := tc.ev.DecomposeForKeySwitch(dec, ct); err != nil {
		t.Fatal(err)
	}
	out := tc.params.NewCiphertextUninit(1)
	if err := tc.ev.RotateRowsHoistedInto(out, ct, dec, 7); err == nil {
		t.Fatal("hoisted rotation without a Galois key did not fail")
	}

	deg2, err := tc.ev.Mul(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.ev.DecomposeForKeySwitch(dec, deg2); err == nil {
		t.Fatal("decomposing a degree-2 ciphertext did not fail")
	}
}

// TestHoistedRotationSteadyStateAllocs checks the fan-out path stays
// allocation-free once pools are warm — the invariant the plan
// executor depends on.
func TestHoistedRotationSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	steps := []int{1, 2, 5}
	tc := newTestContext(t, steps)
	rng := rand.New(rand.NewSource(5))
	pt, _ := tc.enc.EncodeNew(randVec(rng, tc.params.SlotCount(), tc.params.T))
	ct, err := tc.encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	dec := tc.params.NewDecomposition()
	outs := make([]*Ciphertext, len(steps))
	for i := range outs {
		outs[i] = tc.params.NewCiphertext(1)
	}
	warm := func() {
		if err := tc.ev.DecomposeForKeySwitch(dec, ct); err != nil {
			t.Fatal(err)
		}
		for i, k := range steps {
			if err := tc.ev.RotateRowsHoistedInto(outs[i], ct, dec, k); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm()
	if allocs := testing.AllocsPerRun(20, warm); allocs > 0 {
		t.Fatalf("steady-state hoisted fan-out allocates %.1f objects/op, want 0", allocs)
	}
}
