package bfv

import (
	"math/rand"
	"testing"
)

func TestDecodeFullBothRows(t *testing.T) {
	tc := newTestContext(t, nil)
	v := []uint64{10, 20, 30}
	pt, err := tc.enc.EncodeNew(v)
	if err != nil {
		t.Fatal(err)
	}
	full := tc.enc.DecodeFull(pt)
	if len(full) != tc.params.N {
		t.Fatalf("full decode length %d", len(full))
	}
	if full[0] != 10 || full[1] != 20 || full[2] != 30 {
		t.Error("row 0 wrong")
	}
	// Row 1 is zero for row-0-only encodings.
	row := tc.params.N / 2
	for i := row; i < row+8; i++ {
		if full[i] != 0 {
			t.Errorf("row 1 slot %d = %d, want 0", i-row, full[i])
		}
	}
}

func TestEncodeDecodeAllSlotsSet(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(10))
	v := randVec(rng, tc.enc.SlotCount(), tc.params.T)
	pt, err := tc.enc.EncodeNew(v)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(pt)
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("slot %d mismatch", i)
		}
	}
}

func TestRotationWrapsAroundRow(t *testing.T) {
	// Left rotation by 1 brings slot 0's value to the last slot — the
	// circular semantics Quill's abstract machine assumes.
	tc := newTestContext(t, []int{1})
	slots := tc.enc.SlotCount()
	v := make([]uint64, slots)
	v[0] = 42
	ct := tc.encryptVec(t, v)
	rot, err := tc.ev.RotateRows(ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.decryptVec(rot)
	if got[slots-1] != 42 {
		t.Errorf("slot %d = %d, want 42 (wraparound)", slots-1, got[slots-1])
	}
	if got[0] != 0 {
		t.Error("slot 0 should have rotated away")
	}
}

func TestRotationComposition(t *testing.T) {
	tc := newTestContext(t, []int{1, 2, 3})
	v := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	ct := tc.encryptVec(t, v)
	r1, err := tc.ev.RotateRows(ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	r12, err := tc.ev.RotateRows(r1, 2)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := tc.ev.RotateRows(ct, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := tc.decryptVec(r12)
	b := tc.decryptVec(r3)
	for i := 0; i < 8; i++ {
		if a[i] != b[i] {
			t.Fatalf("rot(rot(x,1),2) != rot(x,3) at slot %d", i)
		}
	}
}

func TestMixedDegreeAddition(t *testing.T) {
	tc := newTestContext(t, nil)
	a := tc.encryptVec(t, []uint64{3, 4})
	b := tc.encryptVec(t, []uint64{10, 20})
	sq, err := tc.ev.Mul(a, a) // degree 2: {9, 16}
	if err != nil {
		t.Fatal(err)
	}
	sum := tc.ev.Add(sq, b) // degree 2 + degree 1
	if sum.Degree() != 2 {
		t.Fatalf("degree = %d", sum.Degree())
	}
	got := tc.decryptVec(sum)
	if got[0] != 19 || got[1] != 36 {
		t.Errorf("got %v, want [19 36]", got[:2])
	}
	diff := tc.ev.Sub(b, sq) // degree 1 - degree 2
	got = tc.decryptVec(diff)
	if got[0] != 1 || got[1] != 4 {
		t.Errorf("sub mixed degrees: got %v, want [1 4]", got[:2])
	}
}

func TestEncryptZeroVector(t *testing.T) {
	tc := newTestContext(t, nil)
	ct := tc.encryptVec(t, []uint64{})
	got := tc.decryptVec(ct)
	for i := 0; i < 16; i++ {
		if got[i] != 0 {
			t.Fatal("empty encryption should decrypt to zeros")
		}
	}
	if b := tc.dec.NoiseBudget(ct); b <= 0 {
		t.Error("fresh zero ciphertext has no budget")
	}
}
