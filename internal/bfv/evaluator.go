package bfv

import (
	"fmt"
	"math/big"

	"porcupine/internal/ring"
)

// Evaluator performs homomorphic operations on ciphertexts. It holds
// the evaluation keys (relinearization and Galois) it was constructed
// with; operations requiring an absent key return an error.
type Evaluator struct {
	params *Parameters
	rlk    *RelinearizationKey
	gks    *GaloisKeys
}

// NewEvaluator builds an evaluator. rlk and gks may be nil when
// multiplication or rotation respectively is not needed.
func NewEvaluator(params *Parameters, rlk *RelinearizationKey, gks *GaloisKeys) *Evaluator {
	return &Evaluator{params: params, rlk: rlk, gks: gks}
}

func (ev *Evaluator) checkDegree(op string, ct *Ciphertext, max int) error {
	if ct.Degree() > max {
		return fmt.Errorf("bfv: %s: ciphertext degree %d exceeds %d", op, ct.Degree(), max)
	}
	return nil
}

// Add returns a + b (element-wise over slots). Operands of different
// degree are aligned by treating missing polynomials as zero.
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	r := ev.params.ringQ
	hi, lo := a, b
	if len(b.Value) > len(a.Value) {
		hi, lo = b, a
	}
	out := ev.params.NewCiphertext(hi.Degree())
	for i := range hi.Value {
		if i < len(lo.Value) {
			r.Add(out.Value[i], hi.Value[i], lo.Value[i])
		} else {
			r.CopyInto(out.Value[i], hi.Value[i])
		}
	}
	return out
}

// Sub returns a - b.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	r := ev.params.ringQ
	deg := a.Degree()
	if b.Degree() > deg {
		deg = b.Degree()
	}
	out := ev.params.NewCiphertext(deg)
	for i := range out.Value {
		switch {
		case i < len(a.Value) && i < len(b.Value):
			r.Sub(out.Value[i], a.Value[i], b.Value[i])
		case i < len(a.Value):
			r.CopyInto(out.Value[i], a.Value[i])
		default:
			r.Neg(out.Value[i], b.Value[i])
		}
	}
	return out
}

// Neg returns -a.
func (ev *Evaluator) Neg(a *Ciphertext) *Ciphertext {
	r := ev.params.ringQ
	out := ev.params.NewCiphertext(a.Degree())
	for i := range a.Value {
		r.Neg(out.Value[i], a.Value[i])
	}
	return out
}

// AddPlain returns ct + pt: Δ·m is added to the degree-0 component.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	r := ev.params.ringQ
	out := ev.params.CopyCiphertext(ct)
	dm := r.NewPoly()
	deltaTimesPlaintext(ev.params, dm, pt)
	r.Add(out.Value[0], out.Value[0], dm)
	return out
}

// SubPlain returns ct - pt.
func (ev *Evaluator) SubPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	r := ev.params.ringQ
	out := ev.params.CopyCiphertext(ct)
	dm := r.NewPoly()
	deltaTimesPlaintext(ev.params, dm, pt)
	r.Sub(out.Value[0], out.Value[0], dm)
	return out
}

// PlainSub returns pt - ct.
func (ev *Evaluator) PlainSub(pt *Plaintext, ct *Ciphertext) *Ciphertext {
	return ev.Neg(ev.SubPlain(ct, pt))
}

// MulPlain returns ct · pt (element-wise SIMD product with a plaintext
// vector). The plaintext is lifted without Δ-scaling, so the result
// still encrypts Δ·(m_ct ⊙ m_pt).
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	r := ev.params.ringQ
	m := r.NewPoly()
	coeffs := make([]int64, len(pt.Coeffs))
	for j, c := range pt.Coeffs {
		coeffs[j] = int64(c)
	}
	r.SetSmall(m, coeffs)
	r.NTT(m)
	out := ev.params.NewCiphertext(ct.Degree())
	tmp := r.NewPoly()
	for i := range ct.Value {
		r.CopyInto(tmp, ct.Value[i])
		r.NTT(tmp)
		r.MulCoeffs(tmp, tmp, m)
		r.INTT(tmp)
		r.CopyInto(out.Value[i], tmp)
	}
	return out
}

// Mul returns the degree-2 tensor product of two degree-1 ciphertexts,
// computed exactly over the integers in the extended RNS basis and
// scaled by t/Q with correct rounding. Use Relinearize (or MulRelin)
// to return to degree 1.
func (ev *Evaluator) Mul(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.checkDegree("Mul", a, 1); err != nil {
		return nil, err
	}
	if err := ev.checkDegree("Mul", b, 1); err != nil {
		return nil, err
	}
	rq := ev.params.ringQ
	rx := ev.params.ringExt

	// Lift the four input polynomials into the extended basis using
	// centered representatives.
	lift := func(p *ring.Poly) *ring.Poly {
		out := rx.NewPoly()
		var x big.Int
		for j := 0; j < ev.params.N; j++ {
			rq.CoeffBigCentered(&x, p, j)
			rx.SetCoeffBig(out, j, &x)
		}
		return out
	}
	a0, a1 := lift(a.Value[0]), lift(a.Value[1])
	b0, b1 := lift(b.Value[0]), lift(b.Value[1])
	rx.NTT(a0)
	rx.NTT(a1)
	rx.NTT(b0)
	rx.NTT(b1)

	e0, e1, e2 := rx.NewPoly(), rx.NewPoly(), rx.NewPoly()
	rx.MulCoeffs(e0, a0, b0)
	rx.MulCoeffs(e1, a0, b1)
	rx.MulCoeffsAndAdd(e1, a1, b0)
	rx.MulCoeffs(e2, a1, b1)
	rx.INTT(e0)
	rx.INTT(e1)
	rx.INTT(e2)

	// Scale each coefficient by t/Q with rounding, landing back in R_Q.
	out := ev.params.NewCiphertext(2)
	t := new(big.Int).SetUint64(ev.params.T)
	q := ev.params.q
	halfQ := new(big.Int).Rsh(q, 1)
	var x, num big.Int
	for i, e := range []*ring.Poly{e0, e1, e2} {
		dst := out.Value[i]
		for j := 0; j < ev.params.N; j++ {
			rx.CoeffBigCentered(&x, e, j)
			num.Mul(t, &x)
			if num.Sign() >= 0 {
				num.Add(&num, halfQ)
			} else {
				num.Sub(&num, halfQ)
			}
			num.Quo(&num, q)
			rq.SetCoeffBig(dst, j, &num)
		}
	}
	return out, nil
}

// keySwitch computes (Σ_i d_i·b_i, Σ_i d_i·a_i) where d_i is the i-th
// RNS digit of d (its residues mod p_i, lifted). This moves a term
// d·s' to the (constant, s) basis given a switching key for s'.
func (ev *Evaluator) keySwitch(d *ring.Poly, key *switchingKey) (*ring.Poly, *ring.Poly) {
	r := ev.params.ringQ
	out0, out1 := r.NewPoly(), r.NewPoly()
	digit := r.NewPoly()
	for i := range r.Primes {
		// Lift digit i: every prime component holds d mod p_i.
		src := d.Coeffs[i]
		for l, pl := range r.Primes {
			dl := digit.Coeffs[l]
			for j, v := range src {
				dl[j] = v % pl
			}
		}
		r.NTT(digit)
		r.MulCoeffsAndAdd(out0, digit, key.B[i])
		r.MulCoeffsAndAdd(out1, digit, key.A[i])
	}
	r.INTT(out0)
	r.INTT(out1)
	return out0, out1
}

// Relinearize reduces a degree-2 ciphertext to degree 1 using the
// relinearization key.
func (ev *Evaluator) Relinearize(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Degree() == 1 {
		return ev.params.CopyCiphertext(ct), nil
	}
	if ct.Degree() != 2 {
		return nil, fmt.Errorf("bfv: Relinearize: unsupported degree %d", ct.Degree())
	}
	if ev.rlk == nil {
		return nil, fmt.Errorf("bfv: Relinearize: no relinearization key")
	}
	r := ev.params.ringQ
	f0, f1 := ev.keySwitch(ct.Value[2], ev.rlk.key)
	out := ev.params.NewCiphertext(1)
	r.Add(out.Value[0], ct.Value[0], f0)
	r.Add(out.Value[1], ct.Value[1], f1)
	return out, nil
}

// MulRelin multiplies and immediately relinearizes.
func (ev *Evaluator) MulRelin(a, b *Ciphertext) (*Ciphertext, error) {
	c, err := ev.Mul(a, b)
	if err != nil {
		return nil, err
	}
	return ev.Relinearize(c)
}

// RotateRows rotates the batching rows left by k slots (right for
// negative k) using the corresponding Galois key.
func (ev *Evaluator) RotateRows(ct *Ciphertext, k int) (*Ciphertext, error) {
	if err := ev.checkDegree("RotateRows", ct, 1); err != nil {
		return nil, err
	}
	r := ev.params.ringQ
	g := r.GaloisElementForRotation(k)
	if g == 1 {
		return ev.params.CopyCiphertext(ct), nil
	}
	return ev.applyGalois(ct, g)
}

// RotateColumns swaps the two batching rows.
func (ev *Evaluator) RotateColumns(ct *Ciphertext) (*Ciphertext, error) {
	if err := ev.checkDegree("RotateColumns", ct, 1); err != nil {
		return nil, err
	}
	return ev.applyGalois(ct, ev.params.ringQ.GaloisElementRowSwap())
}

func (ev *Evaluator) applyGalois(ct *Ciphertext, g uint64) (*Ciphertext, error) {
	if ev.gks == nil || !ev.gks.has(g) {
		return nil, fmt.Errorf("bfv: no Galois key for element %d", g)
	}
	r := ev.params.ringQ
	c0g, c1g := r.NewPoly(), r.NewPoly()
	r.Automorphism(c0g, ct.Value[0], g)
	r.Automorphism(c1g, ct.Value[1], g)
	f0, f1 := ev.keySwitch(c1g, ev.gks.keys[g])
	out := ev.params.NewCiphertext(1)
	r.Add(out.Value[0], c0g, f0)
	r.CopyInto(out.Value[1], f1)
	return out, nil
}
