package bfv

import (
	"fmt"
	"math/big"

	"porcupine/internal/ring"
)

// Evaluator performs homomorphic operations on ciphertexts. It holds
// the evaluation keys (relinearization and Galois) it was constructed
// with; operations requiring an absent key return an error.
//
// Every operation has an allocating form (Add, Mul, ...) and an
// in-place form (AddInto, MulInto, ...) that writes into a
// caller-provided ciphertext, resizing it as needed. The in-place
// forms are alias-safe: dst may be one of the operands. Scratch
// polynomials come from the ring buffer pools, so steady-state
// evaluation performs no large allocations.
//
// Ciphertext multiplication runs on a pure-RNS hot path: centered
// lifting into the extended basis and the t/Q rounding rescale are
// word-sized mixed-radix conversions (ring.BasisExtender), with no
// per-coefficient math/big arithmetic. The textbook big.Int path is
// retained behind SetBigIntReference for differential testing.
type Evaluator struct {
	params    *Parameters
	rlk       *RelinearizationKey
	gks       *GaloisKeys
	useBigRef bool
}

// NewEvaluator builds an evaluator. rlk and gks may be nil when
// multiplication or rotation respectively is not needed.
func NewEvaluator(params *Parameters, rlk *RelinearizationKey, gks *GaloisKeys) *Evaluator {
	return &Evaluator{params: params, rlk: rlk, gks: gks}
}

// SetBigIntReference toggles the retained big.Int CRT reference
// implementation of Mul. It exists so tests can prove the pure-RNS
// path bit-identical to the textbook computation; production code
// should leave it off.
func (ev *Evaluator) SetBigIntReference(on bool) { ev.useBigRef = on }

func (ev *Evaluator) checkDegree(op string, ct *Ciphertext, max int) error {
	if ct.Degree() > max {
		return fmt.Errorf("bfv: %s: ciphertext degree %d exceeds %d", op, ct.Degree(), max)
	}
	return nil
}

// resize adjusts ct to the given degree. New polynomials come from
// the ring pool and hold stale coefficients — every caller fully
// overwrites all rows up to the new degree before reading them.
// Truncated polynomials go back to the pool.
func (ev *Evaluator) resize(ct *Ciphertext, degree int) {
	r := ev.params.ringQ
	for len(ct.Value) < degree+1 {
		ct.Value = append(ct.Value, r.GetPolyNoZero())
	}
	for _, p := range ct.Value[degree+1:] {
		r.PutPoly(p)
	}
	ct.Value = ct.Value[:degree+1]
}

// copyCiphertextInto copies src's polynomials into dst, resizing dst
// to src's degree. Rows already sharing a polynomial (dst aliasing
// src) are left untouched.
func (ev *Evaluator) copyCiphertextInto(dst, src *Ciphertext) {
	r := ev.params.ringQ
	srcV := src.Value
	ev.resize(dst, len(srcV)-1)
	for i := range srcV {
		if dst.Value[i] != srcV[i] {
			r.CopyInto(dst.Value[i], srcV[i])
		}
	}
}

// Add returns a + b (element-wise over slots). Operands of different
// degree are aligned by treating missing polynomials as zero.
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	deg := max(a.Degree(), b.Degree())
	out := ev.params.NewCiphertextUninit(deg)
	ev.AddInto(out, a, b)
	return out
}

// AddInto sets dst = a + b. dst may alias a or b.
func (ev *Evaluator) AddInto(dst, a, b *Ciphertext) {
	r := ev.params.ringQ
	hi, lo := a, b
	if len(b.Value) > len(a.Value) {
		hi, lo = b, a
	}
	hiV, loV := hi.Value, lo.Value // capture before resize mutates an alias
	ev.resize(dst, len(hiV)-1)
	for i := range hiV {
		switch {
		case i < len(loV):
			r.Add(dst.Value[i], hiV[i], loV[i])
		case dst.Value[i] != hiV[i]:
			r.CopyInto(dst.Value[i], hiV[i])
		}
	}
}

// Sub returns a - b.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	deg := max(a.Degree(), b.Degree())
	out := ev.params.NewCiphertextUninit(deg)
	ev.SubInto(out, a, b)
	return out
}

// SubInto sets dst = a - b. dst may alias a or b.
func (ev *Evaluator) SubInto(dst, a, b *Ciphertext) {
	r := ev.params.ringQ
	aV, bV := a.Value, b.Value
	deg := max(len(aV), len(bV)) - 1
	ev.resize(dst, deg)
	for i := 0; i <= deg; i++ {
		switch {
		case i < len(aV) && i < len(bV):
			r.Sub(dst.Value[i], aV[i], bV[i])
		case i < len(aV):
			if dst.Value[i] != aV[i] {
				r.CopyInto(dst.Value[i], aV[i])
			}
		default:
			r.Neg(dst.Value[i], bV[i])
		}
	}
}

// Neg returns -a.
func (ev *Evaluator) Neg(a *Ciphertext) *Ciphertext {
	out := ev.params.NewCiphertextUninit(a.Degree())
	ev.NegInto(out, a)
	return out
}

// NegInto sets dst = -a. dst may alias a.
func (ev *Evaluator) NegInto(dst, a *Ciphertext) {
	r := ev.params.ringQ
	aV := a.Value
	ev.resize(dst, len(aV)-1)
	for i := range aV {
		r.Neg(dst.Value[i], aV[i])
	}
}

// AddPlain returns ct + pt: Δ·m is added to the degree-0 component.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	out := ev.params.NewCiphertextUninit(ct.Degree())
	ev.AddPlainInto(out, ct, pt)
	return out
}

// AddPlainInto sets dst = ct + pt. dst may alias ct.
func (ev *Evaluator) AddPlainInto(dst, ct *Ciphertext, pt *Plaintext) {
	r := ev.params.ringQ
	dm := r.GetPolyNoZero()
	deltaTimesPlaintext(ev.params, dm, pt)
	ev.copyCiphertextInto(dst, ct)
	r.Add(dst.Value[0], dst.Value[0], dm)
	r.PutPoly(dm)
}

// SubPlain returns ct - pt.
func (ev *Evaluator) SubPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	out := ev.params.NewCiphertextUninit(ct.Degree())
	ev.SubPlainInto(out, ct, pt)
	return out
}

// SubPlainInto sets dst = ct - pt. dst may alias ct.
func (ev *Evaluator) SubPlainInto(dst, ct *Ciphertext, pt *Plaintext) {
	r := ev.params.ringQ
	dm := r.GetPolyNoZero()
	deltaTimesPlaintext(ev.params, dm, pt)
	ev.copyCiphertextInto(dst, ct)
	r.Sub(dst.Value[0], dst.Value[0], dm)
	r.PutPoly(dm)
}

// PlainSub returns pt - ct.
func (ev *Evaluator) PlainSub(pt *Plaintext, ct *Ciphertext) *Ciphertext {
	out := ev.params.NewCiphertextUninit(ct.Degree())
	ev.SubPlainInto(out, ct, pt)
	ev.NegInto(out, out)
	return out
}

// MulPlain returns ct · pt (element-wise SIMD product with a plaintext
// vector). The plaintext is lifted without Δ-scaling, so the result
// still encrypts Δ·(m_ct ⊙ m_pt).
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	out := ev.params.NewCiphertextUninit(ct.Degree())
	ev.MulPlainInto(out, ct, pt)
	return out
}

// MulPlainInto sets dst = ct · pt. dst may alias ct.
func (ev *Evaluator) MulPlainInto(dst, ct *Ciphertext, pt *Plaintext) {
	r := ev.params.ringQ
	m := r.GetPolyNoZero()
	liftPlaintext(ev.params, m, pt)
	r.NTT(m)
	ctV := ct.Value
	ev.resize(dst, len(ctV)-1)
	tmp := r.GetPolyNoZero()
	for i := range ctV {
		r.CopyInto(tmp, ctV[i])
		r.NTT(tmp)
		r.MulCoeffs(tmp, tmp, m)
		r.INTT(tmp)
		r.CopyInto(dst.Value[i], tmp)
	}
	r.PutPoly(tmp)
	r.PutPoly(m)
}

// liftPlaintext writes pt's coefficients, reduced per prime, into dst
// (no Δ scaling).
func liftPlaintext(params *Parameters, dst *ring.Poly, pt *Plaintext) {
	r := params.ringQ
	for i := range r.Primes {
		bar := r.BarrettAt(i)
		di := dst.Coeffs[i]
		for j, m := range pt.Coeffs {
			di[j] = bar.Reduce64(m)
		}
	}
}

// Mul returns the degree-2 tensor product of two degree-1 ciphertexts,
// computed exactly over the integers in the extended RNS basis and
// scaled by t/Q with correct rounding. Use Relinearize (or MulRelin)
// to return to degree 1.
func (ev *Evaluator) Mul(a, b *Ciphertext) (*Ciphertext, error) {
	out := ev.params.NewCiphertextUninit(2)
	if err := ev.MulInto(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// MulInto sets out = a ⊗ b (degree 2, scaled by t/Q with correct
// rounding). out is resized to degree 2 and may alias a or b.
func (ev *Evaluator) MulInto(out *Ciphertext, a, b *Ciphertext) error {
	if err := ev.checkDegree("Mul", a, 1); err != nil {
		return err
	}
	if err := ev.checkDegree("Mul", b, 1); err != nil {
		return err
	}
	if ev.useBigRef {
		return ev.mulBigInto(out, a, b)
	}
	rx := ev.params.ringExt
	be := ev.params.extender

	// Lift the four input polynomials into the extended basis using
	// centered representatives, then move to the evaluation domain.
	lift := func(p *ring.Poly) *ring.Poly {
		q := rx.GetPolyNoZero()
		be.LiftCentered(q, p)
		rx.NTT(q)
		return q
	}
	a0, a1 := lift(a.Value[0]), lift(a.Value[1])
	b0, b1 := lift(b.Value[0]), lift(b.Value[1])

	e0, e1, e2 := rx.GetPolyNoZero(), rx.GetPolyNoZero(), rx.GetPolyNoZero()
	rx.MulCoeffs(e0, a0, b0)
	rx.MulCoeffs(e1, a0, b1)
	rx.MulCoeffsAndAdd(e1, a1, b0)
	rx.MulCoeffs(e2, a1, b1)
	rx.PutPoly(a0)
	rx.PutPoly(a1)
	rx.PutPoly(b0)
	rx.PutPoly(b1)
	rx.INTT(e0)
	rx.INTT(e1)
	rx.INTT(e2)

	// Scale each tensor component by t/Q with rounding, landing back in
	// R_Q — a pure-RNS mixed-radix rescale, no big.Int per coefficient.
	ev.resize(out, 2)
	be.ScaleDown(out.Value[0], e0)
	be.ScaleDown(out.Value[1], e1)
	be.ScaleDown(out.Value[2], e2)
	rx.PutPoly(e0)
	rx.PutPoly(e1)
	rx.PutPoly(e2)
	return nil
}

// mulBigInto is the textbook tensor product with per-coefficient
// big.Int CRT reconstruction. It is the reference the pure-RNS path is
// differentially tested against; see SetBigIntReference.
func (ev *Evaluator) mulBigInto(out *Ciphertext, a, b *Ciphertext) error {
	rq := ev.params.ringQ
	rx := ev.params.ringExt

	// Lift the four input polynomials into the extended basis using
	// centered representatives.
	lift := func(p *ring.Poly) *ring.Poly {
		out := rx.NewPoly()
		var x big.Int
		for j := 0; j < ev.params.N; j++ {
			rq.CoeffBigCentered(&x, p, j)
			rx.SetCoeffBig(out, j, &x)
		}
		return out
	}
	a0, a1 := lift(a.Value[0]), lift(a.Value[1])
	b0, b1 := lift(b.Value[0]), lift(b.Value[1])
	rx.NTT(a0)
	rx.NTT(a1)
	rx.NTT(b0)
	rx.NTT(b1)

	e0, e1, e2 := rx.NewPoly(), rx.NewPoly(), rx.NewPoly()
	rx.MulCoeffs(e0, a0, b0)
	rx.MulCoeffs(e1, a0, b1)
	rx.MulCoeffsAndAdd(e1, a1, b0)
	rx.MulCoeffs(e2, a1, b1)
	rx.INTT(e0)
	rx.INTT(e1)
	rx.INTT(e2)

	// Scale each coefficient by t/Q with rounding, landing back in R_Q.
	ev.resize(out, 2)
	t := new(big.Int).SetUint64(ev.params.T)
	q := ev.params.q
	halfQ := new(big.Int).Rsh(q, 1)
	var x, num big.Int
	for i, e := range []*ring.Poly{e0, e1, e2} {
		dst := out.Value[i]
		for j := 0; j < ev.params.N; j++ {
			rx.CoeffBigCentered(&x, e, j)
			num.Mul(t, &x)
			if num.Sign() >= 0 {
				num.Add(&num, halfQ)
			} else {
				num.Sub(&num, halfQ)
			}
			num.Quo(&num, q)
			rq.SetCoeffBig(dst, j, &num)
		}
	}
	return nil
}

// Decomposition holds the hoisted key-switching state of one
// degree-1 ciphertext: the RNS digits of its c1 component, lifted and
// forward-NTT'd once (DecomposeForKeySwitch) and then reusable across
// any number of rotations of that ciphertext
// (RotateRowsHoistedInto). Create one with Parameters.NewDecomposition
// and keep it per execution session: it is scratch, not a value — its
// contents are valid only until the next DecomposeForKeySwitch.
type Decomposition struct {
	d *ring.Decomposition
	// c0NTT caches the forward transform of the decomposed
	// ciphertext's c0 for NTT-destined fan members
	// (RotateRowsHoistedIntoNTT): the first such rotation pays one
	// NTT, the rest of the fan shares it. Invalidated by every
	// Decompose* call.
	c0NTT *ring.Poly
	c0Set bool
}

// NewDecomposition allocates hoisting scratch for the parameter set
// (one digit polynomial per Q prime, from the ring pool).
func (p *Parameters) NewDecomposition() *Decomposition {
	return &Decomposition{d: p.ringQ.GetDecomposition(), c0NTT: p.ringQ.NewPoly()}
}

// DecomposeForKeySwitch fills dec with the key-switching digits of
// ct's c1 component — the decompose-once half of hoisted rotation.
// ct must have degree 1. After this call, any number of
// RotateRowsHoistedInto(dst, ct, dec, k) calls rotate ct at the cost
// of a digit permutation instead of a fresh decomposition (K digit
// lifts + K forward NTTs each).
func (ev *Evaluator) DecomposeForKeySwitch(dec *Decomposition, ct *Ciphertext) error {
	if ct.Degree() != 1 {
		return fmt.Errorf("bfv: DecomposeForKeySwitch: ciphertext degree %d, want 1", ct.Degree())
	}
	ev.params.ringQ.DecomposeNTT(dec.d, ct.Value[1])
	dec.c0Set = false
	return nil
}

// RotateRowsHoistedInto sets dst = ct rotated by k slots, reusing the
// hoisted decomposition dec (which must hold ct's digits, see
// DecomposeForKeySwitch). Bit-identical to RotateRowsInto — the
// serial path runs on the same decompose-permute-accumulate
// primitives — but pays only (digit permute + lazy inner products +
// 2 INTTs) per rotation. dst may alias ct.
func (ev *Evaluator) RotateRowsHoistedInto(dst, ct *Ciphertext, dec *Decomposition, k int) error {
	if err := ev.checkDegree("RotateRowsHoisted", ct, 1); err != nil {
		return err
	}
	g := ev.params.ringQ.GaloisElementForRotation(k)
	if g == 1 {
		ev.copyCiphertextInto(dst, ct)
		return nil
	}
	if ev.gks == nil || !ev.gks.has(g) {
		return fmt.Errorf("bfv: no Galois key for element %d", g)
	}
	ev.galoisFromDecomp(dst, ct, dec.d, ev.gks.keys[g], g)
	return nil
}

// galoisFromDecomp applies the Galois automorphism g to ct given the
// hoisted decomposition of its c1: the digits are permuted in the NTT
// domain (σ_g commutes with the evaluation-point permutation) and
// inner-multiplied against the switching key with one lazy reduction
// per coefficient; c0 is permuted in the coefficient domain. dst may
// alias ct.
func (ev *Evaluator) galoisFromDecomp(dst, ct *Ciphertext, dec *ring.Decomposition, key *switchingKey, g uint64) {
	r := ev.params.ringQ
	ev.galoisFromDecompTables(dst, ct, dec, key, r.NTTPermutation(g), r.AutomorphismTable(g))
}

// galoisFromDecompTables is galoisFromDecomp with both automorphism
// tables resolved by the caller — the prefetched form behind batched
// cross-source key switching (BeginBatchedRotation resolves the
// element, key, and tables once per group).
func (ev *Evaluator) galoisFromDecompTables(dst, ct *Ciphertext, dec *ring.Decomposition, key *switchingKey, perm, autoTab []uint32) {
	r := ev.params.ringQ
	// The lazy accumulation writes every coefficient of its output, so
	// the accumulators need no zeroing pass (GetPolyNoZero, not
	// GetPoly).
	f0, f1 := r.GetPolyNoZero(), r.GetPolyNoZero()
	r.PermutedMulAccumLazy(f0, dec.Digits, key.B, perm)
	r.PermutedMulAccumLazy(f1, dec.Digits, key.A, perm)
	r.INTT(f0)
	r.INTT(f1)
	c0g := r.GetPolyNoZero()
	r.AutomorphismWithTable(c0g, ct.Value[0], autoTab)
	ev.resize(dst, 1)
	r.Add(dst.Value[0], c0g, f0)
	r.CopyInto(dst.Value[1], f1)
	r.PutPoly(c0g)
	r.PutPoly(f0)
	r.PutPoly(f1)
}

// keySwitch computes (Σ_i d_i·b_i, Σ_i d_i·a_i) where d_i is the i-th
// RNS digit of d (its residues mod p_i, lifted). This moves a term
// d·s' to the (constant, s) basis given a switching key for s'. The
// digits run through the shared hoisting primitives: decompose once
// (ring.DecomposeNTT), then one lazy inner product per output — K
// products accumulate in 128 bits and reduce once per coefficient
// instead of K times. The returned polynomials come from the ring
// pool; the caller must return them with PutPoly.
func (ev *Evaluator) keySwitch(d *ring.Poly, key *switchingKey) (*ring.Poly, *ring.Poly) {
	r := ev.params.ringQ
	dec := r.GetDecomposition()
	r.DecomposeNTT(dec, d)
	// The lazy inner product fully writes its output — no zeroed
	// accumulator (GetPoly) needed.
	out0, out1 := r.GetPolyNoZero(), r.GetPolyNoZero()
	r.MulAccumLazy(out0, dec.Digits, key.B)
	r.MulAccumLazy(out1, dec.Digits, key.A)
	r.INTT(out0)
	r.INTT(out1)
	r.PutDecomposition(dec)
	return out0, out1
}

// Relinearize reduces a degree-2 ciphertext to degree 1 using the
// relinearization key.
func (ev *Evaluator) Relinearize(ct *Ciphertext) (*Ciphertext, error) {
	out := ev.params.NewCiphertextUninit(1)
	if err := ev.RelinearizeInto(out, ct); err != nil {
		return nil, err
	}
	return out, nil
}

// RelinearizeInto sets dst to the degree-1 equivalent of ct. dst may
// alias ct.
func (ev *Evaluator) RelinearizeInto(dst, ct *Ciphertext) error {
	r := ev.params.ringQ
	if ct.Degree() == 1 {
		ev.copyCiphertextInto(dst, ct)
		return nil
	}
	if ct.Degree() != 2 {
		return fmt.Errorf("bfv: Relinearize: unsupported degree %d", ct.Degree())
	}
	if ev.rlk == nil {
		return fmt.Errorf("bfv: Relinearize: no relinearization key")
	}
	f0, f1 := ev.keySwitch(ct.Value[2], ev.rlk.key)
	ctV := ct.Value
	ev.resize(dst, 1)
	r.Add(dst.Value[0], ctV[0], f0)
	r.Add(dst.Value[1], ctV[1], f1)
	r.PutPoly(f0)
	r.PutPoly(f1)
	return nil
}

// MulRelin multiplies and immediately relinearizes.
func (ev *Evaluator) MulRelin(a, b *Ciphertext) (*Ciphertext, error) {
	out := ev.params.NewCiphertextUninit(1)
	if err := ev.MulRelinInto(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// MulRelinInto sets dst = relin(a ⊗ b). dst may alias a or b.
func (ev *Evaluator) MulRelinInto(dst, a, b *Ciphertext) error {
	tmp := ev.params.NewCiphertextUninit(2)
	defer ev.params.RecycleCiphertext(tmp)
	if err := ev.MulInto(tmp, a, b); err != nil {
		return err
	}
	return ev.RelinearizeInto(dst, tmp)
}

// RotateRows rotates the batching rows left by k slots (right for
// negative k) using the corresponding Galois key.
func (ev *Evaluator) RotateRows(ct *Ciphertext, k int) (*Ciphertext, error) {
	out := ev.params.NewCiphertextUninit(1)
	if err := ev.RotateRowsInto(out, ct, k); err != nil {
		return nil, err
	}
	return out, nil
}

// RotateRowsInto sets dst = ct rotated by k slots. dst may alias ct.
func (ev *Evaluator) RotateRowsInto(dst, ct *Ciphertext, k int) error {
	if err := ev.checkDegree("RotateRows", ct, 1); err != nil {
		return err
	}
	r := ev.params.ringQ
	g := r.GaloisElementForRotation(k)
	if g == 1 {
		ev.copyCiphertextInto(dst, ct)
		return nil
	}
	return ev.applyGaloisInto(dst, ct, g)
}

// RotateColumns swaps the two batching rows.
func (ev *Evaluator) RotateColumns(ct *Ciphertext) (*Ciphertext, error) {
	out := ev.params.NewCiphertextUninit(1)
	if err := ev.RotateColumnsInto(out, ct); err != nil {
		return nil, err
	}
	return out, nil
}

// RotateColumnsInto sets dst = ct with its batching rows swapped. dst
// may alias ct.
func (ev *Evaluator) RotateColumnsInto(dst, ct *Ciphertext) error {
	if err := ev.checkDegree("RotateColumns", ct, 1); err != nil {
		return err
	}
	return ev.applyGaloisInto(dst, ct, ev.params.ringQ.GaloisElementRowSwap())
}

// applyGaloisInto is the serial (non-hoisted) rotation path. It is
// the hoisted path with a decomposition lifetime of one: decompose
// c1, permute-and-accumulate, discard — so a rotation produces the
// same bits whether or not its decomposition was hoisted across a
// fan-out.
func (ev *Evaluator) applyGaloisInto(dst, ct *Ciphertext, g uint64) error {
	if ev.gks == nil || !ev.gks.has(g) {
		return fmt.Errorf("bfv: no Galois key for element %d", g)
	}
	r := ev.params.ringQ
	dec := r.GetDecomposition()
	r.DecomposeNTT(dec, ct.Value[1])
	ev.galoisFromDecomp(dst, ct, dec, ev.gks.keys[g], g)
	r.PutDecomposition(dec)
	return nil
}
