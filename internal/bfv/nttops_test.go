package bfv

import (
	"math/rand"
	"testing"
)

// The NTT-resident evaluation paths must be the exact conjugates of
// their coefficient-domain counterparts: for every primitive P with an
// NTT variant P_N, INTT(P_N(NTT(x))) == P(x) bit for bit. The ring's
// NTT fully normalizes into [0,p), so the transform is an exact
// bijection and these are equality checks, not approximations. These
// tests pin that contract per primitive; the plan-level differential
// tests in internal/backend then cover whole kernels.

// TestNTTConversionRoundTrip: INTTInto ∘ NTTInto is the identity, in
// and out of place.
func TestNTTConversionRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(11))
	ct := tc.encryptVec(t, randVec(rng, tc.params.SlotCount(), tc.params.T))

	ntt := tc.params.NewCiphertextUninit(1)
	tc.ev.NTTInto(ntt, ct)
	if tc.params.CiphertextEqual(ct, ntt) {
		t.Fatal("forward NTT left the ciphertext unchanged")
	}
	back := tc.params.NewCiphertextUninit(1)
	tc.ev.INTTInto(back, ntt)
	if !tc.params.CiphertextEqual(ct, back) {
		t.Fatal("INTT(NTT(ct)) != ct")
	}

	inPlace := tc.params.NewCiphertextUninit(1)
	tc.ev.copyCiphertextInto(inPlace, ct)
	tc.ev.NTTInto(inPlace, inPlace)
	tc.ev.INTTInto(inPlace, inPlace)
	if !tc.params.CiphertextEqual(ct, inPlace) {
		t.Fatal("in-place conversion round trip != ct")
	}
}

// TestNTTResidentAddSub: AddInto/SubInto/NegInto are domain-agnostic —
// applied to NTT-resident operands they compute the NTT of the
// coefficient-domain result exactly.
func TestNTTResidentAddSub(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(12))
	a := tc.encryptVec(t, randVec(rng, tc.params.SlotCount(), tc.params.T))
	b := tc.encryptVec(t, randVec(rng, tc.params.SlotCount(), tc.params.T))
	aN, bN := tc.params.NewCiphertextUninit(1), tc.params.NewCiphertextUninit(1)
	tc.ev.NTTInto(aN, a)
	tc.ev.NTTInto(bN, b)

	check := func(name string, coeff, nttRes *Ciphertext) {
		t.Helper()
		got := tc.params.NewCiphertextUninit(1)
		tc.ev.INTTInto(got, nttRes)
		if !tc.params.CiphertextEqual(coeff, got) {
			t.Fatalf("%s: NTT-resident result is not the transform of the coefficient result", name)
		}
	}
	ref, res := tc.params.NewCiphertextUninit(1), tc.params.NewCiphertextUninit(1)
	tc.ev.AddInto(ref, a, b)
	tc.ev.AddInto(res, aN, bN)
	check("add", ref, res)
	tc.ev.SubInto(ref, a, b)
	tc.ev.SubInto(res, aN, bN)
	check("sub", ref, res)
	tc.ev.NegInto(ref, a)
	tc.ev.NegInto(res, aN)
	check("neg", ref, res)
}

// TestMulPlainPreparedVariants: the four prepared-plaintext product
// variants agree with the legacy MulPlainInto across every domain
// combination, including aliased destinations.
func TestMulPlainPreparedVariants(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(13))
	ct := tc.encryptVec(t, randVec(rng, tc.params.SlotCount(), tc.params.T))
	pt, err := tc.enc.EncodeNew(randVec(rng, tc.params.SlotCount(), tc.params.T))
	if err != nil {
		t.Fatal(err)
	}
	m := tc.params.NewMulPlainNTT(pt)
	ctN := tc.params.NewCiphertextUninit(1)
	tc.ev.NTTInto(ctN, ct)

	ref := tc.params.NewCiphertextUninit(1)
	tc.ev.MulPlainInto(ref, ct, pt)
	refN := tc.params.NewCiphertextUninit(1)
	tc.ev.NTTInto(refN, ref)

	got := tc.params.NewCiphertextUninit(1)
	tc.ev.MulPlainPreparedInto(got, ct, m)
	if !tc.params.CiphertextEqual(ref, got) {
		t.Fatal("MulPlainPreparedInto != MulPlainInto")
	}
	tc.ev.MulPlainPreparedIntoNTT(got, ct, m)
	if !tc.params.CiphertextEqual(refN, got) {
		t.Fatal("MulPlainPreparedIntoNTT != NTT(MulPlainInto)")
	}
	tc.ev.MulPlainNTTInto(got, ctN, m)
	if !tc.params.CiphertextEqual(ref, got) {
		t.Fatal("MulPlainNTTInto != MulPlainInto")
	}
	tc.ev.MulPlainNTTIntoNTT(got, ctN, m)
	if !tc.params.CiphertextEqual(refN, got) {
		t.Fatal("MulPlainNTTIntoNTT != NTT(MulPlainInto)")
	}

	// Aliased: dst == ct for each variant.
	alias := tc.params.NewCiphertextUninit(1)
	tc.ev.copyCiphertextInto(alias, ct)
	tc.ev.MulPlainPreparedInto(alias, alias, m)
	if !tc.params.CiphertextEqual(ref, alias) {
		t.Fatal("aliased MulPlainPreparedInto != MulPlainInto")
	}
	tc.ev.copyCiphertextInto(alias, ctN)
	tc.ev.MulPlainNTTIntoNTT(alias, alias, m)
	if !tc.params.CiphertextEqual(refN, alias) {
		t.Fatal("aliased MulPlainNTTIntoNTT != NTT(MulPlainInto)")
	}
}

// TestAddSubPlainNTT: the NTT-resident plaintext add/sub agree with
// the coefficient path through the conjugation.
func TestAddSubPlainNTT(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(14))
	ct := tc.encryptVec(t, randVec(rng, tc.params.SlotCount(), tc.params.T))
	pt, err := tc.enc.EncodeNew(randVec(rng, tc.params.SlotCount(), tc.params.T))
	if err != nil {
		t.Fatal(err)
	}
	m := tc.params.NewAddPlainNTT(pt)
	ctN := tc.params.NewCiphertextUninit(1)
	tc.ev.NTTInto(ctN, ct)

	ref, got, back := tc.params.NewCiphertextUninit(1), tc.params.NewCiphertextUninit(1), tc.params.NewCiphertextUninit(1)
	tc.ev.AddPlainInto(ref, ct, pt)
	tc.ev.AddPlainNTTIntoNTT(got, ctN, m)
	tc.ev.INTTInto(back, got)
	if !tc.params.CiphertextEqual(ref, back) {
		t.Fatal("AddPlainNTTIntoNTT is not the transform of AddPlainInto")
	}
	tc.ev.SubPlainInto(ref, ct, pt)
	tc.ev.SubPlainNTTIntoNTT(got, ctN, m)
	tc.ev.INTTInto(back, got)
	if !tc.params.CiphertextEqual(ref, back) {
		t.Fatal("SubPlainNTTIntoNTT is not the transform of SubPlainInto")
	}
}

// TestRotateNTTVariants: every NTT-destination rotation path (serial
// coeff-source, serial NTT-source, hoisted coeff-source with the
// shared c0 cache, hoisted NTT-source) produces exactly the transform
// of the serial coefficient rotation.
func TestRotateNTTVariants(t *testing.T) {
	steps := []int{1, 2, 5, -3}
	tc := newTestContext(t, steps)
	rng := rand.New(rand.NewSource(15))
	ct := tc.encryptVec(t, randVec(rng, tc.params.SlotCount(), tc.params.T))
	ctN := tc.params.NewCiphertextUninit(1)
	tc.ev.NTTInto(ctN, ct)

	decC := tc.params.NewDecomposition()
	if err := tc.ev.DecomposeForKeySwitch(decC, ct); err != nil {
		t.Fatal(err)
	}
	decN := tc.params.NewDecomposition()
	if err := tc.ev.DecomposeForKeySwitchNTT(decN, ctN); err != nil {
		t.Fatal(err)
	}

	got, back := tc.params.NewCiphertextUninit(1), tc.params.NewCiphertextUninit(1)
	for _, k := range append(steps, 0) {
		ref, err := tc.ev.RotateRows(ct, k)
		if err != nil {
			t.Fatalf("rot %d serial: %v", k, err)
		}
		refN := tc.params.NewCiphertextUninit(1)
		tc.ev.NTTInto(refN, ref)

		if err := tc.ev.RotateRowsIntoNTT(got, ct, k); err != nil {
			t.Fatalf("rot %d: %v", k, err)
		}
		if !tc.params.CiphertextEqual(refN, got) {
			t.Fatalf("rot %d: RotateRowsIntoNTT != NTT(RotateRows)", k)
		}
		if err := tc.ev.RotateRowsNTTIntoNTT(got, ctN, k); err != nil {
			t.Fatalf("rot %d: %v", k, err)
		}
		if !tc.params.CiphertextEqual(refN, got) {
			t.Fatalf("rot %d: RotateRowsNTTIntoNTT != NTT(RotateRows)", k)
		}
		if err := tc.ev.RotateRowsHoistedIntoNTT(got, ct, decC, k); err != nil {
			t.Fatalf("rot %d: %v", k, err)
		}
		if !tc.params.CiphertextEqual(refN, got) {
			t.Fatalf("rot %d: RotateRowsHoistedIntoNTT != NTT(RotateRows)", k)
		}
		if err := tc.ev.RotateRowsHoistedNTTIntoNTT(got, ctN, decN, k); err != nil {
			t.Fatalf("rot %d: %v", k, err)
		}
		if !tc.params.CiphertextEqual(refN, got) {
			t.Fatalf("rot %d: RotateRowsHoistedNTTIntoNTT != NTT(RotateRows)", k)
		}
		tc.ev.INTTInto(back, got)
		if !tc.params.CiphertextEqual(ref, back) {
			t.Fatalf("rot %d: INTT of NTT-resident rotation != serial rotation", k)
		}
	}

	// A mixed fan off one decomposition: coefficient-destination
	// members are unaffected by the NTT members sharing the cache.
	mixRef := tc.params.NewCiphertextUninit(1)
	if err := tc.ev.RotateRowsHoistedInto(mixRef, ct, decC, 2); err != nil {
		t.Fatal(err)
	}
	if err := tc.ev.RotateRowsHoistedIntoNTT(got, ct, decC, 1); err != nil {
		t.Fatal(err)
	}
	mix := tc.params.NewCiphertextUninit(1)
	if err := tc.ev.RotateRowsHoistedInto(mix, ct, decC, 2); err != nil {
		t.Fatal(err)
	}
	if !tc.params.CiphertextEqual(mixRef, mix) {
		t.Fatal("coefficient fan member changed after an NTT member used the shared cache")
	}

	// Missing-key errors surface on every new path.
	for name, call := range map[string]func() error{
		"serial-into-ntt":  func() error { return tc.ev.RotateRowsIntoNTT(got, ct, 700) },
		"ntt-into-ntt":     func() error { return tc.ev.RotateRowsNTTIntoNTT(got, ctN, 700) },
		"hoisted-into-ntt": func() error { return tc.ev.RotateRowsHoistedIntoNTT(got, ct, decC, 700) },
		"hoisted-ntt":      func() error { return tc.ev.RotateRowsHoistedNTTIntoNTT(got, ctN, decN, 700) },
	} {
		if err := call(); err == nil {
			t.Fatalf("%s: rotation without a Galois key did not fail", name)
		}
	}
}

// TestNTTRotationSteadyStateAllocs: a mixed NTT/coefficient fan stays
// allocation-free once the pools are warm.
func TestNTTRotationSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	tc := newTestContext(t, []int{1, 2, 5})
	rng := rand.New(rand.NewSource(16))
	ct := tc.encryptVec(t, randVec(rng, tc.params.SlotCount(), tc.params.T))
	pt, _ := tc.enc.EncodeNew(randVec(rng, tc.params.SlotCount(), tc.params.T))
	m := tc.params.NewMulPlainNTT(pt)
	dec := tc.params.NewDecomposition()
	o1, o2, o3 := tc.params.NewCiphertext(1), tc.params.NewCiphertext(1), tc.params.NewCiphertext(1)
	warm := func() {
		if err := tc.ev.DecomposeForKeySwitch(dec, ct); err != nil {
			t.Fatal(err)
		}
		if err := tc.ev.RotateRowsHoistedIntoNTT(o1, ct, dec, 1); err != nil {
			t.Fatal(err)
		}
		if err := tc.ev.RotateRowsHoistedIntoNTT(o2, ct, dec, 2); err != nil {
			t.Fatal(err)
		}
		if err := tc.ev.RotateRowsHoistedInto(o3, ct, dec, 5); err != nil {
			t.Fatal(err)
		}
		tc.ev.AddInto(o1, o1, o2)
		tc.ev.MulPlainNTTIntoNTT(o1, o1, m)
		tc.ev.INTTInto(o1, o1)
	}
	warm()
	if allocs := testing.AllocsPerRun(20, warm); allocs > 0 {
		t.Fatalf("steady-state NTT-resident evaluation allocates %.1f objects/op, want 0", allocs)
	}
}
