package bfv

import (
	"fmt"

	"porcupine/internal/mathutil"
	"porcupine/internal/ring"
)

// Encoder maps vectors of integers modulo t to plaintext polynomials
// using BFV batching: the CRT decomposition of Z_t[X]/(X^N+1) into N
// one-dimensional slots. Slots are arranged as two rows of N/2; this
// repository exposes row 0 as "the vector" and RotateRows as the
// circular rotation, matching the Quill abstract machine.
type Encoder struct {
	params   *Parameters
	ptRing   *ring.Ring // degree-N ring with the single prime t
	indexMap []int      // slot index -> coefficient position (bit-reversed NTT layout)
	inverse  []int      // coefficient position -> slot index
}

// NewEncoder builds the batching tables for the parameter set.
func NewEncoder(params *Parameters) (*Encoder, error) {
	ptRing, err := ring.NewRing(params.N, []uint64{params.T})
	if err != nil {
		return nil, fmt.Errorf("bfv: plaintext ring: %w", err)
	}
	n := params.N
	logN, err := mathutil.Log2(n)
	if err != nil {
		return nil, err
	}
	m := uint64(2 * n)
	rowSize := n / 2
	indexMap := make([]int, n)
	pos := uint64(1)
	gen := uint64(3)
	for i := 0; i < rowSize; i++ {
		idx1 := (pos - 1) >> 1
		idx2 := (m - pos - 1) >> 1
		indexMap[i] = int(mathutil.BitReverse(idx1, logN))
		indexMap[i+rowSize] = int(mathutil.BitReverse(idx2, logN))
		pos = pos * gen % m
	}
	inverse := make([]int, n)
	for slot, coeff := range indexMap {
		inverse[coeff] = slot
	}
	return &Encoder{params: params, ptRing: ptRing, indexMap: indexMap, inverse: inverse}, nil
}

// SlotCount returns the length of the vector exposed by Encode (one
// batching row).
func (e *Encoder) SlotCount() int { return e.params.N / 2 }

// Encode packs values (length ≤ SlotCount, remaining slots zero) into
// pt. Values must already be reduced modulo t; use EncodeInt for
// signed inputs.
func (e *Encoder) Encode(values []uint64, pt *Plaintext) error {
	rowSize := e.params.N / 2
	if len(values) > rowSize {
		return fmt.Errorf("bfv: %d values exceed slot count %d", len(values), rowSize)
	}
	t := e.params.T
	buf := pt.Coeffs
	clear(buf)
	for i, v := range values {
		if v >= t {
			return fmt.Errorf("bfv: value %d at index %d not reduced mod t=%d", v, i, t)
		}
		buf[e.indexMap[i]] = v
	}
	// buf currently holds slot values in the NTT evaluation layout;
	// an inverse NTT yields the coefficient form. The row form avoids
	// heap-allocating a Poly wrapper, keeping per-run input encoding
	// allocation-free for serving sessions.
	e.ptRing.INTTRow(0, buf)
	return nil
}

// EncodeLanes packs k vectors at disjoint lane offsets into pt: lane
// j's values land in slots [j·stride, j·stride+len(lanes[j])), all
// other slots zero — the slot-multiplexing layout, produced in one
// encoding pass. Each vector must fit its lane (length ≤ stride) and
// the last lane must fit the row.
func (e *Encoder) EncodeLanes(lanes [][]uint64, stride int, pt *Plaintext) error {
	rowSize := e.params.N / 2
	if stride <= 0 || len(lanes)*stride > rowSize {
		return fmt.Errorf("bfv: %d lanes of stride %d exceed slot count %d", len(lanes), stride, rowSize)
	}
	t := e.params.T
	buf := pt.Coeffs
	clear(buf)
	for j, vals := range lanes {
		if len(vals) > stride {
			return fmt.Errorf("bfv: lane %d holds %d values, stride is %d", j, len(vals), stride)
		}
		base := j * stride
		for i, v := range vals {
			if v >= t {
				return fmt.Errorf("bfv: value %d at lane %d index %d not reduced mod t=%d", v, j, i, t)
			}
			buf[e.indexMap[base+i]] = v
		}
	}
	e.ptRing.INTTRow(0, buf)
	return nil
}

// DecodeLane unpacks n slots starting at lane·stride — the per-request
// extraction of a demultiplexed response.
func (e *Encoder) DecodeLane(pt *Plaintext, lane, stride, n int) ([]uint64, error) {
	rowSize := e.params.N / 2
	base := lane * stride
	if lane < 0 || stride <= 0 || n < 0 || base+n > rowSize {
		return nil, fmt.Errorf("bfv: lane window [%d, %d) outside row of %d slots", base, base+n, rowSize)
	}
	buf := make([]uint64, e.params.N)
	copy(buf, pt.Coeffs)
	e.ptRing.NTTRow(0, buf)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = buf[e.indexMap[base+i]]
	}
	return out, nil
}

// EncodeInt packs signed values, reducing them into [0, t).
func (e *Encoder) EncodeInt(values []int64, pt *Plaintext) error {
	t := int64(e.params.T)
	u := make([]uint64, len(values))
	for i, v := range values {
		r := v % t
		if r < 0 {
			r += t
		}
		u[i] = uint64(r)
	}
	return e.Encode(u, pt)
}

// EncodeNew is Encode into a freshly allocated plaintext.
func (e *Encoder) EncodeNew(values []uint64) (*Plaintext, error) {
	pt := e.params.NewPlaintext()
	if err := e.Encode(values, pt); err != nil {
		return nil, err
	}
	return pt, nil
}

// Decode unpacks the first SlotCount slots (row 0) of pt.
func (e *Encoder) Decode(pt *Plaintext) []uint64 {
	n := e.params.N
	buf := make([]uint64, n)
	copy(buf, pt.Coeffs)
	e.ptRing.NTTRow(0, buf)
	rowSize := n / 2
	out := make([]uint64, rowSize)
	for i := 0; i < rowSize; i++ {
		out[i] = buf[e.indexMap[i]]
	}
	return out
}

// DecodeInt decodes slot values into centered signed representatives
// in (-t/2, t/2].
func (e *Encoder) DecodeInt(pt *Plaintext) []int64 {
	u := e.Decode(pt)
	t := e.params.T
	half := t / 2
	out := make([]int64, len(u))
	for i, v := range u {
		if v > half {
			out[i] = int64(v) - int64(t)
		} else {
			out[i] = int64(v)
		}
	}
	return out
}

// DecodeFull unpacks both batching rows (N slots).
func (e *Encoder) DecodeFull(pt *Plaintext) []uint64 {
	n := e.params.N
	buf := make([]uint64, n)
	copy(buf, pt.Coeffs)
	e.ptRing.NTTRow(0, buf)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = buf[e.indexMap[i]]
	}
	return out
}
