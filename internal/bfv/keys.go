package bfv

import (
	"fmt"
	"math/big"

	"porcupine/internal/mathutil"
	"porcupine/internal/ring"
)

// SecretKey is a ternary secret s, stored in both coefficient and NTT
// domains.
type SecretKey struct {
	S    *ring.Poly // coefficient domain
	SNtt *ring.Poly // NTT domain
}

// PublicKey is an LWE encryption of zero: (p0, p1) = (-(a·s+e), a),
// stored in the NTT domain for fast encryption.
type PublicKey struct {
	P0Ntt, P1Ntt *ring.Poly
}

// switchingKey holds one key-switching key: per Q-prime i a pair
// (b_i, a_i) with b_i = -(a_i·s + e_i) + P_i·s', where P_i is the CRT
// projector (P_i ≡ 1 mod p_i, ≡ 0 mod p_j). Both stored in NTT domain.
type switchingKey struct {
	B, A []*ring.Poly
}

// RelinearizationKey switches s² back to s after ciphertext
// multiplication.
type RelinearizationKey struct {
	key *switchingKey
}

// GaloisKeys holds key-switching keys for a set of Galois elements,
// enabling slot rotations.
type GaloisKeys struct {
	keys map[uint64]*switchingKey
}

// Steps returns whether a key for the Galois element g is present.
func (gk *GaloisKeys) has(g uint64) bool {
	_, ok := gk.keys[g]
	return ok
}

// HasElement reports whether a key for the Galois element g is
// present (g = Parameters.GaloisElement(step) for slot rotations).
func (gk *GaloisKeys) HasElement(g uint64) bool { return gk.has(g) }

// Elements returns the Galois elements the key set covers, sorted.
func (gk *GaloisKeys) Elements() []uint64 {
	out := make([]uint64, 0, len(gk.keys))
	for g := range gk.keys {
		out = append(out, g)
	}
	sortU64(out)
	return out
}

// KeyGenerator produces the key material for a parameter set.
type KeyGenerator struct {
	params  *Parameters
	sampler *ring.Sampler
}

// NewKeyGenerator returns a generator using cryptographically secure
// randomness.
func NewKeyGenerator(params *Parameters) *KeyGenerator {
	return &KeyGenerator{params: params, sampler: ring.NewSampler(params.ringQ)}
}

// NewTestKeyGenerator returns a deterministic generator for tests.
func NewTestKeyGenerator(params *Parameters, seed int64) *KeyGenerator {
	return &KeyGenerator{params: params, sampler: ring.NewTestSampler(params.ringQ, seed)}
}

// GenSecretKey samples a fresh ternary secret key.
func (kg *KeyGenerator) GenSecretKey() (*SecretKey, error) {
	r := kg.params.ringQ
	s := r.NewPoly()
	if err := kg.sampler.Ternary(s); err != nil {
		return nil, err
	}
	sNtt := r.Copy(s)
	r.NTT(sNtt)
	return &SecretKey{S: s, SNtt: sNtt}, nil
}

// GenPublicKey derives a public key from sk.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) (*PublicKey, error) {
	r := kg.params.ringQ
	a := r.NewPoly()
	if err := kg.sampler.Uniform(a); err != nil {
		return nil, err
	}
	e := r.NewPoly()
	if err := kg.sampler.Error(e); err != nil {
		return nil, err
	}
	r.NTT(a)
	r.NTT(e)
	p0 := r.NewPoly()
	r.MulCoeffs(p0, a, sk.SNtt)
	r.Add(p0, p0, e)
	r.Neg(p0, p0)
	return &PublicKey{P0Ntt: p0, P1Ntt: a}, nil
}

// genSwitchingKey builds a key switching sPrimeNtt (NTT domain) to sk.
func (kg *KeyGenerator) genSwitchingKey(sk *SecretKey, sPrimeNtt *ring.Poly) (*switchingKey, error) {
	r := kg.params.ringQ
	k := len(r.Primes)
	swk := &switchingKey{B: make([]*ring.Poly, k), A: make([]*ring.Poly, k)}
	e := r.GetPolyNoZero()
	piScaled := r.GetPolyNoZero()
	defer r.PutPoly(e)
	defer r.PutPoly(piScaled)
	var qi, inv big.Int
	for i, p := range r.Primes {
		a := r.NewPoly()
		if err := kg.sampler.Uniform(a); err != nil {
			return nil, err
		}
		if err := kg.sampler.Error(e); err != nil {
			return nil, err
		}
		r.NTT(a)
		r.NTT(e)
		b := r.NewPoly()
		r.MulCoeffs(b, a, sk.SNtt)
		r.Add(b, b, e)
		r.Neg(b, b)
		// P_i = (Q/p_i) · [(Q/p_i)^{-1} mod p_i]  (mod Q).
		qi.Div(kg.params.q, new(big.Int).SetUint64(p))
		r0 := new(big.Int).Mod(&qi, new(big.Int).SetUint64(p)).Uint64()
		invU, err := mathutil.InvMod(r0, p)
		if err != nil {
			return nil, err
		}
		inv.SetUint64(invU)
		pi := new(big.Int).Mul(&qi, &inv)
		r.MulScalarBig(piScaled, sPrimeNtt, pi)
		r.Add(b, b, piScaled)
		swk.B[i], swk.A[i] = b, a
	}
	return swk, nil
}

// GenRelinearizationKey builds the key for relinearizing degree-2
// ciphertexts (switching s² to s).
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) (*RelinearizationKey, error) {
	r := kg.params.ringQ
	s2 := r.NewPoly()
	r.MulCoeffs(s2, sk.SNtt, sk.SNtt)
	key, err := kg.genSwitchingKey(sk, s2)
	if err != nil {
		return nil, err
	}
	return &RelinearizationKey{key: key}, nil
}

// GenGaloisKeys builds rotation keys for the given slot rotation steps
// (positive = left). Steps are taken over the N/2-slot row.
func (kg *KeyGenerator) GenGaloisKeys(sk *SecretKey, steps []int) (*GaloisKeys, error) {
	r := kg.params.ringQ
	gks := &GaloisKeys{keys: make(map[uint64]*switchingKey)}
	for _, step := range steps {
		g := r.GaloisElementForRotation(step)
		if g == 1 {
			continue // rotation by 0 needs no key
		}
		if _, ok := gks.keys[g]; ok {
			continue
		}
		key, err := kg.genGaloisKey(sk, g)
		if err != nil {
			return nil, err
		}
		gks.keys[g] = key
	}
	return gks, nil
}

// GenGaloisKeysForElements builds keys for explicit Galois elements
// (used for the row-swap element 2N-1).
func (kg *KeyGenerator) GenGaloisKeysForElements(sk *SecretKey, gks *GaloisKeys, elements []uint64) error {
	for _, g := range elements {
		if g == 1 {
			continue
		}
		if _, ok := gks.keys[g]; ok {
			continue
		}
		key, err := kg.genGaloisKey(sk, g)
		if err != nil {
			return err
		}
		gks.keys[g] = key
	}
	return nil
}

func (kg *KeyGenerator) genGaloisKey(sk *SecretKey, g uint64) (*switchingKey, error) {
	r := kg.params.ringQ
	if g%2 == 0 {
		return nil, fmt.Errorf("bfv: galois element %d is not a unit mod 2N", g)
	}
	sG := r.NewPoly()
	r.Automorphism(sG, sk.S, g)
	r.NTT(sG)
	return kg.genSwitchingKey(sk, sG)
}
