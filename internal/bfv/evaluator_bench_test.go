package bfv

import (
	"math/rand"
	"testing"
)

// benchRuntime builds keys and two fresh ciphertexts for a preset.
func benchRuntime(b *testing.B, preset string) (*Evaluator, *Ciphertext, *Ciphertext) {
	b.Helper()
	params, err := NewParametersFromPreset(preset)
	if err != nil {
		b.Fatal(err)
	}
	kg := NewTestKeyGenerator(params, 1)
	sk, err := kg.GenSecretKey()
	if err != nil {
		b.Fatal(err)
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		b.Fatal(err)
	}
	rlk, err := kg.GenRelinearizationKey(sk)
	if err != nil {
		b.Fatal(err)
	}
	gks, err := kg.GenGaloisKeys(sk, []int{1})
	if err != nil {
		b.Fatal(err)
	}
	enc, err := NewEncoder(params)
	if err != nil {
		b.Fatal(err)
	}
	encryptor := NewTestEncryptor(params, pk, 2)
	rng := rand.New(rand.NewSource(3))
	fresh := func() *Ciphertext {
		vals := make([]uint64, enc.SlotCount())
		for i := range vals {
			vals[i] = rng.Uint64() % 64
		}
		pt, err := enc.EncodeNew(vals)
		if err != nil {
			b.Fatal(err)
		}
		ct, err := encryptor.Encrypt(pt)
		if err != nil {
			b.Fatal(err)
		}
		return ct
	}
	return NewEvaluator(params, rlk, gks), fresh(), fresh()
}

// BenchmarkEvaluatorMul measures the ciphertext–ciphertext tensor
// product (the pure-RNS hot path) per preset.
func BenchmarkEvaluatorMul(b *testing.B) {
	for _, preset := range []string{"PN4096", "PN8192"} {
		b.Run(preset, func(b *testing.B) {
			ev, x, y := benchRuntime(b, preset)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Mul(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluatorMulRelin measures multiply + key switch.
func BenchmarkEvaluatorMulRelin(b *testing.B) {
	for _, preset := range []string{"PN4096", "PN8192"} {
		b.Run(preset, func(b *testing.B) {
			ev, x, y := benchRuntime(b, preset)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ev.MulRelin(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluatorRotate measures a slot rotation (key switch path).
func BenchmarkEvaluatorRotate(b *testing.B) {
	for _, preset := range []string{"PN4096", "PN8192"} {
		b.Run(preset, func(b *testing.B) {
			ev, x, _ := benchRuntime(b, preset)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ev.RotateRows(x, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
