package bfv

import (
	"math/rand"
	"testing"
)

// benchRuntime builds keys and two fresh ciphertexts for a preset.
func benchRuntime(b *testing.B, preset string) (*Evaluator, *Ciphertext, *Ciphertext) {
	b.Helper()
	params, err := NewParametersFromPreset(preset)
	if err != nil {
		b.Fatal(err)
	}
	kg := NewTestKeyGenerator(params, 1)
	sk, err := kg.GenSecretKey()
	if err != nil {
		b.Fatal(err)
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		b.Fatal(err)
	}
	rlk, err := kg.GenRelinearizationKey(sk)
	if err != nil {
		b.Fatal(err)
	}
	gks, err := kg.GenGaloisKeys(sk, []int{1})
	if err != nil {
		b.Fatal(err)
	}
	enc, err := NewEncoder(params)
	if err != nil {
		b.Fatal(err)
	}
	encryptor := NewTestEncryptor(params, pk, 2)
	rng := rand.New(rand.NewSource(3))
	fresh := func() *Ciphertext {
		vals := make([]uint64, enc.SlotCount())
		for i := range vals {
			vals[i] = rng.Uint64() % 64
		}
		pt, err := enc.EncodeNew(vals)
		if err != nil {
			b.Fatal(err)
		}
		ct, err := encryptor.Encrypt(pt)
		if err != nil {
			b.Fatal(err)
		}
		return ct
	}
	return NewEvaluator(params, rlk, gks), fresh(), fresh()
}

// BenchmarkEvaluatorMul measures the ciphertext–ciphertext tensor
// product (the pure-RNS hot path) per preset.
func BenchmarkEvaluatorMul(b *testing.B) {
	for _, preset := range []string{"PN4096", "PN8192"} {
		b.Run(preset, func(b *testing.B) {
			ev, x, y := benchRuntime(b, preset)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Mul(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluatorMulRelin measures multiply + key switch.
func BenchmarkEvaluatorMulRelin(b *testing.B) {
	for _, preset := range []string{"PN4096", "PN8192"} {
		b.Run(preset, func(b *testing.B) {
			ev, x, y := benchRuntime(b, preset)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ev.MulRelin(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluatorRotate measures a slot rotation (key switch path).
func BenchmarkEvaluatorRotate(b *testing.B) {
	for _, preset := range []string{"PN4096", "PN8192"} {
		b.Run(preset, func(b *testing.B) {
			ev, x, _ := benchRuntime(b, preset)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ev.RotateRows(x, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluatorRotateFanOut measures a fan-out of distinct
// rotations of one ciphertext, serial vs hoisted (decompose once,
// permute per rotation) — the per-plan win of hoisted key switching.
func BenchmarkEvaluatorRotateFanOut(b *testing.B) {
	steps := []int{1, 2, 4, 8}
	for _, preset := range []string{"PN4096", "PN8192"} {
		params, err := NewParametersFromPreset(preset)
		if err != nil {
			b.Fatal(err)
		}
		kg := NewTestKeyGenerator(params, 1)
		sk, _ := kg.GenSecretKey()
		pk, _ := kg.GenPublicKey(sk)
		gks, err := kg.GenGaloisKeys(sk, steps)
		if err != nil {
			b.Fatal(err)
		}
		enc, _ := NewEncoder(params)
		vals := make([]uint64, enc.SlotCount())
		for i := range vals {
			vals[i] = uint64(i % 64)
		}
		pt, _ := enc.EncodeNew(vals)
		ct, err := NewTestEncryptor(params, pk, 2).Encrypt(pt)
		if err != nil {
			b.Fatal(err)
		}
		ev := NewEvaluator(params, nil, gks)
		outs := make([]*Ciphertext, len(steps))
		for i := range outs {
			outs[i] = params.NewCiphertext(1)
		}
		b.Run(preset+"/serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j, k := range steps {
					if err := ev.RotateRowsInto(outs[j], ct, k); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(preset+"/hoisted", func(b *testing.B) {
			dec := params.NewDecomposition()
			for i := 0; i < b.N; i++ {
				if err := ev.DecomposeForKeySwitch(dec, ct); err != nil {
					b.Fatal(err)
				}
				for j, k := range steps {
					if err := ev.RotateRowsHoistedInto(outs[j], ct, dec, k); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
