//go:build race

package bfv

const raceEnabled = true
