package bfv

import (
	"testing"
)

func TestParametersSerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	data, err := tc.params.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalParameters(data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.N != tc.params.N || len(restored.QPrimes) != len(tc.params.QPrimes) {
		t.Error("parameters round trip lost data")
	}
	for i := range restored.QPrimes {
		if restored.QPrimes[i] != tc.params.QPrimes[i] {
			t.Error("prime basis mismatch")
		}
	}
	if restored.Q().Cmp(tc.params.Q()) != 0 {
		t.Error("derived modulus mismatch")
	}
}

func TestCiphertextSerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t, []int{1})
	v := []uint64{11, 22, 33, 44}
	ct := tc.encryptVec(t, v)
	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := tc.params.UnmarshalCiphertext(data)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.decryptVec(restored)
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("slot %d: %d != %d", i, got[i], v[i])
		}
	}
	// The restored ciphertext is fully functional: rotate it.
	rot, err := tc.ev.RotateRows(restored, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tc.decryptVec(rot)[0] != v[1] {
		t.Error("restored ciphertext broken after rotation")
	}
}

func TestDegree2CiphertextSerialization(t *testing.T) {
	tc := newTestContext(t, nil)
	ct := tc.encryptVec(t, []uint64{5})
	d2, err := tc.ev.Mul(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	data, err := d2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := tc.params.UnmarshalCiphertext(data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Degree() != 2 {
		t.Fatalf("degree = %d, want 2", restored.Degree())
	}
	if tc.decryptVec(restored)[0] != 25 {
		t.Error("degree-2 round trip wrong")
	}
}

func TestPlaintextSerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	pt, err := tc.enc.EncodeNew([]uint64{7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	data, err := pt.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := tc.params.UnmarshalPlaintext(data)
	if err != nil {
		t.Fatal(err)
	}
	dec := tc.enc.Decode(restored)
	if dec[0] != 7 || dec[1] != 8 || dec[2] != 9 {
		t.Error("plaintext round trip wrong")
	}
}

func TestEvaluationKeySerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t, []int{1, 2})

	pkData, err := tc.pk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	pk, err := tc.params.UnmarshalPublicKey(pkData)
	if err != nil {
		t.Fatal(err)
	}
	rlkData, err := tc.rlk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rlk, err := tc.params.UnmarshalRelinearizationKey(rlkData)
	if err != nil {
		t.Fatal(err)
	}
	gkData, err := tc.gks.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	gks, err := tc.params.UnmarshalGaloisKeys(gkData)
	if err != nil {
		t.Fatal(err)
	}

	// A full pipeline with only deserialized key material.
	enc := NewTestEncryptor(tc.params, pk, 99)
	ev := NewEvaluator(tc.params, rlk, gks)
	pt, err := tc.enc.EncodeNew([]uint64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := ev.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	rot, err := ev.RotateRows(sq, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.decryptVec(rot)
	if got[0] != 16 { // (slot 1 of squared vector) = 4²
		t.Errorf("pipeline with deserialized keys: got %d, want 16", got[0])
	}
}

func TestSerializationRejectsCorruption(t *testing.T) {
	tc := newTestContext(t, nil)
	ct := tc.encryptVec(t, []uint64{1})
	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), data[4:]...),
		"bad ver":   append([]byte("PBFV\x09"), data[5:]...),
		"wrong tag": append([]byte("PBFV\x01\x01"), data[6:]...),
		"truncated": data[:len(data)/2],
		"trailing":  append(append([]byte{}, data...), 0),
	}
	for name, d := range cases {
		if _, err := tc.params.UnmarshalCiphertext(d); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
	if _, err := UnmarshalParameters(data); err == nil {
		t.Error("ciphertext bytes accepted as parameters")
	}
}
