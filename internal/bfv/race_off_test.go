//go:build !race

package bfv

// raceEnabled reports whether the race detector is active (see
// race_on_test.go). Allocation-count assertions are skipped under
// -race: the instrumentation itself allocates.
const raceEnabled = false
