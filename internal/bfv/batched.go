package bfv

import "fmt"

// This file implements cross-source batched key switching: many
// rotations of DIFFERENT source ciphertexts by the SAME amount,
// executed as one group. Hoisting (evaluator.go, nttops.go) amortizes
// the digit decomposition across rotations of one source; batching is
// the dual — the decomposition is per source and cannot be shared, but
// everything keyed by the Galois element can: the element itself, the
// switching-key fetch, the NTT-domain digit permutation, and the
// coefficient-domain automorphism table are resolved once per group
// (BeginBatchedRotation) and reused by every member.
//
// Each member runs the same decompose → permuted lazy inner product →
// accumulate pipeline as the corresponding serial rotation path
// (RotateRowsInto / RotateRowsIntoNTT / RotateRowsNTTIntoNTT), so a
// batched member's output is bit-identical to the serial rotation of
// the same ciphertext.

// BatchedRotation holds the shared per-group state of a cross-source
// batched key switch. Zero value is ready; BeginBatchedRotation
// (re)initializes it for a group's rotation amount. It allocates
// nothing: the tables come from the ring's per-element caches.
type BatchedRotation struct {
	g       uint64
	key     *switchingKey
	perm    []uint32 // NTT-domain digit permutation (ring.NTTPermutation)
	autoTab []uint32 // coefficient-domain automorphism table (ring.AutomorphismTable)
}

// BeginBatchedRotation resolves the state shared by every member of a
// batched rotation group: the Galois element of k, its switching key,
// and both automorphism tables. Fails if the evaluator holds no Galois
// key for the element (unless the rotation is the identity).
func (ev *Evaluator) BeginBatchedRotation(br *BatchedRotation, k int) error {
	r := ev.params.ringQ
	g := r.GaloisElementForRotation(k)
	br.g, br.key, br.perm, br.autoTab = g, nil, nil, nil
	if g == 1 {
		return nil
	}
	if ev.gks == nil || !ev.gks.has(g) {
		return fmt.Errorf("bfv: no Galois key for element %d", g)
	}
	br.key = ev.gks.keys[g]
	br.perm = r.NTTPermutation(g)
	br.autoTab = r.AutomorphismTable(g)
	return nil
}

// RotateRowsBatchedInto rotates one coefficient-domain member of a
// batched group into a coefficient-domain destination: ct's own digits
// are decomposed into dec, then key-switched via the shared-rotation
// path (shared.go) with the group's prefetched key and tables.
// Bit-identical to RotateRowsInto with the group's amount. dst may
// alias ct.
func (ev *Evaluator) RotateRowsBatchedInto(dst, ct *Ciphertext, dec *Decomposition, br *BatchedRotation) error {
	if err := ev.checkDegree("RotateRowsBatched", ct, 1); err != nil {
		return err
	}
	if br.g == 1 {
		ev.copyCiphertextInto(dst, ct)
		return nil
	}
	ev.params.ringQ.DecomposeNTT(dec.d, ct.Value[1])
	dec.c0Set = false
	return ev.RotateRowsSharedInto(dst, ct, dec, br)
}

// RotateRowsBatchedIntoNTT rotates one coefficient-domain member into
// an NTT-resident destination. Bit-identical to RotateRowsIntoNTT.
// dst may alias ct.
func (ev *Evaluator) RotateRowsBatchedIntoNTT(dst, ct *Ciphertext, dec *Decomposition, br *BatchedRotation) error {
	if err := ev.checkDegree("RotateRowsBatchedIntoNTT", ct, 1); err != nil {
		return err
	}
	if br.g == 1 {
		ev.NTTInto(dst, ct)
		return nil
	}
	ev.params.ringQ.DecomposeNTT(dec.d, ct.Value[1])
	dec.c0Set = false
	return ev.RotateRowsSharedIntoNTT(dst, ct, dec, br)
}

// RotateRowsBatchedNTTIntoNTT rotates one NTT-resident member into an
// NTT-resident destination: c1 is inverse-transformed into scratch for
// digit extraction, c0 stays in the evaluation domain. Bit-identical
// to RotateRowsNTTIntoNTT. dst may alias ct.
func (ev *Evaluator) RotateRowsBatchedNTTIntoNTT(dst, ct *Ciphertext, dec *Decomposition, br *BatchedRotation) error {
	if err := ev.checkDegree("RotateRowsBatchedNTTIntoNTT", ct, 1); err != nil {
		return err
	}
	if br.g == 1 {
		ev.copyCiphertextInto(dst, ct)
		return nil
	}
	r := ev.params.ringQ
	c1 := r.GetPolyNoZero()
	r.CopyInto(c1, ct.Value[1])
	r.INTT(c1)
	r.DecomposeNTT(dec.d, c1)
	r.PutPoly(c1)
	dec.c0Set = false
	return ev.RotateRowsSharedNTTIntoNTT(dst, ct, dec, br)
}
