// Package bfv implements the Brakerski/Fan-Vercauteren homomorphic
// encryption scheme over the ring R_Q = Z_Q[X]/(X^N+1): batching
// encoder, key generation (secret, public, relinearization and Galois
// keys), encryption, decryption, and the homomorphic evaluator with
// SIMD add/sub/multiply and slot rotation.
//
// It plays the role Microsoft SEAL v3.5 plays in the Porcupine paper:
// the concrete cryptographic backend that lowered Quill kernels
// execute on. Ciphertext multiplication is textbook-exact: the tensor
// product is computed over the integers in an extended RNS basis and
// scaled by t/Q with correct rounding via CRT reconstruction.
package bfv

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/big"

	"porcupine/internal/mathutil"
	"porcupine/internal/ring"
)

// PlaintextModulus is the plaintext modulus t used throughout this
// repository. 65537 is a Fermat prime with t ≡ 1 (mod 2N) for every
// N ≤ 32768, so batching is available at all supported ring degrees.
const PlaintextModulus uint64 = 65537

// Parameters bundles a BFV parameter set with all precomputed tables.
type Parameters struct {
	N int    // ring degree (power of two)
	T uint64 // plaintext modulus, prime, ≡ 1 mod 2N

	QPrimes []uint64 // RNS basis of the ciphertext modulus Q

	ringQ    *ring.Ring          // R_Q
	ringExt  *ring.Ring          // extended basis for exact tensor products
	extLen   int                 // number of primes in the extended basis
	extender *ring.BasisExtender // pure-RNS Q↔ext conversions for Mul

	q       *big.Int // Q = ∏ QPrimes
	delta   *big.Int // Δ = floor(Q/t)
	deltaQi []uint64 // Δ mod p_i

	secure bool // true when the preset meets the 128-bit HE standard
	name   string
}

// presetSpec describes a named parameter preset.
type presetSpec struct {
	name   string
	n      int
	qBits  int
	qCount int
	secure bool
}

var presets = map[string]presetSpec{
	// PN2048 is for unit tests only: small and fast, NOT 128-bit secure
	// (Q is far above the standard bound for N=2048; it exists to give
	// tests multiplicative depth ≥ 2 at low cost).
	"PN2048": {name: "PN2048", n: 2048, qBits: 40, qCount: 3, secure: false},
	// PN4096: Q ≈ 108 bits ≤ the HE-standard 109-bit bound for N=4096.
	"PN4096": {name: "PN4096", n: 4096, qBits: 36, qCount: 3, secure: true},
	// PN8192: Q ≈ 215 bits ≤ the HE-standard 218-bit bound for N=8192.
	"PN8192": {name: "PN8192", n: 8192, qBits: 43, qCount: 5, secure: true},
}

// NewParametersFromPreset builds one of the named presets: PN2048
// (tests only), PN4096 (128-bit secure, multiplicative depth ≈ 2) or
// PN8192 (128-bit secure, multiplicative depth ≈ 5).
func NewParametersFromPreset(name string) (*Parameters, error) {
	spec, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("bfv: unknown preset %q", name)
	}
	p, err := NewParameters(spec.n, spec.qBits, spec.qCount)
	if err != nil {
		return nil, err
	}
	p.secure = spec.secure
	p.name = spec.name
	return p, nil
}

// NewParameters constructs a BFV parameter set with ring degree n and a
// ciphertext modulus of qCount primes of qBits bits each. The plaintext
// modulus is fixed to PlaintextModulus.
func NewParameters(n, qBits, qCount int) (*Parameters, error) {
	if n < 16 || n > 32768 {
		return nil, fmt.Errorf("bfv: ring degree %d out of supported range [16, 32768]", n)
	}
	qPrimes, err := mathutil.GenerateNTTPrimes(qBits, n, qCount)
	if err != nil {
		return nil, fmt.Errorf("bfv: generating ciphertext primes: %w", err)
	}
	return newParameters(n, qPrimes)
}

func newParameters(n int, qPrimes []uint64) (*Parameters, error) {
	p := &Parameters{N: n, T: PlaintextModulus, QPrimes: qPrimes, name: "custom"}
	var err error
	p.ringQ, err = ring.NewRing(n, qPrimes)
	if err != nil {
		return nil, err
	}

	p.q = new(big.Int).Set(p.ringQ.Modulus())
	p.delta = new(big.Int).Div(p.q, new(big.Int).SetUint64(p.T))
	p.deltaQi = make([]uint64, len(qPrimes))
	var tmp, pb big.Int
	for i, pr := range qPrimes {
		pb.SetUint64(pr)
		tmp.Mod(p.delta, &pb)
		p.deltaQi[i] = tmp.Uint64()
	}

	// Extended basis for exact tensor products: Q primes plus auxiliary
	// primes so that ∏ext > 2·N·Q² (2× margin over the N·Q²/2 bound on
	// centered tensor coefficients). The extended basis is the hot
	// path's working set, so keep it minimal: prefer the widest aux
	// primes whose magnitude still lets the mixed-radix conversions use
	// branch-free lazy Shoup accumulation (sums of up to K-1 products
	// below 2p each must fit in a 64-bit word).
	bound := new(big.Int).Mul(p.q, p.q)
	bound.Mul(bound, big.NewInt(int64(2*n)))
	extPrimes, err := chooseExtBasis(n, qPrimes, bound)
	if err != nil {
		return nil, err
	}
	p.ringExt, err = ring.NewRing(n, extPrimes)
	if err != nil {
		return nil, err
	}
	p.extLen = len(extPrimes)
	p.extender, err = ring.NewBasisExtender(p.ringQ, p.ringExt, p.T)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// SetWorkers bounds the per-operation parallelism of the underlying
// rings (NTT/INTT, pointwise loops and base extension fan out across
// up to w goroutines). w <= 1 means serial execution, the default.
func (p *Parameters) SetWorkers(w int) {
	p.ringQ.SetWorkers(w)
	p.ringExt.SetWorkers(w)
}

// Workers reports the per-operation parallelism currently configured
// on the underlying rings (0 or 1 both mean serial).
func (p *Parameters) Workers() int {
	return p.ringQ.Workers()
}

// chooseExtBasis extends qPrimes with auxiliary NTT primes until the
// product exceeds bound, trying aux bit-sizes from the word-arithmetic
// maximum downward and returning the first (hence smallest-K) basis
// whose largest prime keeps lazy Shoup sums overflow-free. If no
// candidate satisfies the lazy condition, the first assembled basis
// (widest primes, smallest K) is returned; the mixed-radix code then
// falls back to modular sums, which is slower but still exact.
func chooseExtBasis(n int, qPrimes []uint64, bound *big.Int) ([]uint64, error) {
	inQ := make(map[uint64]bool, len(qPrimes))
	maxQ := uint64(0)
	for _, q := range qPrimes {
		inQ[q] = true
		if q > maxQ {
			maxQ = q
		}
	}
	var fallback []uint64
	for bits := mathutil.MaxModulusBits; bits >= 45; bits-- {
		// Generous candidate count; we stop once the product clears bound.
		cand, err := mathutil.GenerateNTTPrimes(bits, n, len(qPrimes)+8)
		if err != nil {
			continue
		}
		ext := append([]uint64(nil), qPrimes...)
		prod := new(big.Int)
		prod.SetUint64(1)
		for _, q := range qPrimes {
			prod.Mul(prod, new(big.Int).SetUint64(q))
		}
		maxP := maxQ
		for _, a := range cand {
			if prod.Cmp(bound) > 0 {
				break
			}
			if inQ[a] {
				continue
			}
			ext = append(ext, a)
			prod.Mul(prod, new(big.Int).SetUint64(a))
			if a > maxP {
				maxP = a
			}
		}
		if prod.Cmp(bound) <= 0 {
			continue // not enough primes at this size
		}
		if fallback == nil {
			fallback = ext
		}
		// Lazy condition: (K-1) products < 2·maxP each must sum within
		// 64 bits.
		k := uint64(len(ext))
		if k >= 2 && maxP <= ^uint64(0)/(2*(k-1)) {
			return ext, nil
		}
	}
	if fallback != nil {
		return fallback, nil
	}
	return nil, fmt.Errorf("bfv: could not assemble extended basis for N=%d", n)
}

// RingQ returns the ciphertext ring R_Q.
func (p *Parameters) RingQ() *ring.Ring { return p.ringQ }

// Q returns the ciphertext modulus as a big integer (do not modify).
func (p *Parameters) Q() *big.Int { return p.q }

// Delta returns Δ = floor(Q/t) (do not modify).
func (p *Parameters) Delta() *big.Int { return p.delta }

// SlotCount returns the number of SIMD slots exposed to Quill programs:
// one batching row of N/2 slots, rotated circularly by RotateRows.
func (p *Parameters) SlotCount() int { return p.N / 2 }

// Secure reports whether the preset satisfies the 128-bit
// HomomorphicEncryption.org standard parameter table.
func (p *Parameters) Secure() bool { return p.secure }

// Name returns the preset name ("custom" for NewParameters).
func (p *Parameters) Name() string { return p.name }

// LogQ returns the bit size of the ciphertext modulus.
func (p *Parameters) LogQ() int { return p.q.BitLen() }

// Plaintext is a degree-N polynomial with coefficients modulo t.
// Obtain one from Encoder.EncodeNew or NewPlaintext.
type Plaintext struct {
	Coeffs []uint64
}

// NewPlaintext allocates a zero plaintext for the parameter set.
func (p *Parameters) NewPlaintext() *Plaintext {
	return &Plaintext{Coeffs: make([]uint64, p.N)}
}

// Ciphertext is a BFV ciphertext: a vector of polynomials in R_Q.
// A fresh ciphertext has two polynomials; multiplication without
// relinearization yields three.
type Ciphertext struct {
	Value []*ring.Poly
}

// Degree returns len(Value) - 1.
func (ct *Ciphertext) Degree() int { return len(ct.Value) - 1 }

// NewCiphertext returns a zero ciphertext of the given degree. Its
// polynomials come from the ring buffer pool; pass ciphertexts that
// are no longer needed to RecycleCiphertext to avoid allocation churn.
func (p *Parameters) NewCiphertext(degree int) *Ciphertext {
	v := make([]*ring.Poly, degree+1)
	for i := range v {
		v[i] = p.ringQ.GetPoly()
	}
	return &Ciphertext{Value: v}
}

// NewCiphertextUninit is NewCiphertext without the zeroing pass: the
// polynomials hold stale pool coefficients. Use only as the output of
// an operation that overwrites every coefficient (all evaluator *Into
// forms do) — never as an accumulator or a value read before written.
func (p *Parameters) NewCiphertextUninit(degree int) *Ciphertext {
	v := make([]*ring.Poly, degree+1)
	for i := range v {
		v[i] = p.ringQ.GetPolyNoZero()
	}
	return &Ciphertext{Value: v}
}

// RecycleCiphertext returns ct's polynomials to the ring buffer pool.
// The caller must not use ct (or aliases of its polynomials) after.
func (p *Parameters) RecycleCiphertext(ct *Ciphertext) {
	for _, v := range ct.Value {
		p.ringQ.PutPoly(v)
	}
	ct.Value = nil
}

// CopyCiphertext returns a deep copy of ct.
func (p *Parameters) CopyCiphertext(ct *Ciphertext) *Ciphertext {
	out := &Ciphertext{Value: make([]*ring.Poly, len(ct.Value))}
	for i, v := range ct.Value {
		out.Value[i] = p.ringQ.GetPolyNoZero()
		p.ringQ.CopyInto(out.Value[i], v)
	}
	return out
}

// CiphertextEqual reports whether two ciphertexts are bit-identical:
// same degree and same residue in every slot of every polynomial. This
// is the differential-testing notion of equality (stricter than equal
// decryptions: the noise must match too).
func (p *Parameters) CiphertextEqual(a, b *Ciphertext) bool {
	if len(a.Value) != len(b.Value) {
		return false
	}
	for i := range a.Value {
		if !p.ringQ.Equal(a.Value[i], b.Value[i]) {
			return false
		}
	}
	return true
}

// Fingerprint returns a 16-byte digest pinning everything plan and
// ciphertext compatibility depends on: the ring degree, the plaintext
// modulus, and the exact RNS basis of Q. Two parameter sets with equal
// fingerprints produce bit-identical ciphertext arithmetic; the wire
// format (internal/wire) embeds the fingerprint and refuses artifacts
// whose parameters do not match it.
func (p *Parameters) Fingerprint() [16]byte {
	buf := binary.LittleEndian.AppendUint64(nil, uint64(p.N))
	buf = binary.LittleEndian.AppendUint64(buf, p.T)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(p.QPrimes)))
	for _, q := range p.QPrimes {
		buf = binary.LittleEndian.AppendUint64(buf, q)
	}
	sum := sha256.Sum256(buf)
	var fp [16]byte
	copy(fp[:], sum[:16])
	return fp
}

// FingerprintHex returns Fingerprint as a hex string (for reports and
// HTTP status endpoints).
func (p *Parameters) FingerprintHex() string {
	fp := p.Fingerprint()
	return hex.EncodeToString(fp[:])
}

// GaloisElement returns the Galois automorphism element implementing a
// slot rotation by step over the batching row.
func (p *Parameters) GaloisElement(step int) uint64 {
	return p.ringQ.GaloisElementForRotation(step)
}
