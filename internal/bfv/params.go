// Package bfv implements the Brakerski/Fan-Vercauteren homomorphic
// encryption scheme over the ring R_Q = Z_Q[X]/(X^N+1): batching
// encoder, key generation (secret, public, relinearization and Galois
// keys), encryption, decryption, and the homomorphic evaluator with
// SIMD add/sub/multiply and slot rotation.
//
// It plays the role Microsoft SEAL v3.5 plays in the Porcupine paper:
// the concrete cryptographic backend that lowered Quill kernels
// execute on. Ciphertext multiplication is textbook-exact: the tensor
// product is computed over the integers in an extended RNS basis and
// scaled by t/Q with correct rounding via CRT reconstruction.
package bfv

import (
	"fmt"
	"math/big"

	"porcupine/internal/mathutil"
	"porcupine/internal/ring"
)

// PlaintextModulus is the plaintext modulus t used throughout this
// repository. 65537 is a Fermat prime with t ≡ 1 (mod 2N) for every
// N ≤ 32768, so batching is available at all supported ring degrees.
const PlaintextModulus uint64 = 65537

// Parameters bundles a BFV parameter set with all precomputed tables.
type Parameters struct {
	N int    // ring degree (power of two)
	T uint64 // plaintext modulus, prime, ≡ 1 mod 2N

	QPrimes []uint64 // RNS basis of the ciphertext modulus Q

	ringQ   *ring.Ring // R_Q
	ringExt *ring.Ring // extended basis for exact tensor products
	extLen  int        // number of primes in the extended basis

	q       *big.Int // Q = ∏ QPrimes
	delta   *big.Int // Δ = floor(Q/t)
	deltaQi []uint64 // Δ mod p_i

	secure bool // true when the preset meets the 128-bit HE standard
	name   string
}

// presetSpec describes a named parameter preset.
type presetSpec struct {
	name   string
	n      int
	qBits  int
	qCount int
	secure bool
}

var presets = map[string]presetSpec{
	// PN2048 is for unit tests only: small and fast, NOT 128-bit secure
	// (Q is far above the standard bound for N=2048; it exists to give
	// tests multiplicative depth ≥ 2 at low cost).
	"PN2048": {name: "PN2048", n: 2048, qBits: 40, qCount: 3, secure: false},
	// PN4096: Q ≈ 108 bits ≤ the HE-standard 109-bit bound for N=4096.
	"PN4096": {name: "PN4096", n: 4096, qBits: 36, qCount: 3, secure: true},
	// PN8192: Q ≈ 215 bits ≤ the HE-standard 218-bit bound for N=8192.
	"PN8192": {name: "PN8192", n: 8192, qBits: 43, qCount: 5, secure: true},
}

// NewParametersFromPreset builds one of the named presets: PN2048
// (tests only), PN4096 (128-bit secure, multiplicative depth ≈ 2) or
// PN8192 (128-bit secure, multiplicative depth ≈ 5).
func NewParametersFromPreset(name string) (*Parameters, error) {
	spec, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("bfv: unknown preset %q", name)
	}
	p, err := NewParameters(spec.n, spec.qBits, spec.qCount)
	if err != nil {
		return nil, err
	}
	p.secure = spec.secure
	p.name = spec.name
	return p, nil
}

// NewParameters constructs a BFV parameter set with ring degree n and a
// ciphertext modulus of qCount primes of qBits bits each. The plaintext
// modulus is fixed to PlaintextModulus.
func NewParameters(n, qBits, qCount int) (*Parameters, error) {
	if n < 16 || n > 32768 {
		return nil, fmt.Errorf("bfv: ring degree %d out of supported range [16, 32768]", n)
	}
	qPrimes, err := mathutil.GenerateNTTPrimes(qBits, n, qCount)
	if err != nil {
		return nil, fmt.Errorf("bfv: generating ciphertext primes: %w", err)
	}
	return newParameters(n, qPrimes)
}

func newParameters(n int, qPrimes []uint64) (*Parameters, error) {
	p := &Parameters{N: n, T: PlaintextModulus, QPrimes: qPrimes, name: "custom"}
	var err error
	p.ringQ, err = ring.NewRing(n, qPrimes)
	if err != nil {
		return nil, err
	}

	p.q = new(big.Int).Set(p.ringQ.Modulus())
	p.delta = new(big.Int).Div(p.q, new(big.Int).SetUint64(p.T))
	p.deltaQi = make([]uint64, len(qPrimes))
	var tmp, pb big.Int
	for i, pr := range qPrimes {
		pb.SetUint64(pr)
		tmp.Mod(p.delta, &pb)
		p.deltaQi[i] = tmp.Uint64()
	}

	// Extended basis for exact tensor products: Q primes plus enough
	// 52-bit auxiliary primes so that ∏ext > 4·N·Q² (margin over the
	// N·Q²/2 bound on centered tensor coefficients).
	bound := new(big.Int).Mul(p.q, p.q)
	bound.Mul(bound, big.NewInt(int64(4*n)))
	auxNeed := 0
	prod := new(big.Int).Set(p.q)
	for prod.Cmp(bound) <= 0 {
		auxNeed++
		prod.Mul(prod, new(big.Int).Lsh(big.NewInt(1), 51))
	}
	aux, err := mathutil.GenerateNTTPrimes(52, n, auxNeed+2)
	if err != nil {
		return nil, fmt.Errorf("bfv: generating auxiliary primes: %w", err)
	}
	extPrimes := append([]uint64(nil), qPrimes...)
	inQ := make(map[uint64]bool, len(qPrimes))
	for _, q := range qPrimes {
		inQ[q] = true
	}
	added := 0
	for _, a := range aux {
		if added == auxNeed {
			break
		}
		if !inQ[a] {
			extPrimes = append(extPrimes, a)
			added++
		}
	}
	if added < auxNeed {
		return nil, fmt.Errorf("bfv: could not assemble extended basis (%d/%d aux primes)", added, auxNeed)
	}
	p.ringExt, err = ring.NewRing(n, extPrimes)
	if err != nil {
		return nil, err
	}
	p.extLen = len(extPrimes)
	return p, nil
}

// RingQ returns the ciphertext ring R_Q.
func (p *Parameters) RingQ() *ring.Ring { return p.ringQ }

// Q returns the ciphertext modulus as a big integer (do not modify).
func (p *Parameters) Q() *big.Int { return p.q }

// Delta returns Δ = floor(Q/t) (do not modify).
func (p *Parameters) Delta() *big.Int { return p.delta }

// SlotCount returns the number of SIMD slots exposed to Quill programs:
// one batching row of N/2 slots, rotated circularly by RotateRows.
func (p *Parameters) SlotCount() int { return p.N / 2 }

// Secure reports whether the preset satisfies the 128-bit
// HomomorphicEncryption.org standard parameter table.
func (p *Parameters) Secure() bool { return p.secure }

// Name returns the preset name ("custom" for NewParameters).
func (p *Parameters) Name() string { return p.name }

// LogQ returns the bit size of the ciphertext modulus.
func (p *Parameters) LogQ() int { return p.q.BitLen() }

// Plaintext is a degree-N polynomial with coefficients modulo t.
// Obtain one from Encoder.EncodeNew or NewPlaintext.
type Plaintext struct {
	Coeffs []uint64
}

// NewPlaintext allocates a zero plaintext for the parameter set.
func (p *Parameters) NewPlaintext() *Plaintext {
	return &Plaintext{Coeffs: make([]uint64, p.N)}
}

// Ciphertext is a BFV ciphertext: a vector of polynomials in R_Q.
// A fresh ciphertext has two polynomials; multiplication without
// relinearization yields three.
type Ciphertext struct {
	Value []*ring.Poly
}

// Degree returns len(Value) - 1.
func (ct *Ciphertext) Degree() int { return len(ct.Value) - 1 }

// NewCiphertext allocates a zero ciphertext of the given degree.
func (p *Parameters) NewCiphertext(degree int) *Ciphertext {
	v := make([]*ring.Poly, degree+1)
	for i := range v {
		v[i] = p.ringQ.NewPoly()
	}
	return &Ciphertext{Value: v}
}

// CopyCiphertext returns a deep copy of ct.
func (p *Parameters) CopyCiphertext(ct *Ciphertext) *Ciphertext {
	out := &Ciphertext{Value: make([]*ring.Poly, len(ct.Value))}
	for i, v := range ct.Value {
		out.Value[i] = p.ringQ.Copy(v)
	}
	return out
}
