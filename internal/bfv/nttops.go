package bfv

import (
	"fmt"

	"porcupine/internal/ring"
)

// This file implements NTT-resident ciphertext evaluation: the
// primitives behind the planner's domain-assignment pass
// (internal/plan). A degree-1 ciphertext is "NTT-resident" when both
// of its polynomials are stored in the evaluation domain. Additions
// and subtractions are domain-agnostic (AddInto/SubInto work on
// NTT-resident operands unchanged); this file supplies the pieces
// that are not:
//
//   - NTTPlaintext: a plaintext operand pre-transformed into the
//     evaluation domain (NTT(lift(m)) for multiplication, NTT(Δ·m)
//     for addition), prepared once per plan or per run instead of
//     per call;
//   - prepared plaintext multiplication in all four domain
//     combinations (coeff/NTT source × coeff/NTT destination);
//   - rotations with an NTT-resident source and/or destination. The
//     key-switching inner products already live in the NTT domain
//     (f0, f1 in galoisFromDecomp), so an NTT destination SKIPS the
//     two inverse NTTs and instead permutes the source's c0 in the
//     evaluation domain (AutomorphismNTT) — at most one forward NTT
//     per source, shared across a hoisted fan;
//   - explicit domain conversions (NTTInto / INTTInto) for the
//     plan's OpNTT / OpINTT steps.
//
// Every NTT-domain form is the exact conjugate of its coefficient
// counterpart under the ring's fully-normalizing NTT (outputs land in
// [0, p) canonically), so converting an NTT-resident result back to
// the coefficient domain reproduces the legacy path bit for bit —
// the property the plan differential tests pin down.

// NTTPlaintext is a plaintext operand held in the evaluation domain,
// ready for pointwise use against NTT-domain ciphertext rows. The
// payload depends on the operation it was prepared for: SetMulPlainNTT
// stores NTT(lift(m)) (multiplication), SetAddPlainNTT stores
// NTT(Δ·m) (addition/subtraction). Immutable between Set calls; safe
// to share read-only across sessions.
type NTTPlaintext struct {
	p *ring.Poly
}

// NewNTTPlaintext allocates an empty evaluation-domain plaintext
// buffer (fill it with SetMulPlainNTT or SetAddPlainNTT).
func (p *Parameters) NewNTTPlaintext() *NTTPlaintext {
	return &NTTPlaintext{p: p.ringQ.NewPoly()}
}

// SetMulPlainNTT fills dst with NTT(lift(m)): the multiplication
// operand MulPlainInto recomputes on every call, hoisted so prepared
// plans pay it once per constant (plan time) or once per run
// (plaintext inputs).
func (p *Parameters) SetMulPlainNTT(dst *NTTPlaintext, pt *Plaintext) {
	liftPlaintext(p, dst.p, pt)
	p.ringQ.NTT(dst.p)
}

// SetAddPlainNTT fills dst with NTT(Δ·m): the addition operand for
// NTT-resident destinations.
func (p *Parameters) SetAddPlainNTT(dst *NTTPlaintext, pt *Plaintext) {
	deltaTimesPlaintext(p, dst.p, pt)
	p.ringQ.NTT(dst.p)
}

// NewMulPlainNTT allocates and fills a multiplication operand.
func (p *Parameters) NewMulPlainNTT(pt *Plaintext) *NTTPlaintext {
	d := p.NewNTTPlaintext()
	p.SetMulPlainNTT(d, pt)
	return d
}

// NewAddPlainNTT allocates and fills an addition operand.
func (p *Parameters) NewAddPlainNTT(pt *Plaintext) *NTTPlaintext {
	d := p.NewNTTPlaintext()
	p.SetAddPlainNTT(d, pt)
	return d
}

// NTTInto sets dst to the NTT-resident form of the coefficient-domain
// ct (every polynomial forward-transformed). dst may alias ct.
func (ev *Evaluator) NTTInto(dst, ct *Ciphertext) {
	r := ev.params.ringQ
	ctV := ct.Value
	ev.resize(dst, len(ctV)-1)
	for i := range ctV {
		if dst.Value[i] != ctV[i] {
			r.CopyInto(dst.Value[i], ctV[i])
		}
		r.NTT(dst.Value[i])
	}
}

// INTTInto sets dst to the coefficient-domain form of the
// NTT-resident ct. dst may alias ct.
func (ev *Evaluator) INTTInto(dst, ct *Ciphertext) {
	r := ev.params.ringQ
	ctV := ct.Value
	ev.resize(dst, len(ctV)-1)
	for i := range ctV {
		if dst.Value[i] != ctV[i] {
			r.CopyInto(dst.Value[i], ctV[i])
		}
		r.INTT(dst.Value[i])
	}
}

// mulPlainPrepared is the shared core of the four prepared-plaintext
// multiplication variants: transform each source row in only when the
// source is coefficient-resident, multiply pointwise against the
// prepared operand, transform out only when the destination is
// coefficient-resident. dst may alias ct in every variant.
func (ev *Evaluator) mulPlainPrepared(dst, ct *Ciphertext, m *NTTPlaintext, srcNTT, dstNTT bool) {
	r := ev.params.ringQ
	ctV := ct.Value
	ev.resize(dst, len(ctV)-1)
	for i := range ctV {
		di := dst.Value[i]
		if srcNTT {
			r.MulCoeffs(di, ctV[i], m.p)
		} else {
			if di != ctV[i] {
				r.CopyInto(di, ctV[i])
			}
			r.NTT(di)
			r.MulCoeffs(di, di, m.p)
		}
		if !dstNTT {
			r.INTT(di)
		}
	}
}

// MulPlainPreparedInto sets dst = ct · m for coefficient-domain ct and
// dst, with the plaintext operand m prepared once (SetMulPlainNTT)
// instead of per call — bit-identical to MulPlainInto on the raw
// plaintext, minus its per-call forward NTT of the operand.
func (ev *Evaluator) MulPlainPreparedInto(dst, ct *Ciphertext, m *NTTPlaintext) {
	ev.mulPlainPrepared(dst, ct, m, false, false)
}

// MulPlainPreparedIntoNTT sets dst = ct · m, coefficient-domain ct,
// NTT-resident dst (the inverse transforms are skipped).
func (ev *Evaluator) MulPlainPreparedIntoNTT(dst, ct *Ciphertext, m *NTTPlaintext) {
	ev.mulPlainPrepared(dst, ct, m, false, true)
}

// MulPlainNTTInto sets dst = ct · m, NTT-resident ct, coefficient
// dst.
func (ev *Evaluator) MulPlainNTTInto(dst, ct *Ciphertext, m *NTTPlaintext) {
	ev.mulPlainPrepared(dst, ct, m, true, false)
}

// MulPlainNTTIntoNTT sets dst = ct · m with both sides NTT-resident:
// a pure pointwise product, no transforms at all.
func (ev *Evaluator) MulPlainNTTIntoNTT(dst, ct *Ciphertext, m *NTTPlaintext) {
	ev.mulPlainPrepared(dst, ct, m, true, true)
}

// AddPlainNTTIntoNTT sets dst = ct + pt for NTT-resident ct and dst,
// with m holding NTT(Δ·pt) (SetAddPlainNTT). dst may alias ct.
func (ev *Evaluator) AddPlainNTTIntoNTT(dst, ct *Ciphertext, m *NTTPlaintext) {
	ev.copyCiphertextInto(dst, ct)
	ev.params.ringQ.Add(dst.Value[0], dst.Value[0], m.p)
}

// SubPlainNTTIntoNTT sets dst = ct - pt for NTT-resident ct and dst.
// dst may alias ct.
func (ev *Evaluator) SubPlainNTTIntoNTT(dst, ct *Ciphertext, m *NTTPlaintext) {
	ev.copyCiphertextInto(dst, ct)
	ev.params.ringQ.Sub(dst.Value[0], dst.Value[0], m.p)
}

// galoisFromDecompToNTT is the NTT-destination half of galoisFromDecomp:
// the key-switching inner products f0, f1 are already NTT-resident, so
// instead of inverse-transforming them it permutes the source's
// evaluation-domain c0 (c0NTT) and accumulates entirely in the NTT
// domain. dst may alias the ciphertext that produced c0NTT and dec.
func (ev *Evaluator) galoisFromDecompToNTT(dst *Ciphertext, c0NTT *ring.Poly, dec *ring.Decomposition, key *switchingKey, g uint64) {
	ev.galoisFromDecompToNTTPerm(dst, c0NTT, dec, key, ev.params.ringQ.NTTPermutation(g))
}

// galoisFromDecompToNTTPerm is galoisFromDecompToNTT with the NTT
// permutation table resolved by the caller (see
// galoisFromDecompTables).
func (ev *Evaluator) galoisFromDecompToNTTPerm(dst *Ciphertext, c0NTT *ring.Poly, dec *ring.Decomposition, key *switchingKey, perm []uint32) {
	r := ev.params.ringQ
	f0, f1 := r.GetPolyNoZero(), r.GetPolyNoZero()
	r.PermutedMulAccumLazy(f0, dec.Digits, key.B, perm)
	r.PermutedMulAccumLazy(f1, dec.Digits, key.A, perm)
	c0g := r.GetPolyNoZero()
	r.AutomorphismNTTWithTable(c0g, c0NTT, perm)
	ev.resize(dst, 1)
	r.Add(dst.Value[0], c0g, f0)
	r.CopyInto(dst.Value[1], f1)
	r.PutPoly(c0g)
	r.PutPoly(f0)
	r.PutPoly(f1)
}

// DecomposeForKeySwitchNTT is DecomposeForKeySwitch for an
// NTT-resident ct: its c1 is inverse-transformed into scratch first
// (digit extraction is a coefficient-wise residue computation). After
// this call, RotateRowsHoistedNTTIntoNTT rotates ct any number of
// times.
func (ev *Evaluator) DecomposeForKeySwitchNTT(dec *Decomposition, ct *Ciphertext) error {
	if ct.Degree() != 1 {
		return fmt.Errorf("bfv: DecomposeForKeySwitchNTT: ciphertext degree %d, want 1", ct.Degree())
	}
	r := ev.params.ringQ
	c1 := r.GetPolyNoZero()
	r.CopyInto(c1, ct.Value[1])
	r.INTT(c1)
	r.DecomposeNTT(dec.d, c1)
	r.PutPoly(c1)
	dec.c0Set = false
	return nil
}

// RotateRowsHoistedIntoNTT is RotateRowsHoistedInto with an
// NTT-resident destination: the coefficient-domain source's c0 is
// forward-transformed once per decomposition (cached on dec and shared
// by every NTT-destined rotation of the fan), after which each
// rotation costs zero external transforms — versus two inverse NTTs
// on the coefficient path. INTTInto(dst) reproduces the coefficient
// result bit for bit. dst may alias ct.
func (ev *Evaluator) RotateRowsHoistedIntoNTT(dst, ct *Ciphertext, dec *Decomposition, k int) error {
	if err := ev.checkDegree("RotateRowsHoistedIntoNTT", ct, 1); err != nil {
		return err
	}
	r := ev.params.ringQ
	g := r.GaloisElementForRotation(k)
	if g == 1 {
		ev.NTTInto(dst, ct)
		return nil
	}
	if ev.gks == nil || !ev.gks.has(g) {
		return fmt.Errorf("bfv: no Galois key for element %d", g)
	}
	if !dec.c0Set {
		r.CopyInto(dec.c0NTT, ct.Value[0])
		r.NTT(dec.c0NTT)
		dec.c0Set = true
	}
	ev.galoisFromDecompToNTT(dst, dec.c0NTT, dec.d, ev.gks.keys[g], g)
	return nil
}

// RotateRowsHoistedNTTIntoNTT rotates an NTT-resident source into an
// NTT-resident destination using a decomposition from
// DecomposeForKeySwitchNTT. The source's c0 is already in the
// evaluation domain, so the rotation itself performs no transforms.
// dst may alias ct.
func (ev *Evaluator) RotateRowsHoistedNTTIntoNTT(dst, ct *Ciphertext, dec *Decomposition, k int) error {
	if err := ev.checkDegree("RotateRowsHoistedNTTIntoNTT", ct, 1); err != nil {
		return err
	}
	g := ev.params.ringQ.GaloisElementForRotation(k)
	if g == 1 {
		ev.copyCiphertextInto(dst, ct)
		return nil
	}
	if ev.gks == nil || !ev.gks.has(g) {
		return fmt.Errorf("bfv: no Galois key for element %d", g)
	}
	ev.galoisFromDecompToNTT(dst, ct.Value[0], dec.d, ev.gks.keys[g], g)
	return nil
}

// RotateRowsIntoNTT is the serial (non-hoisted) rotation from a
// coefficient-domain source into an NTT-resident destination: one
// forward NTT of c0 instead of two inverse NTTs of the inner
// products. dst may alias ct.
func (ev *Evaluator) RotateRowsIntoNTT(dst, ct *Ciphertext, k int) error {
	if err := ev.checkDegree("RotateRowsIntoNTT", ct, 1); err != nil {
		return err
	}
	r := ev.params.ringQ
	g := r.GaloisElementForRotation(k)
	if g == 1 {
		ev.NTTInto(dst, ct)
		return nil
	}
	if ev.gks == nil || !ev.gks.has(g) {
		return fmt.Errorf("bfv: no Galois key for element %d", g)
	}
	dec := r.GetDecomposition()
	r.DecomposeNTT(dec, ct.Value[1])
	c0N := r.GetPolyNoZero()
	r.CopyInto(c0N, ct.Value[0])
	r.NTT(c0N)
	ev.galoisFromDecompToNTT(dst, c0N, dec, ev.gks.keys[g], g)
	r.PutPoly(c0N)
	r.PutDecomposition(dec)
	return nil
}

// RotateRowsNTTIntoNTT is the serial rotation of an NTT-resident
// source into an NTT-resident destination: one inverse NTT of c1 (the
// digit extraction needs coefficients), zero transforms on the output
// side. dst may alias ct.
func (ev *Evaluator) RotateRowsNTTIntoNTT(dst, ct *Ciphertext, k int) error {
	if err := ev.checkDegree("RotateRowsNTTIntoNTT", ct, 1); err != nil {
		return err
	}
	r := ev.params.ringQ
	g := r.GaloisElementForRotation(k)
	if g == 1 {
		ev.copyCiphertextInto(dst, ct)
		return nil
	}
	if ev.gks == nil || !ev.gks.has(g) {
		return fmt.Errorf("bfv: no Galois key for element %d", g)
	}
	c1 := r.GetPolyNoZero()
	r.CopyInto(c1, ct.Value[1])
	r.INTT(c1)
	dec := r.GetDecomposition()
	r.DecomposeNTT(dec, c1)
	r.PutPoly(c1)
	ev.galoisFromDecompToNTT(dst, ct.Value[0], dec, ev.gks.keys[g], g)
	r.PutDecomposition(dec)
	return nil
}
