package bfv

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testContext bundles everything needed for scheme tests.
type testContext struct {
	params *Parameters
	enc    *Encoder
	kg     *KeyGenerator
	sk     *SecretKey
	pk     *PublicKey
	rlk    *RelinearizationKey
	gks    *GaloisKeys
	encr   *Encryptor
	dec    *Decryptor
	ev     *Evaluator
}

func newTestContext(t testing.TB, steps []int) *testContext {
	t.Helper()
	params, err := NewParametersFromPreset("PN2048")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	kg := NewTestKeyGenerator(params, 7)
	sk, err := kg.GenSecretKey()
	if err != nil {
		t.Fatal(err)
	}
	pk, err := kg.GenPublicKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	rlk, err := kg.GenRelinearizationKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	gks, err := kg.GenGaloisKeys(sk, steps)
	if err != nil {
		t.Fatal(err)
	}
	return &testContext{
		params: params, enc: enc, kg: kg, sk: sk, pk: pk, rlk: rlk, gks: gks,
		encr: NewTestEncryptor(params, pk, 8),
		dec:  NewDecryptor(params, sk),
		ev:   NewEvaluator(params, rlk, gks),
	}
}

func randVec(rng *rand.Rand, n int, max uint64) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = rng.Uint64() % max
	}
	return v
}

func (tc *testContext) encryptVec(t testing.TB, v []uint64) *Ciphertext {
	t.Helper()
	pt, err := tc.enc.EncodeNew(v)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tc.encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func (tc *testContext) decryptVec(ct *Ciphertext) []uint64 {
	return tc.enc.Decode(tc.dec.Decrypt(ct))
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		v := randVec(rng, tc.enc.SlotCount(), tc.params.T)
		pt, err := tc.enc.EncodeNew(v)
		if err != nil {
			t.Fatal(err)
		}
		got := tc.enc.Decode(pt)
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("slot %d: got %d want %d", i, got[i], v[i])
			}
		}
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	tc := newTestContext(t, nil)
	pt := tc.params.NewPlaintext()
	if err := tc.enc.Encode(make([]uint64, tc.enc.SlotCount()+1), pt); err == nil {
		t.Error("oversized vector should fail")
	}
	if err := tc.enc.Encode([]uint64{tc.params.T}, pt); err == nil {
		t.Error("unreduced value should fail")
	}
}

func TestEncodeIntSigned(t *testing.T) {
	tc := newTestContext(t, nil)
	pt := tc.params.NewPlaintext()
	if err := tc.enc.EncodeInt([]int64{-1, -7, 5, 0}, pt); err != nil {
		t.Fatal(err)
	}
	got := tc.enc.DecodeInt(pt)
	want := []int64{-1, -7, 5, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(2))
	v := randVec(rng, tc.enc.SlotCount(), tc.params.T)
	ct := tc.encryptVec(t, v)
	got := tc.decryptVec(ct)
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], v[i])
		}
	}
	if budget := tc.dec.NoiseBudget(ct); budget < 20 {
		t.Errorf("fresh noise budget %.1f suspiciously low", budget)
	}
}

func TestHomomorphicAddSub(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(3))
	n := 64
	a := randVec(rng, n, tc.params.T)
	b := randVec(rng, n, tc.params.T)
	cta, ctb := tc.encryptVec(t, a), tc.encryptVec(t, b)
	sum := tc.decryptVec(tc.ev.Add(cta, ctb))
	diff := tc.decryptVec(tc.ev.Sub(cta, ctb))
	neg := tc.decryptVec(tc.ev.Neg(cta))
	tMod := tc.params.T
	for i := 0; i < n; i++ {
		if sum[i] != (a[i]+b[i])%tMod {
			t.Fatalf("add slot %d: got %d want %d", i, sum[i], (a[i]+b[i])%tMod)
		}
		if diff[i] != (a[i]+tMod-b[i])%tMod {
			t.Fatalf("sub slot %d wrong", i)
		}
		if neg[i] != (tMod-a[i])%tMod {
			t.Fatalf("neg slot %d wrong", i)
		}
	}
}

func TestHomomorphicPlainOps(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(4))
	n := 64
	a := randVec(rng, n, tc.params.T)
	b := randVec(rng, n, 100)
	ct := tc.encryptVec(t, a)
	pt, err := tc.enc.EncodeNew(b)
	if err != nil {
		t.Fatal(err)
	}
	tMod := tc.params.T
	sum := tc.decryptVec(tc.ev.AddPlain(ct, pt))
	diff := tc.decryptVec(tc.ev.SubPlain(ct, pt))
	rdiff := tc.decryptVec(tc.ev.PlainSub(pt, ct))
	prod := tc.decryptVec(tc.ev.MulPlain(ct, pt))
	for i := 0; i < n; i++ {
		if sum[i] != (a[i]+b[i])%tMod {
			t.Fatalf("addplain slot %d wrong", i)
		}
		if diff[i] != (a[i]+tMod-b[i])%tMod {
			t.Fatalf("subplain slot %d wrong", i)
		}
		if rdiff[i] != (b[i]+tMod-a[i])%tMod {
			t.Fatalf("plainsub slot %d wrong", i)
		}
		if prod[i] != a[i]*b[i]%tMod {
			t.Fatalf("mulplain slot %d: got %d want %d", i, prod[i], a[i]*b[i]%tMod)
		}
	}
}

func TestHomomorphicMulRelin(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(5))
	n := 64
	a := randVec(rng, n, 256)
	b := randVec(rng, n, 256)
	cta, ctb := tc.encryptVec(t, a), tc.encryptVec(t, b)
	ctMul, err := tc.ev.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	if ctMul.Degree() != 2 {
		t.Fatalf("tensor degree = %d, want 2", ctMul.Degree())
	}
	// Degree-2 decryption must already be correct.
	got2 := tc.decryptVec(ctMul)
	tMod := tc.params.T
	for i := 0; i < n; i++ {
		if got2[i] != a[i]*b[i]%tMod {
			t.Fatalf("degree-2 mul slot %d: got %d want %d", i, got2[i], a[i]*b[i]%tMod)
		}
	}
	ctRelin, err := tc.ev.Relinearize(ctMul)
	if err != nil {
		t.Fatal(err)
	}
	if ctRelin.Degree() != 1 {
		t.Fatalf("relinearized degree = %d", ctRelin.Degree())
	}
	got := tc.decryptVec(ctRelin)
	for i := 0; i < n; i++ {
		if got[i] != a[i]*b[i]%tMod {
			t.Fatalf("relin mul slot %d: got %d want %d", i, got[i], a[i]*b[i]%tMod)
		}
	}
	if budget := tc.dec.NoiseBudget(ctRelin); budget <= 0 {
		t.Error("noise budget exhausted after one multiplication")
	}
}

func TestRotateRows(t *testing.T) {
	tc := newTestContext(t, []int{1, 2, -1, 5})
	slots := tc.enc.SlotCount()
	v := make([]uint64, slots)
	for i := range v {
		v[i] = uint64(i % 1000)
	}
	ct := tc.encryptVec(t, v)
	for _, k := range []int{1, 2, -1, 5} {
		rot, err := tc.ev.RotateRows(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		got := tc.decryptVec(rot)
		for i := 0; i < slots; i++ {
			src := ((i+k)%slots + slots) % slots
			if got[i] != v[src] {
				t.Fatalf("rotate %d: slot %d got %d want %d (left-rotation convention)", k, i, got[i], v[src])
			}
		}
	}
	// Rotation by 0 is identity and needs no key.
	rot0, err := tc.ev.RotateRows(ct, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.decryptVec(rot0)
	for i := range v {
		if got[i] != v[i] {
			t.Fatal("rotation by 0 not identity")
		}
	}
}

func TestRotateMissingKey(t *testing.T) {
	tc := newTestContext(t, []int{1})
	ct := tc.encryptVec(t, []uint64{1, 2, 3})
	if _, err := tc.ev.RotateRows(ct, 3); err == nil {
		t.Error("rotation without key should fail")
	}
	ev := NewEvaluator(tc.params, nil, nil)
	if _, err := ev.RotateRows(ct, 1); err == nil {
		t.Error("rotation with nil keys should fail")
	}
	ctM, _ := tc.ev.Mul(ct, ct)
	if _, err := ev.Relinearize(ctM); err == nil {
		t.Error("relinearize with nil key should fail")
	}
}

func TestRotateColumns(t *testing.T) {
	tc := newTestContext(t, nil)
	if err := tc.kg.GenGaloisKeysForElements(tc.sk, tc.gks, []uint64{tc.params.ringQ.GaloisElementRowSwap()}); err != nil {
		t.Fatal(err)
	}
	v := []uint64{10, 20, 30}
	ct := tc.encryptVec(t, v)
	swapped, err := tc.ev.RotateColumns(ct)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 held v, row 1 held zeros; after the swap row 0 is zero.
	got := tc.decryptVec(swapped)
	for i := 0; i < 3; i++ {
		if got[i] != 0 {
			t.Fatalf("after row swap slot %d = %d, want 0", i, got[i])
		}
	}
	// Swapping twice is the identity.
	back, err := tc.ev.RotateColumns(swapped)
	if err != nil {
		t.Fatal(err)
	}
	got = tc.decryptVec(back)
	for i := range v {
		if got[i] != v[i] {
			t.Fatal("double row swap not identity")
		}
	}
}

func TestDepthTwoMultiplication(t *testing.T) {
	tc := newTestContext(t, nil)
	a := []uint64{3, 5, 7}
	ct := tc.encryptVec(t, a)
	sq, err := tc.ev.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := tc.ev.MulRelin(sq, sq)
	if err != nil {
		t.Fatal(err)
	}
	budget := tc.dec.NoiseBudget(quad)
	if budget <= 0 {
		t.Fatalf("budget exhausted at depth 2 on PN2048 (budget=%.1f)", budget)
	}
	got := tc.decryptVec(quad)
	tMod := tc.params.T
	for i, v := range a {
		want := v * v % tMod
		want = want * want % tMod
		if got[i] != want {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want)
		}
	}
}

func TestNoiseBudgetDecreasesMonotonically(t *testing.T) {
	tc := newTestContext(t, []int{1})
	ct := tc.encryptVec(t, []uint64{1, 2, 3, 4})
	b0 := tc.dec.NoiseBudget(ct)
	ctRot, err := tc.ev.RotateRows(ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	b1 := tc.dec.NoiseBudget(ctRot)
	ctMul, err := tc.ev.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	b2 := tc.dec.NoiseBudget(ctMul)
	if b1 > b0 {
		t.Errorf("rotation increased budget: %.1f -> %.1f", b0, b1)
	}
	if b2 > b0-5 {
		t.Errorf("multiplication consumed almost no budget: fresh %.1f, mul %.1f", b0, b2)
	}
}

func TestAddHomomorphismProperty(t *testing.T) {
	tc := newTestContext(t, nil)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16
		a := randVec(rng, n, tc.params.T)
		b := randVec(rng, n, tc.params.T)
		got := tc.decryptVec(tc.ev.Add(tc.encryptVec(t, a), tc.encryptVec(t, b)))
		for i := 0; i < n; i++ {
			if got[i] != (a[i]+b[i])%tc.params.T {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestParameterPresets(t *testing.T) {
	for name, wantSecure := range map[string]bool{"PN2048": false, "PN4096": true, "PN8192": true} {
		p, err := NewParametersFromPreset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Secure() != wantSecure {
			t.Errorf("%s: secure = %v", name, p.Secure())
		}
		if p.Name() != name {
			t.Errorf("%s: name = %s", name, p.Name())
		}
		if p.SlotCount() != p.N/2 {
			t.Errorf("%s: slot count", name)
		}
	}
	if _, err := NewParametersFromPreset("PN123"); err == nil {
		t.Error("unknown preset should fail")
	}
	if _, err := NewParameters(7, 40, 1); err == nil {
		t.Error("bad degree should fail")
	}
	// Security bounds per HE standard: N=4096 allows logQ ≤ 109.
	p4, _ := NewParametersFromPreset("PN4096")
	if p4.LogQ() > 109 {
		t.Errorf("PN4096 logQ = %d exceeds 109-bit standard bound", p4.LogQ())
	}
	p8, _ := NewParametersFromPreset("PN8192")
	if p8.LogQ() > 218 {
		t.Errorf("PN8192 logQ = %d exceeds 218-bit standard bound", p8.LogQ())
	}
}

func TestMulRejectsHighDegree(t *testing.T) {
	tc := newTestContext(t, nil)
	ct := tc.encryptVec(t, []uint64{1})
	d2, err := tc.ev.Mul(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.ev.Mul(d2, ct); err == nil {
		t.Error("Mul on degree-2 input should fail")
	}
	if _, err := tc.ev.RotateRows(d2, 1); err == nil {
		t.Error("rotation of degree-2 ciphertext should fail")
	}
}
