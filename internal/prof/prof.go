// Package prof wires the standard pprof file profiles into the
// benchmark commands (benchrot, benchmux, benchscale): importing it
// registers -cpuprofile/-memprofile on the default flag set, so perf
// investigations run the shipped harnesses under the profiler instead
// of requiring ad-hoc harness edits.
package prof

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpu = flag.String("cpuprofile", "", "write a pprof CPU profile to `file`")
	mem = flag.String("memprofile", "", "write a pprof heap profile to `file` on exit")
)

// Start begins CPU profiling if -cpuprofile was given; call it right
// after flag.Parse. The returned stop function ends the CPU profile
// and writes the heap profile if -memprofile was given — run it once,
// immediately before the process exits normally (a profile from a
// run that died mid-measurement would mislead more than it informs).
func Start() (stop func() error, err error) {
	var cpuF *os.File
	if *cpu != "" {
		if cpuF, err = os.Create(*cpu); err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if *mem != "" {
			f, err := os.Create(*mem)
			if err != nil {
				return err
			}
			defer f.Close()
			// Collect first so the profile shows the steady-state live
			// set, not whatever garbage the last iteration left behind.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
