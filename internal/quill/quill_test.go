package quill

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"porcupine/internal/symbolic"
)

// gxProgram is the paper's synthesized Gx kernel (§4.4 solution):
//
//	c1 = (add-ct-ct (rot-ct c0 -5) c0)
//	c2 = (add-ct-ct (rot-ct c1 5) c1)
//	c3 = (sub-ct-ct (rot-ct c2 1) (rot-ct c2 -1))
func gxProgram() *Program {
	return &Program{
		VecLen:      64,
		NumCtInputs: 1,
		Instrs: []Instr{
			{Op: OpAddCtCt, A: CtRef{ID: 0, Rot: -5}, B: CtRef{ID: 0}},
			{Op: OpAddCtCt, A: CtRef{ID: 1, Rot: 5}, B: CtRef{ID: 1}},
			{Op: OpSubCtCt, A: CtRef{ID: 2, Rot: 1}, B: CtRef{ID: 2, Rot: -1}},
		},
		Output: 3,
	}
}

func TestValidate(t *testing.T) {
	p := gxProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := gxProgram()
	bad.Instrs[0].A.ID = 5
	if err := bad.Validate(); err == nil {
		t.Error("forward reference should fail")
	}
	bad = gxProgram()
	bad.VecLen = 60
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two vector should fail")
	}
	bad = gxProgram()
	bad.Output = 9
	if err := bad.Validate(); err == nil {
		t.Error("undefined output should fail")
	}
	bad = gxProgram()
	bad.Instrs[0].A.Rot = 64
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range rotation should fail")
	}
	bad = gxProgram()
	bad.Instrs[0].Op = OpRotCt
	if err := bad.Validate(); err == nil {
		t.Error("rot-ct in local-rotate form should fail")
	}
	bad = gxProgram()
	bad.NumCtInputs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ct inputs should fail")
	}
	bad = gxProgram()
	bad.Instrs[0] = Instr{Op: OpMulCtPt, A: CtRef{ID: 0}, P: PtRef{Input: 2}}
	if err := bad.Validate(); err == nil {
		t.Error("undefined plaintext input should fail")
	}
	bad = gxProgram()
	bad.Instrs[0] = Instr{Op: OpMulCtPt, A: CtRef{ID: 0}, P: PtRef{Input: -1, Const: []int64{1, 2}}}
	if err := bad.Validate(); err == nil {
		t.Error("bad constant length should fail")
	}
}

func TestLowerGxMatchesPaperCounts(t *testing.T) {
	// Paper Table 2: synthesized Gx has 7 instructions and depth 6
	// (3 arithmetic components + 4 shared rotations).
	l, err := Lower(gxProgram(), DefaultLowerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := l.InstructionCount(); got != 7 {
		t.Errorf("Gx instruction count = %d, want 7\n%s", got, l)
	}
	if got := l.Depth(); got != 6 {
		t.Errorf("Gx depth = %d, want 6\n%s", got, l)
	}
	if got := l.MultDepth(); got != 0 {
		t.Errorf("Gx mult depth = %d, want 0", got)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLowerSharesRotations(t *testing.T) {
	// The same (value, rotation) pair used twice must lower to one
	// rot-ct instruction.
	p := &Program{
		VecLen:      8,
		NumCtInputs: 1,
		Instrs: []Instr{
			{Op: OpAddCtCt, A: CtRef{ID: 0, Rot: 1}, B: CtRef{ID: 0}},
			{Op: OpSubCtCt, A: CtRef{ID: 0, Rot: 1}, B: CtRef{ID: 1}},
		},
		Output: 2,
	}
	l, err := Lower(p, DefaultLowerOptions())
	if err != nil {
		t.Fatal(err)
	}
	rotCount := 0
	for _, in := range l.Instrs {
		if in.Op == OpRotCt {
			rotCount++
		}
	}
	if rotCount != 1 {
		t.Errorf("rotation not shared: %d rot-ct instructions\n%s", rotCount, l)
	}
}

func TestLowerInsertsRelin(t *testing.T) {
	p := &Program{
		VecLen:      8,
		NumCtInputs: 2,
		Instrs:      []Instr{{Op: OpMulCtCt, A: CtRef{ID: 0}, B: CtRef{ID: 1}}},
		Output:      2,
	}
	l, err := Lower(p, DefaultLowerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Instrs) != 2 || l.Instrs[1].Op != OpRelin {
		t.Fatalf("expected mul+relin, got\n%s", l)
	}
	if l.Output != l.Instrs[1].Dst {
		t.Error("output should be the relinearized value")
	}
	l2, err := Lower(p, LowerOptions{InsertRelin: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(l2.Instrs) != 1 {
		t.Error("relin inserted despite being disabled")
	}
	if l.MultDepth() != 1 || l2.MultDepth() != 1 {
		t.Error("mult depth of single multiply should be 1")
	}
}

func TestRunConcrete(t *testing.T) {
	// Gx on a 5x5 image packed row-major: output slot (r,c) (interior)
	// should be the x-gradient sum.
	img := make(Vec, 64)
	vals := [5][5]uint64{}
	rng := rand.New(rand.NewSource(1))
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			v := rng.Uint64() % 100
			vals[r][c] = v
			img[r*5+c] = v
		}
	}
	out, err := Run(gxProgram(), ConcreteSem{}, []Vec{img}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Standard Sobel x-gradient, centered: the paper's synthesized
	// program computes out[r,c] = Σ img[r+dr][c+dc]·filter[dr+1][dc+1].
	filter := [3][3]int64{{-1, 0, 1}, {-2, 0, 2}, {-1, 0, 1}}
	for r := 1; r < 4; r++ {
		for c := 1; c < 4; c++ {
			var want int64
			for kh := 0; kh < 3; kh++ {
				for kw := 0; kw < 3; kw++ {
					want += int64(vals[r+kh-1][c+kw-1]) * filter[kh][kw]
				}
			}
			wantMod := uint64(((want % int64(Modulus)) + int64(Modulus))) % Modulus
			got := out[r*5+c]
			if got != wantMod {
				t.Errorf("slot (%d,%d): got %d want %d", r, c, got, wantMod)
			}
		}
	}
}

func TestRunLoweredAgreesWithRun(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		ctIn := make([]Vec, p.NumCtInputs)
		for i := range ctIn {
			ctIn[i] = randomVec(rng, p.VecLen)
		}
		ptIn := make([]Vec, p.NumPtInputs)
		for i := range ptIn {
			ptIn[i] = randomVec(rng, p.VecLen)
		}
		want, err := Run(p, ConcreteSem{}, ctIn, ptIn)
		if err != nil {
			return false
		}
		l, err := Lower(p, DefaultLowerOptions())
		if err != nil {
			return false
		}
		got, err := RunLowered(l, ConcreteSem{}, ctIn, ptIn)
		if err != nil {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSymbolicAgreesWithConcrete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		// Symbolic inputs: variable per (input, slot).
		varIdx := 0
		ctSym := make([]SymVec, p.NumCtInputs)
		for i := range ctSym {
			ctSym[i] = make(SymVec, p.VecLen)
			for j := range ctSym[i] {
				ctSym[i][j] = symbolic.Var(varIdx)
				varIdx++
			}
		}
		ptSym := make([]SymVec, p.NumPtInputs)
		for i := range ptSym {
			ptSym[i] = make(SymVec, p.VecLen)
			for j := range ptSym[i] {
				ptSym[i][j] = symbolic.Var(varIdx)
				varIdx++
			}
		}
		symOut, err := Run(p, SymbolicSem{}, ctSym, ptSym)
		if err != nil {
			return false
		}
		// Concrete assignment.
		assign := make([]uint64, varIdx)
		for i := range assign {
			assign[i] = rng.Uint64() % Modulus
		}
		ctIn := make([]Vec, p.NumCtInputs)
		k := 0
		for i := range ctIn {
			ctIn[i] = make(Vec, p.VecLen)
			for j := range ctIn[i] {
				ctIn[i][j] = assign[k]
				k++
			}
		}
		ptIn := make([]Vec, p.NumPtInputs)
		for i := range ptIn {
			ptIn[i] = make(Vec, p.VecLen)
			for j := range ptIn[i] {
				ptIn[i][j] = assign[k]
				k++
			}
		}
		concOut, err := Run(p, ConcreteSem{}, ctIn, ptIn)
		if err != nil {
			return false
		}
		for j := range concOut {
			if symOut[j].Eval(assign) != concOut[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// randomProgram builds a small random valid local-rotate program.
func randomProgram(rng *rand.Rand) *Program {
	p := &Program{
		VecLen:      16,
		NumCtInputs: 1 + rng.Intn(2),
		NumPtInputs: rng.Intn(2),
	}
	nInstr := 1 + rng.Intn(5)
	for i := 0; i < nInstr; i++ {
		avail := p.NumCtInputs + i
		ref := func() CtRef {
			return CtRef{ID: rng.Intn(avail), Rot: rng.Intn(9) - 4}
		}
		var in Instr
		switch rng.Intn(6) {
		case 0:
			in = Instr{Op: OpAddCtCt, A: ref(), B: ref()}
		case 1:
			in = Instr{Op: OpSubCtCt, A: ref(), B: ref()}
		case 2:
			in = Instr{Op: OpMulCtCt, A: ref(), B: ref()}
		case 3, 4:
			pt := PtRef{Input: -1, Const: []int64{int64(rng.Intn(7) - 3)}}
			if p.NumPtInputs > 0 && rng.Intn(2) == 0 {
				pt = PtRef{Input: rng.Intn(p.NumPtInputs)}
			}
			in = Instr{Op: OpMulCtPt, A: ref(), P: pt}
		default:
			pt := PtRef{Input: -1, Const: []int64{int64(rng.Intn(7) - 3)}}
			if p.NumPtInputs > 0 && rng.Intn(2) == 0 {
				pt = PtRef{Input: rng.Intn(p.NumPtInputs)}
			}
			in = Instr{Op: OpAddCtPt, A: ref(), P: pt}
		}
		p.Instrs = append(p.Instrs, in)
	}
	p.Output = p.NumValues() - 1
	return p
}

func randomVec(rng *rand.Rand, n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = rng.Uint64() % Modulus
	}
	return v
}

func TestMultDepth(t *testing.T) {
	p := &Program{
		VecLen:      8,
		NumCtInputs: 2,
		Instrs: []Instr{
			{Op: OpMulCtCt, A: CtRef{ID: 0}, B: CtRef{ID: 1}},                        // depth 1
			{Op: OpAddCtCt, A: CtRef{ID: 2}, B: CtRef{ID: 0}},                        // depth 1
			{Op: OpMulCtPt, A: CtRef{ID: 3}, P: PtRef{Input: -1, Const: []int64{2}}}, // depth 2
		},
		Output: 4,
	}
	if d := p.MultDepth(); d != 2 {
		t.Errorf("mult depth = %d, want 2", d)
	}
}

func TestCostModel(t *testing.T) {
	cm := DefaultCostModel()
	l, err := Lower(gxProgram(), DefaultLowerOptions())
	if err != nil {
		t.Fatal(err)
	}
	lat := cm.ProgramLatency(l)
	want := 4*cm.Latency[OpRotCt] + 2*cm.Latency[OpAddCtCt] + cm.Latency[OpSubCtCt]
	if lat != want {
		t.Errorf("latency = %v, want %v", lat, want)
	}
	if cm.Cost(l) != lat {
		t.Errorf("cost of depth-0 program should equal latency")
	}
	// A program with one multiply doubles the cost factor.
	p := &Program{VecLen: 8, NumCtInputs: 2,
		Instrs: []Instr{{Op: OpMulCtCt, A: CtRef{ID: 0}, B: CtRef{ID: 1}}}, Output: 2}
	lm, _ := Lower(p, DefaultLowerOptions())
	wantCost := (cm.Latency[OpMulCtCt] + cm.Latency[OpRelin]) * 2
	if cm.Cost(lm) != wantCost {
		t.Errorf("cost = %v, want %v", cm.Cost(lm), wantCost)
	}
	if c, err := cm.CostProgram(p); err != nil || c != wantCost {
		t.Errorf("CostProgram = %v, %v", c, err)
	}
}

func TestParseLoweredRoundTrip(t *testing.T) {
	l, err := Lower(gxProgram(), DefaultLowerOptions())
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseLowered(l.String())
	if err != nil {
		t.Fatalf("parse failed: %v\nsource:\n%s", err, l)
	}
	if parsed.String() != l.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", parsed, l)
	}
}

func TestParseLoweredExplicitHeaders(t *testing.T) {
	src := `
vec 8
ct-inputs 1
pt-inputs 1
c1 = (rot-ct c0 2)
c2 = (add-ct-ct c0 c1)
c3 = (mul-ct-pt c2 p0)
c4 = (mul-ct-pt c3 [3])
out c4
`
	l, err := ParseLowered(src)
	if err != nil {
		t.Fatal(err)
	}
	if l.VecLen != 8 || l.NumCtInputs != 1 || l.NumPtInputs != 1 {
		t.Errorf("headers parsed wrong: %+v", l)
	}
	if len(l.Instrs) != 4 {
		t.Errorf("got %d instrs", len(l.Instrs))
	}
	if l.Instrs[2].P.Input != 0 {
		t.Error("plaintext input ref parsed wrong")
	}
	if l.Instrs[3].P.Input != -1 || l.Instrs[3].P.Const[0] != 3 {
		t.Error("constant parsed wrong")
	}
	got, err := RunLowered(l, ConcreteSem{}, []Vec{{1, 2, 3, 4, 5, 6, 7, 8}}, []Vec{{2, 2, 2, 2, 2, 2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// c2[i] = in[i] + in[i+2]; c4[i] = c2[i]*2*3.
	if got[0] != (1+3)*6 {
		t.Errorf("execution wrong: got %d", got[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"vec 8\nct-inputs 1\n", // empty program
		"vec 8\nct-inputs 1\nc1 = (bogus c0)\nout c1", // unknown op
		"vec 8\nct-inputs 1\nc1 = rot-ct\nout c1",     // malformed
		"vec 8\nct-inputs 1\nc2 = (rot-ct c0 1)",      // dst not sequential
		"ct-inputs 1\nc1 = (rot-ct c0 1)",             // missing vec
		"vec 8\nc1 = (rot-ct c0 1)",                   // missing ct-inputs
		"vec 8\nct-inputs 1\nc1 = (mul-ct-pt c0 [])\nout c1",
		"vec 8\nct-inputs 1\nc1 = (rot-ct c0 x)\nout c1",
	}
	for _, src := range cases {
		if _, err := ParseLowered(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestConcat(t *testing.T) {
	// a: c1 = c0 + c0; b: square its single input.
	a := &Lowered{VecLen: 8, NumCtInputs: 1, Instrs: []LInstr{
		{Op: OpAddCtCt, Dst: 1, A: 0, B: 0},
	}, Output: 1}
	b := &Lowered{VecLen: 8, NumCtInputs: 1, NumPtInputs: 1, Instrs: []LInstr{
		{Op: OpMulCtCt, Dst: 1, A: 0, B: 0},
		{Op: OpAddCtPt, Dst: 2, A: 1, P: PtRef{Input: 0}},
	}, Output: 2}
	combined, err := Concat(a, b, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := combined.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, combined)
	}
	in := Vec{3, 0, 0, 0, 0, 0, 0, 0}
	pt := Vec{5, 5, 5, 5, 5, 5, 5, 5}
	out, err := RunLowered(combined, ConcreteSem{}, []Vec{in}, []Vec{pt})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != (3+3)*(3+3)+5 {
		t.Errorf("concat result = %d, want 41", out[0])
	}
	if _, err := Concat(a, b, []int{7}); err == nil {
		t.Error("bad input map should fail")
	}
	if _, err := Concat(a, b, nil); err == nil {
		t.Error("short input map should fail")
	}
}

func TestOpString(t *testing.T) {
	if OpAddCtCt.String() != "add-ct-ct" || OpRelin.String() != "relin" {
		t.Error("op names wrong")
	}
	if Op(99).String() != "op(99)" {
		t.Error("unknown op rendering wrong")
	}
	if !strings.Contains(gxProgram().String(), "sub-ct-ct") {
		t.Error("program printer missing instruction")
	}
}
