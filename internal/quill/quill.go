// Package quill implements the Quill DSL from the Porcupine paper: a
// behavioral model of vectorized BFV homomorphic encryption. Quill
// programs are straight-line SSA sequences of SIMD instructions over
// circular vectors of Z_t values, with metadata tracking each
// ciphertext's multiplicative depth (the noise model) and a latency
// cost model profiled from the BFV backend.
//
// Programs exist in two forms:
//
//   - Program: the sketch-level "local rotate" form, in which rotations
//     are operands of arithmetic instructions rather than instructions
//     (paper §4.4). This is what the synthesis engine searches over.
//   - Lowered: the explicit instruction list matching the SEAL
//     instruction set, with rotations materialized (and CSE'd) and
//     relinearization inserted after ciphertext-ciphertext multiplies.
//     Instruction counts, depths, and latencies reported in the paper's
//     Table 2 and Figure 4 are properties of this form.
package quill

import (
	"fmt"
	"strings"
)

// Modulus is the plaintext modulus of the abstract machine (matches
// bfv.PlaintextModulus and symbolic.Modulus).
const Modulus uint64 = 65537

// Op enumerates the Quill instruction set (paper Table 1). RotCt and
// Relin appear only in lowered programs.
type Op int

const (
	OpAddCtCt Op = iota // add two ciphertexts
	OpSubCtCt           // subtract two ciphertexts
	OpMulCtCt           // multiply two ciphertexts
	OpAddCtPt           // add plaintext to ciphertext
	OpSubCtPt           // subtract plaintext from ciphertext
	OpMulCtPt           // multiply ciphertext by plaintext
	OpRotCt             // rotate ciphertext slots left (lowered only)
	OpRelin             // relinearize after ct-ct multiply (lowered only)
)

var opNames = map[Op]string{
	OpAddCtCt: "add-ct-ct",
	OpSubCtCt: "sub-ct-ct",
	OpMulCtCt: "mul-ct-ct",
	OpAddCtPt: "add-ct-pt",
	OpSubCtPt: "sub-ct-pt",
	OpMulCtPt: "mul-ct-pt",
	OpRotCt:   "rot-ct",
	OpRelin:   "relin",
}

// String returns the mnemonic of the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsCtCt reports whether the op takes two ciphertext operands.
func (o Op) IsCtCt() bool { return o == OpAddCtCt || o == OpSubCtCt || o == OpMulCtCt }

// IsCtPt reports whether the op takes a ciphertext and a plaintext.
func (o Op) IsCtPt() bool { return o == OpAddCtPt || o == OpSubCtPt || o == OpMulCtPt }

// IsArith reports whether the op is a sketch-level arithmetic
// component (everything except RotCt and Relin).
func (o Op) IsArith() bool { return o.IsCtCt() || o.IsCtPt() }

// CtRef references a ciphertext value with an optional local rotation:
// the value with SSA id ID, rotated left by Rot slots before use.
// IDs 0..NumCtInputs-1 are the ciphertext inputs; subsequent ids are
// instruction results in order.
type CtRef struct {
	ID  int
	Rot int
}

func (r CtRef) String() string {
	if r.Rot == 0 {
		return fmt.Sprintf("c%d", r.ID)
	}
	return fmt.Sprintf("(rot c%d %d)", r.ID, r.Rot)
}

// PtRef references a plaintext operand: either a plaintext input
// (Input ≥ 0) or an inline constant vector replicated across slots
// when len(Const) == 1, or per-slot when len(Const) == VecLen.
type PtRef struct {
	Input int     // plaintext input index, or -1 for a constant
	Const []int64 // constant vector (Input == -1)
}

func (p PtRef) String() string {
	if p.Input >= 0 {
		return fmt.Sprintf("p%d", p.Input)
	}
	if len(p.Const) == 1 {
		return fmt.Sprintf("[%d ...]", p.Const[0])
	}
	parts := make([]string, len(p.Const))
	for i, c := range p.Const {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Instr is one sketch-level arithmetic component. For ct-ct ops A and
// B are used; for ct-pt ops A and P are used (plaintext operands are
// never rotated, matching the paper: the server can pre-rotate its own
// data for free).
type Instr struct {
	Op Op
	A  CtRef
	B  CtRef
	P  PtRef
}

// Program is a straight-line Quill program in local-rotate form.
type Program struct {
	VecLen      int // abstract vector length (power of two)
	NumCtInputs int
	NumPtInputs int
	Instrs      []Instr
	Output      int // SSA id of the result (defaults to the last value)
}

// NumValues returns the number of SSA values (inputs + results).
func (p *Program) NumValues() int { return p.NumCtInputs + len(p.Instrs) }

// Validate checks SSA well-formedness: operand ids precede their use,
// rotations are in range, plaintext references are in range, and the
// output id exists.
func (p *Program) Validate() error {
	if p.VecLen <= 0 || p.VecLen&(p.VecLen-1) != 0 {
		return fmt.Errorf("quill: vector length %d is not a positive power of two", p.VecLen)
	}
	if p.NumCtInputs < 1 {
		return fmt.Errorf("quill: program needs at least one ciphertext input")
	}
	checkRef := func(i int, r CtRef) error {
		if r.ID < 0 || r.ID >= p.NumCtInputs+i {
			return fmt.Errorf("quill: instr %d references undefined value c%d", i, r.ID)
		}
		if r.Rot <= -p.VecLen || r.Rot >= p.VecLen {
			return fmt.Errorf("quill: instr %d rotation %d out of range", i, r.Rot)
		}
		return nil
	}
	for i, in := range p.Instrs {
		if !in.Op.IsArith() {
			return fmt.Errorf("quill: instr %d: opcode %v not allowed in local-rotate form", i, in.Op)
		}
		if err := checkRef(i, in.A); err != nil {
			return err
		}
		if in.Op.IsCtCt() {
			if err := checkRef(i, in.B); err != nil {
				return err
			}
		} else {
			if in.P.Input < -1 || in.P.Input >= p.NumPtInputs {
				return fmt.Errorf("quill: instr %d references undefined plaintext p%d", i, in.P.Input)
			}
			if in.P.Input == -1 && len(in.P.Const) != 1 && len(in.P.Const) != p.VecLen {
				return fmt.Errorf("quill: instr %d constant length %d (want 1 or %d)", i, len(in.P.Const), p.VecLen)
			}
		}
	}
	if p.Output < 0 || p.Output >= p.NumValues() {
		return fmt.Errorf("quill: output id c%d undefined", p.Output)
	}
	return nil
}

// String renders the program in the paper's textual style.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; quill program: vec=%d ct-inputs=%d pt-inputs=%d\n", p.VecLen, p.NumCtInputs, p.NumPtInputs)
	for i, in := range p.Instrs {
		id := p.NumCtInputs + i
		if in.Op.IsCtCt() {
			fmt.Fprintf(&b, "c%d = (%s %s %s)\n", id, in.Op, in.A, in.B)
		} else {
			fmt.Fprintf(&b, "c%d = (%s %s %s)\n", id, in.Op, in.A, in.P)
		}
	}
	fmt.Fprintf(&b, "out c%d\n", p.Output)
	return b.String()
}

// MultDepth returns the multiplicative depth of the program output
// under the paper's Table-1 noise model: ciphertext inputs start at
// depth 0; mul-ct-ct and mul-ct-pt increment the max operand depth;
// add, sub and rotate propagate it unchanged.
func (p *Program) MultDepth() int {
	depth := make([]int, p.NumValues())
	for i, in := range p.Instrs {
		d := depth[in.A.ID]
		if in.Op.IsCtCt() && depth[in.B.ID] > d {
			d = depth[in.B.ID]
		}
		if in.Op == OpMulCtCt || in.Op == OpMulCtPt {
			d++
		}
		depth[p.NumCtInputs+i] = d
	}
	return depth[p.Output]
}
