package quill

import (
	"fmt"

	"porcupine/internal/mathutil"
	"porcupine/internal/symbolic"
)

// Semantics abstracts the value domain the interpreter runs over, so
// the same programs execute concretely (vectors over Z_t, used for
// CEGIS examples) and symbolically (vectors of polynomials, used for
// verification). Implementations must be side-effect free.
type Semantics[T any] interface {
	Add(a, b T) T
	Sub(a, b T) T
	Mul(a, b T) T
	Rot(a T, k int) T // circular left rotation by k slots
	FromConst(c []int64, vecLen int) T
}

// Run interprets a local-rotate program over the given semantics.
func Run[T any](p *Program, sem Semantics[T], ctIn, ptIn []T) (T, error) {
	var zero T
	if err := p.Validate(); err != nil {
		return zero, err
	}
	if len(ctIn) != p.NumCtInputs || len(ptIn) != p.NumPtInputs {
		return zero, fmt.Errorf("quill: Run got %d ct / %d pt inputs, want %d / %d",
			len(ctIn), len(ptIn), p.NumCtInputs, p.NumPtInputs)
	}
	vals := make([]T, 0, p.NumValues())
	vals = append(vals, ctIn...)
	resolve := func(r CtRef) T {
		v := vals[r.ID]
		if r.Rot != 0 {
			v = sem.Rot(v, r.Rot)
		}
		return v
	}
	for _, in := range p.Instrs {
		a := resolve(in.A)
		var b T
		if in.Op.IsCtCt() {
			b = resolve(in.B)
		} else if in.P.Input >= 0 {
			b = ptIn[in.P.Input]
		} else {
			b = sem.FromConst(in.P.Const, p.VecLen)
		}
		var out T
		switch in.Op {
		case OpAddCtCt, OpAddCtPt:
			out = sem.Add(a, b)
		case OpSubCtCt, OpSubCtPt:
			out = sem.Sub(a, b)
		case OpMulCtCt, OpMulCtPt:
			out = sem.Mul(a, b)
		default:
			return zero, fmt.Errorf("quill: Run: unexpected opcode %v", in.Op)
		}
		vals = append(vals, out)
	}
	return vals[p.Output], nil
}

// RunLowered interprets a lowered program over the given semantics.
// Relinearization is a semantic no-op in the abstract machine.
func RunLowered[T any](l *Lowered, sem Semantics[T], ctIn, ptIn []T) (T, error) {
	var zero T
	if err := l.Validate(); err != nil {
		return zero, err
	}
	if len(ctIn) != l.NumCtInputs || len(ptIn) != l.NumPtInputs {
		return zero, fmt.Errorf("quill: RunLowered got %d ct / %d pt inputs, want %d / %d",
			len(ctIn), len(ptIn), l.NumCtInputs, l.NumPtInputs)
	}
	vals := make([]T, l.NumValues())
	copy(vals, ctIn)
	for _, in := range l.Instrs {
		a := vals[in.A]
		switch in.Op {
		case OpRotCt:
			vals[in.Dst] = sem.Rot(a, in.Rot)
		case OpRelin:
			vals[in.Dst] = a
		case OpAddCtCt:
			vals[in.Dst] = sem.Add(a, vals[in.B])
		case OpSubCtCt:
			vals[in.Dst] = sem.Sub(a, vals[in.B])
		case OpMulCtCt:
			vals[in.Dst] = sem.Mul(a, vals[in.B])
		case OpAddCtPt, OpSubCtPt, OpMulCtPt:
			var b T
			if in.P.Input >= 0 {
				b = ptIn[in.P.Input]
			} else {
				b = sem.FromConst(in.P.Const, l.VecLen)
			}
			switch in.Op {
			case OpAddCtPt:
				vals[in.Dst] = sem.Add(a, b)
			case OpSubCtPt:
				vals[in.Dst] = sem.Sub(a, b)
			default:
				vals[in.Dst] = sem.Mul(a, b)
			}
		default:
			return zero, fmt.Errorf("quill: RunLowered: unknown opcode %v", in.Op)
		}
	}
	return vals[l.Output], nil
}

// Vec is a concrete slot vector over Z_t.
type Vec []uint64

// ConcreteSem implements Semantics over Vec.
type ConcreteSem struct{}

// Add returns the element-wise sum mod t.
func (ConcreteSem) Add(a, b Vec) Vec {
	out := make(Vec, len(a))
	for i := range a {
		out[i] = mathutil.AddMod(a[i], b[i], Modulus)
	}
	return out
}

// Sub returns the element-wise difference mod t.
func (ConcreteSem) Sub(a, b Vec) Vec {
	out := make(Vec, len(a))
	for i := range a {
		out[i] = mathutil.SubMod(a[i], b[i], Modulus)
	}
	return out
}

// Mul returns the element-wise product mod t.
func (ConcreteSem) Mul(a, b Vec) Vec {
	out := make(Vec, len(a))
	for i := range a {
		out[i] = mathutil.MulMod(a[i], b[i], Modulus)
	}
	return out
}

// Rot returns a rotated left by k (slot i receives a[(i+k) mod n]).
func (ConcreteSem) Rot(a Vec, k int) Vec {
	n := len(a)
	out := make(Vec, n)
	for i := range a {
		out[i] = a[((i+k)%n+n)%n]
	}
	return out
}

// FromConst materializes a constant vector: a single value is
// broadcast; otherwise the constant must have vecLen entries.
func (ConcreteSem) FromConst(c []int64, vecLen int) Vec {
	out := make(Vec, vecLen)
	t := int64(Modulus)
	get := func(i int) int64 {
		if len(c) == 1 {
			return c[0]
		}
		return c[i]
	}
	for i := range out {
		v := get(i) % t
		if v < 0 {
			v += t
		}
		out[i] = uint64(v)
	}
	return out
}

// SymVec is a symbolic slot vector: one polynomial per slot.
type SymVec []*symbolic.Poly

// SymbolicSem implements Semantics over SymVec.
type SymbolicSem struct{}

// Add returns the element-wise polynomial sum.
func (SymbolicSem) Add(a, b SymVec) SymVec {
	out := make(SymVec, len(a))
	for i := range a {
		out[i] = a[i].Add(b[i])
	}
	return out
}

// Sub returns the element-wise polynomial difference.
func (SymbolicSem) Sub(a, b SymVec) SymVec {
	out := make(SymVec, len(a))
	for i := range a {
		out[i] = a[i].Sub(b[i])
	}
	return out
}

// Mul returns the element-wise polynomial product.
func (SymbolicSem) Mul(a, b SymVec) SymVec {
	out := make(SymVec, len(a))
	for i := range a {
		out[i] = a[i].Mul(b[i])
	}
	return out
}

// Rot rotates the vector left by k.
func (SymbolicSem) Rot(a SymVec, k int) SymVec {
	n := len(a)
	out := make(SymVec, n)
	for i := range a {
		out[i] = a[((i+k)%n+n)%n]
	}
	return out
}

// FromConst materializes a constant symbolic vector.
func (SymbolicSem) FromConst(c []int64, vecLen int) SymVec {
	out := make(SymVec, vecLen)
	get := func(i int) int64 {
		if len(c) == 1 {
			return c[0]
		}
		return c[i]
	}
	for i := range out {
		out[i] = symbolic.Const(get(i))
	}
	return out
}

// ZeroSymVec returns a vector of zero polynomials.
func ZeroSymVec(n int) SymVec {
	out := make(SymVec, n)
	for i := range out {
		out[i] = symbolic.Zero()
	}
	return out
}
