package quill

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// CostModel assigns a latency (in microseconds) to each lowered
// instruction. The defaults below were profiled from the BFV backend
// in internal/backend on the PN4096 preset (the same way the paper
// profiles SEAL, §4.2); backend.ProfileCostModel re-measures live.
type CostModel struct {
	Latency map[Op]float64
}

// DefaultCostModel returns the statically profiled model. The relative
// ordering is what matters for synthesis: ct-ct multiply and rotation
// (both key-switch-bound) are an order of magnitude more expensive than
// additions, with plaintext ops in between — the same shape SEAL has.
func DefaultCostModel() *CostModel {
	return &CostModel{Latency: map[Op]float64{
		OpAddCtCt: 90,
		OpSubCtCt: 90,
		OpAddCtPt: 60,
		OpSubCtPt: 60,
		OpMulCtPt: 1600,
		OpMulCtCt: 21000,
		OpRotCt:   6200,
		OpRelin:   6000,
	}}
}

// Fingerprint returns a stable content hash of the latency table, in
// opcode order, for use in synthesis-cache keys: a changed cost model
// changes which program is optimal, so it must invalidate cached
// synthesis results.
func (cm *CostModel) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "costmodel/v1\n")
	for op := OpAddCtCt; op <= OpRelin; op++ {
		fmt.Fprintf(h, "%v=%g\n", op, cm.Latency[op])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// InstrLatency returns the modeled latency of a lowered instruction.
func (cm *CostModel) InstrLatency(op Op) float64 { return cm.Latency[op] }

// ProgramLatency returns the summed latency of a lowered program.
func (cm *CostModel) ProgramLatency(l *Lowered) float64 {
	var sum float64
	for _, in := range l.Instrs {
		sum += cm.Latency[in.Op]
	}
	return sum
}

// Cost implements the paper's §5.2 objective for lowered programs:
// cost(p) = latency(p) × (1 + multdepth(p)). Multiplicative depth
// penalizes high-noise programs, which would force larger HE
// parameters and slower instructions.
func (cm *CostModel) Cost(l *Lowered) float64 {
	return cm.ProgramLatency(l) * float64(1+l.MultDepth())
}

// CostProgram lowers a local-rotate program (with the paper's default
// lowering) and returns its cost.
func (cm *CostModel) CostProgram(p *Program) (float64, error) {
	l, err := Lower(p, DefaultLowerOptions())
	if err != nil {
		return 0, err
	}
	return cm.Cost(l), nil
}
