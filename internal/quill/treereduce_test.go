package quill

import (
	"math/rand"
	"testing"
)

// serialChain builds the fan-out-1 shift-accumulate reduction over a
// window of m offsets starting at `start`: the shape
//
//	acc = base; repeat m-1 times: acc = rot(acc, 1) + base
//
// (shifted by rot(base, start) first when start != 0), which is how a
// slot reduction looks before the tree rewrite: m-1 rotations, each of
// a different source.
func serialChain(vecLen, start, m int) *Lowered {
	l := &Lowered{VecLen: vecLen, NumCtInputs: 1}
	next := 1
	emit := func(in LInstr) int {
		in.Dst = next
		l.Instrs = append(l.Instrs, in)
		next++
		return in.Dst
	}
	base := 0
	if start != 0 {
		base = emit(LInstr{Op: OpRotCt, A: 0, Rot: start})
	}
	acc := base
	for k := 1; k < m; k++ {
		r := emit(LInstr{Op: OpRotCt, A: acc, Rot: 1})
		acc = emit(LInstr{Op: OpAddCtCt, A: r, B: base})
	}
	l.Output = acc
	return l
}

// runOn interprets l over a concrete vector of arbitrary length —
// longer-than-VecLen inputs emulate the zero-padded HE row, where
// rotation shifts padding through the program window instead of
// wrapping mod VecLen.
func runOn(t *testing.T, l *Lowered, in Vec) Vec {
	t.Helper()
	out, err := RunLowered(l, ConcreteSem{}, []Vec{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// checkSameFunction asserts a and b compute identical full vectors on
// random inputs at the program's own vector length AND on zero-padded
// rows of 2x and 128x that length (wraparound exactness).
func checkSameFunction(t *testing.T, a, b *Lowered, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for _, rowLen := range []int{a.VecLen, 2 * a.VecLen, 128 * a.VecLen} {
		in := make(Vec, rowLen)
		for i := 0; i < a.VecLen; i++ {
			in[i] = rng.Uint64() % Modulus
		}
		got, want := runOn(t, b, in), runOn(t, a, in)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d slot %d: tree %d != serial %d", rowLen, i, got[i], want[i])
			}
		}
	}
}

func TestTreeReduceRewritesSerialChain(t *testing.T) {
	// Width, expected tree rotation count: R(2)=1; even m: R(m/2)+1;
	// odd m: R(m-1)+1.
	cases := []struct{ m, wantRots int }{
		{4, 2}, {8, 3}, {16, 4},
		{5, 3}, {6, 3}, {7, 4}, {12, 4}, // non-power-of-two widths
	}
	for _, c := range cases {
		serial := serialChain(16, 0, c.m)
		if got := serial.RotationCount(); got != c.m-1 {
			t.Fatalf("m=%d: serial chain has %d rotations, want %d", c.m, got, c.m-1)
		}
		tree, changed, err := TreeReduceLowered(serial)
		if err != nil {
			t.Fatal(err)
		}
		if !changed {
			t.Fatalf("m=%d: serial chain not rewritten", c.m)
		}
		if got := tree.RotationCount(); got != c.wantRots {
			t.Errorf("m=%d: tree has %d rotations, want %d\n%s", c.m, got, c.wantRots, tree)
		}
		if tree.Depth() >= serial.Depth() && c.m > 4 {
			t.Errorf("m=%d: tree depth %d not below serial depth %d", c.m, tree.Depth(), serial.Depth())
		}
		checkSameFunction(t, serial, tree, int64(c.m))
	}
}

func TestTreeReduceShiftedWindow(t *testing.T) {
	// Offsets {3..10}: the rewrite must emit rot(base, 3) before the
	// tree and keep every offset literal — on a zero-padded row the
	// window reaches past the program vector, so any mod-VecLen
	// normalization would be observable.
	serial := serialChain(8, 3, 8)
	tree, changed, err := TreeReduceLowered(serial)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("shifted chain not rewritten")
	}
	if got, want := tree.RotationCount(), 4; got != want { // start rot + {1,2,4}
		t.Errorf("tree has %d rotations, want %d\n%s", got, want, tree)
	}
	checkSameFunction(t, serial, tree, 11)
}

func TestTreeReduceLeavesLogDepthAlone(t *testing.T) {
	// A program already in tree form must pass through unchanged: the
	// rewrite only fires when it strictly lowers the rotation count.
	l := &Lowered{VecLen: 8, NumCtInputs: 1}
	next := 1
	emit := func(in LInstr) int {
		in.Dst = next
		l.Instrs = append(l.Instrs, in)
		next++
		return in.Dst
	}
	acc := 0
	for _, k := range []int{1, 2, 4} {
		r := emit(LInstr{Op: OpRotCt, A: acc, Rot: k})
		acc = emit(LInstr{Op: OpAddCtCt, A: acc, B: r})
	}
	l.Output = acc
	tree, changed, err := TreeReduceLowered(l)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatalf("log-depth tree was rewritten:\n%s", tree)
	}
}

func TestTreeReduceKeepsLivePartialSums(t *testing.T) {
	// The chain's halfway partial sum feeds a second consumer, so the
	// chain prefix cannot die; rewriting the full window would ADD
	// rotations, and the suffix window alone still shrinks. Whatever
	// the pass decides, the rotation count must not grow and semantics
	// must hold.
	serial := serialChain(16, 0, 8)
	half := serial.Instrs[len(serial.Instrs)-1].Dst - 6 // acc after 4 accumulations
	mixed := &Lowered{
		VecLen: 16, NumCtInputs: 1,
		Instrs: append(append([]LInstr{}, serial.Instrs...),
			LInstr{Op: OpMulCtCt, Dst: serial.Output + 1, A: half, B: serial.Output}),
		Output: serial.Output + 1,
	}
	if err := mixed.Validate(); err != nil {
		t.Fatal(err)
	}
	tree, _, err := TreeReduceLowered(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if tree.RotationCount() > mixed.RotationCount() {
		t.Fatalf("rewrite grew rotations: %d -> %d", mixed.RotationCount(), tree.RotationCount())
	}
	checkSameFunction(t, mixed, tree, 5)
}

func TestOptimizeLoweredRunsTreeReduction(t *testing.T) {
	// The default optimization pipeline must emit the tree on its own.
	opt, err := OptimizeLowered(serialChain(8, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := opt.RotationCount(), 3; got != want {
		t.Errorf("OptimizeLowered left %d rotations, want %d\n%s", got, want, opt)
	}
}

func TestTreeReduceNoiseBudget(t *testing.T) {
	// Log depth cuts sequential rotate-and-add levels, so the tree's
	// predicted decryption budget must be at least the serial chain's.
	np := testNoiseParams()
	for _, m := range []int{4, 6, 8, 16} {
		serial := serialChain(16, 0, m)
		tree, changed, err := TreeReduceLowered(serial)
		if err != nil {
			t.Fatal(err)
		}
		if !changed {
			t.Fatalf("m=%d: chain not rewritten", m)
		}
		gain, err := BudgetGain(serial, tree, np)
		if err != nil {
			t.Fatal(err)
		}
		if gain < 0 {
			t.Errorf("m=%d: tree budget below serial chain's (gain %.1f bits)", m, gain)
		}
	}
}
