package quill

import (
	"math/rand"
	"testing"
)

// serialChain builds the fan-out-1 shift-accumulate reduction over a
// window of m offsets starting at `start`: the shape
//
//	acc = base; repeat m-1 times: acc = rot(acc, 1) + base
//
// (shifted by rot(base, start) first when start != 0), which is how a
// slot reduction looks before the tree rewrite: m-1 rotations, each of
// a different source.
func serialChain(vecLen, start, m int) *Lowered {
	l := &Lowered{VecLen: vecLen, NumCtInputs: 1}
	next := 1
	emit := func(in LInstr) int {
		in.Dst = next
		l.Instrs = append(l.Instrs, in)
		next++
		return in.Dst
	}
	base := 0
	if start != 0 {
		base = emit(LInstr{Op: OpRotCt, A: 0, Rot: start})
	}
	acc := base
	for k := 1; k < m; k++ {
		r := emit(LInstr{Op: OpRotCt, A: acc, Rot: 1})
		acc = emit(LInstr{Op: OpAddCtCt, A: r, B: base})
	}
	l.Output = acc
	return l
}

// runOn interprets l over a concrete vector of arbitrary length —
// longer-than-VecLen inputs emulate the zero-padded HE row, where
// rotation shifts padding through the program window instead of
// wrapping mod VecLen.
func runOn(t *testing.T, l *Lowered, in Vec) Vec {
	t.Helper()
	out, err := RunLowered(l, ConcreteSem{}, []Vec{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// checkSameFunction asserts a and b compute identical full vectors on
// random inputs at the program's own vector length AND on zero-padded
// rows of 2x and 128x that length (wraparound exactness).
func checkSameFunction(t *testing.T, a, b *Lowered, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for _, rowLen := range []int{a.VecLen, 2 * a.VecLen, 128 * a.VecLen} {
		in := make(Vec, rowLen)
		for i := 0; i < a.VecLen; i++ {
			in[i] = rng.Uint64() % Modulus
		}
		got, want := runOn(t, b, in), runOn(t, a, in)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d slot %d: tree %d != serial %d", rowLen, i, got[i], want[i])
			}
		}
	}
}

func TestTreeReduceRewritesSerialChain(t *testing.T) {
	// At kernel-sized windows the decompose-once fan wins the ksCost
	// comparison: m-1 rotations, but every one off the SAME base, so a
	// double-hoisted plan needs exactly one digit decomposition (the
	// serial chain needs m-1).
	for _, m := range []int{4, 8, 16, 5, 6, 7, 12} {
		serial := serialChain(16, 0, m)
		if got := serial.RotationCount(); got != m-1 {
			t.Fatalf("m=%d: serial chain has %d rotations, want %d", m, got, m-1)
		}
		if got := serial.DecompositionCount(); got != m-1 {
			t.Fatalf("m=%d: serial chain has %d rotation sources, want %d", m, got, m-1)
		}
		fan, changed, err := TreeReduceLowered(serial)
		if err != nil {
			t.Fatal(err)
		}
		if !changed {
			t.Fatalf("m=%d: serial chain not rewritten", m)
		}
		if got := fan.RotationCount(); got != m-1 {
			t.Errorf("m=%d: fan has %d rotations, want %d\n%s", m, got, m-1, fan)
		}
		if got := fan.DecompositionCount(); got != 1 {
			t.Errorf("m=%d: fan has %d rotation sources, want 1\n%s", m, got, fan)
		}
		if fan.Depth() >= serial.Depth() && m > 4 {
			t.Errorf("m=%d: fan depth %d not below serial depth %d", m, fan.Depth(), serial.Depth())
		}
		checkSameFunction(t, serial, fan, int64(m))
	}
}

func TestTreeReduceShiftedWindow(t *testing.T) {
	// Offsets {3..10}: the fan rotates the base DIRECTLY by each
	// literal offset (no rot(base, 3) prefix, which would add a second
	// decomposition source), and every offset stays literal — on a
	// zero-padded row the window reaches past the program vector, so
	// any mod-VecLen normalization would be observable.
	serial := serialChain(8, 3, 8)
	fan, changed, err := TreeReduceLowered(serial)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("shifted chain not rewritten")
	}
	if got, want := fan.RotationCount(), 8; got != want { // one per offset {3..10}
		t.Errorf("fan has %d rotations, want %d\n%s", got, want, fan)
	}
	if got, want := fan.DecompositionCount(), 1; got != want {
		t.Errorf("fan has %d rotation sources, want %d\n%s", got, want, fan)
	}
	checkSameFunction(t, serial, fan, 11)
}

// doublingTree builds the canonical doubling tree Σ rot(input, k) over
// a power-of-two window: acc += rot(acc, k) for k in ks.
func doublingTree(vecLen int, ks []int) *Lowered {
	l := &Lowered{VecLen: vecLen, NumCtInputs: 1}
	next := 1
	emit := func(in LInstr) int {
		in.Dst = next
		l.Instrs = append(l.Instrs, in)
		next++
		return in.Dst
	}
	acc := 0
	for _, k := range ks {
		r := emit(LInstr{Op: OpRotCt, A: acc, Rot: k})
		acc = emit(LInstr{Op: OpAddCtCt, A: acc, B: r})
	}
	l.Output = acc
	return l
}

func TestTreeReduceWideTreeGoesHybrid(t *testing.T) {
	// A wide window (m=32) is past the pure-fan cutover: a fan's
	// 1 decomposition + 31 rotations would COST MORE than the doubling
	// tree's 5 + 5, so the full-window fan is rejected — but the
	// pass still reshapes the tree's inner half-window into a fan,
	// converging on a baby-step/giant-step hybrid (fan of 16 offsets
	// off the base, one doubling level of 16 on top): 16 rotations,
	// 2 decomposition sources, strictly cheaper than both pure shapes.
	l := doublingTree(32, []int{1, 2, 4, 8, 16})
	hybrid, changed, err := TreeReduceLowered(l)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("wide tree not reshaped")
	}
	if got, want := hybrid.RotationCount(), 16; got != want {
		t.Errorf("hybrid has %d rotations, want %d\n%s", got, want, hybrid)
	}
	if got, want := hybrid.DecompositionCount(), 2; got != want {
		t.Errorf("hybrid has %d rotation sources, want %d\n%s", got, want, hybrid)
	}
	checkSameFunction(t, l, hybrid, 23)
	// The hybrid is the greedy fixpoint: a second run must be a no-op.
	again, changed, err := TreeReduceLowered(hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatalf("hybrid fixpoint was rewritten again:\n%s", again)
	}
}

func TestTreeReduceReshapesSmallTreeToFan(t *testing.T) {
	// A narrow doubling tree (m=8: 3 rotations of 3 DIFFERENT sources)
	// costs more key-switch work than the decompose-once fan (7
	// rotations of ONE source), so the pass re-reshapes it — this is
	// the decomposition-count win double-hoisted execution feeds on.
	l := doublingTree(8, []int{1, 2, 4})
	fan, changed, err := TreeReduceLowered(l)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("small tree not reshaped into a fan")
	}
	if got, want := fan.RotationCount(), 7; got != want {
		t.Errorf("fan has %d rotations, want %d\n%s", got, want, fan)
	}
	if got, want := fan.DecompositionCount(), 1; got != want {
		t.Errorf("fan has %d rotation sources, want %d\n%s", got, want, fan)
	}
	checkSameFunction(t, l, fan, 17)
}

func TestTreeReduceFanAlreadyOptimal(t *testing.T) {
	// A program already in fan form must pass through unchanged.
	serial := serialChain(16, 0, 8)
	fan, _, err := TreeReduceLowered(serial)
	if err != nil {
		t.Fatal(err)
	}
	again, changed, err := TreeReduceLowered(fan)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatalf("optimal fan was rewritten:\n%s", again)
	}
}

func TestTreeReduceKeepsLivePartialSums(t *testing.T) {
	// The chain's halfway partial sum feeds a second consumer, so the
	// chain prefix cannot die; rewriting the full window would ADD
	// rotations, and the suffix window alone still shrinks. Whatever
	// the pass decides, the rotation count must not grow and semantics
	// must hold.
	serial := serialChain(16, 0, 8)
	half := serial.Instrs[len(serial.Instrs)-1].Dst - 6 // acc after 4 accumulations
	mixed := &Lowered{
		VecLen: 16, NumCtInputs: 1,
		Instrs: append(append([]LInstr{}, serial.Instrs...),
			LInstr{Op: OpMulCtCt, Dst: serial.Output + 1, A: half, B: serial.Output}),
		Output: serial.Output + 1,
	}
	if err := mixed.Validate(); err != nil {
		t.Fatal(err)
	}
	tree, _, err := TreeReduceLowered(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if tree.RotationCount() > mixed.RotationCount() {
		t.Fatalf("rewrite grew rotations: %d -> %d", mixed.RotationCount(), tree.RotationCount())
	}
	checkSameFunction(t, mixed, tree, 5)
}

func TestOptimizeLoweredRunsTreeReduction(t *testing.T) {
	// The default optimization pipeline must emit the decompose-once
	// fan on its own: 7 rotations, but a single rotation source.
	opt, err := OptimizeLowered(serialChain(8, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := opt.RotationCount(), 7; got != want {
		t.Errorf("OptimizeLowered left %d rotations, want %d\n%s", got, want, opt)
	}
	if got, want := opt.DecompositionCount(), 1; got != want {
		t.Errorf("OptimizeLowered left %d rotation sources, want %d\n%s", got, want, opt)
	}
}

func TestTreeReduceNoiseBudget(t *testing.T) {
	// Log depth cuts sequential rotate-and-add levels, so the tree's
	// predicted decryption budget must be at least the serial chain's.
	np := testNoiseParams()
	for _, m := range []int{4, 6, 8, 16} {
		serial := serialChain(16, 0, m)
		tree, changed, err := TreeReduceLowered(serial)
		if err != nil {
			t.Fatal(err)
		}
		if !changed {
			t.Fatalf("m=%d: chain not rewritten", m)
		}
		gain, err := BudgetGain(serial, tree, np)
		if err != nil {
			t.Fatal(err)
		}
		if gain < 0 {
			t.Errorf("m=%d: tree budget below serial chain's (gain %.1f bits)", m, gain)
		}
	}
}
