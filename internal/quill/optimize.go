package quill

import (
	"fmt"
	"sort"
)

// OptimizeLowered applies semantics-preserving cleanups to a lowered
// program and returns the optimized copy:
//
//   - global common-subexpression elimination (two instructions with
//     the same opcode and operands compute the same value — this fires
//     across segment boundaries of multi-step pipelines, where the
//     per-segment lowering of Concat cannot share rotations);
//   - dead-code elimination (instructions whose value cannot reach the
//     output);
//   - rotation-of-rotation folding (rot(rot(x, a), b) = rot(x, a+b)),
//     which can appear after stitching segments;
//   - reduction reshaping (treereduce.go): serial slot-reduction
//     chains are re-associated into decompose-once rotation fans or
//     log-depth rotate-and-add trees, whichever strictly lowers the
//     static key-switch cost (decompositions weighted over rotations);
//   - chain interleaving (interleaveSchedule): independent reduction
//     chains are reordered into dependency-level order so rotations
//     from different accumulators land in the same schedule window,
//     grouped by amount — feeding the plan layer's cross-source
//     batching and decomposition-sharing passes, which only look
//     within bounded schedule windows.
//
// The paper's single-kernel lowering already shares rotations (§4.4);
// this pass extends that guarantee to composed programs, an extension
// beyond the paper's §6.3 multi-step synthesis.
func OptimizeLowered(l *Lowered) (*Lowered, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	cur := l
	for {
		next, changed, err := optimizeOnce(cur)
		if err != nil {
			return nil, err
		}
		if changed {
			cur = next
			continue
		}
		tree, treeChanged, err := treeReduceOnce(next)
		if err != nil {
			return nil, err
		}
		if !treeChanged {
			// Fixpoint reached; interleave once on the way out.
			// Levelized order is itself a fixpoint of the sort, so a
			// second OptimizeLowered pass leaves the program unchanged.
			return interleaveSchedule(next)
		}
		cur = tree
	}
}

// interleaveSchedule reorders instructions into dependency-level order
// (an instruction's level is one past the deepest level among its
// operands), with each level's rotations first — grouped by rotation
// amount — and its remaining instructions after. Independent reduction
// chains written sequentially at lowering time thus emit their
// same-level rotations adjacently, which is what lets the plan
// compiler's windowed batching (Pass 4b) and decomposition-sharing
// passes fuse across chains instead of only within one chain's leaf
// level. The reorder is a pure topological permutation: every operand
// sits at a strictly smaller level than its consumer, so semantics and
// the instruction multiset are untouched.
func interleaveSchedule(l *Lowered) (*Lowered, error) {
	level := make([]int, l.NumValues())
	type skey struct{ level, cls, amt, idx int }
	keys := make([]skey, len(l.Instrs))
	for idx, in := range l.Instrs {
		lv := level[in.A]
		if in.Op.IsCtCt() && level[in.B] > lv {
			lv = level[in.B]
		}
		lv++
		level[in.Dst] = lv
		k := skey{level: lv, cls: 1, idx: idx}
		if in.Op == OpRotCt {
			k.cls, k.amt = 0, in.Rot
		}
		keys[idx] = k
	}
	order := make([]int, len(l.Instrs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := keys[order[i]], keys[order[j]]
		if a.level != b.level {
			return a.level < b.level
		}
		if a.cls != b.cls {
			return a.cls < b.cls
		}
		if a.amt != b.amt {
			return a.amt < b.amt
		}
		return a.idx < b.idx
	})
	same := true
	for i, idx := range order {
		if idx != i {
			same = false
			break
		}
	}
	if same {
		return l, nil
	}
	out := &Lowered{
		VecLen:      l.VecLen,
		NumCtInputs: l.NumCtInputs,
		NumPtInputs: l.NumPtInputs,
	}
	remap := make([]int, l.NumValues())
	for i := 0; i < l.NumCtInputs; i++ {
		remap[i] = i
	}
	next := l.NumCtInputs
	for _, idx := range order {
		in := l.Instrs[idx]
		in.A = remap[in.A]
		if in.Op.IsCtCt() {
			in.B = remap[in.B]
		}
		remap[l.Instrs[idx].Dst] = next
		in.Dst = next
		next++
		out.Instrs = append(out.Instrs, in)
	}
	out.Output = remap[l.Output]
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("quill: interleave produced invalid program: %w", err)
	}
	return out, nil
}

// cseKey canonicalizes an instruction for value numbering.
type cseKey struct {
	op         Op
	a, b, rot  int
	ptInput    int
	constShape string
}

func keyOf(in LInstr, resolve func(int) int) cseKey {
	k := cseKey{op: in.Op, a: resolve(in.A), ptInput: -2}
	switch {
	case in.Op == OpRotCt:
		k.rot = in.Rot
	case in.Op == OpRelin:
	case in.Op.IsCtCt():
		k.b = resolve(in.B)
		// Commutative normalization.
		if (in.Op == OpAddCtCt || in.Op == OpMulCtCt) && k.b < k.a {
			k.a, k.b = k.b, k.a
		}
	default:
		k.ptInput = in.P.Input
		if in.P.Input < 0 {
			k.constShape = fmt.Sprint(in.P.Const)
		}
	}
	return k
}

func optimizeOnce(l *Lowered) (*Lowered, bool, error) {
	changed := false

	// Pass 1: value numbering with rotation folding. canon[id] maps
	// every SSA id to its canonical representative.
	canon := make([]int, l.NumValues())
	for i := range canon {
		canon[i] = i
	}
	resolve := func(id int) int { return canon[id] }

	// rotProv records, for canonical rotation results, their source and
	// amount, enabling rot-of-rot folding.
	type rotSrc struct{ src, amt int }
	rotProv := map[int]rotSrc{}

	seen := map[cseKey]int{}
	kept := make([]LInstr, 0, len(l.Instrs))
	keptDst := make([]int, 0, len(l.Instrs))

	for _, in := range l.Instrs {
		ni := in
		ni.A = resolve(in.A)
		if in.Op.IsCtCt() {
			ni.B = resolve(in.B)
		}
		// Fold rot(rot(x,a),b) -> rot(x,a+b) and rot by literal 0 ->
		// identity. The folded amount is the LITERAL sum, never reduced
		// modulo the vector size: successive rotations compose
		// additively both on the abstract machine (circular mod n) and
		// on the HE backend (circular mod the ciphertext row), so the
		// literal sum is exact on both — whereas a mod-n reduction
		// would change which slots see the row's zero padding whenever
		// the program vector is shorter than the row. For the same
		// reason only a literal amount of 0 is the identity (rot n
		// shifts the HE row by n), and CSE below merges rotations by
		// literal amount only.
		if ni.Op == OpRotCt {
			if prov, ok := rotProv[ni.A]; ok {
				ni.A = prov.src
				ni.Rot = prov.amt + ni.Rot
				changed = true
			}
			if ni.Rot == 0 {
				canon[in.Dst] = ni.A
				changed = true
				continue
			}
		}
		k := keyOf(ni, func(id int) int { return id })
		if prev, ok := seen[k]; ok {
			canon[in.Dst] = prev
			changed = true
			continue
		}
		seen[k] = in.Dst
		canon[in.Dst] = in.Dst
		if ni.Op == OpRotCt {
			rotProv[in.Dst] = rotSrc{src: ni.A, amt: ni.Rot}
		}
		kept = append(kept, ni)
		keptDst = append(keptDst, in.Dst)
	}

	output := resolve(l.Output)

	// Pass 2: dead-code elimination by backwards reachability.
	live := map[int]bool{output: true}
	for i := len(kept) - 1; i >= 0; i-- {
		if !live[keptDst[i]] {
			continue
		}
		in := kept[i]
		live[in.A] = true
		if in.Op.IsCtCt() {
			live[in.B] = true
		}
	}

	// Pass 3: renumber to dense sequential SSA ids.
	remap := map[int]int{}
	for i := 0; i < l.NumCtInputs; i++ {
		remap[i] = i
	}
	var liveIdx []int
	for i, dst := range keptDst {
		if live[dst] {
			liveIdx = append(liveIdx, i)
		} else {
			changed = true
		}
	}
	sort.Ints(liveIdx)
	out := &Lowered{
		VecLen:      l.VecLen,
		NumCtInputs: l.NumCtInputs,
		NumPtInputs: l.NumPtInputs,
	}
	next := l.NumCtInputs
	for _, i := range liveIdx {
		in := kept[i]
		na, ok := remap[in.A]
		if !ok {
			return nil, false, fmt.Errorf("quill: optimize: operand c%d not yet defined", in.A)
		}
		in.A = na
		if in.Op.IsCtCt() {
			nb, ok := remap[in.B]
			if !ok {
				return nil, false, fmt.Errorf("quill: optimize: operand c%d not yet defined", in.B)
			}
			in.B = nb
		}
		remap[keptDst[i]] = next
		in.Dst = next
		next++
		out.Instrs = append(out.Instrs, in)
	}
	no, ok := remap[output]
	if !ok {
		return nil, false, fmt.Errorf("quill: optimize: output value lost")
	}
	out.Output = no
	if err := out.Validate(); err != nil {
		return nil, false, fmt.Errorf("quill: optimize produced invalid program: %w", err)
	}
	return out, changed, nil
}

// NormRot maps a rotation amount into the canonical range (-n/2, n/2]
// preserving circular-rotation semantics over an n-slot vector: every
// equivalence class mod n has exactly one representative, so two
// rotation amounts are semantically equal on the ABSTRACT machine iff
// their NormRot values are equal. (The ambiguous boundary pair ±n/2
// canonicalizes to +n/2.)
//
// Caution: this equivalence holds on the HE backend only when the
// program vector fills the whole ciphertext row (n == slot count).
// For shorter vectors, BFV row rotation shifts zero padding into the
// vector window instead of wrapping mod n, so rewriting an amount to
// its NormRot representative changes which slots see padding. Program
// transformations must therefore preserve literal amounts; the
// planner (internal/plan) canonicalizes only when it can see that the
// vector fills the row.
func NormRot(r, n int) int {
	r %= n
	if r > n/2 {
		r -= n
	}
	if r <= -n/2 {
		r += n
	}
	return r
}
