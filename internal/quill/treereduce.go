package quill

import "sort"

// treereduce.go rewrites serial slot-reduction chains into the
// cheapest key-switch shape: a decompose-once rotation FAN off the
// base value for narrow windows, or a log-depth doubling TREE for wide
// ones.
//
// A slot reduction accumulates a contiguous window of rotations of one
// value,
//
//	acc = rot(x,c) + rot(x,c+1) + ... + rot(x,c+m-1),
//
// and the natural way to write it — acc = rot(acc,1) + x repeated —
// lowers to a serial fan-out-1 chain: m−1 rotations, each of a
// DIFFERENT source, so neither rotation CSE, the plan hoister (every
// fan-out is 1), nor domain assignment (each rotation ends a chain)
// can touch it. The rewrite re-associates the same sum into one of two
// shapes:
//
//	fan:  acc = Σ_i rot(x, c+i)              — m rotations, ONE source
//	tree: t = x + rot(x, 1); t = t + rot(t, 2); t = t + rot(t, 4); ...
//	                                         — ⌈log m⌉ rotations, each
//	                                           of a DIFFERENT source
//
// The shapes trade the two halves of a key-switch against each other:
// every distinct rotated source needs one RNS digit decomposition
// (digit lift + forward NTTs — the expensive, hoistable prefix), while
// each rotation amount then costs only a digit permutation + lazy
// inner product against that shared decomposition. ksCost models this
// as decompCost per source + 1 per rotation; the rewrite emits
// whichever shape is cheaper. Fans win for the narrow windows real
// kernels have (one decomposition feeds every amount — the
// double-hoisted shape internal/plan's sharing pass executes from one
// decomposition slot), trees win asymptotically. Both shapes cut the
// serial chain's noise growth too, since EstimateNoise charges every
// rotation and addition one bit of depth and both have O(log m) add
// depth. Parallel reductions over different sources come out
// level-aligned, which is exactly the shape the plan layer's
// cross-source batched key switching fuses.
//
// Exactness: either rewrite preserves the multiset of LITERAL rotation
// offsets applied to the base value — it only re-associates the
// additions. Slot addition is associative and commutative in the
// plaintext ring on both the abstract machine and the HE backend, and
// literal offsets compose additively on both (see NormRot for why
// amounts must stay literal), so the rewritten program computes the
// same full vector, zero padding and wraparound included, for every
// vector length.

// maxTreeOffsets bounds the tracked offset-set size so descriptor
// propagation stays linear in program size.
const maxTreeOffsets = 4096

// reduceDesc describes an SSA value as a sum of distinct literal
// rotations of one base value: v = Σ_{k∈offs} rot(base, k). Every
// value has the trivial descriptor (itself, {0}).
type reduceDesc struct {
	base int
	offs []int // sorted, strictly increasing
}

// reduceDescriptors abstractly interprets the program over reduction
// descriptors. Rotation shifts every offset by the literal amount;
// addition of two sums over the same base with disjoint offset sets
// unions them; everything else resets to the trivial descriptor.
func reduceDescriptors(l *Lowered) []reduceDesc {
	descs := make([]reduceDesc, l.NumValues())
	for i := 0; i < l.NumCtInputs; i++ {
		descs[i] = reduceDesc{base: i, offs: []int{0}}
	}
	for _, in := range l.Instrs {
		d := reduceDesc{base: in.Dst, offs: []int{0}}
		switch in.Op {
		case OpRotCt:
			src := descs[in.A]
			offs := make([]int, len(src.offs))
			for j, o := range src.offs {
				offs[j] = o + in.Rot
			}
			d = reduceDesc{base: src.base, offs: offs}
		case OpAddCtCt:
			da, db := descs[in.A], descs[in.B]
			if da.base == db.base && len(da.offs)+len(db.offs) <= maxTreeOffsets {
				if merged, ok := mergeDisjoint(da.offs, db.offs); ok {
					d = reduceDesc{base: da.base, offs: merged}
				}
			}
		}
		descs[in.Dst] = d
	}
	return descs
}

// mergeDisjoint merges two sorted strictly-increasing offset lists,
// reporting failure on any shared offset (x + x is 2·x, not a plain
// reduction).
func mergeDisjoint(a, b []int) ([]int, bool) {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			return nil, false
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, true
}

// RotationCount returns the number of rot-ct instructions — the static
// quantity the tree rewrite drives from O(n) to O(log n) on reduction
// kernels.
func (l *Lowered) RotationCount() int {
	c := 0
	for _, in := range l.Instrs {
		if in.Op == OpRotCt {
			c++
		}
	}
	return c
}

// decompCost is the static cost of one RNS digit decomposition
// relative to one shared-decomposition rotation apply. In the
// NTT-domain evaluator the decomposition (digit lift + K forward NTTs
// + the c1 INTT) costs several NTT passes while the per-amount apply
// is pure pointwise work, so a decomposition is worth roughly four
// applies; the exact constant only moves the fan/tree cutover
// (m ≈ 20+), far above real kernel windows.
const decompCost = 4

// ksCost is the static key-switch cost of a program under the
// double-hoisted execution model: one digit decomposition per DISTINCT
// rotation source plus one automorphism apply per rotation.
func ksCost(l *Lowered) int {
	srcs := map[int]bool{}
	rots := 0
	for _, in := range l.Instrs {
		if in.Op == OpRotCt {
			rots++
			srcs[in.A] = true
		}
	}
	return decompCost*len(srcs) + rots
}

// DecompositionCount returns the number of distinct rotation sources —
// the static count of digit decompositions a double-hoisted plan needs
// for the program's rotations.
func (l *Lowered) DecompositionCount() int {
	srcs := map[int]bool{}
	for _, in := range l.Instrs {
		if in.Op == OpRotCt {
			srcs[in.A] = true
		}
	}
	return len(srcs)
}

// TreeReduceLowered rewrites serial slot-reduction chains in l into
// the cheaper of a decompose-once rotation fan or a log-depth
// rotate-and-add tree, and returns the rewritten (and CSE/DCE-cleaned)
// program plus whether anything changed. A candidate chain is
// rewritten only when doing so strictly reduces the program's static
// key-switch cost (ksCost), so programs already in optimal shape — and
// chains whose partial sums have other consumers — pass through
// unchanged. OptimizeLowered runs this as part of its fixpoint.
func TreeReduceLowered(l *Lowered) (*Lowered, bool, error) {
	if err := l.Validate(); err != nil {
		return nil, false, err
	}
	cur, err := cseDce(l)
	if err != nil {
		return nil, false, err
	}
	changed := false
	for {
		next, ch, err := treeReduceOnce(cur)
		if err != nil {
			return nil, false, err
		}
		if !ch {
			return cur, changed, nil
		}
		cur, changed = next, true
	}
}

// cseDce runs the CSE/DCE cleanup to fixpoint (the non-tree half of
// OptimizeLowered).
func cseDce(l *Lowered) (*Lowered, error) {
	cur := l
	for {
		next, changed, err := optimizeOnce(cur)
		if err != nil {
			return nil, err
		}
		if !changed {
			return next, nil
		}
		cur = next
	}
}

// treeReduceOnce finds the best reduction chain whose rewrite strictly
// lowers the static key-switch cost, applies it, and returns the
// cleaned program. Both shapes (fan and tree) are tried for every
// candidate and compared on the CLEANED whole-program cost, so a fan
// whose base is already rotated elsewhere correctly pays no second
// decomposition. l must already be CSE/DCE-clean so costs compare like
// with like.
func treeReduceOnce(l *Lowered) (*Lowered, bool, error) {
	descs := reduceDescriptors(l)
	type candidate struct{ idx, base, start, m int }
	var cands []candidate
	for idx, in := range l.Instrs {
		d := descs[in.Dst]
		m := len(d.offs)
		if d.base == in.Dst || m < 3 {
			continue
		}
		// Contiguous window: sorted distinct offsets spanning m−1.
		if d.offs[m-1]-d.offs[0] != m-1 {
			continue
		}
		cands = append(cands, candidate{idx: idx, base: d.base, start: d.offs[0], m: m})
	}
	// Widest chain first; later candidates are often its own partial
	// sums and disappear with it.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].m != cands[j].m {
			return cands[i].m > cands[j].m
		}
		return cands[i].idx < cands[j].idx
	})
	before := ksCost(l)
	for _, c := range cands {
		var best *Lowered
		bestCost := before
		for _, fan := range []bool{true, false} {
			rw, err := rewriteReduction(l, c.idx, c.base, c.start, c.m, fan)
			if err != nil {
				return nil, false, err
			}
			cleaned, err := cseDce(rw)
			if err != nil {
				return nil, false, err
			}
			if cost := ksCost(cleaned); cost < bestCost {
				best, bestCost = cleaned, cost
			}
		}
		if best != nil {
			return best, true, nil
		}
	}
	return l, false, nil
}

// rewriteReduction rebuilds l with the instruction at candIdx replaced
// by the requested reduction shape over a window of width m starting
// at offset `start`: the decompose-once fan (every offset rotated
// directly off the base, summed by a balanced add tree) or the
// canonical doubling tree prefixed by rot(base, start) when start ≠ 0.
// The chain's intermediate instructions are left in place for DCE to
// collect — if any of them has another consumer it simply survives.
func rewriteReduction(l *Lowered, candIdx, base, start, m int, fan bool) (*Lowered, error) {
	out := &Lowered{VecLen: l.VecLen, NumCtInputs: l.NumCtInputs, NumPtInputs: l.NumPtInputs}
	remap := make([]int, l.NumValues())
	for i := 0; i < l.NumCtInputs; i++ {
		remap[i] = i
	}
	next := l.NumCtInputs
	emit := func(in LInstr) int {
		in.Dst = next
		out.Instrs = append(out.Instrs, in)
		next++
		return in.Dst
	}
	for idx, in := range l.Instrs {
		if idx == candIdx {
			b := remap[base]
			if fan {
				remap[in.Dst] = emitFan(emit, b, start, m)
			} else {
				if start != 0 {
					b = emit(LInstr{Op: OpRotCt, A: b, Rot: start})
				}
				remap[in.Dst] = emitTree(emit, b, m)
			}
			continue
		}
		ni := in
		ni.A = remap[in.A]
		if in.Op.IsCtCt() {
			ni.B = remap[in.B]
		}
		remap[in.Dst] = emit(ni)
	}
	out.Output = remap[l.Output]
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// emitFan emits instructions computing Σ_{k=0}^{m-1} rot(b, start+k)
// with every rotation taken DIRECTLY off the base value — one digit
// decomposition feeds all m amounts under double-hoisted execution —
// followed by a balanced pairwise add tree (O(log m) add depth, same
// as the doubling tree, so the noise estimate does not regress). The
// literal offset start+k is emitted as-is; offset 0 contributes the
// base itself.
func emitFan(emit func(LInstr) int, b, start, m int) int {
	terms := make([]int, 0, m)
	for k := 0; k < m; k++ {
		if start+k == 0 {
			terms = append(terms, b)
		} else {
			terms = append(terms, emit(LInstr{Op: OpRotCt, A: b, Rot: start + k}))
		}
	}
	for len(terms) > 1 {
		var half []int
		for i := 0; i+1 < len(terms); i += 2 {
			half = append(half, emit(LInstr{Op: OpAddCtCt, A: terms[i], B: terms[i+1]}))
		}
		if len(terms)%2 == 1 {
			half = append(half, terms[len(terms)-1])
		}
		terms = half
	}
	return terms[0]
}

// emitTree emits instructions computing Σ_{k=0}^{m-1} rot(b, k) with
// O(log m) rotations: even widths double the half-width tree
// (T(m) = T(m/2) + rot(T(m/2), m/2)), odd widths add the one missing
// offset from the base (T(m) = T(m−1) + rot(b, m−1)).
func emitTree(emit func(LInstr) int, b, m int) int {
	if m == 1 {
		return b
	}
	if m%2 == 0 {
		t := emitTree(emit, b, m/2)
		r := emit(LInstr{Op: OpRotCt, A: t, Rot: m / 2})
		return emit(LInstr{Op: OpAddCtCt, A: t, B: r})
	}
	t := emitTree(emit, b, m-1)
	r := emit(LInstr{Op: OpRotCt, A: b, Rot: m - 1})
	return emit(LInstr{Op: OpAddCtCt, A: t, B: r})
}
