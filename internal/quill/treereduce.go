package quill

import "sort"

// treereduce.go rewrites serial slot-reduction chains into log-depth
// rotate-and-add trees.
//
// A slot reduction accumulates a contiguous window of rotations of one
// value,
//
//	acc = rot(x,c) + rot(x,c+1) + ... + rot(x,c+m-1),
//
// and the natural way to write it — acc = rot(acc,1) + x repeated —
// lowers to a serial fan-out-1 chain: m−1 rotations, each of a
// DIFFERENT source, so neither rotation CSE, the plan hoister (every
// fan-out is 1), nor domain assignment (each rotation ends a chain)
// can touch it. The rewrite re-associates the same sum into the
// doubling tree
//
//	t = x + rot(x, 1); t = t + rot(t, 2); t = t + rot(t, 4); ...
//
// which needs only O(log m) rotations and O(log m) sequential
// rotate-and-add levels (cutting the serial chain's noise growth too,
// since EstimateNoise charges every rotation and addition one bit of
// depth). Parallel reductions over different sources come out of the
// rewrite with level-aligned rotation amounts, which is exactly the
// shape the plan layer's cross-source batched key switching fuses.
//
// Exactness: the rewrite preserves the multiset of LITERAL rotation
// offsets applied to the base value — it only re-associates the
// additions. Slot addition is associative and commutative in the
// plaintext ring on both the abstract machine and the HE backend, and
// literal offsets compose additively on both (see NormRot for why
// amounts must stay literal), so the rewritten program computes the
// same full vector, zero padding and wraparound included, for every
// vector length.

// maxTreeOffsets bounds the tracked offset-set size so descriptor
// propagation stays linear in program size.
const maxTreeOffsets = 4096

// reduceDesc describes an SSA value as a sum of distinct literal
// rotations of one base value: v = Σ_{k∈offs} rot(base, k). Every
// value has the trivial descriptor (itself, {0}).
type reduceDesc struct {
	base int
	offs []int // sorted, strictly increasing
}

// reduceDescriptors abstractly interprets the program over reduction
// descriptors. Rotation shifts every offset by the literal amount;
// addition of two sums over the same base with disjoint offset sets
// unions them; everything else resets to the trivial descriptor.
func reduceDescriptors(l *Lowered) []reduceDesc {
	descs := make([]reduceDesc, l.NumValues())
	for i := 0; i < l.NumCtInputs; i++ {
		descs[i] = reduceDesc{base: i, offs: []int{0}}
	}
	for _, in := range l.Instrs {
		d := reduceDesc{base: in.Dst, offs: []int{0}}
		switch in.Op {
		case OpRotCt:
			src := descs[in.A]
			offs := make([]int, len(src.offs))
			for j, o := range src.offs {
				offs[j] = o + in.Rot
			}
			d = reduceDesc{base: src.base, offs: offs}
		case OpAddCtCt:
			da, db := descs[in.A], descs[in.B]
			if da.base == db.base && len(da.offs)+len(db.offs) <= maxTreeOffsets {
				if merged, ok := mergeDisjoint(da.offs, db.offs); ok {
					d = reduceDesc{base: da.base, offs: merged}
				}
			}
		}
		descs[in.Dst] = d
	}
	return descs
}

// mergeDisjoint merges two sorted strictly-increasing offset lists,
// reporting failure on any shared offset (x + x is 2·x, not a plain
// reduction).
func mergeDisjoint(a, b []int) ([]int, bool) {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			return nil, false
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, true
}

// RotationCount returns the number of rot-ct instructions — the static
// quantity the tree rewrite drives from O(n) to O(log n) on reduction
// kernels.
func (l *Lowered) RotationCount() int {
	c := 0
	for _, in := range l.Instrs {
		if in.Op == OpRotCt {
			c++
		}
	}
	return c
}

// TreeReduceLowered rewrites serial slot-reduction chains in l into
// log-depth rotate-and-add trees and returns the rewritten (and
// CSE/DCE-cleaned) program plus whether anything changed. A candidate
// chain is rewritten only when doing so strictly reduces the program's
// rotation count, so programs already in tree form — and chains whose
// partial sums have other consumers — pass through unchanged.
// OptimizeLowered runs this as part of its fixpoint.
func TreeReduceLowered(l *Lowered) (*Lowered, bool, error) {
	if err := l.Validate(); err != nil {
		return nil, false, err
	}
	cur, err := cseDce(l)
	if err != nil {
		return nil, false, err
	}
	changed := false
	for {
		next, ch, err := treeReduceOnce(cur)
		if err != nil {
			return nil, false, err
		}
		if !ch {
			return cur, changed, nil
		}
		cur, changed = next, true
	}
}

// cseDce runs the CSE/DCE cleanup to fixpoint (the non-tree half of
// OptimizeLowered).
func cseDce(l *Lowered) (*Lowered, error) {
	cur := l
	for {
		next, changed, err := optimizeOnce(cur)
		if err != nil {
			return nil, err
		}
		if !changed {
			return next, nil
		}
		cur = next
	}
}

// treeReduceOnce finds the best reduction chain whose rewrite strictly
// lowers the rotation count, applies it, and returns the cleaned
// program. l must already be CSE/DCE-clean so rotation counts compare
// like with like.
func treeReduceOnce(l *Lowered) (*Lowered, bool, error) {
	descs := reduceDescriptors(l)
	type candidate struct{ idx, base, start, m int }
	var cands []candidate
	for idx, in := range l.Instrs {
		d := descs[in.Dst]
		m := len(d.offs)
		if d.base == in.Dst || m < 3 {
			continue
		}
		// Contiguous window: sorted distinct offsets spanning m−1.
		if d.offs[m-1]-d.offs[0] != m-1 {
			continue
		}
		cands = append(cands, candidate{idx: idx, base: d.base, start: d.offs[0], m: m})
	}
	// Widest chain first; later candidates are often its own partial
	// sums and disappear with it.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].m != cands[j].m {
			return cands[i].m > cands[j].m
		}
		return cands[i].idx < cands[j].idx
	})
	before := l.RotationCount()
	for _, c := range cands {
		rw, err := rewriteReduction(l, c.idx, c.base, c.start, c.m)
		if err != nil {
			return nil, false, err
		}
		cleaned, err := cseDce(rw)
		if err != nil {
			return nil, false, err
		}
		if cleaned.RotationCount() < before {
			return cleaned, true, nil
		}
	}
	return l, false, nil
}

// rewriteReduction rebuilds l with the instruction at candIdx replaced
// by rot(base, start) (when start ≠ 0) followed by the canonical
// doubling tree over a window of width m. The chain's intermediate
// instructions are left in place for DCE to collect — if any of them
// has another consumer it simply survives.
func rewriteReduction(l *Lowered, candIdx, base, start, m int) (*Lowered, error) {
	out := &Lowered{VecLen: l.VecLen, NumCtInputs: l.NumCtInputs, NumPtInputs: l.NumPtInputs}
	remap := make([]int, l.NumValues())
	for i := 0; i < l.NumCtInputs; i++ {
		remap[i] = i
	}
	next := l.NumCtInputs
	emit := func(in LInstr) int {
		in.Dst = next
		out.Instrs = append(out.Instrs, in)
		next++
		return in.Dst
	}
	for idx, in := range l.Instrs {
		if idx == candIdx {
			b := remap[base]
			if start != 0 {
				b = emit(LInstr{Op: OpRotCt, A: b, Rot: start})
			}
			remap[in.Dst] = emitTree(emit, b, m)
			continue
		}
		ni := in
		ni.A = remap[in.A]
		if in.Op.IsCtCt() {
			ni.B = remap[in.B]
		}
		remap[in.Dst] = emit(ni)
	}
	out.Output = remap[l.Output]
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// emitTree emits instructions computing Σ_{k=0}^{m-1} rot(b, k) with
// O(log m) rotations: even widths double the half-width tree
// (T(m) = T(m/2) + rot(T(m/2), m/2)), odd widths add the one missing
// offset from the base (T(m) = T(m−1) + rot(b, m−1)).
func emitTree(emit func(LInstr) int, b, m int) int {
	if m == 1 {
		return b
	}
	if m%2 == 0 {
		t := emitTree(emit, b, m/2)
		r := emit(LInstr{Op: OpRotCt, A: t, Rot: m / 2})
		return emit(LInstr{Op: OpAddCtCt, A: t, B: r})
	}
	t := emitTree(emit, b, m-1)
	r := emit(LInstr{Op: OpRotCt, A: b, Rot: m - 1})
	return emit(LInstr{Op: OpAddCtCt, A: t, B: r})
}
