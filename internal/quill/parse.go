package quill

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseLowered parses the textual lowered-program format emitted by
// Lowered.String (and accepted by cmd/quillrun):
//
//	; comments and blank lines are ignored
//	vec 32            (optional header; defaults may also come first)
//	ct-inputs 1
//	pt-inputs 0
//	c1 = (rot-ct c0 5)
//	c2 = (add-ct-ct c0 c1)
//	c3 = (mul-ct-pt c2 [2])
//	out c2
//
// Headers may be omitted when a "; lowered quill program:" comment line
// of the printer is present.
func ParseLowered(src string) (*Lowered, error) {
	l := &Lowered{VecLen: 0, NumCtInputs: -1, NumPtInputs: 0, Output: -1}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			// The printer embeds the header in its comment line.
			if strings.Contains(line, "lowered quill program:") {
				for _, f := range strings.Fields(line) {
					if v, ok := strings.CutPrefix(f, "vec="); ok {
						l.VecLen, _ = strconv.Atoi(v)
					}
					if v, ok := strings.CutPrefix(f, "ct-inputs="); ok {
						l.NumCtInputs, _ = strconv.Atoi(v)
					}
					if v, ok := strings.CutPrefix(f, "pt-inputs="); ok {
						l.NumPtInputs, _ = strconv.Atoi(v)
					}
				}
			}
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "vec":
			if len(fields) != 2 {
				return nil, parseErr(lineNo, "vec wants one argument")
			}
			l.VecLen, _ = strconv.Atoi(fields[1])
		case "ct-inputs":
			if len(fields) != 2 {
				return nil, parseErr(lineNo, "ct-inputs wants one argument")
			}
			l.NumCtInputs, _ = strconv.Atoi(fields[1])
		case "pt-inputs":
			if len(fields) != 2 {
				return nil, parseErr(lineNo, "pt-inputs wants one argument")
			}
			l.NumPtInputs, _ = strconv.Atoi(fields[1])
		case "out":
			if len(fields) != 2 {
				return nil, parseErr(lineNo, "out wants one argument")
			}
			id, err := parseValueID(fields[1])
			if err != nil {
				return nil, parseErr(lineNo, err.Error())
			}
			l.Output = id
		default:
			in, err := parseLInstr(line)
			if err != nil {
				return nil, parseErr(lineNo, err.Error())
			}
			l.Instrs = append(l.Instrs, in)
		}
	}
	if l.NumCtInputs < 0 {
		return nil, fmt.Errorf("quill: parse: missing ct-inputs header")
	}
	if l.VecLen == 0 {
		return nil, fmt.Errorf("quill: parse: missing vec header")
	}
	if l.Output < 0 {
		if len(l.Instrs) == 0 {
			return nil, fmt.Errorf("quill: parse: empty program")
		}
		l.Output = l.Instrs[len(l.Instrs)-1].Dst
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

func parseErr(lineNo int, msg string) error {
	return fmt.Errorf("quill: parse line %d: %s", lineNo+1, msg)
}

func parseValueID(s string) (int, error) {
	rest, ok := strings.CutPrefix(s, "c")
	if !ok {
		return 0, fmt.Errorf("expected value id like c3, got %q", s)
	}
	id, err := strconv.Atoi(rest)
	if err != nil || id < 0 {
		return 0, fmt.Errorf("bad value id %q", s)
	}
	return id, nil
}

// parseLInstr parses "cD = (op args...)".
func parseLInstr(line string) (LInstr, error) {
	var in LInstr
	lhs, rhs, ok := strings.Cut(line, "=")
	if !ok {
		return in, fmt.Errorf("expected assignment, got %q", line)
	}
	dst, err := parseValueID(strings.TrimSpace(lhs))
	if err != nil {
		return in, err
	}
	in.Dst = dst
	rhs = strings.TrimSpace(rhs)
	rhs = strings.TrimPrefix(rhs, "(")
	rhs = strings.TrimSuffix(rhs, ")")
	fields := strings.Fields(rhs)
	if len(fields) == 0 {
		return in, fmt.Errorf("empty instruction body")
	}
	var op Op = -1
	for o, name := range opNames {
		if name == fields[0] {
			op = o
			break
		}
	}
	if op == -1 {
		return in, fmt.Errorf("unknown opcode %q", fields[0])
	}
	in.Op = op
	if len(fields) < 2 {
		return in, fmt.Errorf("opcode %s wants operands", op)
	}
	if in.A, err = parseValueID(fields[1]); err != nil {
		return in, err
	}
	switch {
	case op == OpRelin:
		if len(fields) != 2 {
			return in, fmt.Errorf("relin wants one operand")
		}
	case op == OpRotCt:
		if len(fields) != 3 {
			return in, fmt.Errorf("rot-ct wants an operand and an amount")
		}
		if in.Rot, err = strconv.Atoi(fields[2]); err != nil {
			return in, fmt.Errorf("bad rotation %q", fields[2])
		}
	case op.IsCtCt():
		if len(fields) != 3 {
			return in, fmt.Errorf("%s wants two operands", op)
		}
		if in.B, err = parseValueID(fields[2]); err != nil {
			return in, err
		}
	default: // ct-pt
		rest := strings.TrimSpace(strings.TrimPrefix(rhs, fields[0]))
		rest = strings.TrimSpace(strings.TrimPrefix(rest, fields[1]))
		if in.P, err = parsePtRef(rest); err != nil {
			return in, err
		}
	}
	return in, nil
}

func parsePtRef(s string) (PtRef, error) {
	s = strings.TrimSpace(s)
	if rest, ok := strings.CutPrefix(s, "p"); ok && !strings.HasPrefix(s, "[") {
		idx, err := strconv.Atoi(rest)
		if err != nil || idx < 0 {
			return PtRef{}, fmt.Errorf("bad plaintext ref %q", s)
		}
		return PtRef{Input: idx}, nil
	}
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return PtRef{}, fmt.Errorf("bad plaintext operand %q", s)
	}
	body := strings.TrimSuffix(strings.TrimPrefix(s, "["), "]")
	var consts []int64
	for _, f := range strings.Fields(body) {
		if f == "..." {
			continue
		}
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return PtRef{}, fmt.Errorf("bad constant %q", f)
		}
		consts = append(consts, v)
	}
	if len(consts) == 0 {
		return PtRef{}, fmt.Errorf("empty constant vector")
	}
	return PtRef{Input: -1, Const: consts}, nil
}
