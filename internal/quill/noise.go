package quill

import (
	"fmt"
	"math"
)

// NoiseParams describes a BFV parameter set for static noise
// estimation: the quantities the invariant-noise growth rules depend
// on. Use backend-independent values (bfv.Parameters exposes them).
type NoiseParams struct {
	N           int     // ring degree
	LogQ        float64 // bits of the ciphertext modulus
	LogMaxPrime float64 // bits of the largest RNS prime (key-switch digit size)
	NumPrimes   int     // RNS basis size
	T           uint64  // plaintext modulus
}

// errStdDev is the standard deviation of the error distribution
// (centered binomial, ring.Sampler).
const errStdDev = 3.2

// NoiseEstimate reports per-value and output noise in bits, plus the
// predicted remaining invariant-noise budget.
type NoiseEstimate struct {
	// Bits[i] is the estimated log2 of the scaled invariant noise of
	// SSA value i (inputs hold fresh-encryption noise).
	Bits []float64
	// OutputBits is Bits at the program output.
	OutputBits float64
	// Budget is the predicted decryption budget in bits:
	// LogQ − 1 − OutputBits. Decryption fails when it reaches zero.
	Budget float64
}

// EstimateNoise statically predicts the noise of every value of a
// lowered program under the paper's Table-1 growth rules, extended
// from multiplicative-depth bookkeeping to quantitative bit estimates:
//
//	fresh       log2(t · err · N)            (public-key encryption)
//	add ct,ct   max + 1
//	add ct,pt   unchanged (rounding-level contribution only)
//	mul ct,pt   + log2(t) + log2(N)/2        (plaintext magnitude ≤ t)
//	mul ct,ct   max + log2(t) + log2(N) + 2  (BFV tensor scaling)
//	rot/relin   max(v, key-switch floor) + 1
//
// The key-switch floor is log2(t · N · err · p_max · k). These are
// heuristic worst-case-shaped rules, calibrated against the bfv
// backend (see noise_test.go); they are intended for the same use as
// the paper's noise metadata — ranking candidate programs and sizing
// parameters — not as a cryptographic bound.
func EstimateNoise(l *Lowered, np NoiseParams) (*NoiseEstimate, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if np.N <= 0 || np.LogQ <= 0 || np.T == 0 {
		return nil, fmt.Errorf("quill: EstimateNoise: incomplete noise parameters")
	}
	logT := math.Log2(float64(np.T))
	logN := math.Log2(float64(np.N))
	fresh := logT + math.Log2(errStdDev) + logN + 2
	ksFloor := logT + logN + math.Log2(errStdDev) + np.LogMaxPrime + math.Log2(float64(max(np.NumPrimes, 1)))

	bits := make([]float64, l.NumValues())
	for i := 0; i < l.NumCtInputs; i++ {
		bits[i] = fresh
	}
	for _, in := range l.Instrs {
		a := bits[in.A]
		var out float64
		switch in.Op {
		case OpAddCtCt, OpSubCtCt:
			out = math.Max(a, bits[in.B]) + 1
		case OpAddCtPt, OpSubCtPt:
			out = a
		case OpMulCtPt:
			out = a + logT + logN/2
		case OpMulCtCt:
			out = math.Max(a, bits[in.B]) + logT + logN + 2
		case OpRotCt, OpRelin:
			out = math.Max(a, ksFloor) + 1
		default:
			return nil, fmt.Errorf("quill: EstimateNoise: unknown opcode %v", in.Op)
		}
		bits[in.Dst] = out
	}
	est := &NoiseEstimate{Bits: bits, OutputBits: bits[l.Output]}
	est.Budget = np.LogQ - 1 - est.OutputBits
	if est.Budget < 0 {
		est.Budget = 0
	}
	return est, nil
}

// BudgetGain reports the change in predicted decryption budget going
// from program a to program b under np: EstimateNoise(b).Budget −
// EstimateNoise(a).Budget. Under the growth rules above a serial
// reduction chain pays one rotation (key-switch floor + 1) and one
// addition (+1) per accumulated offset, while the log-depth tree of
// treereduce.go pays that only per level, so the rewrite's gain is
// never negative; noise_test.go pins tree ≥ serial for every
// reduction kernel.
func BudgetGain(a, b *Lowered, np NoiseParams) (float64, error) {
	ea, err := EstimateNoise(a, np)
	if err != nil {
		return 0, err
	}
	eb, err := EstimateNoise(b, np)
	if err != nil {
		return 0, err
	}
	return eb.Budget - ea.Budget, nil
}

// FitsParams reports whether the program is predicted to decrypt
// correctly under the given parameters, with the requested safety
// margin in bits.
func FitsParams(l *Lowered, np NoiseParams, marginBits float64) (bool, error) {
	est, err := EstimateNoise(l, np)
	if err != nil {
		return false, err
	}
	return est.Budget > marginBits, nil
}
