package quill

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOptimizeCSE(t *testing.T) {
	// Two identical rotations and a redundant commutative add.
	l := &Lowered{
		VecLen: 8, NumCtInputs: 2,
		Instrs: []LInstr{
			{Op: OpRotCt, Dst: 2, A: 0, Rot: 1},
			{Op: OpRotCt, Dst: 3, A: 0, Rot: 1}, // duplicate rotation
			{Op: OpAddCtCt, Dst: 4, A: 2, B: 1}, // c2+c1
			{Op: OpAddCtCt, Dst: 5, A: 1, B: 3}, // c1+c3 == c1+c2 (commuted duplicate)
			{Op: OpMulCtCt, Dst: 6, A: 4, B: 5}, // square after CSE
		},
		Output: 6,
	}
	opt, err := OptimizeLowered(l)
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.InstructionCount(); got != 3 {
		t.Errorf("optimized to %d instructions, want 3\n%s", got, opt)
	}
	// Semantics preserved.
	in := []Vec{{1, 2, 3, 4, 5, 6, 7, 8}, {8, 7, 6, 5, 4, 3, 2, 1}}
	want, err := RunLowered(l, ConcreteSem{}, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLowered(opt, ConcreteSem{}, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("slot %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestOptimizeDCE(t *testing.T) {
	l := &Lowered{
		VecLen: 8, NumCtInputs: 1,
		Instrs: []LInstr{
			{Op: OpAddCtCt, Dst: 1, A: 0, B: 0},
			{Op: OpRotCt, Dst: 2, A: 1, Rot: 2}, // dead
			{Op: OpAddCtCt, Dst: 3, A: 1, B: 1},
		},
		Output: 3,
	}
	opt, err := OptimizeLowered(l)
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.InstructionCount(); got != 2 {
		t.Errorf("dead rotation not removed: %d instructions\n%s", got, opt)
	}
}

func TestOptimizeRotationFolding(t *testing.T) {
	l := &Lowered{
		VecLen: 8, NumCtInputs: 1,
		Instrs: []LInstr{
			{Op: OpRotCt, Dst: 1, A: 0, Rot: 3},
			{Op: OpRotCt, Dst: 2, A: 1, Rot: 2}, // rot-of-rot: fold to rot 5 -> -3
			{Op: OpAddCtCt, Dst: 3, A: 2, B: 0},
		},
		Output: 3,
	}
	opt, err := OptimizeLowered(l)
	if err != nil {
		t.Fatal(err)
	}
	rotCount := 0
	for _, in := range opt.Instrs {
		if in.Op == OpRotCt {
			rotCount++
			if in.A != 0 {
				t.Error("folded rotation should source from the input")
			}
		}
	}
	if rotCount != 1 {
		t.Errorf("expected a single folded rotation, got %d\n%s", rotCount, opt)
	}
	in := []Vec{{10, 20, 30, 40, 50, 60, 70, 80}}
	want, _ := RunLowered(l, ConcreteSem{}, in, nil)
	got, _ := RunLowered(opt, ConcreteSem{}, in, nil)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("folding changed semantics at slot %d", i)
		}
	}
}

func TestOptimizeRotZeroIdentity(t *testing.T) {
	// A literal rot 0 is the identity on both the abstract machine and
	// the HE row and must vanish. rot(rot(x,4),4) folds to the literal
	// rot 8 — ≡ 0 abstractly but NOT on a zero-padded HE row, so it
	// must survive as one instruction (see rot_norm_test.go).
	l := &Lowered{
		VecLen: 8, NumCtInputs: 1,
		Instrs: []LInstr{
			{Op: OpRotCt, Dst: 1, A: 0, Rot: 0}, // literal identity
			{Op: OpRotCt, Dst: 2, A: 1, Rot: 4},
			{Op: OpRotCt, Dst: 3, A: 2, Rot: 4}, // folds to literal rot 8
			{Op: OpAddCtCt, Dst: 4, A: 3, B: 0},
		},
		Output: 4,
	}
	opt, err := OptimizeLowered(l)
	if err != nil {
		t.Fatal(err)
	}
	var rots []int
	for _, in := range opt.Instrs {
		if in.Op == OpRotCt {
			rots = append(rots, in.Rot)
		}
	}
	if len(rots) != 1 || rots[0] != 8 {
		t.Errorf("rotations after optimization = %v, want [8] (rot 0 elided, 4+4 folded literally)\n%s", rots, opt)
	}
	in := []Vec{{1, 2, 3, 4, 5, 6, 7, 8}}
	want, _ := RunLowered(l, ConcreteSem{}, in, nil)
	got, _ := RunLowered(opt, ConcreteSem{}, in, nil)
	for i := range want {
		if want[i] != got[i] {
			t.Fatal("optimization changed semantics")
		}
	}
}

// TestOptimizePreservesSemanticsProperty checks on random programs
// that optimization never changes observable behavior and never grows
// the program.
func TestOptimizePreservesSemanticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		l, err := Lower(p, DefaultLowerOptions())
		if err != nil {
			return false
		}
		opt, err := OptimizeLowered(l)
		if err != nil {
			return false
		}
		if opt.InstructionCount() > l.InstructionCount() {
			return false
		}
		ctIn := make([]Vec, p.NumCtInputs)
		for i := range ctIn {
			ctIn[i] = randomVec(rng, p.VecLen)
		}
		ptIn := make([]Vec, p.NumPtInputs)
		for i := range ptIn {
			ptIn[i] = randomVec(rng, p.VecLen)
		}
		want, err := RunLowered(l, ConcreteSem{}, ctIn, ptIn)
		if err != nil {
			return false
		}
		got, err := RunLowered(opt, ConcreteSem{}, ctIn, ptIn)
		if err != nil {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeInvalidInput(t *testing.T) {
	bad := &Lowered{VecLen: 7, NumCtInputs: 1}
	if _, err := OptimizeLowered(bad); err == nil {
		t.Error("invalid program should fail")
	}
}

func TestNormRot(t *testing.T) {
	cases := []struct{ r, n, want int }{
		{0, 8, 0}, {8, 8, 0}, {-8, 8, 0}, {16, 8, 0}, {9, 8, 1}, {-9, 8, -1},
		{5, 8, -3}, {-5, 8, 3}, {4, 8, 4}, {-4, 8, 4}, {12, 8, 4}, {-12, 8, 4},
		{7, 8, -1}, {1000, 8, 0}, {-1000, 8, 0}, {511, 1024, 511}, {-512, 1024, 512},
	}
	for _, c := range cases {
		if got := NormRot(c.r, c.n); got != c.want {
			t.Errorf("NormRot(%d,%d) = %d, want %d", c.r, c.n, got, c.want)
		}
	}
	// Canonical representative: equivalent amounts always normalize to
	// the same value (the boundary pair ±n/2 included).
	for n := 2; n <= 64; n *= 2 {
		for r := -2 * n; r <= 2*n; r++ {
			a, b := NormRot(r, n), NormRot(r+n, n)
			if a != b {
				t.Fatalf("NormRot(%d,%d)=%d != NormRot(%d,%d)=%d", r, n, a, r+n, n, b)
			}
			if a <= -n/2 || a > n/2 {
				t.Fatalf("NormRot(%d,%d)=%d outside (-n/2, n/2]", r, n, a)
			}
		}
	}
}
