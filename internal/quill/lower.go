package quill

import (
	"fmt"
	"strings"
)

// LInstr is one instruction of a lowered program: the explicit SEAL
// instruction stream. Dst is the SSA id defined by the instruction.
type LInstr struct {
	Op  Op
	Dst int
	A   int // ciphertext operand
	B   int // second ciphertext operand (ct-ct ops)
	Rot int // rotation amount (OpRotCt)
	P   PtRef
}

func (in LInstr) String() string {
	switch {
	case in.Op == OpRotCt:
		return fmt.Sprintf("c%d = (rot-ct c%d %d)", in.Dst, in.A, in.Rot)
	case in.Op == OpRelin:
		return fmt.Sprintf("c%d = (relin c%d)", in.Dst, in.A)
	case in.Op.IsCtCt():
		return fmt.Sprintf("c%d = (%s c%d c%d)", in.Dst, in.Op, in.A, in.B)
	default:
		return fmt.Sprintf("c%d = (%s c%d %s)", in.Dst, in.Op, in.A, in.P)
	}
}

// Lowered is a Quill program in explicit-instruction form.
type Lowered struct {
	VecLen      int
	NumCtInputs int
	NumPtInputs int
	Instrs      []LInstr
	Output      int
}

// NumValues returns the number of SSA values (inputs + results).
func (l *Lowered) NumValues() int { return l.NumCtInputs + len(l.Instrs) }

// String renders the lowered program.
func (l *Lowered) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; lowered quill program: vec=%d ct-inputs=%d pt-inputs=%d\n", l.VecLen, l.NumCtInputs, l.NumPtInputs)
	for _, in := range l.Instrs {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "out c%d\n", l.Output)
	return b.String()
}

// InstructionCount returns the number of instructions — the quantity
// reported in the paper's Table 2.
func (l *Lowered) InstructionCount() int { return len(l.Instrs) }

// Depth returns the longest def-use path through the instruction DAG
// (inputs have depth 0) — the "Depth" column of Table 2.
func (l *Lowered) Depth() int {
	depth := make([]int, l.NumValues())
	max := 0
	for _, in := range l.Instrs {
		d := depth[in.A]
		if in.Op.IsCtCt() && depth[in.B] > d {
			d = depth[in.B]
		}
		d++
		depth[in.Dst] = d
		if d > max {
			max = d
		}
	}
	return max
}

// MultDepth returns the multiplicative depth of the output value.
func (l *Lowered) MultDepth() int {
	depth := make([]int, l.NumValues())
	for _, in := range l.Instrs {
		d := depth[in.A]
		if in.Op.IsCtCt() && depth[in.B] > d {
			d = depth[in.B]
		}
		if in.Op == OpMulCtCt || in.Op == OpMulCtPt {
			d++
		}
		depth[in.Dst] = d
	}
	return depth[l.Output]
}

// Validate checks SSA well-formedness of the lowered program.
func (l *Lowered) Validate() error {
	if l.VecLen <= 0 || l.VecLen&(l.VecLen-1) != 0 {
		return fmt.Errorf("quill: vector length %d is not a positive power of two", l.VecLen)
	}
	next := l.NumCtInputs
	for i, in := range l.Instrs {
		if in.Dst != next {
			return fmt.Errorf("quill: lowered instr %d defines c%d, want c%d", i, in.Dst, next)
		}
		if in.A < 0 || in.A >= next {
			return fmt.Errorf("quill: lowered instr %d references undefined c%d", i, in.A)
		}
		if in.Op.IsCtCt() && (in.B < 0 || in.B >= next) {
			return fmt.Errorf("quill: lowered instr %d references undefined c%d", i, in.B)
		}
		if in.Op.IsCtPt() && (in.P.Input < -1 || in.P.Input >= l.NumPtInputs) {
			return fmt.Errorf("quill: lowered instr %d references undefined plaintext p%d", i, in.P.Input)
		}
		next++
	}
	if l.Output < 0 || l.Output >= next {
		return fmt.Errorf("quill: output c%d undefined", l.Output)
	}
	return nil
}

// LowerOptions controls lowering.
type LowerOptions struct {
	// InsertRelin inserts a relinearization after every ct-ct multiply,
	// as the paper's code generation does (§5.3). Default true via
	// DefaultLowerOptions.
	InsertRelin bool
}

// DefaultLowerOptions matches the paper's code generation.
func DefaultLowerOptions() LowerOptions { return LowerOptions{InsertRelin: true} }

// Lower converts a local-rotate program to explicit instruction form:
// each distinct (value, rotation) operand pair becomes one rot-ct
// instruction (common rotations are shared, which is how the paper
// counts, e.g., the synthesized Gx kernel at 7 instructions), and
// relinearization is inserted after ct-ct multiplies when requested.
func Lower(p *Program, opts LowerOptions) (*Lowered, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	l := &Lowered{VecLen: p.VecLen, NumCtInputs: p.NumCtInputs, NumPtInputs: p.NumPtInputs}
	// remap[sketch id] = lowered id of the same value.
	remap := make([]int, p.NumValues())
	for i := 0; i < p.NumCtInputs; i++ {
		remap[i] = i
	}
	next := p.NumCtInputs
	type rotKey struct{ id, rot int }
	rotCache := map[rotKey]int{}

	resolve := func(r CtRef) int {
		base := remap[r.ID]
		if r.Rot == 0 {
			return base
		}
		// Rotations are shared by their literal amount only. Amounts
		// that are equal modulo the vector size (rot 7 ≡ rot -1 on an
		// 8-vector) are interchangeable on the abstract machine but NOT
		// on the HE backend when the program vector is shorter than the
		// ciphertext row: row rotation shifts zero padding in instead
		// of wrapping, and which slots see padding depends on the
		// literal amount. Canonicalization happens at plan compile
		// time, where the target row size is known (internal/plan).
		key := rotKey{base, r.Rot}
		if id, ok := rotCache[key]; ok {
			return id
		}
		l.Instrs = append(l.Instrs, LInstr{Op: OpRotCt, Dst: next, A: base, Rot: r.Rot})
		rotCache[key] = next
		next++
		return next - 1
	}

	for i, in := range p.Instrs {
		var li LInstr
		li.Op = in.Op
		li.A = resolve(in.A)
		if in.Op.IsCtCt() {
			li.B = resolve(in.B)
		} else {
			li.P = in.P
		}
		li.Dst = next
		l.Instrs = append(l.Instrs, li)
		next++
		if in.Op == OpMulCtCt && opts.InsertRelin {
			l.Instrs = append(l.Instrs, LInstr{Op: OpRelin, Dst: next, A: next - 1})
			next++
		}
		remap[p.NumCtInputs+i] = next - 1
	}
	l.Output = remap[p.Output]
	return l, nil
}

// Concat appends program b after program a, feeding selected outputs of
// a into b's ciphertext inputs. inputMap[i] gives, for each ciphertext
// input i of b, the SSA id in a's value space to substitute. Plaintext
// inputs of b are appended after a's plaintext inputs. This implements
// the paper's multi-step synthesis composition (§6.3): large pipelines
// like Sobel and Harris are stitched from independently synthesized
// kernels.
func Concat(a *Lowered, b *Lowered, inputMap []int) (*Lowered, error) {
	if len(inputMap) != b.NumCtInputs {
		return nil, fmt.Errorf("quill: Concat input map has %d entries, want %d", len(inputMap), b.NumCtInputs)
	}
	if a.VecLen != b.VecLen {
		return nil, fmt.Errorf("quill: Concat vector lengths differ (%d vs %d)", a.VecLen, b.VecLen)
	}
	for _, id := range inputMap {
		if id < 0 || id >= a.NumValues() {
			return nil, fmt.Errorf("quill: Concat input map references undefined value c%d", id)
		}
	}
	out := &Lowered{
		VecLen:      a.VecLen,
		NumCtInputs: a.NumCtInputs,
		NumPtInputs: a.NumPtInputs + b.NumPtInputs,
		Instrs:      append([]LInstr(nil), a.Instrs...),
		Output:      a.Output,
	}
	offset := a.NumValues() - b.NumCtInputs
	mapID := func(id int) int {
		if id < b.NumCtInputs {
			return inputMap[id]
		}
		return id + offset
	}
	for _, in := range b.Instrs {
		ni := in
		ni.Dst = mapID(in.Dst)
		ni.A = mapID(in.A)
		if in.Op.IsCtCt() {
			ni.B = mapID(in.B)
		}
		if in.Op.IsCtPt() && in.P.Input >= 0 {
			ni.P.Input = in.P.Input + a.NumPtInputs
		}
		out.Instrs = append(out.Instrs, ni)
	}
	out.Output = mapID(b.Output)
	return out, nil
}
