package quill

import "testing"

// The rotation-amount contract these tests pin down: quill-level
// passes treat rotation amounts as LITERAL. Amounts that are equal
// modulo the vector size (rot 7 ≡ rot -1 on an 8-vector) are
// interchangeable on the abstract machine but NOT on the HE backend
// when the program vector is shorter than the ciphertext row — row
// rotation shifts zero padding into the window, and which slots see
// padding depends on the literal amount. So Lower and Concat preserve
// amounts, OptimizeLowered folds rot-of-rot by literal sum (exact on
// both machines: rotations compose additively), CSE merges only
// identical literals, and only a literal 0 is the identity.

// checkSameSemantics runs both programs on a fixed input and requires
// identical outputs on every slot (abstract machine).
func checkSameSemantics(t *testing.T, a, b *Lowered, nCt, nPt int) {
	t.Helper()
	vecLen := a.VecLen
	ctIn := make([]Vec, nCt)
	for i := range ctIn {
		v := make(Vec, vecLen)
		for j := range v {
			v[j] = uint64(i*31+j*7+3) % Modulus
		}
		ctIn[i] = v
	}
	ptIn := make([]Vec, nPt)
	for i := range ptIn {
		v := make(Vec, vecLen)
		for j := range v {
			v[j] = uint64(i*17+j*5+1) % Modulus
		}
		ptIn[i] = v
	}
	want, err := RunLowered(a, ConcreteSem{}, ctIn, ptIn)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLowered(b, ConcreteSem{}, ctIn, ptIn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("slot %d: %d != %d\nbefore:\n%s\nafter:\n%s", i, got[i], want[i], a, b)
		}
	}
}

// TestLowerPreservesLiteralRotations checks that lowering keeps
// rotation amounts exactly as written: abstractly equivalent amounts
// (7 ≡ -1 mod 8) stay distinct instructions, because they are not
// equivalent on a zero-padded HE row.
func TestLowerPreservesLiteralRotations(t *testing.T) {
	p := &Program{
		VecLen: 8, NumCtInputs: 1,
		Instrs: []Instr{
			{Op: OpAddCtCt, A: CtRef{ID: 0, Rot: 7}, B: CtRef{ID: 0, Rot: -1}},
			{Op: OpAddCtCt, A: CtRef{ID: 1, Rot: 0}, B: CtRef{ID: 0, Rot: 7}},
		},
		Output: 2,
	}
	l, err := Lower(p, DefaultLowerOptions())
	if err != nil {
		t.Fatal(err)
	}
	var rots []int
	for _, in := range l.Instrs {
		if in.Op == OpRotCt {
			rots = append(rots, in.Rot)
		}
	}
	// rot 7 shared between the two uses, rot -1 separate, rot 0 elided.
	if len(rots) != 2 {
		t.Fatalf("lowered rotations = %v, want exactly [7 -1] (literal sharing only)\n%s", rots, l)
	}
	seen := map[int]bool{rots[0]: true, rots[1]: true}
	if !seen[7] || !seen[-1] {
		t.Errorf("lowered rotations = %v, want literal 7 and -1 preserved", rots)
	}
}

// TestOptimizeRotFoldWraparound checks rot-of-rot folding when the
// literal sum passes the vector size (negative and ≥ n): the fold
// must keep the literal sum — exact on both the abstract machine and
// the HE row — and must not reduce it modulo the vector size, which
// would change HE zero-padding behavior for short vectors.
func TestOptimizeRotFoldWraparound(t *testing.T) {
	cases := []struct {
		name    string
		a, b    int // chained rotation amounts
		folded  int // expected literal amount after folding
		expectN int // surviving rot instructions
	}{
		{"sum-past-n", 5, 6, 11, 1},
		{"sum-past-negative-n", -5, -6, -11, 1},
		{"sum-multiple-of-n", 3, 5, 8, 1},    // ≡ 0 abstractly, NOT identity on a padded row
		{"sum-cancels-to-zero", 3, -3, 0, 0}, // literal 0: identity everywhere
		{"half-n-pair", 4, 8, 12, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			l := &Lowered{
				VecLen: 8, NumCtInputs: 1,
				Instrs: []LInstr{
					{Op: OpRotCt, Dst: 1, A: 0, Rot: c.a},
					{Op: OpRotCt, Dst: 2, A: 1, Rot: c.b},
					{Op: OpAddCtCt, Dst: 3, A: 2, B: 0},
				},
				Output: 3,
			}
			opt, err := OptimizeLowered(l)
			if err != nil {
				t.Fatal(err)
			}
			var rots []int
			for _, in := range opt.Instrs {
				if in.Op == OpRotCt {
					rots = append(rots, in.Rot)
				}
			}
			if len(rots) != c.expectN {
				t.Fatalf("%d rot instructions after folding, want %d\n%s", len(rots), c.expectN, opt)
			}
			if c.expectN == 1 && rots[0] != c.folded {
				t.Errorf("folded amount = %d, want literal %d (no mod-n reduction)", rots[0], c.folded)
			}
			checkSameSemantics(t, l, opt, 1, 0)
		})
	}
}

// TestOptimizeKeepsAbstractlyEquivalentRotationsDistinct checks that
// CSE does NOT merge rot n/2 with rot -n/2 (nor any other abstractly
// equivalent pair): on a zero-padded HE row they shift padding into
// opposite halves of the window.
func TestOptimizeKeepsAbstractlyEquivalentRotationsDistinct(t *testing.T) {
	l := &Lowered{
		VecLen: 8, NumCtInputs: 1,
		Instrs: []LInstr{
			{Op: OpRotCt, Dst: 1, A: 0, Rot: 4},
			{Op: OpRotCt, Dst: 2, A: 0, Rot: -4},
			{Op: OpAddCtCt, Dst: 3, A: 1, B: 2},
		},
		Output: 3,
	}
	opt, err := OptimizeLowered(l)
	if err != nil {
		t.Fatal(err)
	}
	rots := 0
	for _, in := range opt.Instrs {
		if in.Op == OpRotCt {
			rots++
		}
	}
	if rots != 2 {
		t.Errorf("rot 4 and rot -4 merged (%d rot instructions): unsound on a zero-padded HE row\n%s", rots, opt)
	}
	checkSameSemantics(t, l, opt, 1, 0)
}

// TestConcatPreservesRotations checks that stitching segments keeps
// every rotation amount literally intact, and that the cross-segment
// rot-of-rot fold in OptimizeLowered then produces literal sums.
func TestConcatPreservesRotations(t *testing.T) {
	a := &Lowered{
		VecLen: 8, NumCtInputs: 1,
		Instrs: []LInstr{
			{Op: OpRotCt, Dst: 1, A: 0, Rot: 6},
			{Op: OpAddCtCt, Dst: 2, A: 1, B: 0},
		},
		Output: 1, // b consumes the rotation directly
	}
	b := &Lowered{
		VecLen: 8, NumCtInputs: 1,
		Instrs: []LInstr{
			{Op: OpRotCt, Dst: 1, A: 0, Rot: 7},
			{Op: OpSubCtCt, Dst: 2, A: 0, B: 1},
		},
		Output: 2,
	}
	cat, err := Concat(a, b, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	amounts := map[int]int{}
	for _, in := range cat.Instrs {
		if in.Op == OpRotCt {
			amounts[in.Rot]++
		}
	}
	if amounts[6] != 1 || amounts[7] != 1 {
		t.Errorf("Concat changed rotation amounts: %v, want literal 6 and 7", amounts)
	}
	// The optimizer folds the cross-segment rot(rot(x,6),7) chain into
	// a literal rot 13 (6+7, no mod-8 reduction); rot 6 survives as the
	// other subtraction operand.
	opt, err := OptimizeLowered(cat)
	if err != nil {
		t.Fatal(err)
	}
	optAmounts := map[int]bool{}
	rots := 0
	for _, in := range opt.Instrs {
		if in.Op == OpRotCt {
			rots++
			optAmounts[in.Rot] = true
		}
	}
	if rots != 2 || !optAmounts[6] || !optAmounts[13] {
		t.Errorf("cross-segment fold kept %d rotations %v, want literal 6 and 13\n%s", rots, optAmounts, opt)
	}
	checkSameSemantics(t, cat, opt, 1, 0)
}
