package quill

import "testing"

func testNoiseParams() NoiseParams {
	return NoiseParams{N: 4096, LogQ: 108, LogMaxPrime: 36, NumPrimes: 3, T: 65537}
}

func TestEstimateNoiseGrowthRules(t *testing.T) {
	np := testNoiseParams()
	mk := func(instrs ...LInstr) *Lowered {
		return &Lowered{VecLen: 8, NumCtInputs: 2, Instrs: instrs,
			Output: 1 + len(instrs)}
	}
	fresh, err := EstimateNoise(&Lowered{VecLen: 8, NumCtInputs: 1, Instrs: []LInstr{
		{Op: OpAddCtPt, Dst: 1, A: 0, P: PtRef{Input: -1, Const: []int64{1}}},
	}, Output: 1}, np)
	if err != nil {
		t.Fatal(err)
	}
	add, err := EstimateNoise(mk(LInstr{Op: OpAddCtCt, Dst: 2, A: 0, B: 1}), np)
	if err != nil {
		t.Fatal(err)
	}
	mul, err := EstimateNoise(mk(
		LInstr{Op: OpMulCtCt, Dst: 2, A: 0, B: 1},
		LInstr{Op: OpRelin, Dst: 3, A: 2},
	), np)
	if err != nil {
		t.Fatal(err)
	}
	rot, err := EstimateNoise(mk(LInstr{Op: OpRotCt, Dst: 2, A: 0, Rot: 1}), np)
	if err != nil {
		t.Fatal(err)
	}
	// Key-switch-bearing ops (rotation, relinearized multiply) sit on
	// the key-switch noise floor, far above plain additions.
	if mul.OutputBits < rot.OutputBits {
		t.Errorf("relinearized multiply (%.1f bits) below rotation (%.1f)", mul.OutputBits, rot.OutputBits)
	}
	if rot.OutputBits <= add.OutputBits {
		t.Errorf("rotation (%.1f bits) should exceed addition (%.1f)", rot.OutputBits, add.OutputBits)
	}
	if add.OutputBits <= fresh.OutputBits {
		t.Error("addition should add noise over fresh")
	}
	if mul.Budget >= fresh.Budget {
		t.Error("multiplication should consume budget")
	}
}

func TestEstimateNoiseDepthScaling(t *testing.T) {
	np := testNoiseParams()
	// Chain of k squarings: noise bits grow monotonically and the
	// budget (clamped at zero) is exhausted within the depth the
	// PN4096-sized modulus supports.
	prevBits := 0.0
	l := &Lowered{VecLen: 8, NumCtInputs: 1}
	cur := 0
	var lastBudget float64
	for depth := 1; depth <= 6; depth++ {
		m := len(l.Instrs)
		l.Instrs = append(l.Instrs,
			LInstr{Op: OpMulCtCt, Dst: 1 + m, A: cur, B: cur},
			LInstr{Op: OpRelin, Dst: 2 + m, A: 1 + m},
		)
		cur = 2 + m
		l.Output = cur
		est, err := EstimateNoise(l, np)
		if err != nil {
			t.Fatal(err)
		}
		if est.OutputBits <= prevBits {
			t.Errorf("depth %d: noise %.1f bits did not grow from %.1f", depth, est.OutputBits, prevBits)
		}
		prevBits = est.OutputBits
		lastBudget = est.Budget
	}
	if lastBudget != 0 {
		t.Errorf("depth-6 chain should exhaust a 108-bit modulus (budget %.1f)", lastBudget)
	}
	// A depth-1 multiply must fit PN4096 per the model.
	one := &Lowered{VecLen: 8, NumCtInputs: 1, Instrs: []LInstr{
		{Op: OpMulCtCt, Dst: 1, A: 0, B: 0},
		{Op: OpRelin, Dst: 2, A: 1},
	}, Output: 2}
	if ok, err := FitsParams(one, np, 0); err != nil || !ok {
		t.Errorf("single multiply should fit PN4096 (err %v)", err)
	}
}
