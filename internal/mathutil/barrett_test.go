package mathutil

import (
	"math/big"
	"math/bits"
	"math/rand"
	"testing"
)

func testPrimes(t *testing.T) []uint64 {
	t.Helper()
	primes, err := GenerateNTTPrimes(40, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	more, err := GenerateNTTPrimes(52, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	return append(primes, more...)
}

func TestBarrettMatchesDivision(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	moduli := []uint64{2, 3, 65537, uint64(1)<<61 - 1}
	moduli = append(moduli, testPrimes(t)...)
	for _, p := range moduli {
		if p < 2 {
			continue
		}
		bar := NewBarrett(p)
		// Edge values plus random 64-bit values.
		cases := []uint64{0, 1, p - 1, p, p + 1, 2*p - 1, ^uint64(0), ^uint64(0) - 1}
		for i := 0; i < 2000; i++ {
			cases = append(cases, rng.Uint64())
		}
		for _, a := range cases {
			if got, want := bar.Reduce64(a), a%p; got != want {
				t.Fatalf("Reduce64(%d) mod %d = %d, want %d", a, p, got, want)
			}
		}
		// 128-bit reductions and products against MulMod.
		for i := 0; i < 2000; i++ {
			a, b := rng.Uint64()%p, rng.Uint64()%p
			if got, want := bar.MulMod(a, b), MulMod(a, b, p); got != want {
				t.Fatalf("Barrett MulMod(%d, %d) mod %d = %d, want %d", a, b, p, got, want)
			}
		}
		// Boundary products.
		for _, a := range []uint64{0, 1, p - 1} {
			for _, b := range []uint64{0, 1, p - 1} {
				if got, want := bar.MulMod(a, b), MulMod(a, b, p); got != want {
					t.Fatalf("Barrett MulMod(%d, %d) mod %d = %d, want %d", a, b, p, got, want)
				}
			}
		}
	}
}

func TestDividerMatchesHardwareDivide(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	divisors := append(testPrimes(t), 3, 65537, uint64(1)<<61-1, uint64(1)<<52)
	for _, d := range divisors {
		dv := NewDivider(d)
		check := func(hi, lo uint64) {
			t.Helper()
			wantQ, wantR := bits.Div64(hi, lo, d)
			gotQ, gotR := dv.DivRem128(hi, lo)
			if gotQ != wantQ || gotR != wantR {
				t.Fatalf("DivRem128(%d, %d) / %d = (%d, %d), want (%d, %d)", hi, lo, d, gotQ, gotR, wantQ, wantR)
			}
		}
		check(0, 0)
		check(0, d-1)
		check(0, d)
		check(0, ^uint64(0))
		if d > 1 {
			check(d-1, ^uint64(0)) // maximal dividend with quotient < 2^64
		}
		for i := 0; i < 2000; i++ {
			hi := rng.Uint64() % d // quotient must fit in 64 bits
			check(hi, rng.Uint64())
		}
	}
}

func TestShoupMulArbitraryCofactor(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, p := range testPrimes(t) {
		for i := 0; i < 2000; i++ {
			w := rng.Uint64() % p
			wS := ShoupPrecomp(w, p)
			a := rng.Uint64() // deliberately NOT reduced mod p
			if got, want := ShoupMul(a, w, wS, p), MulMod(a%p, w, p); got != want {
				t.Fatalf("ShoupMul(%d, %d) mod %d = %d, want %d", a, w, p, got, want)
			}
		}
	}
}

func TestMRDecomposerRoundTrip(t *testing.T) {
	primes := testPrimes(t)
	dec, err := NewMRDecomposer(primes)
	if err != nil {
		t.Fatal(err)
	}
	crt, err := NewCRTReconstructor(primes)
	if err != nil {
		t.Fatal(err)
	}
	q := crt.Modulus()

	// W_i as big integers for reconstruction from digits.
	w := make([]*big.Int, len(primes))
	acc := big.NewInt(1)
	for i, p := range primes {
		w[i] = new(big.Int).Set(acc)
		acc.Mul(acc, new(big.Int).SetUint64(p))
	}

	rng := rand.New(rand.NewSource(9))
	check := func(x *big.Int) {
		t.Helper()
		res := make([]uint64, len(primes))
		crt.Residues(x, res)
		digits := make([]uint64, len(primes))
		dec.Decompose(res, digits)
		got := new(big.Int)
		var term big.Int
		for i, d := range digits {
			if d >= primes[i] {
				t.Fatalf("digit %d = %d exceeds prime %d", i, d, primes[i])
			}
			term.SetUint64(d)
			term.Mul(&term, w[i])
			got.Add(got, &term)
		}
		if got.Cmp(x) != 0 {
			t.Fatalf("mixed-radix roundtrip: got %v, want %v", got, x)
		}
	}

	// Edges: 0, 1, Q-1, Q/2 neighborhood.
	half := new(big.Int).Rsh(q, 1)
	for _, x := range []*big.Int{
		big.NewInt(0), big.NewInt(1),
		new(big.Int).Sub(q, big.NewInt(1)),
		half, new(big.Int).Add(half, big.NewInt(1)), new(big.Int).Sub(half, big.NewInt(1)),
	} {
		check(x)
	}
	for i := 0; i < 200; i++ {
		check(new(big.Int).Rand(rng, q))
	}

	// DigitsOfBig agrees with Decompose.
	x := new(big.Int).Rand(rng, q)
	res := make([]uint64, len(primes))
	crt.Residues(x, res)
	digits := make([]uint64, len(primes))
	dec.Decompose(res, digits)
	fromBig := dec.DigitsOfBig(x)
	for i := range digits {
		if digits[i] != fromBig[i] {
			t.Fatalf("DigitsOfBig mismatch at %d: %d vs %d", i, fromBig[i], digits[i])
		}
	}
}

func TestMRGreaterMatchesBigCompare(t *testing.T) {
	primes := testPrimes(t)
	dec, err := NewMRDecomposer(primes)
	if err != nil {
		t.Fatal(err)
	}
	crt, err := NewCRTReconstructor(primes)
	if err != nil {
		t.Fatal(err)
	}
	q := crt.Modulus()
	half := new(big.Int).Rsh(q, 1)
	halfDigits := dec.DigitsOfBig(half)

	rng := rand.New(rand.NewSource(10))
	xs := []*big.Int{
		big.NewInt(0), big.NewInt(1), half,
		new(big.Int).Add(half, big.NewInt(1)),
		new(big.Int).Sub(half, big.NewInt(1)),
		new(big.Int).Sub(q, big.NewInt(1)),
	}
	for i := 0; i < 500; i++ {
		xs = append(xs, new(big.Int).Rand(rng, q))
	}
	for _, x := range xs {
		got := MRGreater(dec.DigitsOfBig(x), halfDigits)
		want := x.Cmp(half) > 0
		if got != want {
			t.Fatalf("MRGreater(%v, Q/2) = %v, want %v", x, got, want)
		}
	}
}
