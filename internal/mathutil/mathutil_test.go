package mathutil

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddSubNegMod(t *testing.T) {
	const m = 65537
	cases := []struct{ a, b, sum, diff uint64 }{
		{0, 0, 0, 0},
		{1, 2, 3, 65536},
		{65536, 1, 0, 65535},
		{65536, 65536, 65535, 0},
	}
	for _, c := range cases {
		if got := AddMod(c.a, c.b, m); got != c.sum {
			t.Errorf("AddMod(%d,%d) = %d, want %d", c.a, c.b, got, c.sum)
		}
		if got := SubMod(c.a, c.b, m); got != c.diff {
			t.Errorf("SubMod(%d,%d) = %d, want %d", c.a, c.b, got, c.diff)
		}
	}
	if NegMod(0, m) != 0 || NegMod(1, m) != m-1 {
		t.Error("NegMod wrong on boundary values")
	}
}

func TestMulModAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	moduli := []uint64{65537, (1 << 61) - 1, 1152921504606830593}
	for _, m := range moduli {
		mb := new(big.Int).SetUint64(m)
		for i := 0; i < 200; i++ {
			a := rng.Uint64() % m
			b := rng.Uint64() % m
			want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
			want.Mod(want, mb)
			if got := MulMod(a, b, m); got != want.Uint64() {
				t.Fatalf("MulMod(%d,%d,%d) = %d, want %s", a, b, m, got, want)
			}
		}
	}
}

func TestPowInvMod(t *testing.T) {
	const p = 65537
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a := rng.Uint64()%(p-1) + 1
		inv, err := InvMod(a, p)
		if err != nil {
			t.Fatal(err)
		}
		if MulMod(a, inv, p) != 1 {
			t.Fatalf("InvMod(%d): a*inv != 1", a)
		}
	}
	if _, err := InvMod(0, p); err == nil {
		t.Error("InvMod(0) should fail")
	}
	if PowMod(3, 0, p) != 1 {
		t.Error("a^0 != 1")
	}
	if PowMod(3, p-1, p) != 1 {
		t.Error("Fermat's little theorem violated")
	}
}

func TestIsPrime(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 65537, 12289, 40961, (1 << 61) - 1}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	composites := []uint64{0, 1, 4, 65536, 65535, 1 << 61, 6700417 * 2}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true, want false", c)
		}
	}
}

func TestGenerateNTTPrimes(t *testing.T) {
	for _, n := range []int{1024, 2048, 4096, 8192} {
		primes, err := GenerateNTTPrimes(45, n, 3)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		for _, p := range primes {
			if !IsPrime(p) {
				t.Errorf("%d not prime", p)
			}
			if (p-1)%uint64(2*n) != 0 {
				t.Errorf("%d not ≡ 1 mod 2N for N=%d", p, n)
			}
			if seen[p] {
				t.Errorf("duplicate prime %d", p)
			}
			seen[p] = true
			if p>>44 == 0 || p>>45 != 0 {
				t.Errorf("prime %d not 45 bits", p)
			}
		}
	}
	if _, err := GenerateNTTPrimes(45, 1000, 1); err == nil {
		t.Error("non-power-of-two N should fail")
	}
	if _, err := GenerateNTTPrimes(63, 1024, 1); err == nil {
		t.Error("oversized bit size should fail")
	}
}

func TestPrimitiveNthRoot(t *testing.T) {
	const p = 65537
	for _, n := range []uint64{2, 4, 256, 4096, 65536} {
		root, err := PrimitiveNthRoot(n, p)
		if err != nil {
			t.Fatal(err)
		}
		if PowMod(root, n, p) != 1 {
			t.Errorf("root^n != 1 for n=%d", n)
		}
		if n > 1 && PowMod(root, n/2, p) == 1 {
			t.Errorf("root has order < n for n=%d", n)
		}
	}
	if _, err := PrimitiveNthRoot(3, p); err == nil {
		t.Error("n not dividing p-1 should fail")
	}
}

func TestBitReverse(t *testing.T) {
	if BitReverse(1, 3) != 4 || BitReverse(3, 3) != 6 || BitReverse(0, 3) != 0 {
		t.Error("BitReverse wrong")
	}
	// Property: involution.
	f := func(x uint8) bool {
		v := uint64(x)
		return BitReverse(BitReverse(v, 8), 8) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2(t *testing.T) {
	if v, err := Log2(4096); err != nil || v != 12 {
		t.Errorf("Log2(4096) = %d, %v", v, err)
	}
	for _, bad := range []int{0, -4, 3, 12} {
		if _, err := Log2(bad); err == nil {
			t.Errorf("Log2(%d) should fail", bad)
		}
	}
}

func TestCRTReconstructRoundTrip(t *testing.T) {
	primes, err := GenerateNTTPrimes(40, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	crt, err := NewCRTReconstructor(primes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	res := make([]uint64, len(primes))
	var x big.Int
	for i := 0; i < 100; i++ {
		want := new(big.Int).Rand(rng, crt.Modulus())
		crt.Residues(want, res)
		crt.Reconstruct(&x, res)
		if x.Cmp(want) != 0 {
			t.Fatalf("round trip failed: got %s want %s", &x, want)
		}
	}
}

func TestCRTReconstructCentered(t *testing.T) {
	primes, err := GenerateNTTPrimes(40, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	crt, err := NewCRTReconstructor(primes)
	if err != nil {
		t.Fatal(err)
	}
	res := make([]uint64, len(primes))
	var x big.Int
	// -5 should reconstruct to -5 centered.
	minus5 := big.NewInt(-5)
	crt.Residues(minus5, res)
	crt.ReconstructCentered(&x, res)
	if x.Cmp(minus5) != 0 {
		t.Fatalf("centered reconstruct of -5 = %s", &x)
	}
	// Q-1 ≡ -1.
	qm1 := new(big.Int).Sub(crt.Modulus(), big.NewInt(1))
	crt.Residues(qm1, res)
	crt.ReconstructCentered(&x, res)
	if x.Int64() != -1 {
		t.Fatalf("centered reconstruct of Q-1 = %s, want -1", &x)
	}
}

func TestNewCRTReconstructorErrors(t *testing.T) {
	if _, err := NewCRTReconstructor(nil); err == nil {
		t.Error("empty prime set should fail")
	}
	if _, err := NewCRTReconstructor([]uint64{6, 9}); err == nil {
		t.Error("non-coprime set should fail")
	}
}
