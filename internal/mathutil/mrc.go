package mathutil

import (
	"fmt"
	"math/big"
)

// MRDecomposer converts RNS residue vectors over a fixed prime basis
// p_0..p_{K-1} into mixed-radix (Garner) digits
//
//	x = d_0 + d_1·W_1 + d_2·W_2 + ... + d_{K-1}·W_{K-1},  d_i < p_i,
//
// where W_i = p_0·p_1·...·p_{i-1} (W_0 = 1). Unlike the floating-point
// base conversion in SEAL's BEHZ pipeline, mixed-radix conversion is
// exact, uses only word-sized arithmetic, and supports ordering
// comparisons (digit vectors compare lexicographically from the most
// significant digit), which is what the ring.BasisExtender needs to
// produce bit-identical results to big.Int CRT reconstruction.
//
// All hot-path multiplications use Shoup precomputation; the only
// divisions happen at construction time.
type MRDecomposer struct {
	Primes []uint64

	wMod  [][]uint64 // wMod[i][j]  = W_j mod p_i, j < i
	wModS [][]uint64 // Shoup companions of wMod[i][j]
	invW  []uint64   // invW[i]  = W_i^{-1} mod p_i
	invWS []uint64   // Shoup companions of invW
	bars  []Barrett  // per-prime Barrett constants

	// lazy is true when K lazy Shoup products (each < 2p) fit in a
	// 64-bit accumulator, enabling branch-free inner sums.
	lazy bool
}

// NewMRDecomposer builds the Garner tables for the (pairwise coprime)
// prime basis.
func NewMRDecomposer(primes []uint64) (*MRDecomposer, error) {
	if len(primes) == 0 {
		return nil, fmt.Errorf("mathutil: empty prime basis")
	}
	k := len(primes)
	d := &MRDecomposer{
		Primes: append([]uint64(nil), primes...),
		wMod:   make([][]uint64, k),
		wModS:  make([][]uint64, k),
		invW:   make([]uint64, k),
		invWS:  make([]uint64, k),
		bars:   make([]Barrett, k),
	}
	maxP := uint64(0)
	for _, p := range primes {
		if p > maxP {
			maxP = p
		}
	}
	// Inner sums accumulate at most k-1 lazy products, each < 2·maxP.
	d.lazy = k < 2 || maxP <= ^uint64(0)/(2*uint64(k-1))
	for i, p := range primes {
		d.bars[i] = NewBarrett(p)
		d.wMod[i] = make([]uint64, i)
		d.wModS[i] = make([]uint64, i)
		w := uint64(1) // W_j mod p_i, starting at W_0 = 1
		for j := 0; j < i; j++ {
			d.wMod[i][j] = w
			d.wModS[i][j] = ShoupPrecomp(w, p)
			w = MulMod(w, primes[j]%p, p)
		}
		inv, err := InvMod(w, p) // w = W_i mod p_i here
		if err != nil {
			return nil, fmt.Errorf("mathutil: basis primes not coprime: %w", err)
		}
		d.invW[i] = inv
		d.invWS[i] = ShoupPrecomp(inv, p)
	}
	return d, nil
}

// Decompose writes the mixed-radix digits of the value represented by
// res (res[i] = x mod p_i, x in [0, ∏p_i)) into digits. res and digits
// may alias. Runs Garner's algorithm: O(K²) Shoup multiplications.
func (d *MRDecomposer) Decompose(res, digits []uint64) {
	digits[0] = res[0]
	for i := 1; i < len(d.Primes); i++ {
		p := d.Primes[i]
		wm, ws := d.wMod[i], d.wModS[i]
		// acc = (d_0·W_0 + ... + d_{i-1}·W_{i-1}) mod p_i. The digits are
		// < p_j, not < p_i, but Shoup multiplication accepts any 64-bit
		// cofactor. On the lazy path the un-reduced products (< 2p) are
		// summed branch-free and reduced once at the end.
		var acc uint64
		if d.lazy {
			for j := 0; j < i; j++ {
				acc += ShoupMulLazy(digits[j], wm[j], ws[j], p)
			}
			acc = d.bars[i].Reduce64(acc)
		} else {
			for j := 0; j < i; j++ {
				acc = AddMod(acc, ShoupMul(digits[j], wm[j], ws[j], p), p)
			}
		}
		digits[i] = ShoupMul(SubMod(res[i], acc, p), d.invW[i], d.invWS[i], p)
	}
}

// ComplementDigits replaces the mixed-radix digits of x (over the
// decomposer's basis, x ≠ 0) with the digits of ∏p_i − x in place:
// digit-wise complement plus one, with carry. O(K), no multiplications.
func (d *MRDecomposer) ComplementDigits(digits []uint64) {
	carry := uint64(1)
	for i, p := range d.Primes {
		v := p - 1 - digits[i] + carry
		if v == p {
			v, carry = 0, 1
		} else {
			carry = 0
		}
		digits[i] = v
	}
}

// DigitsOfBig returns the mixed-radix digits of x mod ∏p_i (setup-time
// helper, used to precompute comparison thresholds such as Q/2).
func (d *MRDecomposer) DigitsOfBig(x *big.Int) []uint64 {
	res := make([]uint64, len(d.Primes))
	var tmp, pb big.Int
	for i, p := range d.Primes {
		pb.SetUint64(p)
		tmp.Mod(x, &pb)
		res[i] = tmp.Uint64()
	}
	digits := make([]uint64, len(d.Primes))
	d.Decompose(res, digits)
	return digits
}

// MRGreater reports whether the value with mixed-radix digits a exceeds
// the value with digits b (both over the same basis): a lexicographic
// comparison from the most significant digit.
func MRGreater(a, b []uint64) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return false
}
