package mathutil

import "math/bits"

// Barrett holds the 128-bit Barrett constant floor(2^128 / p) for a
// modulus p < 2^62, enabling division-free modular reduction of 64- and
// 128-bit values. This is the layout SEAL stores in Modulus::const_ratio
// and what the ring package keeps per RNS prime so the pointwise
// polynomial loops never execute a hardware divide.
type Barrett struct {
	P  uint64 // the modulus
	Hi uint64 // high word of floor(2^128 / p)
	Lo uint64 // low word of floor(2^128 / p)
}

// NewBarrett precomputes the Barrett constant for p. Requires
// 1 < p < 2^62 (the package-wide modulus bound).
func NewBarrett(p uint64) Barrett {
	// 2^128 = (q1·p + r1)·2^64 with q1 = floor(2^64/p), so
	// floor(2^128/p) = q1·2^64 + floor(r1·2^64/p).
	q1, r1 := bits.Div64(1, 0, p)
	q0, _ := bits.Div64(r1, 0, p)
	return Barrett{P: p, Hi: q1, Lo: q0}
}

// Reduce64 returns a mod p for an arbitrary 64-bit a.
func (b Barrett) Reduce64(a uint64) uint64 {
	// q = floor(a · floor(2^128/p) / 2^128), keeping only the words that
	// reach bit 128 of the 192-bit product.
	hi, lo := bits.Mul64(a, b.Hi)
	cHi, _ := bits.Mul64(a, b.Lo)
	_, c := bits.Add64(lo, cHi, 0)
	q := hi + c
	r := a - q*b.P
	for r >= b.P {
		r -= b.P
	}
	return r
}

// Reduce128 returns (hi·2^64 + lo) mod p. Requires hi < p so the input
// is below p·2^64 (always true for products of two reduced operands).
func (b Barrett) Reduce128(hi, lo uint64) uint64 {
	// floor(z·c/2^128) for z = hi:lo and c = Hi:Lo, dropping the terms
	// entirely below bit 128 (the same schedule as SEAL's
	// barrett_reduce_128). The estimate is at most a few multiples of p
	// short, fixed by the trailing conditional subtractions.
	carry, _ := bits.Mul64(lo, b.Lo)
	t2Hi, t2Lo := bits.Mul64(lo, b.Hi)
	t1, c := bits.Add64(t2Lo, carry, 0)
	t3 := t2Hi + c
	t4Hi, t4Lo := bits.Mul64(hi, b.Lo)
	_, c2 := bits.Add64(t1, t4Lo, 0)
	q := hi*b.Hi + t3 + t4Hi + c2
	r := lo - q*b.P
	for r >= b.P {
		r -= b.P
	}
	return r
}

// MulMod returns (x·y) mod p for x, y < p without a hardware divide.
func (b Barrett) MulMod(x, y uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	return b.Reduce128(hi, lo)
}

// Divider performs exact 128-by-64 truncating division by a fixed
// divisor without a hardware divide, using the Möller–Granlund
// normalized-reciprocal algorithm. Used in carry-propagation chains
// where both quotient and remainder are needed exactly.
type Divider struct {
	dn uint64 // divisor normalized (top bit set)
	v  uint64 // reciprocal: floor((2^128-1)/dn) - 2^64
	s  uint   // normalization shift
}

// NewDivider precomputes the normalized reciprocal of d ≥ 1.
func NewDivider(d uint64) Divider {
	s := uint(bits.LeadingZeros64(d))
	dn := d << s
	v, _ := bits.Div64(^dn, ^uint64(0), dn)
	return Divider{dn: dn, v: v, s: s}
}

// DivRem128 returns the quotient and remainder of (hi·2^64 + lo) / d.
// Requires the quotient to fit in 64 bits (hi < d).
func (dv Divider) DivRem128(hi, lo uint64) (uint64, uint64) {
	// Normalize. Go defines shifts ≥ 64 as zero, so s = 0 is handled.
	u1 := hi<<dv.s | lo>>(64-dv.s)
	u0 := lo << dv.s
	q1, q0 := bits.Mul64(u1, dv.v)
	var c uint64
	q0, c = bits.Add64(q0, u0, 0)
	q1, _ = bits.Add64(q1, u1, c)
	q1++
	r := u0 - q1*dv.dn
	if r > q0 {
		q1--
		r += dv.dn
	}
	if r >= dv.dn {
		q1++
		r -= dv.dn
	}
	return q1, r >> dv.s
}

// ShoupPrecomp returns floor(w·2^64/p), the Shoup companion of a fixed
// multiplicand w < p. See ShoupMul.
func ShoupPrecomp(w, p uint64) uint64 {
	quo, _ := bits.Div64(w, 0, p)
	return quo
}

// ShoupMul returns (a·w) mod p given wS = ShoupPrecomp(w, p). The fixed
// operand w must be < p; a may be any 64-bit value. Requires p < 2^63.
func ShoupMul(a, w, wS, p uint64) uint64 {
	q, _ := bits.Mul64(a, wS)
	r := a*w - q*p
	if r >= p {
		r -= p
	}
	return r
}

// ShoupMulLazy is ShoupMul without the final conditional subtraction:
// the result is only guaranteed to be < 2p (congruent to a·w mod p).
// Used by the lazy-reduction (Harvey) NTT butterflies and by
// accumulation loops that defer the reduction to the end.
func ShoupMulLazy(a, w, wS, p uint64) uint64 {
	q, _ := bits.Mul64(a, wS)
	return a*w - q*p
}
