// Package mathutil provides the modular-arithmetic primitives shared by
// the ring, bfv and symbolic packages: word-sized modular operations,
// NTT-friendly prime generation, primitive roots of unity, and CRT
// helpers.
//
// All moduli handled here fit in a single uint64 and are < 2^62 so that
// lazy sums of two residues never overflow.
package mathutil

import (
	"fmt"
	"math/big"
	"math/bits"
)

// MaxModulusBits is the largest modulus size (in bits) supported by the
// single-word arithmetic in this package.
const MaxModulusBits = 61

// AddMod returns (a + b) mod m. Requires a, b < m < 2^63.
func AddMod(a, b, m uint64) uint64 {
	s := a + b
	if s >= m {
		s -= m
	}
	return s
}

// SubMod returns (a - b) mod m. Requires a, b < m.
func SubMod(a, b, m uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + m - b
}

// NegMod returns (-a) mod m. Requires a < m.
func NegMod(a, m uint64) uint64 {
	if a == 0 {
		return 0
	}
	return m - a
}

// MulMod returns (a * b) mod m using a 128-bit intermediate.
// Requires a, b < m < 2^63.
func MulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

// PowMod returns a^e mod m by square-and-multiply.
func PowMod(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			result = MulMod(result, a, m)
		}
		a = MulMod(a, a, m)
		e >>= 1
	}
	return result
}

// InvMod returns a^-1 mod m, or an error when gcd(a, m) != 1.
// Implemented with the extended Euclidean algorithm so it is correct
// for composite moduli as well.
func InvMod(a, m uint64) (uint64, error) {
	a %= m
	if a == 0 {
		return 0, fmt.Errorf("mathutil: no inverse of 0 mod %d", m)
	}
	// Signed Bezout coefficients; m < 2^62 so int64 arithmetic with the
	// standard iteration stays in range.
	var t0, t1 int64 = 0, 1
	var r0, r1 = m, a
	for r1 != 0 {
		q := r0 / r1
		t0, t1 = t1, t0-int64(q)*t1
		r0, r1 = r1, r0-q*r1
	}
	if r0 != 1 {
		return 0, fmt.Errorf("mathutil: %d is not invertible mod %d (gcd=%d)", a, m, r0)
	}
	if t0 < 0 {
		t0 += int64(m)
	}
	return uint64(t0), nil
}

// IsPrime reports whether n is prime. Deterministic Miller-Rabin with a
// witness set valid for all n < 2^64.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
	// Sinclair's deterministic witness set for n < 2^64.
	for _, a := range []uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022} {
		if !millerRabinWitness(n, a, d, r) {
			return false
		}
	}
	return true
}

func millerRabinWitness(n, a, d uint64, r int) bool {
	a %= n
	if a == 0 {
		return true
	}
	x := PowMod(a, d, n)
	if x == 1 || x == n-1 {
		return true
	}
	for i := 0; i < r-1; i++ {
		x = MulMod(x, x, n)
		if x == n-1 {
			return true
		}
	}
	return false
}

// GenerateNTTPrimes returns count distinct primes p with p ≡ 1 (mod 2N)
// and of approximately the requested bit size, searching downward from
// 2^bits. Such primes admit a primitive 2N-th root of unity, as required
// by the negacyclic NTT.
func GenerateNTTPrimes(bitSize, n, count int) ([]uint64, error) {
	if bitSize < 4 || bitSize > MaxModulusBits {
		return nil, fmt.Errorf("mathutil: prime bit size %d out of range [4,%d]", bitSize, MaxModulusBits)
	}
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("mathutil: ring degree %d is not a power of two", n)
	}
	step := uint64(2 * n)
	// Largest candidate ≡ 1 mod 2N below 2^bitSize.
	candidate := (uint64(1)<<uint(bitSize) - 1) / step * step
	primes := make([]uint64, 0, count)
	for candidate > uint64(1)<<uint(bitSize-1) {
		if IsPrime(candidate + 1) {
			primes = append(primes, candidate+1)
			if len(primes) == count {
				return primes, nil
			}
		}
		candidate -= step
	}
	return nil, fmt.Errorf("mathutil: found only %d/%d NTT primes of %d bits for N=%d", len(primes), count, bitSize, n)
}

// PrimitiveRoot returns a generator of the multiplicative group Z_p^*.
func PrimitiveRoot(p uint64) (uint64, error) {
	if !IsPrime(p) {
		return 0, fmt.Errorf("mathutil: %d is not prime", p)
	}
	factors := factorize(p - 1)
	for g := uint64(2); g < p; g++ {
		ok := true
		for _, f := range factors {
			if PowMod(g, (p-1)/f, p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("mathutil: no primitive root mod %d", p)
}

// PrimitiveNthRoot returns an element of multiplicative order exactly n
// in Z_p^*. Requires n | p-1.
func PrimitiveNthRoot(n, p uint64) (uint64, error) {
	if (p-1)%n != 0 {
		return 0, fmt.Errorf("mathutil: %d does not divide p-1 for p=%d", n, p)
	}
	g, err := PrimitiveRoot(p)
	if err != nil {
		return 0, err
	}
	root := PowMod(g, (p-1)/n, p)
	// Order is exactly n because g is a generator.
	return root, nil
}

// factorize returns the distinct prime factors of n by trial division
// (n is p-1 for a word-sized prime; its factors are small enough in
// practice for the parameter sizes used here).
func factorize(n uint64) []uint64 {
	var factors []uint64
	for _, p := range []uint64{2, 3, 5, 7, 11, 13} {
		if n%p == 0 {
			factors = append(factors, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	for f := uint64(17); f*f <= n; f += 2 {
		if n%f == 0 {
			factors = append(factors, f)
			for n%f == 0 {
				n /= f
			}
		}
	}
	if n > 1 {
		factors = append(factors, n)
	}
	return factors
}

// BitReverse returns the bit-reversal of x within logN bits.
func BitReverse(x uint64, logN int) uint64 {
	return bits.Reverse64(x) >> (64 - uint(logN))
}

// Log2 returns log2(n) for a power of two n, or an error otherwise.
func Log2(n int) (int, error) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("mathutil: %d is not a positive power of two", n)
	}
	return bits.TrailingZeros64(uint64(n)), nil
}

// CRTReconstructor reconstructs big integers from residues modulo a
// fixed set of pairwise-coprime word-sized primes. Reconstruction
// yields the unique representative in [0, Q) where Q = ∏ primes.
type CRTReconstructor struct {
	primes []uint64
	Q      *big.Int
	qi     []*big.Int // Q / p_i
	inv    []uint64   // (Q/p_i)^-1 mod p_i
	half   *big.Int   // Q/2, for centered lifts
}

// NewCRTReconstructor builds the precomputed tables for the prime set.
func NewCRTReconstructor(primes []uint64) (*CRTReconstructor, error) {
	if len(primes) == 0 {
		return nil, fmt.Errorf("mathutil: empty prime set")
	}
	c := &CRTReconstructor{primes: append([]uint64(nil), primes...), Q: big.NewInt(1)}
	for _, p := range primes {
		c.Q.Mul(c.Q, new(big.Int).SetUint64(p))
	}
	c.qi = make([]*big.Int, len(primes))
	c.inv = make([]uint64, len(primes))
	for i, p := range primes {
		c.qi[i] = new(big.Int).Div(c.Q, new(big.Int).SetUint64(p))
		r := new(big.Int).Mod(c.qi[i], new(big.Int).SetUint64(p)).Uint64()
		inv, err := InvMod(r, p)
		if err != nil {
			return nil, fmt.Errorf("mathutil: primes not coprime: %w", err)
		}
		c.inv[i] = inv
	}
	c.half = new(big.Int).Rsh(c.Q, 1)
	return c, nil
}

// Modulus returns Q = ∏ primes.
func (c *CRTReconstructor) Modulus() *big.Int { return c.Q }

// Reconstruct sets dst to the unique x in [0, Q) with x ≡ residues[i]
// (mod primes[i]) and returns dst.
func (c *CRTReconstructor) Reconstruct(dst *big.Int, residues []uint64) *big.Int {
	dst.SetUint64(0)
	var term big.Int
	for i, p := range c.primes {
		v := MulMod(residues[i]%p, c.inv[i], p)
		term.SetUint64(v)
		term.Mul(&term, c.qi[i])
		dst.Add(dst, &term)
	}
	return dst.Mod(dst, c.Q)
}

// ReconstructCentered sets dst to the representative of the residues in
// (-Q/2, Q/2] and returns dst.
func (c *CRTReconstructor) ReconstructCentered(dst *big.Int, residues []uint64) *big.Int {
	c.Reconstruct(dst, residues)
	if dst.Cmp(c.half) > 0 {
		dst.Sub(dst, c.Q)
	}
	return dst
}

// Residues decomposes x (any sign) into its residues modulo each prime,
// writing them into out.
func (c *CRTReconstructor) Residues(x *big.Int, out []uint64) {
	var tmp big.Int
	var pb big.Int
	for i, p := range c.primes {
		pb.SetUint64(p)
		tmp.Mod(x, &pb)
		out[i] = tmp.Uint64()
	}
}
