package wire_test

// The cross-process differential leg: a plan exported by THIS process
// must load and run bit-identically in a FRESH process that never saw
// the secret key, the lowered program, or this process's memory.
//
// The parent test compiles each kernel's plan, runs it in-process (plan
// path and interpreter path), exports a bundle, then re-executes the
// test binary as a genuine child process (helper-process pattern). The
// child loads the bundle through the wire decoder, executes the
// embedded sample through the batched scheduler, and writes the
// wire-encoded output; the parent requires all three outputs —
// interpreter, in-process plan, out-of-process plan — to be
// bit-identical ciphertexts.

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"porcupine/internal/backend"
	"porcupine/internal/baseline"
	"porcupine/internal/bfv"
	"porcupine/internal/kernels"
	"porcupine/internal/serve"
	"porcupine/internal/wire"
)

const (
	envBundle = "PORCUPINE_WIRE_CHILD_BUNDLE"
	envOut    = "PORCUPINE_WIRE_CHILD_OUT"
)

// TestHelperLoadAndRun is not a test of this process: it is the body
// of the child process spawned by TestCrossProcessBitIdentity, gated
// on the env vars the parent sets.
func TestHelperLoadAndRun(t *testing.T) {
	bundlePath := os.Getenv(envBundle)
	if bundlePath == "" {
		t.Skip("helper: runs only as a child of TestCrossProcessBitIdentity")
	}
	b, err := wire.ReadBundleFile(bundlePath)
	if err != nil {
		t.Fatalf("helper: loading bundle: %v", err)
	}
	ctx, sched, err := serve.Load(b, serve.Config{Sessions: 2})
	if err != nil {
		t.Fatalf("helper: building sealed context: %v", err)
	}
	defer sched.Close()
	if ctx.CanDecrypt() {
		t.Fatal("helper: loaded context holds a secret key; bundles must carry only public material")
	}
	res := sched.Do(serve.Request{Plan: b.Plan, CtIn: b.Sample.CtIn, PtIn: b.Sample.PtIn})
	if res.Err != nil {
		t.Fatalf("helper: executing plan: %v", res.Err)
	}
	data, err := wire.EncodeResponse(b.Params, res.Out)
	if err != nil {
		t.Fatalf("helper: encoding response: %v", err)
	}
	if err := os.WriteFile(os.Getenv(envOut), data, 0o644); err != nil {
		t.Fatalf("helper: writing output: %v", err)
	}
}

func TestCrossProcessBitIdentity(t *testing.T) {
	if os.Getenv(envBundle) != "" {
		t.Skip("already in the helper process")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	names := []string{
		"box-blur", "dot-product", "hamming-distance", "l2-distance",
		"linear-regression", "polynomial-regression", "gx", "gy",
		"roberts-cross", "sobel", "harris",
	}
	if testing.Short() {
		// One single-step and one composed kernel keep the short suite
		// fast while still crossing a real process boundary.
		names = []string{"box-blur", "sobel"}
	}
	dir := t.TempDir()
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			spec := kernels.ByName(name)
			l, err := baseline.Lowered(name)
			if err != nil {
				t.Fatal(err)
			}
			preset := "PN4096"
			if l.MultDepth() > 2 {
				preset = "PN8192"
			}
			ctx, plans, err := backend.NewTestServingContext(preset, 7, l)
			if err != nil {
				t.Fatal(err)
			}
			p := plans[0]

			rng := rand.New(rand.NewSource(3))
			assign := make([]uint64, spec.NumVars)
			for i := range assign {
				assign[i] = rng.Uint64() % 64
			}
			ex := spec.NewExample(assign)
			sample := &wire.Request{PtIn: ex.PtIn}
			for _, v := range ex.CtIn {
				ct, err := ctx.EncryptVec(v)
				if err != nil {
					t.Fatal(err)
				}
				sample.CtIn = append(sample.CtIn, ct)
			}

			// Leg 1: the interpreter (differential reference).
			interp, err := backend.RuntimeOver(ctx).RunInterpreter(l, sample.CtIn, sample.PtIn)
			if err != nil {
				t.Fatalf("interpreter: %v", err)
			}
			// Leg 2: the in-process plan (also becomes the bundle's
			// embedded expectation inside Export).
			b, err := serve.Export(ctx, name, p, sample)
			if err != nil {
				t.Fatal(err)
			}
			if !ctx.Params.CiphertextEqual(interp, b.Expected) {
				t.Fatal("in-process plan output differs from the interpreter")
			}

			bundlePath := filepath.Join(dir, name+".pplan")
			outPath := filepath.Join(dir, name+".out")
			if err := b.WriteFile(bundlePath); err != nil {
				t.Fatal(err)
			}

			// Leg 3: a fresh process, fed the artifact alone.
			cmd := exec.Command(exe, "-test.run", "^TestHelperLoadAndRun$", "-test.count=1")
			cmd.Env = append(os.Environ(),
				fmt.Sprintf("%s=%s", envBundle, bundlePath),
				fmt.Sprintf("%s=%s", envOut, outPath),
			)
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("child process failed: %v\n%s", err, out)
			}
			respData, err := os.ReadFile(outPath)
			if err != nil {
				t.Fatal(err)
			}
			var childOut *bfv.Ciphertext
			if childOut, err = wire.DecodeResponse(ctx.Params, respData); err != nil {
				t.Fatal(err)
			}
			if !ctx.Params.CiphertextEqual(childOut, b.Expected) {
				t.Fatal("cross-process plan output is not bit-identical to the in-process plan")
			}

			// And the decrypted result still matches the plaintext
			// reference (only the exporting side can check this).
			if got := ctx.DecryptVec(childOut, spec.VecLen); !spec.Matches(got, ex) {
				t.Fatal("cross-process output disagrees with the plaintext reference")
			}
		})
	}
}
