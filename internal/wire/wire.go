// Package wire is the versioned, checksummed binary format that moves
// compiled serving artifacts between processes: an execution plan
// together with the exact public key material it declares (the
// relinearization key and the canonical Galois set), pinned to a
// parameter fingerprint.
//
// The deployment model follows the paper's Figure 1 split, extended
// across processes: one process compiles a kernel, builds keys, and
// exports a Bundle; any number of serving processes load the bundle
// and execute the plan bit-identically, without ever holding the
// secret key (bundles carry no secret or public encryption key — only
// evaluation keys, which are public by construction). Requests and
// responses between a client and a serving process use the same
// envelope with their own tags.
//
// Envelope layout (little-endian):
//
//	magic "PCPN" | version u8 | tag u8 | payloadLen u64 | payload | sha256(all preceding bytes)
//
// Decoding is strict and total: truncation, bit flips, foreign or
// future-versioned data, and semantically malformed payloads (a plan
// indexing a register it never allocated, a residue outside its prime,
// an undeclared rotation) all yield typed errors — never a panic, and
// never an object that would fail later inside a session's execution
// loop. The error classes are ErrMagic, ErrVersion, ErrTag,
// ErrTruncated, ErrChecksum, ErrFingerprint and ErrInvalid; match with
// errors.Is.
//
// The byte-level writer/reader here intentionally does not share
// internal/bfv's object serializer: bfv encodes self-describing
// per-object blobs (own magic/version, untyped errors) that this
// envelope embeds as opaque sections, while this layer adds
// envelope-wide checksumming, count pre-validation before allocation,
// and errors.Is-typed failures. Both delegate polynomial bytes to the
// one shared codec in internal/ring.
package wire

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"porcupine/internal/bfv"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
)

const (
	magic = "PCPN"
	// Version is the wire-format version this build writes. Version 2
	// added hoisted rotation fan-out groups to the plan section (a
	// per-step fan list); version 3 added one domain byte per register
	// (coefficient vs NTT residency) plus the OpNTT/OpINTT conversion
	// steps that domain-assigned plans carry; version 4 added
	// cross-source batched rotation groups (a per-step batch member
	// list); version 5 added the multi-kernel Registry object (a
	// manifest of named plans sharing one parameter fingerprint and one
	// key-material section, each entry carrying its slot-multiplexing
	// lane geometry); version 6 added double-hoisted shared rotation
	// groups (a per-step member list carrying each member's
	// decomposition slot and fill flag — per-session state earlier
	// formats cannot express). Decoders accept MinVersion..Version: a
	// v1 bundle simply decodes to a plan of plain steps, a v2 bundle to
	// an all-coefficient plan, a v3 bundle to a plan without batched
	// groups, and a v4/v5 artifact to a plan without shared groups —
	// all execute bit-identically (hoisting, residency, batching and
	// sharing are schedule choices, not semantic ones). Prepared NTT
	// operand forms are derived at decode time, never serialized.
	// Registries are new in v5, so a registry envelope stamped with an
	// earlier version byte is rejected; single-plan bundles of every
	// prior version keep loading unchanged. Future versions are
	// rejected — artifacts are cheap to re-export.
	Version    = 6
	MinVersion = 1
)

const (
	tagBundle byte = iota + 1
	tagRequest
	tagResponse
	tagRegistry
)

// Typed decode errors (match with errors.Is).
var (
	ErrMagic       = errors.New("wire: bad magic (not a porcupine wire object)")
	ErrVersion     = errors.New("wire: unsupported format version")
	ErrTag         = errors.New("wire: wrong object kind")
	ErrTruncated   = errors.New("wire: truncated stream")
	ErrChecksum    = errors.New("wire: checksum mismatch (corrupted stream)")
	ErrFingerprint = errors.New("wire: parameter fingerprint mismatch")
	ErrInvalid     = errors.New("wire: invalid object")
)

// Bundle is the exported serving artifact: one compiled plan, the
// parameters it was compiled for, the public evaluation keys it
// declares, and a deterministic self-test sample (inputs encrypted by
// the exporter plus the exporter's own output ciphertext) that lets a
// loading process prove bit-identical execution without the secret
// key.
type Bundle struct {
	Name   string // kernel name (reporting)
	Preset string // parameter preset name (reporting; the binding truth is the fingerprint)

	Params *bfv.Parameters
	Plan   *plan.ExecutionPlan
	Relin  *bfv.RelinearizationKey
	Galois *bfv.GaloisKeys

	// Sample and Expected form the embedded cross-process differential
	// check: running Plan on Sample must reproduce Expected bit for
	// bit. Both may be nil (a bundle without a self-test).
	Sample   *Request
	Expected *bfv.Ciphertext
}

// Request is one serving request: the encrypted inputs and the
// plaintext input vectors of a plan execution.
type Request struct {
	CtIn []*bfv.Ciphertext
	PtIn []quill.Vec
}

// ---- encoder ----

type writer struct{ buf []byte }

func newWriter(ver, tag byte) *writer {
	w := &writer{buf: make([]byte, 0, 1<<16)}
	w.buf = append(w.buf, magic...)
	w.buf = append(w.buf, ver, tag)
	// payloadLen placeholder, patched in finish.
	w.buf = binary.LittleEndian.AppendUint64(w.buf, 0)
	return w
}

func (w *writer) u8(v byte)    { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }

func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) str(s string) { w.bytes([]byte(s)) }

func (w *writer) u64s(v []uint64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.u64(x)
	}
}

// blob writes the output of a bfv MarshalBinary call.
func (w *writer) blob(b []byte, err error) error {
	if err != nil {
		return err
	}
	w.bytes(b)
	return nil
}

// finish patches the payload length and appends the checksum.
func (w *writer) finish() []byte {
	binary.LittleEndian.PutUint64(w.buf[6:], uint64(len(w.buf)-headerLen))
	sum := sha256.Sum256(w.buf)
	return append(w.buf, sum[:]...)
}

const headerLen = 4 + 1 + 1 + 8 // magic, version, tag, payloadLen
const sumLen = sha256.Size

// ---- decoder ----

type reader struct {
	buf []byte // payload only
	off int
	ver byte // envelope version (MinVersion..Version)
	err error
}

// open validates the envelope (magic, version, tag, length, checksum)
// and returns a reader over the payload.
func open(data []byte, wantTag byte) (*reader, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrTruncated, len(data), headerLen)
	}
	if string(data[:4]) != magic {
		return nil, ErrMagic
	}
	v := data[4]
	if v < MinVersion || v > Version {
		return nil, fmt.Errorf("%w: got version %d, this build reads versions %d-%d", ErrVersion, v, MinVersion, Version)
	}
	if tag := data[5]; tag != wantTag {
		return nil, fmt.Errorf("%w: object tag %d, want %d", ErrTag, tag, wantTag)
	}
	payloadLen := binary.LittleEndian.Uint64(data[6:])
	want := headerLen + payloadLen + sumLen
	if uint64(len(data)) < want {
		return nil, fmt.Errorf("%w: %d bytes, envelope declares %d", ErrTruncated, len(data), want)
	}
	if uint64(len(data)) > want {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrInvalid, uint64(len(data))-want)
	}
	body := data[:headerLen+payloadLen]
	sum := sha256.Sum256(body)
	if subtle.ConstantTimeCompare(sum[:], data[headerLen+payloadLen:]) != 1 {
		return nil, ErrChecksum
	}
	return &reader{buf: data[headerLen : headerLen+payloadLen], ver: v}, nil
}

func (r *reader) fail() {
	if r.err == nil {
		// Inside a checksum-valid payload, running out of bytes means
		// the object is malformed, not truncated in transit.
		r.err = fmt.Errorf("%w: payload ends mid-field", ErrInvalid)
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }

// count reads a u32 element count and checks that at least count ×
// elemSize bytes remain, so corrupted counts fail before allocating.
func (r *reader) count(elemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || r.off+n*elemSize > len(r.buf) {
		r.fail()
		return 0
	}
	return n
}

func (r *reader) bytes() []byte {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) u64s() []uint64 {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.u64()
	}
	return out
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d unread payload bytes", ErrInvalid, len(r.buf)-r.off)
	}
	return nil
}

// ---- bundle ----

// Encode serializes the bundle. Params, Plan, Relin and Galois are
// required; Sample/Expected must be both present or both absent.
func (b *Bundle) Encode() ([]byte, error) {
	return b.encode(Version)
}

// encode writes the bundle in an explicit format version. Only the
// current Version is written by production code; older versions exist
// so tests can fabricate byte-exact artifacts of earlier builds and
// prove they still load (a v1 plan cannot carry hoisted steps).
func (b *Bundle) encode(ver byte) ([]byte, error) {
	if b.Params == nil || b.Plan == nil || b.Relin == nil || b.Galois == nil {
		return nil, fmt.Errorf("wire: bundle needs params, plan, relin and galois keys")
	}
	if (b.Sample == nil) != (b.Expected == nil) {
		return nil, fmt.Errorf("wire: self-test sample and expected output must come together")
	}
	w := newWriter(ver, tagBundle)
	fp := b.Params.Fingerprint()
	w.buf = append(w.buf, fp[:]...)
	w.str(b.Name)
	w.str(b.Preset)
	if err := w.blob(b.Params.MarshalBinary()); err != nil {
		return nil, err
	}
	if err := encodePlan(w, b.Plan, ver); err != nil {
		return nil, err
	}
	if err := w.blob(b.Relin.MarshalBinary()); err != nil {
		return nil, err
	}
	if err := w.blob(b.Galois.MarshalBinary()); err != nil {
		return nil, err
	}
	if b.Sample == nil {
		w.u8(0)
	} else {
		w.u8(1)
		if err := encodeRequestBody(w, b.Sample); err != nil {
			return nil, err
		}
		if err := w.blob(b.Expected.MarshalBinary()); err != nil {
			return nil, err
		}
	}
	return w.finish(), nil
}

// DecodeBundle decodes and fully validates a bundle: envelope
// integrity, parameter fingerprint, plan well-formedness
// (plan.Validate), Galois coverage of every declared rotation, and
// self-test shape.
func DecodeBundle(data []byte) (*Bundle, error) {
	r, err := open(data, tagBundle)
	if err != nil {
		return nil, err
	}
	var fp [16]byte
	if r.off+16 > len(r.buf) {
		return nil, fmt.Errorf("%w: payload ends mid-fingerprint", ErrInvalid)
	}
	copy(fp[:], r.buf[r.off:])
	r.off += 16

	b := &Bundle{Name: r.str(), Preset: r.str()}
	paramsBlob := r.bytes()
	if r.err != nil {
		return nil, r.err
	}
	if b.Params, err = bfv.UnmarshalParameters(paramsBlob); err != nil {
		return nil, fmt.Errorf("%w: parameters: %v", ErrInvalid, err)
	}
	if b.Params.Fingerprint() != fp {
		return nil, fmt.Errorf("%w: header %x, decoded parameters %x", ErrFingerprint, fp, b.Params.Fingerprint())
	}
	if b.Plan, err = decodePlan(r, b.Params); err != nil {
		return nil, err
	}
	if b.Relin, err = unmarshalRelin(b.Params, r.bytes(), r.err); err != nil {
		return nil, err
	}
	if b.Galois, err = unmarshalGalois(b.Params, r.bytes(), r.err); err != nil {
		return nil, err
	}
	for _, rot := range b.Plan.Rotations {
		if g := b.Params.GaloisElement(rot); g != 1 && !b.Galois.HasElement(g) {
			return nil, fmt.Errorf("%w: plan needs rotation %d (element %d) but the bundle carries no key for it", ErrInvalid, rot, g)
		}
	}
	if r.u8() == 1 {
		if b.Sample, err = decodeRequestBody(r, b.Params); err != nil {
			return nil, err
		}
		if b.Expected, err = unmarshalCiphertext(b.Params, r.bytes(), r.err); err != nil {
			return nil, err
		}
		if len(b.Sample.CtIn) != b.Plan.NumCtInputs || len(b.Sample.PtIn) != b.Plan.NumPtInputs {
			return nil, fmt.Errorf("%w: self-test sample has %d ct / %d pt inputs, plan wants %d / %d",
				ErrInvalid, len(b.Sample.CtIn), len(b.Sample.PtIn), b.Plan.NumCtInputs, b.Plan.NumPtInputs)
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteFile atomically writes the encoded bundle to path.
func (b *Bundle) WriteFile(path string) error {
	data, err := b.Encode()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bundle-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadBundleFile reads and decodes a bundle written by WriteFile.
func ReadBundleFile(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b, err := DecodeBundle(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// ---- plan section ----

func encodePlan(w *writer, p *plan.ExecutionPlan, ver byte) error {
	if p.Source == nil {
		return fmt.Errorf("wire: plan has no source program")
	}
	if groups, _ := p.HoistedGroups(); ver < 2 && groups > 0 {
		return fmt.Errorf("wire: hoisted plans need format version 2, cannot encode as %d", ver)
	}
	if nttRegs, convs := p.DomainStats(); ver < 3 && (nttRegs > 0 || convs > 0) {
		return fmt.Errorf("wire: domain-assigned plans need format version 3, cannot encode as %d", ver)
	}
	if groups, _ := p.BatchedGroups(); ver < 4 && groups > 0 {
		return fmt.Errorf("wire: batched plans need format version 4, cannot encode as %d", ver)
	}
	if groups, _, _ := p.SharedGroups(); ver < 6 && groups > 0 {
		return fmt.Errorf("wire: double-hoisted plans need format version 6, cannot encode as %d (recompile with DisableSharing for older peers)", ver)
	}
	w.u32(uint32(p.N))
	w.u32(uint32(p.VecLen))
	w.u32(uint32(p.NumCtInputs))
	w.u32(uint32(p.NumPtInputs))
	w.u32(uint32(len(p.RegDeg)))
	for _, d := range p.RegDeg {
		w.u8(byte(d))
	}
	if ver >= 3 {
		// v3: one domain byte per register, in register order.
		for r := range p.RegDeg {
			w.u8(byte(p.RegDomainOf(r)))
		}
	}
	w.u32(uint32(len(p.Steps)))
	for i := range p.Steps {
		st := &p.Steps[i]
		w.u8(byte(st.Op))
		w.u32(uint32(st.Dst))
		w.i64(int64(st.A))
		w.i64(int64(st.B))
		w.i64(int64(st.Rot))
		w.i64(int64(st.Pt))
		w.i64(int64(st.Con))
		if ver >= 2 {
			// v2: hoisted fan-out list (empty for plain steps).
			w.u32(uint32(len(st.Fan)))
			for _, f := range st.Fan {
				w.u32(uint32(f.Dst))
				w.i64(int64(f.Rot))
			}
		}
		if ver >= 4 {
			// v4: batched member list (empty for non-batched steps).
			w.u32(uint32(len(st.Batch)))
			for _, m := range st.Batch {
				w.i64(int64(m.Src))
				w.u32(uint32(m.Dst))
			}
		}
		if ver >= 6 {
			// v6: shared member list (empty for non-shared steps), each
			// member carrying its decomposition slot and a strict 0/1
			// fill flag.
			w.u32(uint32(len(st.Shared)))
			for _, m := range st.Shared {
				w.i64(int64(m.Src))
				w.u32(uint32(m.Dst))
				w.u32(uint32(m.Slot))
				if m.Fresh {
					w.u8(1)
				} else {
					w.u8(0)
				}
			}
		}
	}
	w.u32(uint32(len(p.Consts)))
	for _, pt := range p.Consts {
		if err := w.blob(pt.MarshalBinary()); err != nil {
			return err
		}
	}
	w.u32(uint32(len(p.Rotations)))
	for _, r := range p.Rotations {
		w.i64(int64(r))
	}
	w.i64(int64(p.Out))
	w.str(p.Source.String())
	return nil
}

const (
	stepWireSize   = 1 + 4 + 5*8 // fixed step fields (v1 layout; v2 appends the fan list, v4 the batch list, v6 the shared list)
	fanWireSize    = 4 + 8
	batchWireSize  = 8 + 4
	sharedWireSize = 8 + 4 + 4 + 1 // src i64, dst u32, slot u32, fresh u8
)

func decodePlan(r *reader, params *bfv.Parameters) (*plan.ExecutionPlan, error) {
	p := &plan.ExecutionPlan{
		N:           int(r.u32()),
		VecLen:      int(r.u32()),
		NumCtInputs: int(r.u32()),
		NumPtInputs: int(r.u32()),
	}
	nRegs := r.count(1)
	p.NumRegs = nRegs
	p.RegDeg = make([]int, 0, nRegs)
	for i := 0; i < nRegs; i++ {
		p.RegDeg = append(p.RegDeg, int(r.u8()))
	}
	// v3 carries an explicit domain per register; earlier versions
	// predate NTT residency, so every register is coefficient-domain.
	p.RegDomain = make([]plan.Domain, 0, nRegs)
	if r.ver >= 3 {
		if r.off+nRegs > len(r.buf) {
			r.fail()
		}
		for i := 0; i < nRegs; i++ {
			p.RegDomain = append(p.RegDomain, plan.Domain(r.u8()))
		}
	} else {
		for i := 0; i < nRegs; i++ {
			p.RegDomain = append(p.RegDomain, plan.DomCoeff)
		}
	}
	nSteps := r.count(stepWireSize)
	p.Steps = make([]plan.Step, 0, nSteps)
	for i := 0; i < nSteps; i++ {
		st := plan.Step{
			Op:  quill.Op(r.u8()),
			Dst: int(r.u32()),
			A:   int(r.i64()),
			B:   int(r.i64()),
			Rot: int(r.i64()),
			Pt:  int(r.i64()),
			Con: int(r.i64()),
		}
		if r.ver >= 2 {
			nFan := r.count(fanWireSize)
			for f := 0; f < nFan; f++ {
				st.Fan = append(st.Fan, plan.FanOut{Dst: int(r.u32()), Rot: int(r.i64())})
			}
		}
		if r.ver >= 4 {
			nBatch := r.count(batchWireSize)
			for m := 0; m < nBatch; m++ {
				st.Batch = append(st.Batch, plan.BatchedSrc{Src: int(r.i64()), Dst: int(r.u32())})
			}
		}
		if r.ver >= 6 {
			nShared := r.count(sharedWireSize)
			for m := 0; m < nShared; m++ {
				sm := plan.SharedSrc{Src: int(r.i64()), Dst: int(r.u32()), Slot: int(r.u32())}
				// Every live slot pins its source in a distinct register
				// or input, so a well-formed plan never has more slots
				// than operand codes; rejecting larger indices here keeps
				// a flipped slot byte from inflating the derived
				// NumDecomps (and the allocations sized by it) before
				// plan.Validate proves slot denseness.
				if sm.Slot >= p.NumCtInputs+nRegs {
					return nil, fmt.Errorf("%w: decomposition slot %d out of range", ErrInvalid, sm.Slot)
				}
				switch r.u8() {
				case 0:
				case 1:
					sm.Fresh = true
				default:
					return nil, fmt.Errorf("%w: shared member fill flag is neither 0 nor 1", ErrInvalid)
				}
				st.Shared = append(st.Shared, sm)
			}
		}
		p.Steps = append(p.Steps, st)
		// NumDecomps is sized by the register allocator at compile time;
		// derived, not serialized (plan.Validate checks the
		// consistency): one transient buffer for legacy hoisted/batched
		// groups, the peak slot index + 1 for double-hoisted plans.
		if st.Op == plan.OpHoistedRot || st.Op == plan.OpBatchedRot {
			p.NumDecomps = 1
		}
		for _, sm := range st.Shared {
			if sm.Slot >= 0 && sm.Slot+1 > p.NumDecomps {
				p.NumDecomps = sm.Slot + 1
			}
		}
	}
	nConsts := r.count(4)
	for i := 0; i < nConsts; i++ {
		pt, err := unmarshalPlaintext(params, r.bytes(), r.err)
		if err != nil {
			return nil, err
		}
		p.Consts = append(p.Consts, pt)
	}
	nRots := r.count(8)
	for i := 0; i < nRots; i++ {
		p.Rotations = append(p.Rotations, int(r.i64()))
	}
	p.Out = int(r.i64())
	src := r.str()
	if r.err != nil {
		return nil, r.err
	}
	l, err := quill.ParseLowered(src)
	if err != nil {
		return nil, fmt.Errorf("%w: plan source program: %v", ErrInvalid, err)
	}
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("%w: plan source program: %v", ErrInvalid, err)
	}
	if l.VecLen != p.VecLen || l.NumCtInputs != p.NumCtInputs || l.NumPtInputs != p.NumPtInputs {
		return nil, fmt.Errorf("%w: plan source shape (vec=%d ct=%d pt=%d) disagrees with plan (vec=%d ct=%d pt=%d)",
			ErrInvalid, l.VecLen, l.NumCtInputs, l.NumPtInputs, p.VecLen, p.NumCtInputs, p.NumPtInputs)
	}
	p.Source = l
	if err := p.Validate(params); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	// Derive the prepared NTT operand forms (constants and
	// plaintext-input flags) the executor dispatches on. Derived from
	// the validated plan, never trusted from the wire.
	p.Prepare(params)
	return p, nil
}

// ---- request / response ----

func encodeRequestBody(w *writer, req *Request) error {
	w.u32(uint32(len(req.CtIn)))
	for _, ct := range req.CtIn {
		if err := w.blob(ct.MarshalBinary()); err != nil {
			return err
		}
	}
	w.u32(uint32(len(req.PtIn)))
	for _, v := range req.PtIn {
		w.u64s(v)
	}
	return nil
}

func decodeRequestBody(r *reader, params *bfv.Parameters) (*Request, error) {
	req := &Request{}
	nCt := r.count(4)
	for i := 0; i < nCt; i++ {
		ct, err := unmarshalCiphertext(params, r.bytes(), r.err)
		if err != nil {
			return nil, err
		}
		req.CtIn = append(req.CtIn, ct)
	}
	nPt := r.count(4)
	for i := 0; i < nPt; i++ {
		v := r.u64s()
		if r.err != nil {
			return nil, r.err
		}
		if len(v) > params.SlotCount() {
			return nil, fmt.Errorf("%w: plaintext vector of %d slots exceeds row size %d", ErrInvalid, len(v), params.SlotCount())
		}
		for _, x := range v {
			if x >= params.T {
				return nil, fmt.Errorf("%w: plaintext value %d outside Z_%d", ErrInvalid, x, params.T)
			}
		}
		req.PtIn = append(req.PtIn, quill.Vec(v))
	}
	return req, nil
}

// EncodeRequest serializes a request, pinning it to the parameter
// fingerprint so a serving process rejects requests encrypted under
// different parameters.
func EncodeRequest(params *bfv.Parameters, req *Request) ([]byte, error) {
	// Request bodies are unchanged since v1; write the lowest version
	// that can carry them so mixed-version deployments keep working (a
	// v1 server rejects anything above its own version).
	w := newWriter(MinVersion, tagRequest)
	fp := params.Fingerprint()
	w.buf = append(w.buf, fp[:]...)
	if err := encodeRequestBody(w, req); err != nil {
		return nil, err
	}
	return w.finish(), nil
}

// DecodeRequest decodes and validates a request against the serving
// parameters.
func DecodeRequest(params *bfv.Parameters, data []byte) (*Request, error) {
	r, err := open(data, tagRequest)
	if err != nil {
		return nil, err
	}
	if _, err := readFingerprint(r, params); err != nil {
		return nil, err
	}
	req, err := decodeRequestBody(r, params)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return req, nil
}

// EncodeResponse serializes one output ciphertext.
func EncodeResponse(params *bfv.Parameters, out *bfv.Ciphertext) ([]byte, error) {
	// Like requests, response bodies are v1-compatible; see EncodeRequest.
	w := newWriter(MinVersion, tagResponse)
	fp := params.Fingerprint()
	w.buf = append(w.buf, fp[:]...)
	if err := w.blob(out.MarshalBinary()); err != nil {
		return nil, err
	}
	return w.finish(), nil
}

// DecodeResponse decodes a response produced under the same
// parameters.
func DecodeResponse(params *bfv.Parameters, data []byte) (*bfv.Ciphertext, error) {
	r, err := open(data, tagResponse)
	if err != nil {
		return nil, err
	}
	if _, err := readFingerprint(r, params); err != nil {
		return nil, err
	}
	ct, err := unmarshalCiphertext(params, r.bytes(), r.err)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return ct, nil
}

func readFingerprint(r *reader, params *bfv.Parameters) ([16]byte, error) {
	var fp [16]byte
	if r.off+16 > len(r.buf) {
		return fp, fmt.Errorf("%w: payload ends mid-fingerprint", ErrInvalid)
	}
	copy(fp[:], r.buf[r.off:])
	r.off += 16
	if fp != params.Fingerprint() {
		return fp, fmt.Errorf("%w: object built for %x, serving parameters are %x", ErrFingerprint, fp, params.Fingerprint())
	}
	return fp, nil
}

// ---- bfv blob helpers (uniform error typing) ----

func unmarshalCiphertext(params *bfv.Parameters, blob []byte, rerr error) (*bfv.Ciphertext, error) {
	if rerr != nil {
		return nil, rerr
	}
	ct, err := params.UnmarshalCiphertext(blob)
	if err != nil {
		return nil, fmt.Errorf("%w: ciphertext: %v", ErrInvalid, err)
	}
	return ct, nil
}

func unmarshalPlaintext(params *bfv.Parameters, blob []byte, rerr error) (*bfv.Plaintext, error) {
	if rerr != nil {
		return nil, rerr
	}
	pt, err := params.UnmarshalPlaintext(blob)
	if err != nil {
		return nil, fmt.Errorf("%w: plaintext: %v", ErrInvalid, err)
	}
	return pt, nil
}

func unmarshalRelin(params *bfv.Parameters, blob []byte, rerr error) (*bfv.RelinearizationKey, error) {
	if rerr != nil {
		return nil, rerr
	}
	rk, err := params.UnmarshalRelinearizationKey(blob)
	if err != nil {
		return nil, fmt.Errorf("%w: relinearization key: %v", ErrInvalid, err)
	}
	return rk, nil
}

func unmarshalGalois(params *bfv.Parameters, blob []byte, rerr error) (*bfv.GaloisKeys, error) {
	if rerr != nil {
		return nil, rerr
	}
	gk, err := params.UnmarshalGaloisKeys(blob)
	if err != nil {
		return nil, fmt.Errorf("%w: galois keys: %v", ErrInvalid, err)
	}
	return gk, nil
}
