// Registry: the wire-v5 multi-kernel serving artifact. One envelope
// carries a manifest of named plans compiled for ONE parameter set,
// with a single shared key-material section (relinearization key plus
// the union Galois set every plan — and every mux lane geometry —
// needs), so a serving process hosts the whole kernel suite from one
// shared backend context instead of one process per bundle.

package wire

import (
	"fmt"
	"os"
	"path/filepath"

	"porcupine/internal/bfv"
	"porcupine/internal/plan"
)

// RegistryEntry is one named kernel of a registry manifest.
type RegistryEntry struct {
	Name string
	Plan *plan.ExecutionPlan

	// MuxStride/MuxLanes are the slot-multiplexing lane geometry the
	// exporter proved legal for this plan (see plan.MuxParams), or 0/0
	// for a mux-ineligible kernel (full-width vector, rotation reach
	// crossing lane boundaries, degree-2 output). Decode re-validates
	// the geometry against the plan's reach analysis and the shared
	// Galois set — a manifest is never trusted to be legal.
	MuxStride int
	MuxLanes  int

	// Sample/Expected form the per-kernel embedded differential check,
	// exactly like Bundle's: running Plan on Sample must reproduce
	// Expected bit for bit. Both may be nil.
	Sample   *Request
	Expected *bfv.Ciphertext
}

// Registry is the exported multi-kernel serving artifact.
type Registry struct {
	Preset string // parameter preset name (reporting; the binding truth is the fingerprint)

	Params  *bfv.Parameters
	Entries []RegistryEntry

	Relin  *bfv.RelinearizationKey
	Galois *bfv.GaloisKeys
}

// Entry returns the named entry, or nil.
func (reg *Registry) Entry(name string) *RegistryEntry {
	for i := range reg.Entries {
		if reg.Entries[i].Name == name {
			return &reg.Entries[i]
		}
	}
	return nil
}

// Kernels returns the manifest's kernel names in manifest order.
func (reg *Registry) Kernels() []string {
	names := make([]string, len(reg.Entries))
	for i := range reg.Entries {
		names[i] = reg.Entries[i].Name
	}
	return names
}

// Encode serializes the registry. Params, keys and at least one entry
// are required; every entry needs a name and a plan, and each entry's
// Sample/Expected must come together.
func (reg *Registry) Encode() ([]byte, error) {
	return reg.encode(Version)
}

// encode writes the registry in an explicit format version. Only the
// current Version is written by production code; older versions exist
// for the compatibility tests, which fabricate byte-exact artifacts of
// earlier formats. Registries are new in v5, and per-plan encoding
// enforces the plan-feature floor (shared groups need v6).
func (reg *Registry) encode(ver byte) ([]byte, error) {
	if ver < 5 {
		return nil, fmt.Errorf("wire: registries need format version 5, cannot encode as %d", ver)
	}
	if reg.Params == nil || reg.Relin == nil || reg.Galois == nil {
		return nil, fmt.Errorf("wire: registry needs params, relin and galois keys")
	}
	if len(reg.Entries) == 0 {
		return nil, fmt.Errorf("wire: registry carries no kernels")
	}
	w := newWriter(ver, tagRegistry)
	fp := reg.Params.Fingerprint()
	w.buf = append(w.buf, fp[:]...)
	w.str(reg.Preset)
	if err := w.blob(reg.Params.MarshalBinary()); err != nil {
		return nil, err
	}
	w.u32(uint32(len(reg.Entries)))
	for i := range reg.Entries {
		e := &reg.Entries[i]
		if e.Name == "" || e.Plan == nil {
			return nil, fmt.Errorf("wire: registry entry %d needs a name and a plan", i)
		}
		if (e.Sample == nil) != (e.Expected == nil) {
			return nil, fmt.Errorf("wire: registry entry %q: self-test sample and expected output must come together", e.Name)
		}
		w.str(e.Name)
		if err := encodePlan(w, e.Plan, ver); err != nil {
			return nil, err
		}
		w.u32(uint32(e.MuxStride))
		w.u32(uint32(e.MuxLanes))
		if e.Sample == nil {
			w.u8(0)
		} else {
			w.u8(1)
			if err := encodeRequestBody(w, e.Sample); err != nil {
				return nil, err
			}
			if err := w.blob(e.Expected.MarshalBinary()); err != nil {
				return nil, err
			}
		}
	}
	if err := w.blob(reg.Relin.MarshalBinary()); err != nil {
		return nil, err
	}
	if err := w.blob(reg.Galois.MarshalBinary()); err != nil {
		return nil, err
	}
	return w.finish(), nil
}

// DecodeRegistry decodes and fully validates a registry: envelope
// integrity, parameter fingerprint, per-plan well-formedness
// (plan.Validate via decodePlan), manifest sanity (non-empty unique
// names), mux lane-geometry legality re-derived from each plan's reach
// analysis, Galois coverage of every plan rotation AND every mux
// pack/demux rotation, and per-entry self-test shape.
func DecodeRegistry(data []byte) (*Registry, error) {
	r, err := open(data, tagRegistry)
	if err != nil {
		return nil, err
	}
	if r.ver < 5 {
		return nil, fmt.Errorf("%w: registries need format version 5, envelope says %d", ErrVersion, r.ver)
	}
	var fp [16]byte
	if r.off+16 > len(r.buf) {
		return nil, fmt.Errorf("%w: payload ends mid-fingerprint", ErrInvalid)
	}
	copy(fp[:], r.buf[r.off:])
	r.off += 16

	reg := &Registry{Preset: r.str()}
	paramsBlob := r.bytes()
	if r.err != nil {
		return nil, r.err
	}
	if reg.Params, err = bfv.UnmarshalParameters(paramsBlob); err != nil {
		return nil, fmt.Errorf("%w: parameters: %v", ErrInvalid, err)
	}
	if reg.Params.Fingerprint() != fp {
		return nil, fmt.Errorf("%w: header %x, decoded parameters %x", ErrFingerprint, fp, reg.Params.Fingerprint())
	}
	slots := reg.Params.SlotCount()

	nEntries := r.count(1)
	if r.err == nil && nEntries == 0 {
		return nil, fmt.Errorf("%w: registry manifest is empty", ErrInvalid)
	}
	seen := make(map[string]bool, nEntries)
	for i := 0; i < nEntries; i++ {
		e := RegistryEntry{Name: r.str()}
		if r.err != nil {
			return nil, r.err
		}
		if e.Name == "" {
			return nil, fmt.Errorf("%w: registry entry %d has an empty name", ErrInvalid, i)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("%w: duplicate registry entry %q", ErrInvalid, e.Name)
		}
		seen[e.Name] = true
		if e.Plan, err = decodePlan(r, reg.Params); err != nil {
			return nil, fmt.Errorf("registry entry %q: %w", e.Name, err)
		}
		e.MuxStride = int(r.u32())
		e.MuxLanes = int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		switch {
		case e.MuxStride == 0 && e.MuxLanes == 0:
			// mux-ineligible kernel: per-request execution only
		case e.MuxStride == 0 || e.MuxLanes == 0:
			return nil, fmt.Errorf("%w: registry entry %q: half-set mux geometry stride=%d lanes=%d", ErrInvalid, e.Name, e.MuxStride, e.MuxLanes)
		default:
			if err := plan.ValidateMux(e.Plan, slots, e.MuxStride, e.MuxLanes); err != nil {
				return nil, fmt.Errorf("%w: registry entry %q: %v", ErrInvalid, e.Name, err)
			}
		}
		if r.u8() == 1 {
			if e.Sample, err = decodeRequestBody(r, reg.Params); err != nil {
				return nil, fmt.Errorf("registry entry %q: %w", e.Name, err)
			}
			if e.Expected, err = unmarshalCiphertext(reg.Params, r.bytes(), r.err); err != nil {
				return nil, fmt.Errorf("registry entry %q: %w", e.Name, err)
			}
			if len(e.Sample.CtIn) != e.Plan.NumCtInputs || len(e.Sample.PtIn) != e.Plan.NumPtInputs {
				return nil, fmt.Errorf("%w: registry entry %q: self-test sample has %d ct / %d pt inputs, plan wants %d / %d",
					ErrInvalid, e.Name, len(e.Sample.CtIn), len(e.Sample.PtIn), e.Plan.NumCtInputs, e.Plan.NumPtInputs)
			}
		}
		reg.Entries = append(reg.Entries, e)
	}
	if reg.Relin, err = unmarshalRelin(reg.Params, r.bytes(), r.err); err != nil {
		return nil, err
	}
	if reg.Galois, err = unmarshalGalois(reg.Params, r.bytes(), r.err); err != nil {
		return nil, err
	}
	for i := range reg.Entries {
		e := &reg.Entries[i]
		for _, rot := range e.Plan.Rotations {
			if g := reg.Params.GaloisElement(rot); g != 1 && !reg.Galois.HasElement(g) {
				return nil, fmt.Errorf("%w: entry %q needs rotation %d (element %d) but the registry carries no key for it", ErrInvalid, e.Name, rot, g)
			}
		}
		if e.MuxLanes >= 2 {
			for _, rot := range plan.MuxRotations(e.MuxStride, e.MuxLanes) {
				if g := reg.Params.GaloisElement(rot); g != 1 && !reg.Galois.HasElement(g) {
					return nil, fmt.Errorf("%w: entry %q mux geometry needs rotation %d (element %d) but the registry carries no key for it", ErrInvalid, e.Name, rot, g)
				}
			}
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return reg, nil
}

// WriteFile atomically writes the encoded registry to path.
func (reg *Registry) WriteFile(path string) error {
	data, err := reg.Encode()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".registry-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadRegistryFile reads and decodes a registry written by WriteFile.
func ReadRegistryFile(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	reg, err := DecodeRegistry(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reg, nil
}
