package wire_test

import (
	"errors"
	"math/rand"
	"testing"

	"porcupine/internal/backend"
	"porcupine/internal/bfv"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
	"porcupine/internal/serve"
	"porcupine/internal/wire"
)

// fanOutProgram rotates one source four distinct ways — the shape the
// v2 planner fuses into a hoisted group, and the shape a v1 exporter
// could only describe as plain serial steps.
func fanOutProgram() *quill.Lowered {
	return &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 2},
			{Op: quill.OpRotCt, Dst: 3, A: 0, Rot: 5},
			{Op: quill.OpRotCt, Dst: 4, A: 0, Rot: -3},
			{Op: quill.OpAddCtCt, Dst: 5, A: 1, B: 2},
			{Op: quill.OpAddCtCt, Dst: 6, A: 5, B: 3},
			{Op: quill.OpAddCtCt, Dst: 7, A: 6, B: 4},
		},
		Output: 7,
	}
}

// TestV1BundleStillLoadsAndRuns fabricates a byte-exact version-1
// bundle (the format every pre-hoisting export used: no fan lists,
// version byte 1) around an unhoisted plan, and proves this build
// decodes, validates and executes it bit-identically to the hoisted
// v2 plan of the same program — the backward-compatibility contract
// of the format bump.
func TestV1BundleStillLoadsAndRuns(t *testing.T) {
	l := fanOutProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	hoisted := plans[0]
	if g, r := hoisted.HoistedGroups(); g != 1 || r != 4 {
		t.Fatalf("hoisted plan has %d groups / %d rotations, want 1 / 4", g, r)
	}
	flat, err := plan.CompileWithOptions(ctx.Params, ctx.Encoder, l, plan.Options{DisableHoisting: true})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(29))
	v := make(quill.Vec, l.VecLen)
	for j := range v {
		v[j] = rng.Uint64() % 64
	}
	ct, err := ctx.EncryptVec(v)
	if err != nil {
		t.Fatal(err)
	}
	sample := &wire.Request{CtIn: []*bfv.Ciphertext{ct}}

	b, err := serve.Export(ctx, "compat-test", flat, sample)
	if err != nil {
		t.Fatal(err)
	}
	data, err := wire.EncodeVersion(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if data[4] != 1 {
		t.Fatalf("fabricated artifact carries version byte %d, want 1", data[4])
	}

	got, err := wire.DecodeBundle(data)
	if err != nil {
		t.Fatalf("v1 bundle no longer decodes: %v", err)
	}
	for i := range got.Plan.Steps {
		if len(got.Plan.Steps[i].Fan) != 0 || got.Plan.Steps[i].Op == plan.OpHoistedRot {
			t.Fatal("v1 plan decoded with hoisted steps")
		}
	}

	// The loaded v1 artifact must reproduce the exporter's output...
	_, sched, err := serve.Load(got, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	ok, err := serve.SelfTest(sched, got)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("v1 bundle does not run bit-identically to its exporter")
	}
	// ...and that output must equal the hoisted v2 execution of the
	// same program: serial and hoisted key switching share primitives.
	hout, err := ctx.NewSession().Run(hoisted, sample.CtIn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.Params.CiphertextEqual(hout, got.Expected) {
		t.Fatal("hoisted execution differs from the v1 (unhoisted) expected output")
	}
}

// TestHoistedPlanNeedsV2 pins the encoder-side rule: a plan carrying
// hoisted steps cannot be written in the v1 layout (which has no fan
// field to hold them).
func TestHoistedPlanNeedsV2(t *testing.T) {
	l := fanOutProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	b, err := serve.Export(ctx, "compat-test", plans[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.EncodeVersion(b, 1); err == nil {
		t.Fatal("hoisted plan encoded as v1")
	}
	if _, err := b.Encode(); err != nil {
		t.Fatalf("hoisted plan fails v2 encode: %v", err)
	}
}

// TestFanCorruptionRejected runs decode-side corruptions specific to
// the v2 fan list: every malformed fan must be refused as ErrInvalid
// by the envelope's deep validation (plan.Validate), never panic.
func TestFanCorruptionRejected(t *testing.T) {
	l := fanOutProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	base, err := serve.Export(ctx, "compat-test", plans[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func(p *plan.ExecutionPlan)) {
		t.Run(name, func(t *testing.T) {
			// Deep-copy the plan's step/fan lists, corrupt, re-encode: the
			// checksum is then valid and only semantic validation stands.
			p2 := *plans[0]
			p2.Steps = append([]plan.Step(nil), plans[0].Steps...)
			for i := range p2.Steps {
				p2.Steps[i].Fan = append([]plan.FanOut(nil), p2.Steps[i].Fan...)
			}
			p2.Rotations = append([]int(nil), plans[0].Rotations...)
			mutate(&p2)
			b2 := *base
			b2.Plan = &p2
			data, err := b2.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := wire.DecodeBundle(data); !errors.Is(err, wire.ErrInvalid) {
				t.Fatalf("corrupted fan decoded: err = %v, want ErrInvalid", err)
			}
		})
	}
	hoistIdx := -1
	for i := range plans[0].Steps {
		if plans[0].Steps[i].Op == plan.OpHoistedRot {
			hoistIdx = i
		}
	}
	if hoistIdx < 0 {
		t.Fatal("no hoisted step in base plan")
	}
	corrupt("fan-dst-out-of-range", func(p *plan.ExecutionPlan) { p.Steps[hoistIdx].Fan[0].Dst = p.NumRegs })
	corrupt("fan-rot-undeclared", func(p *plan.ExecutionPlan) { p.Steps[hoistIdx].Fan[0].Rot = 777 })
	corrupt("fan-rot-duplicate", func(p *plan.ExecutionPlan) { p.Steps[hoistIdx].Fan[1].Rot = p.Steps[hoistIdx].Fan[0].Rot })
	corrupt("fan-on-plain-step", func(p *plan.ExecutionPlan) {
		for i := range p.Steps {
			if p.Steps[i].Op != plan.OpHoistedRot {
				p.Steps[i].Fan = []plan.FanOut{{Dst: 0, Rot: 1}}
				return
			}
		}
	})
}
