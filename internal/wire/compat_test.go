package wire_test

import (
	"crypto/sha256"
	"errors"
	"math/rand"
	"testing"

	"porcupine/internal/backend"
	"porcupine/internal/bfv"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
	"porcupine/internal/serve"
	"porcupine/internal/wire"
)

// legacyPlan compiles l in the PR 7 shape (hoisted/batched steps, no
// shared groups) — the newest plan form the v1–v5 layouts can carry.
// The compat tests that fabricate ≤v5 artifacts pin against this shape;
// default compiles now produce shared groups, which need v6.
func legacyPlan(t *testing.T, ctx *backend.Context, l *quill.Lowered) *plan.ExecutionPlan {
	t.Helper()
	p, err := plan.CompileWithOptions(ctx.Params, ctx.Encoder, l, plan.Options{DisableSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fanOutProgram rotates one source four distinct ways — the shape the
// v2 planner fuses into a hoisted group, and the shape a v1 exporter
// could only describe as plain serial steps.
func fanOutProgram() *quill.Lowered {
	return &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 2},
			{Op: quill.OpRotCt, Dst: 3, A: 0, Rot: 5},
			{Op: quill.OpRotCt, Dst: 4, A: 0, Rot: -3},
			{Op: quill.OpAddCtCt, Dst: 5, A: 1, B: 2},
			{Op: quill.OpAddCtCt, Dst: 6, A: 5, B: 3},
			{Op: quill.OpAddCtCt, Dst: 7, A: 6, B: 4},
		},
		Output: 7,
	}
}

// TestV1BundleStillLoadsAndRuns fabricates a byte-exact version-1
// bundle (the format every pre-hoisting export used: no fan lists,
// version byte 1) around an unhoisted plan, and proves this build
// decodes, validates and executes it bit-identically to the hoisted
// v2 plan of the same program — the backward-compatibility contract
// of the format bump.
func TestV1BundleStillLoadsAndRuns(t *testing.T) {
	l := fanOutProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	plans[0] = legacyPlan(t, ctx, l)
	hoisted := plans[0]
	if g, r := hoisted.HoistedGroups(); g != 1 || r != 4 {
		t.Fatalf("hoisted plan has %d groups / %d rotations, want 1 / 4", g, r)
	}
	// A v1-era exporter had neither hoisting nor domain assignment.
	flat, err := plan.CompileWithOptions(ctx.Params, ctx.Encoder, l,
		plan.Options{DisableHoisting: true, DisableDomainAssignment: true})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(29))
	v := make(quill.Vec, l.VecLen)
	for j := range v {
		v[j] = rng.Uint64() % 64
	}
	ct, err := ctx.EncryptVec(v)
	if err != nil {
		t.Fatal(err)
	}
	sample := &wire.Request{CtIn: []*bfv.Ciphertext{ct}}

	b, err := serve.Export(ctx, "compat-test", flat, sample)
	if err != nil {
		t.Fatal(err)
	}
	data, err := wire.EncodeVersion(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if data[4] != 1 {
		t.Fatalf("fabricated artifact carries version byte %d, want 1", data[4])
	}

	got, err := wire.DecodeBundle(data)
	if err != nil {
		t.Fatalf("v1 bundle no longer decodes: %v", err)
	}
	for i := range got.Plan.Steps {
		if len(got.Plan.Steps[i].Fan) != 0 || got.Plan.Steps[i].Op == plan.OpHoistedRot {
			t.Fatal("v1 plan decoded with hoisted steps")
		}
	}

	// The loaded v1 artifact must reproduce the exporter's output...
	_, sched, err := serve.Load(got, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	ok, err := serve.SelfTest(sched, got)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("v1 bundle does not run bit-identically to its exporter")
	}
	// ...and that output must equal the hoisted v2 execution of the
	// same program: serial and hoisted key switching share primitives.
	hout, err := ctx.NewSession().Run(hoisted, sample.CtIn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.Params.CiphertextEqual(hout, got.Expected) {
		t.Fatal("hoisted execution differs from the v1 (unhoisted) expected output")
	}
}

// TestHoistedPlanNeedsV2 pins the encoder-side rule: a plan carrying
// hoisted steps cannot be written in the v1 layout (which has no fan
// field to hold them).
func TestHoistedPlanNeedsV2(t *testing.T) {
	l := fanOutProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	plans[0] = legacyPlan(t, ctx, l)
	b, err := serve.Export(ctx, "compat-test", plans[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.EncodeVersion(b, 1); err == nil {
		t.Fatal("hoisted plan encoded as v1")
	}
	if _, err := b.Encode(); err != nil {
		t.Fatalf("hoisted plan fails v2 encode: %v", err)
	}
}

// TestFanCorruptionRejected runs decode-side corruptions specific to
// the v2 fan list: every malformed fan must be refused as ErrInvalid
// by the envelope's deep validation (plan.Validate), never panic.
func TestFanCorruptionRejected(t *testing.T) {
	l := fanOutProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	plans[0] = legacyPlan(t, ctx, l)
	base, err := serve.Export(ctx, "compat-test", plans[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func(p *plan.ExecutionPlan)) {
		t.Run(name, func(t *testing.T) {
			// Deep-copy the plan's step/fan lists, corrupt, re-encode: the
			// checksum is then valid and only semantic validation stands.
			p2 := *plans[0]
			p2.Steps = append([]plan.Step(nil), plans[0].Steps...)
			for i := range p2.Steps {
				p2.Steps[i].Fan = append([]plan.FanOut(nil), p2.Steps[i].Fan...)
			}
			p2.Rotations = append([]int(nil), plans[0].Rotations...)
			mutate(&p2)
			b2 := *base
			b2.Plan = &p2
			data, err := b2.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := wire.DecodeBundle(data); !errors.Is(err, wire.ErrInvalid) {
				t.Fatalf("corrupted fan decoded: err = %v, want ErrInvalid", err)
			}
		})
	}
	hoistIdx := -1
	for i := range plans[0].Steps {
		if plans[0].Steps[i].Op == plan.OpHoistedRot {
			hoistIdx = i
		}
	}
	if hoistIdx < 0 {
		t.Fatal("no hoisted step in base plan")
	}
	corrupt("fan-dst-out-of-range", func(p *plan.ExecutionPlan) { p.Steps[hoistIdx].Fan[0].Dst = p.NumRegs })
	corrupt("fan-rot-undeclared", func(p *plan.ExecutionPlan) { p.Steps[hoistIdx].Fan[0].Rot = 777 })
	corrupt("fan-rot-duplicate", func(p *plan.ExecutionPlan) { p.Steps[hoistIdx].Fan[1].Rot = p.Steps[hoistIdx].Fan[0].Rot })
	corrupt("fan-on-plain-step", func(p *plan.ExecutionPlan) {
		for i := range p.Steps {
			if p.Steps[i].Op != plan.OpHoistedRot {
				p.Steps[i].Fan = []plan.FanOut{{Dst: 0, Rot: 1}}
				return
			}
		}
	})
}

// TestV2BundleStillLoadsAndRuns fabricates a byte-exact version-2
// bundle (hoisted fan lists, but no per-register domain bytes — the
// format every pre-domain-assignment export used) and proves this
// build decodes, validates and executes it bit-identically to the
// domain-assigned v3 plan of the same program.
func TestV2BundleStillLoadsAndRuns(t *testing.T) {
	l := fanOutProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	assigned := plans[0]
	if nttRegs, convs := assigned.DomainStats(); nttRegs == 0 || convs == 0 {
		t.Fatalf("assigned plan has %d NTT regs / %d conversions, want both > 0", nttRegs, convs)
	}
	// A v2-era exporter hoisted but kept every register in the
	// coefficient domain.
	unassigned, err := plan.CompileWithOptions(ctx.Params, ctx.Encoder, l,
		plan.Options{DisableDomainAssignment: true, DisableSharing: true})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(29))
	v := make(quill.Vec, l.VecLen)
	for j := range v {
		v[j] = rng.Uint64() % 64
	}
	ct, err := ctx.EncryptVec(v)
	if err != nil {
		t.Fatal(err)
	}
	sample := &wire.Request{CtIn: []*bfv.Ciphertext{ct}}

	b, err := serve.Export(ctx, "compat-test", unassigned, sample)
	if err != nil {
		t.Fatal(err)
	}
	data, err := wire.EncodeVersion(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if data[4] != 2 {
		t.Fatalf("fabricated artifact carries version byte %d, want 2", data[4])
	}

	got, err := wire.DecodeBundle(data)
	if err != nil {
		t.Fatalf("v2 bundle no longer decodes: %v", err)
	}
	if nttRegs, convs := got.Plan.DomainStats(); nttRegs != 0 || convs != 0 {
		t.Fatalf("v2 plan decoded with %d NTT regs / %d conversions", nttRegs, convs)
	}

	// The loaded v2 artifact must reproduce the exporter's output...
	_, sched, err := serve.Load(got, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	ok, err := serve.SelfTest(sched, got)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("v2 bundle does not run bit-identically to its exporter")
	}
	// ...and that output must equal the domain-assigned v3 execution of
	// the same program: NTT residency is a representation choice.
	aout, err := ctx.NewSession().Run(assigned, sample.CtIn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.Params.CiphertextEqual(aout, got.Expected) {
		t.Fatal("domain-assigned execution differs from the v2 (all-coefficient) expected output")
	}
}

// TestDomainPlanNeedsV3 pins the encoder-side rule: a plan carrying
// NTT-resident registers or conversion steps cannot be written in the
// v1/v2 layouts (which have no domain bytes to hold them), and the v3
// round trip preserves the domain assignment exactly.
func TestDomainPlanNeedsV3(t *testing.T) {
	l := fanOutProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	plans[0] = legacyPlan(t, ctx, l)
	b, err := serve.Export(ctx, "compat-test", plans[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.EncodeVersion(b, 1); err == nil {
		t.Fatal("domain-assigned plan encoded as v1")
	}
	if _, err := wire.EncodeVersion(b, 2); err == nil {
		t.Fatal("domain-assigned plan encoded as v2")
	}
	data, err := wire.EncodeVersion(b, 3)
	if err != nil {
		t.Fatalf("domain-assigned plan fails v3 encode: %v", err)
	}
	if data[4] != 3 {
		t.Fatalf("artifact carries version byte %d, want 3", data[4])
	}
	got, err := wire.DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Plan.RegDomain) != len(plans[0].RegDomain) {
		t.Fatalf("decoded %d domain tags, want %d", len(got.Plan.RegDomain), len(plans[0].RegDomain))
	}
	for r := range plans[0].RegDomain {
		if got.Plan.RegDomain[r] != plans[0].RegDomain[r] {
			t.Fatalf("register %d decoded as %v, want %v", r, got.Plan.RegDomain[r], plans[0].RegDomain[r])
		}
	}
	if !got.Plan.Prepared {
		t.Fatal("decoded plan has no prepared operand forms")
	}
}

// TestDomainCorruptionRejected runs decode-side corruptions specific
// to the v3 domain bytes: every inconsistent domain assignment must be
// refused as ErrInvalid by the envelope's deep validation, never panic
// and never load a plan the executor has no path for.
func TestDomainCorruptionRejected(t *testing.T) {
	l := fanOutProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	plans[0] = legacyPlan(t, ctx, l)
	base, err := serve.Export(ctx, "compat-test", plans[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	hoistIdx := -1
	for i := range plans[0].Steps {
		if plans[0].Steps[i].Op == plan.OpHoistedRot {
			hoistIdx = i
		}
	}
	if hoistIdx < 0 {
		t.Fatal("no hoisted step in base plan")
	}
	corrupt := func(name string, mutate func(p *plan.ExecutionPlan)) {
		t.Run(name, func(t *testing.T) {
			// Deep-copy the plan's mutable slices (domain tags included),
			// corrupt, re-encode: the checksum is then valid and only
			// semantic validation stands between the bytes and a session.
			p2 := *plans[0]
			p2.RegDomain = append([]plan.Domain(nil), plans[0].RegDomain...)
			p2.Steps = append([]plan.Step(nil), plans[0].Steps...)
			for i := range p2.Steps {
				p2.Steps[i].Fan = append([]plan.FanOut(nil), p2.Steps[i].Fan...)
			}
			p2.Rotations = append([]int(nil), plans[0].Rotations...)
			mutate(&p2)
			b2 := *base
			b2.Plan = &p2
			data, err := b2.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := wire.DecodeBundle(data); !errors.Is(err, wire.ErrInvalid) {
				t.Fatalf("corrupted domain decoded: err = %v, want ErrInvalid", err)
			}
		})
	}
	corrupt("domain-bad-value", func(p *plan.ExecutionPlan) {
		p.RegDomain[0] = 7
	})
	corrupt("fan-member-coeff-with-ntt-chain", func(p *plan.ExecutionPlan) {
		// Flipping one fan destination to coefficient breaks the adds
		// that consume it in the evaluation domain.
		p.RegDomain[p.Steps[hoistIdx].Fan[0].Dst] = plan.DomCoeff
	})
	corrupt("output-reg-ntt", func(p *plan.ExecutionPlan) {
		p.RegDomain[p.Reg(p.Out)] = plan.DomNTT
	})
	corrupt("all-coeff-with-conversions", func(p *plan.ExecutionPlan) {
		// Zeroing every domain bit leaves the OpNTT/OpINTT steps
		// pointing at coefficient registers on both sides.
		for r := range p.RegDomain {
			p.RegDomain[r] = plan.DomCoeff
		}
	})
}

// batchedProgram rotates two DIFFERENT sources by the same amount —
// fan-out 1 per source, so hoisting leaves both serial and the v4
// planner fuses them into one cross-source batched group.
func batchedProgram() *quill.Lowered {
	return &quill.Lowered{
		VecLen: 1024, NumCtInputs: 2,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 3, A: 1, Rot: 1},
			{Op: quill.OpAddCtCt, Dst: 4, A: 2, B: 0},
			{Op: quill.OpAddCtCt, Dst: 5, A: 3, B: 1},
			{Op: quill.OpAddCtCt, Dst: 6, A: 4, B: 5},
		},
		Output: 6,
	}
}

// TestV3BundleStillLoadsAndRuns fabricates a byte-exact version-3
// bundle (domain bytes, but no batch lists — the format every
// pre-batching export used) around a batch-free plan and proves this
// build decodes, validates and executes it bit-identically to the
// batched v4 plan of the same program.
func TestV3BundleStillLoadsAndRuns(t *testing.T) {
	l := batchedProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	plans[0] = legacyPlan(t, ctx, l)
	batched := plans[0]
	if g, r := batched.BatchedGroups(); g != 1 || r != 2 {
		t.Fatalf("batched plan has %d groups / %d rotations, want 1 / 2", g, r)
	}
	// A v3-era exporter assigned domains but kept cross-source
	// rotations serial.
	serial, err := plan.CompileWithOptions(ctx.Params, ctx.Encoder, l,
		plan.Options{DisableBatching: true})
	if err != nil {
		t.Fatal(err)
	}
	if g, _ := serial.BatchedGroups(); g != 0 {
		t.Fatal("DisableBatching plan still has batched groups")
	}

	rng := rand.New(rand.NewSource(31))
	sample := &wire.Request{}
	for i := 0; i < l.NumCtInputs; i++ {
		v := make(quill.Vec, l.VecLen)
		for j := range v {
			v[j] = rng.Uint64() % 64
		}
		ct, err := ctx.EncryptVec(v)
		if err != nil {
			t.Fatal(err)
		}
		sample.CtIn = append(sample.CtIn, ct)
	}

	b, err := serve.Export(ctx, "compat-test", serial, sample)
	if err != nil {
		t.Fatal(err)
	}
	data, err := wire.EncodeVersion(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if data[4] != 3 {
		t.Fatalf("fabricated artifact carries version byte %d, want 3", data[4])
	}

	got, err := wire.DecodeBundle(data)
	if err != nil {
		t.Fatalf("v3 bundle no longer decodes: %v", err)
	}
	for i := range got.Plan.Steps {
		if len(got.Plan.Steps[i].Batch) != 0 || got.Plan.Steps[i].Op == plan.OpBatchedRot {
			t.Fatal("v3 plan decoded with batched steps")
		}
	}

	// The loaded v3 artifact must reproduce the exporter's output...
	_, sched, err := serve.Load(got, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	ok, err := serve.SelfTest(sched, got)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("v3 bundle does not run bit-identically to its exporter")
	}
	// ...and that output must equal the batched v4 execution of the
	// same program: batched members run the serial rotation pipeline
	// with prefetched per-element state.
	bout, err := ctx.NewSession().Run(batched, sample.CtIn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.Params.CiphertextEqual(bout, got.Expected) {
		t.Fatal("batched execution differs from the v3 (serial) expected output")
	}
}

// TestBatchedPlanNeedsV4 pins the encoder-side rule: a plan carrying
// batched groups cannot be written in the v1–v3 layouts (which have no
// batch field to hold them), and the v4 round trip preserves the
// groups exactly.
func TestBatchedPlanNeedsV4(t *testing.T) {
	l := batchedProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	plans[0] = legacyPlan(t, ctx, l)
	b, err := serve.Export(ctx, "compat-test", plans[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	for ver := byte(1); ver <= 3; ver++ {
		if _, err := wire.EncodeVersion(b, ver); err == nil {
			t.Fatalf("batched plan encoded as v%d", ver)
		}
	}
	data, err := b.Encode()
	if err != nil {
		t.Fatalf("batched plan fails v4 encode: %v", err)
	}
	if data[4] != wire.Version {
		t.Fatalf("artifact carries version byte %d, want %d", data[4], wire.Version)
	}
	got, err := wire.DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	g, r := got.Plan.BatchedGroups()
	wg, wr := plans[0].BatchedGroups()
	if g != wg || r != wr {
		t.Fatalf("decoded %d groups / %d rotations, want %d / %d", g, r, wg, wr)
	}
	if got.Plan.NumDecomps != 1 {
		t.Fatalf("decoded NumDecomps %d, want 1", got.Plan.NumDecomps)
	}
}

// TestBatchCorruptionRejected runs decode-side corruptions specific to
// the v4 batch list: every malformed group must be refused as
// ErrInvalid by the envelope's deep validation, never panic and never
// load a plan whose group would read a clobbered source.
func TestBatchCorruptionRejected(t *testing.T) {
	l := batchedProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	plans[0] = legacyPlan(t, ctx, l)
	base, err := serve.Export(ctx, "compat-test", plans[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	batchIdx := -1
	for i := range plans[0].Steps {
		if plans[0].Steps[i].Op == plan.OpBatchedRot {
			batchIdx = i
		}
	}
	if batchIdx < 0 {
		t.Fatal("no batched step in base plan")
	}
	corrupt := func(name string, mutate func(p *plan.ExecutionPlan)) {
		t.Run(name, func(t *testing.T) {
			p2 := *plans[0]
			p2.Steps = append([]plan.Step(nil), plans[0].Steps...)
			for i := range p2.Steps {
				p2.Steps[i].Batch = append([]plan.BatchedSrc(nil), p2.Steps[i].Batch...)
			}
			p2.Rotations = append([]int(nil), plans[0].Rotations...)
			mutate(&p2)
			b2 := *base
			b2.Plan = &p2
			data, err := b2.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := wire.DecodeBundle(data); !errors.Is(err, wire.ErrInvalid) {
				t.Fatalf("corrupted batch decoded: err = %v, want ErrInvalid", err)
			}
		})
	}
	corrupt("batch-src-out-of-range", func(p *plan.ExecutionPlan) {
		p.Steps[batchIdx].Batch[0].Src = p.NumCtInputs + p.NumRegs
		p.Steps[batchIdx].A = p.Steps[batchIdx].Batch[0].Src
	})
	corrupt("batch-dst-out-of-range", func(p *plan.ExecutionPlan) {
		p.Steps[batchIdx].Batch[1].Dst = p.NumRegs
	})
	corrupt("batch-duplicate-src", func(p *plan.ExecutionPlan) {
		p.Steps[batchIdx].Batch[1].Src = p.Steps[batchIdx].Batch[0].Src
	})
	corrupt("batch-duplicate-dst", func(p *plan.ExecutionPlan) {
		p.Steps[batchIdx].Batch[1].Dst = p.Steps[batchIdx].Batch[0].Dst
	})
	corrupt("batch-dst-aliases-src", func(p *plan.ExecutionPlan) {
		// Point a member's destination at another member's source
		// register (sources here are inputs, so retarget the source to
		// a register first: member 1 reads member 0's destination).
		st := &p.Steps[batchIdx]
		st.Batch[1].Src = p.NumCtInputs + st.Batch[0].Dst
	})
	corrupt("batch-singleton", func(p *plan.ExecutionPlan) {
		st := &p.Steps[batchIdx]
		st.Batch = st.Batch[:1]
	})
	corrupt("batch-rot-undeclared", func(p *plan.ExecutionPlan) {
		p.Steps[batchIdx].Rot = 777
	})
	corrupt("batch-on-plain-step", func(p *plan.ExecutionPlan) {
		for i := range p.Steps {
			if p.Steps[i].Op != plan.OpBatchedRot {
				p.Steps[i].Batch = []plan.BatchedSrc{{Src: 0, Dst: 0}}
				return
			}
		}
	})
	corrupt("batch-head-mismatch", func(p *plan.ExecutionPlan) {
		st := &p.Steps[batchIdx]
		st.Dst = st.Batch[1].Dst
	})
}

// sharedProgram rotates two sources by the same two amounts — the
// shape the v6 planner fuses into shared groups whose second group
// replays both decomposition slots. The legacy (DisableSharing)
// compile of the same program is the newest form a v5 artifact can
// carry.
func sharedProgram() *quill.Lowered {
	return &quill.Lowered{
		VecLen: 1024, NumCtInputs: 2,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 3, A: 1, Rot: 1},
			{Op: quill.OpRotCt, Dst: 4, A: 0, Rot: 2},
			{Op: quill.OpRotCt, Dst: 5, A: 1, Rot: 2},
			{Op: quill.OpAddCtCt, Dst: 6, A: 2, B: 3},
			{Op: quill.OpAddCtCt, Dst: 7, A: 4, B: 5},
			{Op: quill.OpAddCtCt, Dst: 8, A: 6, B: 7},
		},
		Output: 8,
	}
}

// TestSharedPlanNeedsV6 pins the encoder-side rule: a plan carrying
// shared (double-hoisted) groups cannot be written in the v1–v5
// layouts (which have no member list to hold them), and the v6 round
// trip preserves the groups, slots and fill flags exactly — including
// NumDecomps, which is never serialized but re-derived at decode.
func TestSharedPlanNeedsV6(t *testing.T) {
	l := sharedProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	if g, _, rep := plans[0].SharedGroups(); g != 2 || rep != 2 {
		t.Fatalf("shared plan has %d groups (%d replayed), want 2 (2)", g, rep)
	}
	b, err := serve.Export(ctx, "compat-test", plans[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	for ver := byte(1); ver <= 5; ver++ {
		if _, err := wire.EncodeVersion(b, ver); err == nil {
			t.Fatalf("shared plan encoded as v%d", ver)
		}
	}
	data, err := b.Encode()
	if err != nil {
		t.Fatalf("shared plan fails v6 encode: %v", err)
	}
	if data[4] != wire.Version {
		t.Fatalf("artifact carries version byte %d, want %d", data[4], wire.Version)
	}
	got, err := wire.DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	g, r, rep := got.Plan.SharedGroups()
	wg, wr, wrep := plans[0].SharedGroups()
	if g != wg || r != wr || rep != wrep {
		t.Fatalf("decoded %d groups / %d rotations / %d replayed, want %d / %d / %d", g, r, rep, wg, wr, wrep)
	}
	if got.Plan.NumDecomps != plans[0].NumDecomps {
		t.Fatalf("decoded NumDecomps %d, want %d", got.Plan.NumDecomps, plans[0].NumDecomps)
	}
	for i := range plans[0].Steps {
		want, have := plans[0].Steps[i].Shared, got.Plan.Steps[i].Shared
		if len(want) != len(have) {
			t.Fatalf("step %d: %d shared members, want %d", i, len(have), len(want))
		}
		for j := range want {
			if want[j] != have[j] {
				t.Fatalf("step %d member %d: %+v, want %+v", i, j, have[j], want[j])
			}
		}
	}
}

// TestV5BundleStillLoadsAndRuns fabricates a byte-exact version-5
// bundle (batch lists, but no shared member lists — the format every
// pre-sharing export used) around a legacy plan and proves this build
// decodes, validates and executes it bit-identically to the shared v6
// plan of the same program.
func TestV5BundleStillLoadsAndRuns(t *testing.T) {
	l := sharedProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	shared := plans[0]
	legacy := legacyPlan(t, ctx, l)

	rng := rand.New(rand.NewSource(37))
	sample := &wire.Request{}
	for i := 0; i < l.NumCtInputs; i++ {
		v := make(quill.Vec, l.VecLen)
		for j := range v {
			v[j] = rng.Uint64() % 64
		}
		ct, err := ctx.EncryptVec(v)
		if err != nil {
			t.Fatal(err)
		}
		sample.CtIn = append(sample.CtIn, ct)
	}

	b, err := serve.Export(ctx, "compat-test", legacy, sample)
	if err != nil {
		t.Fatal(err)
	}
	data, err := wire.EncodeVersion(b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if data[4] != 5 {
		t.Fatalf("fabricated artifact carries version byte %d, want 5", data[4])
	}

	got, err := wire.DecodeBundle(data)
	if err != nil {
		t.Fatalf("v5 bundle no longer decodes: %v", err)
	}
	for i := range got.Plan.Steps {
		if len(got.Plan.Steps[i].Shared) != 0 || got.Plan.Steps[i].Op == plan.OpSharedRot {
			t.Fatal("v5 plan decoded with shared steps")
		}
	}

	// The loaded v5 artifact must reproduce the exporter's output...
	_, sched, err := serve.Load(got, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	ok, err := serve.SelfTest(sched, got)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("v5 bundle does not run bit-identically to its exporter")
	}
	// ...and that output must equal the shared v6 execution of the same
	// program: slot replay reuses digits a fresh decomposition would
	// recompute identically.
	sout, err := ctx.NewSession().Run(shared, sample.CtIn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.Params.CiphertextEqual(sout, got.Expected) {
		t.Fatal("shared execution differs from the v5 (legacy) expected output")
	}
}

// TestV5RegistryStillLoadsAndRuns fabricates a byte-exact version-5
// registry (the version that introduced registries, whose plans cannot
// carry shared member lists) around legacy plans and proves this build
// decodes it into a working sealed catalog with every kernel's
// self-test passing.
func TestV5RegistryStillLoadsAndRuns(t *testing.T) {
	programs := []*quill.Lowered{sharedProgram(), testProgram()}
	ctx, plans, err := backend.NewTestServingContext("PN2048", 29, programs...)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range programs {
		plans[i] = legacyPlan(t, ctx, l)
	}
	rng := rand.New(rand.NewSource(41))
	samples := make([]*wire.Request, len(plans))
	for i, l := range programs {
		mk := func() quill.Vec {
			v := make(quill.Vec, l.VecLen)
			for j := range v {
				v[j] = rng.Uint64() % 64
			}
			return v
		}
		s := &wire.Request{}
		for k := 0; k < l.NumCtInputs; k++ {
			ct, err := ctx.EncryptVec(mk())
			if err != nil {
				t.Fatal(err)
			}
			s.CtIn = append(s.CtIn, ct)
		}
		for k := 0; k < l.NumPtInputs; k++ {
			s.PtIn = append(s.PtIn, mk())
		}
		samples[i] = s
	}
	reg, err := serve.ExportRegistry(ctx, []string{"stencil", "wide"}, plans, samples)
	if err != nil {
		t.Fatal(err)
	}
	data, err := wire.EncodeRegistryVersion(reg, 5)
	if err != nil {
		t.Fatalf("legacy registry fails v5 encode: %v", err)
	}
	if data[4] != 5 {
		t.Fatalf("fabricated artifact carries version byte %d, want 5", data[4])
	}
	// A registry holding shared plans must refuse the v5 layout.
	mixed := *reg
	mixed.Entries = append([]wire.RegistryEntry(nil), reg.Entries...)
	sharedPlan, err := plan.Compile(ctx.Params, ctx.Encoder, programs[0])
	if err != nil {
		t.Fatal(err)
	}
	mixed.Entries[0].Plan = sharedPlan
	if _, err := wire.EncodeRegistryVersion(&mixed, 5); err == nil {
		t.Fatal("registry with shared plans encoded as v5")
	}

	got, err := wire.DecodeRegistry(data)
	if err != nil {
		t.Fatalf("v5 registry no longer decodes: %v", err)
	}
	for _, e := range got.Entries {
		for i := range e.Plan.Steps {
			if e.Plan.Steps[i].Op == plan.OpSharedRot {
				t.Fatal("v5 registry decoded with shared steps")
			}
		}
	}
	cat, err := serve.LoadRegistry(got, serve.Config{Sessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	for _, name := range got.Kernels() {
		ok, err := cat.SelfTest(name)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("kernel %q not bit-identical after the v5 round trip", name)
		}
	}
}

// TestSharedCorruptionRejected runs decode-side corruptions specific
// to the v6 shared member list: every malformed group must be refused
// as ErrInvalid by the envelope's deep validation — slot bookkeeping
// and the fill-state replay contract included — never panic and never
// load a plan whose replay would read digits that are not resident.
func TestSharedCorruptionRejected(t *testing.T) {
	l := sharedProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	base, err := serve.Export(ctx, "compat-test", plans[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	firstShared, lastShared := -1, -1
	for i := range plans[0].Steps {
		if plans[0].Steps[i].Op == plan.OpSharedRot {
			if firstShared < 0 {
				firstShared = i
			}
			lastShared = i
		}
	}
	if firstShared < 0 || lastShared == firstShared {
		t.Fatal("base plan does not carry two shared steps")
	}
	corrupt := func(name string, mutate func(p *plan.ExecutionPlan)) {
		t.Run(name, func(t *testing.T) {
			p2 := *plans[0]
			p2.Steps = append([]plan.Step(nil), plans[0].Steps...)
			for i := range p2.Steps {
				p2.Steps[i].Shared = append([]plan.SharedSrc(nil), plans[0].Steps[i].Shared...)
			}
			p2.Rotations = append([]int(nil), plans[0].Rotations...)
			mutate(&p2)
			b2 := *base
			b2.Plan = &p2
			data, err := b2.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := wire.DecodeBundle(data); !errors.Is(err, wire.ErrInvalid) {
				t.Fatalf("corrupted shared list decoded: err = %v, want ErrInvalid", err)
			}
		})
	}
	corrupt("shared-src-out-of-range", func(p *plan.ExecutionPlan) {
		p.Steps[firstShared].Shared[0].Src = p.NumCtInputs + p.NumRegs
		p.Steps[firstShared].A = p.Steps[firstShared].Shared[0].Src
	})
	corrupt("shared-dst-out-of-range", func(p *plan.ExecutionPlan) {
		p.Steps[firstShared].Shared[1].Dst = p.NumRegs
	})
	corrupt("shared-slot-out-of-range", func(p *plan.ExecutionPlan) {
		// Past every operand code: the decoder's hard bound, hit before
		// slot-density validation can run.
		p.Steps[firstShared].Shared[1].Slot = p.NumCtInputs + p.NumRegs + 7
	})
	corrupt("shared-duplicate-src", func(p *plan.ExecutionPlan) {
		p.Steps[firstShared].Shared[1].Src = p.Steps[firstShared].Shared[0].Src
	})
	corrupt("shared-duplicate-dst", func(p *plan.ExecutionPlan) {
		p.Steps[firstShared].Shared[1].Dst = p.Steps[firstShared].Shared[0].Dst
	})
	corrupt("shared-head-mismatch", func(p *plan.ExecutionPlan) {
		p.Steps[firstShared].Dst = p.Steps[firstShared].Shared[1].Dst
	})
	corrupt("shared-rot-undeclared", func(p *plan.ExecutionPlan) {
		p.Steps[firstShared].Rot = 777
	})
	corrupt("shared-on-plain-step", func(p *plan.ExecutionPlan) {
		for i := range p.Steps {
			if p.Steps[i].Op != plan.OpSharedRot {
				p.Steps[i].Shared = []plan.SharedSrc{{Src: 0, Dst: 0, Slot: 0, Fresh: true}}
				return
			}
		}
	})
	corrupt("shared-replay-before-fill", func(p *plan.ExecutionPlan) {
		p.Steps[firstShared].Shared[0].Fresh = false
	})
	corrupt("shared-replay-wrong-slot", func(p *plan.ExecutionPlan) {
		st := &p.Steps[lastShared]
		st.Shared[0].Slot, st.Shared[1].Slot = st.Shared[1].Slot, st.Shared[0].Slot
	})
}

// TestSharedDecodeNeverPanics sweeps random corruptions — truncation,
// raw bit flips, and checksum-repaired bit flips that reach semantic
// validation — through a v6 bundle carrying shared member lists; any
// outcome but a panic is acceptable.
func TestSharedDecodeNeverPanics(t *testing.T) {
	l := sharedProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 23, l)
	if err != nil {
		t.Fatal(err)
	}
	b, err := serve.Export(ctx, "compat-test", plans[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 300; trial++ {
		d := append([]byte(nil), data...)
		switch trial % 3 {
		case 0:
			d = d[:rng.Intn(len(d)+1)]
		case 1:
			d[rng.Intn(len(d))] ^= byte(1 << rng.Intn(8))
		case 2:
			if len(d) > sha256.Size+20 {
				d[14+rng.Intn(len(d)-14-sha256.Size)] ^= byte(1 << rng.Intn(8))
				resign(d)
			}
		}
		wire.DecodeBundle(d)
	}
}
