package wire_test

import (
	"crypto/sha256"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"porcupine/internal/backend"
	"porcupine/internal/quill"
	"porcupine/internal/serve"
	"porcupine/internal/wire"
)

// muxableProgram is a small-vector stencil (VecLen 32, reach ±2):
// stride 64, 8 lanes on PN2048's 1024-slot row.
func muxableProgram() *quill.Lowered {
	return &quill.Lowered{
		VecLen: 32, NumCtInputs: 1, NumPtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 2},
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: -2},
			{Op: quill.OpAddCtCt, Dst: 3, A: 1, B: 2},
			{Op: quill.OpMulCtPt, Dst: 4, A: 3, P: quill.PtRef{Input: -1, Const: []int64{3}}},
			{Op: quill.OpAddCtPt, Dst: 5, A: 4, P: quill.PtRef{Input: 0}},
		},
		Output: 5,
	}
}

// exportTestRegistry builds a two-kernel registry — one mux-eligible
// stencil, one full-width kernel — with embedded samples for both.
func exportTestRegistry(t *testing.T) (*backend.Context, *wire.Registry, []byte) {
	t.Helper()
	programs := []*quill.Lowered{muxableProgram(), testProgram()}
	ctx, plans, err := backend.NewTestMuxServingContext("PN2048", 29, 0, programs...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	samples := make([]*wire.Request, len(plans))
	for i, l := range programs {
		mk := func() quill.Vec {
			v := make(quill.Vec, l.VecLen)
			for j := range v {
				v[j] = rng.Uint64() % 64
			}
			return v
		}
		s := &wire.Request{}
		for k := 0; k < l.NumCtInputs; k++ {
			ct, err := ctx.EncryptVec(mk())
			if err != nil {
				t.Fatal(err)
			}
			s.CtIn = append(s.CtIn, ct)
		}
		for k := 0; k < l.NumPtInputs; k++ {
			s.PtIn = append(s.PtIn, mk())
		}
		samples[i] = s
	}
	reg, err := serve.ExportRegistry(ctx, []string{"stencil", "wide"}, plans, samples)
	if err != nil {
		t.Fatal(err)
	}
	data, err := reg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return ctx, reg, data
}

// TestRegistryRoundTrip checks the byte-level round trip: manifest
// order, mux geometry, samples and key material all survive, and the
// decoded registry loads into a working sealed catalog.
func TestRegistryRoundTrip(t *testing.T) {
	_, orig, data := exportTestRegistry(t)
	got, err := wire.DecodeRegistry(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Preset != orig.Preset || len(got.Entries) != len(orig.Entries) {
		t.Fatalf("preset %q / %d entries, want %q / %d", got.Preset, len(got.Entries), orig.Preset, len(orig.Entries))
	}
	for i := range orig.Entries {
		o, g := &orig.Entries[i], &got.Entries[i]
		if g.Name != o.Name || g.MuxStride != o.MuxStride || g.MuxLanes != o.MuxLanes {
			t.Errorf("entry %d: (%q, %d, %d), want (%q, %d, %d)",
				i, g.Name, g.MuxStride, g.MuxLanes, o.Name, o.MuxStride, o.MuxLanes)
		}
		if g.Sample == nil || g.Expected == nil {
			t.Errorf("entry %q lost its self-test sample", o.Name)
		}
	}
	if s := got.Entry("stencil"); s == nil || s.MuxLanes < 2 {
		t.Fatal("stencil entry lost its mux geometry")
	}
	if w := got.Entry("wide"); w == nil || w.MuxLanes != 0 || w.MuxStride != 0 {
		t.Fatal("full-width entry gained a mux geometry")
	}

	cat, err := serve.LoadRegistry(got, serve.Config{Sessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	for _, name := range got.Kernels() {
		ok, err := cat.SelfTest(name)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("kernel %q not bit-identical after round trip", name)
		}
	}
}

func TestRegistryFileRoundTrip(t *testing.T) {
	_, orig, _ := exportTestRegistry(t)
	path := filepath.Join(t.TempDir(), "suite.pregistry")
	if err := orig.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := wire.ReadRegistryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(orig.Entries) {
		t.Fatal("file round trip changed the registry")
	}
}

// TestRegistryRejectsCorruption is the registry corruption matrix:
// envelope-level damage plus the manifest-specific fields — version
// downgrade (registries are v5-only), names, mux geometry (re-derived
// legality, not trust), and sample shape.
func TestRegistryRejectsCorruption(t *testing.T) {
	ctx, reg, data := exportTestRegistry(t)

	check := func(t *testing.T, mutate func([]byte) []byte, want error) {
		t.Helper()
		d := mutate(append([]byte(nil), data...))
		_, err := wire.DecodeRegistry(d)
		if err == nil {
			t.Fatal("corrupted registry decoded successfully")
		}
		if !errors.Is(err, want) {
			t.Fatalf("got %v, want %v", err, want)
		}
	}
	// reencode round-trips the registry through a field mutation: the
	// encoder writes whatever the struct holds, so decode-side
	// validation is what must refuse it.
	reencode := func(t *testing.T, mutate func(r *wire.Registry), want error) {
		t.Helper()
		cp := *reg
		cp.Entries = append([]wire.RegistryEntry(nil), reg.Entries...)
		mutate(&cp)
		d, err := cp.Encode()
		if err != nil {
			t.Fatalf("mutated registry failed to encode: %v", err)
		}
		if _, err := wire.DecodeRegistry(d); err == nil {
			t.Fatal("illegal manifest decoded successfully")
		} else if !errors.Is(err, want) {
			t.Fatalf("got %v, want %v", err, want)
		}
	}

	t.Run("truncated", func(t *testing.T) {
		check(t, func(d []byte) []byte { return d[:len(d)/3] }, wire.ErrTruncated)
	})
	t.Run("bad-magic", func(t *testing.T) {
		check(t, func(d []byte) []byte { d[0] = 'X'; return d }, wire.ErrMagic)
	})
	t.Run("flipped-payload-byte", func(t *testing.T) {
		check(t, func(d []byte) []byte { d[len(d)/2] ^= 0x40; return d }, wire.ErrChecksum)
	})
	t.Run("wrong-tag", func(t *testing.T) {
		// A bundle envelope handed to the registry decoder.
		b, err := serve.Export(ctx, "k", reg.Entries[0].Plan, nil)
		if err != nil {
			t.Fatal(err)
		}
		bd, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wire.DecodeRegistry(bd); !errors.Is(err, wire.ErrTag) {
			t.Fatalf("got %v, want ErrTag", err)
		}
	})
	t.Run("version-downgrade", func(t *testing.T) {
		// Registries are new in v5: an artifact stamped v4 is a forgery
		// or a corrupted byte, never a legitimate old file.
		check(t, func(d []byte) []byte { d[4] = 4; resign(d); return d }, wire.ErrVersion)
	})
	t.Run("wrong-fingerprint", func(t *testing.T) {
		check(t, func(d []byte) []byte { d[14] ^= 0xFF; resign(d); return d }, wire.ErrFingerprint)
	})
	t.Run("trailing-junk", func(t *testing.T) {
		check(t, func(d []byte) []byte { return append(d, 0xAB) }, wire.ErrInvalid)
	})

	t.Run("duplicate-names", func(t *testing.T) {
		reencode(t, func(r *wire.Registry) { r.Entries[1].Name = r.Entries[0].Name }, wire.ErrInvalid)
	})
	t.Run("mux-stride-not-pow2", func(t *testing.T) {
		reencode(t, func(r *wire.Registry) { r.Entries[0].MuxStride = 96 }, wire.ErrInvalid)
	})
	t.Run("mux-stride-below-reach-bound", func(t *testing.T) {
		// Stride 32 < VecLen 32 + reach 2: lanes would interfere.
		reencode(t, func(r *wire.Registry) { r.Entries[0].MuxStride = 32 }, wire.ErrInvalid)
	})
	t.Run("mux-lanes-exceed-row", func(t *testing.T) {
		reencode(t, func(r *wire.Registry) { r.Entries[0].MuxLanes = 32 }, wire.ErrInvalid)
	})
	t.Run("mux-half-set", func(t *testing.T) {
		reencode(t, func(r *wire.Registry) { r.Entries[0].MuxLanes = 0 }, wire.ErrInvalid)
	})
	t.Run("mux-on-full-width", func(t *testing.T) {
		reencode(t, func(r *wire.Registry) {
			r.Entries[1].MuxStride, r.Entries[1].MuxLanes = 512, 2
		}, wire.ErrInvalid)
	})
	t.Run("sample-shape-mismatch", func(t *testing.T) {
		reencode(t, func(r *wire.Registry) {
			s := *r.Entries[1].Sample
			s.CtIn = s.CtIn[:1]
			r.Entries[1].Sample = &s
		}, wire.ErrInvalid)
	})
}

// TestRegistryEncodeRefusals: encoder-side sanity that never reaches
// the wire.
func TestRegistryEncodeRefusals(t *testing.T) {
	_, reg, _ := exportTestRegistry(t)
	empty := *reg
	empty.Entries = nil
	if _, err := empty.Encode(); err == nil {
		t.Error("empty manifest encoded")
	}
	unnamed := *reg
	unnamed.Entries = append([]wire.RegistryEntry(nil), reg.Entries...)
	unnamed.Entries[0].Name = ""
	if _, err := unnamed.Encode(); err == nil {
		t.Error("unnamed entry encoded")
	}
	half := *reg
	half.Entries = append([]wire.RegistryEntry(nil), reg.Entries...)
	half.Entries[0].Expected = nil
	if _, err := half.Encode(); err == nil {
		t.Error("sample without expected output encoded")
	}
}

// TestRegistryDecodeNeverPanics sweeps random corruptions through the
// registry decoder; any outcome but a panic is acceptable.
func TestRegistryDecodeNeverPanics(t *testing.T) {
	_, _, data := exportTestRegistry(t)
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		d := append([]byte(nil), data...)
		switch trial % 3 {
		case 0:
			d = d[:rng.Intn(len(d)+1)]
		case 1:
			d[rng.Intn(len(d))] ^= byte(1 << rng.Intn(8))
		case 2:
			if len(d) > sha256.Size+20 {
				d[14+rng.Intn(len(d)-14-sha256.Size)] ^= byte(1 << rng.Intn(8))
				resign(d)
			}
		}
		wire.DecodeRegistry(d)
	}
}
