package wire

// EncodeVersion exposes version-explicit bundle encoding to the
// external test package, which uses it to fabricate byte-exact
// artifacts of earlier format versions and prove this build still
// loads them.
var EncodeVersion = (*Bundle).encode

// EncodeRegistryVersion is the registry-envelope sibling of
// EncodeVersion: byte-exact artifacts of earlier registry formats
// (v5, the version that introduced registries) for the
// backward-compatibility tests.
var EncodeRegistryVersion = (*Registry).encode
