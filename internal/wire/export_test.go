package wire

// EncodeVersion exposes version-explicit bundle encoding to the
// external test package, which uses it to fabricate byte-exact
// artifacts of earlier format versions and prove this build still
// loads them.
var EncodeVersion = (*Bundle).encode
