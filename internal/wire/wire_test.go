package wire_test

import (
	"crypto/sha256"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"porcupine/internal/backend"
	"porcupine/internal/quill"
	"porcupine/internal/serve"
	"porcupine/internal/wire"
)

// testProgram exercises every plan feature that crosses the wire:
// rotation (Galois key), ct-ct multiply + relinearization (relin key),
// a plaintext input, and a pre-encoded constant.
func testProgram() *quill.Lowered {
	return &quill.Lowered{
		VecLen: 1024, NumCtInputs: 2, NumPtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 3},
			{Op: quill.OpAddCtCt, Dst: 3, A: 2, B: 1},
			{Op: quill.OpMulCtCt, Dst: 4, A: 3, B: 0},
			{Op: quill.OpRelin, Dst: 5, A: 4},
			{Op: quill.OpMulCtPt, Dst: 6, A: 5, P: quill.PtRef{Input: 0}},
			{Op: quill.OpAddCtPt, Dst: 7, A: 6, P: quill.PtRef{Input: -1, Const: []int64{5}}},
			{Op: quill.OpSubCtCt, Dst: 8, A: 7, B: 1},
		},
		Output: 8,
	}
}

// exportTestBundle builds a complete bundle (with self-test sample)
// from a deterministic PN2048 context.
func exportTestBundle(t *testing.T) (*backend.Context, *wire.Bundle, []byte) {
	t.Helper()
	l := testProgram()
	ctx, plans, err := backend.NewTestServingContext("PN2048", 11, l)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	mk := func() quill.Vec {
		v := make(quill.Vec, l.VecLen)
		for j := range v {
			v[j] = rng.Uint64() % 64
		}
		return v
	}
	sample := &wire.Request{PtIn: []quill.Vec{mk()}}
	for i := 0; i < l.NumCtInputs; i++ {
		ct, err := ctx.EncryptVec(mk())
		if err != nil {
			t.Fatal(err)
		}
		sample.CtIn = append(sample.CtIn, ct)
	}
	b, err := serve.Export(ctx, "wire-test", plans[0], sample)
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return ctx, b, data
}

func TestBundleRoundTrip(t *testing.T) {
	ctx, orig, data := exportTestBundle(t)
	got, err := wire.DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Preset != orig.Preset {
		t.Errorf("identity: got %q/%q, want %q/%q", got.Name, got.Preset, orig.Name, orig.Preset)
	}
	if got.Params.Fingerprint() != ctx.Params.Fingerprint() {
		t.Error("decoded parameters have a different fingerprint")
	}
	p, q := orig.Plan, got.Plan
	if len(q.Steps) != len(p.Steps) || q.NumRegs != p.NumRegs || q.Out != p.Out || q.VecLen != p.VecLen {
		t.Fatalf("plan shape changed: %d steps / %d regs, want %d / %d", len(q.Steps), q.NumRegs, len(p.Steps), p.NumRegs)
	}
	for i := range p.Steps {
		if !reflect.DeepEqual(p.Steps[i], q.Steps[i]) {
			t.Fatalf("step %d changed across the wire: %+v != %+v", i, p.Steps[i], q.Steps[i])
		}
	}
	if q.NumDecomps != p.NumDecomps {
		t.Fatalf("NumDecomps = %d across the wire, want %d", q.NumDecomps, p.NumDecomps)
	}

	// The decoded artifact must execute bit-identically in a sealed
	// context (no secret key) fed only from the bundle.
	sctx, sched, err := serve.Load(got, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	if sctx.CanDecrypt() {
		t.Error("sealed context claims to hold the secret key")
	}
	ok, err := serve.SelfTest(sched, got)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("loaded plan output is not bit-identical to the exporter's")
	}
}

func TestBundleFileRoundTrip(t *testing.T) {
	_, orig, _ := exportTestBundle(t)
	path := filepath.Join(t.TempDir(), "kernel.pplan")
	if err := orig.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := wire.ReadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || len(got.Plan.Steps) != len(orig.Plan.Steps) {
		t.Error("file round trip changed the bundle")
	}
}

// resign recomputes the trailing checksum after a deliberate payload
// edit, so tests reach the validation layers behind it.
func resign(data []byte) {
	sum := sha256.Sum256(data[:len(data)-sha256.Size])
	copy(data[len(data)-sha256.Size:], sum[:])
}

func TestDecodeRejectsCorruption(t *testing.T) {
	_, _, data := exportTestBundle(t)

	check := func(t *testing.T, mutate func([]byte) []byte, want error) {
		t.Helper()
		d := mutate(append([]byte(nil), data...))
		_, err := wire.DecodeBundle(d)
		if err == nil {
			t.Fatal("corrupted bundle decoded successfully")
		}
		if !errors.Is(err, want) {
			t.Fatalf("got %v, want %v", err, want)
		}
	}

	t.Run("empty", func(t *testing.T) {
		check(t, func(d []byte) []byte { return nil }, wire.ErrTruncated)
	})
	t.Run("truncated-header", func(t *testing.T) {
		check(t, func(d []byte) []byte { return d[:7] }, wire.ErrTruncated)
	})
	t.Run("truncated-payload", func(t *testing.T) {
		check(t, func(d []byte) []byte { return d[:len(d)/2] }, wire.ErrTruncated)
	})
	t.Run("truncated-checksum", func(t *testing.T) {
		check(t, func(d []byte) []byte { return d[:len(d)-5] }, wire.ErrTruncated)
	})
	t.Run("bad-magic", func(t *testing.T) {
		check(t, func(d []byte) []byte { d[0] = 'X'; return d }, wire.ErrMagic)
	})
	t.Run("future-version", func(t *testing.T) {
		check(t, func(d []byte) []byte { d[4] = 250; resign(d); return d }, wire.ErrVersion)
	})
	t.Run("wrong-tag", func(t *testing.T) {
		check(t, func(d []byte) []byte { d[5]++; resign(d); return d }, wire.ErrTag)
	})
	t.Run("flipped-checksum-byte", func(t *testing.T) {
		check(t, func(d []byte) []byte { d[len(d)-1] ^= 0x01; return d }, wire.ErrChecksum)
	})
	t.Run("flipped-payload-byte", func(t *testing.T) {
		check(t, func(d []byte) []byte { d[len(d)/2] ^= 0x80; return d }, wire.ErrChecksum)
	})
	t.Run("wrong-fingerprint", func(t *testing.T) {
		// The fingerprint sits right after the 14-byte envelope
		// header; flip one of its bytes and resign so the checksum
		// passes — the semantic fingerprint check must still refuse.
		check(t, func(d []byte) []byte { d[14] ^= 0xFF; resign(d); return d }, wire.ErrFingerprint)
	})
	t.Run("trailing-junk", func(t *testing.T) {
		check(t, func(d []byte) []byte { return append(d, 0xAB) }, wire.ErrInvalid)
	})
}

// TestDecodeNeverPanics sweeps random corruptions — truncations, bit
// flips, resigned bit flips — through every decoder. Any outcome is
// acceptable except a panic.
func TestDecodeNeverPanics(t *testing.T) {
	ctx, b, data := exportTestBundle(t)
	reqData, err := wire.EncodeRequest(ctx.Params, b.Sample)
	if err != nil {
		t.Fatal(err)
	}
	respData, err := wire.EncodeResponse(ctx.Params, b.Expected)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	corpora := [][]byte{data, reqData, respData}
	for trial := 0; trial < 300; trial++ {
		src := corpora[trial%len(corpora)]
		d := append([]byte(nil), src...)
		switch trial % 3 {
		case 0: // truncate
			d = d[:rng.Intn(len(d)+1)]
		case 1: // flip a byte
			d[rng.Intn(len(d))] ^= byte(1 << rng.Intn(8))
		case 2: // flip a payload byte and resign (reaches deep validation)
			if len(d) > sha256.Size+20 {
				d[14+rng.Intn(len(d)-14-sha256.Size)] ^= byte(1 << rng.Intn(8))
				resign(d)
			}
		}
		wire.DecodeBundle(d)
		wire.DecodeRequest(ctx.Params, d)
		wire.DecodeResponse(ctx.Params, d)
	}
}

func TestRequestRoundTripAndFingerprintPinning(t *testing.T) {
	ctx, b, _ := exportTestBundle(t)
	data, err := wire.EncodeRequest(ctx.Params, b.Sample)
	if err != nil {
		t.Fatal(err)
	}
	req, err := wire.DecodeRequest(ctx.Params, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.CtIn) != len(b.Sample.CtIn) || len(req.PtIn) != len(b.Sample.PtIn) {
		t.Fatalf("request shape changed: %d ct / %d pt", len(req.CtIn), len(req.PtIn))
	}
	for i := range req.CtIn {
		if !ctx.Params.CiphertextEqual(req.CtIn[i], b.Sample.CtIn[i]) {
			t.Fatalf("ciphertext input %d changed across the wire", i)
		}
	}

	// A request pinned to one parameter set must be refused by another.
	other, err := backend.NewTestContext("PN4096", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.DecodeRequest(other.Params, data); !errors.Is(err, wire.ErrFingerprint) {
		t.Fatalf("foreign-parameter request: got %v, want ErrFingerprint", err)
	}
}
