package synth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"porcupine/internal/kernels"
	"porcupine/internal/quill"
)

// ErrUnsat is returned when no program within the sketch implements
// the specification (the sketch is too restrictive, Algorithm 1 line
// 12).
var ErrUnsat = errors.New("synth: sketch contains no program implementing the specification")

// ErrTimeout is returned when the time budget expires before an
// initial solution is found.
var ErrTimeout = errors.New("synth: timed out before finding an initial solution")

// Options configures a synthesis run.
type Options struct {
	// CostModel used for the §5.2 objective. Defaults to
	// quill.DefaultCostModel.
	CostModel *quill.CostModel
	// Timeout bounds the whole run (initial synthesis + optimization).
	// On expiry the best solution so far is returned with
	// Result.Optimal == false, mirroring the paper's 20-minute policy.
	// Zero means no limit.
	Timeout time.Duration
	// Seed makes runs reproducible.
	Seed int64
	// InitialExamples is the number of random CEGIS examples to start
	// with (default 2; the paper starts with 1 — a second example
	// sharpens observational-equivalence pruning at negligible cost).
	InitialExamples int
	// SkipOptimize stops after the initial (component-minimal)
	// solution, the paper's early-termination option (§7.4).
	SkipOptimize bool
	// ExplicitRotation switches to the §7.4 ablation sketch style:
	// rotations are sketch components (separate instructions counted
	// in L) instead of operand holes.
	ExplicitRotation bool
	// MaxVisited caps the deduplication table size (entries per slot
	// level); 0 means the default of 4M. When full, search continues
	// without recording (correct, just slower).
	MaxVisited int
	// Parallelism is the number of work-stealing search workers
	// (default: GOMAXPROCS). With more than one worker, which of
	// several equally valid solutions is found first is
	// scheduling-dependent; set 1 for fully deterministic runs.
	// Optimality proofs and costs are unaffected.
	Parallelism int
	// Cache, when set, memoizes verified synthesis results keyed by
	// the content of the query (spec + sketch + cost model + search
	// configuration + engine version). Hits are re-verified against
	// the spec before being returned. Note that a hit produced by a
	// run that timed out mid-optimization carries Optimal == false;
	// it is still returned, since re-running would pay the full
	// synthesis cost again; set RefreshNonOptimal to re-run instead.
	Cache *Cache
	// RefreshNonOptimal skips cache hits whose producing run timed out
	// before proving optimality (Optimal == false), re-synthesizing
	// with the current budget and re-recording the result. Use it to
	// retry a hard kernel with a larger -timeout; fully optimal hits
	// are still served from the cache.
	RefreshNonOptimal bool

	// growWorkers, when set (by Scheduler for jobs without an explicit
	// Parallelism), claims idle worker tokens from the shared batch
	// budget before each search call and returns them afterwards, so a
	// hard kernel widens its work-stealing search as sibling kernels
	// finish instead of leaving the budget idle.
	growWorkers func() (extra int, release func())
}

// Result reports a synthesis run in the shape of the paper's Table 3.
type Result struct {
	Program        *quill.Program // best verified program
	Lowered        *quill.Lowered
	InitialProgram *quill.Program // first verified solution (minimal L)
	L              int            // number of sketch components used
	Examples       int            // CEGIS examples consumed
	InitialCost    float64
	FinalCost      float64
	InitialTime    time.Duration
	TotalTime      time.Duration
	Optimal        bool  // search space exhausted below FinalCost
	Nodes          int64 // DFS nodes explored (diagnostic)
	Cached         bool  // served from the synthesis cache
}

// value is one SSA value during search: its evaluation on every CEGIS
// example (flattened), metadata for pruning, and provenance.
type value struct {
	data  []uint64
	hash  uint64
	depth int // multiplicative depth
	uses  int
	rotOf int // explicit-rotation mode: source value id, else -1
	rot   int // explicit-rotation mode: rotation amount
}

type rotPair struct{ id, rot int }

// engine carries the state of one Synthesize call.
type engine struct {
	spec *kernels.Spec
	sk   *Sketch
	opts Options
	cm   *quill.CostModel
	rng  *rand.Rand

	examples []*kernels.Example

	// Flattened per-example data, rebuilt whenever an example is added.
	inputData [][]uint64 // per ct input
	ptData    [][]uint64 // per component (ct-pt components only)
	flatLen   int

	rotations []int // sorted allowed nonzero rotations

	deadline time.Time
	hasDL    bool
	nodes    int64

	minCompLat float64
	rotLat     float64
}

func (e *engine) timedOut() bool {
	return e.hasDL && time.Now().After(e.deadline)
}

// Synthesize runs the full CEGIS + optimization pipeline of Algorithm
// 1 for the given kernel specification and sketch.
func Synthesize(spec *kernels.Spec, sk *Sketch, opts Options) (*Result, error) {
	if err := sk.Validate(spec); err != nil {
		return nil, err
	}
	if opts.CostModel == nil {
		opts.CostModel = quill.DefaultCostModel()
	}
	if opts.InitialExamples <= 0 {
		opts.InitialExamples = 2
	}
	if opts.MaxVisited <= 0 {
		opts.MaxVisited = 4 << 20
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	var key string
	if opts.Cache != nil {
		key = cacheKey(spec, sk, &opts)
		if res := opts.Cache.lookup(spec, key); res != nil {
			if !opts.RefreshNonOptimal || res.Optimal || opts.SkipOptimize {
				return res, nil
			}
		}
	}
	e := &engine{
		spec: spec,
		sk:   sk,
		opts: opts,
		cm:   opts.CostModel,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	e.rotations = append([]int(nil), sk.Rotations...)
	sort.Ints(e.rotations)
	if opts.Timeout > 0 {
		e.deadline = time.Now().Add(opts.Timeout)
		e.hasDL = true
	}
	e.minCompLat = math.Inf(1)
	for _, c := range sk.Components {
		lat := e.cm.InstrLatency(c.Op)
		if c.Op == quill.OpMulCtCt {
			lat += e.cm.InstrLatency(quill.OpRelin)
		}
		if lat < e.minCompLat {
			e.minCompLat = lat
		}
	}
	e.rotLat = e.cm.InstrLatency(quill.OpRotCt)

	for i := 0; i < opts.InitialExamples; i++ {
		e.examples = append(e.examples, spec.RandomExample(e.rng))
	}
	e.rebuildData()

	start := time.Now()

	// Phase 1 (§5.1): find the component-minimal initial solution.
	var initial *quill.Program
	var initialL int
searchL:
	for L := sk.MinL; L <= sk.MaxL; L++ {
		for {
			if e.timedOut() {
				return nil, ErrTimeout
			}
			sol, complete := e.search(L, math.Inf(1))
			if sol == nil {
				if !complete {
					return nil, ErrTimeout
				}
				continue searchL // unsat at this L: grow the sketch
			}
			ok, cex, err := e.verify(sol)
			if err != nil {
				return nil, err
			}
			if ok {
				initial = sol
				initialL = L
				break searchL
			}
			e.addExample(cex)
		}
	}
	if initial == nil {
		return nil, ErrUnsat
	}

	initialCost, err := e.cm.CostProgram(initial)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Program:        initial,
		InitialProgram: initial,
		L:              initialL,
		InitialCost:    initialCost,
		FinalCost:      initialCost,
		InitialTime:    time.Since(start),
	}

	// Phase 2 (§5.2): minimize cost within sketch_L by re-issuing the
	// query with a decreasing cost bound until unsat (optimal) or
	// timeout.
	if !opts.SkipOptimize {
		best := initial
		bestCost := initialCost
		for {
			if e.timedOut() {
				break
			}
			sol, complete := e.search(initialL, bestCost)
			if sol == nil {
				if complete {
					res.Optimal = true
				}
				break
			}
			ok, cex, err := e.verify(sol)
			if err != nil {
				return nil, err
			}
			if !ok {
				e.addExample(cex)
				continue
			}
			c, err := e.cm.CostProgram(sol)
			if err != nil {
				return nil, err
			}
			if c < bestCost {
				best, bestCost = sol, c
			}
		}
		res.Program = best
		res.FinalCost = bestCost
	} else {
		res.Optimal = false
	}

	res.Examples = len(e.examples)
	res.TotalTime = time.Since(start)
	res.Nodes = e.nodes
	lowered, err := quill.Lower(res.Program, quill.DefaultLowerOptions())
	if err != nil {
		return nil, err
	}
	res.Lowered = lowered
	if opts.Cache != nil {
		// Best-effort: the cache is an optimization, and the verified
		// result in hand must not be discarded because the cache
		// directory is full or read-only.
		_ = opts.Cache.store(spec.Name, key, res)
	}
	return res, nil
}

// addExample extends the CEGIS example set with a counterexample
// assignment.
func (e *engine) addExample(assign []uint64) {
	e.examples = append(e.examples, e.spec.NewExample(assign))
	e.rebuildData()
}

// rebuildData refreshes the flattened input and plaintext-operand
// vectors after the example set changes.
func (e *engine) rebuildData() {
	n := e.spec.VecLen
	e.flatLen = n * len(e.examples)
	e.inputData = make([][]uint64, len(e.spec.Ct))
	for i := range e.spec.Ct {
		flat := make([]uint64, 0, e.flatLen)
		for _, ex := range e.examples {
			flat = append(flat, ex.CtIn[i]...)
		}
		e.inputData[i] = flat
	}
	e.ptData = make([][]uint64, len(e.sk.Components))
	for ci, comp := range e.sk.Components {
		if !comp.Op.IsCtPt() {
			continue
		}
		flat := make([]uint64, 0, e.flatLen)
		for _, ex := range e.examples {
			if comp.P.Input >= 0 {
				flat = append(flat, ex.PtIn[comp.P.Input]...)
			} else {
				flat = append(flat, quill.ConcreteSem{}.FromConst(comp.P.Const, n)...)
			}
		}
		e.ptData[ci] = flat
	}
}

// verify checks a candidate for all inputs by exact symbolic
// comparison; on failure it returns a distinguishing input assignment.
func (e *engine) verify(p *quill.Program) (bool, []uint64, error) {
	ctIn := make([]quill.SymVec, len(e.spec.Ct))
	for i := range ctIn {
		ctIn[i] = e.spec.SymCtInput(i)
	}
	ptIn := make([]quill.SymVec, len(e.spec.Pt))
	for i := range ptIn {
		ptIn[i] = e.spec.SymPtInput(i)
	}
	out, err := quill.Run(p, quill.SymbolicSem{}, ctIn, ptIn)
	if err != nil {
		return false, nil, err
	}
	ok, diff := e.spec.VerifySymbolic(out)
	if ok {
		return true, nil, nil
	}
	w := diff.FindWitness(e.spec.NumVars, e.rng, 1000)
	if w == nil {
		return false, nil, fmt.Errorf("synth: nonzero difference polynomial has no witness (degree %d)", diff.Degree())
	}
	return false, w, nil
}
