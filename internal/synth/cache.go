// Persistent, content-addressed synthesis cache. Synthesis is the
// expensive phase of the pipeline (minutes per kernel in the paper's
// Table 3), and its result is a pure function of the specification,
// the sketch, the cost model, the search configuration, and the engine
// version — so it is safe to memoize across processes. Entries are
// stored one file per key, written atomically (temp file + rename), so
// any number of concurrent writers and readers can share a cache
// directory without locks. Hits are re-verified symbolically against
// the specification before being returned, so a corrupted or stale
// entry can never produce a wrong program — it is simply re-synthesized.
package synth

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"porcupine/internal/kernels"
	"porcupine/internal/quill"
)

// EngineVersion identifies the synthesis-engine generation in cache
// keys. Bump it whenever a change to the search (pruning, ordering,
// cost handling) can alter which program a given query returns.
const EngineVersion = "2"

// Limits bounds a cache. Zero fields mean unlimited. When a bound is
// exceeded the least-recently-used entries are evicted (memory and,
// for disk-backed caches, the backing files).
type Limits struct {
	// MaxEntries caps the number of stored entries (synthesis results
	// and composed programs combined).
	MaxEntries int
	// MaxBytes caps the total serialized size of stored entries.
	MaxBytes int64
}

// Cache memoizes verified synthesis results, in memory and optionally
// on disk. The zero value is unusable; use NewMemCache or OpenCache.
// All methods are safe for concurrent use.
type Cache struct {
	dir string // "" = memory-only

	mu     sync.RWMutex
	mem    map[string]*cacheEntry
	lowmem map[string]*loweredEntry

	// LRU accounting (enabled by SetLimits / OpenCacheWithLimits).
	// Guarded by lruMu, acquired after mu is released — never while
	// holding it.
	lruMu    sync.Mutex
	lim      Limits
	lru      *list.List               // front = most recent; values are *lruNode
	lruIdx   map[string]*list.Element // file name -> element
	lruBytes int64
}

// lruNode tracks one stored entry for eviction: its file name (the
// key plus kind suffix) and serialized size.
type lruNode struct {
	name string
	size int64
}

// cacheEntry is the stored value: the verified programs plus the
// Result metadata needed to reconstruct a Table-3 row.
type cacheEntry struct {
	Key            string         `json:"key"`
	Engine         string         `json:"engine"`
	Kernel         string         `json:"kernel"`
	Program        *quill.Program `json:"program"`
	InitialProgram *quill.Program `json:"initial_program"`
	L              int            `json:"l"`
	Examples       int            `json:"examples"`
	InitialCost    float64        `json:"initial_cost"`
	FinalCost      float64        `json:"final_cost"`
	Optimal        bool           `json:"optimal"`
	Nodes          int64          `json:"nodes"`
	InitialMicros  int64          `json:"initial_micros"`
	TotalMicros    int64          `json:"total_micros"`
}

// NewMemCache returns a process-local cache with no disk backing.
func NewMemCache() *Cache {
	return &Cache{mem: map[string]*cacheEntry{}, lowmem: map[string]*loweredEntry{}}
}

// OpenCache opens (creating if needed) a disk-backed cache directory.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return NewMemCache(), nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("synth: opening cache: %w", err)
	}
	return &Cache{dir: dir, mem: map[string]*cacheEntry{}, lowmem: map[string]*loweredEntry{}}, nil
}

// DefaultCacheDir returns the per-user default cache location.
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ".porcupine-cache"
	}
	return filepath.Join(base, "porcupine", "synth")
}

// Dir returns the backing directory ("" for memory-only caches).
func (c *Cache) Dir() string { return c.dir }

// OpenCacheWithLimits is OpenCache with an eviction bound applied.
func OpenCacheWithLimits(dir string, lim Limits) (*Cache, error) {
	c, err := OpenCache(dir)
	if err != nil {
		return nil, err
	}
	c.SetLimits(lim)
	return c, nil
}

// SetLimits enables LRU bounding. For disk-backed caches the backing
// directory is scanned once (existing entries ordered oldest-first by
// modification time) and over-limit entries are evicted immediately;
// afterwards every store and hit updates the recency order and stores
// evict as needed. Zero-valued limits disable nothing once enabled —
// they mean "no bound on this axis".
func (c *Cache) SetLimits(lim Limits) {
	// Snapshot entries already resident in memory (mem-only caches, or
	// limits enabled after use) before taking lruMu — mu is never
	// acquired while holding lruMu.
	type resident struct {
		name string
		size int64
	}
	var res []resident
	c.mu.RLock()
	for key, ent := range c.mem {
		res = append(res, resident{key + ".json", entrySize(ent)})
	}
	for key, ent := range c.lowmem {
		res = append(res, resident{key + loweredSuffix, entrySize(ent)})
	}
	c.mu.RUnlock()

	c.lruMu.Lock()
	c.lim = lim
	if c.lru == nil {
		c.lru = list.New()
		c.lruIdx = map[string]*list.Element{}
		c.scanDiskLocked()
		for _, r := range res {
			if _, ok := c.lruIdx[r.name]; ok {
				continue // already indexed from disk
			}
			c.lruIdx[r.name] = c.lru.PushFront(&lruNode{name: r.name, size: r.size})
			c.lruBytes += r.size
		}
	}
	victims := c.collectVictimsLocked()
	c.lruMu.Unlock()
	c.evict(victims)
}

// Limits returns the configured bounds (zero value when unbounded).
func (c *Cache) Limits() Limits {
	c.lruMu.Lock()
	defer c.lruMu.Unlock()
	return c.lim
}

// scanDiskLocked seeds the LRU index from the backing directory,
// oldest entries least recent. Called with lruMu held.
func (c *Cache) scanDiskLocked() {
	if c.dir == "" {
		return
	}
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type fileInfo struct {
		name string
		size int64
		mod  time.Time
	}
	var fis []fileInfo
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".tmp-") || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		fis = append(fis, fileInfo{name, info.Size(), info.ModTime()})
	}
	sort.Slice(fis, func(i, j int) bool { return fis[i].mod.Before(fis[j].mod) })
	for _, f := range fis {
		c.lruIdx[f.name] = c.lru.PushFront(&lruNode{name: f.name, size: f.size})
		c.lruBytes += f.size
	}
}

// touch records a use of the named entry (size < 0 keeps the known
// size) and evicts least-recently-used entries while over the limits.
func (c *Cache) touch(name string, size int64) {
	c.lruMu.Lock()
	if c.lru == nil {
		c.lruMu.Unlock()
		return
	}
	if el, ok := c.lruIdx[name]; ok {
		n := el.Value.(*lruNode)
		if size >= 0 {
			c.lruBytes += size - n.size
			n.size = size
		}
		c.lru.MoveToFront(el)
	} else {
		if size < 0 {
			size = 0
		}
		c.lruIdx[name] = c.lru.PushFront(&lruNode{name: name, size: size})
		c.lruBytes += size
	}
	victims := c.collectVictimsLocked()
	c.lruMu.Unlock()
	c.evict(victims)
}

// collectVictimsLocked pops least-recently-used entries until the
// cache is within its limits, returning their names. Called with
// lruMu held. The most recent entry is never evicted, so a cache with
// pathological limits still serves the entry it just stored.
func (c *Cache) collectVictimsLocked() []string {
	var out []string
	for c.lru.Len() > 1 &&
		((c.lim.MaxEntries > 0 && c.lru.Len() > c.lim.MaxEntries) ||
			(c.lim.MaxBytes > 0 && c.lruBytes > c.lim.MaxBytes)) {
		el := c.lru.Back()
		n := el.Value.(*lruNode)
		c.lru.Remove(el)
		delete(c.lruIdx, n.name)
		c.lruBytes -= n.size
		out = append(out, n.name)
	}
	return out
}

// evict removes the named entries from memory and disk.
func (c *Cache) evict(names []string) {
	if len(names) == 0 {
		return
	}
	c.mu.Lock()
	for _, name := range names {
		if key, ok := strings.CutSuffix(name, loweredSuffix); ok {
			delete(c.lowmem, key)
		} else if key, ok := strings.CutSuffix(name, ".json"); ok {
			delete(c.mem, key)
		}
	}
	c.mu.Unlock()
	if c.dir != "" {
		for _, name := range names {
			os.Remove(filepath.Join(c.dir, name))
		}
	}
}

// forget removes an entry from the LRU accounting (drop paths).
func (c *Cache) forget(name string) {
	c.lruMu.Lock()
	if el, ok := c.lruIdx[name]; ok {
		n := el.Value.(*lruNode)
		c.lru.Remove(el)
		delete(c.lruIdx, name)
		c.lruBytes -= n.size
	}
	c.lruMu.Unlock()
}

// limitsEnabled reports whether LRU accounting is active, so
// unbounded caches skip the size bookkeeping entirely.
func (c *Cache) limitsEnabled() bool {
	c.lruMu.Lock()
	defer c.lruMu.Unlock()
	return c.lru != nil
}

// entrySize returns the serialized size of an entry for byte
// accounting when no disk write produced one.
func entrySize(v any) int64 {
	raw, err := json.Marshal(v)
	if err != nil {
		return 0
	}
	return int64(len(raw))
}

// get returns the entry for key, consulting memory first, then disk.
func (c *Cache) get(key string) (*cacheEntry, bool) {
	c.mu.RLock()
	ent, ok := c.mem[key]
	c.mu.RUnlock()
	if ok {
		c.touch(key+".json", -1)
		return ent, true
	}
	if c.dir == "" {
		return nil, false
	}
	raw, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		return nil, false
	}
	ent = &cacheEntry{}
	if err := json.Unmarshal(raw, ent); err != nil || ent.Key != key || ent.Engine != EngineVersion {
		return nil, false
	}
	c.mu.Lock()
	c.mem[key] = ent
	c.mu.Unlock()
	c.touch(key+".json", int64(len(raw)))
	return ent, true
}

// put stores an entry in memory and, for disk-backed caches, durably
// on disk via an atomic rename, so concurrent writers of the same key
// each leave a complete, valid file.
func (c *Cache) put(ent *cacheEntry) error {
	c.mu.Lock()
	c.mem[ent.Key] = ent
	c.mu.Unlock()
	if c.dir == "" {
		if c.limitsEnabled() {
			c.touch(ent.Key+".json", entrySize(ent))
		}
		return nil
	}
	raw, err := json.MarshalIndent(ent, "", "  ")
	if err != nil {
		return err
	}
	if err := c.writeAtomic(ent.Key+".json", raw); err != nil {
		return err
	}
	c.touch(ent.Key+".json", int64(len(raw)))
	return nil
}

// writeAtomic durably writes a cache file via temp file + rename, so
// concurrent writers of the same name each leave a complete, valid
// file and readers never observe a partial write.
func (c *Cache) writeAtomic(name string, raw []byte) error {
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// drop removes a key (used when a stored entry fails re-verification).
func (c *Cache) drop(key string) {
	c.mu.Lock()
	delete(c.mem, key)
	c.mu.Unlock()
	if c.dir != "" {
		os.Remove(c.entryPath(key))
	}
	c.forget(key + ".json")
}

// Len returns the number of entries resident in memory.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.mem)
}

func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// loweredEntry stores a composed (multi-step) kernel: the lowered
// instruction stream in its canonical textual form plus an integrity
// checksum. Unlike synthesis entries, hits are not re-verified
// symbolically — the whole point of caching composition is skipping
// the expensive symbolic check of large composed programs — so the
// key embeds the already-verified segment programs and the engine
// version, and the checksum guards against on-disk corruption.
type loweredEntry struct {
	Key     string `json:"key"`
	Engine  string `json:"engine"`
	Kernel  string `json:"kernel"`
	Lowered string `json:"lowered"`
	Sum     string `json:"sum"`
}

const loweredSuffix = ".lowered.json"

// ComposeKey derives the content address of a multi-step composition:
// the target kernel's spec, the verified segment programs it is
// stitched from, and the engine version.
func ComposeKey(kernel string, spec *kernels.Spec, segments ...*quill.Program) string {
	h := sha256.New()
	fmt.Fprintf(h, "compose/v1\nengine=%s\nkernel=%s\nspec=%s\n", EngineVersion, kernel, spec.Fingerprint())
	for _, p := range segments {
		fmt.Fprintf(h, "segment=%s\n", p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// GetLowered returns the cached composed program for key, or nil.
func (c *Cache) GetLowered(key string) *quill.Lowered {
	c.mu.RLock()
	ent, ok := c.lowmem[key]
	c.mu.RUnlock()
	size := int64(-1)
	if !ok {
		if c.dir == "" {
			return nil
		}
		raw, err := os.ReadFile(filepath.Join(c.dir, key+loweredSuffix))
		if err != nil {
			return nil
		}
		ent = &loweredEntry{}
		if err := json.Unmarshal(raw, ent); err != nil || ent.Key != key || ent.Engine != EngineVersion {
			return nil
		}
		size = int64(len(raw))
	}
	if ent.Sum != textSum(ent.Lowered) {
		c.dropLowered(key)
		return nil
	}
	l, err := quill.ParseLowered(ent.Lowered)
	if err != nil || l.Validate() != nil {
		c.dropLowered(key)
		return nil
	}
	c.mu.Lock()
	c.lowmem[key] = ent
	c.mu.Unlock()
	c.touch(key+loweredSuffix, size)
	return l
}

// PutLowered stores a verified composed program under key.
func (c *Cache) PutLowered(key, kernel string, l *quill.Lowered) error {
	text := l.String()
	ent := &loweredEntry{Key: key, Engine: EngineVersion, Kernel: kernel, Lowered: text, Sum: textSum(text)}
	c.mu.Lock()
	c.lowmem[key] = ent
	c.mu.Unlock()
	if c.dir == "" {
		if c.limitsEnabled() {
			c.touch(key+loweredSuffix, entrySize(ent))
		}
		return nil
	}
	raw, err := json.MarshalIndent(ent, "", "  ")
	if err != nil {
		return err
	}
	if err := c.writeAtomic(key+loweredSuffix, raw); err != nil {
		return err
	}
	c.touch(key+loweredSuffix, int64(len(raw)))
	return nil
}

func (c *Cache) dropLowered(key string) {
	c.mu.Lock()
	delete(c.lowmem, key)
	c.mu.Unlock()
	if c.dir != "" {
		os.Remove(filepath.Join(c.dir, key+loweredSuffix))
	}
	c.forget(key + loweredSuffix)
}

func textSum(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// cacheKey derives the content address of one synthesis query: the
// semantic identity of the spec, the full sketch shape, the cost
// model, every option that can change the synthesized program, and the
// engine version. Timeout and Parallelism are deliberately excluded —
// they affect how long the search runs, not which query it answers; a
// hit may therefore carry Optimal == false if the producing run timed
// out mid-optimization.
func cacheKey(spec *kernels.Spec, sk *Sketch, opts *Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "synth/v1\nengine=%s\nspec=%s\ncost=%s\n",
		EngineVersion, spec.Fingerprint(), opts.CostModel.Fingerprint())
	for _, comp := range sk.Components {
		fmt.Fprintf(h, "comp=%v/%d/%d/%d/%v\n", comp.Op, comp.A, comp.B, comp.P.Input, comp.P.Const)
	}
	fmt.Fprintf(h, "rot=%v\nL=[%d,%d]\n", sk.Rotations, sk.MinL, sk.MaxL)
	fmt.Fprintf(h, "seed=%d\nexamples=%d\nexplicit=%v\nskipopt=%v\n",
		opts.Seed, opts.InitialExamples, opts.ExplicitRotation, opts.SkipOptimize)
	return hex.EncodeToString(h.Sum(nil))
}

// lookup returns a verified Result for the query, or nil on a miss.
// The cached program is re-checked symbolically against the spec and
// re-lowered; entries that fail are dropped and re-synthesized.
func (c *Cache) lookup(spec *kernels.Spec, key string) *Result {
	ent, ok := c.get(key)
	if !ok {
		return nil
	}
	res, err := ent.toResult(spec)
	if err != nil {
		c.drop(key)
		return nil
	}
	return res
}

// store saves a freshly synthesized result under key.
func (c *Cache) store(kernel, key string, res *Result) error {
	return c.put(&cacheEntry{
		Key:            key,
		Engine:         EngineVersion,
		Kernel:         kernel,
		Program:        res.Program,
		InitialProgram: res.InitialProgram,
		L:              res.L,
		Examples:       res.Examples,
		InitialCost:    res.InitialCost,
		FinalCost:      res.FinalCost,
		Optimal:        res.Optimal,
		Nodes:          res.Nodes,
		InitialMicros:  res.InitialTime.Microseconds(),
		TotalMicros:    res.TotalTime.Microseconds(),
	})
}

// toResult rebuilds a Result from a stored entry, verifying the
// program against the spec it is being requested for.
func (ent *cacheEntry) toResult(spec *kernels.Spec) (*Result, error) {
	if ent.Program == nil {
		return nil, fmt.Errorf("synth: cache entry has no program")
	}
	if err := ent.Program.Validate(); err != nil {
		return nil, err
	}
	ok, err := spec.CheckProgram(ent.Program)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("synth: cached program fails verification against spec")
	}
	lowered, err := quill.Lower(ent.Program, quill.DefaultLowerOptions())
	if err != nil {
		return nil, err
	}
	return &Result{
		Program:        ent.Program,
		Lowered:        lowered,
		InitialProgram: ent.InitialProgram,
		L:              ent.L,
		Examples:       ent.Examples,
		InitialCost:    ent.InitialCost,
		FinalCost:      ent.FinalCost,
		// The producing run's timings, so Table-3 reporting over a
		// warm cache still shows what synthesis cost.
		InitialTime: time.Duration(ent.InitialMicros) * time.Microsecond,
		TotalTime:   time.Duration(ent.TotalMicros) * time.Microsecond,
		Optimal:     ent.Optimal,
		Nodes:       ent.Nodes,
		Cached:      true,
	}, nil
}
