package synth

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"porcupine/internal/kernels"
	"porcupine/internal/quill"
)

func cacheTestOpts() Options {
	return Options{Timeout: 2 * time.Minute, Seed: 1, Parallelism: 1}
}

// TestCacheRoundTrip checks that a cold synthesis populates the disk
// cache and a warm lookup returns an equivalent, verified result —
// including across a fresh Cache handle, as a new process would see.
func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := cacheTestOpts()
	opts.Cache = cache

	cold, err := SynthesizeKernel("box-blur", opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first synthesis reported a cache hit")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want 1 cache file, got %v (err %v)", files, err)
	}

	// Same handle.
	warm, err := SynthesizeKernel("box-blur", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second synthesis missed the cache")
	}
	// Fresh handle over the same directory (cross-process warm start).
	cache2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = cache2
	warm2, err := SynthesizeKernel("box-blur", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm2.Cached {
		t.Fatal("fresh cache handle missed the on-disk entry")
	}
	for _, w := range []*Result{warm, warm2} {
		if w.L != cold.L || w.FinalCost != cold.FinalCost || w.Optimal != cold.Optimal {
			t.Errorf("cached result diverges: got L=%d cost=%g optimal=%v, want L=%d cost=%g optimal=%v",
				w.L, w.FinalCost, w.Optimal, cold.L, cold.FinalCost, cold.Optimal)
		}
		if w.Program.String() != cold.Program.String() {
			t.Error("cached program differs from synthesized program")
		}
	}
}

// TestCacheKeySensitivity checks that every input that can change the
// synthesized program changes the cache key.
func TestCacheKeySensitivity(t *testing.T) {
	spec := kernels.ByName("box-blur")
	sk, err := DefaultSketch("box-blur")
	if err != nil {
		t.Fatal(err)
	}
	base := cacheTestOpts()
	base.CostModel = nil
	// cacheKey requires a concrete cost model, as Synthesize installs.
	withCM := func(o Options) *Options {
		if o.CostModel == nil {
			o.CostModel = defaultCM()
		}
		return &o
	}
	key0 := cacheKey(spec, sk, withCM(base))

	seed := base
	seed.Seed = 2
	if cacheKey(spec, sk, withCM(seed)) == key0 {
		t.Error("seed change did not change the cache key")
	}
	skip := base
	skip.SkipOptimize = true
	if cacheKey(spec, sk, withCM(skip)) == key0 {
		t.Error("SkipOptimize change did not change the cache key")
	}
	cm := base
	cm.CostModel = defaultCM()
	cm.CostModel.Latency[quill.OpMulCtCt]++
	if cacheKey(spec, sk, &cm) == key0 {
		t.Error("cost-model change did not change the cache key")
	}
	sk2 := *sk
	sk2.MaxL++
	if cacheKey(spec, &sk2, withCM(base)) == key0 {
		t.Error("sketch change did not change the cache key")
	}
	if cacheKey(kernels.ByName("gx"), sk, withCM(base)) == key0 {
		t.Error("spec change did not change the cache key")
	}
	// Timeout and Parallelism answer the same query: same key.
	tmo := base
	tmo.Timeout = time.Hour
	tmo.Parallelism = 7
	if cacheKey(spec, sk, withCM(tmo)) != key0 {
		t.Error("timeout/parallelism changed the cache key; warm rebuilds would miss")
	}
}

// TestCacheRejectsCorruptEntry checks that a tampered entry fails
// re-verification, is dropped, and the kernel is re-synthesized.
func TestCacheRejectsCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := cacheTestOpts()
	opts.Cache = cache
	if _, err := SynthesizeKernel("box-blur", opts); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 1 {
		t.Fatalf("want 1 cache file, got %d", len(files))
	}

	// Tamper: point the cached program's output at an input, which
	// still validates structurally but computes the wrong function.
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var ent cacheEntry
	if err := json.Unmarshal(raw, &ent); err != nil {
		t.Fatal(err)
	}
	ent.Program.Output = 0
	tampered, err := json.Marshal(&ent)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	cache2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = cache2
	res, err := SynthesizeKernel("box-blur", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("corrupt cache entry was served")
	}
	if ok, err := kernels.ByName("box-blur").CheckProgram(res.Program); err != nil || !ok {
		t.Fatalf("re-synthesized program invalid: ok=%v err=%v", ok, err)
	}
}

// TestCacheRefreshNonOptimal checks the escape hatch for hits whose
// producing run timed out mid-optimization: by default the
// non-optimal entry is served, with RefreshNonOptimal the kernel is
// re-synthesized and the upgraded entry replaces it.
func TestCacheRefreshNonOptimal(t *testing.T) {
	cache := NewMemCache()
	opts := cacheTestOpts()
	opts.Cache = cache
	if _, err := SynthesizeKernel("box-blur", opts); err != nil {
		t.Fatal(err)
	}
	// Demote the stored entry to what a timed-out run would leave.
	cache.mu.Lock()
	for _, ent := range cache.mem {
		ent.Optimal = false
	}
	cache.mu.Unlock()

	res, err := SynthesizeKernel("box-blur", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached || res.Optimal {
		t.Fatalf("default lookup should serve the non-optimal hit (cached=%v optimal=%v)", res.Cached, res.Optimal)
	}

	opts.RefreshNonOptimal = true
	res, err = SynthesizeKernel("box-blur", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("RefreshNonOptimal served the stale non-optimal hit")
	}
	if !res.Optimal {
		t.Fatal("refresh did not prove optimality")
	}

	// The upgraded entry is now served even with refresh requested.
	res, err = SynthesizeKernel("box-blur", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached || !res.Optimal {
		t.Fatalf("upgraded entry not served (cached=%v optimal=%v)", res.Cached, res.Optimal)
	}
}

// TestCacheConcurrentWriters hammers one disk cache with concurrent
// Synthesize calls for several distinct queries — the scenario of a
// batch build racing many kernels into a shared cache. Run under
// -race in CI.
func TestCacheConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"box-blur", "dot-product", "linear-regression", "polynomial-regression"}
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(names)*rounds)
	for r := 0; r < rounds; r++ {
		for _, name := range names {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				opts := cacheTestOpts()
				opts.Cache = cache
				res, err := SynthesizeKernel(name, opts)
				if err != nil {
					errs <- err
					return
				}
				if ok, err := kernels.ByName(name).CheckProgram(res.Program); err != nil || !ok {
					errs <- err
				}
			}(name)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every query landed exactly one entry.
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != len(names) {
		t.Errorf("want %d cache files, got %d", len(names), len(files))
	}
	// No temp files leaked.
	tmps, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if len(tmps) != 0 {
		t.Errorf("leaked temp files: %v", tmps)
	}
}

func defaultCM() *quill.CostModel { return quill.DefaultCostModel() }
