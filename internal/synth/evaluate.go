package synth

import (
	"porcupine/internal/quill"
)

// This file holds the vectorized candidate-evaluation kernels of the
// search inner loop. Candidate values are evaluated on all CEGIS
// examples at once over flat []uint64 vectors; the arithmetic is
// specialized to the fixed plaintext modulus t = 65537 (a Fermat
// prime, 2^16 + 1), which turns the 128-bit multiply-and-divide of
// the generic path into a few adds and shifts: with x = x0 + 2^16·x1
// + 2^32·x2, x ≡ x0 − x1 + x2 (mod t).

const tMod = quill.Modulus

func init() {
	// The specialized reduction below is only valid for the Fermat
	// prime 2^16+1; fail loudly if the abstract machine ever changes.
	if quill.Modulus != 65537 {
		panic("synth: fast modular evaluation assumes plaintext modulus 65537")
	}
}

// addModT returns (a + b) mod t for a, b < t.
func addModT(a, b uint64) uint64 {
	s := a + b
	if s >= tMod {
		s -= tMod
	}
	return s
}

// subModT returns (a - b) mod t for a, b < t.
func subModT(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + tMod - b
}

// mulModT returns (a · b) mod t for a, b < t without division: the
// product is < 2^32·1, and 2^16 ≡ −1, 2^32 ≡ 1 (mod t).
func mulModT(a, b uint64) uint64 {
	x := a * b
	s := (x & 0xffff) + (x >> 32) + tMod - ((x >> 16) & 0xffff)
	if s >= tMod {
		s -= tMod
	}
	return s
}

// apply1 evaluates one slot of a Quill arithmetic op.
func apply1(op quill.Op, a, b uint64) uint64 {
	switch op {
	case quill.OpAddCtCt, quill.OpAddCtPt:
		return addModT(a, b)
	case quill.OpSubCtCt, quill.OpSubCtPt:
		return subModT(a, b)
	default: // multiplies
		return mulModT(a, b)
	}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// evalFused computes dst = a op b element-wise over the flattened
// example vectors and, in the same pass, the FNV-1a hash of the result
// and whether it is all-zero — fusing what used to be three traversals
// (applyOp, hashData, isZero) into one.
func evalFused(op quill.Op, a, b, dst []uint64) (hash uint64, zero bool) {
	var nz uint64
	h := uint64(fnvOffset)
	switch op {
	case quill.OpAddCtCt, quill.OpAddCtPt:
		for i, av := range a {
			v := av + b[i]
			if v >= tMod {
				v -= tMod
			}
			dst[i] = v
			nz |= v
			h = (h ^ v) * fnvPrime
		}
	case quill.OpSubCtCt, quill.OpSubCtPt:
		for i, av := range a {
			var v uint64
			if bv := b[i]; av >= bv {
				v = av - bv
			} else {
				v = av + tMod - bv
			}
			dst[i] = v
			nz |= v
			h = (h ^ v) * fnvPrime
		}
	default: // multiplies
		for i, av := range a {
			x := av * b[i]
			v := (x & 0xffff) + (x >> 32) + tMod - ((x >> 16) & 0xffff)
			if v >= tMod {
				v -= tMod
			}
			dst[i] = v
			nz |= v
			h = (h ^ v) * fnvPrime
		}
	}
	return h, nz == 0
}
