package synth

import (
	"sort"
	"testing"
	"time"

	"porcupine/internal/baseline"
	"porcupine/internal/kernels"
	"porcupine/internal/quill"
)

func testOpts() Options {
	return Options{Seed: 1, Timeout: 90 * time.Second}
}

// synthAndCheck synthesizes a kernel and verifies the result
// symbolically against its spec.
func synthAndCheck(t *testing.T, name string, opts Options) *Result {
	t.Helper()
	res, err := SynthesizeKernel(name, opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	spec := kernels.ByName(name)
	ok, err := spec.CheckProgram(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("%s: synthesized program fails verification:\n%s", name, res.Program)
	}
	okInit, err := spec.CheckProgram(res.InitialProgram)
	if err != nil {
		t.Fatal(err)
	}
	if !okInit {
		t.Fatalf("%s: initial program fails verification", name)
	}
	if res.FinalCost > res.InitialCost {
		t.Errorf("%s: optimization increased cost %.0f -> %.0f", name, res.InitialCost, res.FinalCost)
	}
	return res
}

func TestSynthesizeBoxBlur(t *testing.T) {
	res := synthAndCheck(t, "box-blur", testOpts())
	// Paper Table 2: synthesized box blur has 4 instructions (the
	// separable two-step form) vs the baseline's 6.
	if got := res.Lowered.InstructionCount(); got != 4 {
		t.Errorf("box blur: %d instructions, want 4\n%s", got, res.Lowered)
	}
	if res.L != 2 {
		t.Errorf("box blur: L = %d, want 2", res.L)
	}
	if !res.Optimal {
		t.Error("box blur optimization should exhaust the space")
	}
}

func TestSynthesizeLinearRegression(t *testing.T) {
	res := synthAndCheck(t, "linear-regression", testOpts())
	if got := res.Lowered.InstructionCount(); got != 4 {
		t.Errorf("linear regression: %d instructions, want 4\n%s", got, res.Lowered)
	}
}

func TestSynthesizeDotProduct(t *testing.T) {
	res := synthAndCheck(t, "dot-product", testOpts())
	// mul + 3 rotate-adds = 7 lowered instructions (Table 2).
	if got := res.Lowered.InstructionCount(); got != 7 {
		t.Errorf("dot product: %d instructions, want 7\n%s", got, res.Lowered)
	}
	if res.Lowered.MultDepth() != 1 {
		t.Errorf("dot product mult depth = %d", res.Lowered.MultDepth())
	}
}

func TestSynthesizeHamming(t *testing.T) {
	res := synthAndCheck(t, "hamming-distance", testOpts())
	if got := res.Lowered.InstructionCount(); got != 7 {
		t.Errorf("hamming: %d instructions, want 7 (6 + explicit relin)\n%s", got, res.Lowered)
	}
}

func TestSynthesizeGx(t *testing.T) {
	if testing.Short() {
		t.Skip("gx synthesis takes tens of seconds")
	}
	opts := testOpts()
	opts.Timeout = 5 * time.Minute
	res := synthAndCheck(t, "gx", opts)
	// Paper: 7 instructions (3 components + 4 rotations), beating the
	// 12-instruction baseline by discovering separability.
	if got := res.Lowered.InstructionCount(); got > 8 {
		t.Errorf("gx: %d instructions, expected ≤ 8 (paper: 7)\n%s", got, res.Lowered)
	}
	base, _ := baseline.Lowered("gx")
	if res.Lowered.InstructionCount() >= base.InstructionCount() {
		t.Errorf("gx synthesized (%d instrs) should beat baseline (%d)",
			res.Lowered.InstructionCount(), base.InstructionCount())
	}
}

func TestSynthesizePolynomialRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("polynomial regression synthesis is slow")
	}
	opts := testOpts()
	opts.Timeout = 5 * time.Minute
	res := synthAndCheck(t, "polynomial-regression", opts)
	// The factorization (a·x+b)·x+c uses two ct-ct multiplies instead
	// of the baseline's three (paper §7.2's algebraic optimization).
	muls := 0
	for _, in := range res.Lowered.Instrs {
		if in.Op == quill.OpMulCtCt {
			muls++
		}
	}
	if muls != 2 {
		t.Errorf("polynomial regression uses %d ct-ct multiplies, want 2 (factored form)\n%s", muls, res.Lowered)
	}
}

func TestSynthesizeL2Distance(t *testing.T) {
	if testing.Short() {
		t.Skip("l2 synthesis takes a few seconds")
	}
	opts := testOpts()
	opts.Timeout = 5 * time.Minute
	res := synthAndCheck(t, "l2-distance", opts)
	// Paper Table 2: 9 instructions, depth 9, parity with baseline.
	if got := res.Lowered.InstructionCount(); got != 9 {
		t.Errorf("l2: %d instructions, want 9\n%s", got, res.Lowered)
	}
	if got := res.Lowered.Depth(); got != 9 {
		t.Errorf("l2: depth %d, want 9", got)
	}
}

func TestSynthesizeGy(t *testing.T) {
	if testing.Short() {
		t.Skip("gy synthesis takes a few seconds")
	}
	opts := testOpts()
	opts.Timeout = 5 * time.Minute
	res := synthAndCheck(t, "gy", opts)
	if got := res.Lowered.InstructionCount(); got > 8 {
		t.Errorf("gy: %d instructions, expected ≤ 8 (paper: 7)\n%s", got, res.Lowered)
	}
}

func TestSynthesizeRobertsCross(t *testing.T) {
	if testing.Short() {
		t.Skip("roberts cross is the heaviest search (~15s initial)")
	}
	opts := testOpts()
	opts.Timeout = 10 * time.Minute
	opts.SkipOptimize = true // the optimality proof alone takes minutes
	res := synthAndCheck(t, "roberts-cross", opts)
	// Paper Table 2: 10 instructions, depth 5, parity with baseline.
	if got := res.Lowered.InstructionCount(); got != 10 {
		t.Errorf("roberts: %d instructions, want 10\n%s", got, res.Lowered)
	}
	if got := res.Lowered.Depth(); got != 5 {
		t.Errorf("roberts: depth %d, want 5", got)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	// The parallel scheduler must agree with the sequential search on
	// satisfiability and optimal cost.
	for _, name := range []string{"box-blur", "linear-regression", "hamming-distance"} {
		seq := testOpts()
		seq.Parallelism = 1
		par := testOpts()
		par.Parallelism = 8
		rSeq, err := SynthesizeKernel(name, seq)
		if err != nil {
			t.Fatalf("%s seq: %v", name, err)
		}
		rPar, err := SynthesizeKernel(name, par)
		if err != nil {
			t.Fatalf("%s par: %v", name, err)
		}
		if rSeq.FinalCost != rPar.FinalCost {
			t.Errorf("%s: optimal cost differs: seq %.0f vs par %.0f", name, rSeq.FinalCost, rPar.FinalCost)
		}
		if rSeq.L != rPar.L {
			t.Errorf("%s: minimal L differs: %d vs %d", name, rSeq.L, rPar.L)
		}
		if !rSeq.Optimal || !rPar.Optimal {
			t.Errorf("%s: both searches should prove optimality", name)
		}
	}
}

func TestSynthesisUnsat(t *testing.T) {
	// A sketch with only additions cannot implement hamming distance.
	spec := kernels.HammingDistance()
	sk := &Sketch{
		Components: []Component{{Op: quill.OpAddCtCt, A: KindCtRot, B: KindCtRot}},
		Rotations:  []int{1, 2},
		MinL:       1, MaxL: 3,
	}
	_, err := Synthesize(spec, sk, testOpts())
	if err != ErrUnsat {
		t.Errorf("expected ErrUnsat, got %v", err)
	}
}

func TestSketchValidate(t *testing.T) {
	spec := kernels.BoxBlur()
	bad := &Sketch{MinL: 1, MaxL: 2}
	if err := bad.Validate(spec); err == nil {
		t.Error("empty components should fail")
	}
	bad = &Sketch{
		Components: []Component{{Op: quill.OpRotCt}},
		MinL:       1, MaxL: 1,
	}
	if err := bad.Validate(spec); err == nil {
		t.Error("non-arith component should fail")
	}
	bad = &Sketch{
		Components: []Component{{Op: quill.OpAddCtCt}},
		MinL:       2, MaxL: 1,
	}
	if err := bad.Validate(spec); err == nil {
		t.Error("bad L range should fail")
	}
	bad = &Sketch{
		Components: []Component{{Op: quill.OpMulCtPt, P: quill.PtRef{Input: 3}}},
		MinL:       1, MaxL: 1,
	}
	if err := bad.Validate(spec); err == nil {
		t.Error("out-of-range plaintext should fail")
	}
	bad = &Sketch{
		Components: []Component{{Op: quill.OpAddCtCt}},
		Rotations:  []int{0},
		MinL:       1, MaxL: 1,
	}
	if err := bad.Validate(spec); err == nil {
		t.Error("zero rotation in set should fail")
	}
}

func TestRotationRestrictionHelpers(t *testing.T) {
	tr := TreeReductionRotations(8)
	sort.Ints(tr)
	if len(tr) != 3 || tr[0] != 1 || tr[1] != 2 || tr[2] != 4 {
		t.Errorf("tree rotations = %v", tr)
	}
	sw := SlidingWindowRotations(2, 2, 5)
	sort.Ints(sw)
	if len(sw) != 3 || sw[0] != 1 || sw[1] != 5 || sw[2] != 6 {
		t.Errorf("2x2 window rotations = %v", sw)
	}
	cw := SlidingWindowRotations(3, 3, 5)
	if len(cw) != 8 {
		t.Errorf("3x3 window should have 8 offsets, got %v", cw)
	}
	want := map[int]bool{-6: true, -5: true, -4: true, -1: true, 1: true, 4: true, 5: true, 6: true}
	for _, r := range cw {
		if !want[r] {
			t.Errorf("unexpected 3x3 rotation %d", r)
		}
	}
}

func TestDefaultSketchUnknown(t *testing.T) {
	if _, err := DefaultSketch("nope"); err == nil {
		t.Error("unknown kernel sketch should fail")
	}
	if _, err := SynthesizeKernel("nope", testOpts()); err == nil {
		t.Error("unknown kernel should fail")
	}
}

func TestSkipOptimize(t *testing.T) {
	opts := testOpts()
	opts.SkipOptimize = true
	res := synthAndCheck(t, "box-blur", opts)
	if res.Optimal {
		t.Error("SkipOptimize result must not claim optimality")
	}
	if res.InitialCost != res.FinalCost {
		t.Error("SkipOptimize should keep the initial cost")
	}
}

func TestSynthesisDeterministic(t *testing.T) {
	// With Parallelism = 1 the whole run is deterministic for a fixed
	// seed (with workers, equally-optimal solutions may differ).
	opts := testOpts()
	opts.Parallelism = 1
	a := synthAndCheck(t, "box-blur", opts)
	b := synthAndCheck(t, "box-blur", opts)
	if a.Program.String() != b.Program.String() {
		t.Error("same seed should give the same program")
	}
}

func TestExplicitRotationAblation(t *testing.T) {
	// §7.4: the explicit-rotation sketch searches a larger space but
	// must find an equivalent box blur. L now counts rotations too.
	spec := kernels.BoxBlur()
	sk, err := DefaultSketch("box-blur")
	if err != nil {
		t.Fatal(err)
	}
	sk.MinL = 2
	sk.MaxL = 6
	opts := testOpts()
	opts.ExplicitRotation = true
	opts.SkipOptimize = true
	opts.Timeout = 5 * time.Minute
	res, err := Synthesize(spec, sk, opts)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := spec.CheckProgram(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("explicit-rotation result fails verification:\n%s", res.Program)
	}
	if res.L < 4 {
		t.Errorf("explicit-rotation L = %d, expected ≥ 4 (rotations count as components)", res.L)
	}
}
