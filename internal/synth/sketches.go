package synth

import (
	"fmt"

	"porcupine/internal/kernels"
	"porcupine/internal/quill"
)

// DefaultSketch returns the local-rotate sketch a Porcupine user would
// write for each of the nine directly synthesized kernels (§4.4): the
// arithmetic components extracted from the reference implementation,
// the §6.1 rotation restriction matching the kernel's structure
// (sliding window for stencils, power-of-two tree for reductions), and
// the iterative-deepening range for L.
func DefaultSketch(name string) (*Sketch, error) {
	addRR := Component{Op: quill.OpAddCtCt, A: KindCtRot, B: KindCtRot}
	subRR := Component{Op: quill.OpSubCtCt, A: KindCtRot, B: KindCtRot}
	addRC := Component{Op: quill.OpAddCtCt, A: KindCtRot, B: KindCt}
	addCC := Component{Op: quill.OpAddCtCt, A: KindCt, B: KindCt}
	subCC := Component{Op: quill.OpSubCtCt, A: KindCt, B: KindCt}
	mulCC := Component{Op: quill.OpMulCtCt, A: KindCt, B: KindCt}

	switch name {
	case "box-blur":
		return &Sketch{
			Components: []Component{addRR},
			Rotations:  SlidingWindowRotations(2, 2, kernels.ImgW),
			MinL:       1, MaxL: 4,
		}, nil

	case "gx", "gy":
		// The paper's Gx sketch: add, subtract, and multiply-by-2
		// components with ciphertext-rotation holes (§4.4).
		mul2 := Component{Op: quill.OpMulCtPt, A: KindCt, P: quill.PtRef{Input: -1, Const: []int64{2}}}
		return &Sketch{
			Components: []Component{addRR, subRR, mul2},
			Rotations:  SlidingWindowRotations(3, 3, kernels.ImgW),
			MinL:       2, MaxL: 5,
		}, nil

	case "roberts-cross":
		return &Sketch{
			Components: []Component{subRR, mulCC, addCC},
			Rotations:  SlidingWindowRotations(2, 2, kernels.ImgW),
			MinL:       3, MaxL: 6,
		}, nil

	case "dot-product":
		mulPt := Component{Op: quill.OpMulCtPt, A: KindCt, P: quill.PtRef{Input: 0}}
		return &Sketch{
			Components: []Component{mulPt, addRC},
			Rotations:  TreeReductionRotations(kernels.DotN),
			MinL:       3, MaxL: 5,
		}, nil

	case "hamming-distance":
		return &Sketch{
			Components: []Component{subCC, mulCC, addRC},
			Rotations:  TreeReductionRotations(kernels.HammingN),
			MinL:       3, MaxL: 5,
		}, nil

	case "l2-distance":
		return &Sketch{
			Components: []Component{subCC, mulCC, addRC},
			Rotations:  TreeReductionRotations(kernels.L2N),
			MinL:       4, MaxL: 6,
		}, nil

	case "linear-regression":
		mulW := Component{Op: quill.OpMulCtPt, A: KindCt, P: quill.PtRef{Input: 0}}
		addB := Component{Op: quill.OpAddCtPt, A: KindCt, P: quill.PtRef{Input: 1}}
		return &Sketch{
			Components: []Component{mulW, addB, addRC},
			Rotations:  []int{1},
			MinL:       2, MaxL: 4,
		}, nil

	case "polynomial-regression":
		addC := Component{Op: quill.OpAddCtPt, A: KindCt, P: quill.PtRef{Input: 0}}
		return &Sketch{
			Components: []Component{mulCC, addCC, addC},
			MinL:       3, MaxL: 6,
		}, nil
	}
	return nil, fmt.Errorf("synth: no default sketch for kernel %q", name)
}

// SynthesizeKernel runs synthesis for a named kernel with its default
// sketch.
func SynthesizeKernel(name string, opts Options) (*Result, error) {
	spec := kernels.ByName(name)
	if spec == nil {
		return nil, fmt.Errorf("synth: unknown kernel %q", name)
	}
	sk, err := DefaultSketch(name)
	if err != nil {
		return nil, err
	}
	return Synthesize(spec, sk, opts)
}
