package synth

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"porcupine/internal/kernels"
)

func schedJobs(t *testing.T, names []string, opts Options) []Job {
	t.Helper()
	jobs := make([]Job, 0, len(names))
	for _, n := range names {
		sk, err := DefaultSketch(n)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{Name: n, Spec: kernels.ByName(n), Sketch: sk, Opts: opts})
	}
	return jobs
}

// TestSchedulerBatch runs a small batch under a shared cache and
// checks ordering, correctness, event pairing, and that a second run
// is served warm.
func TestSchedulerBatch(t *testing.T) {
	names := []string{"box-blur", "dot-product", "linear-regression"}
	cache := NewMemCache()
	var mu sync.Mutex
	events := map[string][]EventKind{}
	sched := &Scheduler{
		Workers: 4,
		Cache:   cache,
		Progress: func(ev Event) {
			mu.Lock()
			events[ev.Name] = append(events[ev.Name], ev.Kind)
			mu.Unlock()
		},
	}
	opts := Options{Timeout: 2 * time.Minute, Seed: 1}
	results := sched.Run(schedJobs(t, names, opts))
	if len(results) != len(names) {
		t.Fatalf("want %d results, got %d", len(names), len(results))
	}
	for i, jr := range results {
		if jr.Name != names[i] {
			t.Errorf("result %d: want %s, got %s", i, names[i], jr.Name)
		}
		if jr.Err != nil {
			t.Fatalf("%s: %v", jr.Name, jr.Err)
		}
		if jr.Result.Cached {
			t.Errorf("%s: cold run reported a cache hit", jr.Name)
		}
		if ok, err := kernels.ByName(jr.Name).CheckProgram(jr.Result.Program); err != nil || !ok {
			t.Errorf("%s: synthesized program fails verification (ok=%v err=%v)", jr.Name, ok, err)
		}
		if got := events[jr.Name]; len(got) != 2 || got[0] != JobStarted || got[1] != JobFinished {
			t.Errorf("%s: want events [started finished], got %v", jr.Name, got)
		}
	}

	warm := sched.Run(schedJobs(t, names, opts))
	for _, jr := range warm {
		if jr.Err != nil {
			t.Fatalf("warm %s: %v", jr.Name, jr.Err)
		}
		if !jr.Result.Cached {
			t.Errorf("warm %s: missed the shared cache", jr.Name)
		}
	}
}

// TestSchedulerStress is the concurrency stress test for the batch
// scheduler and shared cache together: several concurrent batches,
// overlapping kernels, one shared disk-backed cache. Run under -race
// in CI.
func TestSchedulerStress(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"box-blur", "dot-product", "linear-regression", "polynomial-regression"}
	opts := Options{Timeout: 2 * time.Minute, Seed: 1}
	const batches = 4
	var wg sync.WaitGroup
	errs := make(chan error, batches*len(names))
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sched := &Scheduler{Workers: 2, Cache: cache}
			for _, jr := range sched.Run(schedJobs(t, names, opts)) {
				if jr.Err != nil {
					errs <- jr.Err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if cache.Len() != len(names) {
		t.Errorf("want %d cached queries, got %d", len(names), cache.Len())
	}
}

// TestSchedulerFailFast checks that after one job fails, unstarted
// jobs are skipped with ErrNotAttempted naming the root cause instead
// of burning the rest of the batch budget.
func TestSchedulerFailFast(t *testing.T) {
	// Two symmetric instantly-failing jobs and one worker: whichever
	// runs first fails and records the abort before releasing its
	// token, so the other is deterministically skipped.
	bad := &Sketch{Components: nil, MinL: 1, MaxL: 1} // fails validation
	opts := Options{Timeout: 2 * time.Minute, Seed: 1}
	jobs := []Job{
		{Name: "bad-1", Spec: kernels.ByName("box-blur"), Sketch: bad, Opts: opts},
		{Name: "bad-2", Spec: kernels.ByName("box-blur"), Sketch: bad, Opts: opts},
	}
	sched := &Scheduler{Workers: 1, FailFast: true}
	results := sched.Run(jobs)
	failed, skipped := 0, 0
	for _, jr := range results {
		switch {
		case errors.Is(jr.Err, ErrNotAttempted):
			skipped++
			if !strings.Contains(jr.Err.Error(), "bad-") {
				t.Errorf("skip error does not name the failed job: %v", jr.Err)
			}
		case jr.Err != nil:
			failed++
		default:
			t.Errorf("%s: invalid sketch did not fail", jr.Name)
		}
	}
	if failed != 1 || skipped != 1 {
		t.Errorf("want 1 failed + 1 skipped, got %d failed + %d skipped", failed, skipped)
	}

	// Without FailFast every job is attempted (and fails on its own).
	sched = &Scheduler{Workers: 1}
	for _, jr := range sched.Run(jobs) {
		if jr.Err == nil || errors.Is(jr.Err, ErrNotAttempted) {
			t.Errorf("%s: want its own failure, got %v", jr.Name, jr.Err)
		}
	}
}

// TestWorkStealingMatchesSequential checks that the work-stealing
// parallel search returns results of the same quality as the
// deterministic sequential search: same minimal L, same optimal final
// cost, same optimality verdict.
func TestWorkStealingMatchesSequential(t *testing.T) {
	names := []string{"box-blur", "dot-product", "hamming-distance", "linear-regression", "polynomial-regression"}
	if testing.Short() {
		names = names[:3]
	}
	for _, name := range names {
		seq, err := SynthesizeKernel(name, Options{Timeout: 2 * time.Minute, Seed: 1, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		par, err := SynthesizeKernel(name, Options{Timeout: 2 * time.Minute, Seed: 1, Parallelism: 4})
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if par.L != seq.L {
			t.Errorf("%s: parallel L=%d, sequential L=%d", name, par.L, seq.L)
		}
		if par.FinalCost != seq.FinalCost {
			t.Errorf("%s: parallel cost=%g, sequential cost=%g", name, par.FinalCost, seq.FinalCost)
		}
		if par.Optimal != seq.Optimal {
			t.Errorf("%s: parallel optimal=%v, sequential optimal=%v", name, par.Optimal, seq.Optimal)
		}
		if ok, err := kernels.ByName(name).CheckProgram(par.Program); err != nil || !ok {
			t.Errorf("%s: parallel program fails verification (ok=%v err=%v)", name, ok, err)
		}
	}
}

// TestWorkStealingExplicitRotation exercises the rotation-component
// branch of the parallel search (offloaded rot candidates replay
// through pushRot).
func TestWorkStealingExplicitRotation(t *testing.T) {
	opts := Options{Timeout: 2 * time.Minute, Seed: 1, ExplicitRotation: true, SkipOptimize: true}
	seq := opts
	seq.Parallelism = 1
	par := opts
	par.Parallelism = 4
	sres, err := SynthesizeKernel("box-blur", seq)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := SynthesizeKernel("box-blur", par)
	if err != nil {
		t.Fatal(err)
	}
	if sres.L != pres.L {
		t.Errorf("explicit rotation: parallel L=%d, sequential L=%d", pres.L, sres.L)
	}
	if ok, err := kernels.ByName("box-blur").CheckProgram(pres.Program); err != nil || !ok {
		t.Errorf("parallel explicit-rotation program fails verification (ok=%v err=%v)", ok, err)
	}
}
