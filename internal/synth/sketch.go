// Package synth implements Porcupine's synthesis engine (paper §5):
// a counter-example guided inductive synthesis (CEGIS) loop around an
// enumerative solver that completes local-rotate sketches, followed by
// a branch-and-bound optimization phase that minimizes the paper's
// cost function latency × (1 + multiplicative depth).
//
// Where the paper compiles synthesis queries to SMT (Rosette +
// Boolector), this implementation searches hole assignments directly
// with aggressive pruning: observational-equivalence deduplication of
// value states on the CEGIS example set, commutative-operand symmetry
// breaking, dead-value bounds, duplicate-value elimination, and the
// paper's §6.1 rotation restrictions. Verification is exact: candidate
// and specification are compared as canonical per-slot polynomials
// over Z_t (see internal/symbolic), and counterexamples are drawn from
// the nonzero difference polynomial.
package synth

import (
	"fmt"

	"porcupine/internal/kernels"
	"porcupine/internal/quill"
)

// OperandKind says whether a ciphertext operand hole may carry a
// rotation (the paper's ??ct-r) or not (??ct).
type OperandKind int

const (
	// KindCt is a plain ciphertext hole: any prior value, unrotated.
	KindCt OperandKind = iota
	// KindCtRot is a ciphertext-rotation hole: any prior value rotated
	// by any allowed amount (including 0).
	KindCtRot
)

// Component is one arithmetic instruction template available to the
// sketch (the paper's component multiset, §4.4). For ct-ct opcodes A
// and B describe the operand holes; for ct-pt opcodes A describes the
// ciphertext hole and P the (fixed) plaintext operand.
type Component struct {
	Op quill.Op
	A  OperandKind
	B  OperandKind
	P  quill.PtRef
}

// Sketch is the synthesis-guiding template: the component multiset, the
// allowed rotation amounts, and the range of program sizes to explore
// (iterative deepening on L, §5.1).
type Sketch struct {
	Components []Component
	// Rotations is the set of allowed nonzero rotation amounts for
	// ??ct-r holes (signed: negative = right rotation). Restricting it
	// is the paper's §6.1 optimization (sliding-window or tree
	// reduction patterns).
	Rotations []int
	MinL      int
	MaxL      int
}

// Validate checks the sketch against a spec.
func (sk *Sketch) Validate(spec *kernels.Spec) error {
	if len(sk.Components) == 0 {
		return fmt.Errorf("synth: sketch has no components")
	}
	if sk.MinL < 1 || sk.MaxL < sk.MinL {
		return fmt.Errorf("synth: bad L range [%d, %d]", sk.MinL, sk.MaxL)
	}
	for i, c := range sk.Components {
		if !c.Op.IsArith() {
			return fmt.Errorf("synth: component %d has non-arithmetic opcode %v", i, c.Op)
		}
		if c.Op.IsCtPt() {
			if c.P.Input >= len(spec.Pt) {
				return fmt.Errorf("synth: component %d references plaintext p%d (spec has %d)", i, c.P.Input, len(spec.Pt))
			}
			if c.P.Input < 0 && len(c.P.Const) != 1 && len(c.P.Const) != spec.VecLen {
				return fmt.Errorf("synth: component %d constant has bad length %d", i, len(c.P.Const))
			}
		}
	}
	for _, r := range sk.Rotations {
		if r == 0 || r <= -spec.VecLen || r >= spec.VecLen {
			return fmt.Errorf("synth: bad rotation amount %d", r)
		}
	}
	return nil
}

// SlidingWindowRotations returns the §6.1 rotation restriction for an
// h×w sliding-window kernel over an image of width imgW: the nonzero
// slot offsets of the window elements relative to the anchor. Centered
// windows (odd h, w — e.g. 3×3 stencils) anchor at the middle element;
// uncentered windows (e.g. the 2×2 box blur and Roberts cross) anchor
// at the top-left element.
func SlidingWindowRotations(h, w, imgW int) []int {
	r0, c0 := 0, 0
	if h%2 == 1 && w%2 == 1 {
		r0, c0 = h/2, w/2
	}
	var out []int
	for dr := -r0; dr < h-r0; dr++ {
		for dc := -c0; dc < w-c0; dc++ {
			if off := dr*imgW + dc; off != 0 {
				out = append(out, off)
			}
		}
	}
	return out
}

// TreeReductionRotations returns the power-of-two restriction for
// internal reductions over n packed elements (§6.1).
func TreeReductionRotations(n int) []int {
	var out []int
	for k := n / 2; k >= 1; k /= 2 {
		out = append(out, k)
	}
	return out
}
