package synth

import (
	"math"
	"sync"
	"sync/atomic"

	"porcupine/internal/quill"
)

// search looks for one program with exactly L components that is
// consistent with every CEGIS example and (when bounded) has lowered
// cost strictly below costBound. It returns (nil, true) when the space
// is exhausted (a genuine unsat) and (nil, false) on timeout.
//
// With Parallelism > 1 the DFS is parallelized with work stealing:
// every worker owns a deque of unexplored subtrees and, whenever
// another worker is starving, offloads the branch it is about to
// descend into instead of exploring it inline. Idle workers steal the
// oldest (largest) queued subtrees, so a single hard kernel keeps all
// workers saturated regardless of how lopsided the search tree is.
// Each worker owns its search state and deduplication tables; the
// first solution found aborts the others.
func (e *engine) search(L int, costBound float64) (*quill.Program, bool) {
	workers := e.opts.Parallelism
	if e.opts.growWorkers != nil {
		extra, release := e.opts.growWorkers()
		workers += extra
		defer release()
	}
	if workers <= 1 {
		s := e.newSearcher(L, costBound)
		found := s.dfs(0)
		e.nodes += s.nodes
		if found {
			return s.result, true
		}
		return nil, !s.timedOut
	}

	pool := newWSPool(workers)
	var stop atomic.Bool
	pool.push(0, task{}) // the root task: the whole tree

	type outcome struct {
		prog     *quill.Program
		timedOut bool
		nodes    int64
	}
	outs := make([]outcome, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			s := e.newSearcher(L, costBound)
			s.pool, s.wid, s.stop = pool, wid, &stop
			out := &outs[wid]
			for {
				t, ok := pool.take(wid)
				if !ok {
					break
				}
				found := s.runTask(t)
				pool.finish()
				out.nodes = s.nodes
				if found {
					out.prog = s.result
					stop.Store(true)
					pool.halt()
					break
				}
				if s.timedOut {
					if !stop.Load() {
						out.timedOut = true
					}
					pool.halt()
					break
				}
			}
		}(w)
	}
	wg.Wait()

	var prog *quill.Program
	complete := true
	for w := range outs {
		e.nodes += outs[w].nodes
		if outs[w].prog != nil && prog == nil {
			prog = outs[w].prog
		}
		if outs[w].timedOut {
			complete = false
		}
	}
	if prog != nil {
		return prog, true
	}
	return nil, complete
}

// cand identifies one search branch: either an explicit rotation
// component or an arithmetic component with resolved operand holes.
type cand struct {
	isRot                bool
	ci                   int
	aID, aRot, bID, bRot int
	rotID, rot           int
}

// runTask replays a stolen subtree's committed prefix, runs the full
// candidate checks on its final branch, and explores the subtree. On
// failure the searcher is unwound back to the root state so it can be
// reused for the next task.
func (s *searcher) runTask(t task) bool {
	if len(t.path) == 0 {
		return s.dfs(0)
	}
	for slot := 0; slot < len(t.path)-1; slot++ {
		s.commitCand(t.path[slot])
	}
	slot := len(t.path) - 1
	c := t.path[slot]
	var found bool
	if c.isRot {
		found = s.considerRot(slot, c.rotID, c.rot)
	} else {
		found = s.considerCand(slot, slot == s.L-1, c)
	}
	if found {
		return true
	}
	for len(s.path) > 0 {
		s.popCand()
	}
	return false
}

// commitCand re-commits a prefix choice already validated by the
// producing worker: evaluate and push, no pruning checks.
func (s *searcher) commitCand(c cand) {
	if c.isRot {
		res := rotateFlat(s.vals[c.rotID].data, s.e.spec.VecLen, c.rot)
		s.pushRot(c.rotID, c.rot, res, hashData(res), s.vals[c.rotID].depth)
	} else {
		comp := &s.e.sk.Components[c.ci]
		aData := s.operandData(c.aID, c.aRot)
		var h uint64
		if comp.Op.IsCtCt() {
			h, _ = evalFused(comp.Op, aData, s.operandData(c.bID, c.bRot), s.scratch)
		} else {
			h, _ = evalFused(comp.Op, aData, s.e.ptData[c.ci], s.scratch)
		}
		s.pushArith(c.ci, c.aID, c.aRot, c.bID, c.bRot, s.scratch, h, s.resultDepth(comp.Op, c.aID, c.bID))
	}
	s.path = append(s.path, c)
}

// newSearcher builds a fresh search state over the current examples.
func (e *engine) newSearcher(L int, costBound float64) *searcher {
	s := &searcher{
		e:           e,
		L:           L,
		costBound:   costBound,
		bounded:     !math.IsInf(costBound, 1),
		visited:     make([]map[uint64]float64, L),
		rotCache:    map[rotPair][]uint64{},
		rotPairs:    map[rotPair]int{},
		lastIdx:     map[int][]int32{},
		scratch:     make([]uint64, e.flatLen),
		rotWithZero: append([]int{0}, e.rotations...),
	}
	for i := range s.visited {
		s.visited[i] = map[uint64]float64{}
	}
	for i, data := range e.inputData {
		s.vals = append(s.vals, &value{data: data, hash: hashData(data), rotOf: -1})
		s.progID = append(s.progID, i)
	}
	for exi, ex := range e.examples {
		for i, slot := range e.spec.OutSlots {
			s.matchPos = append(s.matchPos, exi*e.spec.VecLen+slot)
			s.matchWant = append(s.matchWant, ex.Want[i])
		}
	}
	return s
}

// pushRec records exactly what a push changed, so pop is trivially
// symmetric.
type pushRec struct {
	isRot      bool
	aID, aRot  int
	bID, bRot  int // bID < 0 for non-ct-ct
	rotOf, rot int // explicit rotation values
	lat        float64
}

// searcher holds the mutable DFS state for one search call.
type searcher struct {
	e         *engine
	L         int
	costBound float64
	bounded   bool

	vals   []*value
	progID []int // program SSA id per value (-1 for rotation values)

	instrs []quill.Instr // resolved instruction per arithmetic value
	recs   []pushRec

	visited  []map[uint64]float64
	rotCache map[rotPair][]uint64
	rotPairs map[rotPair]int

	// lastIdx caches, per operand rotation, the flat source index of
	// each match position, so final-slot candidates are evaluated only
	// at the cared output slots, directly from unrotated operand data.
	lastIdx map[int][]int32

	arithLat  float64
	numArith  int
	unused    int // computed values without uses
	depthsMax []int

	matchPos  []int
	matchWant []uint64

	scratch     []uint64
	rotWithZero []int

	result   *quill.Program
	timedOut bool
	ticks    int
	nodes    int64

	// path is the stack of candidate choices from the search root,
	// offloaded (with one more element) when a subtree is given away.
	path []cand
	// pool and wid identify this worker in a parallel search.
	pool *wsPool
	wid  int
	// stop is the shared abort flag of a parallel search.
	stop *atomic.Bool
}

func (s *searcher) maxDepth() int {
	if len(s.depthsMax) == 0 {
		return 0
	}
	return s.depthsMax[len(s.depthsMax)-1]
}

// operandData returns value id rotated left by rot, cached per live id.
func (s *searcher) operandData(id, rot int) []uint64 {
	if rot == 0 {
		return s.vals[id].data
	}
	key := rotPair{id, rot}
	if d, ok := s.rotCache[key]; ok {
		return d
	}
	d := rotateFlat(s.vals[id].data, s.e.spec.VecLen, rot)
	s.rotCache[key] = d
	return d
}

// matchSrc returns, per match position, the flat index an operand
// rotated left by rot is read from.
func (s *searcher) matchSrc(rot int) []int32 {
	if idx, ok := s.lastIdx[rot]; ok {
		return idx
	}
	n := s.e.spec.VecLen
	idx := make([]int32, len(s.matchPos))
	for k, p := range s.matchPos {
		base := p - p%n
		i := p % n
		idx[k] = int32(base + ((i+rot)%n+n)%n)
	}
	s.lastIdx[rot] = idx
	return idx
}

// offload hands the branch c (rooted at slot) to the work-stealing
// pool when another worker is starving; the caller skips it inline.
// Final-slot branches are leaf checks — cheaper to run than to steal.
func (s *searcher) offload(slot int, c cand) bool {
	if s.pool == nil || slot >= s.L-1 || !s.pool.starving() {
		return false
	}
	path := make([]cand, len(s.path)+1)
	copy(path, s.path)
	path[len(s.path)] = c
	s.pool.push(s.wid, task{path: path})
	return true
}

// dfs fills component slot `slot`; returns true when a solution was
// committed to s.result.
func (s *searcher) dfs(slot int) bool {
	if s.timedOut {
		return false
	}
	s.ticks++
	if s.ticks&1023 == 0 {
		if s.e.timedOut() || (s.stop != nil && s.stop.Load()) {
			s.timedOut = true
			return false
		}
	}
	last := slot == s.L-1

	// Explicit-rotation ablation: rotations are components. They can
	// never be the final component (the matched output is always an
	// arithmetic result).
	if s.e.opts.ExplicitRotation && !last {
		nVals := len(s.vals)
		for id := 0; id < nVals; id++ {
			if s.vals[id].rotOf >= 0 {
				continue // no nested rotations (paper §4.4)
			}
			for _, r := range s.e.rotations {
				if s.offload(slot, cand{isRot: true, rotID: id, rot: r}) {
					continue
				}
				if s.considerRot(slot, id, r) {
					return true
				}
				if s.timedOut {
					return false
				}
			}
		}
	}

	for ci := range s.e.sk.Components {
		comp := &s.e.sk.Components[ci]
		aRots := s.rotChoices(comp.A)
		nVals := len(s.vals)
		if comp.Op.IsCtCt() {
			bRots := s.rotChoices(comp.B)
			// Commutative symmetry breaking (§6.2) is only sound when
			// both operand holes have the same kind; otherwise the
			// mirrored candidate may not be expressible.
			commutative := (comp.Op == quill.OpAddCtCt || comp.Op == quill.OpMulCtCt) && comp.A == comp.B
			for aID := 0; aID < nVals; aID++ {
				for _, aRot := range aRots {
					for bID := 0; bID < nVals; bID++ {
						for _, bRot := range bRots {
							if commutative && (bID < aID || (bID == aID && bRot < aRot)) {
								continue // symmetry breaking §6.2
							}
							if aID == bID && aRot == bRot && comp.Op == quill.OpSubCtCt {
								continue // x - x = 0
							}
							c := cand{ci: ci, aID: aID, aRot: aRot, bID: bID, bRot: bRot}
							if s.offload(slot, c) {
								continue
							}
							if s.considerCand(slot, last, c) {
								return true
							}
							if s.timedOut {
								return false
							}
						}
					}
				}
			}
		} else {
			for aID := 0; aID < nVals; aID++ {
				for _, aRot := range aRots {
					c := cand{ci: ci, aID: aID, aRot: aRot, bID: -1}
					if s.offload(slot, c) {
						continue
					}
					if s.considerCand(slot, last, c) {
						return true
					}
					if s.timedOut {
						return false
					}
				}
			}
		}
	}
	return false
}

// rotChoices returns the rotation options for an operand kind.
func (s *searcher) rotChoices(k OperandKind) []int {
	if k == KindCtRot && !s.e.opts.ExplicitRotation {
		return s.rotWithZero
	}
	return s.rotWithZero[:1]
}

// considerCand evaluates one arithmetic candidate branch.
func (s *searcher) considerCand(slot int, last bool, c cand) bool {
	s.nodes++
	if last {
		return s.considerLast(c)
	}
	comp := &s.e.sk.Components[c.ci]
	aData := s.operandData(c.aID, c.aRot)
	var h uint64
	var zero bool
	if comp.Op.IsCtCt() {
		bData := s.operandData(c.bID, c.bRot)
		h, zero = evalFused(comp.Op, aData, bData, s.scratch)
	} else {
		h, zero = evalFused(comp.Op, aData, s.e.ptData[c.ci], s.scratch)
	}
	// Zero results are never useful in a minimal program.
	if zero {
		return false
	}
	res := s.scratch
	newDepth := s.resultDepth(comp.Op, c.aID, c.bID)
	// Duplicate pruning: a value equal (on all examples) to an existing
	// value with ≤ depth is redundant — later instructions can
	// reference the original instead.
	for _, v := range s.vals {
		if v.hash == h && v.depth <= newDepth && equalData(v.data, res) {
			return false
		}
	}

	// Dead-value bound: every non-output value must eventually be
	// consumed; m remaining instructions can absorb at most m+1
	// currently unused values.
	m := s.L - slot - 1
	unusedAfter := s.unused + 1
	if s.vals[c.aID].uses == 0 && s.isComputed(c.aID) {
		unusedAfter--
	}
	if c.bID >= 0 && c.bID != c.aID && s.vals[c.bID].uses == 0 && s.isComputed(c.bID) {
		unusedAfter--
	}
	if unusedAfter > m+1 {
		return false
	}

	s.pushArith(c.ci, c.aID, c.aRot, c.bID, c.bRot, res, h, newDepth)
	s.path = append(s.path, c)
	if s.pruneByBoundOrVisited(slot) {
		s.popCand()
		return false
	}
	if s.dfs(slot + 1) {
		return true
	}
	s.popCand()
	return false
}

// considerLast handles the final component: the result must match the
// specification's cared slots on every example, consume all unused
// values, and (when bounded) beat the cost bound. Only the cared
// slots are evaluated — directly from the unrotated operand data,
// bailing at the first mismatch — instead of materializing the full
// rotated result vectors.
func (s *searcher) considerLast(c cand) bool {
	need := s.unused
	if s.vals[c.aID].uses == 0 && s.isComputed(c.aID) {
		need--
	}
	if c.bID >= 0 && c.bID != c.aID && s.vals[c.bID].uses == 0 && s.isComputed(c.bID) {
		need--
	}
	if need > 0 {
		return false
	}
	comp := &s.e.sk.Components[c.ci]
	aData := s.vals[c.aID].data
	aSrc := s.matchSrc(c.aRot)
	if comp.Op.IsCtCt() {
		bData := s.vals[c.bID].data
		bSrc := s.matchSrc(c.bRot)
		for k, want := range s.matchWant {
			if apply1(comp.Op, aData[aSrc[k]], bData[bSrc[k]]) != want {
				return false
			}
		}
	} else {
		pt := s.e.ptData[c.ci]
		for k, want := range s.matchWant {
			if apply1(comp.Op, aData[aSrc[k]], pt[s.matchPos[k]]) != want {
				return false
			}
		}
	}
	prog := s.buildProgram(c.ci, c.aID, c.aRot, c.bID, c.bRot)
	if prog == nil {
		return false
	}
	if s.bounded {
		cst, err := s.e.cm.CostProgram(prog)
		if err != nil || cst >= s.costBound {
			return false
		}
	}
	s.result = prog
	return true
}

// considerRot handles rotation components in explicit-rotation mode.
func (s *searcher) considerRot(slot, id, rot int) bool {
	s.nodes++
	res := rotateFlat(s.vals[id].data, s.e.spec.VecLen, rot)
	h := hashData(res)
	depth := s.vals[id].depth
	for _, v := range s.vals {
		if v.hash == h && v.depth <= depth && equalData(v.data, res) {
			return false
		}
	}
	m := s.L - slot - 1
	unusedAfter := s.unused + 1
	if s.vals[id].uses == 0 && s.isComputed(id) {
		unusedAfter--
	}
	if unusedAfter > m+1 {
		return false
	}
	s.pushRot(id, rot, res, h, depth)
	s.path = append(s.path, cand{isRot: true, rotID: id, rot: rot})
	if s.pruneByBoundOrVisited(slot) {
		s.popCand()
		return false
	}
	if s.dfs(slot + 1) {
		return true
	}
	s.popCand()
	return false
}

func (s *searcher) isComputed(id int) bool { return id >= len(s.e.inputData) }

func (s *searcher) resultDepth(op quill.Op, aID, bID int) int {
	d := s.vals[aID].depth
	if bID >= 0 && s.vals[bID].depth > d {
		d = s.vals[bID].depth
	}
	if op == quill.OpMulCtCt || op == quill.OpMulCtPt {
		d++
	}
	return d
}

func (s *searcher) markUse(id int) {
	s.vals[id].uses++
	if s.vals[id].uses == 1 && s.isComputed(id) {
		s.unused--
	}
}

func (s *searcher) unmarkUse(id int) {
	s.vals[id].uses--
	if s.vals[id].uses == 0 && s.isComputed(id) {
		s.unused++
	}
}

// pushArith commits an arithmetic value.
func (s *searcher) pushArith(ci, aID, aRot, bID, bRot int, res []uint64, h uint64, depth int) {
	comp := &s.e.sk.Components[ci]
	data := make([]uint64, len(res))
	copy(data, res)
	v := &value{data: data, hash: h, depth: depth, rotOf: -1}

	rec := pushRec{aID: aID, aRot: aRot, bID: bID, bRot: bRot}
	if aRot != 0 {
		s.addRotPair(aID, aRot)
	}
	if bID >= 0 && bRot != 0 {
		s.addRotPair(bID, bRot)
	}
	s.markUse(aID)
	if bID >= 0 {
		s.markUse(bID)
	}
	s.unused++ // the new value is unused
	s.vals = append(s.vals, v)

	lat := s.e.cm.InstrLatency(comp.Op)
	if comp.Op == quill.OpMulCtCt {
		lat += s.e.cm.InstrLatency(quill.OpRelin)
	}
	rec.lat = lat
	s.arithLat += lat

	in := quill.Instr{Op: comp.Op}
	in.A = quill.CtRef{ID: s.refProgID(aID), Rot: s.refRot(aID, aRot)}
	if comp.Op.IsCtCt() {
		in.B = quill.CtRef{ID: s.refProgID(bID), Rot: s.refRot(bID, bRot)}
	} else {
		in.P = comp.P
	}
	s.instrs = append(s.instrs, in)
	s.progID = append(s.progID, len(s.e.inputData)+s.numArith)
	s.numArith++

	s.recs = append(s.recs, rec)
	s.pushDepth(depth)
}

// pushRot commits an explicit rotation value.
func (s *searcher) pushRot(id, rot int, res []uint64, h uint64, depth int) {
	v := &value{data: res, hash: h, depth: depth, rotOf: id, rot: rot}
	s.addRotPair(id, rot)
	s.markUse(id)
	s.unused++
	s.vals = append(s.vals, v)
	s.progID = append(s.progID, -1)
	s.recs = append(s.recs, pushRec{isRot: true, rotOf: id, rot: rot})
	s.pushDepth(depth)
}

func (s *searcher) pushDepth(depth int) {
	md := depth
	if prev := s.maxDepth(); prev > md {
		md = prev
	}
	s.depthsMax = append(s.depthsMax, md)
}

// pop undoes the most recent push using its record.
func (s *searcher) pop() {
	id := len(s.vals) - 1
	rec := s.recs[len(s.recs)-1]
	s.recs = s.recs[:len(s.recs)-1]

	// Invalidate rotation-cache entries of the removed value.
	for _, r := range s.e.rotations {
		delete(s.rotCache, rotPair{id, r})
	}

	if rec.isRot {
		s.dropRotPair(rec.rotOf, rec.rot)
		s.unmarkUse(rec.rotOf)
	} else {
		if rec.aRot != 0 {
			s.dropRotPair(rec.aID, rec.aRot)
		}
		if rec.bID >= 0 && rec.bRot != 0 {
			s.dropRotPair(rec.bID, rec.bRot)
		}
		s.unmarkUse(rec.aID)
		if rec.bID >= 0 {
			s.unmarkUse(rec.bID)
		}
		s.arithLat -= rec.lat
		s.instrs = s.instrs[:len(s.instrs)-1]
		s.numArith--
	}
	s.unused--
	s.vals = s.vals[:id]
	s.progID = s.progID[:id]
	s.depthsMax = s.depthsMax[:len(s.depthsMax)-1]
}

// popCand undoes a committed candidate: the value push and the path
// entry together.
func (s *searcher) popCand() {
	s.pop()
	s.path = s.path[:len(s.path)-1]
}

// refProgID resolves a value id to a program SSA id, looking through
// rotation values.
func (s *searcher) refProgID(id int) int {
	if s.vals[id].rotOf >= 0 {
		return s.progID[s.vals[id].rotOf]
	}
	return s.progID[id]
}

// refRot resolves the effective operand rotation: explicit rotation
// values contribute their amount.
func (s *searcher) refRot(id, rot int) int {
	if s.vals[id].rotOf >= 0 {
		return s.vals[id].rot
	}
	return rot
}

// addRotPair/dropRotPair maintain the multiset of distinct rotation
// instructions the lowered program will need (for the cost bound).
// Keys are canonicalized to the underlying non-rotation source value.
func (s *searcher) addRotPair(id, rot int) {
	s.rotPairs[rotPair{s.canonicalRotSrc(id), rot}]++
}

func (s *searcher) dropRotPair(id, rot int) {
	key := rotPair{s.canonicalRotSrc(id), rot}
	if s.rotPairs[key]--; s.rotPairs[key] == 0 {
		delete(s.rotPairs, key)
	}
}

func (s *searcher) canonicalRotSrc(id int) int {
	if s.vals[id].rotOf >= 0 {
		return s.vals[id].rotOf
	}
	return id
}

// pruneByBoundOrVisited applies the branch-and-bound lower bound and
// the observational-equivalence visited table. Called immediately
// after a push that filled slot `slot`.
func (s *searcher) pruneByBoundOrVisited(slot int) bool {
	lbLat := s.arithLat + s.e.rotLat*float64(len(s.rotPairs))
	if s.bounded {
		remaining := float64(s.L-slot-1) * s.e.minCompLat
		lb := (lbLat + remaining) * float64(1+s.maxDepth())
		if lb >= s.costBound {
			return true
		}
	}
	key := s.stateKey()
	m := s.visited[slot]
	if prev, ok := m[key]; ok && prev <= lbLat {
		return true
	}
	if len(m) < s.e.opts.MaxVisited {
		m[key] = lbLat
	}
	return false
}

// stateKey is an order-independent fingerprint of the current value
// multiset (data, depth, used-bit, rotation provenance) plus the
// rotation-pair set, so permutations of independent instructions
// collapse to one state.
func (s *searcher) stateKey() uint64 {
	var key uint64
	for _, v := range s.vals {
		h := mix(v.hash, uint64(v.depth)+1)
		if v.uses > 0 {
			h = mix(h, 0x9e3779b97f4a7c15)
		}
		if v.rotOf >= 0 {
			h = mix(h, uint64(uint32(v.rot))+s.vals[v.rotOf].hash)
		}
		key += h // commutative combine
	}
	for p := range s.rotPairs {
		key += mix(s.vals[p.id].hash, uint64(uint32(p.rot))*0x85ebca6b)
	}
	return key
}

// buildProgram assembles the final Program from the committed
// instructions plus the pending last instruction.
func (s *searcher) buildProgram(ci, aID, aRot, bID, bRot int) *quill.Program {
	comp := &s.e.sk.Components[ci]
	in := quill.Instr{Op: comp.Op}
	in.A = quill.CtRef{ID: s.refProgID(aID), Rot: s.refRot(aID, aRot)}
	if comp.Op.IsCtCt() {
		in.B = quill.CtRef{ID: s.refProgID(bID), Rot: s.refRot(bID, bRot)}
	} else {
		in.P = comp.P
	}
	instrs := append(append([]quill.Instr(nil), s.instrs...), in)
	p := &quill.Program{
		VecLen:      s.e.spec.VecLen,
		NumCtInputs: len(s.e.spec.Ct),
		NumPtInputs: len(s.e.spec.Pt),
		Instrs:      instrs,
		Output:      len(s.e.spec.Ct) + len(instrs) - 1,
	}
	if p.Validate() != nil {
		return nil
	}
	return p
}

// --- flat-vector helpers ---

// rotateFlat rotates each VecLen-sized segment left by rot.
func rotateFlat(data []uint64, vecLen, rot int) []uint64 {
	out := make([]uint64, len(data))
	n := vecLen
	for base := 0; base < len(data); base += n {
		for i := 0; i < n; i++ {
			out[base+i] = data[base+((i+rot)%n+n)%n]
		}
	}
	return out
}

func equalData(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hashData is FNV-1a over the words.
func hashData(d []uint64) uint64 {
	h := uint64(fnvOffset)
	for _, v := range d {
		h ^= v
		h *= fnvPrime
	}
	return h
}

func mix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}
