package synth

import (
	"math"
	"sync/atomic"

	"porcupine/internal/mathutil"
	"porcupine/internal/quill"
)

// search looks for one program with exactly L components that is
// consistent with every CEGIS example and (when bounded) has lowered
// cost strictly below costBound. It returns (nil, true) when the space
// is exhausted (a genuine unsat) and (nil, false) on timeout.
//
// With Parallelism > 1 the top-level branches (first-component
// choices) are explored by a worker pool; each worker owns its search
// state and deduplication tables, and the first solution found aborts
// the others.
func (e *engine) search(L int, costBound float64) (*quill.Program, bool) {
	if e.opts.Parallelism > 1 {
		return e.searchParallel(L, costBound)
	}
	s := e.newSearcher(L, costBound)
	found := s.dfs(0)
	e.nodes += s.nodes
	if found {
		return s.result, true
	}
	return nil, !s.timedOut
}

// cand identifies one top-level search branch for the parallel
// scheduler.
type cand struct {
	isRot                bool
	ci                   int
	aID, aRot, bID, bRot int
	rotID, rot           int
}

// searchParallel fans the first component slot out over workers.
func (e *engine) searchParallel(L int, costBound float64) (*quill.Program, bool) {
	// Enumerate top-level branches with a capturing searcher.
	capt := e.newSearcher(L, costBound)
	var cands []cand
	capt.capture = &cands
	capt.dfs(0)
	capt.capture = nil

	var stop atomic.Bool
	type outcome struct {
		prog     *quill.Program
		timedOut bool
		nodes    int64
	}
	work := make(chan cand, len(cands))
	for _, c := range cands {
		work <- c
	}
	close(work)
	results := make(chan outcome, e.opts.Parallelism)
	for w := 0; w < e.opts.Parallelism; w++ {
		go func() {
			var out outcome
			for c := range work {
				if stop.Load() {
					break
				}
				s := e.newSearcher(L, costBound)
				s.stop = &stop
				if s.exploreCandidate(c) {
					out.prog = s.result
					out.nodes += s.nodes
					stop.Store(true)
					break
				}
				out.nodes += s.nodes
				if s.timedOut && !stop.Load() {
					out.timedOut = true
				}
			}
			results <- out
		}()
	}
	var prog *quill.Program
	complete := true
	for w := 0; w < e.opts.Parallelism; w++ {
		out := <-results
		e.nodes += out.nodes
		if out.prog != nil && prog == nil {
			prog = out.prog
		}
		if out.timedOut {
			complete = false
		}
	}
	if prog != nil {
		return prog, true
	}
	return nil, complete
}

// exploreCandidate replays a captured top-level branch in this
// worker's searcher and explores its subtree.
func (s *searcher) exploreCandidate(c cand) bool {
	last := s.L == 1
	if c.isRot {
		return s.considerRot(0, c.rotID, c.rot)
	}
	comp := &s.e.sk.Components[c.ci]
	aData := s.operandData(c.aID, c.aRot)
	if comp.Op.IsCtCt() {
		bData := s.operandData(c.bID, c.bRot)
		applyOp(comp.Op, aData, bData, s.scratch)
	} else {
		applyOp(comp.Op, aData, s.e.ptData[c.ci], s.scratch)
	}
	return s.consider(0, last, c.ci, c.aID, c.aRot, c.bID, c.bRot)
}

// newSearcher builds a fresh search state over the current examples.
func (e *engine) newSearcher(L int, costBound float64) *searcher {
	s := &searcher{
		e:           e,
		L:           L,
		costBound:   costBound,
		bounded:     !math.IsInf(costBound, 1),
		visited:     make([]map[uint64]float64, L),
		rotCache:    map[rotPair][]uint64{},
		rotPairs:    map[rotPair]int{},
		scratch:     make([]uint64, e.flatLen),
		rotWithZero: append([]int{0}, e.rotations...),
	}
	for i := range s.visited {
		s.visited[i] = map[uint64]float64{}
	}
	for i, data := range e.inputData {
		s.vals = append(s.vals, &value{data: data, hash: hashData(data), rotOf: -1})
		s.progID = append(s.progID, i)
	}
	for exi, ex := range e.examples {
		for i, slot := range e.spec.OutSlots {
			s.matchPos = append(s.matchPos, exi*e.spec.VecLen+slot)
			s.matchWant = append(s.matchWant, ex.Want[i])
		}
	}
	return s
}

// pushRec records exactly what a push changed, so pop is trivially
// symmetric.
type pushRec struct {
	isRot      bool
	aID, aRot  int
	bID, bRot  int // bID < 0 for non-ct-ct
	rotOf, rot int // explicit rotation values
	lat        float64
}

// searcher holds the mutable DFS state for one search call.
type searcher struct {
	e         *engine
	L         int
	costBound float64
	bounded   bool

	vals   []*value
	progID []int // program SSA id per value (-1 for rotation values)

	instrs []quill.Instr // resolved instruction per arithmetic value
	recs   []pushRec

	visited  []map[uint64]float64
	rotCache map[rotPair][]uint64
	rotPairs map[rotPair]int

	arithLat  float64
	numArith  int
	unused    int // computed values without uses
	depthsMax []int

	matchPos  []int
	matchWant []uint64

	scratch     []uint64
	rotWithZero []int

	result   *quill.Program
	timedOut bool
	ticks    int
	nodes    int64

	// capture, when set, records top-level branches instead of
	// exploring them (used by the parallel scheduler).
	capture *[]cand
	// stop is the shared abort flag of a parallel search.
	stop *atomic.Bool
}

func (s *searcher) maxDepth() int {
	if len(s.depthsMax) == 0 {
		return 0
	}
	return s.depthsMax[len(s.depthsMax)-1]
}

// operandData returns value id rotated left by rot, cached per live id.
func (s *searcher) operandData(id, rot int) []uint64 {
	if rot == 0 {
		return s.vals[id].data
	}
	key := rotPair{id, rot}
	if d, ok := s.rotCache[key]; ok {
		return d
	}
	d := rotateFlat(s.vals[id].data, s.e.spec.VecLen, rot)
	s.rotCache[key] = d
	return d
}

// dfs fills component slot `slot`; returns true when a solution was
// committed to s.result.
func (s *searcher) dfs(slot int) bool {
	if s.timedOut {
		return false
	}
	s.ticks++
	if s.ticks&1023 == 0 {
		if s.e.timedOut() || (s.stop != nil && s.stop.Load()) {
			s.timedOut = true
			return false
		}
	}
	last := slot == s.L-1

	// Explicit-rotation ablation: rotations are components. They can
	// never be the final component (the matched output is always an
	// arithmetic result).
	if s.e.opts.ExplicitRotation && !last {
		nVals := len(s.vals)
		for id := 0; id < nVals; id++ {
			if s.vals[id].rotOf >= 0 {
				continue // no nested rotations (paper §4.4)
			}
			for _, r := range s.e.rotations {
				if s.considerRot(slot, id, r) {
					return true
				}
				if s.timedOut {
					return false
				}
			}
		}
	}

	for ci := range s.e.sk.Components {
		comp := &s.e.sk.Components[ci]
		aRots := s.rotChoices(comp.A)
		nVals := len(s.vals)
		if comp.Op.IsCtCt() {
			bRots := s.rotChoices(comp.B)
			// Commutative symmetry breaking (§6.2) is only sound when
			// both operand holes have the same kind; otherwise the
			// mirrored candidate may not be expressible.
			commutative := (comp.Op == quill.OpAddCtCt || comp.Op == quill.OpMulCtCt) && comp.A == comp.B
			for aID := 0; aID < nVals; aID++ {
				for _, aRot := range aRots {
					aData := s.operandData(aID, aRot)
					for bID := 0; bID < nVals; bID++ {
						for _, bRot := range bRots {
							if commutative && (bID < aID || (bID == aID && bRot < aRot)) {
								continue // symmetry breaking §6.2
							}
							if aID == bID && aRot == bRot && comp.Op == quill.OpSubCtCt {
								continue // x - x = 0
							}
							bData := s.operandData(bID, bRot)
							applyOp(comp.Op, aData, bData, s.scratch)
							if s.consider(slot, last, ci, aID, aRot, bID, bRot) {
								return true
							}
							if s.timedOut {
								return false
							}
							// Deeper recursion may have repopulated the
							// cache; re-resolve aData in case the map
							// entry was dropped and recreated.
							aData = s.operandData(aID, aRot)
						}
					}
				}
			}
		} else {
			for aID := 0; aID < nVals; aID++ {
				for _, aRot := range aRots {
					aData := s.operandData(aID, aRot)
					applyOp(comp.Op, aData, s.e.ptData[ci], s.scratch)
					if s.consider(slot, last, ci, aID, aRot, -1, 0) {
						return true
					}
					if s.timedOut {
						return false
					}
				}
			}
		}
	}
	return false
}

// rotChoices returns the rotation options for an operand kind.
func (s *searcher) rotChoices(k OperandKind) []int {
	if k == KindCtRot && !s.e.opts.ExplicitRotation {
		return s.rotWithZero
	}
	return s.rotWithZero[:1]
}

// consider evaluates the candidate result sitting in s.scratch.
func (s *searcher) consider(slot int, last bool, ci, aID, aRot, bID, bRot int) bool {
	if s.capture != nil {
		*s.capture = append(*s.capture, cand{ci: ci, aID: aID, aRot: aRot, bID: bID, bRot: bRot})
		return false
	}
	s.nodes++
	comp := &s.e.sk.Components[ci]
	res := s.scratch

	if last {
		return s.considerLast(ci, aID, aRot, bID, bRot, res)
	}

	// Zero results are never useful in a minimal program.
	if isZero(res) {
		return false
	}
	h := hashData(res)
	newDepth := s.resultDepth(comp.Op, aID, bID)
	// Duplicate pruning: a value equal (on all examples) to an existing
	// value with ≤ depth is redundant — later instructions can
	// reference the original instead.
	for _, v := range s.vals {
		if v.hash == h && v.depth <= newDepth && equalData(v.data, res) {
			return false
		}
	}

	// Dead-value bound: every non-output value must eventually be
	// consumed; m remaining instructions can absorb at most m+1
	// currently unused values.
	m := s.L - slot - 1
	unusedAfter := s.unused + 1
	if s.vals[aID].uses == 0 && s.isComputed(aID) {
		unusedAfter--
	}
	if bID >= 0 && bID != aID && s.vals[bID].uses == 0 && s.isComputed(bID) {
		unusedAfter--
	}
	if unusedAfter > m+1 {
		return false
	}

	s.pushArith(ci, aID, aRot, bID, bRot, res, h, newDepth)
	if s.pruneByBoundOrVisited(slot) {
		s.pop()
		return false
	}
	if s.dfs(slot + 1) {
		return true
	}
	s.pop()
	return false
}

// considerLast handles the final component: the result must match the
// specification's cared slots on every example, consume all unused
// values, and (when bounded) beat the cost bound.
func (s *searcher) considerLast(ci, aID, aRot, bID, bRot int, res []uint64) bool {
	for i, pos := range s.matchPos {
		if res[pos] != s.matchWant[i] {
			return false
		}
	}
	need := s.unused
	if s.vals[aID].uses == 0 && s.isComputed(aID) {
		need--
	}
	if bID >= 0 && bID != aID && s.vals[bID].uses == 0 && s.isComputed(bID) {
		need--
	}
	if need > 0 {
		return false
	}
	prog := s.buildProgram(ci, aID, aRot, bID, bRot)
	if prog == nil {
		return false
	}
	if s.bounded {
		c, err := s.e.cm.CostProgram(prog)
		if err != nil || c >= s.costBound {
			return false
		}
	}
	s.result = prog
	return true
}

// considerRot handles rotation components in explicit-rotation mode.
func (s *searcher) considerRot(slot, id, rot int) bool {
	if s.capture != nil {
		*s.capture = append(*s.capture, cand{isRot: true, rotID: id, rot: rot})
		return false
	}
	s.nodes++
	res := rotateFlat(s.vals[id].data, s.e.spec.VecLen, rot)
	h := hashData(res)
	depth := s.vals[id].depth
	for _, v := range s.vals {
		if v.hash == h && v.depth <= depth && equalData(v.data, res) {
			return false
		}
	}
	m := s.L - slot - 1
	unusedAfter := s.unused + 1
	if s.vals[id].uses == 0 && s.isComputed(id) {
		unusedAfter--
	}
	if unusedAfter > m+1 {
		return false
	}
	s.pushRot(id, rot, res, h, depth)
	if s.pruneByBoundOrVisited(slot) {
		s.pop()
		return false
	}
	if s.dfs(slot + 1) {
		return true
	}
	s.pop()
	return false
}

func (s *searcher) isComputed(id int) bool { return id >= len(s.e.inputData) }

func (s *searcher) resultDepth(op quill.Op, aID, bID int) int {
	d := s.vals[aID].depth
	if bID >= 0 && s.vals[bID].depth > d {
		d = s.vals[bID].depth
	}
	if op == quill.OpMulCtCt || op == quill.OpMulCtPt {
		d++
	}
	return d
}

func (s *searcher) markUse(id int) {
	s.vals[id].uses++
	if s.vals[id].uses == 1 && s.isComputed(id) {
		s.unused--
	}
}

func (s *searcher) unmarkUse(id int) {
	s.vals[id].uses--
	if s.vals[id].uses == 0 && s.isComputed(id) {
		s.unused++
	}
}

// pushArith commits an arithmetic value.
func (s *searcher) pushArith(ci, aID, aRot, bID, bRot int, res []uint64, h uint64, depth int) {
	comp := &s.e.sk.Components[ci]
	data := make([]uint64, len(res))
	copy(data, res)
	v := &value{data: data, hash: h, depth: depth, rotOf: -1}

	rec := pushRec{aID: aID, aRot: aRot, bID: bID, bRot: bRot}
	if aRot != 0 {
		s.addRotPair(aID, aRot)
	}
	if bID >= 0 && bRot != 0 {
		s.addRotPair(bID, bRot)
	}
	s.markUse(aID)
	if bID >= 0 {
		s.markUse(bID)
	}
	s.unused++ // the new value is unused
	s.vals = append(s.vals, v)

	lat := s.e.cm.InstrLatency(comp.Op)
	if comp.Op == quill.OpMulCtCt {
		lat += s.e.cm.InstrLatency(quill.OpRelin)
	}
	rec.lat = lat
	s.arithLat += lat

	in := quill.Instr{Op: comp.Op}
	in.A = quill.CtRef{ID: s.refProgID(aID), Rot: s.refRot(aID, aRot)}
	if comp.Op.IsCtCt() {
		in.B = quill.CtRef{ID: s.refProgID(bID), Rot: s.refRot(bID, bRot)}
	} else {
		in.P = comp.P
	}
	s.instrs = append(s.instrs, in)
	s.progID = append(s.progID, len(s.e.inputData)+s.numArith)
	s.numArith++

	s.recs = append(s.recs, rec)
	s.pushDepth(depth)
}

// pushRot commits an explicit rotation value.
func (s *searcher) pushRot(id, rot int, res []uint64, h uint64, depth int) {
	v := &value{data: res, hash: h, depth: depth, rotOf: id, rot: rot}
	s.addRotPair(id, rot)
	s.markUse(id)
	s.unused++
	s.vals = append(s.vals, v)
	s.progID = append(s.progID, -1)
	s.recs = append(s.recs, pushRec{isRot: true, rotOf: id, rot: rot})
	s.pushDepth(depth)
}

func (s *searcher) pushDepth(depth int) {
	md := depth
	if prev := s.maxDepth(); prev > md {
		md = prev
	}
	s.depthsMax = append(s.depthsMax, md)
}

// pop undoes the most recent push using its record.
func (s *searcher) pop() {
	id := len(s.vals) - 1
	rec := s.recs[len(s.recs)-1]
	s.recs = s.recs[:len(s.recs)-1]

	// Invalidate rotation-cache entries of the removed value.
	for _, r := range s.e.rotations {
		delete(s.rotCache, rotPair{id, r})
	}

	if rec.isRot {
		s.dropRotPair(rec.rotOf, rec.rot)
		s.unmarkUse(rec.rotOf)
	} else {
		if rec.aRot != 0 {
			s.dropRotPair(rec.aID, rec.aRot)
		}
		if rec.bID >= 0 && rec.bRot != 0 {
			s.dropRotPair(rec.bID, rec.bRot)
		}
		s.unmarkUse(rec.aID)
		if rec.bID >= 0 {
			s.unmarkUse(rec.bID)
		}
		s.arithLat -= rec.lat
		s.instrs = s.instrs[:len(s.instrs)-1]
		s.numArith--
	}
	s.unused--
	s.vals = s.vals[:id]
	s.progID = s.progID[:id]
	s.depthsMax = s.depthsMax[:len(s.depthsMax)-1]
}

// refProgID resolves a value id to a program SSA id, looking through
// rotation values.
func (s *searcher) refProgID(id int) int {
	if s.vals[id].rotOf >= 0 {
		return s.progID[s.vals[id].rotOf]
	}
	return s.progID[id]
}

// refRot resolves the effective operand rotation: explicit rotation
// values contribute their amount.
func (s *searcher) refRot(id, rot int) int {
	if s.vals[id].rotOf >= 0 {
		return s.vals[id].rot
	}
	return rot
}

// addRotPair/dropRotPair maintain the multiset of distinct rotation
// instructions the lowered program will need (for the cost bound).
// Keys are canonicalized to the underlying non-rotation source value.
func (s *searcher) addRotPair(id, rot int) {
	s.rotPairs[rotPair{s.canonicalRotSrc(id), rot}]++
}

func (s *searcher) dropRotPair(id, rot int) {
	key := rotPair{s.canonicalRotSrc(id), rot}
	if s.rotPairs[key]--; s.rotPairs[key] == 0 {
		delete(s.rotPairs, key)
	}
}

func (s *searcher) canonicalRotSrc(id int) int {
	if s.vals[id].rotOf >= 0 {
		return s.vals[id].rotOf
	}
	return id
}

// pruneByBoundOrVisited applies the branch-and-bound lower bound and
// the observational-equivalence visited table. Called immediately
// after a push that filled slot `slot`.
func (s *searcher) pruneByBoundOrVisited(slot int) bool {
	lbLat := s.arithLat + s.e.rotLat*float64(len(s.rotPairs))
	if s.bounded {
		remaining := float64(s.L-slot-1) * s.e.minCompLat
		lb := (lbLat + remaining) * float64(1+s.maxDepth())
		if lb >= s.costBound {
			return true
		}
	}
	key := s.stateKey()
	m := s.visited[slot]
	if prev, ok := m[key]; ok && prev <= lbLat {
		return true
	}
	if len(m) < s.e.opts.MaxVisited {
		m[key] = lbLat
	}
	return false
}

// stateKey is an order-independent fingerprint of the current value
// multiset (data, depth, used-bit, rotation provenance) plus the
// rotation-pair set, so permutations of independent instructions
// collapse to one state.
func (s *searcher) stateKey() uint64 {
	var key uint64
	for _, v := range s.vals {
		h := mix(v.hash, uint64(v.depth)+1)
		if v.uses > 0 {
			h = mix(h, 0x9e3779b97f4a7c15)
		}
		if v.rotOf >= 0 {
			h = mix(h, uint64(uint32(v.rot))+s.vals[v.rotOf].hash)
		}
		key += h // commutative combine
	}
	for p := range s.rotPairs {
		key += mix(s.vals[p.id].hash, uint64(uint32(p.rot))*0x85ebca6b)
	}
	return key
}

// buildProgram assembles the final Program from the committed
// instructions plus the pending last instruction.
func (s *searcher) buildProgram(ci, aID, aRot, bID, bRot int) *quill.Program {
	comp := &s.e.sk.Components[ci]
	in := quill.Instr{Op: comp.Op}
	in.A = quill.CtRef{ID: s.refProgID(aID), Rot: s.refRot(aID, aRot)}
	if comp.Op.IsCtCt() {
		in.B = quill.CtRef{ID: s.refProgID(bID), Rot: s.refRot(bID, bRot)}
	} else {
		in.P = comp.P
	}
	instrs := append(append([]quill.Instr(nil), s.instrs...), in)
	p := &quill.Program{
		VecLen:      s.e.spec.VecLen,
		NumCtInputs: len(s.e.spec.Ct),
		NumPtInputs: len(s.e.spec.Pt),
		Instrs:      instrs,
		Output:      len(s.e.spec.Ct) + len(instrs) - 1,
	}
	if p.Validate() != nil {
		return nil
	}
	return p
}

// --- flat-vector helpers ---

// rotateFlat rotates each VecLen-sized segment left by rot.
func rotateFlat(data []uint64, vecLen, rot int) []uint64 {
	out := make([]uint64, len(data))
	n := vecLen
	for base := 0; base < len(data); base += n {
		for i := 0; i < n; i++ {
			out[base+i] = data[base+((i+rot)%n+n)%n]
		}
	}
	return out
}

// applyOp computes dst = a op b element-wise mod t.
func applyOp(op quill.Op, a, b, dst []uint64) {
	const t = quill.Modulus
	switch op {
	case quill.OpAddCtCt, quill.OpAddCtPt:
		for i := range dst {
			dst[i] = mathutil.AddMod(a[i], b[i], t)
		}
	case quill.OpSubCtCt, quill.OpSubCtPt:
		for i := range dst {
			dst[i] = mathutil.SubMod(a[i], b[i], t)
		}
	default: // multiplies
		for i := range dst {
			dst[i] = mathutil.MulMod(a[i], b[i], t)
		}
	}
}

func isZero(d []uint64) bool {
	for _, v := range d {
		if v != 0 {
			return false
		}
	}
	return true
}

func equalData(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hashData is FNV-1a over the words.
func hashData(d []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range d {
		h ^= v
		h *= 1099511628211
	}
	return h
}

func mix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}
