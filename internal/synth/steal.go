package synth

import (
	"sync"
	"sync/atomic"
)

// task is one DFS subtree awaiting exploration: the path of committed
// candidate choices from the search root. The prefix (all but the last
// element) was validated by the producing worker and is replayed
// verbatim; the final element is processed through the full candidate
// checks before its subtree is explored.
type task struct {
	path []cand
}

// wsPool is the work-stealing scheduler of one search call: one deque
// per worker, owner takes from the back (LIFO, depth-first locality),
// thieves steal from the front (FIFO, the largest subtrees). Tasks are
// coarse — whole DFS subtrees — so a single mutex is far from
// contended; the stealing discipline, not lock-freedom, is what
// balances the load.
type wsPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	deques  [][]task
	active  int  // workers currently exploring a subtree
	stopped bool // solution found or deadline hit: drop remaining work

	hungry  atomic.Int32 // workers blocked in take()
	pending atomic.Int32 // queued tasks across all deques
}

func newWSPool(workers int) *wsPool {
	p := &wsPool{deques: make([][]task, workers)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// push appends a task to worker wid's deque and wakes one thief.
func (p *wsPool) push(wid int, t task) {
	p.mu.Lock()
	p.deques[wid] = append(p.deques[wid], t)
	p.mu.Unlock()
	p.pending.Add(1)
	p.cond.Signal()
}

// starving reports whether offloading a subtree would feed an idle
// worker: someone is blocked and the queues do not already hold
// enough work to satisfy them.
func (p *wsPool) starving() bool {
	return p.hungry.Load() > p.pending.Load()
}

// take returns the next task for worker wid, blocking until work
// arrives. ok == false means the search is over: a solution was found,
// the deadline passed, or every deque is empty with no active worker
// left to produce more.
func (p *wsPool) take(wid int) (t task, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.stopped {
			return task{}, false
		}
		if d := p.deques[wid]; len(d) > 0 {
			t = d[len(d)-1]
			p.deques[wid] = d[:len(d)-1]
			p.pending.Add(-1)
			p.active++
			return t, true
		}
		stolen := false
		for v := range p.deques {
			if v == wid || len(p.deques[v]) == 0 {
				continue
			}
			t = p.deques[v][0]
			p.deques[v] = p.deques[v][1:]
			stolen = true
			break
		}
		if stolen {
			p.pending.Add(-1)
			p.active++
			return t, true
		}
		if p.active == 0 {
			// Nothing queued anywhere and nobody running who could
			// produce more: the space is exhausted.
			p.cond.Broadcast()
			return task{}, false
		}
		p.hungry.Add(1)
		p.cond.Wait()
		p.hungry.Add(-1)
	}
}

// finish marks worker wid's current task complete.
func (p *wsPool) finish() {
	p.mu.Lock()
	p.active--
	last := p.active == 0
	p.mu.Unlock()
	if last {
		p.cond.Broadcast()
	}
}

// halt aborts the search: blocked workers return immediately.
func (p *wsPool) halt() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Broadcast()
}
