package synth

import (
	"testing"
	"time"

	"porcupine/internal/kernels"
	"porcupine/internal/quill"
)

func TestTinyTimeoutReturnsErrTimeout(t *testing.T) {
	opts := Options{Seed: 1, Timeout: time.Nanosecond}
	_, err := SynthesizeKernel("gx", opts)
	if err != ErrTimeout {
		t.Errorf("want ErrTimeout, got %v", err)
	}
}

func TestTinyVisitedTableStillCorrect(t *testing.T) {
	// A degenerate dedup table must not affect correctness, only
	// speed.
	opts := Options{Seed: 1, Timeout: 2 * time.Minute, MaxVisited: 4}
	res, err := SynthesizeKernel("box-blur", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lowered.InstructionCount() != 4 {
		t.Errorf("instructions = %d", res.Lowered.InstructionCount())
	}
}

func TestSingleInitialExample(t *testing.T) {
	// The paper's configuration: one random starting example. CEGIS
	// must still converge (possibly via counterexamples).
	opts := Options{Seed: 5, Timeout: 2 * time.Minute, InitialExamples: 1}
	res, err := SynthesizeKernel("hamming-distance", opts)
	if err != nil {
		t.Fatal(err)
	}
	spec := kernels.ByName("hamming-distance")
	ok, err := spec.CheckProgram(res.Program)
	if err != nil || !ok {
		t.Errorf("single-example CEGIS produced a wrong program: %v", err)
	}
	if res.Examples < 1 {
		t.Error("example accounting wrong")
	}
}

func TestResultMetadata(t *testing.T) {
	opts := Options{Seed: 1, Timeout: 2 * time.Minute}
	res, err := SynthesizeKernel("linear-regression", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes <= 0 {
		t.Error("node accounting missing")
	}
	if res.TotalTime < res.InitialTime {
		t.Error("total time < initial time")
	}
	if res.L < 1 {
		t.Error("L missing")
	}
	if res.InitialProgram == nil || res.Lowered == nil {
		t.Error("programs missing")
	}
	if err := res.Program.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCostModelDrivesChoice(t *testing.T) {
	// With a cost model making ct-ct multiply free and rotation
	// astronomically expensive, the engine must still return correct
	// programs; cost only ranks them.
	cm := quill.DefaultCostModel()
	cm.Latency[quill.OpRotCt] = 1e9
	opts := Options{Seed: 1, Timeout: 2 * time.Minute, CostModel: cm}
	res, err := SynthesizeKernel("box-blur", opts)
	if err != nil {
		t.Fatal(err)
	}
	spec := kernels.ByName("box-blur")
	ok, err := spec.CheckProgram(res.Program)
	if err != nil || !ok {
		t.Errorf("program invalid under custom cost model: %v", err)
	}
}

func TestMaxLTooSmallIsUnsat(t *testing.T) {
	spec := kernels.ByName("box-blur")
	sk, err := DefaultSketch("box-blur")
	if err != nil {
		t.Fatal(err)
	}
	sk.MinL, sk.MaxL = 1, 1 // box blur needs 2 components
	if _, err := Synthesize(spec, sk, Options{Seed: 1, Timeout: time.Minute}); err != ErrUnsat {
		t.Errorf("want ErrUnsat, got %v", err)
	}
}
