package synth

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"porcupine/internal/kernels"
)

// ErrNotAttempted marks jobs a fail-fast batch skipped after an
// earlier failure; the wrapping error names the job that failed.
var ErrNotAttempted = errors.New("synth: not attempted")

// Job is one synthesis query in a batch compilation: a kernel name
// (for reporting), its specification and sketch, and per-job options.
type Job struct {
	Name   string
	Spec   *kernels.Spec
	Sketch *Sketch
	Opts   Options
}

// JobResult is the outcome of one Job.
type JobResult struct {
	Name   string
	Result *Result
	Err    error
	Wall   time.Duration
}

// Event is one progress notification from a batch run.
type Event struct {
	Name   string
	Kind   EventKind
	Err    error         // JobFinished with failure
	Result *Result       // JobFinished with success
	Wall   time.Duration // JobFinished
}

// EventKind enumerates batch progress notifications.
type EventKind int

const (
	// JobStarted fires when a job begins synthesis.
	JobStarted EventKind = iota
	// JobFinished fires when a job completes (Result or Err set;
	// Result.Cached distinguishes cache hits).
	JobFinished
)

// Scheduler runs batches of synthesis jobs under a global worker
// budget: up to Workers jobs are in flight at once, and each job's
// search runs with Workers/inflight work-stealing workers, so the
// budget holds whether the batch is wide (many easy kernels) or deep
// (one hard kernel saturating every worker).
type Scheduler struct {
	// Workers is the global worker budget (default: GOMAXPROCS).
	Workers int
	// Cache, when set, is shared by every job that does not carry its
	// own. It is safe for the concurrent writers of a batch.
	Cache *Cache
	// Progress, when set, receives events serially (never concurrently).
	Progress func(Event)
	// FailFast stops launching new jobs after the first failure (jobs
	// already in flight run to completion). Skipped jobs report an
	// error naming the failure that aborted the batch.
	FailFast bool
}

// Run compiles the jobs and returns their results in input order.
// Individual failures do not abort the batch; each JobResult carries
// its own error.
//
// Worker tokens are handed out greedily: every job takes one token to
// start (bounding total concurrency at Workers) and then claims as
// many idle tokens as its fair share of the jobs still unstarted
// allows. Jobs without an explicit Parallelism additionally re-claim
// idle tokens before every CEGIS search call, so a hard kernel that
// started while the batch was wide widens its work-stealing search as
// sibling kernels finish — the global budget chases the stragglers
// instead of idling.
func (s *Scheduler) Run(jobs []Job) []JobResult {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(jobs) == 0 {
		return nil
	}

	var progressMu sync.Mutex
	emit := func(ev Event) {
		if s.Progress == nil {
			return
		}
		progressMu.Lock()
		s.Progress(ev)
		progressMu.Unlock()
	}

	tokens := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		tokens <- struct{}{}
	}
	var unstarted atomic.Int32
	unstarted.Store(int32(len(jobs)))
	var abort atomic.Pointer[JobResult]

	results := make([]JobResult, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-tokens
			if first := abort.Load(); first != nil {
				tokens <- struct{}{}
				unstarted.Add(-1)
				results[i] = JobResult{Name: jobs[i].Name,
					Err: fmt.Errorf("%w after %s: %v", ErrNotAttempted, first.Name, first.Err)}
				return
			}
			// Fair share of the remaining budget, counting this job.
			remaining := int(unstarted.Add(-1)) + 1
			share := workers / remaining
			claimed := 1
			for claimed < share {
				select {
				case <-tokens:
					claimed++
				default:
					share = claimed // nothing idle; run with what we have
				}
			}
			defer func() {
				for j := 0; j < claimed; j++ {
					tokens <- struct{}{}
				}
			}()
			job := jobs[i]
			opts := job.Opts
			if opts.Parallelism <= 0 {
				opts.Parallelism = claimed
				// Chase freed budget: claim every idle token for the
				// duration of one search call, then return them.
				opts.growWorkers = func() (int, func()) {
					extra := 0
					for {
						select {
						case <-tokens:
							extra++
							continue
						default:
						}
						break
					}
					return extra, func() {
						for j := 0; j < extra; j++ {
							tokens <- struct{}{}
						}
					}
				}
			}
			if opts.Cache == nil {
				opts.Cache = s.Cache
			}
			emit(Event{Name: job.Name, Kind: JobStarted})
			start := time.Now()
			res, err := Synthesize(job.Spec, job.Sketch, opts)
			wall := time.Since(start)
			results[i] = JobResult{Name: job.Name, Result: res, Err: err, Wall: wall}
			if err != nil && s.FailFast {
				abort.CompareAndSwap(nil, &results[i])
			}
			emit(Event{Name: job.Name, Kind: JobFinished, Err: err, Result: res, Wall: wall})
		}(i)
	}
	wg.Wait()
	return results
}
