package synth

import (
	"sort"
	"testing"
	"time"

	"porcupine/internal/kernels"
	"porcupine/internal/quill"
)

func TestInferSketchBoxBlur(t *testing.T) {
	sk, err := InferSketch(kernels.BoxBlur())
	if err != nil {
		t.Fatal(err)
	}
	// The window offsets {1, 5, 6} must be present; the sum closure may
	// add intermediate offsets (e.g. 2 = 1+1) within the radius.
	have := map[int]bool{}
	for _, r := range sk.Rotations {
		have[r] = true
	}
	for _, r := range []int{1, 5, 6} {
		if !have[r] {
			t.Errorf("inferred rotations %v missing %d", sk.Rotations, r)
		}
	}
	for _, c := range sk.Components {
		if c.Op == quill.OpMulCtCt {
			t.Error("box blur needs no ct-ct multiply")
		}
		if c.Op == quill.OpSubCtCt {
			t.Error("box blur needs no subtraction")
		}
	}
}

func TestInferSketchDotProductDetectsReduction(t *testing.T) {
	sk, err := InferSketch(kernels.DotProduct())
	if err != nil {
		t.Fatal(err)
	}
	rots := append([]int(nil), sk.Rotations...)
	sort.Ints(rots)
	if len(rots) != 3 || rots[0] != 1 || rots[1] != 2 || rots[2] != 4 {
		t.Errorf("reduction not detected: rotations = %v, want tree [1 2 4]", rots)
	}
	foundMulPt := false
	for _, c := range sk.Components {
		if c.Op == quill.OpMulCtPt && c.P.Input == 0 {
			foundMulPt = true
		}
	}
	if !foundMulPt {
		t.Error("plaintext multiply component not inferred")
	}
}

func TestInferSketchGxComponents(t *testing.T) {
	sk, err := InferSketch(kernels.Gx())
	if err != nil {
		t.Fatal(err)
	}
	var hasSub, hasMul2 bool
	for _, c := range sk.Components {
		if c.Op == quill.OpSubCtCt {
			hasSub = true
		}
		if c.Op == quill.OpMulCtPt && c.P.Input == -1 && len(c.P.Const) == 1 && c.P.Const[0] == 2 {
			hasMul2 = true
		}
		if c.Op == quill.OpMulCtCt {
			t.Error("gx is linear; no ct-ct multiply expected")
		}
	}
	if !hasSub {
		t.Error("negative coefficients should infer a subtract component")
	}
	if !hasMul2 {
		t.Error("coefficient 2 should infer a multiply-by-2 component (the paper's sketch has it)")
	}
	// The data dependencies give {±1, ±4, ±6}; the sum closure must
	// also recover ±5 (needed by the separable solution).
	want := map[int]bool{}
	for _, r := range sk.Rotations {
		want[r] = true
	}
	for _, r := range []int{1, -1, 4, -4, 5, -5, 6, -6} {
		if !want[r] {
			t.Errorf("rotation %d missing from inferred set %v", r, sk.Rotations)
		}
	}
}

func TestInferSketchHammingNoConstMul(t *testing.T) {
	sk, err := InferSketch(kernels.HammingDistance())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sk.Components {
		if c.Op == quill.OpMulCtPt && c.P.Input == -1 {
			t.Errorf("square cross-term wrongly inferred a constant multiply: %+v", c)
		}
	}
}

func TestInferSketchPolynomialRegression(t *testing.T) {
	sk, err := InferSketch(kernels.PolynomialRegression())
	if err != nil {
		t.Fatal(err)
	}
	if len(sk.Rotations) != 0 {
		t.Errorf("element-wise kernel inferred rotations %v", sk.Rotations)
	}
	var hasMulCC, hasAddPt bool
	for _, c := range sk.Components {
		if c.Op == quill.OpMulCtCt {
			hasMulCC = true
		}
		if c.Op == quill.OpAddCtPt && c.P.Input == 0 {
			hasAddPt = true
		}
	}
	if !hasMulCC || !hasAddPt {
		t.Errorf("components incomplete: %+v", sk.Components)
	}
}

// TestInferredSketchesSynthesize runs the full pipeline from inferred
// sketches on the fast kernels: inference must preserve completeness.
func TestInferredSketchesSynthesize(t *testing.T) {
	names := []string{"box-blur", "dot-product", "hamming-distance", "linear-regression", "polynomial-regression"}
	if !testing.Short() {
		names = append(names, "l2-distance")
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			spec := kernels.ByName(name)
			sk, err := InferSketch(spec)
			if err != nil {
				t.Fatal(err)
			}
			// Inferred sketches are supersets of the hand-written ones
			// (both operands rotatable), so the search space is larger;
			// l2-distance needs several minutes of budget.
			opts := Options{Seed: 1, Timeout: 12 * time.Minute, SkipOptimize: true}
			res, err := Synthesize(spec, sk, opts)
			if err != nil {
				t.Fatalf("synthesis from inferred sketch: %v", err)
			}
			ok, err := spec.CheckProgram(res.Program)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Error("program from inferred sketch fails verification")
			}
		})
	}
}

func TestInferSketchEmptySpec(t *testing.T) {
	if _, err := InferSketch(&kernels.Spec{}); err == nil {
		t.Error("empty spec should fail")
	}
}
