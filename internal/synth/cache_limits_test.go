package synth

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"porcupine/internal/quill"
)

// putTestLowered stores n distinct lowered entries under synthetic
// keys and returns the keys in store order.
func putTestLowered(t *testing.T, c *Cache, n int) []string {
	t.Helper()
	l := &quill.Lowered{
		VecLen: 8, NumCtInputs: 1,
		Instrs: []quill.LInstr{{Op: quill.OpAddCtCt, Dst: 1, A: 0, B: 0}},
		Output: 1,
	}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064d", i)
		if err := c.PutLowered(keys[i], "test", l); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// TestCacheMaxEntriesEviction checks that the entry cap evicts in LRU
// order, in memory and on disk.
func TestCacheMaxEntriesEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCacheWithLimits(dir, Limits{MaxEntries: 3})
	if err != nil {
		t.Fatal(err)
	}
	keys := putTestLowered(t, c, 3)
	// Touch key 0 so key 1 becomes the LRU victim.
	if c.GetLowered(keys[0]) == nil {
		t.Fatal("expected hit on key 0")
	}
	// Store a new key to push the cache over the cap.
	l := &quill.Lowered{
		VecLen: 8, NumCtInputs: 1,
		Instrs: []quill.LInstr{{Op: quill.OpSubCtCt, Dst: 1, A: 0, B: 0}},
		Output: 1,
	}
	if err := c.PutLowered("ff"+keys[0][2:], "test", l); err != nil {
		t.Fatal(err)
	}
	if got := c.GetLowered(keys[1]); got != nil {
		t.Error("LRU entry (key 1) not evicted")
	}
	if c.GetLowered(keys[0]) == nil {
		t.Error("recently used entry (key 0) evicted")
	}
	if _, err := os.Stat(filepath.Join(dir, keys[1]+loweredSuffix)); !os.IsNotExist(err) {
		t.Errorf("evicted entry still on disk (stat err %v)", err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 3 {
		t.Errorf("disk holds %d entries, want 3", len(files))
	}
}

// TestCacheMaxBytesEviction checks the byte cap.
func TestCacheMaxBytesEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := putTestLowered(t, c, 4)
	// Measure one entry's size, then bound the cache to about two.
	info, err := os.Stat(filepath.Join(dir, keys[0]+loweredSuffix))
	if err != nil {
		t.Fatal(err)
	}
	c.SetLimits(Limits{MaxBytes: 2*info.Size() + info.Size()/2})
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 2 {
		t.Fatalf("byte cap left %d entries, want 2", len(files))
	}
	// Oldest entries went first.
	if c.GetLowered(keys[0]) != nil || c.GetLowered(keys[1]) != nil {
		t.Error("oldest entries survived byte-cap eviction")
	}
	if c.GetLowered(keys[3]) == nil {
		t.Error("newest entry evicted")
	}
}

// TestCacheLimitsRestartScan checks that a fresh handle over an
// existing directory picks up prior entries (by mtime) and bounds
// them.
func TestCacheLimitsRestartScan(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := putTestLowered(t, c1, 5)
	// Age the files so mtime ordering is deterministic.
	for i, k := range keys {
		mt := time.Now().Add(time.Duration(i-10) * time.Minute)
		os.Chtimes(filepath.Join(dir, k+loweredSuffix), mt, mt)
	}

	c2, err := OpenCacheWithLimits(dir, Limits{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 2 {
		t.Fatalf("restart scan left %d entries, want 2", len(files))
	}
	for _, k := range keys[:3] {
		if c2.GetLowered(k) != nil {
			t.Errorf("old entry %s... survived restart eviction", k[:8])
		}
	}
	for _, k := range keys[3:] {
		if c2.GetLowered(k) == nil {
			t.Errorf("recent entry %s... evicted on restart", k[:8])
		}
	}
}

// TestCacheUnlimitedByDefault checks that caches without SetLimits
// never evict.
func TestCacheUnlimitedByDefault(t *testing.T) {
	c := NewMemCache()
	keys := putTestLowered(t, c, 50)
	for _, k := range keys {
		if c.GetLowered(k) == nil {
			t.Fatalf("unbounded cache evicted %s...", k[:8])
		}
	}
}

// TestCacheMemOnlyLimits checks that memory-only caches honor the
// entry cap too.
func TestCacheMemOnlyLimits(t *testing.T) {
	c := NewMemCache()
	c.SetLimits(Limits{MaxEntries: 2})
	keys := putTestLowered(t, c, 5)
	alive := 0
	for _, k := range keys {
		if c.GetLowered(k) != nil {
			alive++
		}
	}
	if alive != 2 {
		t.Errorf("mem-only cache holds %d entries under a cap of 2", alive)
	}
}

// TestCacheLimitsAppliedToResidentEntries checks that SetLimits bounds
// entries that were already resident in memory before the limits were
// enabled (no disk backing to rescan).
func TestCacheLimitsAppliedToResidentEntries(t *testing.T) {
	c := NewMemCache()
	keys := putTestLowered(t, c, 20)
	c.SetLimits(Limits{MaxEntries: 4})
	alive := 0
	for _, k := range keys {
		if c.GetLowered(k) != nil {
			alive++
		}
	}
	if alive != 4 {
		t.Errorf("pre-existing resident entries not bounded: %d alive under a cap of 4", alive)
	}
}
