package synth

import (
	"fmt"
	"sort"

	"porcupine/internal/kernels"
	"porcupine/internal/quill"
	"porcupine/internal/symbolic"
)

// InferSketch derives a local-rotate sketch directly from a kernel
// specification, automating the one manual input Porcupine requires
// (§4.4 notes sketch writing is "relatively simple" because the
// components can be extracted from the specification — this function
// performs that extraction):
//
//   - component multiset: ct-ct multiply when any output polynomial has
//     degree ≥ 2 in ciphertext variables; subtract when coefficients
//     are negative (> t/2); multiply-by-constant for small repeated
//     coefficient magnitudes; ct-pt components per referenced
//     plaintext input; add always;
//   - rotation restriction: the slot displacements between input
//     elements and the cared outputs that reference them, collapsed to
//     the power-of-two tree restriction when the kernel is a
//     single-slot reduction (§6.1);
//   - operand kinds: rotation holes on add/subtract, plain holes on
//     multiplies, matching the paper's sketches.
//
// The inferred sketch describes a superset of the hand-written ones,
// so synthesis from it is complete but can be slower.
func InferSketch(spec *kernels.Spec) (*Sketch, error) {
	if len(spec.Out) == 0 {
		return nil, fmt.Errorf("synth: InferSketch: spec has no outputs")
	}
	// Classify variables: ciphertext inputs own the first variables.
	numCtVars := 0
	for _, l := range spec.Ct {
		numCtVars += l.NumElems()
	}
	// ptOwner[v] = plaintext input index owning variable v, or -1.
	ptOwner := make([]int, spec.NumVars)
	for v := range ptOwner {
		ptOwner[v] = -1
	}
	base := numCtVars
	for i, l := range spec.Pt {
		for e := 0; e < l.NumElems(); e++ {
			ptOwner[base+e] = i
		}
		base += l.NumElems()
	}
	// varSlot[v] = slot of a ciphertext variable.
	varSlot := make([]int, numCtVars)
	vi := 0
	for _, l := range spec.Ct {
		for _, slot := range l.SlotOf {
			varSlot[vi] = slot
			vi++
		}
	}

	var (
		needMulCC  bool
		needSub    bool
		ptMulUsed  = map[int]bool{}
		ptAddUsed  = map[int]bool{}
		constMuls  = map[int64]bool{}
		offsets    = map[int]bool{}
		allOffsets []int
	)
	half := symbolic.Modulus / 2

	for outIdx, p := range spec.Out {
		outSlot := spec.OutSlots[outIdx]
		for _, term := range symbolic.Terms(p) {
			ctDeg := 0
			ptInputs := map[int]bool{}
			for v, e := range term.Exps {
				if v < numCtVars {
					ctDeg += e
					off := varSlot[v] - outSlot
					if !offsets[off] {
						offsets[off] = true
						allOffsets = append(allOffsets, off)
					}
				} else {
					ptInputs[ptOwner[v]] = true
				}
			}
			if ctDeg >= 2 {
				needMulCC = true
			}
			coeff := term.Coeff
			if coeff > half {
				needSub = true
				coeff = symbolic.Modulus - coeff
			}
			// Constant-multiply components are inferred only from
			// linear terms: a coefficient on a degree-2 monomial (like
			// the -2ab cross term of a square) arises from the
			// multiplication itself, not from an explicit scale.
			if coeff >= 2 && coeff <= 16 && ctDeg == 1 {
				constMuls[int64(coeff)] = true
			}
			switch {
			case ctDeg >= 1 && len(ptInputs) > 0:
				for pi := range ptInputs {
					ptMulUsed[pi] = true
				}
			case ctDeg == 0 && len(ptInputs) > 0:
				for pi := range ptInputs {
					ptAddUsed[pi] = true
				}
			}
		}
	}

	rotations := inferRotations(spec, allOffsets)

	rotKind := KindCt
	if len(rotations) > 0 {
		rotKind = KindCtRot
	}
	// Single-slot reductions fold with add(rotated, plain) and do any
	// subtraction element-wise before reducing, so the rotation hole
	// is only needed on one add operand — the same shape the paper's
	// reduction sketches use. Stencils keep symmetric rotation holes.
	reduction := len(spec.OutSlots) == 1
	var comps []Component
	if reduction {
		comps = append(comps, Component{Op: quill.OpAddCtCt, A: rotKind, B: KindCt})
		if needSub {
			comps = append(comps, Component{Op: quill.OpSubCtCt, A: KindCt, B: KindCt})
		}
	} else {
		comps = append(comps, Component{Op: quill.OpAddCtCt, A: rotKind, B: rotKind})
		if needSub {
			comps = append(comps, Component{Op: quill.OpSubCtCt, A: rotKind, B: rotKind})
		}
	}
	if needMulCC {
		comps = append(comps, Component{Op: quill.OpMulCtCt, A: KindCt, B: KindCt})
	}
	for c := range constMuls {
		comps = append(comps, Component{Op: quill.OpMulCtPt, A: KindCt,
			P: quill.PtRef{Input: -1, Const: []int64{c}}})
	}
	var ptMul, ptAdd []int
	for pi := range ptMulUsed {
		ptMul = append(ptMul, pi)
	}
	for pi := range ptAddUsed {
		ptAdd = append(ptAdd, pi)
	}
	sort.Ints(ptMul)
	sort.Ints(ptAdd)
	for _, pi := range ptMul {
		comps = append(comps, Component{Op: quill.OpMulCtPt, A: KindCt, P: quill.PtRef{Input: pi}})
	}
	for _, pi := range ptAdd {
		comps = append(comps, Component{Op: quill.OpAddCtPt, A: KindCt, P: quill.PtRef{Input: pi}})
	}

	minL := inferMinL(spec, len(allOffsets), needMulCC, needSub, len(ptMul) > 0)
	return &Sketch{
		Components: comps,
		Rotations:  rotations,
		MinL:       minL,
		MaxL:       minL + 5,
	}, nil
}

// inferMinL estimates the smallest plausible component count, so
// iterative deepening skips sizes whose (expensive) unsat proofs are
// foregone conclusions. For single-slot reductions over n
// contributions at least log2(n) combining operations are needed, plus
// one per required operator class. This is a heuristic starting point:
// callers wanting a guaranteed component-minimal result can reset MinL
// to 1.
func inferMinL(spec *kernels.Spec, numOffsets int, needMul, needSub, needPtMul bool) int {
	minL := 1
	if len(spec.OutSlots) == 1 {
		// Reduction: log2(contributing slots) combining steps plus one
		// component per required operator class. numOffsets counts the
		// distinct contributing slots (zero offset included).
		if numOffsets < 1 {
			numOffsets = 1
		}
		minL = ceilLog2(numOffsets)
		if needMul {
			minL++
		}
		if needSub {
			minL++
		}
		if needPtMul {
			minL++
		}
	} else {
		// Stencil / element-wise: each component at most doubles the
		// number of monomials per slot (conservatively capped — ct-ct
		// multiplies can merge many monomials at once).
		maxTerms := 1
		for _, p := range spec.Out {
			if n := p.NumTerms(); n > maxTerms {
				maxTerms = n
			}
		}
		minL = ceilLog2(maxTerms)
		if minL > 3 {
			minL = 3
		}
	}
	if minL < 1 {
		minL = 1
	}
	return minL
}

func ceilLog2(n int) int {
	l := 0
	for (1 << l) < n {
		l++
	}
	return l
}

// inferRotations turns the observed input→output slot displacements
// into a rotation restriction. A single-slot output whose offsets form
// a dense prefix is recognized as an internal reduction and collapsed
// to the §6.1 power-of-two tree restriction. For multi-output
// (stencil-like) kernels the set is closed under one-step sums within
// the observed radius: a separable implementation reaches window
// elements through intermediate offsets that need not carry data
// dependencies themselves (e.g. Gx's zero middle column still rotates
// by ±5).
func inferRotations(spec *kernels.Spec, offsets []int) []int {
	var nonzero []int
	for _, o := range offsets {
		if o != 0 {
			nonzero = append(nonzero, o)
		}
	}
	sort.Ints(nonzero)
	if len(nonzero) == 0 {
		return nil
	}
	if len(spec.OutSlots) == 1 {
		dense := true
		for i, o := range nonzero {
			if o != i+1 {
				dense = false
				break
			}
		}
		if dense {
			n := len(nonzero) + 1
			if n&(n-1) == 0 {
				return TreeReductionRotations(n)
			}
		}
		return nonzero
	}
	// One-step sum closure bounded by the observed radius.
	radius := 0
	for _, o := range nonzero {
		if a := abs(o); a > radius {
			radius = a
		}
	}
	in := map[int]bool{}
	for _, o := range nonzero {
		in[o] = true
	}
	for _, a := range nonzero {
		for _, b := range nonzero {
			s := a + b
			if s != 0 && abs(s) <= radius {
				in[s] = true
			}
		}
	}
	var out []int
	for o := range in {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
