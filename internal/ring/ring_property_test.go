package ring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"porcupine/internal/mathutil"
)

// TestNTTIsLinear: NTT(a+b) == NTT(a)+NTT(b) and NTT(c·a) == c·NTT(a).
func TestNTTIsLinear(t *testing.T) {
	r := testRing(t, 64, 2)
	f := func(seed int64, scalar uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randPoly(r, rng), randPoly(r, rng)
		sum := r.NewPoly()
		r.Add(sum, a, b)
		r.NTT(sum)
		na, nb := r.Copy(a), r.Copy(b)
		r.NTT(na)
		r.NTT(nb)
		nsum := r.NewPoly()
		r.Add(nsum, na, nb)
		if !r.Equal(sum, nsum) {
			return false
		}
		s := uint64(scalar)
		scaled := r.NewPoly()
		r.MulScalar(scaled, a, s)
		r.NTT(scaled)
		nscaled := r.NewPoly()
		r.MulScalar(nscaled, na, s)
		return r.Equal(scaled, nscaled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMulPolyRingLaws: multiplication is commutative, associative and
// distributes over addition.
func TestMulPolyRingLaws(t *testing.T) {
	r := testRing(t, 32, 1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		a, b, c := randPoly(r, rng), randPoly(r, rng), randPoly(r, rng)
		ab, ba := r.NewPoly(), r.NewPoly()
		r.MulPoly(ab, a, b)
		r.MulPoly(ba, b, a)
		if !r.Equal(ab, ba) {
			t.Fatal("multiplication not commutative")
		}
		abc1, abc2, bc := r.NewPoly(), r.NewPoly(), r.NewPoly()
		r.MulPoly(abc1, ab, c)
		r.MulPoly(bc, b, c)
		r.MulPoly(abc2, a, bc)
		if !r.Equal(abc1, abc2) {
			t.Fatal("multiplication not associative")
		}
		sum, aSum, prodSum := r.NewPoly(), r.NewPoly(), r.NewPoly()
		r.Add(sum, b, c)
		r.MulPoly(aSum, a, sum)
		ac := r.NewPoly()
		r.MulPoly(ac, a, c)
		r.Add(prodSum, ab, ac)
		if !r.Equal(aSum, prodSum) {
			t.Fatal("distributivity fails")
		}
	}
}

// TestMulByXShifts: multiplying by X rotates coefficients negacyclically.
func TestMulByXShifts(t *testing.T) {
	r := testRing(t, 16, 1)
	a := r.NewPoly()
	r.SetSmall(a, []int64{1, 2, 3})
	x := r.NewPoly()
	x.Coeffs[0][1] = 1 // the monomial X
	prod := r.NewPoly()
	r.MulPoly(prod, a, x)
	// X·(1 + 2X + 3X²) = X + 2X² + 3X³.
	want := r.NewPoly()
	r.SetSmall(want, []int64{0, 1, 2, 3})
	if !r.Equal(prod, want) {
		t.Error("multiplication by X wrong")
	}
	// X^16 == -1: multiply X^15 by X.
	x15 := r.NewPoly()
	x15.Coeffs[0][15] = 1
	r.MulPoly(prod, x15, x)
	wantNeg := r.NewPoly()
	r.SetSmall(wantNeg, []int64{-1})
	if !r.Equal(prod, wantNeg) {
		t.Error("negacyclic wraparound wrong: X^16 != -1")
	}
}

// TestMulCoeffsAndAdd accumulates correctly.
func TestMulCoeffsAndAdd(t *testing.T) {
	r := testRing(t, 32, 2)
	rng := rand.New(rand.NewSource(8))
	a, b := randPoly(r, rng), randPoly(r, rng)
	acc := r.NewPoly()
	r.MulCoeffs(acc, a, b)
	r.MulCoeffsAndAdd(acc, a, b)
	twice := r.NewPoly()
	r.MulCoeffs(twice, a, b)
	r.Add(twice, twice, twice)
	if !r.Equal(acc, twice) {
		t.Error("MulCoeffsAndAdd wrong")
	}
}

// TestAutomorphismOrder: the rotation generator 3 has order N/2 in
// Z_2N^* / {±1}, so N/2 successive applications are the identity.
func TestAutomorphismOrder(t *testing.T) {
	r := testRing(t, 32, 1)
	rng := rand.New(rand.NewSource(9))
	p := randPoly(r, rng)
	cur := r.Copy(p)
	next := r.NewPoly()
	for i := 0; i < r.N/2; i++ {
		r.Automorphism(next, cur, 3)
		cur, next = next, cur
	}
	if !r.Equal(cur, p) {
		t.Error("3^(N/2) automorphism should be the identity")
	}
}

// TestUniformSamplerIsReproducible with the same seed.
func TestUniformSamplerIsReproducible(t *testing.T) {
	r := testRing(t, 32, 1)
	p1, p2 := r.NewPoly(), r.NewPoly()
	if err := NewTestSampler(r, 3).Uniform(p1); err != nil {
		t.Fatal(err)
	}
	if err := NewTestSampler(r, 3).Uniform(p2); err != nil {
		t.Fatal(err)
	}
	if !r.Equal(p1, p2) {
		t.Error("test sampler not deterministic")
	}
}

func TestShoupMulMatchesMulMod(t *testing.T) {
	p := uint64(1152921504606830593)
	f := func(a, w uint64) bool {
		a %= p
		w %= p
		return shoupMul(a, w, shoupPrecomp(w, p), p) == mathutil.MulMod(a, w, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
