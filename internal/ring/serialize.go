package ring

import (
	"encoding/binary"
	"fmt"
)

// Binary polynomial encoding: the shared poly wire layout used by the
// bfv object serializers and the plan-bundle format (internal/wire).
//
// A polynomial is encoded against a known Ring, so the layout carries
// a small shape header for validation and then the raw residues in
// bulk:
//
//	u32 numPrimes | u32 degree | numPrimes*degree × u64 (little-endian)
//
// Decoding validates the shape against the ring and that every residue
// is reduced modulo its prime, so corrupted or hostile inputs yield an
// error instead of a polynomial that would silently break the NTT
// invariants downstream.

// PolyWireSize returns the encoded size in bytes of one polynomial of
// this ring.
func (r *Ring) PolyWireSize() int {
	return 8 + len(r.Primes)*r.N*8
}

// AppendBinary appends the binary encoding of p to buf and returns
// the extended buffer. The shape header is taken from the polynomial
// itself, so encoding needs no ring; decoding (Ring.ReadPoly)
// validates it.
func (p *Poly) AppendBinary(buf []byte) []byte {
	n := 0
	if len(p.Coeffs) > 0 {
		n = len(p.Coeffs[0])
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Coeffs)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	// Bulk append: grow once, then fill.
	off := len(buf)
	buf = append(buf, make([]byte, len(p.Coeffs)*n*8)...)
	for _, c := range p.Coeffs {
		for _, x := range c {
			binary.LittleEndian.PutUint64(buf[off:], x)
			off += 8
		}
	}
	return buf
}

// ReadPoly decodes one polynomial of this ring from the front of data,
// returning the polynomial and the number of bytes consumed. The shape
// must match the ring exactly and every residue must be reduced modulo
// its prime.
func (r *Ring) ReadPoly(data []byte) (*Poly, int, error) {
	if len(data) < 8 {
		return nil, 0, fmt.Errorf("ring: truncated poly header")
	}
	k := int(binary.LittleEndian.Uint32(data))
	n := int(binary.LittleEndian.Uint32(data[4:]))
	if k != len(r.Primes) {
		return nil, 0, fmt.Errorf("ring: poly has %d prime components, ring has %d", k, len(r.Primes))
	}
	if n != r.N {
		return nil, 0, fmt.Errorf("ring: poly degree %d, ring degree %d", n, r.N)
	}
	need := 8 + k*n*8
	if len(data) < need {
		return nil, 0, fmt.Errorf("ring: truncated poly body (%d bytes, want %d)", len(data), need)
	}
	p := r.NewPoly()
	off := 8
	for i, prime := range r.Primes {
		c := p.Coeffs[i]
		for j := 0; j < n; j++ {
			x := binary.LittleEndian.Uint64(data[off:])
			if x >= prime {
				return nil, 0, fmt.Errorf("ring: residue %d out of range for prime %d", x, prime)
			}
			c[j] = x
			off += 8
		}
	}
	return p, need, nil
}
