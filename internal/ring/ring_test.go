package ring

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"porcupine/internal/mathutil"
)

func testRing(t testing.TB, n, nPrimes int) *Ring {
	t.Helper()
	primes, err := mathutil.GenerateNTTPrimes(45, n, nPrimes)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(n, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func randPoly(r *Ring, rng *rand.Rand) *Poly {
	p := r.NewPoly()
	for i, pr := range r.Primes {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = rng.Uint64() % pr
		}
	}
	return p
}

func TestNewRingErrors(t *testing.T) {
	if _, err := NewRing(100, []uint64{65537}); err == nil {
		t.Error("non-power-of-two degree should fail")
	}
	if _, err := NewRing(64, nil); err == nil {
		t.Error("empty basis should fail")
	}
	if _, err := NewRing(64, []uint64{65536}); err == nil {
		t.Error("composite modulus should fail")
	}
	if _, err := NewRing(65536, []uint64{65537}); err == nil {
		t.Error("prime not ≡ 1 mod 2N should fail")
	}
}

func TestNTTRoundTrip(t *testing.T) {
	r := testRing(t, 256, 2)
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 10; k++ {
		p := randPoly(r, rng)
		q := r.Copy(p)
		r.NTT(q)
		r.INTT(q)
		if !r.Equal(p, q) {
			t.Fatal("INTT(NTT(p)) != p")
		}
	}
}

func TestNTTRoundTripProperty(t *testing.T) {
	r := testRing(t, 64, 1)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPoly(r, rng)
		q := r.Copy(p)
		r.NTT(q)
		r.INTT(q)
		return r.Equal(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// naiveNegacyclicMul computes a*b mod (X^N+1) mod p by schoolbook.
func naiveNegacyclicMul(a, b []uint64, p uint64) []uint64 {
	n := len(a)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			prod := mathutil.MulMod(a[i], b[j], p)
			k := i + j
			if k < n {
				out[k] = mathutil.AddMod(out[k], prod, p)
			} else {
				out[k-n] = mathutil.SubMod(out[k-n], prod, p)
			}
		}
	}
	return out
}

func TestMulPolyAgainstSchoolbook(t *testing.T) {
	r := testRing(t, 64, 2)
	rng := rand.New(rand.NewSource(2))
	for k := 0; k < 5; k++ {
		a := randPoly(r, rng)
		b := randPoly(r, rng)
		dst := r.NewPoly()
		r.MulPoly(dst, a, b)
		for i, p := range r.Primes {
			want := naiveNegacyclicMul(a.Coeffs[i], b.Coeffs[i], p)
			for j := range want {
				if dst.Coeffs[i][j] != want[j] {
					t.Fatalf("prime %d coeff %d: got %d want %d", i, j, dst.Coeffs[i][j], want[j])
				}
			}
		}
	}
}

func TestAddSubNegLaws(t *testing.T) {
	r := testRing(t, 128, 2)
	rng := rand.New(rand.NewSource(3))
	a, b := randPoly(r, rng), randPoly(r, rng)
	sum, diff, back := r.NewPoly(), r.NewPoly(), r.NewPoly()
	r.Add(sum, a, b)
	r.Sub(diff, sum, b)
	if !r.Equal(diff, a) {
		t.Error("(a+b)-b != a")
	}
	r.Neg(back, a)
	r.Add(back, back, a)
	zero := r.NewPoly()
	if !r.Equal(back, zero) {
		t.Error("a + (-a) != 0")
	}
	// Commutativity.
	sum2 := r.NewPoly()
	r.Add(sum2, b, a)
	if !r.Equal(sum, sum2) {
		t.Error("a+b != b+a")
	}
}

func TestMulScalar(t *testing.T) {
	r := testRing(t, 64, 2)
	rng := rand.New(rand.NewSource(4))
	a := randPoly(r, rng)
	d1, d2, d3 := r.NewPoly(), r.NewPoly(), r.NewPoly()
	r.MulScalar(d1, a, 7)
	// 7a == a+a+a+a+a+a+a
	r.CopyInto(d2, a)
	for i := 0; i < 6; i++ {
		r.Add(d2, d2, a)
	}
	if !r.Equal(d1, d2) {
		t.Error("MulScalar(7) != 7 additions")
	}
	r.MulScalarBig(d3, a, big.NewInt(7))
	if !r.Equal(d1, d3) {
		t.Error("MulScalarBig disagrees with MulScalar")
	}
}

func TestAutomorphismComposition(t *testing.T) {
	r := testRing(t, 64, 1)
	rng := rand.New(rand.NewSource(5))
	p := randPoly(r, rng)
	m := uint64(2 * r.N)
	g1, g2 := uint64(3), uint64(5)
	a1, a2, a3 := r.NewPoly(), r.NewPoly(), r.NewPoly()
	r.Automorphism(a1, p, g1)
	r.Automorphism(a2, a1, g2)
	r.Automorphism(a3, p, g1*g2%m)
	if !r.Equal(a2, a3) {
		t.Error("automorphism composition law violated")
	}
	// Identity automorphism.
	id := r.NewPoly()
	r.Automorphism(id, p, 1)
	if !r.Equal(id, p) {
		t.Error("automorphism by g=1 is not identity")
	}
}

func TestAutomorphismIsRingHom(t *testing.T) {
	r := testRing(t, 64, 1)
	rng := rand.New(rand.NewSource(6))
	a, b := randPoly(r, rng), randPoly(r, rng)
	g := uint64(9)
	prod, autProd := r.NewPoly(), r.NewPoly()
	autA, autB, prodAut := r.NewPoly(), r.NewPoly(), r.NewPoly()
	r.MulPoly(prod, a, b)
	r.Automorphism(autProd, prod, g)
	r.Automorphism(autA, a, g)
	r.Automorphism(autB, b, g)
	r.MulPoly(prodAut, autA, autB)
	if !r.Equal(autProd, prodAut) {
		t.Error("automorphism does not commute with multiplication")
	}
}

func TestGaloisElements(t *testing.T) {
	r := testRing(t, 64, 1)
	if r.GaloisElementForRotation(0) != 1 {
		t.Error("rotation by 0 should be identity element")
	}
	if r.GaloisElementForRotation(1) != 3 {
		t.Error("rotation by 1 should be 3")
	}
	// Rotation by rowSize is identity (full cycle).
	if g := r.GaloisElementForRotation(r.N / 2); g != 1 {
		// 3^(N/2) mod 2N generates the cyclic rotation group of order N/2.
		t.Errorf("rotation by rowSize = %d, want 1", g)
	}
	if r.GaloisElementRowSwap() != uint64(2*r.N-1) {
		t.Error("row swap element wrong")
	}
	// Negative rotations normalize.
	if r.GaloisElementForRotation(-1) != r.GaloisElementForRotation(r.N/2-1) {
		t.Error("negative rotation not normalized")
	}
}

func TestSetSmallAndCoeffBig(t *testing.T) {
	r := testRing(t, 64, 2)
	p := r.NewPoly()
	r.SetSmall(p, []int64{5, -3, 0, 7})
	var x big.Int
	if r.CoeffBigCentered(&x, p, 0); x.Int64() != 5 {
		t.Errorf("coeff 0 = %s", &x)
	}
	if r.CoeffBigCentered(&x, p, 1); x.Int64() != -3 {
		t.Errorf("coeff 1 = %s, want -3", &x)
	}
	if r.CoeffBigCentered(&x, p, 63); x.Int64() != 0 {
		t.Errorf("coeff 63 = %s, want 0", &x)
	}
	r.SetCoeffBig(p, 2, big.NewInt(-11))
	if r.CoeffBigCentered(&x, p, 2); x.Int64() != -11 {
		t.Errorf("SetCoeffBig round trip = %s", &x)
	}
}

func TestSamplerDistributions(t *testing.T) {
	r := testRing(t, 256, 2)
	s := NewTestSampler(r, 42)
	tern := r.NewPoly()
	if err := s.Ternary(tern); err != nil {
		t.Fatal(err)
	}
	var x big.Int
	counts := map[int64]int{}
	for j := 0; j < r.N; j++ {
		r.CoeffBigCentered(&x, tern, j)
		v := x.Int64()
		if v < -1 || v > 1 {
			t.Fatalf("ternary coefficient %d out of range", v)
		}
		counts[v]++
	}
	for _, v := range []int64{-1, 0, 1} {
		if counts[v] < r.N/6 {
			t.Errorf("ternary value %d underrepresented: %d/%d", v, counts[v], r.N)
		}
	}

	errPoly := r.NewPoly()
	if err := s.Error(errPoly); err != nil {
		t.Fatal(err)
	}
	sumSq := 0.0
	for j := 0; j < r.N; j++ {
		r.CoeffBigCentered(&x, errPoly, j)
		v := float64(x.Int64())
		if v < -21 || v > 21 {
			t.Fatalf("CBD sample %v out of range", v)
		}
		sumSq += v * v
	}
	variance := sumSq / float64(r.N)
	if variance < 5 || variance > 18 {
		t.Errorf("CBD variance %.2f far from 10.5", variance)
	}

	u := r.NewPoly()
	if err := s.Uniform(u); err != nil {
		t.Fatal(err)
	}
	for i, pr := range r.Primes {
		for j := range u.Coeffs[i] {
			if u.Coeffs[i][j] >= pr {
				t.Fatal("uniform sample out of range")
			}
		}
	}
}

func TestInfNormCenteredLog2(t *testing.T) {
	r := testRing(t, 64, 2)
	p := r.NewPoly()
	if got := r.InfNormCenteredLog2(p); got != 0 {
		t.Errorf("norm of zero poly = %v", got)
	}
	r.SetSmall(p, []int64{0, 16})
	if got := r.InfNormCenteredLog2(p); got != 4 {
		t.Errorf("norm log2 = %v, want 4", got)
	}
	r.SetSmall(p, []int64{-32, 16})
	if got := r.InfNormCenteredLog2(p); got != 5 {
		t.Errorf("norm log2 = %v, want 5", got)
	}
}

func BenchmarkNTT(b *testing.B) {
	for _, n := range []int{2048, 4096, 8192} {
		primes, _ := mathutil.GenerateNTTPrimes(45, n, 1)
		r, _ := NewRing(n, primes)
		rng := rand.New(rand.NewSource(1))
		p := randPoly(r, rng)
		b.Run(benchName("N", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.NTT(p)
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
