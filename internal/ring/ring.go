// Package ring implements arithmetic in the quotient ring
// R_Q = Z_Q[X]/(X^N + 1) for a power-of-two degree N and a modulus Q
// given as a product of word-sized NTT-friendly primes (an RNS basis).
//
// Polynomials are stored in residue-number-system form: one []uint64
// coefficient vector per prime. All per-prime operations use the
// negacyclic number-theoretic transform so multiplication is O(N log N).
//
// This package is the arithmetic substrate for the BFV implementation
// in internal/bfv; it corresponds to the polynomial layer of the SEAL
// library used by the paper.
package ring

import (
	"fmt"
	"math/big"
	"sync"

	"porcupine/internal/mathutil"
)

// Ring holds the precomputed tables for R_Q with a fixed degree and
// RNS prime basis.
type Ring struct {
	N      int
	LogN   int
	Primes []uint64

	tables []*nttTable
	crt    *mathutil.CRTReconstructor

	// workers bounds the per-prime parallelism of transforms and
	// pointwise loops (1 = serial). See SetWorkers.
	workers int

	// pool recycles *Poly scratch buffers (see GetPoly / PutPoly) to
	// keep the evaluator hot path free of large allocations.
	pool sync.Pool

	// decompPool recycles key-switching Decomposition scratch (see
	// GetDecomposition / PutDecomposition).
	decompPool sync.Pool

	// permCache caches NTT-domain automorphism permutation tables per
	// Galois element (uint64 -> []uint32; see NTTPermutation).
	permCache sync.Map

	// autoCache caches coefficient-domain automorphism tables per
	// Galois element (uint64 -> []uint32; see AutomorphismTable).
	autoCache sync.Map

	// lazyAccumOK reports that a K-term inner product of reduced
	// operands fits a 128-bit accumulator with the final Barrett
	// reduction still valid: K · max(p) < 2^64. See MulAccumLazy.
	lazyAccumOK bool
}

// Options configures optional Ring behavior.
type Options struct {
	// Workers is the maximum number of goroutines used per ring
	// operation (NTT/INTT and pointwise loops parallelize across the
	// prime basis; base extension across coefficient chunks). Values
	// <= 1 mean serial execution.
	Workers int
}

// nttTable holds per-prime negacyclic NTT twiddle factors in
// bit-reversed order, following the Harvey/SEAL layout. Shoup
// precomputations (floor(w·2^64/p)) accelerate the butterfly
// multiplications.
type nttTable struct {
	p         uint64
	bar       mathutil.Barrett // Barrett constant of p for variable×variable products
	psiRev    []uint64         // powers of psi (2N-th root) in bit-reversed order
	psiRevS   []uint64         // Shoup companions of psiRev
	ipsiRev   []uint64         // powers of psi^-1 in bit-reversed order
	ipsiRevS  []uint64         // Shoup companions of ipsiRev
	nInv      uint64           // N^-1 mod p
	nInvShoup uint64
	psi       uint64
}

// shoupPrecomp returns floor(w * 2^64 / p). Requires w < p.
func shoupPrecomp(w, p uint64) uint64 { return mathutil.ShoupPrecomp(w, p) }

// shoupMul returns (a * w) mod p given wS = shoupPrecomp(w, p).
// Requires w < p < 2^63; a may be any 64-bit value.
func shoupMul(a, w, wS, p uint64) uint64 { return mathutil.ShoupMul(a, w, wS, p) }

// NewRing constructs R_Q for the given degree and prime basis. The
// degree must be a power of two and every prime must satisfy
// p ≡ 1 (mod 2N). Operations run serially; see NewRingWithOptions.
func NewRing(n int, primes []uint64) (*Ring, error) {
	return NewRingWithOptions(n, primes, Options{})
}

// NewRingWithOptions is NewRing with explicit Options.
func NewRingWithOptions(n int, primes []uint64, opts Options) (*Ring, error) {
	logN, err := mathutil.Log2(n)
	if err != nil {
		return nil, fmt.Errorf("ring: %w", err)
	}
	if len(primes) == 0 {
		return nil, fmt.Errorf("ring: empty prime basis")
	}
	r := &Ring{N: n, LogN: logN, Primes: append([]uint64(nil), primes...), workers: opts.Workers}
	r.tables = make([]*nttTable, len(primes))
	for i, p := range primes {
		tbl, err := newNTTTable(n, logN, p)
		if err != nil {
			return nil, err
		}
		r.tables[i] = tbl
	}
	r.crt, err = mathutil.NewCRTReconstructor(primes)
	if err != nil {
		return nil, err
	}
	maxP := uint64(0)
	for _, p := range primes {
		if p > maxP {
			maxP = p
		}
	}
	r.lazyAccumOK = maxP <= ^uint64(0)/uint64(len(primes))
	return r, nil
}

func newNTTTable(n, logN int, p uint64) (*nttTable, error) {
	if p >= uint64(1)<<62 {
		// The lazy-reduction butterflies keep intermediates in [0, 4p),
		// which must fit in a word.
		return nil, fmt.Errorf("ring: modulus %d exceeds the 2^62 bound of the lazy-reduction NTT", p)
	}
	if !mathutil.IsPrime(p) {
		return nil, fmt.Errorf("ring: modulus %d is not prime", p)
	}
	if (p-1)%uint64(2*n) != 0 {
		return nil, fmt.Errorf("ring: prime %d is not ≡ 1 mod 2N (N=%d)", p, n)
	}
	psi, err := mathutil.PrimitiveNthRoot(uint64(2*n), p)
	if err != nil {
		return nil, err
	}
	ipsi, err := mathutil.InvMod(psi, p)
	if err != nil {
		return nil, err
	}
	nInv, err := mathutil.InvMod(uint64(n), p)
	if err != nil {
		return nil, err
	}
	tbl := &nttTable{p: p, bar: mathutil.NewBarrett(p), nInv: nInv, nInvShoup: shoupPrecomp(nInv, p), psi: psi}
	tbl.psiRev = make([]uint64, n)
	tbl.psiRevS = make([]uint64, n)
	tbl.ipsiRev = make([]uint64, n)
	tbl.ipsiRevS = make([]uint64, n)
	fw, iw := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		j := mathutil.BitReverse(uint64(i), logN)
		tbl.psiRev[j] = fw
		tbl.psiRevS[j] = shoupPrecomp(fw, p)
		tbl.ipsiRev[j] = iw
		tbl.ipsiRevS[j] = shoupPrecomp(iw, p)
		fw = mathutil.MulMod(fw, psi, p)
		iw = mathutil.MulMod(iw, ipsi, p)
	}
	return tbl, nil
}

// Poly is a polynomial in R_Q stored as per-prime coefficient vectors.
// Coeffs[i][j] is the j-th coefficient modulo Primes[i]. A Poly may be
// in the coefficient domain or the NTT (evaluation) domain; the domain
// is tracked by the caller (the bfv package keeps everything in the
// coefficient domain at API boundaries).
type Poly struct {
	Coeffs [][]uint64
}

// NewPoly allocates a zero polynomial for the ring.
func (r *Ring) NewPoly() *Poly {
	c := make([][]uint64, len(r.Primes))
	backing := make([]uint64, len(r.Primes)*r.N)
	for i := range c {
		c[i], backing = backing[:r.N:r.N], backing[r.N:]
	}
	return &Poly{Coeffs: c}
}

// SetWorkers sets the maximum per-operation parallelism (see
// Options.Workers). Safe to call between operations, not concurrently
// with them.
func (r *Ring) SetWorkers(w int) { r.workers = w }

// Workers returns the configured per-operation parallelism bound.
func (r *Ring) Workers() int { return r.workers }

// parOp2 submits a two-level (prime × coefficient-chunk) pointwise op
// to the worker pool. It reports false — without touching any data —
// when the ring is serial or no descriptor is free; the caller then
// runs its plain loop.
func (r *Ring) parOp2(kind opKind, dst, a, b *Poly, scalar uint64) bool {
	w := r.workers
	if w <= 1 {
		return false
	}
	op := acquireOp()
	if op == nil {
		return false
	}
	op.kind, op.r = kind, r
	op.dst, op.a, op.b, op.scalar = dst, a, b, scalar
	op.grid(len(r.Primes), r.N, w, true)
	runOp(op, w)
	return true
}

// GetPoly returns a zeroed polynomial from the ring's buffer pool,
// allocating one if the pool is empty. Return it with PutPoly when
// done to avoid allocation churn on hot paths.
func (r *Ring) GetPoly() *Poly {
	if v := r.pool.Get(); v != nil {
		p := v.(*Poly)
		r.Zero(p)
		return p
	}
	return r.NewPoly()
}

// GetPolyNoZero is GetPoly without the zeroing pass: the returned
// polynomial holds arbitrary stale coefficients. Use only when every
// coefficient is overwritten before being read (full transforms,
// copies, base extensions) — never for accumulators.
func (r *Ring) GetPolyNoZero() *Poly {
	if v := r.pool.Get(); v != nil {
		return v.(*Poly)
	}
	return r.NewPoly()
}

// PutPoly returns a polynomial obtained from this ring (NewPoly or
// GetPoly) to the buffer pool. The caller must not use p afterwards.
func (r *Ring) PutPoly(p *Poly) {
	if p == nil || len(p.Coeffs) != len(r.Primes) || len(p.Coeffs[0]) != r.N {
		return // not one of ours; let the GC have it
	}
	r.pool.Put(p)
}

// Copy returns a deep copy of p.
func (r *Ring) Copy(p *Poly) *Poly {
	q := r.NewPoly()
	for i := range p.Coeffs {
		copy(q.Coeffs[i], p.Coeffs[i])
	}
	return q
}

// CopyInto copies src into dst.
func (r *Ring) CopyInto(dst, src *Poly) {
	for i := range src.Coeffs {
		copy(dst.Coeffs[i], src.Coeffs[i])
	}
}

// Zero clears p in place.
func (r *Ring) Zero(p *Poly) {
	for i := range p.Coeffs {
		clear(p.Coeffs[i])
	}
}

// Equal reports whether a and b have identical coefficients.
func (r *Ring) Equal(a, b *Poly) bool {
	for i := range a.Coeffs {
		for j := range a.Coeffs[i] {
			if a.Coeffs[i][j] != b.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}

// Hot per-prime ops follow one pattern: the loop body lives in a
// *Range method taking the prime index and a coefficient range, the
// serial path (workers <= 1, the evaluator default) calls it over full
// rows in a plain loop, and the parallel path submits a pre-allocated
// descriptor to the persistent worker pool (parOp2) — no goroutine
// spawn, no WaitGroup, no closure. This keeps steady-state plan
// execution allocation-free at any worker count.

// Add sets dst = a + b. dst may alias a or b.
func (r *Ring) Add(dst, a, b *Poly) {
	if r.parOp2(opAdd, dst, a, b, 0) {
		return
	}
	for i := range r.Primes {
		r.addRange(dst, a, b, i, 0, r.N)
	}
}

func (r *Ring) addRange(dst, a, b *Poly, i, lo, hi int) {
	p := r.Primes[i]
	ai, bi, di := a.Coeffs[i][lo:hi], b.Coeffs[i][lo:hi], dst.Coeffs[i][lo:hi]
	for j := range di {
		di[j] = mathutil.AddMod(ai[j], bi[j], p)
	}
}

// Sub sets dst = a - b. dst may alias a or b.
func (r *Ring) Sub(dst, a, b *Poly) {
	if r.parOp2(opSub, dst, a, b, 0) {
		return
	}
	for i := range r.Primes {
		r.subRange(dst, a, b, i, 0, r.N)
	}
}

func (r *Ring) subRange(dst, a, b *Poly, i, lo, hi int) {
	p := r.Primes[i]
	ai, bi, di := a.Coeffs[i][lo:hi], b.Coeffs[i][lo:hi], dst.Coeffs[i][lo:hi]
	for j := range di {
		di[j] = mathutil.SubMod(ai[j], bi[j], p)
	}
}

// Neg sets dst = -a.
func (r *Ring) Neg(dst, a *Poly) {
	if r.parOp2(opNeg, dst, a, nil, 0) {
		return
	}
	for i := range r.Primes {
		r.negRange(dst, a, i, 0, r.N)
	}
}

func (r *Ring) negRange(dst, a *Poly, i, lo, hi int) {
	p := r.Primes[i]
	ai, di := a.Coeffs[i][lo:hi], dst.Coeffs[i][lo:hi]
	for j := range di {
		di[j] = mathutil.NegMod(ai[j], p)
	}
}

// MulScalar sets dst = a * s for a word-sized scalar s. The per-prime
// scalar is fixed across the coefficient loop, so a Shoup constant
// replaces the division-based MulMod.
func (r *Ring) MulScalar(dst, a *Poly, s uint64) {
	if r.parOp2(opMulScalar, dst, a, nil, s) {
		return
	}
	for i := range r.Primes {
		r.mulScalarRange(dst, a, s, i, 0, r.N)
	}
}

func (r *Ring) mulScalarRange(dst, a *Poly, s uint64, i, lo, hi int) {
	p := r.Primes[i]
	sp := r.tables[i].bar.Reduce64(s)
	spS := shoupPrecomp(sp, p)
	ai, di := a.Coeffs[i][lo:hi], dst.Coeffs[i][lo:hi]
	for j := range di {
		di[j] = shoupMul(ai[j], sp, spS, p)
	}
}

// MulScalarBig sets dst = a * s for an arbitrary-precision scalar s.
func (r *Ring) MulScalarBig(dst, a *Poly, s *big.Int) {
	var tmp, pb big.Int
	for i, p := range r.Primes {
		pb.SetUint64(p)
		tmp.Mod(s, &pb)
		sp := tmp.Uint64()
		ai, di := a.Coeffs[i], dst.Coeffs[i]
		for j := range di {
			di[j] = mathutil.MulMod(ai[j], sp, p)
		}
	}
}

// NTT transforms p in place, coefficient domain → evaluation domain.
// The parallel grid is one task per residue row: the lazy-reduction
// butterflies carry cross-coefficient dependencies through every pass,
// so rows are the natural (and bit-trivially-identical) split.
func (r *Ring) NTT(p *Poly) {
	if w := r.workers; w > 1 {
		if op := acquireOp(); op != nil {
			op.kind, op.r, op.dst = opNTTFwd, r, p
			op.grid(len(r.Primes), 0, w, false)
			runOp(op, w)
			return
		}
	}
	for i := range r.Primes {
		nttForward(p.Coeffs[i], r.tables[i])
	}
}

// NTTRow forward-transforms a single residue row (for prime index i)
// in place. Callers holding a bare []uint64 — e.g. the encoder's
// plaintext buffer — avoid wrapping it in a Poly, which would escape
// to the heap on every call.
func (r *Ring) NTTRow(i int, row []uint64) { nttForward(row, r.tables[i]) }

// INTTRow inverse-transforms a single residue row in place.
func (r *Ring) INTTRow(i int, row []uint64) { nttInverse(row, r.tables[i]) }

// INTT transforms p in place, evaluation domain → coefficient domain.
func (r *Ring) INTT(p *Poly) {
	if w := r.workers; w > 1 {
		if op := acquireOp(); op != nil {
			op.kind, op.r, op.dst = opNTTInv, r, p
			op.grid(len(r.Primes), 0, w, false)
			runOp(op, w)
			return
		}
	}
	for i := range r.Primes {
		nttInverse(p.Coeffs[i], r.tables[i])
	}
}

// MulCoeffs sets dst = a ⊙ b where both operands are in the NTT domain
// (pointwise product). Both factors vary per coefficient, so the
// reduction uses the precomputed 128-bit Barrett constant instead of a
// hardware divide.
func (r *Ring) MulCoeffs(dst, a, b *Poly) {
	if r.parOp2(opMulCoeffs, dst, a, b, 0) {
		return
	}
	for i := range r.Primes {
		r.mulCoeffsRange(dst, a, b, i, 0, r.N)
	}
}

func (r *Ring) mulCoeffsRange(dst, a, b *Poly, i, lo, hi int) {
	bar := r.tables[i].bar
	ai, bi, di := a.Coeffs[i][lo:hi], b.Coeffs[i][lo:hi], dst.Coeffs[i][lo:hi]
	for j := range di {
		di[j] = bar.MulMod(ai[j], bi[j])
	}
}

// MulCoeffsAndAdd sets dst += a ⊙ b in the NTT domain.
func (r *Ring) MulCoeffsAndAdd(dst, a, b *Poly) {
	if r.parOp2(opMulCoeffsAndAdd, dst, a, b, 0) {
		return
	}
	for i := range r.Primes {
		r.mulCoeffsAndAddRange(dst, a, b, i, 0, r.N)
	}
}

func (r *Ring) mulCoeffsAndAddRange(dst, a, b *Poly, i, lo, hi int) {
	p := r.Primes[i]
	bar := r.tables[i].bar
	ai, bi, di := a.Coeffs[i][lo:hi], b.Coeffs[i][lo:hi], dst.Coeffs[i][lo:hi]
	for j := range di {
		di[j] = mathutil.AddMod(di[j], bar.MulMod(ai[j], bi[j]), p)
	}
}

// MulPoly sets dst = a * b for operands in the coefficient domain,
// leaving the result in the coefficient domain. a and b are not
// modified; dst must not alias them.
func (r *Ring) MulPoly(dst, a, b *Poly) {
	ta := r.GetPolyNoZero()
	tb := r.GetPolyNoZero()
	r.CopyInto(ta, a)
	r.CopyInto(tb, b)
	r.NTT(ta)
	r.NTT(tb)
	r.MulCoeffs(dst, ta, tb)
	r.INTT(dst)
	r.PutPoly(ta)
	r.PutPoly(tb)
}

// DigitLift writes into dst the "digit" polynomial used by RNS key
// switching: every row l of dst holds row i of src reduced modulo p_l.
// Reductions use per-prime Barrett constants (no hardware divides).
func (r *Ring) DigitLift(dst, src *Poly, i int) {
	if w := r.workers; w > 1 {
		if op := acquireOp(); op != nil {
			op.kind, op.r = opDigitLift, r
			op.dst, op.src, op.digit = dst, src, i
			op.grid(len(r.Primes), r.N, w, true)
			runOp(op, w)
			return
		}
	}
	for l := range r.Primes {
		r.digitLiftRange(dst, src.Coeffs[i], i, l, 0, r.N)
	}
}

func (r *Ring) digitLiftRange(dst *Poly, from []uint64, i, l, lo, hi int) {
	dl := dst.Coeffs[l][lo:hi]
	from = from[lo:hi]
	if l == i {
		copy(dl, from)
		return
	}
	bar := r.tables[l].bar
	for j, v := range from {
		dl[j] = bar.Reduce64(v)
	}
}

// BarrettAt returns the Barrett constant of prime i.
func (r *Ring) BarrettAt(i int) mathutil.Barrett { return r.tables[i].bar }

// nttForward is the Cooley-Tukey negacyclic forward NTT (Harvey's
// bit-reversed twiddle layout with lazy reduction, as in SEAL and
// Lattigo): intermediate values live in [0, 4p) and only the final
// pass normalizes into [0, p), removing two data-dependent branches
// per butterfly. Requires p < 2^62.
func nttForward(a []uint64, tbl *nttTable) {
	p := tbl.p
	twoP := 2 * p
	n := len(a)
	t := n
	for m := 1; m < n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			j1 := 2 * i * t
			j2 := j1 + t
			w, wS := tbl.psiRev[m+i], tbl.psiRevS[m+i]
			for j := j1; j < j2; j++ {
				u := a[j] // < 4p
				if u >= twoP {
					u -= twoP
				}
				v := mathutil.ShoupMulLazy(a[j+t], w, wS, p) // < 2p
				a[j] = u + v                                 // < 4p
				a[j+t] = u + twoP - v                        // < 4p
			}
		}
	}
	for j, v := range a {
		if v >= twoP {
			v -= twoP
		}
		if v >= p {
			v -= p
		}
		a[j] = v
	}
}

// nttInverse is the Gentleman-Sande negacyclic inverse NTT with lazy
// reduction: intermediates stay in [0, 2p) and the final N^-1 scaling
// lands exactly in [0, p).
func nttInverse(a []uint64, tbl *nttTable) {
	p := tbl.p
	twoP := 2 * p
	n := len(a)
	t := 1
	for m := n; m > 1; m >>= 1 {
		j1 := 0
		h := m >> 1
		for i := 0; i < h; i++ {
			j2 := j1 + t
			w, wS := tbl.ipsiRev[h+i], tbl.ipsiRevS[h+i]
			for j := j1; j < j2; j++ {
				u := a[j] // < 2p
				v := a[j+t]
				uu := u + v // < 4p
				if uu >= twoP {
					uu -= twoP
				}
				a[j] = uu                                          // < 2p
				a[j+t] = mathutil.ShoupMulLazy(u+twoP-v, w, wS, p) // < 2p
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := range a {
		a[j] = shoupMul(a[j], tbl.nInv, tbl.nInvShoup, p)
	}
}

// autoNegate flags a coefficient-domain automorphism table entry whose
// coefficient picks up a sign flip (X^k = -X^(k-N) in R). The low 31
// bits hold the destination index, which is always < N ≤ 2^17.
const autoNegate = 1 << 31

// AutomorphismTable returns the coefficient-domain automorphism table
// for g: entry j holds the destination index of coefficient j, with
// autoNegate set when the move crosses the X^N = -1 boundary. Tables
// are built once per Galois element and cached on the ring, the
// coefficient-domain counterpart of NTTPermutation.
func (r *Ring) AutomorphismTable(g uint64) []uint32 {
	if v, ok := r.autoCache.Load(g); ok {
		return v.([]uint32)
	}
	n := uint64(r.N)
	mask := 2*n - 1
	t := make([]uint32, n)
	for j := uint64(0); j < n; j++ {
		k := (j * g) & mask // index of X^(j*g) mod X^2N - 1
		if k >= n {
			t[j] = uint32(k-n) | autoNegate
		} else {
			t[j] = uint32(k)
		}
	}
	actual, _ := r.autoCache.LoadOrStore(g, t)
	return actual.([]uint32)
}

// Automorphism applies the Galois automorphism X → X^g to src (in the
// coefficient domain), writing into dst. g must be odd (a unit mod 2N).
// dst must not alias src.
func (r *Ring) Automorphism(dst, src *Poly, g uint64) {
	r.AutomorphismWithTable(dst, src, r.AutomorphismTable(g))
}

// AutomorphismWithTable is Automorphism with the index table resolved
// by the caller (AutomorphismTable) — the prefetched form used when
// one Galois element is applied to many sources. dst must not alias
// src.
func (r *Ring) AutomorphismWithTable(dst, src *Poly, tab []uint32) {
	for i := range r.Primes {
		si, di := src.Coeffs[i], dst.Coeffs[i]
		p := r.Primes[i]
		for j, e := range tab {
			v := si[j]
			if e&autoNegate != 0 {
				v = mathutil.NegMod(v, p)
			}
			di[e&^autoNegate] = v
		}
	}
}

// GaloisElementForRotation returns the Galois element g = 3^k mod 2N
// implementing a rotation of the batched slot rows by k positions
// (left rotation for positive k), following the SEAL convention.
func (r *Ring) GaloisElementForRotation(k int) uint64 {
	m := uint64(2 * r.N)
	rowSize := r.N / 2
	// Normalize k into [0, rowSize).
	k %= rowSize
	if k < 0 {
		k += rowSize
	}
	return mathutil.PowMod(3, uint64(k), m)
}

// GaloisElementRowSwap returns the Galois element 2N-1 that swaps the
// two batching rows.
func (r *Ring) GaloisElementRowSwap() uint64 { return uint64(2*r.N) - 1 }

// CRT returns the reconstructor for the ring's prime basis.
func (r *Ring) CRT() *mathutil.CRTReconstructor { return r.crt }

// Modulus returns Q = ∏ primes as a big integer (caller must not
// modify the returned value).
func (r *Ring) Modulus() *big.Int { return r.crt.Modulus() }

// SetCoeffBig sets coefficient j of p to x mod Q (x may be negative).
func (r *Ring) SetCoeffBig(p *Poly, j int, x *big.Int) {
	var tmp, pb big.Int
	for i, pr := range r.Primes {
		pb.SetUint64(pr)
		tmp.Mod(x, &pb)
		p.Coeffs[i][j] = tmp.Uint64()
	}
}

// CoeffBigCentered reconstructs coefficient j of p into dst as the
// centered representative in (-Q/2, Q/2].
func (r *Ring) CoeffBigCentered(dst *big.Int, p *Poly, j int) *big.Int {
	res := make([]uint64, len(r.Primes))
	for i := range r.Primes {
		res[i] = p.Coeffs[i][j]
	}
	return r.crt.ReconstructCentered(dst, res)
}
