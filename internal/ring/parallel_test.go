package ring

import (
	"math/rand"
	"sync"
	"testing"

	"porcupine/internal/mathutil"
)

// poolFixture builds a serial ring and a parallel ring over the same
// primes at a degree large enough (N=1024 ≥ 2·minChunk) that the
// two-level coefficient-chunked grid actually engages.
func poolFixture(t *testing.T, workers int) (*Ring, *Ring) {
	t.Helper()
	primes, err := mathutil.GenerateNTTPrimes(45, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewRing(1024, primes)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRingWithOptions(1024, primes, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return serial, par
}

// TestGridInvariants checks the task-grid layout: full coverage of
// [0, n), no chunk below minChunk when chunked, and over-decomposition
// bounded by the budget.
func TestGridInvariants(t *testing.T) {
	var op parOp
	for _, tc := range []struct {
		rows, n, budget int
		chunkable       bool
	}{
		{1, 4096, 4, true},
		{3, 4096, 8, true},
		{5, 8192, 16, true},
		{3, 512, 2, true},
		{3, 128, 8, true},   // below 2·minChunk: must stay unchunked
		{4, 2048, 1, true},  // budget 1
		{3, 4096, 4, false}, // NTT rows: never chunked
	} {
		op.grid(tc.rows, tc.n, tc.budget, tc.chunkable)
		if op.rows != tc.rows || op.n != tc.n {
			t.Fatalf("grid(%+v): rows/n not recorded", tc)
		}
		if op.chunks < 1 {
			t.Fatalf("grid(%+v): chunks=%d", tc, op.chunks)
		}
		if !tc.chunkable || tc.n < 2*minChunk {
			if op.chunks != 1 {
				t.Fatalf("grid(%+v): expected unchunked, got %d chunks", tc, op.chunks)
			}
		}
		if op.chunks > 1 && op.chunkLen < minChunk {
			t.Fatalf("grid(%+v): chunkLen %d < minChunk", tc, op.chunkLen)
		}
		// Coverage: the chunks must tile [0, n) exactly.
		if op.chunks*op.chunkLen < tc.n {
			t.Fatalf("grid(%+v): %d chunks × %d len < n", tc, op.chunks, op.chunkLen)
		}
		if (op.chunks-1)*op.chunkLen >= tc.n && tc.n > 0 {
			t.Fatalf("grid(%+v): last chunk empty", tc)
		}
	}
}

// TestPoolOpsMatchSerial drives every pooled loop body at a degree
// where coefficient chunking engages and checks bit-identity against
// the serial path.
func TestPoolOpsMatchSerial(t *testing.T) {
	serial, par := poolFixture(t, 3)
	rng := rand.New(rand.NewSource(17))
	a, b := randPoly(serial, rng), randPoly(serial, rng)

	check := func(name string, f func(r *Ring, dst *Poly)) {
		t.Helper()
		sOut, pOut := serial.NewPoly(), par.NewPoly()
		f(serial, sOut)
		f(par, pOut)
		if !serial.Equal(sOut, pOut) {
			t.Fatalf("%s: parallel differs from serial", name)
		}
	}

	check("Add", func(r *Ring, dst *Poly) { r.Add(dst, a, b) })
	check("Sub", func(r *Ring, dst *Poly) { r.Sub(dst, a, b) })
	check("Neg", func(r *Ring, dst *Poly) { r.Neg(dst, a) })
	check("MulScalar", func(r *Ring, dst *Poly) { r.MulScalar(dst, a, 987654321) })
	check("MulCoeffs", func(r *Ring, dst *Poly) { r.MulCoeffs(dst, a, b) })
	check("MulCoeffsAndAdd", func(r *Ring, dst *Poly) {
		r.CopyInto(dst, b)
		r.MulCoeffsAndAdd(dst, a, b)
	})
	check("NTT", func(r *Ring, dst *Poly) {
		r.CopyInto(dst, a)
		r.NTT(dst)
	})
	check("INTT", func(r *Ring, dst *Poly) {
		r.CopyInto(dst, a)
		r.INTT(dst)
	})
	check("DigitLift", func(r *Ring, dst *Poly) { r.DigitLift(dst, a, 1) })

	// DecomposeNTT: digit × prime grid.
	sd, pd := serial.GetDecomposition(), par.GetDecomposition()
	serial.DecomposeNTT(sd, a)
	par.DecomposeNTT(pd, a)
	for i := range sd.Digits {
		if !serial.Equal(sd.Digits[i], pd.Digits[i]) {
			t.Fatalf("DecomposeNTT digit %d: parallel differs from serial", i)
		}
	}

	// Lazy inner products over the decomposition digits.
	keys := make([]*Poly, len(sd.Digits))
	for i := range keys {
		keys[i] = randPoly(serial, rng)
	}
	check("MulAccumLazy", func(r *Ring, dst *Poly) { r.MulAccumLazy(dst, sd.Digits, keys) })
	perm := serial.NTTPermutation(serial.GaloisElementForRotation(3))
	check("PermutedMulAccumLazy", func(r *Ring, dst *Poly) {
		r.PermutedMulAccumLazy(dst, sd.Digits, keys, perm)
	})
	serial.PutDecomposition(sd)
	par.PutDecomposition(pd)
}

// TestPoolExtenderMatchesSerial checks the coefficient-chunked lift
// and scale-down passes at a chunking-scale degree.
func TestPoolExtenderMatchesSerial(t *testing.T) {
	n := 1024
	qPrimes, err := mathutil.GenerateNTTPrimes(40, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	aux, err := mathutil.GenerateNTTPrimes(52, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	ext := append(append([]uint64(nil), qPrimes...), aux...)

	build := func(workers int) (*Ring, *Ring, *BasisExtender) {
		rq, err := NewRingWithOptions(n, qPrimes, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rx, err := NewRingWithOptions(n, ext, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		be, err := NewBasisExtender(rq, rx, 65537)
		if err != nil {
			t.Fatal(err)
		}
		return rq, rx, be
	}
	sq, sx, sbe := build(0)
	_, px, pbe := build(4)

	rng := rand.New(rand.NewSource(23))
	src := randPoly(sq, rng)

	sLift, pLift := sx.NewPoly(), px.NewPoly()
	sbe.LiftCentered(sLift, src)
	pbe.LiftCentered(pLift, src)
	if !sx.Equal(sLift, pLift) {
		t.Fatal("LiftCentered: parallel differs from serial")
	}

	sDown, pDown := sq.NewPoly(), sq.NewPoly()
	sbe.ScaleDown(sDown, sLift)
	pbe.ScaleDown(pDown, pLift)
	if !sq.Equal(sDown, pDown) {
		t.Fatal("ScaleDown: parallel differs from serial")
	}
}

// TestPoolConcurrentSubmissions hammers the pool from many goroutines
// at once — more submitters than pool workers, so descriptor
// exhaustion and the serial fallback are exercised alongside genuine
// helper claiming. Run under -race in CI.
func TestPoolConcurrentSubmissions(t *testing.T) {
	serial, par := poolFixture(t, 4)
	rng := rand.New(rand.NewSource(29))
	a, b := randPoly(serial, rng), randPoly(serial, rng)

	want := serial.NewPoly()
	serial.MulCoeffs(want, a, b)
	wantNTT := serial.Copy(a)
	serial.NTT(wantNTT)

	submitters := 2*PoolSize() + 1
	iters := 20
	var wg sync.WaitGroup
	errs := make([]string, submitters)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := par.NewPoly()
			tmp := par.NewPoly()
			for it := 0; it < iters; it++ {
				par.MulCoeffs(dst, a, b)
				if !par.Equal(dst, want) {
					errs[g] = "MulCoeffs mismatch under concurrency"
					return
				}
				par.CopyInto(tmp, a)
				par.NTT(tmp)
				if !par.Equal(tmp, wantNTT) {
					errs[g] = "NTT mismatch under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, e := range errs {
		if e != "" {
			t.Fatalf("goroutine %d: %s", g, e)
		}
	}
}

// runnerTasks is a TaskRunner that records which tasks ran.
type runnerTasks struct {
	hits []int32
}

func (rt *runnerTasks) RunTask(i int) { rt.hits[i]++ }

// TestParallelRunsEveryTaskOnce covers the generic Parallel entry the
// plan executor uses for dependency levels.
func TestParallelRunsEveryTaskOnce(t *testing.T) {
	for _, n := range []int{0, 1, 3, 7, 64} {
		for _, budget := range []int{0, 1, 2, 8} {
			rt := &runnerTasks{hits: make([]int32, n)}
			Parallel(budget, n, rt)
			for i, h := range rt.hits {
				if h != 1 {
					t.Fatalf("n=%d budget=%d: task %d ran %d times", n, budget, i, h)
				}
			}
		}
	}
}
