package ring

import (
	"testing"
)

func serializeTestRing(t *testing.T) *Ring {
	t.Helper()
	r, err := NewRing(64, []uint64{257, 641}) // ≡ 1 mod 2N = 128
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPolyBinaryRoundTrip(t *testing.T) {
	r := serializeTestRing(t)
	p := r.NewPoly()
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = uint64((i*31 + j*7) % int(r.Primes[i]))
		}
	}
	buf := p.AppendBinary(nil)
	if len(buf) != r.PolyWireSize() {
		t.Fatalf("encoded %d bytes, PolyWireSize says %d", len(buf), r.PolyWireSize())
	}
	q, n, err := r.ReadPoly(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !r.Equal(p, q) {
		t.Fatal("round trip changed the polynomial")
	}
}

func TestReadPolyRejectsMalformed(t *testing.T) {
	r := serializeTestRing(t)
	p := r.NewPoly()
	good := p.AppendBinary(nil)

	cases := map[string][]byte{
		"empty":            nil,
		"truncated-header": good[:4],
		"truncated-body":   good[:len(good)-1],
	}
	for name, data := range cases {
		if _, _, err := r.ReadPoly(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Wrong shape: a poly of another ring.
	r2, err := NewRing(32, []uint64{193, 257, 449}) // ≡ 1 mod 64
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadPoly(r2.NewPoly().AppendBinary(nil)); err == nil {
		t.Error("foreign-ring poly accepted")
	}

	// Residue out of range for its prime: decode must refuse rather
	// than hand the NTT an unreduced value.
	bad := append([]byte(nil), good...)
	bad[9] = 0xFF // first residue of prime 257 becomes 65280
	if _, _, err := r.ReadPoly(bad); err == nil {
		t.Error("out-of-range residue accepted")
	}
}
