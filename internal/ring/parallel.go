package ring

import (
	"sync"
	"sync/atomic"
)

// runParallel executes f(0..n-1) on up to workers goroutines pulled
// from a transient worker pool, or inline when workers <= 1. Tasks are
// claimed with an atomic counter so uneven task costs balance across
// workers. The call returns only when every task has finished.
func runParallel(workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				f(int(i))
			}
		}()
	}
	wg.Wait()
}

// runParallelChunks splits the index range [0, n) into contiguous
// chunks and runs f(lo, hi) for each, parallelized like runParallel.
// Used by coefficient-wise passes (base extension, rescaling) whose
// natural axis is the coefficient index rather than the prime index.
func runParallelChunks(workers, n int, f func(lo, hi int)) {
	if workers <= 1 || n < 2*minChunk {
		f(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	if chunk < minChunk {
		chunk = minChunk
	}
	tasks := (n + chunk - 1) / chunk
	runParallel(workers, tasks, func(i int) {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		f(lo, hi)
	})
}

// minChunk is the smallest per-task coefficient range worth dispatching
// to a worker; below this the scheduling overhead dominates.
const minChunk = 256
