// Persistent, alloc-free worker pool for the ring hot loops.
//
// The previous runParallel spawned fresh goroutines per call and paid
// for a sync.WaitGroup plus an escaping closure on every parallel
// operation — fine for coarse offline work, fatal for the serving
// path's 0-allocs/op steady-state invariant. This pool replaces it:
//
//   - Workers are spawned once per process (max(4, NumCPU) of them)
//     and park on a per-worker wake channel; dispatching an op is a
//     channel send of one pointer, not a goroutine spawn.
//   - Operations are described by pre-allocated descriptors (parOp): a
//     kind tag plus operand fields, recycled through a fixed free list.
//     No closures are created, so nothing escapes and nothing
//     allocates — with workers > 1 a plan run is as GC-quiet as the
//     serial path.
//   - Work is a flat task grid claimed with an atomic counter, so
//     uneven task costs balance across participants. Pointwise loops
//     use a two-level grid (prime × coefficient chunk): with K = 3..5
//     primes and chunks of at least minChunk coefficients, K small
//     primes still fill P > K cores.
//   - The submitting goroutine always participates. Helper acquisition
//     is non-blocking: when every worker is busy (nested submissions,
//     concurrent sessions), the caller just runs more of the grid
//     itself — no queueing, no deadlock, graceful degradation to
//     serial.
//
// Completion uses a quiescence protocol rather than a WaitGroup: each
// helper bumps op.finished after exhausting the claim counter, and the
// submitter spins (with runtime.Gosched) until finished equals the
// number of helpers it woke. Only then is the descriptor recycled, so
// a descriptor is never mutated while any worker can still read it.
package ring

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// minChunk is the smallest per-task coefficient range worth dispatching
// to a worker; below this the claim/wake overhead dominates the loop
// body. 256 uint64 coefficients = 2 KiB, a few cache lines of work.
const minChunk = 256

// opKind selects the loop body a pool participant runs for one task of
// a parallel submission.
type opKind uint8

const (
	opAdd opKind = iota
	opSub
	opNeg
	opMulScalar
	opMulCoeffs
	opMulCoeffsAndAdd
	opNTTFwd
	opNTTInv
	opDigitLift
	opDecompose
	opMulAccum
	opLift
	opScaleDown
	opRunner
)

// TaskRunner executes the independent tasks of one generic parallel
// submission (see Parallel). Implementations are typically persistent
// objects (a session's level runner) so the interface value costs no
// allocation.
type TaskRunner interface {
	RunTask(t int)
}

// parOp describes one data-parallel operation: the kind selects the
// loop body, the operand fields carry the data, and the task grid is
// rows × chunks claimed through an atomic counter. Descriptors are
// pre-allocated and recycled through the pool's free list; they are
// exclusively owned by one submission from acquire to release.
type parOp struct {
	kind opKind

	r    *Ring
	be   *BasisExtender
	tr   TaskRunner
	dst  *Poly
	a, b *Poly
	src  *Poly
	d    *Decomposition
	as   []*Poly
	bs   []*Poly
	perm []uint32

	scalar uint64
	digit  int

	// Task grid: task t covers row t/chunks (prime or digit index) and
	// coefficient range [lo, lo+chunkLen) with lo = (t%chunks)*chunkLen,
	// clamped to n.
	rows     int
	chunks   int
	chunkLen int
	n        int
	total    int32

	next     atomic.Int32
	finished atomic.Int32
}

// grid lays out the task grid: rows on the first axis and, when the
// body supports coefficient chunking, enough chunks per row that the
// grid over-decomposes a budget of workers ~2× (for balance under
// uneven claims) without dropping below minChunk coefficients per task.
func (op *parOp) grid(rows, n, budget int, chunkable bool) {
	op.rows, op.n = rows, n
	op.chunks, op.chunkLen = 1, n
	if !chunkable || n < 2*minChunk {
		return
	}
	chunks := (2*budget + rows - 1) / rows
	if maxC := n / minChunk; chunks > maxC {
		chunks = maxC
	}
	if chunks < 1 {
		chunks = 1
	}
	op.chunks = chunks
	op.chunkLen = (n + chunks - 1) / chunks
}

// runTask executes task t of the grid.
func (op *parOp) runTask(t int) {
	if op.kind == opRunner {
		op.tr.RunTask(t)
		return
	}
	if op.kind == opDecompose {
		// Digit × prime grid: lift row i of the source into prime l of
		// digit i, then forward-transform that row. Every (i, l) pair is
		// independent, so K primes yield K² tasks.
		r := op.r
		k := len(r.Primes)
		i, l := t/k, t%k
		dg := op.d.Digits[i]
		r.digitLiftRange(dg, op.src.Coeffs[i], i, l, 0, r.N)
		nttForward(dg.Coeffs[l], r.tables[l])
		return
	}
	row := t / op.chunks
	c := t % op.chunks
	lo := c * op.chunkLen
	hi := lo + op.chunkLen
	if hi > op.n {
		hi = op.n
	}
	switch op.kind {
	case opNTTFwd:
		nttForward(op.dst.Coeffs[row], op.r.tables[row])
	case opNTTInv:
		nttInverse(op.dst.Coeffs[row], op.r.tables[row])
	case opAdd:
		op.r.addRange(op.dst, op.a, op.b, row, lo, hi)
	case opSub:
		op.r.subRange(op.dst, op.a, op.b, row, lo, hi)
	case opNeg:
		op.r.negRange(op.dst, op.a, row, lo, hi)
	case opMulScalar:
		op.r.mulScalarRange(op.dst, op.a, op.scalar, row, lo, hi)
	case opMulCoeffs:
		op.r.mulCoeffsRange(op.dst, op.a, op.b, row, lo, hi)
	case opMulCoeffsAndAdd:
		op.r.mulCoeffsAndAddRange(op.dst, op.a, op.b, row, lo, hi)
	case opDigitLift:
		op.r.digitLiftRange(op.dst, op.src.Coeffs[op.digit], op.digit, row, lo, hi)
	case opMulAccum:
		op.r.mulAccumRange(op.dst, op.as, op.bs, op.perm, row, lo, hi)
	case opLift:
		op.be.liftCenteredChunk(op.dst, op.src, lo, hi)
	case opScaleDown:
		op.be.scaleDownChunk(op.dst, op.src, lo, hi)
	}
}

type poolWorker struct {
	wake chan *parOp
	_    [7]uint64 // pad to a cache line so wake channels don't false-share
}

type workerPool struct {
	workers []poolWorker
	// idle holds the indices of parked workers. Submitters try-recv to
	// claim helpers; a worker re-enqueues itself after finishing an op.
	idle chan int32
	// free holds recyclable op descriptors. Empty free list (more
	// concurrent submissions than workers) degrades to serial execution
	// at the call site.
	free chan *parOp
}

var (
	poolOnce sync.Once
	thePool  *workerPool
)

// getPool returns the process-wide worker pool, spawning its workers
// on first use. The pool is sized max(4, NumCPU): NumCPU for real
// parallel capacity, and a floor of 4 so the parallel code paths (and
// their race coverage) are exercised even on single-core runners.
func getPool() *workerPool {
	poolOnce.Do(func() {
		n := runtime.NumCPU()
		if n < 4 {
			n = 4
		}
		p := &workerPool{
			workers: make([]poolWorker, n),
			idle:    make(chan int32, n),
			free:    make(chan *parOp, n),
		}
		for i := range p.workers {
			p.workers[i].wake = make(chan *parOp, 1)
			p.idle <- int32(i)
			p.free <- new(parOp)
			go p.workerLoop(int32(i))
		}
		thePool = p
	})
	return thePool
}

func (p *workerPool) workerLoop(id int32) {
	w := &p.workers[id]
	for op := range w.wake {
		op.runTasks()
		// finished is the helper's last touch of the descriptor: once
		// the submitter has seen every helper's increment, recycling the
		// descriptor cannot race with anything.
		op.finished.Add(1)
		p.idle <- id
	}
}

// runTasks claims and executes grid tasks until the counter runs out.
func (op *parOp) runTasks() {
	total := op.total
	for {
		t := op.next.Add(1) - 1
		if t >= total {
			return
		}
		op.runTask(int(t))
	}
}

// acquireOp returns a free descriptor, or nil when none is available
// (the caller then runs its serial path). Never blocks.
func acquireOp() *parOp {
	select {
	case op := <-getPool().free:
		return op
	default:
		return nil
	}
}

// releaseOp clears the descriptor's references (so recycled
// descriptors don't pin polynomials) and returns it to the free list.
func releaseOp(op *parOp) {
	op.r, op.be, op.tr = nil, nil, nil
	op.dst, op.a, op.b, op.src = nil, nil, nil, nil
	op.d = nil
	op.as, op.bs, op.perm = nil, nil, nil
	thePool.free <- op
}

// runOp executes the op's task grid on the calling goroutine plus up
// to budget-1 pool workers, then recycles the descriptor. It returns
// only when every task has finished and no worker can still touch the
// descriptor.
func runOp(op *parOp, budget int) {
	total := op.rows * op.chunks
	op.total = int32(total)
	op.next.Store(0)
	op.finished.Store(0)
	if budget > total {
		budget = total
	}
	p := thePool
	var woken int32
	for int(woken) < budget-1 {
		select {
		case id := <-p.idle:
			p.workers[id].wake <- op
			woken++
		default:
			// Every worker is busy (concurrent sessions, nested
			// submissions): the caller absorbs the rest of the grid.
			goto work
		}
	}
work:
	op.runTasks()
	for op.finished.Load() != woken {
		runtime.Gosched()
	}
	releaseOp(op)
}

// Parallel runs tasks 0..n-1 on the calling goroutine plus up to
// budget-1 pool workers, balancing uneven task costs through atomic
// work claiming. Tasks must be independent; Parallel returns after the
// last one completes. With budget <= 1, one task, or a fully busy
// pool, the tasks run inline on the caller — allocation-free either
// way when tr is a persistent object (the backend's level runner).
//
// This is the generic entry the plan executor uses for dependency
// levels; the ring's own loops go through typed descriptors instead.
func Parallel(budget, n int, tr TaskRunner) {
	if n <= 0 {
		return
	}
	if budget > 1 && n > 1 {
		if op := acquireOp(); op != nil {
			op.kind = opRunner
			op.tr = tr
			op.grid(n, 0, budget, false)
			runOp(op, budget)
			return
		}
	}
	for t := 0; t < n; t++ {
		tr.RunTask(t)
	}
}

// PoolSize reports the number of persistent pool workers (for
// diagnostics and scheduler budget decisions).
func PoolSize() int { return len(getPool().workers) }
