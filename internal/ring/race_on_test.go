//go:build race

package ring

// raceEnabled reports whether this test binary runs under the race
// detector, where sync.Pool randomly drops Puts and steady-state
// allocation counts are meaningless.
const raceEnabled = true
