// Pure-RNS basis extension and rescaling for the BFV hot path.
//
// BFV ciphertext multiplication needs two operations that leave the
// single RNS basis: lifting centered representatives from R_Q into the
// extended ring R_E (E = Q·Q'), and scaling the tensor product by t/Q
// with rounding, back into R_Q. The textbook implementation performs
// per-coefficient CRT reconstruction with math/big, which dominates
// end-to-end latency. BasisExtender performs both operations with only
// word-sized arithmetic — exactly, so results are bit-identical to the
// big.Int reference path (unlike the floating-point base conversion of
// the BEHZ variant, which trades exactness for speed and absorbs the
// error into the noise budget).
//
// The key idea: Garner's mixed-radix conversion gives the digits of a
// coefficient x = Σ d_i·W_i (W_i = p_0···p_{i-1}) using O(K²) Shoup
// multiplications. Digits support exact magnitude comparison (for
// centering against Q/2 or E/2) and — because the extended basis lists
// the Q primes first, so Q = W_k — exact division:
//
//	floor((t·M + Q/2) / Q) = Σ_{i≥k} D_i·(W_i/Q)
//
// where D are the carry-normalized digits of t·M + Q/2 and every
// W_i/Q is an integer with precomputed residues mod each q_j.
package ring

import (
	"fmt"
	"math/big"
	"math/bits"

	"porcupine/internal/mathutil"
)

// BasisExtender converts polynomials between R_Q and an extension R_E
// whose prime basis starts with Q's primes, entirely in word-sized
// arithmetic. It is read-only after construction and safe for
// concurrent use.
type BasisExtender struct {
	rQ, rExt *Ring
	t        uint64 // plaintext modulus for ScaleDown
	k, kExt  int    // len(Q primes), len(ext primes)

	decQ   *mathutil.MRDecomposer // Garner tables over the Q basis
	decExt *mathutil.MRDecomposer // Garner tables over the full basis

	halfQDigits []uint64 // digits of floor(Q/2) over the Q basis
	halfEDigits []uint64 // digits of floor(E/2) over the ext basis
	hqExtDigits []uint64 // digits of floor(Q/2) over the ext basis

	// Lift tables, indexed by auxiliary prime a = 0..kExt-k-1:
	liftW   [][]uint64 // liftW[a][j] = W_j mod p_{k+a}, j < k
	liftWS  [][]uint64 // Shoup companions
	qModAux []uint64   // Q mod p_{k+a}

	// Scale-down tables, indexed by Q prime j: vMod[j][i] = V_i mod q_j
	// where V_i = ∏_{l=k}^{k+i-1} p_l for i = 0..kExt-k (V_0 = 1, the
	// last entry being E/Q for the overflow digit).
	vMod  [][]uint64
	vModS [][]uint64

	auxBars []mathutil.Barrett // Barrett constants of the aux primes
	qBars   []mathutil.Barrett // Barrett constants of the Q primes
	divs    []mathutil.Divider // reciprocal dividers per ext prime
	// Lazy Shoup accumulation flags (sums must fit in 64 bits):
	lazyLift  bool // k products < 2·maxAux in LiftCentered
	lazyScale bool // kExt-k+1 products < 2·maxQ in ScaleDown
}

// NewBasisExtender builds the conversion tables between rQ and rExt.
// rExt must have the same degree as rQ and a prime basis whose prefix
// is exactly rQ's basis. t is the plaintext modulus used by ScaleDown
// and must satisfy t < 2^62.
func NewBasisExtender(rQ, rExt *Ring, t uint64) (*BasisExtender, error) {
	if rQ.N != rExt.N {
		return nil, fmt.Errorf("ring: basis extender degree mismatch: %d vs %d", rQ.N, rExt.N)
	}
	k, kExt := len(rQ.Primes), len(rExt.Primes)
	if kExt <= k {
		return nil, fmt.Errorf("ring: extended basis (%d primes) does not extend base (%d)", kExt, k)
	}
	for i, p := range rQ.Primes {
		if rExt.Primes[i] != p {
			return nil, fmt.Errorf("ring: extended basis prime %d is %d, want base prime %d", i, rExt.Primes[i], p)
		}
	}
	if t == 0 || t >= uint64(1)<<62 {
		return nil, fmt.Errorf("ring: plaintext modulus %d out of range", t)
	}
	be := &BasisExtender{rQ: rQ, rExt: rExt, t: t, k: k, kExt: kExt}
	var err error
	if be.decQ, err = mathutil.NewMRDecomposer(rQ.Primes); err != nil {
		return nil, err
	}
	if be.decExt, err = mathutil.NewMRDecomposer(rExt.Primes); err != nil {
		return nil, err
	}

	q := rQ.Modulus()
	e := rExt.Modulus()
	halfQ := new(big.Int).Rsh(q, 1)
	be.halfQDigits = be.decQ.DigitsOfBig(halfQ)
	be.halfEDigits = be.decExt.DigitsOfBig(new(big.Int).Rsh(e, 1))
	be.hqExtDigits = be.decExt.DigitsOfBig(halfQ)

	// Lift tables: W_j mod p (j < k) and Q mod p for each aux prime p.
	aux := rExt.Primes[k:]
	maxAux, maxQ := uint64(0), uint64(0)
	for _, p := range aux {
		if p > maxAux {
			maxAux = p
		}
	}
	for _, p := range rQ.Primes {
		if p > maxQ {
			maxQ = p
		}
	}
	be.lazyLift = maxAux <= ^uint64(0)/(2*uint64(k))
	be.lazyScale = maxQ <= ^uint64(0)/(2*uint64(kExt-k+1))
	be.auxBars = make([]mathutil.Barrett, len(aux))
	for a, p := range aux {
		be.auxBars[a] = mathutil.NewBarrett(p)
	}
	be.qBars = make([]mathutil.Barrett, k)
	for j, p := range rQ.Primes {
		be.qBars[j] = mathutil.NewBarrett(p)
	}
	be.divs = make([]mathutil.Divider, kExt)
	for i, p := range rExt.Primes {
		be.divs[i] = mathutil.NewDivider(p)
	}
	be.liftW = make([][]uint64, len(aux))
	be.liftWS = make([][]uint64, len(aux))
	be.qModAux = make([]uint64, len(aux))
	var tmp, pb big.Int
	for a, p := range aux {
		be.liftW[a] = make([]uint64, k)
		be.liftWS[a] = make([]uint64, k)
		w := uint64(1)
		for j := 0; j < k; j++ {
			be.liftW[a][j] = w
			be.liftWS[a][j] = mathutil.ShoupPrecomp(w, p)
			w = mathutil.MulMod(w, rQ.Primes[j]%p, p)
		}
		pb.SetUint64(p)
		be.qModAux[a] = tmp.Mod(q, &pb).Uint64()
	}

	// Scale-down tables: V_i = ∏_{l=k}^{k+i-1} p_l mod q_j.
	be.vMod = make([][]uint64, k)
	be.vModS = make([][]uint64, k)
	for j, qj := range rQ.Primes {
		be.vMod[j] = make([]uint64, len(aux)+1)
		be.vModS[j] = make([]uint64, len(aux)+1)
		v := uint64(1)
		for i := 0; i <= len(aux); i++ {
			be.vMod[j][i] = v
			be.vModS[j][i] = mathutil.ShoupPrecomp(v, qj)
			if i < len(aux) {
				v = mathutil.MulMod(v, aux[i]%qj, qj)
			}
		}
	}
	return be, nil
}

// LiftCentered writes into dst (a polynomial of the extended ring) the
// residues of the centered representative x_c ∈ (-Q/2, Q/2] of every
// coefficient of src (a polynomial of the base ring). Equivalent to
// CoeffBigCentered + SetCoeffBig per coefficient, without math/big.
func (be *BasisExtender) LiftCentered(dst, src *Poly) {
	k, n := be.k, be.rQ.N
	for i := 0; i < k; i++ {
		copy(dst.Coeffs[i], src.Coeffs[i]) // x_c ≡ x mod q_i
	}
	if be.parChunks(opLift, dst, src, n) {
		return
	}
	be.liftCenteredChunk(dst, src, 0, n)
}

// parChunks submits a coefficient-chunked extender pass (Garner is
// per-coefficient across all primes, so the grid has a single row of
// coefficient chunks). Returns false — caller runs the serial chunk —
// when workers <= 1 or no pool descriptor is free.
func (be *BasisExtender) parChunks(kind opKind, dst, src *Poly, n int) bool {
	w := be.rExt.workers
	if w <= 1 {
		return false
	}
	op := acquireOp()
	if op == nil {
		return false
	}
	op.kind, op.be = kind, be
	op.dst, op.src = dst, src
	op.grid(1, n, w, true)
	runOp(op, w)
	return true
}

// liftCenteredChunk lifts the coefficient range [lo, hi). Digit
// scratch lives on the stack for the common basis sizes, so the
// serial path performs no allocations.
func (be *BasisExtender) liftCenteredChunk(dst, src *Poly, lo, hi int) {
	k := be.k
	nAux := be.kExt - k
	var buf [maxStackDigits]uint64
	digits := buf[:]
	if k > maxStackDigits {
		digits = make([]uint64, k)
	} else {
		digits = digits[:k]
	}
	for j := lo; j < hi; j++ {
		for i := 0; i < k; i++ {
			digits[i] = src.Coeffs[i][j]
		}
		be.decQ.Decompose(digits, digits)
		neg := mathutil.MRGreater(digits, be.halfQDigits)
		for a := 0; a < nAux; a++ {
			p := be.rExt.Primes[k+a]
			w, ws := be.liftW[a], be.liftWS[a]
			var acc uint64
			if be.lazyLift {
				for i := 0; i < k; i++ {
					acc += mathutil.ShoupMulLazy(digits[i], w[i], ws[i], p)
				}
				acc = be.auxBars[a].Reduce64(acc)
			} else {
				for i := 0; i < k; i++ {
					acc = mathutil.AddMod(acc, mathutil.ShoupMul(digits[i], w[i], ws[i], p), p)
				}
			}
			if neg {
				acc = mathutil.SubMod(acc, be.qModAux[a], p)
			}
			dst.Coeffs[k+a][j] = acc
		}
	}
}

// ScaleDown writes into dst (base ring) the coefficient-wise value
//
//	round(t·x_c / Q) mod Q
//
// where x_c is the centered representative of each coefficient of src
// (extended ring) and rounding is half-away-from-zero — exactly the
// big.Int reference computation (t·x_c ± Q/2) quo Q.
func (be *BasisExtender) ScaleDown(dst, src *Poly) {
	n := be.rQ.N
	if be.parChunks(opScaleDown, dst, src, n) {
		return
	}
	be.scaleDownChunk(dst, src, 0, n)
}

// scaleDownChunk rescales the coefficient range [lo, hi). Digit
// scratch lives on the stack for the common basis sizes, so the
// serial path performs no allocations.
func (be *BasisExtender) scaleDownChunk(dst, src *Poly, lo, hi int) {
	k, kExt, t := be.k, be.kExt, be.t
	var bufRes, bufDig [maxStackDigits]uint64
	res, digits := bufRes[:], bufDig[:]
	if kExt > maxStackDigits {
		res = make([]uint64, kExt)
		digits = make([]uint64, kExt)
	} else {
		res = res[:kExt]
		digits = digits[:kExt]
	}
	for j := lo; j < hi; j++ {
		for i := 0; i < kExt; i++ {
			res[i] = src.Coeffs[i][j]
		}
		be.decExt.Decompose(res, digits)
		neg := mathutil.MRGreater(digits, be.halfEDigits)
		if neg {
			// Work with the magnitude M = E - x of the centered value,
			// whose digits are the mixed-radix complement (O(K), no
			// second Garner pass).
			be.decExt.ComplementDigits(digits)
		}
		// digits ← carry-normalized mixed-radix digits of t·M + Q/2,
		// with the final carry as overflow digit (value < t + 2).
		carry := uint64(0)
		for i := 0; i < kExt; i++ {
			hi64, lo64 := bits.Mul64(digits[i], t)
			lo64, c := bits.Add64(lo64, be.hqExtDigits[i]+carry, 0)
			carry, digits[i] = be.divs[i].DivRem128(hi64+c, lo64)
		}
		// floor((t·M + Q/2)/Q) = Σ_{i≥k} digits[i]·(W_i/Q) + carry·(E/Q),
		// reduced mod each q_j with precomputed Shoup constants.
		for jq := 0; jq < k; jq++ {
			p := be.rQ.Primes[jq]
			v, vs := be.vMod[jq], be.vModS[jq]
			var acc uint64
			if be.lazyScale {
				acc = mathutil.ShoupMulLazy(carry, v[kExt-k], vs[kExt-k], p)
				for i := k; i < kExt; i++ {
					acc += mathutil.ShoupMulLazy(digits[i], v[i-k], vs[i-k], p)
				}
				acc = be.qBars[jq].Reduce64(acc)
			} else {
				acc = mathutil.ShoupMul(carry, v[kExt-k], vs[kExt-k], p)
				for i := k; i < kExt; i++ {
					acc = mathutil.AddMod(acc, mathutil.ShoupMul(digits[i], v[i-k], vs[i-k], p), p)
				}
			}
			if neg {
				acc = mathutil.NegMod(acc, p)
			}
			dst.Coeffs[jq][j] = acc
		}
	}
}

// maxStackDigits bounds the RNS basis size for which the mixed-radix
// conversions keep digit scratch on the stack. Every preset is far
// below it (kExt ≤ 9); larger custom bases fall back to heap scratch.
const maxStackDigits = 16
