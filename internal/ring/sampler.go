package ring

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/big"
	mrand "math/rand"
)

// Sampler draws random ring elements from the distributions used by
// BFV: uniform over R_Q, ternary secrets, and centered-binomial errors.
// A Sampler created with NewSampler uses crypto/rand; NewTestSampler
// uses a seeded deterministic source for reproducible tests.
type Sampler struct {
	r   *Ring
	src io.Reader
}

// NewSampler returns a cryptographically secure sampler for the ring.
func NewSampler(r *Ring) *Sampler {
	return &Sampler{r: r, src: rand.Reader}
}

// NewTestSampler returns a deterministic sampler seeded with seed.
// It must only be used in tests and benchmarks.
func NewTestSampler(r *Ring, seed int64) *Sampler {
	return &Sampler{r: r, src: deterministicReader{mrand.New(mrand.NewSource(seed))}}
}

type deterministicReader struct{ rng *mrand.Rand }

func (d deterministicReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.rng.Intn(256))
	}
	return len(p), nil
}

func (s *Sampler) uint64n(bound uint64) (uint64, error) {
	// Rejection sampling for an unbiased value in [0, bound).
	var buf [8]byte
	threshold := (^uint64(0) / bound) * bound
	for {
		if _, err := io.ReadFull(s.src, buf[:]); err != nil {
			return 0, fmt.Errorf("ring: randomness source failed: %w", err)
		}
		v := binary.LittleEndian.Uint64(buf[:])
		if v < threshold {
			return v % bound, nil
		}
	}
}

// Uniform fills p with coefficients uniform in [0, p_i) per prime.
// The per-prime residues are sampled independently, which yields a
// uniform element of R_Q by CRT.
func (s *Sampler) Uniform(p *Poly) error {
	for i, pr := range s.r.Primes {
		for j := range p.Coeffs[i] {
			v, err := s.uint64n(pr)
			if err != nil {
				return err
			}
			p.Coeffs[i][j] = v
		}
	}
	return nil
}

// Ternary fills p with coefficients drawn uniformly from {-1, 0, 1},
// represented mod each prime. This is the BFV secret-key distribution.
func (s *Sampler) Ternary(p *Poly) error {
	for j := 0; j < s.r.N; j++ {
		v, err := s.uint64n(3)
		if err != nil {
			return err
		}
		for i, pr := range s.r.Primes {
			switch v {
			case 0:
				p.Coeffs[i][j] = 0
			case 1:
				p.Coeffs[i][j] = 1
			default:
				p.Coeffs[i][j] = pr - 1
			}
		}
	}
	return nil
}

// cbdK is the parameter of the centered binomial distribution used for
// error sampling: sum of cbdK bits minus sum of cbdK bits, giving
// variance cbdK/2 (σ ≈ 3.2 for cbdK = 21, matching the HE standard).
const cbdK = 21

// Error fills p with centered-binomial noise of standard deviation
// ≈ 3.2 (the error distribution mandated by the HE security standard).
func (s *Sampler) Error(p *Poly) error {
	for j := 0; j < s.r.N; j++ {
		e, err := s.cbdSample()
		if err != nil {
			return err
		}
		for i, pr := range s.r.Primes {
			if e >= 0 {
				p.Coeffs[i][j] = uint64(e)
			} else {
				p.Coeffs[i][j] = pr - uint64(-e)
			}
		}
	}
	return nil
}

func (s *Sampler) cbdSample() (int64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(s.src, buf[:]); err != nil {
		return 0, fmt.Errorf("ring: randomness source failed: %w", err)
	}
	bits := binary.LittleEndian.Uint64(buf[:])
	var e int64
	for i := 0; i < cbdK; i++ {
		e += int64(bits >> (2 * i) & 1)
		e -= int64(bits >> (2*i + 1) & 1)
	}
	return e, nil
}

// SetSmall writes a small signed coefficient vector (e.g. a plaintext
// lifted to R_Q) into p, zeroing any remaining coefficients.
func (r *Ring) SetSmall(p *Poly, coeffs []int64) {
	for j, c := range coeffs {
		for i, pr := range r.Primes {
			if c >= 0 {
				p.Coeffs[i][j] = uint64(c) % pr
			} else {
				p.Coeffs[i][j] = pr - uint64(-c)%pr
			}
		}
	}
	for j := len(coeffs); j < r.N; j++ {
		for i := range r.Primes {
			p.Coeffs[i][j] = 0
		}
	}
}

// InfNormCenteredLog2 returns log2 of the infinity norm of p under the
// centered representative (or 0 for the zero polynomial). Used for
// noise diagnostics and tests.
func (r *Ring) InfNormCenteredLog2(p *Poly) float64 {
	res := make([]uint64, len(r.Primes))
	var tmp big.Int
	maxBits := 0.0
	for j := 0; j < r.N; j++ {
		for i := range r.Primes {
			res[i] = p.Coeffs[i][j]
		}
		r.crt.ReconstructCentered(&tmp, res)
		tmp.Abs(&tmp)
		if tmp.Sign() == 0 {
			continue
		}
		bits := bigLog2(&tmp)
		if bits > maxBits {
			maxBits = bits
		}
	}
	return maxBits
}

// bigLog2 returns log2(x) for a positive big integer x.
func bigLog2(x *big.Int) float64 {
	f := new(big.Float).SetInt(x)
	mant := new(big.Float)
	exp := f.MantExp(mant)
	m, _ := mant.Float64()
	return float64(exp) + math.Log2(m)
}
