package ring

import (
	"math/big"
	"math/rand"
	"testing"

	"porcupine/internal/mathutil"
)

// extenderFixture builds a Q ring, an extension with extra primes, and
// the BasisExtender between them, mirroring the bfv parameter layout.
func extenderFixture(t *testing.T, n int, workers int) (*Ring, *Ring, *BasisExtender) {
	t.Helper()
	qPrimes, err := mathutil.GenerateNTTPrimes(40, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	aux, err := mathutil.GenerateNTTPrimes(52, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := NewRingWithOptions(n, qPrimes, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewRingWithOptions(n, append(append([]uint64(nil), qPrimes...), aux...), Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	be, err := NewBasisExtender(rq, rx, 65537)
	if err != nil {
		t.Fatal(err)
	}
	return rq, rx, be
}

// liftCenteredBig is the big.Int reference for LiftCentered.
func liftCenteredBig(rq, rx *Ring, dst, src *Poly) {
	var x big.Int
	for j := 0; j < rq.N; j++ {
		rq.CoeffBigCentered(&x, src, j)
		rx.SetCoeffBig(dst, j, &x)
	}
}

// scaleDownBig is the big.Int reference for ScaleDown with t = 65537.
func scaleDownBig(rq, rx *Ring, dst, src *Poly) {
	t := new(big.Int).SetUint64(65537)
	q := rq.Modulus()
	halfQ := new(big.Int).Rsh(q, 1)
	var x, num big.Int
	for j := 0; j < rq.N; j++ {
		rx.CoeffBigCentered(&x, src, j)
		num.Mul(t, &x)
		if num.Sign() >= 0 {
			num.Add(&num, halfQ)
		} else {
			num.Sub(&num, halfQ)
		}
		num.Quo(&num, q)
		rq.SetCoeffBig(dst, j, &num)
	}
}

func TestLiftCenteredMatchesBigInt(t *testing.T) {
	for _, workers := range []int{0, 4} {
		rq, rx, be := extenderFixture(t, 64, workers)
		src := rq.NewPoly()
		rng := rand.New(rand.NewSource(11))

		fill := func() {
			for i, p := range rq.Primes {
				for j := range src.Coeffs[i] {
					src.Coeffs[i][j] = rng.Uint64() % p
				}
			}
		}
		check := func(name string) {
			t.Helper()
			got, want := rx.NewPoly(), rx.NewPoly()
			be.LiftCentered(got, src)
			liftCenteredBig(rq, rx, want, src)
			if !rx.Equal(got, want) {
				t.Fatalf("workers=%d %s: LiftCentered differs from big.Int reference", workers, name)
			}
		}

		for trial := 0; trial < 20; trial++ {
			fill()
			check("random")
		}

		// Edge coefficients around 0, ±1, Q/2 and Q-1.
		q := rq.Modulus()
		half := new(big.Int).Rsh(q, 1)
		edges := []*big.Int{
			big.NewInt(0), big.NewInt(1), big.NewInt(-1),
			half, new(big.Int).Add(half, big.NewInt(1)), new(big.Int).Neg(half),
			new(big.Int).Sub(q, big.NewInt(1)),
		}
		rq.Zero(src)
		for j, e := range edges {
			rq.SetCoeffBig(src, j, e)
		}
		check("edges")
	}
}

func TestScaleDownMatchesBigInt(t *testing.T) {
	for _, workers := range []int{0, 4} {
		rq, rx, be := extenderFixture(t, 64, workers)
		src := rx.NewPoly()
		rng := rand.New(rand.NewSource(12))

		check := func(name string) {
			t.Helper()
			got, want := rq.NewPoly(), rq.NewPoly()
			be.ScaleDown(got, src)
			scaleDownBig(rq, rx, want, src)
			if !rq.Equal(got, want) {
				t.Fatalf("workers=%d %s: ScaleDown differs from big.Int reference", workers, name)
			}
		}

		for trial := 0; trial < 20; trial++ {
			for i, p := range rx.Primes {
				for j := range src.Coeffs[i] {
					src.Coeffs[i][j] = rng.Uint64() % p
				}
			}
			check("random")
		}

		// Edge coefficients: 0, ±1, E/2 neighborhood (rounding boundary
		// between positive and negative centered values), ±Q, values
		// whose t-multiple sits near a multiple of Q.
		e := rx.Modulus()
		q := rq.Modulus()
		halfE := new(big.Int).Rsh(e, 1)
		edges := []*big.Int{
			big.NewInt(0), big.NewInt(1), big.NewInt(-1),
			halfE, new(big.Int).Add(halfE, big.NewInt(1)),
			new(big.Int).Sub(halfE, big.NewInt(1)),
			q, new(big.Int).Neg(q),
			new(big.Int).Rsh(q, 1), new(big.Int).Neg(new(big.Int).Rsh(q, 1)),
			new(big.Int).Sub(e, big.NewInt(1)),
		}
		rx.Zero(src)
		for j, ed := range edges {
			rx.SetCoeffBig(src, j, ed)
		}
		check("edges")
	}
}

func TestGaloisElementForRotationClosedForm(t *testing.T) {
	r, err := NewRing(64, []uint64{257}) // 257 ≡ 1 mod 128
	if err != nil {
		t.Fatal(err)
	}
	m := uint64(2 * r.N)
	for k := -40; k <= 40; k++ {
		// Reference: repeated multiplication.
		rowSize := r.N / 2
		kk := ((k % rowSize) + rowSize) % rowSize
		want := uint64(1)
		for i := 0; i < kk; i++ {
			want = want * 3 % m
		}
		if got := r.GaloisElementForRotation(k); got != want {
			t.Fatalf("GaloisElementForRotation(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestPolyPoolReuse(t *testing.T) {
	r, err := NewRing(32, []uint64{257})
	if err != nil {
		t.Fatal(err)
	}
	p := r.GetPoly()
	p.Coeffs[0][0] = 42
	r.PutPoly(p)
	q := r.GetPoly()
	for i := range q.Coeffs {
		for j, v := range q.Coeffs[i] {
			if v != 0 {
				t.Fatalf("pooled poly not zeroed at [%d][%d]: %d", i, j, v)
			}
		}
	}
}

func TestParallelOpsMatchSerial(t *testing.T) {
	primes, err := mathutil.GenerateNTTPrimes(40, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewRing(64, primes)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRingWithOptions(64, primes, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	mk := func(r *Ring) *Poly {
		p := r.NewPoly()
		for i, pr := range r.Primes {
			for j := range p.Coeffs[i] {
				p.Coeffs[i][j] = rng.Uint64() % pr
			}
		}
		return p
	}
	a := mk(serial)
	b := mk(serial)
	aP, bP := par.Copy(a), par.Copy(b)

	sOut, pOut := serial.NewPoly(), par.NewPoly()

	serial.MulPoly(sOut, a, b)
	par.MulPoly(pOut, aP, bP)
	if !serial.Equal(sOut, pOut) {
		t.Fatal("parallel MulPoly differs from serial")
	}

	serial.MulScalar(sOut, a, 123456789)
	par.MulScalar(pOut, aP, 123456789)
	if !serial.Equal(sOut, pOut) {
		t.Fatal("parallel MulScalar differs from serial")
	}
}
