package ring

import (
	"math/rand"
	"testing"
)

// TestAutomorphismNTT proves the NTT-domain permutation implements
// exactly the coefficient-domain automorphism: NTT(σ_g(f)) ==
// AutomorphismNTT(NTT(f), g) for every Galois element a rotation or
// row swap can produce.
func TestAutomorphismNTT(t *testing.T) {
	for _, n := range []int{16, 64} {
		r := testRing(t, n, 3)
		rng := rand.New(rand.NewSource(7))
		f := randPoly(r, rng)
		elems := []uint64{r.GaloisElementRowSwap()}
		for _, k := range []int{1, 2, 3, -1, n / 4} {
			elems = append(elems, r.GaloisElementForRotation(k))
		}
		for _, g := range elems {
			if g == 1 {
				continue
			}
			// Reference: automorphism in the coefficient domain, then NTT.
			want := r.NewPoly()
			r.Automorphism(want, f, g)
			r.NTT(want)
			// NTT first, then permute in the evaluation domain.
			fNtt := r.Copy(f)
			r.NTT(fNtt)
			got := r.NewPoly()
			r.AutomorphismNTT(got, fNtt, g)
			if !r.Equal(got, want) {
				t.Fatalf("N=%d g=%d: NTT-domain automorphism differs from coefficient-domain reference", n, g)
			}
		}
	}
}

// TestNTTPermutationBijective checks every cached table is a
// permutation (an automorphism never merges evaluation points).
func TestNTTPermutationBijective(t *testing.T) {
	r := testRing(t, 64, 3)
	for _, k := range []int{1, 5, -3} {
		g := r.GaloisElementForRotation(k)
		perm := r.NTTPermutation(g)
		seen := make([]bool, r.N)
		for _, p := range perm {
			if seen[p] {
				t.Fatalf("g=%d: index %d appears twice", g, p)
			}
			seen[p] = true
		}
	}
}

// TestMulAccumLazy proves the lazy 128-bit accumulation bit-identical
// to the per-term MulCoeffsAndAdd chain, with and without a fused
// permutation, on both the lazy and the eager fallback path.
func TestMulAccumLazy(t *testing.T) {
	r := testRing(t, 64, 3)
	rng := rand.New(rand.NewSource(11))
	k := len(r.Primes)
	as := make([]*Poly, k)
	bs := make([]*Poly, k)
	for i := range as {
		as[i], bs[i] = randPoly(r, rng), randPoly(r, rng)
	}
	perm := r.NTTPermutation(r.GaloisElementForRotation(3))

	ref := func(perm []uint32) *Poly {
		want := r.NewPoly()
		tmp := r.NewPoly()
		for i := range as {
			src := as[i]
			if perm != nil {
				src = r.NewPoly()
				for pi := range r.Primes {
					for j, pj := range perm {
						src.Coeffs[pi][j] = as[i].Coeffs[pi][pj]
					}
				}
			}
			r.MulCoeffs(tmp, src, bs[i])
			r.Add(want, want, tmp)
		}
		return want
	}

	for _, lazy := range []bool{true, false} {
		saved := r.lazyAccumOK
		r.lazyAccumOK = lazy
		got := r.NewPoly()
		r.MulAccumLazy(got, as, bs)
		if !r.Equal(got, ref(nil)) {
			t.Fatalf("lazy=%v: MulAccumLazy differs from MulCoeffsAndAdd chain", lazy)
		}
		r.PermutedMulAccumLazy(got, as, bs, perm)
		if !r.Equal(got, ref(perm)) {
			t.Fatalf("lazy=%v: PermutedMulAccumLazy differs from permuted reference", lazy)
		}
		r.lazyAccumOK = saved
	}
}

// TestDecomposeNTT checks the hoisted decomposition against the
// serial DigitLift+NTT loop and that Σ_i digit_i · P_i reconstructs
// the source (the key-switching correctness identity), and that the
// pooled scratch reaches a 0-alloc steady state.
func TestDecomposeNTT(t *testing.T) {
	r := testRing(t, 64, 3)
	rng := rand.New(rand.NewSource(13))
	src := randPoly(r, rng)

	d := r.GetDecomposition()
	r.DecomposeNTT(d, src)
	want := r.NewPoly()
	for i := range r.Primes {
		r.DigitLift(want, src, i)
		r.NTT(want)
		if !r.Equal(d.Digits[i], want) {
			t.Fatalf("digit %d differs from DigitLift+NTT reference", i)
		}
	}
	r.PutDecomposition(d)

	if raceEnabled {
		// sync.Pool randomly drops Puts under the race detector, so
		// the steady-state allocation count is meaningless there.
		return
	}
	allocs := testing.AllocsPerRun(50, func() {
		d := r.GetDecomposition()
		r.DecomposeNTT(d, src)
		r.PutDecomposition(d)
	})
	if allocs > 0 {
		t.Fatalf("steady-state decompose allocates %.1f objects/op, want 0", allocs)
	}
}
