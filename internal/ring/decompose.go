package ring

import (
	"math/bits"

	"porcupine/internal/mathutil"
)

// This file implements the three ring-level primitives behind hoisted
// Galois key switching:
//
//   - Decomposition: the RNS digit decomposition of a polynomial,
//     lifted and forward-NTT'd once and then reusable across any
//     number of key switches (pooled, allocation-free at steady
//     state);
//   - NTT-domain automorphisms: X → X^g permutes the evaluation
//     points of the negacyclic NTT, so a decomposed (NTT-domain)
//     digit is rotated by a precomputed index permutation instead of
//     an INTT + coefficient automorphism + NTT round trip;
//   - lazy inner products: the Σ_k digit_k ⊙ key_k chain accumulates
//     128-bit sums per coefficient and Barrett-reduces once at the
//     end, instead of reducing after every one of the K products.
//
// Together these turn the per-rotation cost of key switching from
// (K digit lifts + K forward NTTs + 2K reduced mul-adds + 2 INTTs)
// into (digit permute + 2 lazy inner products + 2 INTTs) once the
// decomposition is hoisted.

// Decomposition holds the key-switching digits of one polynomial:
// Digits[i] is the i-th RNS digit (row i of the source reduced into
// every prime) in the NTT domain. Obtain one with GetDecomposition,
// fill it with DecomposeNTT, and return it with PutDecomposition.
type Decomposition struct {
	Digits []*Poly
}

// GetDecomposition returns a decomposition scratch buffer from the
// ring's pool (one digit polynomial per prime, contents stale — every
// coefficient is overwritten by DecomposeNTT).
func (r *Ring) GetDecomposition() *Decomposition {
	if v := r.decompPool.Get(); v != nil {
		return v.(*Decomposition)
	}
	d := &Decomposition{Digits: make([]*Poly, len(r.Primes))}
	for i := range d.Digits {
		d.Digits[i] = r.NewPoly()
	}
	return d
}

// PutDecomposition returns a decomposition obtained from this ring's
// GetDecomposition to the pool. The caller must not use d afterwards.
func (r *Ring) PutDecomposition(d *Decomposition) {
	if d == nil || len(d.Digits) != len(r.Primes) {
		return // not one of ours; let the GC have it
	}
	r.decompPool.Put(d)
}

// DecomposeNTT fills d with the key-switching digits of src (which
// must be in the coefficient domain): digit i holds src's residues
// mod p_i lifted into every prime, forward-NTT'd. This is the
// decompose-once half of hoisted key switching; the per-key half is
// MulAccumLazy / PermutedMulAccumLazy.
func (r *Ring) DecomposeNTT(d *Decomposition, src *Poly) {
	if w := r.workers; w > 1 {
		if op := acquireOp(); op != nil {
			// Digit × prime grid: every (digit, prime-row) pair lifts and
			// transforms independently, so K primes give K² tasks — enough
			// to fill more cores than K alone would.
			op.kind, op.r = opDecompose, r
			op.d, op.src = d, src
			k := len(r.Primes)
			op.grid(k*k, 0, w, false)
			runOp(op, w)
			return
		}
	}
	for i := range r.Primes {
		r.DigitLift(d.Digits[i], src, i)
		r.NTT(d.Digits[i])
	}
}

// NTTPermutation returns the index permutation implementing the
// Galois automorphism X → X^g in the NTT domain: for polynomials in
// the evaluation domain, dst[j] = src[perm[j]] per prime. g must be
// odd. Tables are built once per Galois element and cached on the
// ring (the table depends only on N and g, not on the prime).
//
// The negacyclic NTT used here stores f(ψ^(2·br(j)+1)) at index j
// (Harvey bit-reversed layout), so evaluating σ_g(f) = f(X^g) at that
// point reads f at ψ^((2·br(j)+1)·g), i.e. index br(((2·br(j)+1)·g
// mod 2N − 1)/2). Because g is odd, odd exponents map to odd
// exponents: the automorphism is a pure permutation in the evaluation
// domain — no sign fixups, unlike the coefficient-domain form.
func (r *Ring) NTTPermutation(g uint64) []uint32 {
	if v, ok := r.permCache.Load(g); ok {
		return v.([]uint32)
	}
	n := uint64(r.N)
	mask := 2*n - 1
	t := make([]uint32, n)
	for j := uint64(0); j < n; j++ {
		e := (2*mathutil.BitReverse(j, r.LogN) + 1) * (g & mask) & mask
		t[j] = uint32(mathutil.BitReverse((e-1)>>1, r.LogN))
	}
	actual, _ := r.permCache.LoadOrStore(g, t)
	return actual.([]uint32)
}

// AutomorphismNTT applies X → X^g to src in the NTT domain, writing
// into dst: the evaluation-point permutation NTTPermutation(g). dst
// must not alias src. Equivalent to INTT → Automorphism → NTT, at the
// cost of a gather.
func (r *Ring) AutomorphismNTT(dst, src *Poly, g uint64) {
	r.AutomorphismNTTWithTable(dst, src, r.NTTPermutation(g))
}

// AutomorphismNTTWithTable is AutomorphismNTT with the permutation
// resolved by the caller (NTTPermutation) — the prefetched form used
// by batched cross-source key switching.
func (r *Ring) AutomorphismNTTWithTable(dst, src *Poly, perm []uint32) {
	for i := range r.Primes {
		si, di := src.Coeffs[i], dst.Coeffs[i]
		for j, pj := range perm {
			di[j] = si[pj]
		}
	}
}

// maxLazyFan bounds the stack-allocated row-pointer arrays of the
// lazy inner-product loops. Rings with more primes than this fall
// back to the eager per-term reduction (bit-identical, slower).
const maxLazyFan = 16

// MulAccumLazy sets dst = Σ_k as[k] ⊙ bs[k] for NTT-domain operands,
// with one modular reduction per coefficient instead of one per term:
// the K products accumulate into a 128-bit sum that a single Barrett
// reduction folds back below p. Every coefficient of dst is written
// (no zeroed accumulator needed). len(as) must equal len(bs); dst may
// alias neither.
//
// The 128-bit sum never overflows when K·max(p) < 2^64 (checked at
// ring construction); otherwise, and for K > maxLazyFan, the loop
// falls back to reducing each term — the results are bit-identical
// either way, since both compute the exact residue of the sum.
func (r *Ring) MulAccumLazy(dst *Poly, as, bs []*Poly) {
	if r.parMulAccum(dst, as, bs, nil) {
		return
	}
	for i := range r.Primes {
		r.mulAccumRange(dst, as, bs, nil, i, 0, r.N)
	}
}

// parMulAccum submits the inner product to the worker pool on a
// prime × coefficient-chunk grid. Returns false (caller runs serial)
// when workers <= 1 or no descriptor is free.
func (r *Ring) parMulAccum(dst *Poly, as, bs []*Poly, perm []uint32) bool {
	w := r.workers
	if w <= 1 {
		return false
	}
	op := acquireOp()
	if op == nil {
		return false
	}
	op.kind, op.r = opMulAccum, r
	op.dst, op.as, op.bs, op.perm = dst, as, bs, perm
	op.grid(len(r.Primes), r.N, w, true)
	runOp(op, w)
	return true
}

// PermutedMulAccumLazy is MulAccumLazy with the automorphism
// permutation fused into the gather: dst = Σ_k σ(as[k]) ⊙ bs[k] where
// σ(a)[j] = a[perm[j]] (see NTTPermutation). The hoisted digits are
// never copied: the permutation is an index indirection in the load.
func (r *Ring) PermutedMulAccumLazy(dst *Poly, as, bs []*Poly, perm []uint32) {
	if r.parMulAccum(dst, as, bs, perm) {
		return
	}
	for i := range r.Primes {
		r.mulAccumRange(dst, as, bs, perm, i, 0, r.N)
	}
}

// mulAccumRange computes coefficients [lo, hi) of prime row i of the
// (optionally permuted) lazy inner product. The permutation gather
// reads full source rows (perm indices span [0, N)), so only the
// destination range is restricted.
func (r *Ring) mulAccumRange(dst *Poly, as, bs []*Poly, perm []uint32, i, lo, hi int) {
	k := len(as)
	if k == 0 {
		clear(dst.Coeffs[i][lo:hi])
		return
	}
	if !r.lazyAccumOK || k > maxLazyFan {
		r.mulAccumEagerRange(dst, as, bs, perm, i, lo, hi)
		return
	}
	var arows, brows [maxLazyFan][]uint64
	for x := 0; x < k; x++ {
		arows[x], brows[x] = as[x].Coeffs[i], bs[x].Coeffs[i]
	}
	bar := r.tables[i].bar
	di := dst.Coeffs[i]
	if perm == nil {
		for j := lo; j < hi; j++ {
			var sumHi, sumLo, c uint64
			for x := 0; x < k; x++ {
				ph, pl := bits.Mul64(arows[x][j], brows[x][j])
				sumLo, c = bits.Add64(sumLo, pl, 0)
				sumHi += ph + c
			}
			di[j] = bar.Reduce128(sumHi, sumLo)
		}
		return
	}
	for j := lo; j < hi; j++ {
		pj := perm[j]
		var sumHi, sumLo, c uint64
		for x := 0; x < k; x++ {
			ph, pl := bits.Mul64(arows[x][pj], brows[x][j])
			sumLo, c = bits.Add64(sumLo, pl, 0)
			sumHi += ph + c
		}
		di[j] = bar.Reduce128(sumHi, sumLo)
	}
}

// mulAccumEagerRange is the per-term-reduction fallback: exact
// residues, identical to the lazy path bit for bit.
func (r *Ring) mulAccumEagerRange(dst *Poly, as, bs []*Poly, perm []uint32, i, lo, hi int) {
	p := r.Primes[i]
	bar := r.tables[i].bar
	di := dst.Coeffs[i]
	for x := range as {
		ai, bi := as[x].Coeffs[i], bs[x].Coeffs[i]
		if x == 0 {
			if perm == nil {
				for j := lo; j < hi; j++ {
					di[j] = bar.MulMod(ai[j], bi[j])
				}
			} else {
				for j := lo; j < hi; j++ {
					di[j] = bar.MulMod(ai[perm[j]], bi[j])
				}
			}
			continue
		}
		if perm == nil {
			for j := lo; j < hi; j++ {
				di[j] = mathutil.AddMod(di[j], bar.MulMod(ai[j], bi[j]), p)
			}
		} else {
			for j := lo; j < hi; j++ {
				di[j] = mathutil.AddMod(di[j], bar.MulMod(ai[perm[j]], bi[j]), p)
			}
		}
	}
}
