package codegen

import (
	"strings"
	"testing"

	"porcupine/internal/baseline"
	"porcupine/internal/quill"
)

func TestEmitSEALGx(t *testing.T) {
	l, err := baseline.Lowered("gx")
	if err != nil {
		t.Fatal(err)
	}
	src, err := EmitSEAL(l, Options{FuncName: "gx"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Ciphertext gx(",
		"evaluator.rotate_rows(",
		"evaluator.sub(",
		"evaluator.add(",
		"const Ciphertext &ct0",
		"gal_keys",
		"return c",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q:\n%s", want, src)
		}
	}
	// Six rotations for the unseparated baseline.
	if got := strings.Count(src, "rotate_rows"); got != 6 {
		t.Errorf("expected 6 rotate_rows, got %d", got)
	}
}

func TestEmitSEALPlaintextOps(t *testing.T) {
	l, err := baseline.Lowered("linear-regression")
	if err != nil {
		t.Fatal(err)
	}
	src, err := EmitSEAL(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"multiply_plain",
		"add_plain",
		"const Plaintext &pt0",
		"const Plaintext &pt1",
		"Ciphertext kernel(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q:\n%s", want, src)
		}
	}
}

func TestEmitSEALRelinAndConstants(t *testing.T) {
	p := &quill.Program{
		VecLen:      8,
		NumCtInputs: 1,
		Instrs: []quill.Instr{
			{Op: quill.OpMulCtCt, A: quill.CtRef{ID: 0}, B: quill.CtRef{ID: 0}},
			{Op: quill.OpMulCtPt, A: quill.CtRef{ID: 1}, P: quill.PtRef{Input: -1, Const: []int64{-2}}},
		},
		Output: 2,
	}
	l, err := quill.Lower(p, quill.DefaultLowerOptions())
	if err != nil {
		t.Fatal(err)
	}
	src, err := EmitSEAL(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "relinearize") {
		t.Error("missing relinearize call")
	}
	// -2 mod 65537 = 65535.
	if !strings.Contains(src, "65535") {
		t.Errorf("signed constant not normalized:\n%s", src)
	}
	if !strings.Contains(src, "encoder.encode(std::vector<uint64_t>(encoder.slot_count(), 65535)") {
		t.Errorf("broadcast constant encoding missing:\n%s", src)
	}
}

func TestEmitSEALInvalidProgram(t *testing.T) {
	l := &quill.Lowered{VecLen: 7, NumCtInputs: 1}
	if _, err := EmitSEAL(l, Options{}); err == nil {
		t.Error("invalid program should fail")
	}
}

func TestEmitSEALDeterministic(t *testing.T) {
	l, err := baseline.Lowered("box-blur")
	if err != nil {
		t.Fatal(err)
	}
	a, err := EmitSEAL(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EmitSEAL(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("codegen is not deterministic")
	}
}
