// Package compose implements the paper's multi-step synthesis (§6.3):
// large applications are partitioned at natural break points, each
// segment is synthesized (or hand-written) independently, and the
// lowered segments are stitched into one pipeline. Sobel and Harris —
// the paper's two multi-step workloads — are built here from gradient
// and blur building blocks.
package compose

import (
	"fmt"

	"porcupine/internal/kernels"
	"porcupine/internal/quill"
)

// Sobel builds the squared-gradient-magnitude pipeline Gx² + Gy² from
// any pair of gradient programs (baseline or synthesized).
func Sobel(gx, gy *quill.Program) (*quill.Lowered, error) {
	lgx, err := quill.Lower(gx, quill.DefaultLowerOptions())
	if err != nil {
		return nil, err
	}
	lgy, err := quill.Lower(gy, quill.DefaultLowerOptions())
	if err != nil {
		return nil, err
	}
	comb, err := quill.Concat(lgx, lgy, []int{0})
	if err != nil {
		return nil, err
	}
	gxOut := lgx.Output
	gyOut := comb.Output
	b := builder{l: comb}
	sq1 := b.mulRelin(gxOut, gxOut)
	sq2 := b.mulRelin(gyOut, gyOut)
	b.l.Output = b.add(quill.OpAddCtCt, sq1, sq2)
	if err := b.l.Validate(); err != nil {
		return nil, fmt.Errorf("compose: sobel: %w", err)
	}
	return b.l, nil
}

// Harris builds the integerized Harris corner response
// 16·det(M) − trace(M)² from gradient and box-blur programs
// (see kernels.Harris for the specification).
func Harris(gx, gy, blur *quill.Program) (*quill.Lowered, error) {
	lgx, err := quill.Lower(gx, quill.DefaultLowerOptions())
	if err != nil {
		return nil, err
	}
	lgy, err := quill.Lower(gy, quill.DefaultLowerOptions())
	if err != nil {
		return nil, err
	}
	lblur, err := quill.Lower(blur, quill.DefaultLowerOptions())
	if err != nil {
		return nil, err
	}
	comb, err := quill.Concat(lgx, lgy, []int{0})
	if err != nil {
		return nil, err
	}
	gxOut := lgx.Output
	gyOut := comb.Output
	b := builder{l: comb}

	ixx := b.mulRelin(gxOut, gxOut)
	iyy := b.mulRelin(gyOut, gyOut)
	ixy := b.mulRelin(gxOut, gyOut)

	sxx, err := b.concat(lblur, ixx)
	if err != nil {
		return nil, err
	}
	syy, err := b.concat(lblur, iyy)
	if err != nil {
		return nil, err
	}
	sxy, err := b.concat(lblur, ixy)
	if err != nil {
		return nil, err
	}

	d1 := b.mulRelin(sxx, syy)
	d2 := b.mulRelin(sxy, sxy)
	det := b.add(quill.OpSubCtCt, d1, d2)
	tr := b.add(quill.OpAddCtCt, sxx, syy)
	tr2 := b.mulRelin(tr, tr)
	det16 := b.mulConst(det, kernels.HarrisK16)
	b.l.Output = b.add(quill.OpSubCtCt, det16, tr2)
	if err := b.l.Validate(); err != nil {
		return nil, fmt.Errorf("compose: harris: %w", err)
	}
	return b.l, nil
}

// builder appends instructions to a lowered program with sequential
// SSA ids.
type builder struct {
	l *quill.Lowered
}

func (b *builder) append(in quill.LInstr) int {
	in.Dst = b.l.NumValues()
	b.l.Instrs = append(b.l.Instrs, in)
	return in.Dst
}

func (b *builder) add(op quill.Op, x, y int) int {
	return b.append(quill.LInstr{Op: op, A: x, B: y})
}

func (b *builder) mulRelin(x, y int) int {
	m := b.append(quill.LInstr{Op: quill.OpMulCtCt, A: x, B: y})
	return b.append(quill.LInstr{Op: quill.OpRelin, A: m})
}

func (b *builder) mulConst(x int, c int64) int {
	return b.append(quill.LInstr{Op: quill.OpMulCtPt, A: x,
		P: quill.PtRef{Input: -1, Const: []int64{c}}})
}

// concat splices seg after the current program, feeding value src as
// its single ciphertext input, and returns the new output id.
func (b *builder) concat(seg *quill.Lowered, src int) (int, error) {
	comb, err := quill.Concat(b.l, seg, []int{src})
	if err != nil {
		return 0, err
	}
	b.l = comb
	return comb.Output, nil
}
