package compose_test

import (
	"testing"

	"porcupine/internal/baseline"
	"porcupine/internal/compose"
	"porcupine/internal/kernels"
	"porcupine/internal/quill"
)

func TestSobelFromBaselines(t *testing.T) {
	l, err := compose.Sobel(baseline.Gx(), baseline.Gy())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	ok, err := kernels.Sobel().CheckLowered(l)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("composed sobel does not match spec")
	}
	if l.MultDepth() != 1 {
		t.Errorf("sobel mult depth = %d, want 1", l.MultDepth())
	}
}

func TestHarrisFromBaselines(t *testing.T) {
	l, err := compose.Harris(baseline.Gx(), baseline.Gy(), baseline.BoxBlur())
	if err != nil {
		t.Fatal(err)
	}
	ok, err := kernels.Harris().CheckLowered(l)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("composed harris does not match spec")
	}
	if d := l.MultDepth(); d != 3 {
		t.Errorf("harris mult depth = %d, want 3", d)
	}
}

// TestSobelFromPaperSynthesized composes the paper's separable
// synthesized gradient kernels and checks both correctness and the
// instruction-count win over the baseline composition.
func TestSobelFromPaperSynthesized(t *testing.T) {
	gx := &quill.Program{
		VecLen:      kernels.ImgVecLen,
		NumCtInputs: 1,
		Instrs: []quill.Instr{
			{Op: quill.OpAddCtCt, A: quill.CtRef{ID: 0, Rot: -5}, B: quill.CtRef{ID: 0}},
			{Op: quill.OpAddCtCt, A: quill.CtRef{ID: 1, Rot: 5}, B: quill.CtRef{ID: 1}},
			{Op: quill.OpSubCtCt, A: quill.CtRef{ID: 2, Rot: 1}, B: quill.CtRef{ID: 2, Rot: -1}},
		},
		Output: 3,
	}
	gy := &quill.Program{
		VecLen:      kernels.ImgVecLen,
		NumCtInputs: 1,
		Instrs: []quill.Instr{
			{Op: quill.OpAddCtCt, A: quill.CtRef{ID: 0, Rot: -1}, B: quill.CtRef{ID: 0}},
			{Op: quill.OpAddCtCt, A: quill.CtRef{ID: 1, Rot: 1}, B: quill.CtRef{ID: 1}},
			{Op: quill.OpSubCtCt, A: quill.CtRef{ID: 2, Rot: 5}, B: quill.CtRef{ID: 2, Rot: -5}},
		},
		Output: 3,
	}
	synth, err := compose.Sobel(gx, gy)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := kernels.Sobel().CheckLowered(synth)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("synthesized-composition sobel does not match spec")
	}
	base, err := compose.Sobel(baseline.Gx(), baseline.Gy())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: synthesized sobel 21 vs baseline 31 instructions (ours:
	// 19 vs 29 with uniform relin accounting).
	if synth.InstructionCount() >= base.InstructionCount() {
		t.Errorf("synthesized sobel (%d) should use fewer instructions than baseline (%d)",
			synth.InstructionCount(), base.InstructionCount())
	}
	if got := synth.InstructionCount(); got != 19 {
		t.Errorf("synthesized sobel = %d instructions, want 19", got)
	}
}

func TestComposeRejectsMismatchedShapes(t *testing.T) {
	bad := &quill.Program{
		VecLen:      8, // wrong vector length vs the 32-slot gradients
		NumCtInputs: 1,
		Instrs:      []quill.Instr{{Op: quill.OpAddCtCt, A: quill.CtRef{ID: 0}, B: quill.CtRef{ID: 0}}},
		Output:      1,
	}
	if _, err := compose.Sobel(baseline.Gx(), bad); err == nil {
		t.Error("mismatched vector lengths should fail")
	}
	if _, err := compose.Harris(baseline.Gx(), bad, baseline.BoxBlur()); err == nil {
		t.Error("mismatched vector lengths should fail")
	}
}

// TestOptimizeComposedHarris: the global CSE pass must find sharing
// that per-segment lowering cannot — the baseline Gx and Gy segments
// rotate the same input by ±4 and ±6.
func TestOptimizeComposedHarris(t *testing.T) {
	l, err := compose.Harris(baseline.Gx(), baseline.Gy(), baseline.BoxBlur())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := quill.OptimizeLowered(l)
	if err != nil {
		t.Fatal(err)
	}
	if opt.InstructionCount() >= l.InstructionCount() {
		t.Errorf("global CSE found nothing: %d vs %d instructions",
			opt.InstructionCount(), l.InstructionCount())
	}
	ok, err := kernels.Harris().CheckLowered(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("optimized harris no longer matches its spec")
	}
}
