// Package baseline provides the expert hand-written HE kernels the
// paper compares against (§7.1): implementations that follow the
// state-of-the-art heuristic of minimizing logic depth — align all
// window elements with rotations first, then combine them in balanced
// reduction trees — with packed inputs. These are the "Baseline"
// columns of Table 2 and the denominators of Figure 4.
package baseline

import (
	"fmt"

	"porcupine/internal/compose"
	"porcupine/internal/kernels"
	"porcupine/internal/quill"
)

// ref is shorthand for a rotated ciphertext reference.
func ref(id, rot int) quill.CtRef { return quill.CtRef{ID: id, Rot: rot} }

// BoxBlur is the depth-minimized 2×2 box blur of Figure 5(b):
// three rotations at level one, then a balanced add tree
// (6 instructions, depth 3).
func BoxBlur() *quill.Program {
	return &quill.Program{
		VecLen:      kernels.ImgVecLen,
		NumCtInputs: 1,
		Instrs: []quill.Instr{
			{Op: quill.OpAddCtCt, A: ref(0, 1), B: ref(0, 0)}, // c1 = x(i+1) + x(i)
			{Op: quill.OpAddCtCt, A: ref(0, 5), B: ref(0, 6)}, // c2 = x(i+5) + x(i+6)
			{Op: quill.OpAddCtCt, A: ref(1, 0), B: ref(2, 0)}, // c3 = c1 + c2
		},
		Output: 3,
	}
}

// Gx aligns all six window elements of the x-gradient with rotations,
// then combines them in a balanced tree, substituting the ×2 with an
// addition (12 instructions, depth 4 — Figure 6(b)'s strategy).
//
// out[i] = x[i-4] - x[i-6] + 2·(x[i+1] - x[i-1]) + x[i+6] - x[i+4].
func Gx() *quill.Program {
	return &quill.Program{
		VecLen:      kernels.ImgVecLen,
		NumCtInputs: 1,
		Instrs: []quill.Instr{
			{Op: quill.OpSubCtCt, A: ref(0, -4), B: ref(0, -6)}, // c1: top row
			{Op: quill.OpSubCtCt, A: ref(0, 1), B: ref(0, -1)},  // c2: middle row
			{Op: quill.OpSubCtCt, A: ref(0, 6), B: ref(0, 4)},   // c3: bottom row
			{Op: quill.OpAddCtCt, A: ref(2, 0), B: ref(2, 0)},   // c4 = 2·c2 (mul-by-2 as add)
			{Op: quill.OpAddCtCt, A: ref(1, 0), B: ref(3, 0)},   // c5 = c1 + c3
			{Op: quill.OpAddCtCt, A: ref(4, 0), B: ref(5, 0)},   // c6
		},
		Output: 6,
	}
}

// Gy is the transposed variant of Gx (12 instructions, depth 4).
//
// out[i] = x[i+4] + 2·x[i+5] + x[i+6] - x[i-6] - 2·x[i-5] - x[i-4].
func Gy() *quill.Program {
	return &quill.Program{
		VecLen:      kernels.ImgVecLen,
		NumCtInputs: 1,
		Instrs: []quill.Instr{
			{Op: quill.OpSubCtCt, A: ref(0, 4), B: ref(0, -4)}, // c1
			{Op: quill.OpSubCtCt, A: ref(0, 5), B: ref(0, -5)}, // c2
			{Op: quill.OpSubCtCt, A: ref(0, 6), B: ref(0, -6)}, // c3
			{Op: quill.OpAddCtCt, A: ref(2, 0), B: ref(2, 0)},  // c4 = 2·c2
			{Op: quill.OpAddCtCt, A: ref(1, 0), B: ref(3, 0)},  // c5 = c1 + c3
			{Op: quill.OpAddCtCt, A: ref(4, 0), B: ref(5, 0)},  // c6
		},
		Output: 6,
	}
}

// RobertsCross squares the two diagonal differences and sums them
// (10 instructions, depth 5, matching Table 2 exactly).
func RobertsCross() *quill.Program {
	return &quill.Program{
		VecLen:      kernels.ImgVecLen,
		NumCtInputs: 1,
		Instrs: []quill.Instr{
			{Op: quill.OpSubCtCt, A: ref(0, 0), B: ref(0, 6)}, // c1 = x(r,c) - x(r+1,c+1)
			{Op: quill.OpSubCtCt, A: ref(0, 5), B: ref(0, 1)}, // c2 = x(r+1,c) - x(r,c+1)
			{Op: quill.OpMulCtCt, A: ref(1, 0), B: ref(1, 0)}, // c3 = c1²  (+ relin)
			{Op: quill.OpMulCtCt, A: ref(2, 0), B: ref(2, 0)}, // c4 = c2²  (+ relin)
			{Op: quill.OpAddCtCt, A: ref(3, 0), B: ref(4, 0)},
		},
		Output: 5,
	}
}

// DotProduct multiplies by the plaintext weights then reduces with a
// balanced rotate-add tree (7 instructions, depth 7).
func DotProduct() *quill.Program {
	return &quill.Program{
		VecLen:      kernels.DotN,
		NumCtInputs: 1,
		NumPtInputs: 1,
		Instrs: []quill.Instr{
			{Op: quill.OpMulCtPt, A: ref(0, 0), P: quill.PtRef{Input: 0}}, // c1 = x ⊙ w
			{Op: quill.OpAddCtCt, A: ref(1, 4), B: ref(1, 0)},             // c2
			{Op: quill.OpAddCtCt, A: ref(2, 2), B: ref(2, 0)},             // c3
			{Op: quill.OpAddCtCt, A: ref(3, 1), B: ref(3, 0)},             // c4: slot 0 holds Σ
		},
		Output: 4,
	}
}

// HammingDistance subtracts, squares, and tree-reduces (7 lowered
// instructions including the relinearization; depth 7).
func HammingDistance() *quill.Program {
	return &quill.Program{
		VecLen:      kernels.HammingN,
		NumCtInputs: 2,
		Instrs: []quill.Instr{
			{Op: quill.OpSubCtCt, A: ref(0, 0), B: ref(1, 0)},
			{Op: quill.OpMulCtCt, A: ref(2, 0), B: ref(2, 0)},
			{Op: quill.OpAddCtCt, A: ref(3, 2), B: ref(3, 0)},
			{Op: quill.OpAddCtCt, A: ref(4, 1), B: ref(4, 0)},
		},
		Output: 5,
	}
}

// L2Distance subtracts, squares, and tree-reduces over 8 elements
// (9 instructions, depth 9 — Table 2 exactly).
func L2Distance() *quill.Program {
	return &quill.Program{
		VecLen:      kernels.L2N,
		NumCtInputs: 2,
		Instrs: []quill.Instr{
			{Op: quill.OpSubCtCt, A: ref(0, 0), B: ref(1, 0)},
			{Op: quill.OpMulCtCt, A: ref(2, 0), B: ref(2, 0)},
			{Op: quill.OpAddCtCt, A: ref(3, 4), B: ref(3, 0)},
			{Op: quill.OpAddCtCt, A: ref(4, 2), B: ref(4, 0)},
			{Op: quill.OpAddCtCt, A: ref(5, 1), B: ref(5, 0)},
		},
		Output: 6,
	}
}

// LinearRegression: multiply by packed weights, fold the feature pair,
// add the bias (4 instructions, depth 4).
func LinearRegression() *quill.Program {
	return &quill.Program{
		VecLen:      2 * kernels.LinRegSamples,
		NumCtInputs: 1,
		NumPtInputs: 2,
		Instrs: []quill.Instr{
			{Op: quill.OpMulCtPt, A: ref(0, 0), P: quill.PtRef{Input: 0}}, // x ⊙ w
			{Op: quill.OpAddCtCt, A: ref(1, 1), B: ref(1, 0)},             // fold pairs
			{Op: quill.OpAddCtPt, A: ref(2, 0), P: quill.PtRef{Input: 1}}, // + b
		},
		Output: 3,
	}
}

// PolynomialRegression evaluates a·x² + b·x + c directly: x² first,
// both products in parallel levels, then the sum (8 lowered
// instructions, depth 6 — the depth-minimized shape).
func PolynomialRegression() *quill.Program {
	return &quill.Program{
		VecLen:      kernels.PolyRegN,
		NumCtInputs: 3, // x, a, b
		NumPtInputs: 1, // c
		Instrs: []quill.Instr{
			{Op: quill.OpMulCtCt, A: ref(0, 0), B: ref(0, 0)},             // c3 = x²
			{Op: quill.OpMulCtCt, A: ref(1, 0), B: ref(3, 0)},             // c4 = a·x²
			{Op: quill.OpMulCtCt, A: ref(2, 0), B: ref(0, 0)},             // c5 = b·x
			{Op: quill.OpAddCtCt, A: ref(4, 0), B: ref(5, 0)},             // c6
			{Op: quill.OpAddCtPt, A: ref(6, 0), P: quill.PtRef{Input: 0}}, // + c
		},
		Output: 7,
	}
}

// serialReduce appends the fan-out-1 shift-accumulate reduction
//
//	acc = base; repeat m-1 times: acc = rot(acc, 1) + base
//
// to p and points the output at the final accumulator. This is the
// naive serial form of the slot reduction the depth-minimized
// baselines write as a balanced tree: m−1 rotations, each of a
// DIFFERENT source, so rotation sharing, hoisting, and domain
// assignment all see fan-out 1. It computes exactly the same function
// as the tree (the same multiset of literal offsets {0..m-1}).
func serialReduce(p *quill.Program, base, m int) {
	acc := base
	for k := 1; k < m; k++ {
		p.Instrs = append(p.Instrs, quill.Instr{Op: quill.OpAddCtCt, A: ref(acc, 1), B: ref(base, 0)})
		acc = p.NumCtInputs + len(p.Instrs) - 1
	}
	p.Output = acc
}

// SerialReductionNames lists the kernels with a serial-chain variant.
func SerialReductionNames() []string {
	return []string{"dot-product", "hamming-distance", "l2-distance"}
}

// SerialReduction returns the serial shift-accumulate form of a
// reduction kernel: identical prologue to the depth-minimized
// baseline, but the slot reduction written as a fan-out-1 chain
// (dot-product and l2-distance: 7 rotations; hamming-distance: 3).
// These are the "before" programs of the tree-reduction rewrite
// (quill.TreeReduceLowered) and the serial legs of benchrot's
// serial-vs-tree comparison.
func SerialReduction(name string) (*quill.Program, error) {
	switch name {
	case "dot-product":
		p := &quill.Program{
			VecLen:      kernels.DotN,
			NumCtInputs: 1,
			NumPtInputs: 1,
			Instrs: []quill.Instr{
				{Op: quill.OpMulCtPt, A: ref(0, 0), P: quill.PtRef{Input: 0}}, // c1 = x ⊙ w
			},
		}
		serialReduce(p, 1, kernels.DotN)
		return p, nil
	case "hamming-distance":
		p := &quill.Program{
			VecLen:      kernels.HammingN,
			NumCtInputs: 2,
			Instrs: []quill.Instr{
				{Op: quill.OpSubCtCt, A: ref(0, 0), B: ref(1, 0)},
				{Op: quill.OpMulCtCt, A: ref(2, 0), B: ref(2, 0)},
			},
		}
		serialReduce(p, 3, kernels.HammingN)
		return p, nil
	case "l2-distance":
		p := &quill.Program{
			VecLen:      kernels.L2N,
			NumCtInputs: 2,
			Instrs: []quill.Instr{
				{Op: quill.OpSubCtCt, A: ref(0, 0), B: ref(1, 0)},
				{Op: quill.OpMulCtCt, A: ref(2, 0), B: ref(2, 0)},
			},
		}
		serialReduce(p, 3, kernels.L2N)
		return p, nil
	}
	return nil, fmt.Errorf("baseline: no serial-reduction variant of %q", name)
}

// SerialLowered lowers the serial-reduction variant of a kernel.
func SerialLowered(name string) (*quill.Lowered, error) {
	p, err := SerialReduction(name)
	if err != nil {
		return nil, err
	}
	return quill.Lower(p, quill.DefaultLowerOptions())
}

// Sobel composes the baseline Gx and Gy with squaring and a final add
// (the baseline for the multi-step §7.2 evaluation).
func Sobel() (*quill.Lowered, error) {
	return compose.Sobel(Gx(), Gy())
}

// Harris composes gradients, structure-tensor products, box blurs and
// the integerized response 16·det − trace² (the multi-step baseline).
func Harris() (*quill.Lowered, error) {
	return compose.Harris(Gx(), Gy(), BoxBlur())
}

// Programs returns the nine directly written baseline kernels keyed by
// the spec names in kernels.All.
func Programs() map[string]*quill.Program {
	return map[string]*quill.Program{
		"box-blur":              BoxBlur(),
		"dot-product":           DotProduct(),
		"hamming-distance":      HammingDistance(),
		"l2-distance":           L2Distance(),
		"linear-regression":     LinearRegression(),
		"polynomial-regression": PolynomialRegression(),
		"gx":                    Gx(),
		"gy":                    Gy(),
		"roberts-cross":         RobertsCross(),
	}
}

// Names lists every baseline kernel — the Programs map plus the
// multi-step sobel and harris — in a fixed, reproducible order.
func Names() []string {
	return []string{
		"box-blur",
		"dot-product",
		"hamming-distance",
		"l2-distance",
		"linear-regression",
		"polynomial-regression",
		"gx",
		"gy",
		"roberts-cross",
		"sobel",
		"harris",
	}
}

// Lowered returns the lowered baseline for any kernel name, including
// the multi-step sobel and harris.
func Lowered(name string) (*quill.Lowered, error) {
	if p, ok := Programs()[name]; ok {
		return quill.Lower(p, quill.DefaultLowerOptions())
	}
	switch name {
	case "sobel":
		return Sobel()
	case "harris":
		return Harris()
	}
	return nil, fmt.Errorf("baseline: unknown kernel %q", name)
}
