package baseline

import (
	"testing"

	"porcupine/internal/kernels"
	"porcupine/internal/quill"
)

// TestBaselinesMatchSpecs verifies every hand-written baseline against
// its kernel specification by exact symbolic comparison — the same
// check the synthesis engine's verifier performs.
func TestBaselinesMatchSpecs(t *testing.T) {
	for _, spec := range kernels.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			prog, ok := Programs()[spec.Name]
			if !ok {
				t.Fatalf("no baseline for %s", spec.Name)
			}
			okSym, err := spec.CheckProgram(prog)
			if err != nil {
				t.Fatal(err)
			}
			if !okSym {
				t.Errorf("baseline %s does not implement its spec:\n%s", spec.Name, prog)
			}
		})
	}
}

func TestMultiStepBaselinesMatchSpecs(t *testing.T) {
	for _, name := range []string{"sobel", "harris"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec := kernels.ByName(name)
			l, err := Lowered(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Validate(); err != nil {
				t.Fatalf("%s invalid: %v", name, err)
			}
			ok, err := spec.CheckLowered(l)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("%s baseline does not implement its spec", name)
			}
		})
	}
}

// TestBaselineTable2Counts pins the lowered instruction counts and
// depths of the hand-written baselines (paper Table 2, "Baseline"
// columns; see EXPERIMENTS.md for the accounting differences — we
// count relinearization explicitly).
func TestBaselineTable2Counts(t *testing.T) {
	want := map[string]struct{ instrs, depth int }{
		"box-blur":              {6, 3},
		"dot-product":           {7, 7},
		"hamming-distance":      {7, 7},
		"l2-distance":           {9, 9},
		"linear-regression":     {4, 4},
		"polynomial-regression": {8, 6},
		"gx":                    {12, 4},
		"gy":                    {12, 4},
		"roberts-cross":         {10, 5},
	}
	for name, w := range want {
		l, err := Lowered(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := l.InstructionCount(); got != w.instrs {
			t.Errorf("%s: %d instructions, want %d\n%s", name, got, w.instrs, l)
		}
		if got := l.Depth(); got != w.depth {
			t.Errorf("%s: depth %d, want %d", name, got, w.depth)
		}
	}
}

func TestMultiStepBaselineCounts(t *testing.T) {
	sobel, err := Lowered("sobel")
	if err != nil {
		t.Fatal(err)
	}
	// 12 + 12 + 2 squarings (mul+relin) + add = 29 (paper: 31).
	if got := sobel.InstructionCount(); got != 29 {
		t.Errorf("sobel baseline: %d instructions, want 29", got)
	}
	harris, err := Lowered("harris")
	if err != nil {
		t.Fatal(err)
	}
	// 12+12 gradients, 6 tensor products, 18 blurs, 10 response = 58
	// (paper: 59).
	if got := harris.InstructionCount(); got != 58 {
		t.Errorf("harris baseline: %d instructions, want 58", got)
	}
	if harris.MultDepth() < 2 {
		t.Error("harris should have multiplicative depth >= 2")
	}
}

// TestSerialReductionsMatchBaselines: each serial shift-accumulate
// variant computes exactly the same function as its depth-minimized
// baseline — full-vector equality at the kernel's own width and on
// zero-padded rows (the wraparound case the HE backend sees) — while
// carrying the expected n−1 fan-out-1 rotations.
func TestSerialReductionsMatchBaselines(t *testing.T) {
	wantRots := map[string]int{"dot-product": 7, "hamming-distance": 3, "l2-distance": 7}
	for _, name := range SerialReductionNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			serial, err := SerialLowered(name)
			if err != nil {
				t.Fatal(err)
			}
			if got := serial.RotationCount(); got != wantRots[name] {
				t.Fatalf("serial %s has %d rotations, want %d\n%s", name, got, wantRots[name], serial)
			}
			base, err := Lowered(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, pad := range []int{1, 4, 128} {
				rowLen := serial.VecLen * pad
				ctIn := make([]quill.Vec, serial.NumCtInputs)
				for i := range ctIn {
					ctIn[i] = make(quill.Vec, rowLen)
					for j := 0; j < serial.VecLen; j++ {
						ctIn[i][j] = uint64(3*i+j) % 61
					}
				}
				ptIn := make([]quill.Vec, serial.NumPtInputs)
				for i := range ptIn {
					ptIn[i] = make(quill.Vec, rowLen)
					for j := 0; j < serial.VecLen; j++ {
						ptIn[i][j] = uint64(5*i+j) % 61
					}
				}
				want, err := quill.RunLowered(base, quill.ConcreteSem{}, ctIn, ptIn)
				if err != nil {
					t.Fatal(err)
				}
				got, err := quill.RunLowered(serial, quill.ConcreteSem{}, ctIn, ptIn)
				if err != nil {
					t.Fatal(err)
				}
				for j := range want {
					if want[j] != got[j] {
						t.Fatalf("%s pad %d slot %d: serial %d != baseline %d", name, pad, j, got[j], want[j])
					}
				}
			}
		})
	}
}

// TestSerialReductionsTreeReduce: the optimizer rewrites every serial
// variant into the decompose-once fan — the same rotation count as the
// serial chain, but a SINGLE rotation source, so a double-hoisted plan
// needs one digit decomposition where the hand-written doubling tree
// needs one per level.
func TestSerialReductionsTreeReduce(t *testing.T) {
	wantRots := map[string]int{"dot-product": 7, "hamming-distance": 3, "l2-distance": 7}
	for _, name := range SerialReductionNames() {
		serial, err := SerialLowered(name)
		if err != nil {
			t.Fatal(err)
		}
		fan, err := quill.OptimizeLowered(serial)
		if err != nil {
			t.Fatal(err)
		}
		if got := fan.RotationCount(); got != wantRots[name] {
			t.Errorf("%s: fan form has %d rotations, want %d\n%s", name, got, wantRots[name], fan)
		}
		if got, want := fan.DecompositionCount(), 1; got != want {
			t.Errorf("%s: fan form has %d rotation sources, want %d\n%s", name, got, want, fan)
		}
		base, err := Lowered(name)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := fan.DecompositionCount(), base.DecompositionCount(); got >= want {
			t.Errorf("%s: fan decompositions %d not below baseline tree's %d", name, got, want)
		}
	}
}

func TestSerialReductionUnknownKernel(t *testing.T) {
	if _, err := SerialReduction("box-blur"); err == nil {
		t.Error("non-reduction kernel should fail")
	}
}

func TestLoweredUnknownKernel(t *testing.T) {
	if _, err := Lowered("nope"); err == nil {
		t.Error("unknown kernel should fail")
	}
}

func TestBaselineDepthStyle(t *testing.T) {
	// The baselines follow depth minimization: for box blur all
	// rotations must be at level 1.
	l, err := Lowered("box-blur")
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range l.Instrs {
		if in.Op == quill.OpRotCt && in.A != 0 {
			t.Errorf("baseline box blur rotates an intermediate value:\n%s", l)
		}
	}
}
