package core

import (
	"strings"
	"testing"
	"time"

	"porcupine/internal/synth"
)

func fastOpts() synth.Options {
	return synth.Options{Seed: 1, Timeout: 5 * time.Minute}
}

func TestKernelLists(t *testing.T) {
	if len(DirectKernels()) != 9 {
		t.Errorf("direct kernels = %d, want 9", len(DirectKernels()))
	}
	if len(MultiStepKernels()) != 2 {
		t.Error("multi-step kernels wrong")
	}
	if len(AllKernels()) != 11 {
		t.Error("all kernels wrong")
	}
}

func TestCompileKernel(t *testing.T) {
	c, err := CompileKernel("box-blur", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "box-blur" || c.Result == nil || c.Lowered == nil {
		t.Error("compiled kernel incomplete")
	}
	if c.Lowered.InstructionCount() != 4 {
		t.Errorf("box blur instructions = %d", c.Lowered.InstructionCount())
	}
	if _, err := CompileKernel("nope", fastOpts()); err == nil {
		t.Error("unknown kernel should fail")
	}
}

func TestCompileSuiteWithMultiStep(t *testing.T) {
	if testing.Short() {
		t.Skip("suite compilation synthesizes gx/gy")
	}
	s, err := CompileSuite([]string{"sobel"}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Dependencies compiled on demand.
	for _, dep := range []string{"gx", "gy", "box-blur", "sobel"} {
		if s.Kernels[dep] == nil {
			t.Errorf("suite missing %s", dep)
		}
	}
	sobel := s.Kernels["sobel"]
	if sobel.Result != nil {
		t.Error("multi-step kernel should not carry a direct synthesis result")
	}
	base, err := BaselineLowered("sobel")
	if err != nil {
		t.Fatal(err)
	}
	if sobel.Lowered.InstructionCount() >= base.InstructionCount() {
		t.Errorf("synthesized sobel (%d instrs) should beat baseline (%d)",
			sobel.Lowered.InstructionCount(), base.InstructionCount())
	}
}

func TestEmitSEALFromCompiled(t *testing.T) {
	c, err := CompileKernel("linear-regression", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	src, err := c.EmitSEAL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "Ciphertext linear_regression(") {
		t.Errorf("function name not sanitized:\n%s", src)
	}
}

func TestBaselineLoweredAll(t *testing.T) {
	for _, name := range AllKernels() {
		if _, err := BaselineLowered(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDefaultSynthOptions(t *testing.T) {
	opts := DefaultSynthOptions()
	if opts.Timeout != 20*time.Minute {
		t.Error("default timeout should match the paper's 20 minutes")
	}
}
