package core

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"porcupine/internal/synth"
)

var update = flag.Bool("update", false, "regenerate golden files")

// goldenRow pins the synthesis outcome of one kernel: the number of
// sketch components of the (component-minimal) solution and the
// lowered instruction profile. L is 0 for composed multi-step kernels.
type goldenRow struct {
	L         int `json:"l"`
	Instrs    int `json:"instrs"`
	MultDepth int `json:"mult_depth"`
}

const goldenPath = "testdata/table3_golden.json"

// TestGoldenTable3 synthesizes all 11 registered kernels under a fixed
// seed with the deterministic single-worker search and asserts the
// synthesized L and lowered instruction counts match the checked-in
// golden values — the repository's Table-3 regression gate. Run with
// -update to regenerate after an intentional engine change.
func TestGoldenTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes the full kernel suite")
	}
	rep, err := BuildSuite(nil, BuildOptions{
		Opts: synth.Options{
			Timeout:      10 * time.Minute,
			Seed:         1,
			Parallelism:  1, // fully deterministic search order
			SkipOptimize: true,
		},
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]goldenRow{}
	for _, n := range rep.Order {
		ent := rep.Entries[n]
		if ent.Err != nil {
			t.Fatalf("%s: %v", n, ent.Err)
		}
		row := goldenRow{
			Instrs:    ent.Compiled.Lowered.InstructionCount(),
			MultDepth: ent.Compiled.Lowered.MultDepth(),
		}
		if ent.Compiled.Result != nil {
			row.L = ent.Compiled.Result.L
		}
		got[n] = row
	}
	if len(got) != 11 {
		t.Fatalf("suite compiled %d kernels, want 11", len(got))
	}

	if *update {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s", goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	want := map[string]goldenRow{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	for n, w := range want {
		g, ok := got[n]
		if !ok {
			t.Errorf("%s: missing from compiled suite", n)
			continue
		}
		if g != w {
			t.Errorf("%s: got L=%d instrs=%d multdepth=%d, want L=%d instrs=%d multdepth=%d",
				n, g.L, g.Instrs, g.MultDepth, w.L, w.Instrs, w.MultDepth)
		}
	}
	for n := range got {
		if _, ok := want[n]; !ok {
			t.Errorf("%s: compiled but absent from golden file (regenerate with -update)", n)
		}
	}
}
