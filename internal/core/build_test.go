package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"porcupine/internal/kernels"
	"porcupine/internal/synth"
)

func buildOpts() synth.Options {
	return synth.Options{Timeout: 2 * time.Minute, Seed: 1}
}

// TestBuildSuiteWarmRebuild checks the end-to-end batch pipeline: a
// cold build populates the cache (synthesis entries and the composed
// multi-step program), and a warm rebuild is served entirely from it —
// including the composition — with identical artifacts.
func TestBuildSuiteWarmRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("builds gx/gy/box-blur and composes sobel")
	}
	cache, err := synth.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bo := BuildOptions{Opts: buildOpts(), Workers: 2, Cache: cache}

	cold, err := BuildSuite([]string{"sobel"}, bo)
	if err != nil {
		t.Fatal(err)
	}
	if failed := cold.Failed(); len(failed) > 0 {
		t.Fatalf("cold build failures: %v", failed)
	}
	for _, n := range cold.Order {
		if cold.Entries[n].FromCache {
			t.Errorf("cold build served %s from cache", n)
		}
	}

	warm, err := BuildSuite([]string{"sobel"}, bo)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range warm.Order {
		ent := warm.Entries[n]
		if ent.Err != nil {
			t.Fatalf("warm %s: %v", n, ent.Err)
		}
		if !ent.FromCache {
			t.Errorf("warm build re-compiled %s", n)
		}
		if got, want := ent.Compiled.Lowered.String(), cold.Entries[n].Compiled.Lowered.String(); got != want {
			t.Errorf("warm %s lowered program differs from cold build", n)
		}
	}
	// The warm composed program must still implement the spec.
	ok, err := kernels.ByName("sobel").CheckLowered(warm.Entries["sobel"].Compiled.Lowered)
	if err != nil || !ok {
		t.Fatalf("warm composed sobel fails verification (ok=%v err=%v)", ok, err)
	}
}

// TestBuildSuiteCorruptComposeEntry checks that a tampered composed
// entry fails its integrity checksum and the kernel is re-composed.
func TestBuildSuiteCorruptComposeEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("builds gx/gy/box-blur and composes sobel")
	}
	dir := t.TempDir()
	cache, err := synth.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	bo := BuildOptions{Opts: buildOpts(), Workers: 2, Cache: cache}
	if _, err := BuildSuite([]string{"sobel"}, bo); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.lowered.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want 1 composed cache file, got %v (err %v)", files, err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip an instruction opcode inside the stored lowered text; the
	// checksum no longer matches, so the entry must be dropped.
	tampered := []byte(string(raw))
	for i := range tampered {
		if i+8 < len(tampered) && string(tampered[i:i+8]) == "add-ct-c" {
			tampered[i] = 's'
			break
		}
	}
	if err := os.WriteFile(files[0], tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	cache2, err := synth.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	bo.Cache = cache2
	rep, err := BuildSuite([]string{"sobel"}, bo)
	if err != nil {
		t.Fatal(err)
	}
	ent := rep.Entries["sobel"]
	if ent.Err != nil {
		t.Fatal(ent.Err)
	}
	if ent.FromCache {
		t.Fatal("tampered composed entry was served from cache")
	}
	ok, err := kernels.ByName("sobel").CheckLowered(ent.Compiled.Lowered)
	if err != nil || !ok {
		t.Fatalf("re-composed sobel fails verification (ok=%v err=%v)", ok, err)
	}
}

// TestBuildSuitePlanPreset checks that a batch build with PlanPreset
// attaches a serving plan to every compiled kernel.
func TestBuildSuitePlanPreset(t *testing.T) {
	bo := BuildOptions{Opts: buildOpts(), Workers: 2, PlanPreset: "PN2048"}
	rep, err := BuildSuite([]string{"box-blur"}, bo)
	if err != nil {
		t.Fatal(err)
	}
	ent := rep.Entries["box-blur"]
	if ent.Err != nil {
		t.Fatal(ent.Err)
	}
	p := ent.Compiled.Plan
	if p == nil {
		t.Fatal("PlanPreset set but Compiled.Plan is nil")
	}
	if p.InstructionCount() == 0 || p.NumRegs == 0 {
		t.Errorf("implausible plan: %d steps, %d registers", p.InstructionCount(), p.NumRegs)
	}
	if len(p.Rotations) == 0 {
		t.Error("box-blur plan needs rotation keys, got none")
	}

	// Without PlanPreset no plan is compiled.
	rep2, err := BuildSuite([]string{"box-blur"}, BuildOptions{Opts: buildOpts(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Entries["box-blur"].Compiled.Plan != nil {
		t.Error("plan compiled without PlanPreset")
	}
}
