package core

import (
	"fmt"
	"time"

	"porcupine/internal/bfv"
	"porcupine/internal/kernels"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
	"porcupine/internal/synth"
)

// BuildOptions configures a batch compilation of the kernel suite.
type BuildOptions struct {
	// Opts are the per-kernel synthesis options. Leave Opts.Parallelism
	// at 0 to let the scheduler divide Workers among in-flight kernels;
	// a positive value forces that worker count on every kernel,
	// regardless of the global budget (CompileSuite relies on this).
	Opts synth.Options
	// Workers is the global worker budget shared by every kernel in
	// the batch (default: GOMAXPROCS).
	Workers int
	// Cache, when set, serves warm results and records cold ones.
	Cache *synth.Cache
	// Progress, when set, receives synthesis events serially.
	Progress func(synth.Event)
	// FailFast stops launching new kernels after the first synthesis
	// failure instead of compiling the rest of the batch.
	FailFast bool
	// PlanPreset, when set to a BFV preset name (PN4096, PN8192, ...),
	// additionally compiles every successfully built kernel into an
	// execution plan for that parameter set (Compiled.Plan), the
	// artifact the serving path (backend.Session) executes.
	PlanPreset string
}

// BuildEntry is one kernel's outcome in a batch build.
type BuildEntry struct {
	Compiled *Compiled
	Err      error
	Wall     time.Duration
	// FromCache marks kernels served from the persistent cache:
	// synthesis hits (also visible as Result.Cached) and cached
	// multi-step compositions.
	FromCache bool
	// DepOnly marks kernels compiled only as inputs of a requested
	// multi-step kernel, not requested themselves.
	DepOnly bool
}

// BuildReport is the outcome of a batch build: one entry per compiled
// kernel (requested or dependency), in Table-3 order, plus the total
// wall clock.
type BuildReport struct {
	Order   []string
	Entries map[string]*BuildEntry
	Wall    time.Duration
}

// Failed returns the names of kernels that failed to compile.
func (r *BuildReport) Failed() []string {
	var out []string
	for _, n := range r.Order {
		if r.Entries[n].Err != nil {
			out = append(out, n)
		}
	}
	return out
}

// BuildSuite batch-compiles the named kernels (nil = the full
// 11-kernel suite) through a shared work-stealing scheduler. Direct
// kernels are synthesized concurrently under the global worker budget;
// multi-step kernels (sobel, harris) are composed from their
// synthesized segments once those finish. Unknown kernel names fail
// the whole call; individual synthesis failures are recorded per
// entry and reported by BuildReport.Failed.
func BuildSuite(names []string, bo BuildOptions) (*BuildReport, error) {
	if names == nil {
		names = AllKernels()
	}
	requested := map[string]bool{}
	var order []string
	for _, n := range names {
		if kernels.ByName(n) == nil {
			return nil, fmt.Errorf("core: unknown kernel %q (known: %v)", n, AllKernels())
		}
		if !requested[n] {
			requested[n] = true
			order = append(order, n)
		}
	}

	// Multi-step kernels pull in their synthesized segments.
	deps := map[string]bool{}
	var multi []string
	var direct []string
	for _, n := range order {
		switch n {
		case "sobel", "harris":
			multi = append(multi, n)
			// Any multi-step kernel pulls in all three segment kernels,
			// matching the historical CompileSuite contract.
			deps["gx"], deps["gy"], deps["box-blur"] = true, true, true
		default:
			direct = append(direct, n)
		}
	}
	inDirect := map[string]bool{}
	for _, n := range direct {
		inDirect[n] = true
	}
	for dep := range deps {
		if !inDirect[dep] {
			inDirect[dep] = true
			direct = append(direct, dep)
			order = append(order, dep)
		}
	}

	start := time.Now()
	jobs := make([]synth.Job, 0, len(direct))
	for _, n := range direct {
		sk, err := synth.DefaultSketch(n)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, synth.Job{Name: n, Spec: kernels.ByName(n), Sketch: sk, Opts: bo.Opts})
	}
	sched := &synth.Scheduler{Workers: bo.Workers, Cache: bo.Cache, Progress: bo.Progress, FailFast: bo.FailFast}
	jres := sched.Run(jobs)

	rep := &BuildReport{Entries: map[string]*BuildEntry{}}
	for _, jr := range jres {
		ent := &BuildEntry{Wall: jr.Wall, DepOnly: !requested[jr.Name], FromCache: jr.Result != nil && jr.Result.Cached}
		if jr.Err != nil {
			ent.Err = fmt.Errorf("core: synthesizing %s: %w", jr.Name, jr.Err)
		} else {
			spec := kernels.ByName(jr.Name)
			ok, err := spec.CheckLowered(jr.Result.Lowered)
			switch {
			case err != nil:
				ent.Err = err
			case !ok:
				ent.Err = fmt.Errorf("core: %s: lowered program failed final verification", jr.Name)
			default:
				ent.Compiled = &Compiled{Name: jr.Name, Spec: spec, Result: jr.Result, Lowered: jr.Result.Lowered}
			}
		}
		rep.Entries[jr.Name] = ent
	}

	// Compose the multi-step kernels from their segments.
	suite := &Suite{Kernels: map[string]*Compiled{}}
	for n, ent := range rep.Entries {
		if ent.Compiled != nil {
			suite.Kernels[n] = ent.Compiled
		}
	}
	for _, n := range multi {
		mstart := time.Now()
		ent := &BuildEntry{}
		if missing := missingDeps(n, rep); len(missing) > 0 {
			ent.Err = fmt.Errorf("core: %s: segment kernels failed: %v", n, missing)
		} else {
			spec := kernels.ByName(n)
			segs := []*quill.Program{suite.Kernels["gx"].Result.Program, suite.Kernels["gy"].Result.Program}
			if n == "harris" {
				segs = append(segs, suite.Kernels["box-blur"].Result.Program)
			}
			// Composition itself is cheap; the symbolic verification of
			// the large composed program is not. Cache the verified
			// lowered program keyed by the (already verified) segment
			// programs, so warm rebuilds skip both.
			var key string
			if bo.Cache != nil {
				key = synth.ComposeKey(n, spec, segs...)
				if l := bo.Cache.GetLowered(key); l != nil &&
					l.VecLen == spec.VecLen && l.NumCtInputs == len(spec.Ct) && l.NumPtInputs == len(spec.Pt) {
					ent.Compiled = &Compiled{Name: n, Spec: spec, Lowered: l}
					ent.FromCache = true
				}
			}
			if ent.Compiled == nil {
				c, err := composeMulti(n, suite)
				if err != nil {
					ent.Err = err
				} else {
					ent.Compiled = c
					if bo.Cache != nil {
						// Best-effort, like synthesis entries: a failed
						// cache write must not fail a verified kernel.
						_ = bo.Cache.PutLowered(key, n, c.Lowered)
					}
				}
			}
		}
		ent.Wall = time.Since(mstart)
		rep.Entries[n] = ent
	}

	// Report in canonical Table-3 order, extras last.
	canonical := AllKernels()
	inOrder := map[string]bool{}
	for _, n := range canonical {
		if _, ok := rep.Entries[n]; ok {
			rep.Order = append(rep.Order, n)
			inOrder[n] = true
		}
	}
	for _, n := range order {
		if !inOrder[n] {
			rep.Order = append(rep.Order, n)
		}
	}

	// Compile serving plans when a preset was requested. One parameter
	// set and encoder serve the whole batch; a kernel whose plan fails
	// to compile is reported failed (it cannot be served).
	if bo.PlanPreset != "" {
		params, err := bfv.NewParametersFromPreset(bo.PlanPreset)
		if err != nil {
			return nil, err
		}
		encoder, err := bfv.NewEncoder(params)
		if err != nil {
			return nil, err
		}
		for _, n := range rep.Order {
			ent := rep.Entries[n]
			if ent.Compiled == nil {
				continue
			}
			p, err := plan.Compile(params, encoder, ent.Compiled.Lowered)
			if err != nil {
				ent.Err = fmt.Errorf("core: planning %s for %s: %w", n, bo.PlanPreset, err)
				ent.Compiled = nil
				continue
			}
			ent.Compiled.Plan = p
		}
	}
	rep.Wall = time.Since(start)
	return rep, nil
}

func missingDeps(multi string, rep *BuildReport) []string {
	deps := []string{"gx", "gy"}
	if multi == "harris" {
		deps = append(deps, "box-blur")
	}
	var missing []string
	for _, d := range deps {
		if ent, ok := rep.Entries[d]; !ok || ent.Compiled == nil {
			missing = append(missing, d)
		}
	}
	return missing
}
