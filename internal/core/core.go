// Package core wires the Porcupine pipeline together (Figure 3):
// kernel specification + sketch → synthesis engine → verified Quill
// program → lowering (rotation CSE, relinearization insertion) → SEAL
// code generation / BFV execution. It also implements the multi-step
// compilation of Sobel and Harris from independently synthesized
// segments (§6.3) and the suite driver used by the benchmark harness.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"porcupine/internal/baseline"
	"porcupine/internal/codegen"
	"porcupine/internal/compose"
	"porcupine/internal/kernels"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
	"porcupine/internal/synth"
)

// DirectKernels lists the nine directly synthesized kernels in the
// paper's Table 3 order.
func DirectKernels() []string {
	var names []string
	for _, s := range kernels.All() {
		names = append(names, s.Name)
	}
	return names
}

// MultiStepKernels lists the §6.3 composed workloads.
func MultiStepKernels() []string { return []string{"sobel", "harris"} }

// AllKernels lists every workload of the evaluation (Figure 4 order).
func AllKernels() []string { return append(DirectKernels(), MultiStepKernels()...) }

// Compiled is the outcome of compiling one kernel.
type Compiled struct {
	Name    string
	Spec    *kernels.Spec
	Result  *synth.Result  // nil for multi-step pipelines
	Lowered *quill.Lowered // the executable artifact
	// Plan is the serving artifact: the lowered program compiled into
	// an allocation-free execution plan. Populated by BuildSuite when
	// BuildOptions.PlanPreset is set (nil otherwise).
	Plan *plan.ExecutionPlan
}

// CompileKernel synthesizes a directly synthesized kernel with its
// default sketch and verifies the result.
func CompileKernel(name string, opts synth.Options) (*Compiled, error) {
	spec := kernels.ByName(name)
	if spec == nil {
		return nil, fmt.Errorf("core: unknown kernel %q", name)
	}
	res, err := synth.SynthesizeKernel(name, opts)
	if err != nil {
		return nil, fmt.Errorf("core: synthesizing %s: %w", name, err)
	}
	ok, err := spec.CheckLowered(res.Lowered)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: %s: lowered program failed final verification", name)
	}
	return &Compiled{Name: name, Spec: spec, Result: res, Lowered: res.Lowered}, nil
}

// Suite holds compiled artifacts for a set of kernels.
type Suite struct {
	Kernels map[string]*Compiled
}

// CompileSuite compiles the named kernels (nil = all nine direct
// kernels plus sobel and harris) one at a time. Multi-step kernels
// are composed from the synthesized gx, gy and box-blur segments,
// which are compiled on demand if not already requested. It is the
// sequential facade over BuildSuite; batch callers wanting concurrency,
// caching, or progress streaming should call BuildSuite directly.
func CompileSuite(names []string, opts synth.Options) (*Suite, error) {
	if opts.Parallelism <= 0 {
		// One kernel at a time, each search using every core — the
		// pre-batch behavior.
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	// FailFast preserves the historical abort-on-first-error contract:
	// a kernel that fails at minute one must not cost the caller the
	// full per-kernel budget of every remaining kernel first.
	rep, err := BuildSuite(names, BuildOptions{Opts: opts, Workers: 1, FailFast: true})
	if err != nil {
		return nil, err
	}
	s := &Suite{Kernels: map[string]*Compiled{}}
	var firstErr error
	for _, n := range rep.Order {
		ent := rep.Entries[n]
		if ent.Err != nil {
			// Prefer the root failure over "not attempted" skip markers.
			if !errors.Is(ent.Err, synth.ErrNotAttempted) {
				return nil, ent.Err
			}
			if firstErr == nil {
				firstErr = ent.Err
			}
			continue
		}
		s.Kernels[n] = ent.Compiled
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return s, nil
}

func composeMulti(name string, s *Suite) (*Compiled, error) {
	gx := s.Kernels["gx"].Result.Program
	gy := s.Kernels["gy"].Result.Program
	var l *quill.Lowered
	var err error
	switch name {
	case "sobel":
		l, err = compose.Sobel(gx, gy)
	case "harris":
		l, err = compose.Harris(gx, gy, s.Kernels["box-blur"].Result.Program)
	default:
		return nil, fmt.Errorf("core: unknown multi-step kernel %q", name)
	}
	if err != nil {
		return nil, err
	}
	spec := kernels.ByName(name)
	ok, err := spec.CheckLowered(l)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: composed %s failed verification", name)
	}
	return &Compiled{Name: name, Spec: spec, Lowered: l}, nil
}

// BaselineLowered returns the hand-written baseline for any kernel.
func BaselineLowered(name string) (*quill.Lowered, error) {
	return baseline.Lowered(name)
}

// EmitSEAL generates SEAL C++ for a compiled kernel.
func (c *Compiled) EmitSEAL() (string, error) {
	return codegen.EmitSEAL(c.Lowered, codegen.Options{FuncName: cIdent(c.Name)})
}

func cIdent(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		if r == '-' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

// DefaultSynthOptions returns the options used by the benchmark
// harness: a generous paper-style timeout and a fixed seed for
// reproducibility.
func DefaultSynthOptions() synth.Options {
	return synth.Options{Timeout: 20 * time.Minute, Seed: 1}
}
