package backend

import (
	"math/rand"
	"testing"

	"porcupine/internal/bfv"
	"porcupine/internal/quill"
)

// randomLowered builds a random valid lowered program over the full
// HE row (VecLen == slot count), so abstract rotation semantics and
// BFV row rotation coincide exactly, wrap-around included.
func randomLowered(rng *rand.Rand, vecLen int, steps []int) *quill.Lowered {
	l := &quill.Lowered{
		VecLen:      vecLen,
		NumCtInputs: 1 + rng.Intn(2),
		NumPtInputs: rng.Intn(2),
	}
	next := l.NumCtInputs
	muls := 0
	n := 3 + rng.Intn(5)
	for i := 0; i < n; i++ {
		pick := func() int { return rng.Intn(next) }
		var in quill.LInstr
		switch rng.Intn(7) {
		case 0:
			in = quill.LInstr{Op: quill.OpRotCt, A: pick(), Rot: steps[rng.Intn(len(steps))]}
		case 1:
			in = quill.LInstr{Op: quill.OpAddCtCt, A: pick(), B: pick()}
		case 2:
			in = quill.LInstr{Op: quill.OpSubCtCt, A: pick(), B: pick()}
		case 3:
			// Cap ct-ct multiplies to keep noise within PN2048 budget.
			if muls >= 2 {
				in = quill.LInstr{Op: quill.OpAddCtCt, A: pick(), B: pick()}
			} else {
				muls++
				a := pick()
				in = quill.LInstr{Op: quill.OpMulCtCt, A: a, B: pick()}
				l.Instrs = append(l.Instrs, quill.LInstr{Op: in.Op, Dst: next, A: in.A, B: in.B})
				next++
				in = quill.LInstr{Op: quill.OpRelin, A: next - 1}
			}
		case 4:
			in = quill.LInstr{Op: quill.OpMulCtPt, A: pick(), P: quill.PtRef{Input: -1, Const: []int64{int64(rng.Intn(9) - 4)}}}
		case 5:
			if l.NumPtInputs > 0 {
				in = quill.LInstr{Op: quill.OpAddCtPt, A: pick(), P: quill.PtRef{Input: rng.Intn(l.NumPtInputs)}}
			} else {
				in = quill.LInstr{Op: quill.OpAddCtPt, A: pick(), P: quill.PtRef{Input: -1, Const: []int64{7}}}
			}
		default:
			in = quill.LInstr{Op: quill.OpSubCtPt, A: pick(), P: quill.PtRef{Input: -1, Const: []int64{-3}}}
		}
		in.Dst = next
		l.Instrs = append(l.Instrs, in)
		next++
	}
	l.Output = next - 1
	return l
}

// TestDifferentialInterpreterVsBFV runs random programs through the
// abstract Quill interpreter and the real BFV backend and requires
// identical outputs on every slot. This exercises the full semantic
// stack: encoder layout, rotation direction, tensor-product scaling,
// relinearization, and plaintext lifting.
func TestDifferentialInterpreterVsBFV(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fuzzing is slow")
	}
	params, err := bfv.NewParametersFromPreset("PN2048")
	if err != nil {
		t.Fatal(err)
	}
	vecLen := params.SlotCount() // 1024: identical wrap semantics
	steps := []int{1, -1, 2, -3, 5, 17, -64, 511}

	// One runtime with keys for all candidate rotations.
	keyProg := &quill.Lowered{VecLen: vecLen, NumCtInputs: 1}
	next := 1
	for _, s := range steps {
		keyProg.Instrs = append(keyProg.Instrs, quill.LInstr{Op: quill.OpRotCt, Dst: next, A: 0, Rot: s})
		next++
	}
	keyProg.Output = next - 1
	rt, err := NewTestRuntime("PN2048", 11, keyProg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		l := randomLowered(rng, vecLen, steps)
		if err := l.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v", trial, err)
		}
		ctIn := make([]quill.Vec, l.NumCtInputs)
		cts := make([]*bfv.Ciphertext, l.NumCtInputs)
		for i := range ctIn {
			v := make(quill.Vec, vecLen)
			for j := range v {
				v[j] = rng.Uint64() % 64
			}
			ctIn[i] = v
			if cts[i], err = rt.EncryptVec(v); err != nil {
				t.Fatal(err)
			}
		}
		ptIn := make([]quill.Vec, l.NumPtInputs)
		for i := range ptIn {
			v := make(quill.Vec, vecLen)
			for j := range v {
				v[j] = rng.Uint64() % 64
			}
			ptIn[i] = v
		}
		want, err := quill.RunLowered(l, quill.ConcreteSem{}, ctIn, ptIn)
		if err != nil {
			t.Fatalf("trial %d: interpreter: %v", trial, err)
		}
		out, err := rt.Run(l, cts, ptIn)
		if err != nil {
			t.Fatalf("trial %d: backend: %v\n%s", trial, err, l)
		}
		if b := rt.NoiseBudget(out); b <= 0 {
			t.Fatalf("trial %d: noise budget exhausted", trial)
		}
		got := rt.DecryptVec(out, vecLen)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d: slot %d: BFV %d != interpreter %d\n%s", trial, j, got[j], want[j], l)
			}
		}
	}
}
