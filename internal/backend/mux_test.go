package backend

import (
	"math/rand"
	"testing"

	"porcupine/internal/bfv"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
)

// muxProgram covers every lane-packing path: ciphertext inputs with
// symmetric rotations, a ct-ct product with relinearization, an inline
// constant, and a plaintext input. VecLen 32 on PN2048's 1024-slot row
// gives stride 64 and 8 lanes.
func muxProgram() *quill.Lowered {
	return &quill.Lowered{
		VecLen: 32, NumCtInputs: 2, NumPtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 2},
			{Op: quill.OpRotCt, Dst: 3, A: 0, Rot: -2},
			{Op: quill.OpAddCtCt, Dst: 4, A: 2, B: 3},
			{Op: quill.OpMulCtCt, Dst: 5, A: 4, B: 1},
			{Op: quill.OpRelin, Dst: 6, A: 5},
			{Op: quill.OpMulCtPt, Dst: 7, A: 6, P: quill.PtRef{Input: -1, Const: []int64{3}}},
			{Op: quill.OpAddCtPt, Dst: 8, A: 7, P: quill.PtRef{Input: 0}},
		},
		Output: 8,
	}
}

// TestMuxRunnerDifferential is the core mux correctness check: k
// users' requests executed as ONE lane-packed evaluation must decrypt,
// per user, to exactly what k individual runs produce on slots
// [0, VecLen). Partial batches and scratch reuse across runs are
// covered too.
func TestMuxRunnerDifferential(t *testing.T) {
	l := muxProgram()
	ctx, plans, err := NewTestMuxServingContext("PN2048", 7, 0, l)
	if err != nil {
		t.Fatal(err)
	}
	p := plans[0]
	m, err := plan.BuildMux(ctx.Params, ctx.Encoder, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stride != 64 || m.Lanes != 8 {
		t.Fatalf("geometry (%d, %d), want (64, 8)", m.Stride, m.Lanes)
	}

	rng := rand.New(rand.NewSource(99))
	type user struct {
		cts  []*bfv.Ciphertext
		pts  []quill.Vec
		want quill.Vec
	}
	sess := ctx.NewSession()
	newUser := func() user {
		u := user{cts: make([]*bfv.Ciphertext, p.NumCtInputs), pts: make([]quill.Vec, p.NumPtInputs)}
		for i := range u.cts {
			v := make(quill.Vec, p.VecLen)
			for j := range v {
				v[j] = rng.Uint64() % 64
			}
			if u.cts[i], err = ctx.EncryptVec(v); err != nil {
				t.Fatal(err)
			}
		}
		for i := range u.pts {
			v := make(quill.Vec, p.VecLen)
			for j := range v {
				v[j] = rng.Uint64() % 64
			}
			u.pts[i] = v
		}
		out, err := sess.Run(p, u.cts, u.pts)
		if err != nil {
			t.Fatal(err)
		}
		u.want = ctx.DecryptVec(out, p.VecLen)
		return u
	}

	runner := ctx.NewMuxRunner(m)
	// Full batch, partial batch, single lane — then the full batch
	// again so reused scratch from a smaller run is proven clean.
	for _, k := range []int{m.Lanes, 3, 1, m.Lanes} {
		users := make([]user, k)
		ctIns := make([][]*bfv.Ciphertext, k)
		ptIns := make([][]quill.Vec, k)
		for j := range users {
			users[j] = newUser()
			ctIns[j] = users[j].cts
			ptIns[j] = users[j].pts
		}
		outs, err := runner.Run(ctIns, ptIns)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(outs) != k {
			t.Fatalf("k=%d: got %d outputs", k, len(outs))
		}
		for j, u := range users {
			got := ctx.DecryptVec(outs[j], p.VecLen)
			for s := range u.want {
				if got[s] != u.want[s] {
					t.Fatalf("k=%d user %d slot %d: muxed %d, individual %d", k, j, s, got[s], u.want[s])
				}
			}
		}
	}
}

// TestMuxRunnerRejectsMalformed checks the up-front validation that
// lets the scheduler fall back per-request: batch size out of range,
// wrong input counts, and oversized plaintext vectors all fail before
// any ciphertext work.
func TestMuxRunnerRejectsMalformed(t *testing.T) {
	l := muxProgram()
	ctx, plans, err := NewTestMuxServingContext("PN2048", 7, 0, l)
	if err != nil {
		t.Fatal(err)
	}
	p := plans[0]
	m, err := plan.BuildMux(ctx.Params, ctx.Encoder, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	runner := ctx.NewMuxRunner(m)
	ct, err := ctx.EncryptVec(make(quill.Vec, p.VecLen))
	if err != nil {
		t.Fatal(err)
	}
	good := func() ([][]*bfv.Ciphertext, [][]quill.Vec) {
		return [][]*bfv.Ciphertext{{ct, ct}, {ct, ct}},
			[][]quill.Vec{{make(quill.Vec, p.VecLen)}, {make(quill.Vec, p.VecLen)}}
	}

	if _, err := runner.Run(nil, nil); err == nil {
		t.Error("empty batch accepted")
	}
	big := make([][]*bfv.Ciphertext, m.Lanes+1)
	for i := range big {
		big[i] = []*bfv.Ciphertext{ct, ct}
	}
	if _, err := runner.Run(big, nil); err == nil {
		t.Error("oversized batch accepted")
	}
	cts, pts := good()
	cts[1] = cts[1][:1]
	if _, err := runner.Run(cts, pts); err == nil {
		t.Error("wrong ct input count accepted")
	}
	cts, pts = good()
	pts[0] = nil
	if _, err := runner.Run(cts, pts); err == nil {
		t.Error("missing pt inputs accepted")
	}
	cts, pts = good()
	pts[1] = []quill.Vec{make(quill.Vec, p.VecLen+1)}
	if _, err := runner.Run(cts, pts); err == nil {
		t.Error("oversized pt vector accepted")
	}
	// A well-formed batch still runs after the rejections.
	cts, pts = good()
	if _, err := runner.Run(cts, pts); err != nil {
		t.Errorf("well-formed batch failed after rejections: %v", err)
	}
}

// deepSquaringProgram is a depth-3 repeated-squaring chain: legal lane
// geometry by every static check, but the pack rotations' key-switch
// noise rides into three multiplication levels and blows PN2048's
// noise budget under full-range inputs — the kernel ProveMux exists to
// catch.
func deepSquaringProgram() *quill.Lowered {
	l := &quill.Lowered{VecLen: 32, NumCtInputs: 1}
	acc, next := 0, 1
	for d := 0; d < 3; d++ {
		l.Instrs = append(l.Instrs,
			quill.LInstr{Op: quill.OpMulCtCt, Dst: next, A: acc, B: acc},
			quill.LInstr{Op: quill.OpRelin, Dst: next + 1, A: next})
		acc = next + 1
		next += 2
	}
	l.Instrs = append(l.Instrs,
		quill.LInstr{Op: quill.OpRotCt, Dst: next, A: acc, Rot: 1},
		quill.LInstr{Op: quill.OpAddCtCt, Dst: next + 1, A: next, B: acc})
	l.Output = next + 1
	return l
}

// TestProveMux checks the exporter's noise-budget gate: a shallow
// kernel's geometry is proven good, a statically-legal depth-3 chain
// is refused with a noise-budget error, and a sealed (execute-only)
// context cannot run the proof at all.
func TestProveMux(t *testing.T) {
	ctx, plans, err := NewTestMuxServingContext("PN2048", 23, 0, muxProgram(), deepSquaringProgram())
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := plan.BuildMux(ctx.Params, ctx.Encoder, plans[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.ProveMux(shallow, 7, 2); err != nil {
		t.Errorf("shallow kernel failed the mux proof: %v", err)
	}

	deep, err := plan.BuildMux(ctx.Params, ctx.Encoder, plans[1], 0)
	if err != nil {
		t.Fatalf("depth-3 chain should be statically eligible: %v", err)
	}
	if err := ctx.ProveMux(deep, 7, 2); err == nil {
		t.Error("depth-3 chain passed the mux proof: noise overflow undetected")
	}

	rlk, gks := ctx.EvalKeys()
	sealed, err := NewSealedContext(ctx.Params, rlk, gks)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := plan.BuildMux(sealed.Params, sealed.Encoder, plans[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sealed.ProveMux(sm, 7, 1); err == nil {
		t.Error("sealed context ran a mux proof without a secret key")
	}
}
