package backend

import (
	"fmt"
	"math/rand"

	"porcupine/internal/bfv"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
)

// MuxRunner executes slot-multiplexed batches of one plan: up to
// mux.Lanes independent requests packed into disjoint slot lanes of a
// single ciphertext evaluation, then demultiplexed back into one
// result per request.
//
//   - Ciphertext inputs are lane-packed homomorphically: packed =
//     ct_0 + Σ_j rot(ct_j, −j·Stride). Exact — no noise-free plaintext
//     access is needed — because every request's row is zero outside
//     [0, VecLen) (the EncryptVec packing contract), so the shifted
//     rows add into disjoint slots.
//   - Plaintext inputs are lane-packed at the encoder level (one row
//     holding every request's vector at its lane offset).
//   - The mux's lane-replicated plan clone then runs ONCE, and each
//     request's answer is extracted with rot(out, +j·Stride), landing
//     in slots [0, VecLen) where the client's decoder reads it.
//
// All scratch (packed inputs, rotation temp, per-lane outputs,
// plaintext backing rows) is owned by the runner and reused, so
// steady-state muxed execution performs zero allocations — the same
// serving invariant as Session.Run. Like Session.Run, the returned
// ciphertexts are valid until the next Run; callers keeping them must
// copy. A runner must not be used from more than one goroutine at a
// time; create one per worker.
type MuxRunner struct {
	ctx  *Context
	mux  *plan.Mux
	sess *Session

	packed []*bfv.Ciphertext // lane-packed ct inputs, one per plan ct input
	rotTmp *bfv.Ciphertext   // pack-rotation scratch
	outs   []*bfv.Ciphertext // demuxed per-lane outputs
	ptBufs [][]uint64        // lane-packed pt rows, one per plan pt input
	ptIn   []quill.Vec       // views over ptBufs handed to the session
}

// NewMuxRunner builds a runner for one plan's mux capability. The
// context must hold Galois keys for the mux's pack/demux rotations
// (±j·Stride) in addition to the plan's own.
func (c *Context) NewMuxRunner(m *plan.Mux) *MuxRunner {
	p := m.Plan
	r := &MuxRunner{ctx: c, mux: m, sess: c.NewSession()}
	r.packed = make([]*bfv.Ciphertext, p.NumCtInputs)
	for i := range r.packed {
		r.packed[i] = c.Params.NewCiphertextUninit(1)
	}
	r.rotTmp = c.Params.NewCiphertextUninit(1)
	r.outs = make([]*bfv.Ciphertext, m.Lanes)
	for j := range r.outs {
		r.outs[j] = c.Params.NewCiphertextUninit(1)
	}
	r.ptBufs = make([][]uint64, p.NumPtInputs)
	full := (m.Lanes-1)*m.Stride + p.VecLen
	for i := range r.ptBufs {
		r.ptBufs[i] = make([]uint64, full)
	}
	r.ptIn = make([]quill.Vec, p.NumPtInputs)
	return r
}

// Mux returns the lane geometry the runner executes.
func (r *MuxRunner) Mux() *plan.Mux { return r.mux }

// SetParallelism forwards the intra-plan parallelism budget to the
// runner's session.
func (r *MuxRunner) SetParallelism(w int) { r.sess.SetParallelism(w) }

// Run executes k = len(ctIns) requests (1 ≤ k ≤ Lanes) as one muxed
// evaluation. ctIns[j] and ptIns[j] are request j's inputs, shaped
// exactly like a Session.Run call for the base plan; ptIns may be nil
// when the plan takes no plaintext inputs. Returns one output
// ciphertext per request, each holding that request's answer in slots
// [0, VecLen); results live in runner scratch until the next Run.
func (r *MuxRunner) Run(ctIns [][]*bfv.Ciphertext, ptIns [][]quill.Vec) ([]*bfv.Ciphertext, error) {
	p := r.mux.Plan
	k := len(ctIns)
	if k < 1 || k > r.mux.Lanes {
		return nil, fmt.Errorf("backend: muxed batch of %d requests outside [1, %d]", k, r.mux.Lanes)
	}
	if ptIns != nil && len(ptIns) != k {
		return nil, fmt.Errorf("backend: %d pt input sets for %d muxed requests", len(ptIns), k)
	}
	// Validate every member up front: one malformed request must fail
	// the call before any ciphertext work, so the scheduler can fall
	// back to per-request execution with precise errors.
	for j := 0; j < k; j++ {
		if len(ctIns[j]) != p.NumCtInputs {
			return nil, fmt.Errorf("backend: muxed request %d has %d ct inputs, want %d", j, len(ctIns[j]), p.NumCtInputs)
		}
		for i, ct := range ctIns[j] {
			if ct == nil || ct.Degree() != 1 {
				return nil, fmt.Errorf("backend: muxed request %d ct input %d is not a degree-1 ciphertext", j, i)
			}
		}
		var pts []quill.Vec
		if ptIns != nil {
			pts = ptIns[j]
		}
		if len(pts) != p.NumPtInputs {
			return nil, fmt.Errorf("backend: muxed request %d has %d pt inputs, want %d", j, len(pts), p.NumPtInputs)
		}
		for i, v := range pts {
			if len(v) > p.VecLen {
				return nil, fmt.Errorf("backend: muxed request %d pt input %d holds %d values, plan vector is %d", j, i, len(v), p.VecLen)
			}
		}
	}

	ev := r.ctx.Eval
	for i := 0; i < p.NumCtInputs; i++ {
		// Lane 0 seeds the packed row (rotation by 0 is a copy into the
		// reused buffer), then every further lane shifts into place and
		// accumulates.
		if err := ev.RotateRowsInto(r.packed[i], ctIns[0][i], 0); err != nil {
			return nil, err
		}
		for j := 1; j < k; j++ {
			if err := ev.RotateRowsInto(r.rotTmp, ctIns[j][i], r.mux.PackRotation(j)); err != nil {
				return nil, err
			}
			ev.AddInto(r.packed[i], r.packed[i], r.rotTmp)
		}
	}
	for i := 0; i < p.NumPtInputs; i++ {
		buf := r.ptBufs[i][:(k-1)*r.mux.Stride+p.VecLen]
		clear(buf)
		for j := 0; j < k; j++ {
			copy(buf[j*r.mux.Stride:], ptIns[j][i])
		}
		r.ptIn[i] = buf
	}

	out, err := r.sess.Run(p, r.packed, r.ptIn)
	if err != nil {
		return nil, err
	}

	for j := 0; j < k; j++ {
		if err := ev.RotateRowsInto(r.outs[j], out, r.mux.DemuxRotation(j)); err != nil {
			return nil, err
		}
	}
	return r.outs[:k], nil
}

// ProveMux runs a lane-packed differential on a context that can
// decrypt (the exporter side): a full batch of Lanes distinct
// pseudorandom requests is executed as one muxed evaluation, and every
// lane's output must decrypt to exactly the slots the interpreter
// reference produces for that request alone. Static geometry legality
// (plan.ValidateMux) cannot see the preset's NOISE budget — each pack
// rotation's key-switch noise rides into the plan's multiplications,
// so a kernel that decrypts fine per-request can decrypt garbage
// lane-packed (the suite's polynomial-regression on PN4096 is the
// concrete case). Exporters call this before stamping a geometry into
// a manifest and demote failing kernels to per-request serving.
//
// The check draws full-range plaintext values (mod T), the worst case
// for plaintext-multiplication noise growth, and runs trials with
// independent encryption randomness so a marginal budget has more than
// one chance to trip.
func (c *Context) ProveMux(m *plan.Mux, seed int64, trials int) error {
	if !c.CanDecrypt() {
		return fmt.Errorf("backend: mux proof needs a decrypting context")
	}
	p := m.Plan
	if p.Source == nil {
		return fmt.Errorf("backend: mux proof needs the plan's source program")
	}
	if trials < 1 {
		trials = 1
	}
	rng := rand.New(rand.NewSource(seed))
	r := c.NewMuxRunner(m)
	rt := RuntimeOver(c)
	for trial := 0; trial < trials; trial++ {
		ctIns := make([][]*bfv.Ciphertext, m.Lanes)
		ptIns := make([][]quill.Vec, m.Lanes)
		wants := make([]quill.Vec, m.Lanes)
		for j := 0; j < m.Lanes; j++ {
			vec := func() quill.Vec {
				v := make(quill.Vec, p.VecLen)
				for s := range v {
					v[s] = rng.Uint64() % c.Params.T
				}
				return v
			}
			for i := 0; i < p.NumCtInputs; i++ {
				ct, err := c.EncryptVec(vec())
				if err != nil {
					return err
				}
				ctIns[j] = append(ctIns[j], ct)
			}
			for i := 0; i < p.NumPtInputs; i++ {
				ptIns[j] = append(ptIns[j], vec())
			}
			ref, err := rt.RunInterpreter(p.Source, ctIns[j], ptIns[j])
			if err != nil {
				return err
			}
			wants[j] = c.DecryptVec(ref, p.VecLen)
		}
		outs, err := r.Run(ctIns, ptIns)
		if err != nil {
			return err
		}
		for j, out := range outs {
			got := c.DecryptVec(out, p.VecLen)
			for s := range wants[j] {
				if got[s] != wants[j][s] {
					return fmt.Errorf("backend: muxed lane %d decrypts wrong at slot %d (trial %d): noise budget exceeded under %d-lane packing", j, s, trial, m.Lanes)
				}
			}
		}
	}
	return nil
}
