package backend

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"porcupine/internal/baseline"
	"porcupine/internal/bfv"
	"porcupine/internal/kernels"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
)

// TestParallelPlanMatchesSerialKernels is the differential leg of the
// multi-core engine: on the full 11-kernel suite, the interpreter, the
// serial plan schedule, and the levelized parallel schedule (ring
// workers + step-level parallelism) must produce bit-identical output
// ciphertexts at workers ∈ {2, 4}. The parallel run engages both
// layers at once: Parameters.SetWorkers routes every ring hot loop
// through the worker pool, and Session.SetParallelism fans the
// independent steps of each dependency level out across it.
func TestParallelPlanMatchesSerialKernels(t *testing.T) {
	names := baseline.Names()
	if testing.Short() {
		names = []string{"box-blur", "dot-product"}
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			spec := kernels.ByName(name)
			l, err := baseline.Lowered(name)
			if err != nil {
				t.Fatal(err)
			}
			preset := "PN4096"
			if l.MultDepth() > 2 {
				preset = "PN8192"
			}
			rt, err := NewTestRuntime(preset, 7, l)
			if err != nil {
				t.Fatal(err)
			}
			p, err := rt.Plan(l)
			if err != nil {
				t.Fatal(err)
			}
			if p.Levels == nil {
				t.Fatal("compiled plan has no levelized schedule")
			}
			depth, width := p.LevelStats()
			t.Logf("%s: %d steps, %d levels, max width %d", name, len(p.Steps), depth, width)

			rng := rand.New(rand.NewSource(5))
			assign := make([]uint64, spec.NumVars)
			for i := range assign {
				assign[i] = rng.Uint64() % 64
			}
			ex := spec.NewExample(assign)
			cts := make([]*bfv.Ciphertext, len(ex.CtIn))
			for i, v := range ex.CtIn {
				if cts[i], err = rt.EncryptVec(v); err != nil {
					t.Fatal(err)
				}
			}
			ref, err := rt.RunInterpreter(l, cts, ex.PtIn)
			if err != nil {
				t.Fatalf("interpreter: %v", err)
			}
			serial := rt.NewSession()
			sOut, err := serial.Run(p, cts, ex.PtIn)
			if err != nil {
				t.Fatalf("serial plan: %v", err)
			}
			if !sameCiphertext(rt.Params, ref, sOut) {
				t.Fatal("serial plan not bit-identical to interpreter")
			}
			for _, w := range []int{2, 4} {
				rt.Params.SetWorkers(w)
				sess := rt.NewSession()
				sess.SetParallelism(w)
				pOut, err := sess.Run(p, cts, ex.PtIn)
				rt.Params.SetWorkers(0)
				if err != nil {
					t.Fatalf("parallel plan (workers=%d): %v", w, err)
				}
				if !sameCiphertext(rt.Params, ref, pOut) {
					t.Fatalf("parallel plan (workers=%d) not bit-identical to interpreter", w)
				}
			}
			dec := rt.DecryptVec(sOut, spec.VecLen)
			if !spec.Matches(dec, ex) {
				t.Fatal("output disagrees with the plaintext reference")
			}
		})
	}
}

// TestParallelSessionsConcurrent drives concurrent sessions over one
// context with both ring-level and step-level parallelism engaged —
// the serving configuration the scheduler runs — and checks every
// result bit-identical to the serial reference. Runs under -race in
// the CI race job (backend is on the race path), giving the worker
// pool cross-session race coverage.
func TestParallelSessionsConcurrent(t *testing.T) {
	l, err := baseline.Lowered("box-blur")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewTestRuntime("PN4096", 11, l)
	if err != nil {
		t.Fatal(err)
	}
	p, err := rt.Plan(l)
	if err != nil {
		t.Fatal(err)
	}
	spec := kernels.ByName("box-blur")
	rng := rand.New(rand.NewSource(7))
	assign := make([]uint64, spec.NumVars)
	for i := range assign {
		assign[i] = rng.Uint64() % 64
	}
	ex := spec.NewExample(assign)
	cts := make([]*bfv.Ciphertext, len(ex.CtIn))
	for i, v := range ex.CtIn {
		if cts[i], err = rt.EncryptVec(v); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := rt.RunInterpreter(l, cts, ex.PtIn)
	if err != nil {
		t.Fatal(err)
	}

	rt.Params.SetWorkers(2)
	defer rt.Params.SetWorkers(0)
	const goroutines = 4
	iters := 6
	if testing.Short() {
		iters = 2
	}
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := rt.NewSession()
			sess.SetParallelism(2)
			for it := 0; it < iters; it++ {
				out, err := sess.Run(p, cts, ex.PtIn)
				if err != nil {
					errs[g] = err
					return
				}
				if !sameCiphertext(rt.Params, ref, out) {
					errs[g] = fmt.Errorf("iteration %d not bit-identical to interpreter", it)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", g, err)
		}
	}
}

// TestLevelizedScheduleShape sanity-checks the levelizer on a plan
// with known structure: independent rotations of one source must share
// a level, and a chain of dependent adds must occupy distinct levels.
func TestLevelizedScheduleShape(t *testing.T) {
	l := &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 2},
			{Op: quill.OpRotCt, Dst: 3, A: 0, Rot: 3},
			{Op: quill.OpAddCtCt, Dst: 4, A: 1, B: 2},
			{Op: quill.OpAddCtCt, Dst: 5, A: 4, B: 3},
		},
		Output: 5,
	}
	rt, err := NewTestRuntime("PN2048", 5, l)
	if err != nil {
		t.Fatal(err)
	}
	// Hoisting would fuse the three rotations into one group step;
	// disable it so the raw level structure is visible.
	p, err := plan.CompileWithOptions(rt.Params, rt.Encoder, l, plan.Options{DisableHoisting: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Levels == nil {
		t.Fatal("no levels")
	}
	depth, width := p.LevelStats()
	if depth >= len(p.Steps) && width > 1 {
		t.Fatalf("inconsistent schedule: depth %d, width %d over %d steps", depth, width, len(p.Steps))
	}
	// Every step appears in exactly one level, and every operand a step
	// reads is written in a strictly earlier level (or is an input).
	seen := make(map[int]int)
	for lv, steps := range p.Levels {
		for _, i := range steps {
			if prev, dup := seen[i]; dup {
				t.Fatalf("step %d in levels %d and %d", i, prev, lv)
			}
			seen[i] = lv
		}
	}
	if len(seen) != len(p.Steps) {
		t.Fatalf("levels cover %d of %d steps", len(seen), len(p.Steps))
	}
	// The three independent rotations must share level 0; the dependent
	// adds must sit strictly deeper.
	if got := len(p.Levels[0]); got != 3 {
		t.Fatalf("level 0 has %d steps, want the 3 independent rotations", got)
	}
	if depth < 3 {
		t.Fatalf("depth %d, want >= 3 (rotations, then add, then add)", depth)
	}
}
