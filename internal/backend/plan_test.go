package backend

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"porcupine/internal/baseline"
	"porcupine/internal/bfv"
	"porcupine/internal/kernels"
	"porcupine/internal/quill"
)

// sameCiphertext reports whether two ciphertexts are bit-identical:
// same degree, same residues in every slot of every polynomial.
func sameCiphertext(params *bfv.Parameters, a, b *bfv.Ciphertext) bool {
	if a.Degree() != b.Degree() {
		return false
	}
	for i := range a.Value {
		if !params.RingQ().Equal(a.Value[i], b.Value[i]) {
			return false
		}
	}
	return true
}

// TestPlanVsInterpreterRandom cross-checks the plan path against the
// instruction-at-a-time interpreter on random programs: outputs must
// be bit-identical ciphertexts (same deterministic noise, not just
// same decryption).
func TestPlanVsInterpreterRandom(t *testing.T) {
	params, err := bfv.NewParametersFromPreset("PN2048")
	if err != nil {
		t.Fatal(err)
	}
	vecLen := params.SlotCount()
	steps := []int{1, -1, 2, -3, 5, 17, -64, 511}

	keyProg := &quill.Lowered{VecLen: vecLen, NumCtInputs: 1}
	next := 1
	for _, s := range steps {
		keyProg.Instrs = append(keyProg.Instrs, quill.LInstr{Op: quill.OpRotCt, Dst: next, A: 0, Rot: s})
		next++
	}
	keyProg.Output = next - 1
	rt, err := NewTestRuntime("PN2048", 23, keyProg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		l := randomLowered(rng, vecLen, steps)
		ctIn := make([]quill.Vec, l.NumCtInputs)
		cts := make([]*bfv.Ciphertext, l.NumCtInputs)
		for i := range ctIn {
			v := make(quill.Vec, vecLen)
			for j := range v {
				v[j] = rng.Uint64() % 64
			}
			ctIn[i] = v
			if cts[i], err = rt.EncryptVec(v); err != nil {
				t.Fatal(err)
			}
		}
		ptIn := make([]quill.Vec, l.NumPtInputs)
		for i := range ptIn {
			v := make(quill.Vec, vecLen)
			for j := range v {
				v[j] = rng.Uint64() % 64
			}
			ptIn[i] = v
		}

		ref, refErr := rt.RunInterpreter(l, cts, ptIn)
		if refErr != nil {
			// Random programs may feed an unrelinearized degree-2 value
			// into a rotation or multiply; both paths must reject those.
			if _, planErr := rt.Run(l, cts, ptIn); planErr == nil {
				t.Fatalf("trial %d: interpreter rejects (%v) but plan accepts\n%s", trial, refErr, l)
			}
			continue
		}
		got, err := rt.Run(l, cts, ptIn)
		if err != nil {
			t.Fatalf("trial %d: plan: %v\n%s", trial, err, l)
		}
		if !sameCiphertext(rt.Params, ref, got) {
			t.Fatalf("trial %d: plan output ciphertext differs from interpreter\n%s", trial, l)
		}
		want, err := quill.RunLowered(l, quill.ConcreteSem{}, ctIn, ptIn)
		if err != nil {
			t.Fatal(err)
		}
		dec := rt.DecryptVec(got, vecLen)
		for i := range want {
			if dec[i] != want[i] {
				t.Fatalf("trial %d: slot %d: plan %d != abstract %d\n%s", trial, i, dec[i], want[i], l)
			}
		}
	}
}

// TestPlanVsInterpreterKernels proves the plan path bit-identical to
// the interpreter on the full 11-kernel suite (the hand-written
// baseline programs, which avoid synthesis cost in the test).
func TestPlanVsInterpreterKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every kernel on the BFV backend (slow)")
	}
	for _, name := range append([]string{"sobel", "harris"},
		"box-blur", "dot-product", "hamming-distance", "l2-distance",
		"linear-regression", "polynomial-regression", "gx", "gy", "roberts-cross") {
		t.Run(name, func(t *testing.T) {
			spec := kernels.ByName(name)
			l, err := baseline.Lowered(name)
			if err != nil {
				t.Fatal(err)
			}
			preset := "PN4096"
			if l.MultDepth() > 2 {
				preset = "PN8192"
			}
			rt, err := NewTestRuntime(preset, 7, l)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			assign := make([]uint64, spec.NumVars)
			for i := range assign {
				assign[i] = rng.Uint64() % 64
			}
			ex := spec.NewExample(assign)
			cts := make([]*bfv.Ciphertext, len(ex.CtIn))
			for i, v := range ex.CtIn {
				if cts[i], err = rt.EncryptVec(v); err != nil {
					t.Fatal(err)
				}
			}
			ref, err := rt.RunInterpreter(l, cts, ex.PtIn)
			if err != nil {
				t.Fatalf("interpreter: %v", err)
			}
			got, err := rt.Run(l, cts, ex.PtIn)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			if !sameCiphertext(rt.Params, ref, got) {
				t.Fatal("plan output ciphertext not bit-identical to interpreter")
			}
			dec := rt.DecryptVec(got, spec.VecLen)
			if !spec.Matches(dec, ex) {
				t.Fatal("plan output disagrees with the plaintext reference")
			}
		})
	}
}

// TestConcurrentSessions runs one plan from many goroutine-local
// sessions against a single shared context and requires every output
// to be bit-identical to the sequential reference — the serving model
// (run with -race in CI).
func TestConcurrentSessions(t *testing.T) {
	l := &quill.Lowered{
		VecLen: 1024, NumCtInputs: 2, NumPtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 1},
			{Op: quill.OpAddCtCt, Dst: 3, A: 2, B: 1},
			{Op: quill.OpMulCtCt, Dst: 4, A: 3, B: 0},
			{Op: quill.OpRelin, Dst: 5, A: 4},
			{Op: quill.OpMulCtPt, Dst: 6, A: 5, P: quill.PtRef{Input: 0}},
			{Op: quill.OpSubCtCt, Dst: 7, A: 6, B: 1},
		},
		Output: 7,
	}
	rt, err := NewTestRuntime("PN2048", 5, l)
	if err != nil {
		t.Fatal(err)
	}
	p, err := rt.Plan(l)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	mk := func() quill.Vec {
		v := make(quill.Vec, l.VecLen)
		for j := range v {
			v[j] = rng.Uint64() % 64
		}
		return v
	}
	ctIn := []quill.Vec{mk(), mk()}
	ptIn := []quill.Vec{mk()}
	cts := make([]*bfv.Ciphertext, 2)
	for i, v := range ctIn {
		if cts[i], err = rt.EncryptVec(v); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := rt.RunInterpreter(l, cts, ptIn)
	if err != nil {
		t.Fatal(err)
	}

	const workers, iters = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := rt.NewSession()
			for i := 0; i < iters; i++ {
				out, err := s.Run(p, cts, ptIn)
				if err != nil {
					errs <- err
					return
				}
				if !sameCiphertext(rt.Params, ref, out) {
					errs <- fmt.Errorf("concurrent session output diverged from reference")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSessionRunAllocationFree checks the serving guarantee: after a
// warm-up run, plan execution performs (almost) no heap allocations —
// scratch comes from the session's register file and the ring pools.
func TestSessionRunAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation counts are meaningless under -race")
	}
	l := &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1},
			{Op: quill.OpAddCtCt, Dst: 2, A: 1, B: 0},
			{Op: quill.OpMulCtCt, Dst: 3, A: 2, B: 0},
			{Op: quill.OpRelin, Dst: 4, A: 3},
		},
		Output: 4,
	}
	rt, err := NewTestRuntime("PN2048", 5, l)
	if err != nil {
		t.Fatal(err)
	}
	p, err := rt.Plan(l)
	if err != nil {
		t.Fatal(err)
	}
	v := make(quill.Vec, l.VecLen)
	for j := range v {
		v[j] = uint64(j % 61)
	}
	ct, err := rt.EncryptVec(v)
	if err != nil {
		t.Fatal(err)
	}
	s := rt.NewSession()
	if _, err := s.Run(p, []*bfv.Ciphertext{ct}, nil); err != nil {
		t.Fatal(err)
	}
	// Steady state is fully allocation-free (registers, ring pools and
	// stack scratch); allow a tiny residue for sync.Pool refills after
	// a GC between runs.
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.Run(p, []*bfv.Ciphertext{ct}, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("steady-state plan execution allocates %.0f objects/run, want ≤ 8", allocs)
	}
}
