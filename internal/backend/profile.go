package backend

import (
	"fmt"
	"time"

	"porcupine/internal/quill"
)

// ProfileCostModel measures per-instruction latencies of this context
// (minimum over reps runs each, the standard noise-robust choice for
// microbenchmarks) and returns a Quill cost model, the analogue of
// the paper's SEAL profiling (§4.2).
func (c *Context) ProfileCostModel(reps int) (*quill.CostModel, error) {
	if reps < 1 {
		reps = 3
	}
	n := c.Params.SlotCount()
	vec := make(quill.Vec, n)
	for i := range vec {
		vec[i] = uint64(i % 251)
	}
	ct, err := c.EncryptVec(vec)
	if err != nil {
		return nil, err
	}
	pt, err := c.Encoder.EncodeNew(vec)
	if err != nil {
		return nil, err
	}
	ct2, err := c.EncryptVec(vec)
	if err != nil {
		return nil, err
	}
	ctD2, err := c.Eval.Mul(ct, ct2)
	if err != nil {
		return nil, err
	}

	// A rotation key for step 1 must exist; generate on demand is not
	// possible here (no secret key access by design), so callers must
	// include at least one program using rotation, or we skip rotation
	// profiling and keep the default.
	cm := quill.DefaultCostModel()
	measure := func(f func() error) (float64, error) {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return float64(best.Microseconds()), nil
	}

	lat := map[quill.Op]func() error{
		quill.OpAddCtCt: func() error { c.Eval.Add(ct, ct2); return nil },
		quill.OpSubCtCt: func() error { c.Eval.Sub(ct, ct2); return nil },
		quill.OpAddCtPt: func() error { c.Eval.AddPlain(ct, pt); return nil },
		quill.OpSubCtPt: func() error { c.Eval.SubPlain(ct, pt); return nil },
		quill.OpMulCtPt: func() error { c.Eval.MulPlain(ct, pt); return nil },
		quill.OpMulCtCt: func() error { _, err := c.Eval.Mul(ct, ct2); return err },
		quill.OpRelin:   func() error { _, err := c.Eval.Relinearize(ctD2); return err },
	}
	for op, f := range lat {
		v, err := measure(f)
		if err != nil {
			return nil, fmt.Errorf("backend: profiling %v: %w", op, err)
		}
		cm.Latency[op] = v
	}
	if _, err := c.Eval.RotateRows(ct, 1); err == nil {
		v, err := measure(func() error { _, err := c.Eval.RotateRows(ct, 1); return err })
		if err != nil {
			return nil, err
		}
		cm.Latency[quill.OpRotCt] = v
	}
	return cm, nil
}
