package backend

import (
	"math/rand"
	"testing"

	"porcupine/internal/baseline"
	"porcupine/internal/bfv"
	"porcupine/internal/kernels"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
)

// TestHoistedVsUnhoistedKernels is the third differential leg of the
// hoisting change: on the full 11-kernel suite (hand-written baseline
// programs — the rotation-heavy forms), the instruction-at-a-time
// interpreter, the unhoisted plan (DisableHoisting) and the hoisted
// plan must produce bit-identical output ciphertexts. In -short mode
// two representative kernels run (one with a fan-out, one without).
func TestHoistedVsUnhoistedKernels(t *testing.T) {
	names := []string{
		"box-blur", "dot-product", "hamming-distance", "l2-distance",
		"linear-regression", "polynomial-regression", "gx", "gy",
		"roberts-cross", "sobel", "harris",
	}
	if testing.Short() {
		names = []string{"box-blur", "dot-product"}
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			spec := kernels.ByName(name)
			l, err := baseline.Lowered(name)
			if err != nil {
				t.Fatal(err)
			}
			preset := "PN4096"
			if l.MultDepth() > 2 {
				preset = "PN8192"
			}
			rt, err := NewTestRuntime(preset, 7, l)
			if err != nil {
				t.Fatal(err)
			}
			hoisted, err := rt.Plan(l)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := plan.CompileWithOptions(rt.Params, rt.Encoder, l, plan.Options{DisableHoisting: true})
			if err != nil {
				t.Fatal(err)
			}
			if g, _ := flat.HoistedGroups(); g != 0 {
				t.Fatalf("unhoisted plan has %d hoisted groups", g)
			}
			groups, rots := hoisted.HoistedGroups()
			t.Logf("%s: %d hoisted groups covering %d rotations", name, groups, rots)

			rng := rand.New(rand.NewSource(3))
			assign := make([]uint64, spec.NumVars)
			for i := range assign {
				assign[i] = rng.Uint64() % 64
			}
			ex := spec.NewExample(assign)
			cts := make([]*bfv.Ciphertext, len(ex.CtIn))
			for i, v := range ex.CtIn {
				if cts[i], err = rt.EncryptVec(v); err != nil {
					t.Fatal(err)
				}
			}
			ref, err := rt.RunInterpreter(l, cts, ex.PtIn)
			if err != nil {
				t.Fatalf("interpreter: %v", err)
			}
			s := rt.NewSession()
			flatOut, err := s.Run(flat, cts, ex.PtIn)
			if err != nil {
				t.Fatalf("unhoisted plan: %v", err)
			}
			if !sameCiphertext(rt.Params, ref, flatOut) {
				t.Fatal("unhoisted plan not bit-identical to interpreter")
			}
			s2 := rt.NewSession()
			hoistOut, err := s2.Run(hoisted, cts, ex.PtIn)
			if err != nil {
				t.Fatalf("hoisted plan: %v", err)
			}
			if !sameCiphertext(rt.Params, ref, hoistOut) {
				t.Fatal("hoisted plan not bit-identical to interpreter")
			}
			dec := rt.DecryptVec(hoistOut, spec.VecLen)
			if !spec.Matches(dec, ex) {
				t.Fatal("hoisted output disagrees with the plaintext reference")
			}
		})
	}
}

// TestHoistedDeepFanOutWraparound pins the planner + executor on a
// hand-written deep fan-out (8 distinct rotations of one source,
// positive and negative/wraparound amounts, on the full HE row so
// canonicalization is active), plus rotation CSE: a duplicated
// rotation must collapse into the fan instead of executing twice.
func TestHoistedDeepFanOutWraparound(t *testing.T) {
	vecLen := 1024 // PN2048 full row
	rots := []int{1, 2, 4, 8, 16, -1, -7, 1000}
	l := &quill.Lowered{VecLen: vecLen, NumCtInputs: 1}
	next := 1
	for _, r := range rots {
		l.Instrs = append(l.Instrs, quill.LInstr{Op: quill.OpRotCt, Dst: next, A: 0, Rot: r})
		next++
	}
	// Duplicate of the first rotation: same value, must CSE away.
	l.Instrs = append(l.Instrs, quill.LInstr{Op: quill.OpRotCt, Dst: next, A: 0, Rot: rots[0]})
	dup := next
	next++
	// Sum everything (the duplicate too, via its aliased register).
	acc := 1
	for v := 2; v < dup; v++ {
		l.Instrs = append(l.Instrs, quill.LInstr{Op: quill.OpAddCtCt, Dst: next, A: acc, B: v})
		acc = next
		next++
	}
	l.Instrs = append(l.Instrs, quill.LInstr{Op: quill.OpAddCtCt, Dst: next, A: acc, B: dup})
	l.Output = next

	rt, err := NewTestRuntime("PN2048", 31, l)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.CompileWithOptions(rt.Params, rt.Encoder, l, plan.Options{DisableSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	// -1 ≡ 1023 and 1000 stay distinct; the duplicate rot 1 vanishes:
	// one group of 8.
	if g, r := p.HoistedGroups(); g != 1 || r != len(rots) {
		t.Fatalf("hoisted groups = %d (%d rotations), want 1 (%d)", g, r, len(rots))
	}

	rng := rand.New(rand.NewSource(12))
	v := make(quill.Vec, vecLen)
	for j := range v {
		v[j] = rng.Uint64() % quill.Modulus
	}
	ct, err := rt.EncryptVec(v)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rt.RunInterpreter(l, []*bfv.Ciphertext{ct}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.Run(l, []*bfv.Ciphertext{ct}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCiphertext(rt.Params, ref, got) {
		t.Fatal("hoisted deep fan-out not bit-identical to interpreter")
	}
	want, err := quill.RunLowered(l, quill.ConcreteSem{}, []quill.Vec{v}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec := rt.DecryptVec(got, vecLen)
	for i := range want {
		if dec[i] != want[i] {
			t.Fatalf("slot %d: %d != %d", i, dec[i], want[i])
		}
	}
}

// TestHoistedPlanAllocationFree extends the 0-alloc serving guarantee
// to plans with hoisted groups: the decomposition scratch is created
// once and reused.
func TestHoistedPlanAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation counts are meaningless under -race")
	}
	l := &quill.Lowered{
		VecLen: 1024, NumCtInputs: 1,
		Instrs: []quill.LInstr{
			{Op: quill.OpRotCt, Dst: 1, A: 0, Rot: 1},
			{Op: quill.OpRotCt, Dst: 2, A: 0, Rot: 2},
			{Op: quill.OpRotCt, Dst: 3, A: 0, Rot: -5},
			{Op: quill.OpAddCtCt, Dst: 4, A: 1, B: 2},
			{Op: quill.OpAddCtCt, Dst: 5, A: 4, B: 3},
		},
		Output: 5,
	}
	rt, err := NewTestRuntime("PN2048", 5, l)
	if err != nil {
		t.Fatal(err)
	}
	p, err := rt.Plan(l)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumDecomps != 1 {
		t.Fatalf("NumDecomps = %d, want 1", p.NumDecomps)
	}
	v := make(quill.Vec, l.VecLen)
	for j := range v {
		v[j] = uint64(j % 61)
	}
	ct, err := rt.EncryptVec(v)
	if err != nil {
		t.Fatal(err)
	}
	s := rt.NewSession()
	if _, err := s.Run(p, []*bfv.Ciphertext{ct}, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.Run(p, []*bfv.Ciphertext{ct}, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state hoisted plan execution allocates %.0f objects/run, want 0", allocs)
	}
}
