package backend

import (
	"fmt"

	"porcupine/internal/bfv"
	"porcupine/internal/quill"
)

// RunInterpreter executes a lowered program instruction by
// instruction, allocating per instruction — the original execution
// path, kept as the differential reference the plan path is tested
// against. Production callers should use Run (plans).
func (rt *Runtime) RunInterpreter(l *quill.Lowered, ctIn []*bfv.Ciphertext, ptIn []quill.Vec) (*bfv.Ciphertext, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if len(ctIn) != l.NumCtInputs || len(ptIn) != l.NumPtInputs {
		return nil, fmt.Errorf("backend: got %d ct / %d pt inputs, want %d / %d",
			len(ctIn), len(ptIn), l.NumCtInputs, l.NumPtInputs)
	}
	pts := make([]*bfv.Plaintext, len(ptIn))
	for i, v := range ptIn {
		pt, err := rt.Encoder.EncodeNew(v)
		if err != nil {
			return nil, err
		}
		pts[i] = pt
	}
	return rt.execute(l, ctIn, pts)
}

// execute runs the instruction list over a fresh value table, returning
// dead intermediate ciphertexts to the ring buffer pool as soon as
// their last use has passed so long programs run in near-constant
// memory.
func (rt *Runtime) execute(l *quill.Lowered, ctIn []*bfv.Ciphertext, pts []*bfv.Plaintext) (*bfv.Ciphertext, error) {
	vals := make([]*bfv.Ciphertext, l.NumValues())
	copy(vals, ctIn)
	last := lastUses(l)
	for idx, in := range l.Instrs {
		out, err := rt.step(l, in, vals, pts)
		if err != nil {
			return nil, fmt.Errorf("backend: %s: %w", in, err)
		}
		rt.recycleDead(l, vals, last, idx, in)
		vals[in.Dst] = out
	}
	return vals[l.Output], nil
}

// lastUses returns, per value id, the index of the last instruction
// reading it (-1 when never read).
func lastUses(l *quill.Lowered) []int {
	last := make([]int, l.NumValues())
	for i := range last {
		last[i] = -1
	}
	for idx, in := range l.Instrs {
		last[in.A] = idx
		if in.Op.IsCtCt() {
			last[in.B] = idx
		}
	}
	return last
}

// recycleDead returns the operands of instruction idx to the buffer
// pool when this was their last use. Program inputs and the output are
// never recycled (the caller owns them). Value slots are SSA (step
// always allocates fresh ciphertexts), so a dead non-input slot is the
// unique owner of its polynomials.
func (rt *Runtime) recycleDead(l *quill.Lowered, vals []*bfv.Ciphertext, last []int, idx int, in quill.LInstr) {
	ids := [2]int{in.A, in.A}
	if in.Op.IsCtCt() {
		ids[1] = in.B
	}
	for _, id := range ids {
		if id < l.NumCtInputs || id == l.Output || last[id] != idx || vals[id] == nil {
			continue
		}
		rt.Params.RecycleCiphertext(vals[id])
		vals[id] = nil
	}
}

func (rt *Runtime) step(l *quill.Lowered, in quill.LInstr, vals []*bfv.Ciphertext, pts []*bfv.Plaintext) (*bfv.Ciphertext, error) {
	a := vals[in.A]
	switch in.Op {
	case quill.OpRotCt:
		out := rt.Params.NewCiphertextUninit(1)
		// The literal amount, not a mod-VecLen canonical form: when the
		// program vector is shorter than the HE row, abstractly
		// equivalent amounts shift the row's zero padding differently.
		return out, rt.Eval.RotateRowsInto(out, a, in.Rot)
	case quill.OpRelin:
		out := rt.Params.NewCiphertextUninit(1)
		return out, rt.Eval.RelinearizeInto(out, a)
	case quill.OpAddCtCt:
		out := rt.Params.NewCiphertextUninit(1)
		rt.Eval.AddInto(out, a, vals[in.B])
		return out, nil
	case quill.OpSubCtCt:
		out := rt.Params.NewCiphertextUninit(1)
		rt.Eval.SubInto(out, a, vals[in.B])
		return out, nil
	case quill.OpMulCtCt:
		out := rt.Params.NewCiphertextUninit(2)
		return out, rt.Eval.MulInto(out, a, vals[in.B])
	case quill.OpAddCtPt, quill.OpSubCtPt, quill.OpMulCtPt:
		pt, err := rt.operandPlaintext(l, in, pts)
		if err != nil {
			return nil, err
		}
		out := rt.Params.NewCiphertextUninit(a.Degree())
		switch in.Op {
		case quill.OpAddCtPt:
			rt.Eval.AddPlainInto(out, a, pt)
		case quill.OpSubCtPt:
			rt.Eval.SubPlainInto(out, a, pt)
		default:
			rt.Eval.MulPlainInto(out, a, pt)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown opcode %v", in.Op)
}

func (rt *Runtime) operandPlaintext(l *quill.Lowered, in quill.LInstr, pts []*bfv.Plaintext) (*bfv.Plaintext, error) {
	if in.P.Input >= 0 {
		return pts[in.P.Input], nil
	}
	vec := quill.ConcreteSem{}.FromConst(in.P.Const, l.VecLen)
	return rt.Encoder.EncodeNew(vec)
}
