package backend

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"porcupine/internal/bfv"
	"porcupine/internal/plan"
	"porcupine/internal/quill"
)

// fuzzVecLen is the abstract vector length of fuzzed programs: the
// full PN2048 HE row, so abstract circular rotation and BFV row
// rotation have identical wrap semantics on every slot.
const fuzzVecLen = 1024

// fuzzRots is the rotation vocabulary of fuzzed programs (kept small
// so each program needs at most a handful of Galois keys).
var fuzzRots = []int{0, 1, -1, 2, -3, 5, 17, -64, 300, 511, -1000}

// decodeProgram turns arbitrary fuzz bytes into a well-formed
// local-rotate Quill program plus matching concrete inputs. The
// decoder is total: every byte string yields a valid program. The
// multiply budget is capped at two so PN2048's noise budget is never
// exhausted, mirroring TestDifferentialInterpreterVsBFV.
func decodeProgram(data []byte) (*quill.Program, []quill.Vec, []quill.Vec) {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}

	p := &quill.Program{
		VecLen:      fuzzVecLen,
		NumCtInputs: 1 + int(next())%2,
		NumPtInputs: int(next()) % 2,
	}
	nInstr := 1 + int(next())%4
	muls := 0
	nVals := p.NumCtInputs
	for i := 0; i < nInstr; i++ {
		pick := func() quill.CtRef {
			return quill.CtRef{
				ID:  int(next()) % nVals,
				Rot: fuzzRots[int(next())%len(fuzzRots)],
			}
		}
		var in quill.Instr
		switch op := next() % 6; op {
		case 0:
			in = quill.Instr{Op: quill.OpAddCtCt, A: pick(), B: pick()}
		case 1:
			in = quill.Instr{Op: quill.OpSubCtCt, A: pick(), B: pick()}
		case 2:
			if muls >= 2 {
				in = quill.Instr{Op: quill.OpAddCtCt, A: pick(), B: pick()}
			} else {
				muls++
				in = quill.Instr{Op: quill.OpMulCtCt, A: pick(), B: pick()}
			}
		case 3:
			if p.NumPtInputs > 0 && next()%2 == 0 {
				in = quill.Instr{Op: quill.OpAddCtPt, A: pick(), P: quill.PtRef{Input: 0}}
			} else {
				in = quill.Instr{Op: quill.OpAddCtPt, A: pick(), P: quill.PtRef{Input: -1, Const: []int64{int64(next()%19) - 9}}}
			}
		case 4:
			in = quill.Instr{Op: quill.OpSubCtPt, A: pick(), P: quill.PtRef{Input: -1, Const: []int64{int64(next()%19) - 9}}}
		default:
			// Small constants keep plaintext-multiply noise growth
			// within the PN2048 budget.
			if muls >= 2 {
				in = quill.Instr{Op: quill.OpSubCtCt, A: pick(), B: pick()}
			} else {
				muls++
				in = quill.Instr{Op: quill.OpMulCtPt, A: pick(), P: quill.PtRef{Input: -1, Const: []int64{int64(next()%9) - 4}}}
			}
		}
		p.Instrs = append(p.Instrs, in)
		nVals++
	}
	p.Output = nVals - 1

	// Inputs: a PRNG seeded from the tail bytes, so input data is
	// fuzz-controlled without consuming kilobytes of corpus.
	var seedBytes [8]byte
	for i := range seedBytes {
		seedBytes[i] = next()
	}
	rng := rand.New(rand.NewSource(int64(binary.LittleEndian.Uint64(seedBytes[:]))))
	ctIn := make([]quill.Vec, p.NumCtInputs)
	for i := range ctIn {
		ctIn[i] = randVec(rng, fuzzVecLen)
	}
	ptIn := make([]quill.Vec, p.NumPtInputs)
	for i := range ptIn {
		ptIn[i] = randVec(rng, fuzzVecLen)
	}
	return p, ctIn, ptIn
}

func randVec(rng *rand.Rand, n int) quill.Vec {
	v := make(quill.Vec, n)
	for i := range v {
		v[i] = rng.Uint64() % quill.Modulus
	}
	return v
}

// FuzzQuillVsBFV is the differential fuzzer of the full compilation
// stack: every fuzz input decodes to a well-formed local-rotate Quill
// program, which must produce identical slot values through four
// routes — the abstract interpreter on the local-rotate form, the
// abstract interpreter on the lowered form, the instruction-at-a-time
// BFV interpreter (encrypt → evaluate → decrypt), and the execution
// plan on the BFV backend, whose output ciphertext must additionally
// be bit-identical to the BFV interpreter's. The checked-in corpus
// under testdata/fuzz covers every opcode, rotation wrap-around,
// plaintext inputs, the multiply/relinearization path, the planner's
// register-reuse edge cases (diamond-shaped sharing, dead values),
// log-depth reduction trees over a shared source, and cross-source
// rotations that fuse into batched key-switch groups (pinned by
// TestFuzzCorpusBatchSeeds).
//
// Run `go test -fuzz FuzzQuillVsBFV ./internal/backend` to explore
// beyond the corpus.
func FuzzQuillVsBFV(f *testing.F) {
	if testing.Short() {
		f.Skip("differential fuzzing decrypts on the BFV backend (slow)")
	}
	// Baseline seeds; the richer corpus is checked in under
	// testdata/fuzz/FuzzQuillVsBFV.
	f.Add([]byte{})
	f.Add([]byte{1, 1, 3, 0, 5, 2, 1, 7, 2, 0, 2, 1, 4, 9, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, ctIn, ptIn := decodeProgram(data)
		if err := prog.Validate(); err != nil {
			t.Fatalf("decoder produced an invalid program: %v\n%s", err, prog)
		}
		want, err := quill.Run(prog, quill.ConcreteSem{}, ctIn, ptIn)
		if err != nil {
			t.Fatalf("interpreting local-rotate form: %v", err)
		}
		lowered, err := quill.Lower(prog, quill.DefaultLowerOptions())
		if err != nil {
			t.Fatalf("lowering: %v", err)
		}
		lw, err := quill.RunLowered(lowered, quill.ConcreteSem{}, ctIn, ptIn)
		if err != nil {
			t.Fatalf("interpreting lowered form: %v", err)
		}
		for i := range want {
			if want[i] != lw[i] {
				t.Fatalf("lowered interpretation diverges at slot %d: %d != %d\n%s", i, lw[i], want[i], prog)
			}
		}

		rt, err := NewTestRuntime("PN2048", 7, lowered)
		if err != nil {
			t.Fatalf("building runtime: %v", err)
		}
		cts := make([]*bfv.Ciphertext, len(ctIn))
		for i, v := range ctIn {
			if cts[i], err = rt.EncryptVec(v); err != nil {
				t.Fatalf("encrypting input %d: %v", i, err)
			}
		}
		out, err := rt.RunInterpreter(lowered, cts, ptIn)
		if err != nil {
			t.Fatalf("BFV interpreter execution: %v", err)
		}
		if b := rt.NoiseBudget(out); b <= 0 {
			t.Fatalf("noise budget exhausted (%.0f bits)\n%s", b, prog)
		}
		got := rt.DecryptVec(out, fuzzVecLen)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("BFV diverges from interpreter at slot %d: %d != %d\n%s", i, got[i], want[i], prog)
			}
		}

		// Third leg: the execution plan must reproduce the interpreter's
		// output ciphertext bit for bit (same ops in the same order, just
		// scheduled over reusable buffers).
		p, err := rt.Plan(lowered)
		if err != nil {
			t.Fatalf("plan compilation: %v\n%s", err, prog)
		}
		s := rt.NewSession()
		pout, err := s.Run(p, cts, ptIn)
		if err != nil {
			t.Fatalf("plan execution: %v\n%s", err, prog)
		}
		if !sameCiphertext(rt.Params, out, pout) {
			t.Fatalf("plan output ciphertext differs from BFV interpreter\n%s", prog)
		}
		pdec := rt.DecryptVec(pout, fuzzVecLen)
		for i := range want {
			if pdec[i] != want[i] {
				t.Fatalf("plan diverges from interpreter at slot %d: %d != %d\n%s", i, pdec[i], want[i], prog)
			}
		}

		// Fourth leg: Plan() compiles with domain assignment on, so the
		// check above already covers NTT-resident execution. The
		// all-coefficient plan (DisableDomainAssignment) must be
		// bit-identical too — domain residency is a pure representation
		// change, invisible in the output ciphertext.
		un, err := plan.CompileWithOptions(rt.Params, rt.Encoder, lowered, plan.Options{DisableDomainAssignment: true})
		if err != nil {
			t.Fatalf("unassigned plan compilation: %v\n%s", err, prog)
		}
		uout, err := rt.NewSession().Run(un, cts, ptIn)
		if err != nil {
			t.Fatalf("unassigned plan execution: %v\n%s", err, prog)
		}
		if !sameCiphertext(rt.Params, out, uout) {
			t.Fatalf("unassigned plan output ciphertext differs from BFV interpreter\n%s", prog)
		}
	})
}

// TestFuzzCorpusBatchSeeds pins the PR7 corpus seeds to the compiler
// features they were written to exercise: should the decoder or the
// pass pipeline change shape, this fails instead of the corpus silently
// degrading to programs that no longer reach the tree or batched paths.
func TestFuzzCorpusBatchSeeds(t *testing.T) {
	cases := []struct {
		name     string
		data     []byte
		batchedG int // batched key-switch groups in the default plan
		batchedR int // rotations covered by those groups
	}{
		{
			// v1 = v0 + rot(v0,2); v2 = v1 + rot(v1,1): a log-depth
			// reduction tree over one shared source.
			name: "tree-shared-source",
			data: []byte{0, 0, 1, 0, 0, 3, 0, 0, 0, 1, 1, 1, 0,
				0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18},
		},
		{
			// rot(ct0,1) and rot(ct1,1): two sources, one amount — one
			// batched group of two.
			name: "batched-cross-source",
			data: []byte{1, 0, 1, 0, 0, 1, 1, 0, 0, 1, 1, 2, 0,
				0x21, 0x22, 0x23, 0x24, 0x25, 0x26, 0x27, 0x28},
			batchedG: 1, batchedR: 2,
		},
		{
			// Sibling tree levels over ct0 and ct1: rot-2 pair then
			// rot-1 pair — two batched groups.
			name: "batched-tree-levels",
			data: []byte{1, 0, 2, 0, 0, 3, 0, 0, 0, 1, 3, 1, 0, 0, 2, 1, 3, 1,
				0x31, 0x32, 0x33, 0x34, 0x35, 0x36, 0x37, 0x38},
			batchedG: 2, batchedR: 4,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, _, _ := decodeProgram(c.data)
			if err := prog.Validate(); err != nil {
				t.Fatal(err)
			}
			lowered, err := quill.Lower(prog, quill.DefaultLowerOptions())
			if err != nil {
				t.Fatal(err)
			}
			rt, err := NewTestRuntime("PN2048", 7, lowered)
			if err != nil {
				t.Fatal(err)
			}
			p, err := plan.CompileWithOptions(rt.Params, rt.Encoder, lowered, plan.Options{DisableSharing: true})
			if err != nil {
				t.Fatal(err)
			}
			if g, r := p.BatchedGroups(); g != c.batchedG || r != c.batchedR {
				t.Errorf("batched groups = %d (%d rotations), want %d (%d)\n%s",
					g, r, c.batchedG, c.batchedR, prog)
			}
		})
	}
}

// TestFuzzCorpusSharedSeeds pins the PR10 corpus seeds to the
// double-hoisted shapes they were written to reach: a single source
// rotated by three amounts across two tree levels (one decomposition,
// two replays) and a source whose decomposition outlives the batched
// group it was filled for (cross-source fill, later singleton replay).
// If the decoder or the sharing pass changes shape, this fails instead
// of the corpus silently degrading to programs that never replay a
// resident decomposition.
func TestFuzzCorpusSharedSeeds(t *testing.T) {
	cases := []struct {
		name       string
		data       []byte
		sharedG    int // shared key-switch groups in the default plan
		sharedR    int // rotations covered by those groups
		replayed   int // members reusing a resident decomposition
		numDecomps int // peak live decomposition slots
	}{
		{
			// c1 = rot(c0,1)+rot(c0,2); c2 = rot(c1,1)+rot(c0,5): c0 is
			// rotated at two tree levels by three amounts — one fill,
			// two replays of the same slot. c1, rotated once, stays a
			// plain (level-parallel) rotation.
			name: "shared-fan-two-levels",
			data: []byte{0, 0, 2,
				0, 0, 1, 0, 3,
				0, 1, 1, 0, 5,
				0, 2, 0, 0, 0,
				0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48},
			sharedG: 3, sharedR: 3, replayed: 2, numDecomps: 1,
		},
		{
			// rot(c0,1)+rot(c1,1) then rot(c0,2): the amount-1 group
			// fills both sources' slots; c0's decomposition crosses the
			// batch window and replays in the amount-2 singleton.
			name: "shared-cross-window",
			data: []byte{1, 0, 1,
				0, 0, 1, 1, 1,
				0, 2, 0, 0, 3,
				0x51, 0x52, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58},
			sharedG: 2, sharedR: 3, replayed: 1, numDecomps: 2,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, _, _ := decodeProgram(c.data)
			if err := prog.Validate(); err != nil {
				t.Fatal(err)
			}
			lowered, err := quill.Lower(prog, quill.DefaultLowerOptions())
			if err != nil {
				t.Fatal(err)
			}
			rt, err := NewTestRuntime("PN2048", 7, lowered)
			if err != nil {
				t.Fatal(err)
			}
			p, err := rt.Plan(lowered)
			if err != nil {
				t.Fatal(err)
			}
			g, r, rep := p.SharedGroups()
			if g != c.sharedG || r != c.sharedR || rep != c.replayed {
				t.Errorf("shared groups = %d (%d rotations, %d replayed), want %d (%d, %d)\n%s",
					g, r, rep, c.sharedG, c.sharedR, c.replayed, prog)
			}
			if p.NumDecomps != c.numDecomps {
				t.Errorf("NumDecomps = %d, want %d\n%s", p.NumDecomps, c.numDecomps, prog)
			}
		})
	}
}
